# PR number for the committed benchmark snapshot (BENCH_<PR>.json).
PR ?= 2

.PHONY: build test race bench bench-smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Regenerate every table/figure at small scale and record per-experiment
# wall-clock, allocator traffic, and virtual-time throughput. The snapshot
# is committed per PR so the suite's perf trajectory is tracked in-repo.
bench:
	go run ./cmd/slimio-bench -exp all -benchjson BENCH_$(PR).json

# Compile and single-shot every benchmark without running tests: catches
# benchmark-only regressions cheaply (used by CI).
bench-smoke:
	go test -short -run XXX -bench . -benchtime=1x ./...
