# PR number for the committed benchmark snapshot (BENCH_<PR>.json).
PR ?= 3

# Total-statement coverage floor for `make cover-check` (CI blocking step).
# Measured with -short; re-record by running `make cover` and reading the
# final `total:` line of `go tool cover -func`.
COVER_BASELINE ?= 68.0

.PHONY: build test race race-tiny cover cover-check bench bench-smoke bench-compare trace-smoke top-smoke check-smoke lint

build:
	go build ./...

test:
	go test ./...

# The race detector runs the full data plane with bufpool's per-segment
# acquire/release site tracking enabled (debug_race.go), so the heaviest
# experiment packages need more than go test's default 10m per-package
# timeout.
race:
	go test -race -timeout 30m ./...

# Tiny-scale race pass: -short trims the experiment grids and seed corpora
# (including the multi-tenant isolation suite) so the race detector covers
# every package quickly. CI runs this as its own job; `make race` remains
# the full-scale local run.
race-tiny:
	go test -race -short -timeout 20m ./...

# Coverage snapshot at tiny scale: writes coverage.out (uploaded by CI as
# an artifact) and prints the per-function rollup.
cover:
	go test -short -coverprofile=coverage.out ./...
	go tool cover -func=coverage.out | tail -1

# Blocking coverage gate: fail if total statement coverage drops below
# COVER_BASELINE (recorded above when the baseline was last measured).
cover-check: cover
	@total=$$(go tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit !(t+0 >= b+0) }' || \
		{ echo "coverage $$total% fell below baseline $(COVER_BASELINE)%"; exit 1; }

# Single local lint entry point, mirrored by the CI lint job: formatting,
# the stock vet suite, the repo's own determinism-contract suite
# (cmd/slimio-vet; see DESIGN.md "Determinism contract"), and — when the
# tool and network are available — govulncheck (advisory, never blocking).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt -l found unformatted files:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...
	go run ./cmd/slimio-vet ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "govulncheck reported findings (non-blocking)"; \
	else \
		echo "govulncheck not installed; skipping (non-blocking)"; \
	fi

# Regenerate every table/figure at small scale and record per-experiment
# wall-clock, allocator traffic, and virtual-time throughput. The snapshot
# is committed per PR so the suite's perf trajectory is tracked in-repo.
bench:
	go run ./cmd/slimio-bench -exp all -benchjson BENCH_$(PR).json

# Compile and single-shot every benchmark without running tests: catches
# benchmark-only regressions cheaply (used by CI).
bench-smoke:
	go test -short -run XXX -bench . -benchtime=1x ./...

# Re-run the suite and diff its allocator traffic against the committed
# BENCH_$(PR).json: more than 15% growth in any experiment's allocs or
# alloc_bytes fails (used by CI as a blocking step). Wall clock is printed
# but never gates — CI machines vary, allocator traffic does not.
bench-compare:
	go run ./cmd/slimio-bench -exp all -compare BENCH_$(PR).json

# Bounded-budget crash-consistency check on both backends (used by CI as a
# blocking step): enumerate the crash-point lattice of the smoke workload,
# stride-sample it, and judge every replay with the durability oracle. On
# violation the shrunk repro lands in slimio-check-repro.json (CI uploads
# it as an artifact) and the target fails.
check-smoke:
	go run ./cmd/slimio-check -backend both -ops 120 -budget 48 -out slimio-check-repro.json

# Run a tiny traced cell end to end, export the Chrome trace-event JSON,
# and validate it against the trace-event schema (used by CI, which also
# uploads the trace as an artifact). Generated artifacts live in the
# gitignored out/ directory.
trace-smoke:
	mkdir -p out
	go run ./cmd/slimio-bench -exp table3 -scale tiny -vtrace out/trace-smoke.json
	go run ./cmd/slimio-inspect -validate out/trace-smoke.json

# Run a tiny traced + telemetered table3 end to end, export the telemetry
# dump (schema-validated by the exporter), and render it with slimio-top in
# deterministic table mode (ParseDump re-validates on load). An empty render
# fails the target. Used by CI as a blocking step; the telemetry directory
# is uploaded as an artifact.
top-smoke:
	mkdir -p out
	go run ./cmd/slimio-bench -exp table3 -scale tiny -vtrace out/top-smoke-trace.json -telemetry out/telemetry
	go run ./cmd/slimio-top -dump out/telemetry/telemetry.json -mode table > out/top-smoke.txt
	@test -s out/top-smoke.txt || { echo "top-smoke: empty slimio-top render"; exit 1; }
	@grep -q "^cell " out/top-smoke.txt || { echo "top-smoke: no cell tables in render"; exit 1; }
