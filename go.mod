module github.com/slimio/slimio

go 1.22
