// Recovery: write a dataset through SlimIO, take snapshots, keep writing,
// then simulate a crash by attaching a brand-new backend to the same device
// and running the §4.2 recovery procedure — metadata scan, snapshot load,
// WAL replay — and verify the dataset byte for byte.
//
//	go run ./examples/recovery
package main

import (
	"bytes"
	"fmt"
	"log"

	"github.com/slimio/slimio/internal/core"
	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
)

func main() {
	arr, err := nand.New(nand.DefaultGeometry(64<<20), nand.DefaultLatencies())
	if err != nil {
		log.Fatal(err)
	}
	ftl, err := fdp.New(arr, fdp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	dev := ssd.New(ftl, ssd.Config{})

	// --- Phase 1: a life before the crash. ---
	eng := sim.NewEngine()
	backend, err := core.New(eng, dev, core.Config{SlotPages: 2048})
	if err != nil {
		log.Fatal(err)
	}
	db := imdb.New(eng, backend, imdb.Config{
		Policy:             imdb.PeriodicalLog,
		WALSnapshotTrigger: 32 << 10, // WAL-snapshot every 32 KiB of log
	}, nil)
	db.Start()

	expected := map[string][]byte{}
	eng.Spawn("life", func(env *sim.Env) {
		for i := 0; i < 3000; i++ {
			k := fmt.Sprintf("acct:%05d", i%500)
			v := []byte(fmt.Sprintf("balance=%d;nonce=%d", i*13, i))
			expected[k] = v
			if err := db.Set(env, k, v); err != nil {
				log.Fatal(err)
			}
		}
		db.Shutdown(env) // clean shutdown: final flush + sync
	})
	eng.Run()
	st := db.Stats()
	fmt.Printf("before crash: %d keys, %d snapshots, WAL flushes %d\n",
		db.Store().Len(), len(st.Snapshots), st.WALFlushes)
	for _, s := range backend.Slots() {
		fmt.Printf("  slot %d: %-12s %6.1f KiB\n", s.Index, s.Role, float64(s.Used)/1024)
	}

	// --- Phase 2: the process dies; a new one attaches to the device. ---
	eng2 := sim.NewEngine()
	backend2, err := core.New(eng2, dev, core.Config{SlotPages: 2048})
	if err != nil {
		log.Fatal(err)
	}
	db2 := imdb.New(eng2, backend2, imdb.Config{}, nil)
	eng2.Spawn("recover", func(env *sim.Env) {
		t0 := env.Now()
		entries, walRecs, err := db2.Recover(env)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nrecovered %d snapshot entries + %d WAL records in %v (virtual)\n",
			entries, walRecs, env.Now().Sub(t0))
	})
	eng2.Run()

	// --- Phase 3: verify. ---
	mismatches := 0
	for k, v := range expected {
		if got := db2.Store().Get(k); !bytes.Equal(got, v) {
			mismatches++
		}
	}
	fmt.Printf("verification: %d keys checked, %d mismatches\n", len(expected), mismatches)
	if mismatches > 0 || db2.Store().Len() != len(expected) {
		log.Fatal("recovery verification FAILED")
	}
	fmt.Println("recovery verification OK")
}
