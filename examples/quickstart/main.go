// Quickstart: bring up a SlimIO-backed in-memory database on a simulated
// FDP SSD through the public package API, serve some traffic, take a
// snapshot, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	slimio "github.com/slimio/slimio"
)

func main() {
	// One call assembles the whole stack: FEMU-style NAND array, FDP FTL,
	// NVMe front-end, SlimIO backend (metadata region, three snapshot
	// slots, WAL ring, passthru paths), and the Redis-like engine.
	sys, err := slimio.NewSystem(slimio.SystemConfig{
		DeviceBytes: 64 << 20,
		DB:          slimio.DBConfig{Policy: slimio.PeriodicalLog},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Everything below runs in virtual time on the simulation engine.
	sys.Sim.Spawn("client", func(env *slimio.Env) {
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("sensor:%04d", i%100)
			value := []byte(fmt.Sprintf("reading-%d", i))
			if err := sys.DB.Set(env, key, value); err != nil {
				log.Fatal(err)
			}
		}
		v, err := sys.DB.Get(env, "sensor:0042")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GET sensor:0042 = %q at t=%v\n", v, env.Now())

		// Take a point-in-time backup (On-Demand-Snapshot): it runs in a
		// forked child process while the engine keeps serving.
		trig := sys.DB.TriggerSnapshot(slimio.OnDemandSnapshot)
		trig.Reply.Wait(env)
		sys.DB.WaitNoSnapshot(env)
		sys.DB.Shutdown(env)
	})
	sys.Sim.Run()

	st := sys.DB.Stats()
	fmt.Printf("\nserved %d SETs, %d GETs in %v of virtual time\n",
		st.Sets, st.Gets, sys.Sim.Now())
	for _, ev := range st.Snapshots {
		fmt.Printf("snapshot (%v): %d entries, %.1f KiB raw -> %.1f KiB on flash, took %v\n",
			ev.Kind, ev.Entries, float64(ev.RawBytes)/1024, float64(ev.CompressedBytes)/1024, ev.Duration)
	}
	fmt.Printf("device WAF: %.2f (1.00 = no garbage-collection copies)\n", sys.Device.Stats().WAF())
	for _, s := range sys.Backend.Slots() {
		fmt.Printf("slot %d: %-12s %d bytes\n", s.Index, s.Role, s.Used)
	}
}
