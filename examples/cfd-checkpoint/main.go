// CFD checkpoint: the paper's HPC motivation (§1). A computational-fluid-
// dynamics simulation exchanges per-timestep intermediate fields (pressure,
// velocity) through the IMDB instead of files, and periodically snapshots
// the whole transient state as a restart checkpoint.
//
// The example runs the same workflow on the baseline (kernel path + plain
// SSD) and on SlimIO (passthru + FDP) and compares the timestep rate and
// checkpoint stalls.
//
//	go run ./examples/cfd-checkpoint
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/slimio/slimio/internal/baseline"
	"github.com/slimio/slimio/internal/core"
	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/kernelio"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
)

const (
	ranks          = 8    // simulated MPI ranks
	fieldsPerRank  = 4    // pressure, 3× velocity components
	chunkBytes     = 4096 // one field tile
	timesteps      = 120
	checkpointEach = 40
)

type result struct {
	name          string
	elapsed       sim.Duration
	checkpointDur sim.Duration
	waf           float64
}

func runWorkflow(name string, mkStack func(eng *sim.Engine) (imdb.Backend, *ssd.Device)) result {
	eng := sim.NewEngine()
	be, dev := mkStack(eng)
	db := imdb.New(eng, be, imdb.Config{Policy: imdb.PeriodicalLog}, nil)
	db.Start()

	rng := rand.New(rand.NewSource(7))
	tile := make([]byte, chunkBytes)
	rng.Read(tile[:chunkBytes/2]) // half-compressible field data

	var res result
	res.name = name
	eng.Spawn("workflow", func(env *sim.Env) {
		start := env.Now()
		for step := 0; step < timesteps; step++ {
			// Each rank publishes its updated field tiles for the next
			// phase to consume — the transient-data exchange the paper
			// motivates.
			for rank := 0; rank < ranks; rank++ {
				for f := 0; f < fieldsPerRank; f++ {
					key := fmt.Sprintf("step:%d/rank:%d/field:%d", step%2, rank, f)
					if err := db.Set(env, key, tile); err != nil {
						log.Fatal(err)
					}
				}
			}
			// Neighbour exchange: each rank reads its neighbours' tiles.
			for rank := 0; rank < ranks; rank++ {
				key := fmt.Sprintf("step:%d/rank:%d/field:0", step%2, (rank+1)%ranks)
				if _, err := db.Get(env, key); err != nil {
					log.Fatal(err)
				}
			}
			// Periodic restart checkpoint of all transient state.
			if (step+1)%checkpointEach == 0 {
				trig := db.TriggerSnapshot(imdb.OnDemandSnapshot)
				trig.Reply.Wait(env)
				db.WaitNoSnapshot(env)
			}
		}
		res.elapsed = env.Now().Sub(start)
		db.Shutdown(env)
	})
	eng.Run()

	for _, ev := range db.Stats().Snapshots {
		res.checkpointDur += ev.Duration
	}
	res.waf = dev.Stats().WAF()
	return res
}

func main() {
	deviceBytes := int64(96 << 20)

	baselineStack := func(eng *sim.Engine) (imdb.Backend, *ssd.Device) {
		arr, err := nand.New(nand.DefaultGeometry(deviceBytes), nand.DefaultLatencies())
		if err != nil {
			log.Fatal(err)
		}
		conv, err := fdp.NewConventional(arr, fdp.Config{})
		if err != nil {
			log.Fatal(err)
		}
		dev := ssd.New(conv, ssd.Config{})
		fs := kernelio.NewFilesystem(eng, dev, kernelio.F2FS(), kernelio.SchedNone, kernelio.DefaultCosts())
		be, err := baseline.New(fs)
		if err != nil {
			log.Fatal(err)
		}
		return be, dev
	}
	slimioStack := func(eng *sim.Engine) (imdb.Backend, *ssd.Device) {
		arr, err := nand.New(nand.DefaultGeometry(deviceBytes), nand.DefaultLatencies())
		if err != nil {
			log.Fatal(err)
		}
		f, err := fdp.New(arr, fdp.Config{})
		if err != nil {
			log.Fatal(err)
		}
		dev := ssd.New(f, ssd.Config{})
		be, err := core.New(eng, dev, core.Config{SlotPages: 3072})
		if err != nil {
			log.Fatal(err)
		}
		return be, dev
	}

	fmt.Printf("CFD transient-data workflow: %d ranks x %d fields x %d timesteps, checkpoint every %d steps\n\n",
		ranks, fieldsPerRank, timesteps, checkpointEach)
	fmt.Printf("%-10s %14s %18s %18s %8s\n", "backend", "workflow time", "steps/sec", "checkpoint time", "WAF")
	for _, r := range []result{
		runWorkflow("baseline", baselineStack),
		runWorkflow("slimio", slimioStack),
	} {
		stepsPerSec := float64(timesteps) / r.elapsed.Seconds()
		fmt.Printf("%-10s %14v %18.1f %18v %8.2f\n", r.name, r.elapsed, stepsPerSec, r.checkpointDur, r.waf)
	}
}
