// YCSB-A head-to-head: run the paper's second workload (zipfian 50/50
// GET:SET) against both persistence backends and print the Table-4-style
// comparison, using the experiment harness as a library.
//
//	go run ./examples/ycsb
//	go run ./examples/ycsb -ops 40000 -records 5000
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/slimio/slimio/internal/exp"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/workload"
)

func main() {
	ops := flag.Int64("ops", 20000, "operations per run")
	records := flag.Int64("records", 3000, "preloaded record count")
	flag.Parse()

	sc := exp.TinyScale()
	sc.OpsPerRep = *ops
	sc.KeyRange = *records
	sc.Reps = 1
	sc.ValueSize = 2048

	fmt.Printf("YCSB-A: %d records x 2 KiB, %d ops, 50/50 GET:SET, zipfian\n\n", *records, *ops)
	fmt.Printf("%-14s %12s %12s %12s %14s %14s\n",
		"backend", "avg RPS", "snapshots", "snap time", "SET p99.9", "GET p99.9")
	for _, kind := range []exp.BackendKind{exp.BaselineF2FS, exp.SlimIOFDP} {
		res, err := exp.RunCell(exp.CellConfig{
			Kind:     kind,
			Policy:   imdb.PeriodicalLog,
			Scale:    sc,
			Workload: workload.YCSBA(0, sc.KeyRange),
			Preload:  true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.0f %12d %12v %14v %14v\n",
			kind, res.AvgRPS, len(res.Snapshots), res.MeanSnapshotTime,
			res.SetP999, res.GetP999)
	}
}
