// Package slimio_test is the benchmark harness that regenerates every table
// and figure of the paper's evaluation (Tables 1-5, Figures 2, 4, 5), plus
// ablations of SlimIO's three mechanisms (passthru, SQPOLL, FDP) that the
// paper argues only verbally.
//
// Each benchmark runs one full scaled-down experiment per iteration and
// reports the paper's headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the whole evaluation. Use -short for the tiny scale (quick sanity
// run); the default small scale preserves the paper's ratios. Absolute
// numbers are virtual-time measurements on the simulated FEMU-style device
// and are expected to differ from the paper's testbed; EXPERIMENTS.md
// records the shape comparison.
package slimio_test

import (
	"runtime/debug"
	"testing"

	"github.com/slimio/slimio/internal/exp"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/workload"
)

func benchScale(b *testing.B) exp.Scale {
	// Each experiment simulates a device holding real page bytes; return
	// the previous experiment's memory to the OS before starting the next.
	// Scale.Parallel stays 0, so cells fan out across GOMAXPROCS workers
	// (results are bit-identical at any parallelism; see exp.runCells).
	debug.FreeOSMemory()
	b.Cleanup(debug.FreeOSMemory)
	if testing.Short() {
		return exp.TinyScale()
	}
	return exp.SmallScale()
}

// BenchmarkTable1 regenerates Table 1: RPS and peak memory in WAL-only vs
// Snapshot&WAL phases on EXT4 and F2FS (baseline).
func BenchmarkTable1(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable1(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			tag := r.FS + "_" + map[string]string{"WAL Only": "walonly", "Snapshot&WAL": "snap"}[r.Phase]
			b.ReportMetric(r.RPS, tag+"_rps")
			b.ReportMetric(float64(r.MemBytes)/(1<<20), tag+"_memMB")
		}
	}
}

// BenchmarkTable2 regenerates Table 2: the filesystem write-path share of
// the snapshot process (F2FS), Snapshot-Only vs Snapshot&WAL.
func BenchmarkTable2(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable2(sc)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SnapshotOnlyPct, "snaponly_fs_pct")
		b.ReportMetric(res.SnapshotWALPct, "snapwal_fs_pct")
	}
}

// BenchmarkFigure2a regenerates Figure 2a: the snapshot time distribution
// (in-memory / kernel path / SSD wait) across the three §3.1 scenarios.
func BenchmarkFigure2a(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure2(sc)
		if err != nil {
			b.Fatal(err)
		}
		names := []string{"only", "wal", "gc"}
		for j, s := range res.Scenarios {
			b.ReportMetric(s.Duration.Milliseconds(), names[j]+"_total_ms")
			b.ReportMetric(100*float64(s.KernelPath)/float64(s.Duration), names[j]+"_kernel_pct")
			b.ReportMetric(100*float64(s.SSDWait)/float64(s.Duration), names[j]+"_ssd_pct")
		}
	}
}

// BenchmarkFigure2b regenerates Figure 2b: snapshot vs WAL vs ideal
// throughput for the same three scenarios.
func BenchmarkFigure2b(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFigure2(sc)
		if err != nil {
			b.Fatal(err)
		}
		names := []string{"only", "wal", "gc"}
		for j, s := range res.Scenarios {
			b.ReportMetric(s.SnapshotTput/(1<<20), names[j]+"_snap_MBps")
			b.ReportMetric(s.WALTput/(1<<20), names[j]+"_wal_MBps")
			b.ReportMetric(s.IdealTput/(1<<20), names[j]+"_ideal_MBps")
		}
	}
}

func reportOverallRow(b *testing.B, prefix string, r *exp.CellResult) {
	b.ReportMetric(r.WALOnlyRPS, prefix+"_walonly_rps")
	b.ReportMetric(r.SnapRPS, prefix+"_snap_rps")
	b.ReportMetric(r.AvgRPS, prefix+"_avg_rps")
	b.ReportMetric(r.MeanSnapshotTime.Milliseconds(), prefix+"_snaptime_ms")
	b.ReportMetric(r.SetP999.Milliseconds(), prefix+"_set_p999_ms")
	b.ReportMetric(r.WAF, prefix+"_waf")
}

// BenchmarkTable3 regenerates Table 3: the overall redis-benchmark
// evaluation (both logging policies, baseline vs SlimIO, WAF included).
func BenchmarkTable3(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable3(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			prefix := row.Policy.String() + "_" + row.System
			reportOverallRow(b, prefix, row.Result)
		}
	}
}

// BenchmarkTable4 regenerates Table 4: the YCSB-A evaluation (GET tails
// included, no On-Demand snapshots, no GC pressure).
func BenchmarkTable4(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable4(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			prefix := row.Policy.String() + "_" + row.System
			reportOverallRow(b, prefix, row.Result)
			b.ReportMetric(row.GetP999.Milliseconds(), prefix+"_get_p999_ms")
		}
	}
}

// BenchmarkTable5 regenerates Table 5: recovery time and throughput from a
// snapshot, baseline (cold page cache) vs SlimIO (read-ahead reader).
func BenchmarkTable5(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable5(sc)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			b.ReportMetric(row.RecoveryTime.Milliseconds(), row.System+"_recovery_ms")
			b.ReportMetric(row.ThroughputBps/(1<<20), row.System+"_tput_MBps")
		}
	}
}

func figWindow() sim.Duration { return 2500 * sim.Millisecond }

// BenchmarkFigure4 regenerates Figure 4: runtime RPS under device GC,
// baseline vs SlimIO-without-FDP (direct writes nosedive; the page cache
// absorbs).
func BenchmarkFigure4(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		base, slim, err := exp.RunFigure4(sc, figWindow())
		if err != nil {
			b.Fatal(err)
		}
		sb, ss := base.Summarize(figWindow()/5), slim.Summarize(figWindow()/5)
		b.ReportMetric(sb.MeanRPS, "baseline_mean_rps")
		b.ReportMetric(sb.MinRPS, "baseline_min_rps")
		b.ReportMetric(ss.MeanRPS, "slimio_noFDP_mean_rps")
		b.ReportMetric(ss.MinRPS, "slimio_noFDP_min_rps")
		b.ReportMetric(float64(ss.Nosedives), "slimio_noFDP_nosedives")
	}
}

// BenchmarkFigure5 regenerates Figure 5: with FDP the runtime RPS holds a
// stable band; no nosedives.
func BenchmarkFigure5(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		base, slim, err := exp.RunFigure5(sc, figWindow())
		if err != nil {
			b.Fatal(err)
		}
		sb, ss := base.Summarize(figWindow()/5), slim.Summarize(figWindow()/5)
		b.ReportMetric(sb.MeanRPS, "baseline_mean_rps")
		b.ReportMetric(ss.MeanRPS, "slimio_fdp_mean_rps")
		b.ReportMetric(ss.MinRPS, "slimio_fdp_min_rps")
		b.ReportMetric(float64(ss.Nosedives), "slimio_fdp_nosedives")
	}
}

// runAblationCell runs one redis-benchmark cell for an ablation variant.
func runAblationCell(b *testing.B, kind exp.BackendKind, sc exp.Scale) *exp.CellResult {
	res, err := exp.RunCell(exp.CellConfig{
		Kind:           kind,
		Policy:         imdb.PeriodicalLog,
		Scale:          sc,
		Workload:       workload.RedisBench(0, sc.KeyRange),
		OnDemandPerRep: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	res.Stack.Eng.Shutdown()
	if err := res.ReleaseHeavy(); err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblation_PassthruOnly isolates the I/O-path mechanism: SlimIO's
// rings on a conventional (non-FDP) SSD. Syscall relief remains; GC relief
// is gone (the Figure 4 configuration, summarized as a Table-3-style row).
func BenchmarkAblation_PassthruOnly(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res := runAblationCell(b, exp.SlimIOConv, sc)
		reportOverallRow(b, "passthru_only", res)
	}
}

// BenchmarkAblation_FDPOnly isolates the placement mechanism: the kernel
// path on an FDP SSD with an FDP-aware filesystem assigning per-file
// placement IDs. GC relief remains; syscall relief is gone.
func BenchmarkAblation_FDPOnly(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res := runAblationCell(b, exp.FDPAwareFS, sc)
		reportOverallRow(b, "fdp_only", res)
	}
}

// BenchmarkAblation_SQPollOff quantifies the SQPOLL share of the win:
// SlimIO-on-FDP with syscall-mode submission on the Snapshot-Path.
func BenchmarkAblation_SQPollOff(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res := runAblationCell(b, exp.SlimIONoSQPoll, sc)
		reportOverallRow(b, "sqpoll_off", res)
	}
}

// BenchmarkAblation_SchedulerPriority exercises the §4 argument that
// sync-priority I/O schedulers deprioritize snapshot writes: baseline F2FS
// with a sync-priority scheduler instead of 'none'.
func BenchmarkAblation_SchedulerPriority(b *testing.B) {
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res := runAblationCell(b, exp.BaselineF2FSPrio, sc)
		reportOverallRow(b, "sched_prio", res)
	}
}
