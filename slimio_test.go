package slimio_test

import (
	"fmt"
	"testing"

	slimio "github.com/slimio/slimio"
)

// TestPublicAPISystem exercises the package façade end to end: build a
// system, serve traffic, snapshot, and check invariants through exported
// names only.
func TestPublicAPISystem(t *testing.T) {
	sys, err := slimio.NewSystem(slimio.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Sim.Spawn("client", func(env *slimio.Env) {
		for i := 0; i < 200; i++ {
			if err := sys.DB.Set(env, fmt.Sprintf("k%03d", i), []byte("v")); err != nil {
				t.Error(err)
				return
			}
		}
		got, err := sys.DB.Get(env, "k007")
		if err != nil || string(got) != "v" {
			t.Errorf("get = %q, %v", got, err)
		}
		trig := sys.DB.TriggerSnapshot(slimio.OnDemandSnapshot)
		trig.Reply.Wait(env)
		sys.DB.WaitNoSnapshot(env)
		sys.DB.Shutdown(env)
	})
	sys.Sim.Run()

	if n := len(sys.DB.Stats().Snapshots); n != 1 {
		t.Fatalf("snapshots = %d", n)
	}
	if waf := sys.Device.Stats().WAF(); waf != 1.0 {
		t.Fatalf("WAF = %v", waf)
	}
}

// ExampleNewSystem is the doc example for the package front page.
func ExampleNewSystem() {
	sys, err := slimio.NewSystem(slimio.SystemConfig{DeviceBytes: 32 << 20})
	if err != nil {
		panic(err)
	}
	sys.Sim.Spawn("client", func(env *slimio.Env) {
		_ = sys.DB.Set(env, "answer", []byte("42"))
		v, _ := sys.DB.Get(env, "answer")
		fmt.Printf("answer = %s\n", v)
		sys.DB.Shutdown(env)
	})
	sys.Sim.Run()
	// Output: answer = 42
}
