// Deliberately violating fixture for slimio-vet's determinism contract on
// itself: the driver's double-run test lints this package twice and
// requires byte-identical output, and the SARIF test feeds the same
// findings through the exporter. Several passes fire here (wallclock,
// globalrand, rawgoroutine, maporder, retainbuf, refflow) so the global
// (file, offset, pass) ordering is actually exercised.
package det

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/slimio/slimio/internal/bufpool"
)

func clock() time.Time {
	return time.Now()
}

func roll() int {
	return rand.Intn(6)
}

func fanOut() {
	go fmt.Println("untracked")
}

func printMap(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

func useAfterRelease(p *bufpool.Pool) byte {
	s := p.Get()
	b := s.Bytes()
	s.Release()
	return b[0]
}

func leak(p *bufpool.Pool) {
	s := p.Get()
	_ = s.Bytes()
}

func doubleRelease(p *bufpool.Pool) {
	s := p.Get()
	s.Release()
	s.Release()
}
