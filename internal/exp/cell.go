package exp

import (
	"fmt"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/telemetry"
	"github.com/slimio/slimio/internal/vtrace"
	"github.com/slimio/slimio/internal/workload"
)

// CellConfig describes one measured configuration (one row-cell of a
// paper table).
type CellConfig struct {
	Kind   BackendKind
	Policy imdb.LogPolicy
	Scale  Scale
	// Workload is the per-repetition driver; its Ops field is overridden
	// by Scale.OpsPerRep.
	Workload workload.Config
	// OnDemandPerRep triggers an On-Demand-Snapshot at the end of every
	// repetition (the redis-benchmark protocol of §5.1).
	OnDemandPerRep bool
	// DisableWALSnapshots turns off the size trigger (for WAL-only and
	// snapshot-only studies).
	DisableWALSnapshots bool
	// Preload inserts the whole keyspace before measuring (YCSB load
	// phase; also used by snapshot-only studies).
	Preload bool
	// SnapshotOnly replaces client traffic with a single On-Demand-Snapshot
	// over a preloaded dataset (the paper's "Snapshot Only" scenario).
	SnapshotOnly bool
	// OnDemandMidRun triggers one On-Demand-Snapshot once ~40% of each
	// repetition's operations have completed, so it overlaps live traffic
	// (the paper's "Snapshot & WAL" scenario).
	OnDemandMidRun bool
	// GCPressure puts the device under sustained garbage collection for the
	// whole run (the paper's "under GC" scenario). At 1/500 scale the
	// free-space dynamics behind organic steady-state GC cannot form, so
	// the controller work is injected on the dies (see DESIGN.md).
	GCPressure bool
	// TraceLabel overrides the cell's tracer label (default "Kind/Policy").
	// Runners that launch several cells with the same kind and policy must
	// set it: concurrent cells sharing a registry label would share one
	// tracer, which is both a data race and a scrambled trace.
	TraceLabel string
}

// Injected GC intensity: fraction of every die occupied by internal GC work
// while GCPressure is on, and the injection granule.
const (
	gcPressureDuty   = 0.6
	gcPressurePeriod = 2 * sim.Millisecond
)

// CellResult aggregates everything a table row needs.
type CellResult struct {
	Label  string
	Config CellConfig

	// Phase-split request rates (ops/s of virtual time).
	WALOnlyRPS float64
	SnapRPS    float64
	AvgRPS     float64

	// Memory (bytes): steady state and snapshot-period peak.
	WALOnlyMem int64
	SnapMem    int64

	SetP999 sim.Duration
	GetP999 sim.Duration

	Snapshots        []imdb.SnapshotEvent
	MeanSnapshotTime sim.Duration

	WAF      float64
	Duration sim.Duration
	Series   *metrics.Series
	Engine   imdb.Stats
	Stack    *Stack
	// Trace is the cell's span tracer (nil when Scale.Trace is unset).
	Trace *vtrace.Tracer

	cellHists
}

// RunCell builds the stack, runs Reps repetitions of the workload, and
// collects the cell metrics.
func RunCell(cfg CellConfig) (*CellResult, error) {
	eng := sim.NewEngine()
	label := cfg.TraceLabel
	if label == "" {
		label = fmt.Sprintf("%s/%s", cfg.Kind, cfg.Policy)
	}
	sc := cfg.Scale
	costM0 := cellCostStart(sc.CellCosts)
	var tracer *vtrace.Tracer
	if sc.Trace != nil {
		tracer = sc.Trace.Tracer(label)
		sc.tracer = tracer
	}
	var tele *telemetry.Cell
	if sc.Telemetry != nil {
		tele = sc.Telemetry.Cell(label)
		sc.tele = tele
	}
	// The flight recorder's last trigger: a panicking cell (including the
	// engine's deadlock panic) dumps its trailing samples and spans before
	// the panic propagates.
	defer func() {
		if r := recover(); r != nil {
			tele.DumpFlight(fmt.Sprintf("panic: %v", r)) //nolint:errcheck // repanicking
			panic(r)
		}
	}()
	st, err := BuildStack(eng, cfg.Kind, sc)
	if err != nil {
		return nil, err
	}
	series := metrics.NewSeries(cfg.Scale.RPSInterval)

	dbCfg := imdb.Config{Policy: cfg.Policy, Trace: tracer, Pool: st.Pool()}
	if !cfg.DisableWALSnapshots {
		dbCfg.WALSnapshotTrigger = cfg.Scale.WALTriggerBytes
	}
	db := imdb.New(eng, st.Backend, dbCfg, series)
	db.Start()

	AttachStackTelemetry(st, tele)
	attachEngineTelemetry(db, tele)
	tele.SetTracer(tracer)
	tele.Start(eng)

	wl := cfg.Workload
	wl.Ops = cfg.Scale.OpsPerRep
	if cfg.Scale.ValueSize > 0 {
		wl.ValueSize = cfg.Scale.ValueSize
	}

	stopGC := func() {}
	if cfg.GCPressure {
		stopGC = st.Dev.InjectGCPressure(eng, gcPressureDuty, gcPressurePeriod)
	}

	res := &CellResult{Label: label, Config: cfg, Series: series, Stack: st, Trace: tracer}
	var runErr error
	var endAt sim.Time
	eng.Spawn("driver", func(env *sim.Env) {
		if cfg.Preload || cfg.SnapshotOnly {
			if err := workload.Preload(env, db, wl); err != nil {
				runErr = err
				stopGC()
				tele.Stop()
				return
			}
		}
		if cfg.SnapshotOnly {
			trig := db.TriggerSnapshot(imdb.OnDemandSnapshot)
			trig.Reply.Wait(env)
			db.WaitNoSnapshot(env)
			db.Shutdown(env)
			endAt = env.Now()
			stopGC()
			tele.Stop()
			return
		}
		for rep := 0; rep < max(1, cfg.Scale.Reps); rep++ {
			repWL := wl
			repWL.Seed = wl.Seed + int64(rep)*1000003
			runner := workload.Start(env.Engine(), db, repWL)
			if cfg.OnDemandMidRun {
				target := repWL.Ops * 2 / 5
				for runner.Result().Ops < target {
					env.Sleep(5 * sim.Millisecond)
				}
				trig := db.TriggerSnapshot(imdb.OnDemandSnapshot)
				trig.Reply.Wait(env)
			}
			runner.Done.Wait(env)
			mergeResult(res, runner.Result())
			if cfg.OnDemandPerRep {
				trig := db.TriggerSnapshot(imdb.OnDemandSnapshot)
				trig.Reply.Wait(env)
				db.WaitNoSnapshot(env)
			}
		}
		db.WaitNoSnapshot(env)
		db.Shutdown(env)
		endAt = env.Now()
		stopGC()
		tele.Stop()
	})
	eng.Run()
	if runErr != nil {
		tele.DumpFlight("run error: " + runErr.Error()) //nolint:errcheck // the run error wins
		eng.Shutdown()
		return nil, runErr
	}

	res.Duration = endAt.Sub(0)
	res.Engine = db.Stats()
	res.Snapshots = res.Engine.Snapshots
	res.WAF = st.Dev.Stats().WAF()
	res.WALOnlyMem = res.Engine.BaseMemory
	res.SnapMem = res.Engine.PeakMemory
	if res.SnapMem < res.WALOnlyMem {
		res.SnapMem = res.WALOnlyMem
	}
	res.SetP999 = res.setHist.P999()
	res.GetP999 = res.getHist.P999()
	splitPhases(res)
	cellCostEnd(sc.CellCosts, label, costM0)
	return res, nil
}

// ReleaseHeavy tears down the cell's stack — the SlimIO rings and tail
// buffers, the kernel page cache, staged block-layer requests, and the NAND
// array's stored pages — then asserts the data plane quiescent: a non-zero
// pool in-flight count after teardown is a leaked reference somewhere on the
// zero-copy write path. Once quiescent the pool itself is closed, handing
// its backing chunks (a device-capacity footprint) to bufpool's process-wide
// chunk cache for the next cell. Finally it drops the references that keep
// the whole simulated device (hundreds of MB of real page bytes) alive: the
// stack and the RPS series. Table runners call it once a cell's metrics are
// extracted, so a multi-cell experiment never holds more than one stack at
// a time.
func (res *CellResult) ReleaseHeavy() error {
	var err error
	if st := res.Stack; st != nil {
		st.Close()
		if n := st.Pool().InFlight(); n != 0 {
			err = fmt.Errorf("exp: %s: %d pooled segments leaked after teardown", res.Label, n)
		} else {
			st.Pool().Close()
		}
	}
	res.Stack = nil
	res.Series = nil
	return err
}

// mergeResult folds one repetition's latency data into the cell.
func mergeResult(res *CellResult, r *workload.Result) {
	res.setHist.Merge(&r.SetLatency)
	res.getHist.Merge(&r.GetLatency)
}

// internal histograms live on the result so repetitions can merge.
type cellHists struct {
	setHist metrics.Histogram
	getHist metrics.Histogram
}

// splitPhases computes WAL-only vs WAL&Snapshot request rates from the RPS
// series and the snapshot intervals, plus the mean snapshot duration.
func splitPhases(res *CellResult) {
	interval := res.Series.Interval()
	inSnap := func(i int) bool {
		bStart := sim.Time(int64(i) * int64(interval))
		bEnd := bStart.Add(interval)
		for _, ev := range res.Snapshots {
			if ev.Start < bEnd && ev.End > bStart {
				return true
			}
		}
		return false
	}
	var snapOps, walOps int64
	var snapBuckets, walBuckets int
	// Only whole buckets count: the trailing partial bucket would dilute
	// whichever phase it lands in.
	lastBucket := int(int64(res.Duration) / int64(interval))
	if lastBucket > res.Series.Len() {
		lastBucket = res.Series.Len()
	}
	for i := 0; i < lastBucket; i++ {
		if inSnap(i) {
			snapOps += res.Series.Count(i)
			snapBuckets++
		} else {
			walOps += res.Series.Count(i)
			walBuckets++
		}
	}
	secs := interval.Seconds()
	if walBuckets > 0 {
		res.WALOnlyRPS = float64(walOps) / (float64(walBuckets) * secs)
	}
	if snapBuckets > 0 {
		res.SnapRPS = float64(snapOps) / (float64(snapBuckets) * secs)
	}
	if res.Duration > 0 {
		res.AvgRPS = float64(walOps+snapOps) / res.Duration.Seconds()
	}
	var total sim.Duration
	for _, ev := range res.Snapshots {
		total += ev.Duration
	}
	if n := len(res.Snapshots); n > 0 {
		res.MeanSnapshotTime = total / sim.Duration(n)
	}
}
