package exp

import (
	"fmt"

	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/telemetry"
	"github.com/slimio/slimio/internal/uring"
)

// ruIntrospect is the reclaim-unit inspection surface shared by the FDP FTL
// and its conventional (single-stream) variant — both expose it, so the
// telemetry plane samples RU occupancy on every stack kind.
type ruIntrospect interface {
	FreeRUs() int
	RUCount() int
	Usage() []fdp.RUUsage
	Stats() fdp.Stats
}

// AttachStackTelemetry registers the per-layer probes of a built stack on
// cell: NAND (op counts, per-channel and per-die busy time), FTL (write and
// GC page counters — the decomposed live-WAF series), FDP (free reclaim
// units, reclaim counts, per-RU valid-page occupancy), SSD retries, the
// buffer pool's in-flight count, and the path-specific layers (kernel
// filesystem or SlimIO rings). All gauges are created here, before the cell
// starts, so the flight ring and the export see one fixed, sorted schema.
//
// A nil cell (telemetry off) makes this a no-op; the stack stays untouched
// and allocation-free. Probes only read state, so attaching telemetry never
// perturbs the simulation's event order.
func AttachStackTelemetry(st *Stack, cell *telemetry.Cell) {
	if st == nil || cell == nil {
		return
	}

	arr := st.Dev.FTL().Array()
	geo := arr.Geometry()

	gReads := cell.Gauge("nand.reads")
	gPrograms := cell.Gauge("nand.programs")
	gErases := cell.Gauge("nand.erases")
	chanGauges := make([]*metrics.Gauge, geo.Channels)
	for ch := 0; ch < geo.Channels; ch++ {
		chanGauges[ch] = cell.Gauge(fmt.Sprintf("nand.chan%d.busy_ns", ch))
	}
	gDieBusyMin := cell.Gauge("nand.die_busy_min_ns")
	gDieBusyMax := cell.Gauge("nand.die_busy_max_ns")
	gDieBusyTotal := cell.Gauge("nand.die_busy_total_ns")
	dies := geo.Dies()
	cell.AddProbe(func(now sim.Time) {
		ns := arr.Stats()
		gReads.Set(now, ns.Reads)
		gPrograms.Set(now, ns.Programs)
		gErases.Set(now, ns.Erases)
		for ch, g := range chanGauges {
			g.Set(now, int64(arr.ChannelBusyTotal(ch)))
		}
		var minB, maxB, total sim.Duration
		for d := 0; d < dies; d++ {
			b := arr.DieBusyTotal(d)
			if d == 0 || b < minB {
				minB = b
			}
			if b > maxB {
				maxB = b
			}
			total += b
		}
		gDieBusyMin.Set(now, int64(minB))
		gDieBusyMax.Set(now, int64(maxB))
		gDieBusyTotal.Set(now, int64(total))
	})

	// FTL page counters: host vs NAND writes are the live write-amplification
	// decomposition (WAF at tick k = nand/host); GC copies explain the gap.
	gHostW := cell.Gauge("ftl.host_write_pages")
	gNANDW := cell.Gauge("ftl.nand_write_pages")
	gGCCopied := cell.Gauge("ftl.gc_copied_pages")
	gGCRuns := cell.Gauge("ftl.gc_runs")
	gGCBusy := cell.Gauge("ftl.gc_busy_ns")
	cell.AddProbe(func(now sim.Time) {
		fs := st.Dev.Stats()
		gHostW.Set(now, fs.HostWritePages)
		gNANDW.Set(now, fs.NANDWritePages)
		gGCCopied.Set(now, fs.GCCopiedPages)
		gGCRuns.Set(now, fs.GCRuns)
		gGCBusy.Set(now, int64(fs.GCBusy))
	})

	if ru, ok := st.Dev.FTL().(ruIntrospect); ok {
		gFreeRUs := cell.Gauge("fdp.free_rus")
		gReclaimed := cell.Gauge("fdp.rus_reclaimed")
		gReclaimedEmpty := cell.Gauge("fdp.rus_reclaimed_empty")
		gValidMin := cell.Gauge("fdp.ru_valid_min")
		gValidMax := cell.Gauge("fdp.ru_valid_max")
		gValidAvg := cell.Gauge("fdp.ru_valid_avg")
		hValid := cell.Histogram("fdp.ru_valid_pages")
		cell.AddProbe(func(now sim.Time) {
			gFreeRUs.Set(now, int64(ru.FreeRUs()))
			rs := ru.Stats()
			gReclaimed.Set(now, rs.RUsReclaimed)
			gReclaimedEmpty.Set(now, rs.RUsReclaimedEmpty)
			var minV, maxV, sum int64
			n := int64(0)
			for _, u := range ru.Usage() {
				if u.State == "free" {
					continue
				}
				v := int64(u.Valid)
				if n == 0 || v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
				sum += v
				n++
				hValid.Record(sim.Duration(v))
			}
			gValidMin.Set(now, minV)
			gValidMax.Set(now, maxV)
			if n > 0 {
				gValidAvg.Set(now, sum/n)
			} else {
				gValidAvg.Set(now, 0)
			}
		})
	}

	gReadRetries := cell.Gauge("ssd.read_retries")
	gWriteRetries := cell.Gauge("ssd.write_retries")
	gReadFail := cell.Gauge("ssd.read_failures")
	gWriteFail := cell.Gauge("ssd.write_failures")
	gInFlight := cell.Gauge("bufpool.inflight")
	pool := st.Pool()
	cell.AddProbe(func(now sim.Time) {
		io := st.Dev.IOStats()
		gReadRetries.Set(now, io.ReadRetries)
		gWriteRetries.Set(now, io.WriteRetries)
		gReadFail.Set(now, io.ReadFailures)
		gWriteFail.Set(now, io.WriteFailures)
		gInFlight.Set(now, int64(pool.InFlight()))
	})

	if st.FS != nil {
		gDirty := cell.Gauge("kernelio.dirty_pages")
		gWB := cell.Gauge("kernelio.wb_inflight")
		gSys := cell.Gauge("kernelio.syscalls")
		gWBPages := cell.Gauge("kernelio.writeback_pages")
		gStalls := cell.Gauge("kernelio.throttle_stalls")
		gJLock := cell.Gauge("kernelio.journal_lock_wait_ns")
		gCommits := cell.Gauge("kernelio.commits")
		cell.AddProbe(func(now sim.Time) {
			gDirty.Set(now, int64(st.FS.DirtyPages()))
			gWB.Set(now, int64(st.FS.WritebackInflight()))
			s := st.FS.Stats()
			gSys.Set(now, s.Syscalls)
			gWBPages.Set(now, s.WritebackPages)
			gStalls.Set(now, s.ThrottleStalls)
			gJLock.Set(now, int64(s.JournalLockWait))
			gCommits.Set(now, s.Commits)
		})
	}

	if st.Slim != nil {
		attachRingTelemetry(cell, "uring.wal", func() *uring.Ring { return st.Slim.WALRing() })
		attachRingTelemetry(cell, "uring.snap", func() *uring.Ring { return st.Slim.SnapshotRing() })
	}
}

// AttachTenantTelemetry registers a multi-tenant stack's probes on cell:
// the shared-device gauges of AttachStackTelemetry's FTL/FDP/pool sections
// plus, per tenant, its host write volume and live WAF in integer
// hundredths (the shared baseline cannot attribute GC, so every tenant
// reads the device-global WAF there — which is the finding). All gauges are
// created before the cell starts, so the schema is fixed; a nil cell is a
// no-op.
func AttachTenantTelemetry(ts *TenantStack, cell *telemetry.Cell) {
	if ts == nil || cell == nil {
		return
	}

	gHostW := cell.Gauge("ftl.host_write_pages")
	gNANDW := cell.Gauge("ftl.nand_write_pages")
	gGCCopied := cell.Gauge("ftl.gc_copied_pages")
	gFreeRUs := cell.Gauge("fdp.free_rus")
	gReclaimed := cell.Gauge("fdp.rus_reclaimed")
	gInFlight := cell.Gauge("bufpool.inflight")
	gTenants := cell.Gauge("tenant.count")
	pool := ts.Pool()
	cell.AddProbe(func(now sim.Time) {
		fs := ts.Dev.Stats()
		gHostW.Set(now, fs.HostWritePages)
		gNANDW.Set(now, fs.NANDWritePages)
		gGCCopied.Set(now, fs.GCCopiedPages)
		gFreeRUs.Set(now, int64(ts.FDP.FreeRUs()))
		rs := ts.FDP.Stats()
		gReclaimed.Set(now, rs.RUsReclaimed)
		gInFlight.Set(now, int64(pool.InFlight()))
		gTenants.Set(now, int64(len(ts.Tenants)))
	})

	for _, t := range ts.Tenants {
		t := t
		gPages := cell.Gauge(fmt.Sprintf("%s.host_pages", t.Name))
		gWAF := cell.Gauge(fmt.Sprintf("%s.waf_x100", t.Name))
		cell.AddProbe(func(now sim.Time) {
			gPages.Set(now, t.NS.HostWritePages())
			gWAF.Set(now, ts.TenantWAFx100(t))
		})
	}
}

// attachRingTelemetry registers queue-depth and poller gauges for one
// io_uring instance. The ring is re-resolved every tick because the
// Snapshot-Path opens a fresh ring per snapshot generation; while no ring
// exists the gauges read zero.
func attachRingTelemetry(cell *telemetry.Cell, prefix string, ring func() *uring.Ring) {
	gSQ := cell.Gauge(prefix + ".sq_depth")
	gCQ := cell.Gauge(prefix + ".cq_depth")
	gSub := cell.Gauge(prefix + ".submitted")
	gComp := cell.Gauge(prefix + ".completed")
	gSys := cell.Gauge(prefix + ".syscalls")
	gWakes := cell.Gauge(prefix + ".sqpoll_wakes")
	gIdle := cell.Gauge(prefix + ".sqpoll_idle_ns")
	cell.AddProbe(func(now sim.Time) {
		r := ring()
		if r == nil {
			gSQ.Set(now, 0)
			gCQ.Set(now, 0)
			return
		}
		gSQ.Set(now, int64(r.SQDepth()))
		gCQ.Set(now, int64(r.CQDepth()))
		s := r.Stats()
		gSub.Set(now, s.Submitted)
		gComp.Set(now, s.Completed)
		gSys.Set(now, s.Syscalls)
		gWakes.Set(now, s.SQPollWakes)
		gIdle.Set(now, int64(s.SQPollIdle))
	})
}

// attachEngineTelemetry registers the IMDB-level probes: WAL buffer fill,
// the fsync backlog (drained-but-unaccepted log bytes), whether a sync is
// in flight, and the modelled memory footprint.
func attachEngineTelemetry(db *imdb.Engine, cell *telemetry.Cell) {
	if db == nil || cell == nil {
		return
	}
	gBuf := cell.Gauge("imdb.wal_buf_bytes")
	gPending := cell.Gauge("imdb.wal_pending_bytes")
	gSyncing := cell.Gauge("imdb.syncing")
	gMem := cell.Gauge("imdb.memory_bytes")
	cell.AddProbe(func(now sim.Time) {
		gBuf.Set(now, int64(db.WALBufferedBytes()))
		gPending.Set(now, int64(db.WALPendingBytes()))
		syncing := int64(0)
		if db.SyncInFlight() {
			syncing = 1
		}
		gSyncing.Set(now, syncing)
		gMem.Set(now, db.MemoryNow())
	})
}
