package exp

import (
	"fmt"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/core"
	"github.com/slimio/slimio/internal/fault"
	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
	"github.com/slimio/slimio/internal/vtrace"
)

// TenantPlacement selects how co-located tenants share one device.
type TenantPlacement int

const (
	// TenantShared is the noisy-neighbor baseline: a conventional
	// single-stream FTL, so every tenant's lifetimes mix in shared reclaim
	// units and GC bills its copies to everyone.
	TenantShared TenantPlacement = iota
	// TenantFDP leases each tenant an exclusive placement-ID range on an
	// FDP FTL: same-lifetime data stays in per-tenant reclaim units and a
	// quiet tenant's WAF is untouched by its neighbors.
	TenantFDP
)

func (p TenantPlacement) String() string {
	if p == TenantFDP {
		return "per-tenant-fdp"
	}
	return "shared-pid"
}

// TenantPIDs is the per-tenant placement-stream count: SlimIO's four
// lifetime classes (WAL, WAL-snapshot, on-demand, metadata) plus the
// reserved local stream 0 that unknown lifetimes fall back to.
const TenantPIDs = 5

// Tenant is one mounted engine-backend pair of a TenantStack.
type Tenant struct {
	Index int
	Name  string
	// Lease is the tenant's PID range (nil on the shared baseline).
	Lease *fdp.PIDLease
	// NS is the tenant's LPA window + PID remapping over the shared FTL.
	NS *ssd.Namespace
	// Dev is the tenant's own device front-end over NS.
	Dev *ssd.Device
	// Slim is the tenant's SlimIO persistence backend.
	Slim *core.Backend
}

// TenantStack mounts N independent SlimIO backends on ONE shared device —
// the cloud-consolidation scenario the isolation experiment measures. All
// tenants run on one sim.Engine, so the interleaving is deterministic like
// any single-tenant cell.
type TenantStack struct {
	Placement TenantPlacement
	Eng       *sim.Engine
	// Dev is the whole shared device (device-global stats and telemetry).
	Dev *ssd.Device
	// FDP is the shared FTL's reclaim-unit introspection surface (the FDP
	// FTL or its conventional variant — both expose it).
	FDP ruIntrospect
	// Alloc is the PID-lease allocator (nil on the shared baseline).
	Alloc *fdp.PIDAllocator
	// Fault is the shared device's fault plan (crash harnesses arm power
	// cuts through it).
	Fault *fault.Plan
	// Trace is the resolved per-cell tracer (nil when tracing is off).
	Trace   *vtrace.Tracer
	Tenants []*Tenant
}

// BuildTenantStack assembles one shared device and mounts tenants SlimIO
// backends on it. Each tenant gets an equal LPA window; under TenantFDP each
// also leases TenantPIDs placement identifiers (the device is sized with
// MaxPIDs = tenants×TenantPIDs). Scale.SlotBytes sizes each tenant's
// snapshot slots, so multi-tenant callers typically shrink it by the tenant
// count first.
func BuildTenantStack(eng *sim.Engine, placement TenantPlacement, tenants int, sc Scale) (*TenantStack, error) {
	if tenants < 1 {
		return nil, fmt.Errorf("exp: tenant stack needs at least one tenant, got %d", tenants)
	}
	geo := nand.DefaultGeometry(sc.DeviceBytes)
	lat := nand.DefaultLatencies()
	arr, err := nand.New(geo, lat)
	if err != nil {
		return nil, err
	}
	arr.SetClock(eng)
	tr := sc.tracer
	if tr == nil && sc.Trace != nil {
		tr = sc.Trace.Tracer(placement.String())
	}
	arr.SetTracer(tr)
	ts := &TenantStack{Placement: placement, Eng: eng, Trace: tr}

	plan := fault.NewPlan(fault.Config{
		Seed:           sc.FaultSeed,
		ReadErrRate:    sc.ReadErrRate,
		ProgramErrRate: sc.ProgramErrRate,
		EraseErrRate:   sc.EraseErrRate,
		Metrics:        sc.Metrics,
	})
	plan.SetRecorder(sc.FaultRecorder)
	ts.Fault = plan
	if plan.Active() {
		arr.SetFaultHook(plan)
	}

	// One shared FTL below every tenant: the experimental variable is
	// placement only, so both modes run the identical SlimIO write path.
	var shared ssd.FTL
	switch placement {
	case TenantFDP:
		f, err := fdp.New(arr, fdp.Config{MaxPIDs: tenants * TenantPIDs, Metrics: sc.Metrics, Trace: tr})
		if err != nil {
			return nil, err
		}
		alloc, err := fdp.NewPIDAllocator(tenants * TenantPIDs)
		if err != nil {
			return nil, err
		}
		ts.Alloc = alloc
		ts.FDP = f
		shared = f
	case TenantShared:
		f, err := fdp.NewConventional(arr, fdp.Config{Metrics: sc.Metrics, Trace: tr})
		if err != nil {
			return nil, err
		}
		ts.FDP = f
		shared = f
	default:
		return nil, fmt.Errorf("exp: unknown tenant placement %d", placement)
	}
	ts.Dev = ssd.New(shared, ssd.Config{Metrics: sc.Metrics, Trace: tr})

	window := shared.Capacity() / int64(tenants)
	slotPages := sc.SlotBytes / int64(geo.PageSize)
	for i := 0; i < tenants; i++ {
		t := &Tenant{Index: i, Name: fmt.Sprintf("tenant%d", i)}
		var mapPID func(uint32) uint32
		if ts.Alloc != nil {
			lease, err := ts.Alloc.Acquire(t.Name, TenantPIDs)
			if err != nil {
				return nil, err
			}
			t.Lease = lease
			mapPID = lease.PID
		}
		ns, err := ssd.NewNamespace(shared, int64(i)*window, window, mapPID)
		if err != nil {
			return nil, err
		}
		t.NS = ns
		t.Dev = ssd.New(ns, ssd.Config{Metrics: sc.Metrics, Trace: tr})
		be, err := core.New(eng, t.Dev, core.Config{SlotPages: slotPages, Trace: tr})
		if err != nil {
			return nil, fmt.Errorf("exp: %s backend: %w", t.Name, err)
		}
		t.Slim = be
		ts.Tenants = append(ts.Tenants, t)
	}
	return ts, nil
}

// Pool returns the stack's shared page-buffer pool (one per device; every
// tenant's write path encodes into it).
func (ts *TenantStack) Pool() *bufpool.Pool {
	return ts.Dev.FTL().Array().Pool()
}

// Close releases every pooled segment the stack still holds: each tenant's
// rings and tail buffers, then the shared NAND array's stored pages.
// Teardown only — afterwards Pool().InFlight() counts exactly the segments
// leaked by layers above the stack.
func (ts *TenantStack) Close() {
	for _, t := range ts.Tenants {
		t.Slim.Close()
	}
	ts.Dev.FTL().Array().ReleaseStored()
}

// ArmPowerCut schedules a power cut at virtual time at, for every tenant at
// once — they share the device, so they share the outage.
func (ts *TenantStack) ArmPowerCut(at sim.Time) {
	ts.Fault.SchedulePowerCut(at)
	ts.Dev.FTL().Array().SetFaultHook(ts.Fault)
}

// tenantCounters returns tenant t's host-written and total NAND-written
// page counts. Under per-tenant FDP both roll up over t's lease; on the
// shared baseline attribution is impossible (every write shares stream 0),
// so each tenant is billed the device-global amplification prorated onto
// its own host volume.
func (ts *TenantStack) tenantCounters(t *Tenant) (host, nand int64) {
	if t.Lease != nil && ts.Alloc != nil {
		s := ts.FDP.Stats()
		for off := 0; off < t.Lease.Count; off++ {
			pid := t.Lease.Base + uint32(off)
			host += s.HostWritesByPID[pid]
			nand += s.HostWritesByPID[pid] + s.GCCopiesByPID[pid]
		}
		return host, nand
	}
	fs := ts.Dev.Stats()
	h := t.NS.HostWritePages()
	if fs.HostWritePages == 0 {
		return h, h
	}
	return h, h * fs.NANDWritePages / fs.HostWritePages
}

// TenantWAF reports tenant t's own write-amplification factor.
func (ts *TenantStack) TenantWAF(t *Tenant) float64 {
	host, nand := ts.tenantCounters(t)
	if host == 0 {
		return 1
	}
	return float64(nand) / float64(host)
}

// TenantWAFx100 is TenantWAF in integer hundredths (integer arithmetic
// only, for the telemetry plane's diffable gauges).
func (ts *TenantStack) TenantWAFx100(t *Tenant) int64 {
	host, nand := ts.tenantCounters(t)
	if host == 0 {
		return 100
	}
	return (nand*100 + host/2) / host
}
