package exp

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/workload"
)

// cellDigest captures every scalar metric of a cell result exactly (float
// bit patterns, not formatted values), so any reordering of simulation
// events shows up as a digest mismatch.
func cellDigest(res *CellResult) string {
	var b strings.Builder
	f := func(name string, v float64) { fmt.Fprintf(&b, "%s=%016x ", name, math.Float64bits(v)) }
	d := func(name string, v int64) { fmt.Fprintf(&b, "%s=%d ", name, v) }
	f("avgRPS", res.AvgRPS)
	f("walRPS", res.WALOnlyRPS)
	f("snapRPS", res.SnapRPS)
	f("waf", res.WAF)
	d("setP999", int64(res.SetP999))
	d("getP999", int64(res.GetP999))
	d("walMem", res.WALOnlyMem)
	d("snapMem", res.SnapMem)
	d("meanSnap", int64(res.MeanSnapshotTime))
	d("dur", int64(res.Duration))
	d("snapshots", int64(len(res.Snapshots)))
	for i, ev := range res.Snapshots {
		fmt.Fprintf(&b, "snap%d=%d+%d ", i, int64(ev.Start), int64(ev.Duration))
	}
	return b.String()
}

// TestDeterminismSerialAndParallel is the bit-reproducibility regression
// gate for the perf work: a Table 3 cell pair (baseline-f2fs and slimio-fdp,
// Periodical-Log, per-rep On-Demand-Snapshots) must produce exactly the same
// metric bit patterns when run twice serially and once under the parallel
// cell scheduler. Each cell owns its engine and RNGs, so concurrency must
// not be observable in any result.
func TestDeterminismSerialAndParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism regression is not a -short test")
	}
	sc := SmallScale()
	sc.Reps = 1
	sc.OpsPerRep = 20_000

	kinds := []BackendKind{BaselineF2FS, SlimIOFDP}
	runPair := func(parallel int) []string {
		digests := make([]string, len(kinds))
		err := runCells(len(kinds), parallel, func(i int) error {
			res, err := RunCell(CellConfig{
				Kind: kinds[i], Policy: imdb.PeriodicalLog, Scale: sc,
				Workload:       workload.RedisBench(0, sc.KeyRange),
				OnDemandPerRep: true,
			})
			if err != nil {
				return err
			}
			res.Stack.Eng.Shutdown()
			res.ReleaseHeavy()
			digests[i] = cellDigest(res)
			return nil
		})
		if err != nil {
			t.Fatalf("run pair (parallel=%d): %v", parallel, err)
		}
		return digests
	}

	serial1 := runPair(1)
	serial2 := runPair(1)
	concurrent := runPair(2)
	for i, kind := range kinds {
		if serial1[i] != serial2[i] {
			t.Errorf("%s: serial run not reproducible:\n  run1: %s\n  run2: %s", kind, serial1[i], serial2[i])
		}
		if serial1[i] != concurrent[i] {
			t.Errorf("%s: parallel run diverges from serial:\n  serial:   %s\n  parallel: %s", kind, serial1[i], concurrent[i])
		}
	}
}
