package exp

import (
	"flag"
	"fmt"
	"time"

	"github.com/slimio/slimio/internal/sim"
)

// simDurationValue adapts a sim.Duration to the flag.Value interface. The
// accepted syntax is Go duration syntax ("3s", "250ms", "1m30s"), but the
// parsed value is a span of *virtual* time: wall-clock flag.Duration values
// have no meaning inside the deterministic simulation, and using one
// invites exactly the confusion this helper removes.
type simDurationValue sim.Duration

func (v *simDurationValue) String() string {
	return sim.Duration(*v).String()
}

func (v *simDurationValue) Set(s string) error {
	d, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	if d < 0 {
		return fmt.Errorf("virtual duration must be non-negative, got %s", s)
	}
	*v = simDurationValue(d.Nanoseconds())
	return nil
}

// SimDurationFlag registers a virtual-time duration flag on the default
// command-line flag set and returns a pointer to the parsed sim.Duration.
// All cmd/ tools use this for simulated-time windows and intervals.
func SimDurationFlag(name string, def sim.Duration, usage string) *sim.Duration {
	return SimDurationFlagSet(flag.CommandLine, name, def, usage)
}

// SimDurationFlagSet is SimDurationFlag on an explicit flag set.
func SimDurationFlagSet(fs *flag.FlagSet, name string, def sim.Duration, usage string) *sim.Duration {
	d := def
	fs.Var((*simDurationValue)(&d), name, usage)
	return &d
}
