package exp

import (
	"flag"
	"testing"

	"github.com/slimio/slimio/internal/sim"
)

func TestSimDurationFlag(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	d := SimDurationFlagSet(fs, "window", 3*sim.Second, "w")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *d != 3*sim.Second {
		t.Errorf("default = %v, want 3s", *d)
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	d = SimDurationFlagSet(fs, "window", 0, "w")
	if err := fs.Parse([]string{"-window", "250ms"}); err != nil {
		t.Fatal(err)
	}
	if *d != 250*sim.Millisecond {
		t.Errorf("parsed = %v, want 250ms", *d)
	}
	if got := fs.Lookup("window").Value.String(); got != (250 * sim.Millisecond).String() {
		t.Errorf("String() = %q, want %q", got, (250 * sim.Millisecond).String())
	}

	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(discard{})
	SimDurationFlagSet(fs, "window", 0, "w")
	if err := fs.Parse([]string{"-window", "-5s"}); err == nil {
		t.Errorf("negative duration accepted")
	}
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(discard{})
	SimDurationFlagSet(fs, "window", 0, "w")
	if err := fs.Parse([]string{"-window", "bogus"}); err == nil {
		t.Errorf("malformed duration accepted")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
