package exp

import (
	"fmt"
	"strings"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/workload"
)

// TenantRow is one tenant's share of an isolation cell: host write volume,
// the GC copies billed to its placement streams (unattributable on the
// shared baseline), its own WAF, and its SET tail latency.
type TenantRow struct {
	Tenant string
	Role   string // "noisy" or "steady"
	Ops    int64
	// HostPages counts pages the tenant wrote through its namespace.
	HostPages int64
	// GCCopies is the reclaim-copy count billed to the tenant's leased
	// PIDs; -1 when the placement mode cannot attribute (shared stream).
	GCCopies int64
	WAF      float64
	SetP99   sim.Duration
}

// IsolationCell is one placement mode's result: the device-global WAF and
// every tenant's row.
type IsolationCell struct {
	Placement TenantPlacement
	DeviceWAF float64
	Rows      []TenantRow
}

// QuietWorstWAF returns the highest WAF among the steady tenants — the
// number the isolation claim is about.
func (c *IsolationCell) QuietWorstWAF() float64 {
	worst := 0.0
	for _, r := range c.Rows {
		if r.Role == "steady" && r.WAF > worst {
			worst = r.WAF
		}
	}
	return worst
}

// IsolationResult is the multi-tenant isolation experiment: the same tenant
// mix run twice, on the shared-PID baseline and under per-tenant FDP leases.
type IsolationResult struct {
	Tenants int
	Noisy   bool
	Cells   []*IsolationCell // shared-pid first, per-tenant-fdp second
}

// Cell returns the cell for placement p (nil if absent).
func (r *IsolationResult) Cell(p TenantPlacement) *IsolationCell {
	for _, c := range r.Cells {
		if c.Placement == p {
			return c
		}
	}
	return nil
}

func (r *IsolationResult) String() string {
	var b strings.Builder
	mix := "all steady"
	if r.Noisy {
		mix = "tenant0 noisy"
	}
	fmt.Fprintf(&b, "Isolation: %d co-located engines, one device (%s)\n", r.Tenants, mix)
	fmt.Fprintf(&b, "%-16s %-10s %-8s %10s %10s %10s %8s %12s\n",
		"Placement", "Tenant", "Role", "Ops", "HostPages", "GCCopies", "WAF", "SET p99")
	for _, c := range r.Cells {
		for _, row := range c.Rows {
			gc := "-"
			if row.GCCopies >= 0 {
				gc = fmt.Sprintf("%d", row.GCCopies)
			}
			fmt.Fprintf(&b, "%-16s %-10s %-8s %10d %10d %10s %8.2f %10dus\n",
				c.Placement, row.Tenant, row.Role, row.Ops, row.HostPages, gc,
				row.WAF, int64(row.SetP99)/int64(sim.Microsecond))
		}
		fmt.Fprintf(&b, "%-16s %-10s %-8s %10s %10s %10s %8.2f\n",
			c.Placement, "(device)", "", "", "", "", c.DeviceWAF)
	}
	return b.String()
}

// RunIsolation runs the noisy-neighbor isolation experiment: tenants
// co-located SlimIO engines on one shared device, once with every tenant's
// writes funneled into the shared placement stream (the conventional-FTL
// consolidation baseline) and once with per-tenant FDP leases. When noisy,
// tenant 0 is a Zipf-heavy overwriter with double the per-tenant operation
// budget; the rest are steady uniform writers. Cells run under the shared
// parallel harness, so results are byte-identical at any Scale.Parallel.
func RunIsolation(sc Scale, tenants int, noisy bool) (*IsolationResult, error) {
	if tenants < 2 {
		tenants = 2
	}
	placements := []TenantPlacement{TenantShared, TenantFDP}
	out := &IsolationResult{Tenants: tenants, Noisy: noisy, Cells: make([]*IsolationCell, len(placements))}
	err := runCells(len(placements), sc.Parallel, func(i int) error {
		cell, err := runIsolationCell(placements[i], tenants, noisy, sc)
		if err != nil {
			return err
		}
		out.Cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// isolationWorkload builds tenant idx's driver profile. The per-tenant op
// and key budgets divide the scale's volume so the experiment's total write
// volume matches a single-tenant run — and so each tenant's dataset (hence
// its compressed snapshot image) shrinks with its slot, keeping the
// image-fits-slot invariant at every scale. The noisy tenant gets twice the
// op budget over a quarter of its keyspace, which is what makes it noisy.
func isolationWorkload(idx, tenants int, noisy bool, sc Scale) (workload.Config, string) {
	ops := sc.OpsPerRep / int64(tenants)
	if ops < 1 {
		ops = 1
	}
	keys := sc.KeyRange / int64(tenants)
	if keys < 1 {
		keys = 1
	}
	if noisy && idx == 0 {
		hot := keys / 4
		if hot < 1 {
			hot = 1
		}
		return workload.NoisyNeighbor(ops*2, hot), "noisy"
	}
	wl := workload.SteadyTenant(ops, keys)
	wl.Seed += int64(idx) * 104729 // distinct key streams per steady tenant
	return wl, "steady"
}

// runIsolationCell runs one placement mode: build the tenant stack, drive
// every tenant's workload concurrently on the one engine, and roll up the
// per-tenant attribution.
func runIsolationCell(placement TenantPlacement, tenants int, noisy bool, sc Scale) (*IsolationCell, error) {
	eng := sim.NewEngine()
	label := "isolation/" + placement.String()
	costM0 := cellCostStart(sc.CellCosts)
	if sc.Trace != nil {
		sc.tracer = sc.Trace.Tracer(label)
	}
	if sc.Telemetry != nil {
		sc.tele = sc.Telemetry.Cell(label)
	}
	tele := sc.tele
	defer func() {
		if r := recover(); r != nil {
			tele.DumpFlight(fmt.Sprintf("panic: %v", r)) //nolint:errcheck // repanicking
			panic(r)
		}
	}()

	// Per-tenant sizing: each tenant owns 1/tenants of the device, so its
	// snapshot slots and WAL-snapshot trigger shrink by the same factor.
	// Beyond two tenants the shared device grows proportionally (every
	// tenant keeps a half-scale droplet): each tenant pins TenantPIDs open
	// reclaim units, so the RU count must grow with the tenant count.
	tsc := sc
	tsc.SlotBytes = sc.SlotBytes / int64(tenants)
	if tenants > 2 {
		tsc.DeviceBytes = sc.DeviceBytes / 2 * int64(tenants)
	}
	ts, err := BuildTenantStack(eng, placement, tenants, tsc)
	if err != nil {
		return nil, err
	}

	AttachTenantTelemetry(ts, tele)
	tele.SetTracer(ts.Trace)
	tele.Start(eng)

	type tenantRun struct {
		db   *imdb.Engine
		wl   workload.Config
		role string
		ops  int64
		p99  metrics.Histogram
	}
	runs := make([]*tenantRun, tenants)
	for i, t := range ts.Tenants {
		wl, role := isolationWorkload(i, tenants, noisy, sc)
		if sc.ValueSize > 0 {
			wl.ValueSize = sc.ValueSize
		}
		db := imdb.New(eng, t.Slim, imdb.Config{
			Policy:             imdb.PeriodicalLog,
			WALSnapshotTrigger: sc.WALTriggerBytes / int64(tenants),
			Trace:              ts.Trace,
			Pool:               ts.Pool(),
		}, nil)
		db.Start()
		runs[i] = &tenantRun{db: db, wl: wl, role: role}
	}
	pending := tenants
	for i := range runs {
		i := i
		tr := runs[i]
		eng.Spawn(fmt.Sprintf("tenant%d-driver", i), func(env *sim.Env) {
			for rep := 0; rep < max(1, sc.Reps); rep++ {
				repWL := tr.wl
				repWL.Seed = tr.wl.Seed + int64(rep)*1000003
				runner := workload.Start(env.Engine(), tr.db, repWL)
				if tr.role == "steady" {
					// A steady tenant keeps an operator backup: one
					// On-Demand-Snapshot early in the rep. Its long-lived
					// image is exactly the data a shared placement stream
					// forces reclaim to copy while the noisy tenant churns.
					target := repWL.Ops / 5
					for runner.Result().Ops < target {
						env.Sleep(5 * sim.Millisecond)
					}
					trig := tr.db.TriggerSnapshot(imdb.OnDemandSnapshot)
					trig.Reply.Wait(env)
				}
				runner.Done.Wait(env)
				res := runner.Result()
				tr.ops += res.Ops
				tr.p99.Merge(&res.SetLatency)
			}
			tr.db.WaitNoSnapshot(env)
			tr.db.Shutdown(env)
			if pending--; pending == 0 {
				tele.Stop()
			}
		})
	}
	eng.Run()

	cell := &IsolationCell{Placement: placement, DeviceWAF: ts.Dev.Stats().WAF()}
	for i, t := range ts.Tenants {
		row := TenantRow{
			Tenant:    t.Name,
			Role:      runs[i].role,
			Ops:       runs[i].ops,
			HostPages: t.NS.HostWritePages(),
			GCCopies:  -1,
			WAF:       ts.TenantWAF(t),
			SetP99:    runs[i].p99.P99(),
		}
		if t.Lease != nil && ts.Alloc != nil {
			for _, u := range ts.Alloc.Rollup(ts.FDP.Stats()) {
				if u.Tenant == t.Name {
					row.GCCopies = u.GCCopies
					row.HostPages = u.HostWrites
				}
			}
		}
		cell.Rows = append(cell.Rows, row)
	}

	ts.Close()
	if n := ts.Pool().InFlight(); n != 0 {
		return nil, fmt.Errorf("exp: %s: %d pooled segments leaked after teardown", label, n)
	}
	ts.Pool().Close()
	eng.Shutdown()
	cellCostEnd(sc.CellCosts, label, costM0)
	return cell, nil
}
