package exp

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/telemetry"
	"github.com/slimio/slimio/internal/workload"
)

// TestTelemetryDumpSerialParallelIdentical is the determinism acceptance
// gate: because sampling rides the virtual clock of each cell's own engine,
// running the table serially or with every cell concurrent must produce the
// same dump, byte for byte.
func TestTelemetryDumpSerialParallelIdentical(t *testing.T) {
	run := func(parallel int) []byte {
		sc := TinyScale()
		sc.Parallel = parallel
		sc.Telemetry = telemetry.NewRegistry(0)
		if _, err := RunTable3(sc); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sc.Telemetry.ExportJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	parallel := run(0)
	if err := telemetry.ValidateDump(serial); err != nil {
		t.Fatalf("serial dump invalid: %v", err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("telemetry dump differs between serial (%d bytes) and parallel (%d bytes) runs",
			len(serial), len(parallel))
	}
}

// wafSeries builds a stack of kind, attaches telemetry, runs churn as a sim
// process, and returns the cell's sampled dump.
func wafSeries(t *testing.T, kind BackendKind, churn func(env *sim.Env, st *Stack)) *telemetry.CellDump {
	t.Helper()
	reg := telemetry.NewRegistry(sim.Millisecond)
	cell := reg.Cell(kind.String())
	eng := sim.NewEngine()
	st, err := BuildStack(eng, kind, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	AttachStackTelemetry(st, cell)
	cell.Start(eng)
	eng.Spawn("churn", func(env *sim.Env) {
		churn(env, st)
		cell.Stop()
	})
	eng.Run()

	var buf bytes.Buffer
	if err := reg.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dump, err := telemetry.ParseDump(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return &dump.Cells[0]
}

// series extracts one gauge's sampled values from a cell dump.
func series(t *testing.T, c *telemetry.CellDump, name string) []int64 {
	t.Helper()
	idx := -1
	for i, n := range c.Names {
		if n == name {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("gauge %q missing from dump: %v", name, c.Names)
	}
	out := make([]int64, len(c.Samples))
	for k, s := range c.Samples {
		out[k] = s.V[idx]
	}
	return out
}

// TestLiveWAFSeries checks the paper's headline telemetry claim at the
// series level, not just the endpoint: under separated lifetimes on FDP the
// live WAF gauge reads exactly 1.00 at every sampled tick, while the
// conventional device under mixed-lifetime churn shows nand pulling away
// from host as reclaim copies.
func TestLiveWAFSeries(t *testing.T) {
	onePage := bufpool.Borrowed(make([]byte, 4096))

	// Conventional device, one placement stream, random overwrites of a hot
	// half: reclaim has to copy, so cumulative nand > host and the gap grows.
	conv := wafSeries(t, BaselineF2FS, func(env *sim.Env, st *Stack) {
		rng := rand.New(rand.NewSource(9))
		hot := st.Dev.Capacity() / 2
		for i := int64(0); i < st.Dev.Capacity()*4; i++ {
			if err := st.Dev.Write(env, rng.Int63n(hot), []bufpool.Ref{onePage}, 0); err != nil {
				t.Error(err)
				return
			}
		}
	})
	host, nand := series(t, conv, "ftl.host_write_pages"), series(t, conv, "ftl.nand_write_pages")
	if len(host) < 4 {
		t.Fatalf("conventional run sampled only %d ticks", len(host))
	}
	last := len(host) - 1
	if nand[last] <= host[last] {
		t.Fatalf("conventional churn: nand=%d host=%d, want amplification", nand[last], host[last])
	}
	mid := last / 2
	if nand[last]-host[last] <= nand[mid]-host[mid] {
		t.Fatalf("amplification gap did not grow: mid %d, end %d",
			nand[mid]-host[mid], nand[last]-host[last])
	}

	// FDP device, lifetimes separated by placement ID (cold data written
	// once on PID 2, a circular log on PID 1 with trims): every sampled
	// tick must read WAF exactly 1.00 — nand == host from start to finish.
	fdpCell := wafSeries(t, SlimIOFDP, func(env *sim.Env, st *Stack) {
		region := st.Dev.Capacity() / 4
		for lpa := int64(0); lpa < region; lpa++ {
			if err := st.Dev.Write(env, region*2+lpa, []bufpool.Ref{onePage}, 2); err != nil {
				t.Error(err)
				return
			}
		}
		for round := 0; round < 8; round++ {
			for lpa := int64(0); lpa < region; lpa++ {
				if err := st.Dev.Write(env, lpa, []bufpool.Ref{onePage}, 1); err != nil {
					t.Error(err)
					return
				}
			}
			if err := st.Dev.Deallocate(0, region); err != nil {
				t.Error(err)
				return
			}
		}
	})
	host, nand = series(t, fdpCell, "ftl.host_write_pages"), series(t, fdpCell, "ftl.nand_write_pages")
	if len(host) < 4 {
		t.Fatalf("FDP run sampled only %d ticks", len(host))
	}
	last = len(host) - 1
	if host[last] == 0 {
		t.Fatal("FDP churn wrote nothing")
	}
	for i := range host {
		if nand[i] != host[i] {
			t.Fatalf("tick %d: nand=%d host=%d, want WAF exactly 1.00 at every tick", i, nand[i], host[i])
		}
	}
	// Not vacuous: the device must actually have reclaimed RUs while
	// holding WAF at 1.00, or the series proves nothing about GC.
	if reclaimed := series(t, fdpCell, "fdp.rus_reclaimed"); reclaimed[last] == 0 {
		t.Fatal("reclaim never ran while WAF held 1.00; enlarge the churn")
	}
}

// TestFlightRecorderFiresOnRunError: a cell whose device fails every program
// must error out of RunCell and leave exactly one flight-recorder JSON; a
// clean cell with the same telemetry wiring must leave none.
func TestFlightRecorderFiresOnRunError(t *testing.T) {
	dir := t.TempDir()
	run := func(programErrRate float64) error {
		sc := TinyScale()
		sc.FaultSeed = 1
		sc.ProgramErrRate = programErrRate
		sc.Telemetry = telemetry.NewRegistry(0)
		sc.Telemetry.FlightDir = dir
		// AlwaysLog + Preload: every preload Set syncs through the device,
		// so a persistent program failure surfaces as the cell's run error
		// rather than being absorbed as a snapshot abort.
		_, err := RunCell(CellConfig{
			Kind: SlimIOFDP, Policy: imdb.AlwaysLog, Scale: sc,
			Workload:   workload.RedisBench(0, sc.KeyRange),
			Preload:    true,
			TraceLabel: fmt.Sprintf("flight-test-%v", programErrRate),
		})
		return err
	}

	if err := run(1.0); err == nil {
		t.Fatal("every program failing must surface as a cell error")
	}
	path := filepath.Join(dir, "flight-flight-test-1.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight recorder did not fire: %v", err)
	}
	rec, err := telemetry.ParseFlight(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cell != "flight-test-1" || rec.Reason == "" {
		t.Fatalf("flight record = %+v", rec)
	}

	if err := run(0); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("clean run must not dump a flight record; dir has %v", names)
	}
}
