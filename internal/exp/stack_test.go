package exp

import (
	"testing"

	"github.com/slimio/slimio/internal/core"
)

func TestFilePIDTable(t *testing.T) {
	cases := []struct {
		name string
		want uint32
	}{
		{"appendonly.wal", core.PIDWAL},
		{"appendonly.wal.1", core.PIDWAL},
		{"dump-wal.rdb", core.PIDWALSnapshot},
		{"dump-wal.rdb.tmp", core.PIDWALSnapshot},
		{"dump-ondemand.rdb", core.PIDOnDemand},
		{"dump-ondemand.rdb.tmp", core.PIDOnDemand},
		// Unknown names fall back to stream 0, never another class.
		{"", 0},
		{"nodes.conf", 0},
		{"appendonly", 0},    // prefix shorter than the WAL pattern
		{"xdump-wal.rdb", 0}, // prefix must anchor at the start
	}
	for _, c := range cases {
		if got := filePID(c.name); got != c.want {
			t.Errorf("filePID(%q) = %d, want %d", c.name, got, c.want)
		}
	}

	// The tenant-offset variant shifts every class by the lease base and
	// keeps the unknown-name fallback inside the tenant's own range.
	for _, base := range []uint32{0, 5, 10} {
		pid := tenantFilePID(base)
		for _, c := range cases {
			if got := pid(c.name); got != base+c.want {
				t.Errorf("tenantFilePID(%d)(%q) = %d, want %d", base, c.name, got, base+c.want)
			}
		}
	}
}
