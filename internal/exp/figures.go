package exp

import (
	"fmt"
	"strings"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/vtrace"
	"github.com/slimio/slimio/internal/workload"
)

// Figure2Scenario is one bar group of Figure 2.
type Figure2Scenario struct {
	Name string
	// 2a: snapshot time distribution.
	Duration   sim.Duration
	InMemory   sim.Duration
	KernelPath sim.Duration
	SSDWait    sim.Duration
	// 2b: throughput analysis (bytes/second).
	SnapshotTput float64
	WALTput      float64
	IdealTput    float64
}

// Figure2Result reproduces Figure 2's three scenarios on the baseline.
type Figure2Result struct {
	Scenarios []Figure2Scenario
}

// RunFigure2 regenerates Figure 2: snapshot duration distribution (2a) and
// throughput analysis (2b) across Snapshot-Only / Snapshot&WAL /
// Snapshot&WAL-under-GC, all on the baseline F2FS stack.
func RunFigure2(sc Scale) (*Figure2Result, error) {
	// One shortened repetition: WAL-Snapshots are off, so the log must fit.
	sc.Reps = 1
	sc.OpsPerRep /= 2
	run := func(name string, cfg CellConfig) (Figure2Scenario, error) {
		cfg.TraceLabel = "fig2/" + name
		res, err := RunCell(cfg)
		if err != nil {
			return Figure2Scenario{}, err
		}
		var ev *imdb.SnapshotEvent
		for i := range res.Snapshots {
			if res.Snapshots[i].Kind == imdb.OnDemandSnapshot {
				ev = &res.Snapshots[i]
			}
		}
		if ev == nil {
			return Figure2Scenario{}, fmt.Errorf("exp: scenario %s produced no on-demand snapshot", name)
		}
		s := Figure2Scenario{
			Name:       name,
			Duration:   ev.Duration,
			InMemory:   ev.InMemoryTime(),
			KernelPath: ev.KernelPathTime(),
			SSDWait:    ev.DeviceWaitTime(),
		}
		// Disk-visible throughputs: the snapshot writes compressed bytes.
		if ev.Duration > 0 {
			s.SnapshotTput = float64(ev.CompressedBytes) / ev.Duration.Seconds()
		}
		if ev.InMemoryTime() > 0 {
			// Ideal: in-memory work fully overlapped with I/O, so the
			// snapshot is bounded by its own CPU time.
			s.IdealTput = float64(ev.CompressedBytes) / ev.InMemoryTime().Seconds()
		}
		// WAL throughput while the snapshot ran: logged bytes per op times
		// the concurrent request rate (zero in the snapshot-only scenario).
		if !cfg.SnapshotOnly {
			recordBytes := float64(8 + 14 + cfg.Workload.ValueSize)
			if cfg.Scale.ValueSize > 0 {
				recordBytes = float64(8 + 14 + cfg.Scale.ValueSize)
			}
			s.WALTput = res.SnapRPS * recordBytes
		}
		res.Stack.Eng.Shutdown()
		if err := res.ReleaseHeavy(); err != nil {
			return Figure2Scenario{}, err
		}
		return s, nil
	}
	base := CellConfig{
		Kind: BaselineF2FS, Policy: imdb.PeriodicalLog, Scale: sc,
		Workload: workload.RedisBench(0, sc.KeyRange), DisableWALSnapshots: true,
	}
	only := base
	only.SnapshotOnly = true
	withWAL := base
	withWAL.OnDemandMidRun = true
	withWAL.Preload = true // identical dataset across scenarios
	underGC := withWAL
	underGC.GCPressure = true
	scenarios := []struct {
		name string
		cfg  CellConfig
	}{
		{"Snapshot Only", only},
		{"Snapshot & WAL", withWAL},
		{"Snapshot & WAL (under GC)", underGC},
	}
	out := &Figure2Result{Scenarios: make([]Figure2Scenario, len(scenarios))}
	err := runCells(len(scenarios), sc.Parallel, func(i int) error {
		s, err := run(scenarios[i].name, scenarios[i].cfg)
		if err != nil {
			return err
		}
		out.Scenarios[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (f *Figure2Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 2a: Snapshot Time Distribution (baseline, F2FS)")
	fmt.Fprintf(&b, "%-26s %12s %12s %14s %12s\n", "Scenario", "Duration", "In-memory", "Kernel path", "SSD wait")
	for _, s := range f.Scenarios {
		fmt.Fprintf(&b, "%-26s %12s %7s(%3.0f%%) %9s(%3.0f%%) %7s(%3.0f%%)\n",
			s.Name, s.Duration,
			s.InMemory, pct(s.InMemory, s.Duration),
			s.KernelPath, pct(s.KernelPath, s.Duration),
			s.SSDWait, pct(s.SSDWait, s.Duration))
	}
	fmt.Fprintln(&b, "Figure 2b: Throughput Analysis (MB/s)")
	fmt.Fprintf(&b, "%-26s %14s %14s %14s\n", "Scenario", "Snapshot", "WAL", "Ideal")
	for _, s := range f.Scenarios {
		fmt.Fprintf(&b, "%-26s %14.1f %14.1f %14.1f\n", s.Name, s.SnapshotTput/(1<<20), s.WALTput/(1<<20), s.IdealTput/(1<<20))
	}
	return b.String()
}

func pct(part, whole sim.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// TimelineResult is one runtime-RPS trace (Figures 4 and 5).
type TimelineResult struct {
	Kind   BackendKind
	Series *metrics.Series
	// Snapshots observed during the window (to mark snapshot periods).
	Snapshots []imdb.SnapshotEvent
	WAF       float64
	GCRuns    int64
	// Trace is the cell's span tracer (nil when Scale.Trace is unset).
	Trace *vtrace.Tracer
}

// RunTimeline runs an open-ended redis-benchmark workload for a fixed
// virtual window, with periodic On-Demand-Snapshots, and returns the
// per-interval request-rate series. gcPressure injects sustained device GC
// for the whole window, as a conventional device in long-run steady state
// experiences (the paper's Figure 4 regime).
func RunTimeline(kind BackendKind, sc Scale, window sim.Duration, odsEvery sim.Duration, gcPressure bool) (*TimelineResult, error) {
	costM0 := cellCostStart(sc.CellCosts)
	eng := sim.NewEngine()
	st, err := BuildStack(eng, kind, sc)
	if err != nil {
		return nil, err
	}
	if gcPressure {
		st.Dev.InjectGCPressure(eng, gcPressureDuty, gcPressurePeriod)
	}
	series := metrics.NewSeries(sc.RPSInterval)
	db := imdb.New(eng, st.Backend, imdb.Config{
		Policy:             imdb.PeriodicalLog,
		WALSnapshotTrigger: sc.WALTriggerBytes,
		Trace:              st.Trace,
		Pool:               st.Pool(),
	}, series)
	db.Start()
	wl := workload.RedisBench(0, sc.KeyRange)
	wl.Ops = 0 // open-ended
	workload.Start(eng, db, wl)
	if odsEvery > 0 {
		eng.SpawnDaemon("ods-ticker", func(env *sim.Env) {
			for {
				env.Sleep(odsEvery)
				db.TriggerSnapshot(imdb.OnDemandSnapshot)
			}
		})
	}
	eng.RunUntil(sim.Time(window))
	out := &TimelineResult{
		Kind:      kind,
		Series:    series,
		Snapshots: db.Stats().Snapshots,
		WAF:       st.Dev.Stats().WAF(),
		GCRuns:    st.Dev.Stats().GCRuns,
		Trace:     st.Trace,
	}
	// Tear the run down so its goroutines release the simulated device.
	eng.Shutdown()
	cellCostEnd(sc.CellCosts, "timeline/"+kind.String(), costM0)
	return out, nil
}

// RunFigure4 regenerates Figure 4: baseline vs SlimIO-without-FDP runtime
// RPS on a conventional SSD under GC pressure — the baseline's page cache
// absorbs GC stalls while SlimIO's direct writes nosedive.
func RunFigure4(sc Scale, window sim.Duration) (baselineT, slimT *TimelineResult, err error) {
	return runTimelinePair(sc,
		timelineSpec{BaselineF2FS, window, window / 4, true},
		timelineSpec{SlimIOConv, window, window / 4, true})
}

// RunFigure5 regenerates Figure 5: baseline vs SlimIO-on-FDP — with
// lifetime separation the runtime RPS stays in a stable band except during
// snapshots.
func RunFigure5(sc Scale, window sim.Duration) (baselineT, slimT *TimelineResult, err error) {
	return runTimelinePair(sc,
		timelineSpec{BaselineF2FS, window, window / 4, true},
		timelineSpec{SlimIOFDP, window, window / 4, false})
}

// timelineSpec parameterizes one RunTimeline call for the pair scheduler.
type timelineSpec struct {
	kind       BackendKind
	window     sim.Duration
	odsEvery   sim.Duration
	gcPressure bool
}

// runTimelinePair runs two independent timeline cells under the parallel
// cell scheduler, preserving (baseline, slim) result order.
func runTimelinePair(sc Scale, specs ...timelineSpec) (*TimelineResult, *TimelineResult, error) {
	results := make([]*TimelineResult, len(specs))
	err := runCells(len(specs), sc.Parallel, func(i int) error {
		s := specs[i]
		tr, err := RunTimeline(s.kind, sc, s.window, s.odsEvery, s.gcPressure)
		if err != nil {
			return err
		}
		results[i] = tr
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return results[0], results[1], nil
}

// TimelineSummary condenses a trace for textual reports: mean rate, minimum
// rate outside snapshot windows (nosedives), and coefficient of variation.
type TimelineSummary struct {
	MeanRPS     float64
	MinRPS      float64 // over non-snapshot, post-warmup buckets
	Nosedives   int     // non-snapshot buckets below 10% of the mean
	WarmBuckets int
}

// Summarize computes the stability metrics of a trace, ignoring a warmup
// prefix and any bucket overlapping a snapshot.
func (tr *TimelineResult) Summarize(warmup sim.Duration) TimelineSummary {
	s := TimelineSummary{MinRPS: -1}
	interval := tr.Series.Interval()
	first := int(int64(warmup) / int64(interval))
	inSnap := func(i int) bool {
		bStart := sim.Time(int64(i) * int64(interval))
		bEnd := bStart.Add(interval)
		for _, ev := range tr.Snapshots {
			if ev.Start < bEnd && ev.End > bStart {
				return true
			}
		}
		return false
	}
	var total float64
	for i := first; i < tr.Series.Len(); i++ {
		if inSnap(i) {
			continue
		}
		r := tr.Series.Rate(i)
		total += r
		s.WarmBuckets++
		if s.MinRPS < 0 || r < s.MinRPS {
			s.MinRPS = r
		}
	}
	if s.WarmBuckets > 0 {
		s.MeanRPS = total / float64(s.WarmBuckets)
	}
	for i := first; i < tr.Series.Len(); i++ {
		if !inSnap(i) && tr.Series.Rate(i) < 0.1*s.MeanRPS {
			s.Nosedives++
		}
	}
	if s.MinRPS < 0 {
		s.MinRPS = 0
	}
	return s
}
