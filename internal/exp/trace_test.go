package exp

import (
	"bytes"
	"testing"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/vtrace"
	"github.com/slimio/slimio/internal/workload"
)

// tracedScale is the small tracing workload shared by the trace tests:
// one repetition of a Table 3 cell pair, short enough to run in CI.
func tracedScale() Scale {
	sc := SmallScale()
	sc.Reps = 1
	sc.OpsPerRep = 15_000
	return sc
}

func runTracedCell(t *testing.T, kind BackendKind, sc Scale) *CellResult {
	t.Helper()
	res, err := RunCell(CellConfig{
		Kind: kind, Policy: imdb.PeriodicalLog, Scale: sc,
		Workload:       workload.RedisBench(0, sc.KeyRange),
		OnDemandPerRep: true,
	})
	if err != nil {
		t.Fatalf("run %s: %v", kind, err)
	}
	res.Stack.Eng.Shutdown()
	return res
}

// TestGoldenTraceDeterminism is the tracing analogue of the metric
// determinism gate: the exported Chrome-trace JSON must be byte-identical
// across repeated serial runs and under the parallel cell scheduler.
func TestGoldenTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden-trace determinism is not a -short test")
	}
	kinds := []BackendKind{BaselineF2FS, SlimIOFDP}
	runPair := func(parallel int) []byte {
		sc := tracedScale()
		sc.Trace = vtrace.NewRegistry()
		err := runCells(len(kinds), parallel, func(i int) error {
			res, err := RunCell(CellConfig{
				Kind: kinds[i], Policy: imdb.PeriodicalLog, Scale: sc,
				Workload:       workload.RedisBench(0, sc.KeyRange),
				OnDemandPerRep: true,
			})
			if err != nil {
				return err
			}
			res.Stack.Eng.Shutdown()
			res.ReleaseHeavy()
			return nil
		})
		if err != nil {
			t.Fatalf("run pair (parallel=%d): %v", parallel, err)
		}
		var buf bytes.Buffer
		if err := sc.Trace.Export(&buf); err != nil {
			t.Fatalf("export (parallel=%d): %v", parallel, err)
		}
		return buf.Bytes()
	}

	serial1 := runPair(1)
	serial2 := runPair(1)
	concurrent := runPair(2)
	if !bytes.Equal(serial1, serial2) {
		t.Errorf("serial trace export not reproducible: %d vs %d bytes", len(serial1), len(serial2))
	}
	if !bytes.Equal(serial1, concurrent) {
		t.Errorf("parallel trace export diverges from serial: %d vs %d bytes", len(serial1), len(concurrent))
	}
	if err := vtrace.ValidateTrace(serial1); err != nil {
		t.Errorf("exported trace fails schema validation: %v", err)
	}
	if len(serial1) == 0 || bytes.Equal(serial1, []byte("[]")) {
		t.Errorf("exported trace is empty")
	}
}

// TestAttributionSumsToEndToEnd asserts the two acceptance properties of
// the attribution report on a real Table 3 cell:
//
//  1. Telescoping: within every root tree the per-stage self-times sum to
//     the root duration *exactly* (int64 identity), so Σ Stages.Self ==
//     OpStat.Total for every op type and background tree.
//  2. The attribution's per-op mean matches the workload-measured
//     end-to-end mean latency within 1%.
func TestAttributionSumsToEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("attribution acceptance is not a -short test")
	}
	sc := tracedScale()
	sc.Trace = vtrace.NewRegistry()
	res := runTracedCell(t, SlimIOFDP, sc)

	a := vtrace.Compute(res.Trace)
	if len(a.Ops) == 0 {
		t.Fatalf("no op spans recorded")
	}
	check := func(group string, ops []vtrace.OpStat) {
		for i := range ops {
			op := &ops[i]
			var sum int64
			for _, st := range op.Stages {
				sum += int64(st.Self)
			}
			if sum != int64(op.Total) {
				t.Errorf("%s %q: stage self-times sum to %d, root total %d", group, op.Name, sum, int64(op.Total))
			}
		}
	}
	check("op", a.Ops)
	check("tree", a.Trees)

	var set *vtrace.OpStat
	for i := range a.Ops {
		if a.Ops[i].Name == "set" {
			set = &a.Ops[i]
		}
	}
	if set == nil {
		t.Fatalf("no set op in attribution (ops: %v)", a.Ops)
	}
	measured := res.setHist.Mean()
	attributed := set.Mean()
	if measured == 0 {
		t.Fatalf("measured set mean is zero")
	}
	diff := float64(attributed-measured) / float64(measured)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.01 {
		t.Errorf("attributed set mean %v deviates %.2f%% from measured mean %v (want <= 1%%)",
			attributed, diff*100, measured)
	}
	if set.Count != res.setHist.Count() {
		t.Errorf("attributed %d set ops, workload measured %d", set.Count, res.setHist.Count())
	}

	// The rendered report must carry the headline split for the op table.
	out := a.Format()
	for _, want := range []string{"per-op end-to-end latency", "set decomposition", "background trees"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("attribution report missing %q:\n%s", want, out)
		}
	}
}
