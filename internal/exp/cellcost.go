package exp

import (
	"runtime"
	"sync"
)

// CellCost is the host-side allocator cost of one experiment cell: the
// Go-heap traffic between the cell's construction and its final metric
// extraction. It measures the harness, not the simulated system — virtual
// time is untouched by the instrumentation.
type CellCost struct {
	Label      string `json:"label"`
	Allocs     int64  `json:"allocs"`
	AllocBytes int64  `json:"alloc_bytes"`
}

// CellCostSink collects per-cell allocator costs for the bench report, so an
// alloc regression is attributable to one cell rather than one experiment.
// MemStats deltas are process-wide: attach a sink only to serial runs
// (Scale.Parallel == 1, or GOMAXPROCS == 1); with concurrent cells the
// deltas intermix and attribution is meaningless. slimio-bench enforces
// this at the flag level.
type CellCostSink struct {
	mu    sync.Mutex
	cells []CellCost
}

// record appends one cell's cost (cells on different workers may finish
// concurrently even when each cell's delta is serial).
func (s *CellCostSink) record(c CellCost) {
	s.mu.Lock()
	s.cells = append(s.cells, c)
	s.mu.Unlock()
}

// Drain returns the costs recorded since the last Drain, in completion
// order, and resets the sink for the next experiment.
func (s *CellCostSink) Drain() []CellCost {
	s.mu.Lock()
	out := s.cells
	s.cells = nil
	s.mu.Unlock()
	return out
}

// cellCostStart snapshots the allocator counters when a sink is attached.
func cellCostStart(sink *CellCostSink) (m0 runtime.MemStats) {
	if sink != nil {
		runtime.ReadMemStats(&m0)
	}
	return
}

// cellCostEnd records the delta since start under the cell's label.
func cellCostEnd(sink *CellCostSink, label string, m0 runtime.MemStats) {
	if sink == nil {
		return
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	sink.record(CellCost{
		Label:      label,
		Allocs:     int64(m1.Mallocs - m0.Mallocs),
		AllocBytes: int64(m1.TotalAlloc - m0.TotalAlloc),
	})
}
