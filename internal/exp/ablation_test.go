package exp

import (
	"testing"

	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/workload"
)

func runTinyCell(t *testing.T, kind BackendKind) *CellResult {
	t.Helper()
	sc := TinyScale()
	res, err := RunCell(CellConfig{
		Kind: kind, Policy: imdb.PeriodicalLog, Scale: sc,
		Workload: workload.RedisBench(0, sc.KeyRange), OnDemandPerRep: true,
	})
	if err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	return res
}

// The FDP-aware-filesystem ablation must actually separate lifetimes: its
// device sees per-file placement IDs, and WAF stays 1.00 like SlimIO's.
func TestAblationFDPAwareFSSeparatesLifetimes(t *testing.T) {
	res := runTinyCell(t, FDPAwareFS)
	f, ok := res.Stack.Dev.FTL().(*fdp.FTL)
	if !ok {
		t.Fatalf("FDPAwareFS stack has FTL %T", res.Stack.Dev.FTL())
	}
	byPID := f.Stats().HostWritesByPID
	if byPID[1] == 0 {
		t.Error("WAL stream (PID 1) unused")
	}
	if byPID[2] == 0 && byPID[3] == 0 {
		t.Error("no snapshot stream writes (PID 2/3)")
	}
	if res.WAF != 1.0 {
		t.Errorf("FDP-aware FS WAF = %v, want 1.00", res.WAF)
	}
}

// Disabling SQPOLL must put syscalls back on the Snapshot-Path while the
// system still works end to end.
func TestAblationNoSQPollStillWorks(t *testing.T) {
	res := runTinyCell(t, SlimIONoSQPoll)
	if len(res.Snapshots) == 0 {
		t.Fatal("no snapshots completed")
	}
	// The snapshot process pays submission syscalls now; billed under the
	// ring/dispatch tags the engine records as BusyRing.
	var ringBusy int64
	for _, ev := range res.Snapshots {
		ringBusy += int64(ev.BusyRing)
	}
	if ringBusy == 0 {
		t.Error("no ring-side CPU billed on the snapshot path")
	}
	if res.WAF != 1.0 {
		t.Errorf("WAF = %v, want 1.00 (FDP still on)", res.WAF)
	}
}

// SlimIO on a conventional SSD must still be fully functional (Figure 4's
// configuration); only placement is lost.
func TestAblationPassthruOnlyFunctional(t *testing.T) {
	res := runTinyCell(t, SlimIOConv)
	if len(res.Snapshots) == 0 || res.AvgRPS <= 0 {
		t.Fatal("degenerate run")
	}
	if res.Stack.Slim == nil {
		t.Fatal("not a SlimIO stack")
	}
}

// The sync-priority scheduler ablation runs and keeps fsync latency at or
// below the FIFO scheduler's (that is its whole point).
func TestAblationSchedulerPriority(t *testing.T) {
	prio := runTinyCell(t, BaselineF2FSPrio)
	none := runTinyCell(t, BaselineF2FS)
	if prio.AvgRPS <= 0 || none.AvgRPS <= 0 {
		t.Fatal("degenerate runs")
	}
	// Under sync priority, snapshot (async writeback) waits longer: its
	// mean snapshot time must not be shorter than under FIFO by more than
	// noise.
	if float64(prio.MeanSnapshotTime) < 0.95*float64(none.MeanSnapshotTime) {
		t.Errorf("sync-priority snapshots (%v) substantially faster than none (%v)",
			prio.MeanSnapshotTime, none.MeanSnapshotTime)
	}
}
