package exp

import (
	"fmt"
	"strings"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/vtrace"
	"github.com/slimio/slimio/internal/workload"
)

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// Table1Result reproduces Table 1: query throughput and peak memory during
// WAL-only vs Snapshot&WAL phases on EXT4 and F2FS.
type Table1Result struct {
	Rows []Table1Row
}

// Table1Row is one (filesystem, phase) measurement.
type Table1Row struct {
	FS       string
	Phase    string // "WAL Only" | "Snapshot&WAL"
	RPS      float64
	MemBytes int64
}

// RunTable1 regenerates Table 1 (baseline only, redis-benchmark workload,
// Periodical-Log, WAL-Snapshots enabled, no On-Demand-Snapshot — §2.2).
func RunTable1(sc Scale) (*Table1Result, error) {
	kinds := []BackendKind{BaselineEXT4, BaselineF2FS}
	rows := make([][2]Table1Row, len(kinds))
	err := runCells(len(kinds), sc.Parallel, func(i int) error {
		res, err := RunCell(CellConfig{
			Kind:     kinds[i],
			Policy:   imdb.PeriodicalLog,
			Scale:    sc,
			Workload: workload.RedisBench(0, sc.KeyRange),
		})
		if err != nil {
			return err
		}
		fs := res.Stack.FS.Profile().Name
		res.Stack.Eng.Shutdown()
		if err := res.ReleaseHeavy(); err != nil {
			return err
		}
		rows[i] = [2]Table1Row{
			{FS: fs, Phase: "WAL Only", RPS: res.WALOnlyRPS, MemBytes: res.WALOnlyMem},
			{FS: fs, Phase: "Snapshot&WAL", RPS: res.SnapRPS, MemBytes: res.SnapMem},
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Table1Result{}
	for _, pair := range rows {
		out.Rows = append(out.Rows, pair[0], pair[1])
	}
	return out, nil
}

func (t *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Performance Degradation and Increased Memory Usage During Snapshot Generation\n")
	fmt.Fprintf(&b, "%-6s %-14s %14s %18s\n", "FS", "Phase", "Requests/s", "Peak Memory (MB)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-6s %-14s %14.2f %18.1f\n", strings.ToUpper(r.FS), r.Phase, r.RPS, mb(r.MemBytes))
	}
	return b.String()
}

// Table2Result reproduces Table 2: the filesystem write path's share of the
// snapshot process's time, Snapshot-Only vs Snapshot&WAL (F2FS).
type Table2Result struct {
	SnapshotOnlyPct float64
	SnapshotWALPct  float64
}

// RunTable2 regenerates Table 2. WAL-Snapshots are disabled for these
// scenarios (§3.1 isolates a single On-Demand-Snapshot), so the run is
// bounded to one repetition that fits the unbounded log on the device.
func RunTable2(sc Scale) (*Table2Result, error) {
	sc.Reps = 1
	sc.OpsPerRep /= 2
	fsShare := func(cfg CellConfig) (float64, error) {
		res, err := RunCell(cfg)
		if err != nil {
			return 0, err
		}
		var fsBusy, dur sim.Duration
		for _, ev := range res.Snapshots {
			if ev.Kind == imdb.OnDemandSnapshot {
				// The filesystem write path includes the user→kernel copy
				// (generic_perform_write runs inside the fs), the per-op
				// fs code, and the syscall shell around it.
				fsBusy += ev.BusyFS + ev.BusySyscall + ev.BusyCopy
				dur += ev.Duration
			}
		}
		if dur == 0 {
			return 0, fmt.Errorf("exp: no on-demand snapshot ran")
		}
		return 100 * float64(fsBusy) / float64(dur), nil
	}
	cfgs := []CellConfig{
		{
			Kind: BaselineF2FS, Policy: imdb.PeriodicalLog, Scale: sc,
			Workload:     workload.RedisBench(0, sc.KeyRange),
			SnapshotOnly: true, DisableWALSnapshots: true,
			TraceLabel: "table2/snapshot-only",
		},
		{
			Kind: BaselineF2FS, Policy: imdb.PeriodicalLog, Scale: sc,
			Workload:       workload.RedisBench(0, sc.KeyRange),
			OnDemandMidRun: true, DisableWALSnapshots: true,
			Preload:    true, // identical dataset to the Snapshot-Only scenario
			TraceLabel: "table2/snapshot+wal",
		},
	}
	shares := make([]float64, len(cfgs))
	err := runCells(len(cfgs), sc.Parallel, func(i int) error {
		pctv, err := fsShare(cfgs[i])
		if err != nil {
			return err
		}
		shares[i] = pctv
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Table2Result{SnapshotOnlyPct: shares[0], SnapshotWALPct: shares[1]}, nil
}

func (t *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: CPU Usage of File System Write Path in Snapshots (F2FS)\n")
	fmt.Fprintf(&b, "%-14s %28s\n", "Scenario", "FS share of snapshot process")
	fmt.Fprintf(&b, "%-14s %27.2f%%\n", "Snapshot Only", t.SnapshotOnlyPct)
	fmt.Fprintf(&b, "%-14s %27.2f%%\n", "Snapshot&WAL", t.SnapshotWALPct)
	return b.String()
}

// OverallRow is one system row of Tables 3/4.
type OverallRow struct {
	Policy  imdb.LogPolicy
	System  string
	Kind    BackendKind
	Result  *CellResult
	GetP999 sim.Duration
	// Attrib is the per-layer latency attribution for the cell, non-nil
	// only when the run traced (Scale.Trace set).
	Attrib *vtrace.Attribution
}

// OverallResult holds the full Table 3 or Table 4.
type OverallResult struct {
	Title   string
	HasWAF  bool
	HasGet  bool
	Rows    []OverallRow
	WAFNote string
}

// RunTable3 regenerates Table 3: the overall redis-benchmark evaluation —
// both logging policies, baseline (F2FS on a conventional SSD) vs SlimIO
// (passthru on FDP), with per-repetition On-Demand-Snapshots.
func RunTable3(sc Scale) (*OverallResult, error) {
	out := &OverallResult{Title: "Table 3: Overall Evaluation with Redis Benchmark Workload", HasWAF: true}
	type spec struct {
		pol  imdb.LogPolicy
		kind BackendKind
	}
	var specs []spec
	for _, pol := range []imdb.LogPolicy{imdb.PeriodicalLog, imdb.AlwaysLog} {
		for _, kind := range []BackendKind{BaselineF2FS, SlimIOFDP} {
			specs = append(specs, spec{pol, kind})
		}
	}
	rows := make([]OverallRow, len(specs))
	err := runCells(len(specs), sc.Parallel, func(i int) error {
		s := specs[i]
		res, err := RunCell(CellConfig{
			Kind: s.kind, Policy: s.pol, Scale: sc,
			Workload:       workload.RedisBench(0, sc.KeyRange),
			OnDemandPerRep: true,
		})
		if err != nil {
			return err
		}
		name := "Baseline"
		if s.kind == SlimIOFDP {
			name = "SlimIO"
		}
		res.Stack.Eng.Shutdown()
		if err := res.ReleaseHeavy(); err != nil {
			return err
		}
		row := OverallRow{Policy: s.pol, System: name, Kind: s.kind, Result: res}
		if res.Trace != nil {
			row.Attrib = vtrace.Compute(res.Trace)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// RunTable4 regenerates Table 4: the YCSB-A evaluation — zipfian 50/50
// GET:SET, preloaded records, WAL-Snapshots only (no On-Demand, no GC
// pressure).
func RunTable4(sc Scale) (*OverallResult, error) {
	out := &OverallResult{Title: "Table 4: Overall Evaluation with YCSB-A Workload", HasGet: true}
	ycsbScale := sc
	if ycsbScale.ValueSize == 0 {
		ycsbScale.ValueSize = 2048
	}
	type spec struct {
		pol  imdb.LogPolicy
		kind BackendKind
	}
	var specs []spec
	for _, pol := range []imdb.LogPolicy{imdb.PeriodicalLog, imdb.AlwaysLog} {
		for _, kind := range []BackendKind{BaselineF2FS, SlimIOFDP} {
			specs = append(specs, spec{pol, kind})
		}
	}
	rows := make([]OverallRow, len(specs))
	err := runCells(len(specs), sc.Parallel, func(i int) error {
		s := specs[i]
		res, err := RunCell(CellConfig{
			Kind: s.kind, Policy: s.pol, Scale: ycsbScale,
			Workload: workload.YCSBA(0, ycsbScale.KeyRange),
			Preload:  true,
		})
		if err != nil {
			return err
		}
		name := "Baseline"
		if s.kind == SlimIOFDP {
			name = "SlimIO"
		}
		row := OverallRow{Policy: s.pol, System: name, Kind: s.kind, Result: res, GetP999: res.getHist.P999()}
		res.Stack.Eng.Shutdown()
		if err := res.ReleaseHeavy(); err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

func (t *OverallResult) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, t.Title)
	hdr := fmt.Sprintf("%-11s %-9s %12s %10s %12s %10s %12s %12s %14s",
		"Policy", "System", "WALonly RPS", "Mem(MB)", "Snap&WAL", "Mem(MB)", "Avg RPS", "SnapTime", "SET p999")
	if t.HasGet {
		hdr += fmt.Sprintf(" %14s", "GET p999")
	}
	if t.HasWAF {
		hdr += fmt.Sprintf(" %8s", "WAF")
	}
	fmt.Fprintln(&b, hdr)
	for _, r := range t.Rows {
		res := r.Result
		line := fmt.Sprintf("%-11s %-9s %12.2f %10.1f %12.2f %10.1f %12.2f %12s %14s",
			r.Policy, r.System, res.WALOnlyRPS, mb(res.WALOnlyMem), res.SnapRPS, mb(res.SnapMem),
			res.AvgRPS, res.MeanSnapshotTime, res.SetP999)
		if t.HasGet {
			line += fmt.Sprintf(" %14s", r.GetP999)
		}
		if t.HasWAF {
			line += fmt.Sprintf(" %8.2f", res.WAF)
		}
		fmt.Fprintln(&b, line)
	}
	for _, r := range t.Rows {
		if r.Attrib == nil {
			continue
		}
		fmt.Fprintf(&b, "\nLatency attribution — %s (%s/%s):\n", r.Result.Label, r.Policy, r.System)
		b.WriteString(r.Attrib.Format())
	}
	return b.String()
}

// Table5Result reproduces Table 5: recovery time and throughput from a
// snapshot, baseline vs SlimIO.
type Table5Result struct {
	Rows []Table5Row
}

// Table5Row is one system's recovery measurement.
type Table5Row struct {
	System        string
	SnapshotBytes int64
	RecoveryTime  sim.Duration
	ThroughputBps float64
	Entries       int64
}

// RunTable5 regenerates Table 5: write a dataset with an On-Demand-Snapshot
// on each backend, then recover into a fresh engine and time the load
// (cold page cache for the baseline).
func RunTable5(sc Scale) (*Table5Result, error) {
	kinds := []BackendKind{BaselineF2FS, SlimIOFDP}
	rows := make([]Table5Row, len(kinds))
	jobErr := runCells(len(kinds), sc.Parallel, func(i int) error {
		kind := kinds[i]
		cell, err := RunCell(CellConfig{
			Kind: kind, Policy: imdb.PeriodicalLog, Scale: sc,
			Workload:       workload.RedisBench(0, sc.KeyRange),
			OnDemandPerRep: true,
		})
		if err != nil {
			return err
		}
		eng := cell.Stack.Eng
		db2 := imdb.New(eng, cell.Stack.Backend, imdb.Config{Pool: cell.Stack.Pool()}, nil)
		var row Table5Row
		var recErr error
		eng.Spawn("recover", func(env *sim.Env) {
			if cell.Stack.FS != nil {
				cell.Stack.FS.DropCaches()
			}
			t0 := env.Now()
			entries, _, err := db2.Recover(env)
			if err != nil {
				recErr = err
				return
			}
			row.RecoveryTime = env.Now().Sub(t0)
			row.Entries = entries
		})
		eng.Run()
		if recErr != nil {
			return recErr
		}
		// Recovered image size: the last snapshot's compressed bytes plus
		// the replayed WAL.
		if last := len(cell.Snapshots) - 1; last >= 0 {
			row.SnapshotBytes = cell.Snapshots[last].CompressedBytes
		}
		if row.RecoveryTime > 0 {
			row.ThroughputBps = float64(row.SnapshotBytes) / row.RecoveryTime.Seconds()
		}
		row.System = "Baseline"
		if kind == SlimIOFDP {
			row.System = "SlimIO"
		}
		cell.Stack.Eng.Shutdown()
		db2.ReleaseBuffers() // the recovery engine never ran Shutdown
		if err := cell.ReleaseHeavy(); err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if jobErr != nil {
		return nil, jobErr
	}
	return &Table5Result{Rows: rows}, nil
}

func (t *Table5Result) String() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 5: Recovery Evaluation on Snapshot")
	fmt.Fprintf(&b, "%-9s %16s %20s %24s\n", "System", "Image (MB)", "Recovery Time", "Recovery Tput (MB/s)")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-9s %16.1f %20s %24.2f\n", r.System, mb(r.SnapshotBytes), r.RecoveryTime, r.ThroughputBps/(1<<20))
	}
	return b.String()
}
