// Package exp is the experiment harness: it assembles full system stacks
// (NAND → FTL → device → I/O path → persistence backend → IMDB engine →
// workload), runs the paper's scenarios, and regenerates every table and
// figure of the evaluation section in the paper's own row format.
//
// Everything is scaled: the paper's 180 GB device / 26 GB dataset / 28 M
// operations become a configurable Scale, with the default small enough to
// run the whole suite in seconds while preserving every ratio that matters
// (dataset:device, WAL-trigger:write-volume, snapshot:dataset).
package exp

import (
	"fmt"
	"strings"

	"github.com/slimio/slimio/internal/baseline"
	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/core"
	"github.com/slimio/slimio/internal/fault"
	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/kernelio"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
	"github.com/slimio/slimio/internal/telemetry"
	"github.com/slimio/slimio/internal/uring"
	"github.com/slimio/slimio/internal/vtrace"
)

// BackendKind selects a full storage stack.
type BackendKind int

const (
	// BaselineEXT4: kernel path, ext4 profile, conventional SSD.
	BaselineEXT4 BackendKind = iota
	// BaselineF2FS: kernel path, f2fs profile, conventional SSD (the
	// paper's main baseline).
	BaselineF2FS
	// BaselineF2FSPrio: as BaselineF2FS but with a sync-priority I/O
	// scheduler instead of 'none' (ablation for the §4 scheduler argument).
	BaselineF2FSPrio
	// SlimIOFDP: I/O passthru onto an FDP SSD (the paper's SlimIO).
	SlimIOFDP
	// SlimIOConv: I/O passthru onto a conventional SSD (Figure 4's
	// configuration: SlimIO without FDP).
	SlimIOConv
	// SlimIONoSQPoll: SlimIOFDP with SQPOLL disabled on the Snapshot-Path
	// (ablation: quantify the SQPOLL share of the win).
	SlimIONoSQPoll
	// FDPAwareFS: kernel path on an FDP SSD with an FDP-aware filesystem
	// assigning per-file placement IDs (ablation: GC relief without the
	// syscall relief).
	FDPAwareFS
)

func (k BackendKind) String() string {
	switch k {
	case BaselineEXT4:
		return "baseline-ext4"
	case BaselineF2FS:
		return "baseline-f2fs"
	case BaselineF2FSPrio:
		return "baseline-f2fs-prio"
	case SlimIOFDP:
		return "slimio-fdp"
	case SlimIOConv:
		return "slimio-noFDP"
	case SlimIONoSQPoll:
		return "slimio-noSQPoll"
	case FDPAwareFS:
		return "fdp-aware-fs"
	default:
		return "unknown"
	}
}

// Scale sizes a scenario. All paper quantities shrink by a common factor.
type Scale struct {
	Name        string
	DeviceBytes int64
	// KeyRange and value sizes define the dataset; ops per repetition and
	// repetitions define the write volume.
	KeyRange  int64
	OpsPerRep int64
	Reps      int
	// WALTriggerBytes starts a WAL-Snapshot (paper: 50–55 GB, ~2 per rep).
	WALTriggerBytes int64
	// SlotBytes sizes each SlimIO snapshot slot.
	SlotBytes int64
	// RPSInterval is the runtime-RPS bucket width.
	RPSInterval sim.Duration
	// ValueSize overrides the workload's value size when non-zero.
	ValueSize int

	// Fault injection (all zero by default: the device stays perfect and
	// every result is bit-identical to a build without the fault subsystem).
	FaultSeed      int64
	ReadErrRate    float64
	ProgramErrRate float64
	EraseErrRate   float64
	// Metrics, when non-nil, collects fault/retry/retirement counters from
	// every layer of the stack for the bench summary.
	Metrics *metrics.Counter
	// FaultRecorder, when non-nil, is attached to the fault plan before
	// installation so the crash model checker (internal/crashmc) can
	// harvest every device-level operation boundary as a crash-point
	// candidate. A recorder activates an otherwise-zero plan but injects
	// nothing and consumes no randomness.
	FaultRecorder fault.Recorder

	// Parallel bounds how many experiment cells run concurrently (each cell
	// is an independent deterministic simulation; results and output order
	// are identical at any setting). 0 means GOMAXPROCS, 1 forces the
	// serial harness.
	Parallel int

	// CellCosts, when non-nil, records each cell's host-side allocator
	// traffic for the bench report. Attach only to serial runs — see
	// CellCostSink.
	CellCosts *CellCostSink

	// Trace, when non-nil, enables virtual-time span tracing: every cell
	// records into its own tracer (labelled by cell) in this registry,
	// threaded through every stack layer from the engine down to the NAND
	// timelines. Nil keeps the hot path allocation-free.
	Trace *vtrace.Registry
	// tracer is the per-cell tracer resolved by RunCell; BuildStack falls
	// back to Trace.Tracer(kind.String()) when a stack is built directly.
	tracer *vtrace.Tracer

	// Telemetry, when non-nil, enables the continuous telemetry plane: every
	// cell samples per-layer gauges (NAND busy time, RU occupancy, ring and
	// writeback queue depths, WAL-buffer fill, pool in-flight counts) on a
	// virtual-time tick into its own telemetry.Cell, labelled like the
	// tracer. Nil keeps every hot path allocation-free.
	Telemetry *telemetry.Registry
	// tele is the per-cell telemetry cell resolved by RunCell.
	tele *telemetry.Cell
}

// SmallScale is the default: ~1/500 of the paper's volume, seconds to run.
func SmallScale() Scale {
	return Scale{
		Name:            "small",
		DeviceBytes:     320 << 20,
		KeyRange:        10_000, // ×4 KiB ≈ 40 MiB dataset
		OpsPerRep:       55_000, // ≈5.5 overwrites per key, as 28M/5.3M
		Reps:            2,
		WALTriggerBytes: 120 << 20, // ~2 WAL-snapshots per rep
		SlotBytes:       28 << 20,
		RPSInterval:     20 * sim.Millisecond,
	}
}

// PaperScale reproduces the paper's actual parameters (180 GB device,
// 5.3 M keys, 28 M operations over five repetitions, 52 GB WAL trigger).
// Expect hours of wall time and tens of GB of memory: the simulation holds
// real page bytes.
func PaperScale() Scale {
	return Scale{
		Name:            "paper",
		DeviceBytes:     180 << 30,
		KeyRange:        5_300_000,
		OpsPerRep:       5_600_000,
		Reps:            5,
		WALTriggerBytes: 52 << 30,
		SlotBytes:       24 << 30,
		RPSInterval:     sim.Second,
	}
}

// TinyScale is for unit tests of the harness itself.
func TinyScale() Scale {
	return Scale{
		Name:            "tiny",
		DeviceBytes:     64 << 20,
		KeyRange:        1000,
		OpsPerRep:       6000,
		Reps:            1,
		WALTriggerBytes: 8 << 20,
		SlotBytes:       4 << 20,
		RPSInterval:     5 * sim.Millisecond,
	}
}

// Stack is one assembled storage system.
type Stack struct {
	Kind    BackendKind
	Eng     *sim.Engine
	Dev     *ssd.Device
	Backend imdb.Backend
	// FS is non-nil for kernel-path stacks.
	FS *kernelio.Filesystem
	// Slim is non-nil for SlimIO stacks.
	Slim *core.Backend
	// Fault is the device fault plan, non-nil only when the scale requests
	// fault injection (crash harnesses also use it to schedule power cuts).
	Fault *fault.Plan
	// Trace is the resolved per-cell tracer (nil when tracing is off).
	Trace *vtrace.Tracer
}

// BuildStack assembles the device and persistence backend for kind.
func BuildStack(eng *sim.Engine, kind BackendKind, sc Scale) (*Stack, error) {
	geo := nand.DefaultGeometry(sc.DeviceBytes)
	lat := nand.DefaultLatencies()
	arr, err := nand.New(geo, lat)
	if err != nil {
		return nil, err
	}
	arr.SetClock(eng)
	tr := sc.tracer
	if tr == nil && sc.Trace != nil {
		tr = sc.Trace.Tracer(kind.String())
	}
	arr.SetTracer(tr)
	st := &Stack{Kind: kind, Eng: eng, Trace: tr}

	// Install the fault plan only when it can inject something: an absent
	// hook is a strict no-op, keeping fault-free runs bit-identical.
	plan := fault.NewPlan(fault.Config{
		Seed:           sc.FaultSeed,
		ReadErrRate:    sc.ReadErrRate,
		ProgramErrRate: sc.ProgramErrRate,
		EraseErrRate:   sc.EraseErrRate,
		Metrics:        sc.Metrics,
	})
	plan.SetRecorder(sc.FaultRecorder)
	st.Fault = plan
	if plan.Active() {
		arr.SetFaultHook(plan)
	}

	// The conventional baseline device is the same line-based FTL with a
	// single placement stream (FEMU reclaims superblocks spanning all dies;
	// that is what makes mixed lifetimes expensive).
	newConv := func() (*ssd.Device, error) {
		f, err := fdp.NewConventional(arr, fdp.Config{Metrics: sc.Metrics, Trace: tr})
		if err != nil {
			return nil, err
		}
		return ssd.New(f, ssd.Config{Metrics: sc.Metrics, Trace: tr}), nil
	}
	newFDP := func() (*ssd.Device, error) {
		f, err := fdp.New(arr, fdp.Config{Metrics: sc.Metrics, Trace: tr})
		if err != nil {
			return nil, err
		}
		return ssd.New(f, ssd.Config{Metrics: sc.Metrics, Trace: tr}), nil
	}
	slotPages := sc.SlotBytes / int64(geo.PageSize)

	switch kind {
	case BaselineEXT4, BaselineF2FS, BaselineF2FSPrio, FDPAwareFS:
		prof := kernelio.F2FS()
		if kind == BaselineEXT4 {
			prof = kernelio.EXT4()
		}
		mode := kernelio.SchedNone
		if kind == BaselineF2FSPrio {
			mode = kernelio.SchedSyncPriority
		}
		if kind == FDPAwareFS {
			dev, err := newFDP()
			if err != nil {
				return nil, err
			}
			st.Dev = dev
		} else {
			dev, err := newConv()
			if err != nil {
				return nil, err
			}
			st.Dev = dev
		}
		st.FS = kernelio.NewFilesystem(eng, st.Dev, prof, mode, kernelio.DefaultCosts())
		st.FS.SetTracer(tr)
		if kind == FDPAwareFS {
			st.FS.SetPlacementHint(tenantFilePID(0))
		}
		be, err := baseline.New(st.FS)
		if err != nil {
			return nil, err
		}
		st.Backend = be

	case SlimIOFDP, SlimIOConv, SlimIONoSQPoll:
		if kind == SlimIOConv {
			dev, err := newConv()
			if err != nil {
				return nil, err
			}
			st.Dev = dev
		} else {
			dev, err := newFDP()
			if err != nil {
				return nil, err
			}
			st.Dev = dev
		}
		cfg := core.Config{SlotPages: slotPages, Trace: tr}
		if kind == SlimIONoSQPoll {
			cfg.SnapshotRingSet = true
			cfg.SnapshotRing = uring.Config{SQPoll: false}
		}
		be, err := core.New(eng, st.Dev, cfg)
		if err != nil {
			return nil, err
		}
		st.Slim = be
		st.Backend = be

	default:
		return nil, fmt.Errorf("exp: unknown backend kind %d", kind)
	}
	return st, nil
}

// Pool returns the stack's shared page-buffer pool (one per cell, owned by
// the NAND array; every layer up to the engine's WAL buffer encodes into it).
func (st *Stack) Pool() *bufpool.Pool {
	return st.Dev.FTL().Array().Pool()
}

// Close releases every pooled segment the stack still holds: the SlimIO
// backend's rings and tail buffers, the kernel path's page cache and staged
// block-layer requests, and the NAND array's stored pages. Teardown only —
// afterwards Pool().InFlight() counts exactly the segments leaked by layers
// above the stack (zero when the engine released its buffers too).
func (st *Stack) Close() {
	if st.Slim != nil {
		st.Slim.Close()
	}
	if be, ok := st.Backend.(*baseline.Backend); ok {
		// Releases the chain of a WALAppend frozen by a power cut, then
		// closes the filesystem (Filesystem.Close is idempotent with the
		// call below).
		be.Close()
	}
	if st.FS != nil {
		st.FS.Close()
	}
	st.Dev.FTL().Array().ReleaseStored()
}

// ArmPowerCut schedules a power cut at virtual time at: programs completing
// after it tear. It installs the fault hook if BuildStack skipped it (a
// power cut alone activates an otherwise-zero plan).
func (st *Stack) ArmPowerCut(at sim.Time) {
	st.Fault.SchedulePowerCut(at)
	st.Dev.FTL().Array().SetFaultHook(st.Fault)
}

// filePID maps baseline file names to lifetime-class PIDs, mirroring
// SlimIO's assignment for the FDP-aware-filesystem ablation.
func filePID(name string) uint32 {
	switch {
	case strings.HasPrefix(name, "appendonly.wal"):
		return core.PIDWAL
	case name == "dump-wal.rdb" || strings.HasPrefix(name, "dump-wal"):
		return core.PIDWALSnapshot
	case strings.HasPrefix(name, "dump-ondemand"):
		return core.PIDOnDemand
	default:
		return 0
	}
}

// tenantFilePID is the tenant-offset variant of filePID: lifetime class c
// maps to base+c inside the tenant's leased placement range, and unknown
// file names fall back to the tenant's own local stream base+0 — never to
// another tenant's PIDs. base 0 is exactly filePID (the single-tenant
// ablation).
func tenantFilePID(base uint32) func(string) uint32 {
	return func(name string) uint32 { return base + filePID(name) }
}
