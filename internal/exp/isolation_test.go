package exp

import (
	"math/rand"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/telemetry"
)

// tenantChurnOutcome is what one placement mode's device-direct run yields.
type tenantChurnOutcome struct {
	quietWAF  float64
	noisyWAF  float64
	deviceWAF float64
	quietGC   int64
	quietHost int64
	reclaims  int64
}

// runTenantChurn drives both tenants' devices directly (no engine stack on
// top, TestLiveWAFSeries style): tenant 0 maps its whole window and then
// churns random overwrites — the noisy neighbor; tenant 1 writes a cold
// region once on its snapshot stream and runs an RU-aligned circular log
// with whole-region trims on its WAL stream — the quiet tenant whose
// lifetimes are perfectly separated.
func runTenantChurn(t *testing.T, placement TenantPlacement) tenantChurnOutcome {
	t.Helper()
	onePage := bufpool.Borrowed(make([]byte, 4096))
	eng := sim.NewEngine()
	ts, err := BuildTenantStack(eng, placement, 2, TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	noisy, quiet := ts.Tenants[0], ts.Tenants[1]
	window := noisy.Dev.Capacity()

	eng.Spawn("noisy", func(env *sim.Env) {
		rng := rand.New(rand.NewSource(3))
		for lpa := int64(0); lpa < window; lpa++ {
			if err := noisy.Dev.Write(env, lpa, []bufpool.Ref{onePage}, 1); err != nil {
				t.Error(err)
				return
			}
		}
		for i := int64(0); i < window*4; i++ {
			if err := noisy.Dev.Write(env, rng.Int63n(window), []bufpool.Ref{onePage}, 1); err != nil {
				t.Error(err)
				return
			}
		}
	})
	eng.Spawn("quiet", func(env *sim.Env) {
		// Cold data written once on the tenant's snapshot stream: the pages
		// a shared placement forces reclaim to copy over and over.
		cold := window / 4
		for lpa := int64(0); lpa < cold; lpa++ {
			if err := quiet.Dev.Write(env, window/2+lpa, []bufpool.Ref{onePage}, 2); err != nil {
				t.Error(err)
				return
			}
		}
		// RU-aligned circular log on the WAL stream: each round fills whole
		// reclaim units, then trims them wholesale, so the quiet tenant's
		// sealed RUs are either fully valid (never a reclaim victim while
		// the noisy tenant has invalid pages) or fully empty.
		region := window / 6
		for round := 0; round < 6; round++ {
			for lpa := int64(0); lpa < region; lpa++ {
				if err := quiet.Dev.Write(env, lpa, []bufpool.Ref{onePage}, 1); err != nil {
					t.Error(err)
					return
				}
			}
			if err := quiet.Dev.Deallocate(0, region); err != nil {
				t.Error(err)
				return
			}
		}
	})
	eng.Run()

	var out tenantChurnOutcome
	out.quietWAF = ts.TenantWAF(quiet)
	out.noisyWAF = ts.TenantWAF(noisy)
	out.deviceWAF = ts.Dev.Stats().WAF()
	out.quietHost = quiet.NS.HostWritePages()
	out.reclaims = ts.FDP.Stats().RUsReclaimed
	out.quietGC = -1
	if quiet.Lease != nil {
		for _, u := range ts.Alloc.Rollup(ts.FDP.Stats()) {
			if u.Tenant == quiet.Name {
				out.quietGC = u.GCCopies
				out.quietHost = u.HostWrites
			}
		}
	}
	ts.Close()
	ts.Pool().Close()
	eng.Shutdown()
	return out
}

// TestTenantIsolationWAFSplit is the isolation acceptance test: the same
// noisy-beside-quiet churn runs on one shared device under both placement
// modes. Per-tenant FDP must hold the quiet tenant at WAF exactly 1.00 (zero
// reclaim copies billed to its lease) while the shared single-stream
// baseline drags it up by at least 1.2x — the noisy neighbor's churn forces
// reclaim to copy the quiet tenant's long-lived pages.
func TestTenantIsolationWAFSplit(t *testing.T) {
	fdp := runTenantChurn(t, TenantFDP)
	shared := runTenantChurn(t, TenantShared)
	t.Logf("fdp:    quiet %.3f noisy %.3f device %.3f reclaims %d quietGC %d",
		fdp.quietWAF, fdp.noisyWAF, fdp.deviceWAF, fdp.reclaims, fdp.quietGC)
	t.Logf("shared: quiet %.3f noisy %.3f device %.3f reclaims %d",
		shared.quietWAF, shared.noisyWAF, shared.deviceWAF, shared.reclaims)

	// Non-vacuity: both runs must have actually reclaimed, and the quiet
	// tenant must have written.
	if fdp.reclaims == 0 || shared.reclaims == 0 {
		t.Fatalf("reclaim never ran (fdp %d, shared %d); enlarge the churn", fdp.reclaims, shared.reclaims)
	}
	if fdp.quietHost == 0 {
		t.Fatal("quiet tenant wrote nothing")
	}

	if fdp.quietGC != 0 {
		t.Errorf("per-tenant FDP billed the quiet tenant %d reclaim copies, want 0", fdp.quietGC)
	}
	if fdp.quietWAF != 1.0 {
		t.Errorf("quiet tenant WAF under per-tenant FDP = %.3f, want exactly 1.00", fdp.quietWAF)
	}
	if fdp.noisyWAF <= 1.0 {
		t.Errorf("noisy tenant WAF under per-tenant FDP = %.3f, want > 1 (it pays for its own churn)", fdp.noisyWAF)
	}
	if shared.quietWAF < fdp.quietWAF*1.2 {
		t.Errorf("shared-PID quiet tenant WAF = %.3f, want >= 1.2x its FDP value %.3f",
			shared.quietWAF, fdp.quietWAF)
	}
	if shared.deviceWAF < 1.2 {
		t.Errorf("shared-PID device WAF = %.3f, want >= 1.2", shared.deviceWAF)
	}
}

// TestIsolationExperiment runs the full-stack isolation experiment at tiny
// scale and checks its structure and attribution: the FDP cell bills every
// reclaim copy to a lease (the quiet tenants' leases stay clean), the
// shared cell cannot attribute at all, and the report renders both.
func TestIsolationExperiment(t *testing.T) {
	sc := TinyScale()
	sc.Parallel = 1
	sc.Telemetry = telemetry.NewRegistry(sim.Millisecond)
	res, err := RunIsolation(sc, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants != 2 || len(res.Cells) != 2 {
		t.Fatalf("result shape: %d tenants, %d cells", res.Tenants, len(res.Cells))
	}
	fdpCell := res.Cell(TenantFDP)
	sharedCell := res.Cell(TenantShared)
	if fdpCell == nil || sharedCell == nil {
		t.Fatal("missing placement cell")
	}
	for _, c := range res.Cells {
		if len(c.Rows) != 2 {
			t.Fatalf("%s: %d rows", c.Placement, len(c.Rows))
		}
		if c.Rows[0].Role != "noisy" || c.Rows[1].Role != "steady" {
			t.Fatalf("%s: roles %q/%q", c.Placement, c.Rows[0].Role, c.Rows[1].Role)
		}
		for _, row := range c.Rows {
			if row.Ops == 0 || row.HostPages == 0 || row.SetP99 == 0 {
				t.Fatalf("%s %s: empty row %+v", c.Placement, row.Tenant, row)
			}
		}
		// The noisy tenant gets double the per-tenant op budget.
		if c.Rows[0].Ops != 2*c.Rows[1].Ops {
			t.Fatalf("%s: noisy ops %d, steady ops %d, want 2:1", c.Placement, c.Rows[0].Ops, c.Rows[1].Ops)
		}
	}
	for _, row := range sharedCell.Rows {
		if row.GCCopies != -1 {
			t.Errorf("shared row %s claims attributed GC copies (%d); a single stream cannot attribute", row.Tenant, row.GCCopies)
		}
	}
	for _, row := range fdpCell.Rows {
		if row.GCCopies < 0 {
			t.Errorf("FDP row %s lost attribution", row.Tenant)
		}
	}
	// The quiet tenant's lease must stay clean under per-tenant FDP, and
	// its WAF must hold exactly 1.00.
	if q := fdpCell.Rows[1]; q.GCCopies != 0 || q.WAF != 1.0 {
		t.Errorf("FDP quiet tenant: GC copies %d WAF %.3f, want 0 and 1.00", q.GCCopies, q.WAF)
	}
	if fdpCell.QuietWorstWAF() != 1.0 {
		t.Errorf("QuietWorstWAF = %.3f, want 1.00", fdpCell.QuietWorstWAF())
	}
	// Shared placement can never beat isolation for the quiet tenants.
	if sharedCell.QuietWorstWAF() < fdpCell.QuietWorstWAF() {
		t.Errorf("shared quiet WAF %.3f below FDP quiet WAF %.3f", sharedCell.QuietWorstWAF(), fdpCell.QuietWorstWAF())
	}
	if res.String() == "" {
		t.Fatal("empty report")
	}

	// The telemetry plane must export the per-tenant gauges of both cells.
	dump := sc.Telemetry.Snapshot()
	if len(dump.Cells) != 2 {
		t.Fatalf("telemetry cells = %d, want 2", len(dump.Cells))
	}
	for _, c := range dump.Cells {
		found := map[string]bool{}
		for _, n := range c.Names {
			found[n] = true
		}
		for _, want := range []string{"tenant.count", "tenant0.host_pages", "tenant0.waf_x100", "tenant1.waf_x100", "ftl.host_write_pages"} {
			if !found[want] {
				t.Errorf("cell %s: gauge %q missing", c.Label, want)
			}
		}
	}
}

// TestIsolationDeterminismSerialAndParallel extends the determinism gate to
// the multi-tenant experiment: the rendered report must be byte-identical
// across repeated serial runs and under the parallel cell scheduler.
func TestIsolationDeterminismSerialAndParallel(t *testing.T) {
	run := func(parallel int) string {
		sc := TinyScale()
		sc.Parallel = parallel
		res, err := RunIsolation(sc, 2, true)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return res.String()
	}
	serial1 := run(1)
	serial2 := run(1)
	concurrent := run(2)
	if serial1 != serial2 {
		t.Errorf("serial isolation run not reproducible:\n%s\nvs\n%s", serial1, serial2)
	}
	if serial1 != concurrent {
		t.Errorf("parallel isolation run diverges from serial:\n%s\nvs\n%s", serial1, concurrent)
	}
}
