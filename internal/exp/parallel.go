package exp

import (
	"runtime"
	"sync"
)

// runCells executes n independent experiment cells with bounded parallelism.
// Each cell is a fully self-contained deterministic simulation (its own
// engine, device, RNGs), so running cells concurrently cannot perturb any
// cell's results; callers store each job's output into a preallocated slot
// indexed by job number, which keeps output ordering identical to a serial
// run. parallel <= 0 means GOMAXPROCS.
//
// With parallel == 1 the jobs run inline on the calling goroutine, in order
// — byte-for-byte the serial harness — which the determinism regression
// test uses as its reference.
//
// The first error by job index wins, matching serial error reporting.
func runCells(n, parallel int, job func(i int) error) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, parallel)
	//slimio:allow rawgoroutine the sanctioned worker pool: each job is a sealed deterministic cell, outputs land in preallocated slots
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sem <- struct{}{}
		wg.Add(1)
		//slimio:allow rawgoroutine cells share no simulation state; parallelism here cannot reorder any cell's events
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = job(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
