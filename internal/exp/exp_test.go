package exp

import (
	"strings"
	"testing"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/workload"
)

func TestBuildStackAllKinds(t *testing.T) {
	for _, kind := range []BackendKind{
		BaselineEXT4, BaselineF2FS, BaselineF2FSPrio,
		SlimIOFDP, SlimIOConv, SlimIONoSQPoll, FDPAwareFS,
	} {
		eng := sim.NewEngine()
		st, err := BuildStack(eng, kind, TinyScale())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if st.Dev == nil || st.Backend == nil {
			t.Fatalf("%v: incomplete stack", kind)
		}
		isBaseline := kind == BaselineEXT4 || kind == BaselineF2FS || kind == BaselineF2FSPrio || kind == FDPAwareFS
		if isBaseline && st.FS == nil {
			t.Fatalf("%v: missing filesystem", kind)
		}
		if !isBaseline && st.Slim == nil {
			t.Fatalf("%v: missing slimio backend", kind)
		}
		if kind.String() == "unknown" {
			t.Fatalf("%v: missing name", kind)
		}
	}
	if _, err := BuildStack(sim.NewEngine(), BackendKind(99), TinyScale()); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestFilePIDMapping(t *testing.T) {
	cases := map[string]uint32{
		"appendonly.wal.0":    1,
		"dump-wal.rdb":        2,
		"dump-wal-3.tmp":      2,
		"dump-ondemand-1.tmp": 3,
		"dump-ondemand.rdb":   3,
		"somethingelse":       0,
	}
	for name, want := range cases {
		if got := filePID(name); got != want {
			t.Errorf("filePID(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestRunCellBasicInvariants(t *testing.T) {
	sc := TinyScale()
	res, err := RunCell(CellConfig{
		Kind: SlimIOFDP, Policy: imdb.PeriodicalLog, Scale: sc,
		Workload: workload.RedisBench(0, sc.KeyRange), OnDemandPerRep: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgRPS <= 0 || res.Duration <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if len(res.Snapshots) == 0 {
		t.Fatal("no snapshots")
	}
	if res.SnapMem < res.WALOnlyMem {
		t.Fatal("peak memory below base")
	}
	if res.WAF != 1.0 {
		t.Fatalf("SlimIO-on-FDP WAF = %v, want 1.00", res.WAF)
	}
	if res.SetP999 <= 0 {
		t.Fatal("no latency data")
	}
}

func TestRunCellDeterminism(t *testing.T) {
	sc := TinyScale()
	run := func() (*CellResult, error) {
		return RunCell(CellConfig{
			Kind: BaselineF2FS, Policy: imdb.PeriodicalLog, Scale: sc,
			Workload: workload.RedisBench(0, sc.KeyRange), OnDemandPerRep: true,
		})
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.AvgRPS != b.AvgRPS || a.SetP999 != b.SetP999 || a.WAF != b.WAF {
		t.Fatalf("nondeterministic cells:\n%+v\n%+v", a, b)
	}
}

func TestTable1ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests need small scale; skipped in -short")
	}
	res, err := RunTable1(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[string]Table1Row{}
	for _, r := range res.Rows {
		byKey[r.FS+"/"+r.Phase] = r
	}
	for _, fs := range []string{"ext4", "f2fs"} {
		walOnly, snap := byKey[fs+"/WAL Only"], byKey[fs+"/Snapshot&WAL"]
		// Paper Table 1: RPS drops ~28-31% during snapshots and memory
		// roughly doubles. At tiny scale we only assert direction.
		if snap.RPS >= walOnly.RPS {
			t.Errorf("%s: snapshot phase RPS %v not below WAL-only %v", fs, snap.RPS, walOnly.RPS)
		}
		if snap.MemBytes <= walOnly.MemBytes {
			t.Errorf("%s: snapshot memory %v not above base %v", fs, snap.MemBytes, walOnly.MemBytes)
		}
	}
	if s := res.String(); !strings.Contains(s, "Table 1") {
		t.Error("missing render")
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests need small scale; skipped in -short")
	}
	res, err := RunTable2(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 11.53% -> 13.61%. Assert a meaningful share that grows under
	// concurrent WAL traffic.
	if res.SnapshotOnlyPct <= 2 || res.SnapshotOnlyPct >= 40 {
		t.Errorf("snapshot-only fs share = %.2f%%, want single-to-low-double digits", res.SnapshotOnlyPct)
	}
	if res.SnapshotWALPct < res.SnapshotOnlyPct {
		t.Errorf("fs share did not grow under WAL: %.2f%% -> %.2f%%", res.SnapshotOnlyPct, res.SnapshotWALPct)
	}
	if s := res.String(); !strings.Contains(s, "Table 2") {
		t.Error("missing render")
	}
}

func TestFigure2ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests need small scale; skipped in -short")
	}
	res, err := RunFigure2(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != 3 {
		t.Fatalf("scenarios = %d", len(res.Scenarios))
	}
	only, withWAL, underGC := res.Scenarios[0], res.Scenarios[1], res.Scenarios[2]
	// 2a: the kernel path consumes a noticeable share even alone.
	if share := pct(only.KernelPath, only.Duration); share < 5 || share > 35 {
		t.Errorf("snapshot-only kernel share = %.1f%%, want ~15%%", share)
	}
	// Snapshot duration must not improve under WAL contention (the paper
	// shows modest growth; at this scale the effect is within noise) and
	// must clearly grow under GC pressure.
	if float64(withWAL.Duration) < 0.99*float64(only.Duration) {
		t.Errorf("snapshot under WAL (%v) faster than alone (%v)", withWAL.Duration, only.Duration)
	}
	if underGC.Duration <= withWAL.Duration {
		t.Errorf("snapshot under GC (%v) not slower than under WAL (%v)", underGC.Duration, withWAL.Duration)
	}
	if underGC.SSDWait <= withWAL.SSDWait {
		t.Errorf("GC did not increase SSD wait: %v vs %v", underGC.SSDWait, withWAL.SSDWait)
	}
	// 2b: measured throughput below ideal; WAL outpaces snapshot when
	// concurrent (paper: snapshot 30-45% below WAL).
	if only.SnapshotTput >= only.IdealTput {
		t.Error("snapshot throughput above ideal")
	}
	if withWAL.SnapshotTput >= withWAL.WALTput {
		t.Errorf("snapshot tput %.0f not below WAL tput %.0f", withWAL.SnapshotTput, withWAL.WALTput)
	}
	if s := res.String(); !strings.Contains(s, "Figure 2a") {
		t.Error("missing render")
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests need small scale; skipped in -short")
	}
	res, err := RunTable3(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	get := func(pol imdb.LogPolicy, sys string) *CellResult {
		for _, r := range res.Rows {
			if r.Policy == pol && r.System == sys {
				return r.Result
			}
		}
		t.Fatalf("missing row %v/%s", pol, sys)
		return nil
	}
	for _, pol := range []imdb.LogPolicy{imdb.PeriodicalLog, imdb.AlwaysLog} {
		base, slim := get(pol, "Baseline"), get(pol, "SlimIO")
		if slim.WALOnlyRPS <= base.WALOnlyRPS {
			t.Errorf("%v: SlimIO WAL-only RPS %v not above baseline %v", pol, slim.WALOnlyRPS, base.WALOnlyRPS)
		}
		if slim.AvgRPS <= base.AvgRPS {
			t.Errorf("%v: SlimIO avg RPS not above baseline", pol)
		}
		if slim.MeanSnapshotTime >= base.MeanSnapshotTime {
			t.Errorf("%v: SlimIO snapshot %v not faster than baseline %v", pol, slim.MeanSnapshotTime, base.MeanSnapshotTime)
		}
		if slim.WAF != 1.0 {
			t.Errorf("%v: SlimIO WAF %v != 1.00", pol, slim.WAF)
		}
		if base.WAF < 1.0 {
			t.Errorf("%v: baseline WAF below 1", pol)
		}
	}
	if s := res.String(); !strings.Contains(s, "Table 3") {
		t.Error("missing render")
	}
}

func TestTable4ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests need small scale; skipped in -short")
	}
	sc := TinyScale()
	res, err := RunTable4(sc)
	if err != nil {
		t.Fatal(err)
	}
	get := func(pol imdb.LogPolicy, sys string) OverallRow {
		for _, r := range res.Rows {
			if r.Policy == pol && r.System == sys {
				return r
			}
		}
		t.Fatalf("missing row")
		return OverallRow{}
	}
	for _, pol := range []imdb.LogPolicy{imdb.PeriodicalLog, imdb.AlwaysLog} {
		base, slim := get(pol, "Baseline"), get(pol, "SlimIO")
		if slim.Result.AvgRPS <= base.Result.AvgRPS {
			t.Errorf("%v: SlimIO avg RPS not above baseline", pol)
		}
		if base.GetP999 <= 0 || slim.GetP999 <= 0 {
			t.Errorf("%v: missing GET tail latency", pol)
		}
	}
	if s := res.String(); !strings.Contains(s, "GET p999") {
		t.Error("missing GET column")
	}
}

func TestTable5ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests need small scale; skipped in -short")
	}
	res, err := RunTable5(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base, slim := res.Rows[0], res.Rows[1]
	if base.Entries == 0 || slim.Entries == 0 {
		t.Fatal("recovery loaded nothing")
	}
	// Paper Table 5: SlimIO recovers ~20% faster with higher throughput.
	if slim.RecoveryTime >= base.RecoveryTime {
		t.Errorf("SlimIO recovery %v not faster than baseline %v", slim.RecoveryTime, base.RecoveryTime)
	}
	if slim.ThroughputBps <= base.ThroughputBps {
		t.Errorf("SlimIO recovery throughput not above baseline")
	}
	if s := res.String(); !strings.Contains(s, "Table 5") {
		t.Error("missing render")
	}
}

func TestFigure4And5ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("shape tests need small scale; skipped in -short")
	}
	sc := SmallScale()
	window := 2500 * sim.Millisecond
	warmup := 500 * sim.Millisecond

	base4, slim4, err := RunFigure4(sc, window)
	if err != nil {
		t.Fatal(err)
	}
	sBase4, sSlim4 := base4.Summarize(warmup), slim4.Summarize(warmup)
	// Figure 4: SlimIO-without-FDP dips harder than the baseline under GC
	// (relative floor below the mean).
	if sSlim4.MinRPS/sSlim4.MeanRPS >= sBase4.MinRPS/sBase4.MeanRPS {
		t.Errorf("fig4: slimio-conv floor %.2f of mean not deeper than baseline %.2f",
			sSlim4.MinRPS/sSlim4.MeanRPS, sBase4.MinRPS/sBase4.MeanRPS)
	}
	if slim4.GCRuns == 0 {
		t.Error("fig4: no GC on slimio-conv")
	}

	_, slim5, err := RunFigure5(sc, window)
	if err != nil {
		t.Fatal(err)
	}
	sSlim5 := slim5.Summarize(warmup)
	// Figure 5: with FDP the floor recovers into a stable band.
	if sSlim5.MinRPS/sSlim5.MeanRPS <= sSlim4.MinRPS/sSlim4.MeanRPS {
		t.Errorf("fig5: FDP floor %.2f of mean not above noFDP floor %.2f",
			sSlim5.MinRPS/sSlim5.MeanRPS, sSlim4.MinRPS/sSlim4.MeanRPS)
	}
	if slim5.WAF != 1.0 {
		t.Errorf("fig5: SlimIO-FDP WAF = %v", slim5.WAF)
	}
}
