package ftl

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

func newTestFTL(t *testing.T, blocksPerDie int) *FTL {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: blocksPerDie, PagesPerBlock: 8, PageSize: 128}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	return New(arr, Config{})
}

func page(s string, size int) []byte {
	b := make([]byte, 0, size)
	for len(b) < size {
		b = append(b, s...)
	}
	return b[:size]
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newTestFTL(t, 8)
	want := page("abc", 128)
	if _, err := f.Write(0, 7, bufpool.Borrowed(want), 0); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Read(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
	if !f.Mapped(7) || f.Mapped(8) {
		t.Fatal("Mapped() wrong")
	}
}

func TestOverwriteReturnsLatest(t *testing.T) {
	f := newTestFTL(t, 8)
	for i := 0; i < 5; i++ {
		data := page(fmt.Sprintf("v%d", i), 128)
		if _, err := f.Write(0, 3, bufpool.Borrowed(data), 0); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := f.Read(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page("v4", 128)) {
		t.Fatal("overwrite did not return latest version")
	}
	s := f.Stats()
	if s.HostWritePages != 5 {
		t.Fatalf("host writes = %d", s.HostWritePages)
	}
}

func TestReadUnmappedFails(t *testing.T) {
	f := newTestFTL(t, 8)
	if _, _, err := f.Read(0, 0); err == nil {
		t.Fatal("read of unmapped LPA succeeded")
	}
}

func TestLPABounds(t *testing.T) {
	f := newTestFTL(t, 8)
	if _, err := f.Write(0, -1, bufpool.Ref{}, 0); err == nil {
		t.Fatal("negative LPA accepted")
	}
	if _, err := f.Write(0, f.Capacity(), bufpool.Ref{}, 0); err == nil {
		t.Fatal("LPA past capacity accepted")
	}
	if err := f.Deallocate(f.Capacity()-1, 2); err == nil {
		t.Fatal("deallocate past capacity accepted")
	}
}

func TestCapacityRespectsOverProvision(t *testing.T) {
	f := newTestFTL(t, 8)
	raw := int64(4 * 8 * 8) // dies*blocks*pages
	op := int64(float64(raw) * (1 - 1.0/8))
	// Capacity is the OP share, further capped by the per-die GC headroom
	// reserve of (threshold+1) blocks.
	reserve := raw - 4*3*8
	want := op
	if reserve < want {
		want = reserve
	}
	if f.Capacity() != want {
		t.Fatalf("capacity = %d, want %d", f.Capacity(), want)
	}
	if f.Capacity() >= raw {
		t.Fatal("capacity must be below raw")
	}
}

func TestDeallocate(t *testing.T) {
	f := newTestFTL(t, 8)
	for lpa := int64(0); lpa < 10; lpa++ {
		if _, err := f.Write(0, lpa, bufpool.Borrowed(page("x", 128)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Deallocate(2, 5); err != nil {
		t.Fatal(err)
	}
	for lpa := int64(2); lpa < 7; lpa++ {
		if f.Mapped(lpa) {
			t.Fatalf("LPA %d still mapped after TRIM", lpa)
		}
	}
	if !f.Mapped(0) || !f.Mapped(9) {
		t.Fatal("TRIM removed out-of-range mappings")
	}
}

// Fill the device well past one pass so GC must run, then verify every
// logical page still reads back its latest value.
func TestGCPreservesData(t *testing.T) {
	f := newTestFTL(t, 6)
	rng := rand.New(rand.NewSource(1))
	latest := make(map[int64]string)
	now := sim.Time(0)
	// Use half the capacity, overwritten many times: forces GC with a mix
	// of valid and stale pages.
	hot := f.Capacity() / 2
	for i := 0; i < int(f.Capacity())*4; i++ {
		lpa := rng.Int63n(hot)
		v := fmt.Sprintf("%d:%d", lpa, i)
		done, err := f.Write(now, lpa, bufpool.Borrowed(page(v, 128)), 0)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		latest[lpa] = v
		now = done
	}
	s := f.Stats()
	if s.GCRuns == 0 {
		t.Fatal("test did not trigger GC; shrink the device")
	}
	if s.GCCopiedPages == 0 {
		t.Fatal("GC never copied valid data; victim mix unexpected")
	}
	if s.WAF() <= 1.0 {
		t.Fatalf("WAF = %.3f, want > 1 with mixed-lifetime churn", s.WAF())
	}
	for lpa, v := range latest {
		got, _, err := f.Read(now, lpa)
		if err != nil {
			t.Fatalf("read LPA %d: %v", lpa, err)
		}
		if !bytes.Equal(got, page(v, 128)) {
			t.Fatalf("LPA %d corrupted after GC", lpa)
		}
	}
}

// Purely sequential write + full TRIM before rewrite behaves like a
// circular log: GC victims are always fully invalid, so WAF stays 1.
func TestSequentialTrimWorkloadNoWAF(t *testing.T) {
	f := newTestFTL(t, 6)
	now := sim.Time(0)
	region := f.Capacity() / 2
	for round := 0; round < 8; round++ {
		for lpa := int64(0); lpa < region; lpa++ {
			done, err := f.Write(now, lpa, bufpool.Borrowed(page("s", 128)), 0)
			if err != nil {
				t.Fatal(err)
			}
			now = done
		}
		if err := f.Deallocate(0, region); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.WAF() != 1.0 {
		t.Fatalf("WAF = %.3f, want exactly 1.0 for TRIM-before-rewrite log", s.WAF())
	}
}

func TestGCStallsHostWrites(t *testing.T) {
	f := newTestFTL(t, 6)
	rng := rand.New(rand.NewSource(2))
	now := sim.Time(0)
	hot := f.Capacity() / 2
	var maxLat sim.Duration
	lat := f.arr.Latencies()
	for i := 0; i < int(f.Capacity())*3; i++ {
		lpa := rng.Int63n(hot)
		done, err := f.Write(now, lpa, bufpool.Borrowed(page("x", 128)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if l := done.Sub(now); l > maxLat {
			maxLat = l
		}
		now = done
	}
	// A write that triggers GC must absorb at least one block erase.
	if maxLat < lat.BlockErase {
		t.Fatalf("max write latency %v never absorbed a GC erase (%v)", maxLat, lat.BlockErase)
	}
	if f.Stats().GCBusy == 0 {
		t.Fatal("GCBusy not accounted")
	}
}

func TestDeviceFullErrors(t *testing.T) {
	f := newTestFTL(t, 4)
	now := sim.Time(0)
	var err error
	// Write unique LPAs until the device reports full; with all data valid
	// GC cannot help forever, so the error must eventually surface.
	for lpa := int64(0); lpa < f.Capacity()*2; lpa++ {
		var done sim.Time
		done, err = f.Write(now, lpa%f.Capacity(), bufpool.Borrowed(page("f", 128)), 0)
		if err != nil {
			break
		}
		now = done
	}
	// Filling exactly Capacity unique pages with 1/8 OP must succeed;
	// the loop overwrites, which stays at Capacity valid pages, so no
	// error is expected at all here.
	if err != nil {
		t.Fatalf("unexpected device-full at steady valid set: %v", err)
	}
}

func TestGCLogRecorded(t *testing.T) {
	f := newTestFTL(t, 6)
	rng := rand.New(rand.NewSource(3))
	now := sim.Time(0)
	for i := 0; i < int(f.Capacity())*3; i++ {
		done, err := f.Write(now, rng.Int63n(f.Capacity()/2), bufpool.Borrowed(page("x", 128)), 0)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	log := f.GCLog()
	if len(log) == 0 {
		t.Fatal("empty GC log")
	}
	for _, ev := range log {
		if ev.Done < ev.At {
			t.Fatalf("GC event ends before it starts: %+v", ev)
		}
		if ev.ValidCopied < 0 {
			t.Fatalf("negative copies: %+v", ev)
		}
	}
}

func TestStatsWAFIdentityNoGC(t *testing.T) {
	f := newTestFTL(t, 8)
	for lpa := int64(0); lpa < 20; lpa++ {
		if _, err := f.Write(0, lpa, bufpool.Borrowed(page("x", 128)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Stats().WAF(); got != 1.0 {
		t.Fatalf("WAF without GC = %v", got)
	}
	var empty Stats
	if empty.WAF() != 1.0 {
		t.Fatal("WAF of zero stats must be 1.0")
	}
}

// Property: after any random sequence of writes/TRIMs that the FTL accepts,
// every mapped LPA reads back its latest written value.
func TestFTLIntegrityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		geo := nand.Geometry{Channels: 1, DiesPerChannel: 2, BlocksPerDie: 5, PagesPerBlock: 4, PageSize: 32}
		arr, err := nand.New(geo, nand.DefaultLatencies())
		if err != nil {
			return false
		}
		f := New(arr, Config{})
		latest := make(map[int64][]byte)
		now := sim.Time(0)
		for i := 0; i < 300; i++ {
			lpa := rng.Int63n(f.Capacity() / 2)
			if rng.Intn(5) == 0 {
				n := rng.Int63n(4) + 1
				if lpa+n > f.Capacity() {
					n = f.Capacity() - lpa
				}
				if err := f.Deallocate(lpa, n); err != nil {
					return false
				}
				for j := int64(0); j < n; j++ {
					delete(latest, lpa+j)
				}
				continue
			}
			v := []byte(fmt.Sprintf("%d.%d", seed, i))
			done, err := f.Write(now, lpa, bufpool.Borrowed(v), 0)
			if err != nil {
				return false
			}
			latest[lpa] = v
			now = done
		}
		for lpa, v := range latest {
			got, _, err := f.Read(now, lpa)
			if err != nil || !bytes.Equal(got[:len(v)], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
