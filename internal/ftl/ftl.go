// Package ftl implements a conventional page-mapped flash translation layer
// over a nand.Array: a single write front shared by all data (so streams
// with different lifetimes mix inside physical blocks), greedy victim
// selection, and foreground garbage collection whose valid-page migration is
// the source of write amplification.
//
// This is the device model behind the paper's baseline ("conventional NVMe
// SSD ... without FDP support"): because WAL entries, WAL-Snapshots and
// On-Demand-Snapshots land in the same blocks, reclaiming space forces the
// device to copy still-valid long-lived data, inflating WAF above 1 and
// stalling host writes behind GC work (paper §2.3, §3.1.4).
package ftl

import (
	"fmt"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/vtrace"
)

// maxProgramRetries bounds how many fresh pages a single logical write tries
// after program failures before the FTL gives up (each failure also retires
// a block, so the loop cannot spin on the same media).
const maxProgramRetries = 4

// maxReadRetries bounds in-FTL re-reads of a transiently failing page during
// GC and retirement migration.
const maxReadRetries = 4

// Stats aggregates host-visible FTL counters. WAF is NAND page programs per
// host page write; 1.00 means the device never rewrote data internally.
// NANDWritePages = HostWritePages + GCCopiedPages + RetireMigratedPages
// always holds (torn writes are counted separately and excluded).
type Stats struct {
	HostWritePages int64 // page programs requested by the host
	HostReadPages  int64
	NANDWritePages int64 // actual page programs, including GC migration
	GCCopiedPages  int64
	GCErasedBlocks int64
	GCRuns         int64
	GCBusy         sim.Duration // die time consumed by GC reads/programs/erases

	// Fault-handling counters; all stay zero on a perfect device.
	ProgramFailures     int64 // NAND program failures survived by remapping
	RetiredBlocks       int64 // blocks taken out of service
	RetireMigratedPages int64 // valid pages moved off retired blocks
	GCReadRetries       int64 // re-reads of transiently failing pages
	LostPages           int64 // LPAs dropped after unrecoverable reads
	EraseFailures       int64 // erases that failed (block retired instead)
	TornWrites          int64 // programs interrupted by power loss
}

// WAF reports the write amplification factor (1.0 when no host writes yet).
func (s Stats) WAF() float64 {
	if s.HostWritePages == 0 {
		return 1
	}
	return float64(s.NANDWritePages) / float64(s.HostWritePages)
}

// GCEvent records one garbage-collection run for inspection and plotting.
type GCEvent struct {
	At          sim.Time
	Die         int
	VictimBlock int
	ValidCopied int
	Done        sim.Time
}

// Config tunes the FTL.
type Config struct {
	// OverProvision is the fraction of raw capacity hidden from the host
	// (default 1/8). More OP means less GC pressure.
	OverProvision float64
	// GCFreeBlocksLow is the per-die free-block threshold at which
	// foreground GC triggers (default 2).
	GCFreeBlocksLow int
	// GCEventLogLimit bounds the retained GC event log (default 4096).
	GCEventLogLimit int
	// Metrics, when non-nil, receives fault/retirement event counters
	// ("ftl.program_fail", "ftl.block_retired", "ftl.gc_read_retry",
	// "ftl.lpa_lost", "ftl.erase_fail", "ftl.torn_write").
	Metrics *metrics.Counter
	// Trace, when non-nil, records ftl/write, ftl/read and ftl/gc spans
	// (GC spans carry the copied-page count as Arg).
	Trace *vtrace.Tracer
}

func (c *Config) fillDefaults() {
	if c.OverProvision <= 0 || c.OverProvision >= 1 {
		c.OverProvision = 1.0 / 8
	}
	if c.GCFreeBlocksLow <= 0 {
		c.GCFreeBlocksLow = 2
	}
	if c.GCEventLogLimit <= 0 {
		c.GCEventLogLimit = 4096
	}
}

type blockMeta struct {
	valid int // count of valid pages
}

type dieState struct {
	free   []int // free block indices (LIFO)
	active int   // block currently being programmed, -1 if none
}

// FTL is the conventional page-mapped translation layer. Not safe for
// concurrent use; simulation context only.
type FTL struct {
	arr *nand.Array
	cfg Config

	usableLPAs int64
	l2p        []nand.PPA // LPA -> PPA, InvalidPPA when unmapped
	p2l        []int64    // PPA -> LPA, -1 when page invalid/free
	blocks     []blockMeta
	dies       []dieState
	nextDie    int // round-robin write striping across dies

	retired []bool  // global block index -> permanently out of service
	pending []int64 // LPAs awaiting migration off retired blocks

	stats  Stats
	gcLog  []GCEvent
	inGC   bool
	pageSz int
}

// New builds an FTL over a fresh array.
func New(arr *nand.Array, cfg Config) *FTL {
	cfg.fillDefaults()
	geo := arr.Geometry()
	// Usable capacity honors the over-provisioning ratio, and additionally
	// always reserves enough physical headroom per die for GC to make
	// progress (threshold+1 blocks), whichever is smaller.
	usable := int64(float64(geo.Pages()) * (1 - cfg.OverProvision))
	reserve := geo.Pages() - int64(geo.Dies()*(cfg.GCFreeBlocksLow+1)*geo.PagesPerBlock)
	if reserve < usable {
		usable = reserve
	}
	if usable < 1 {
		usable = 1
	}
	f := &FTL{
		arr:        arr,
		cfg:        cfg,
		usableLPAs: usable,
		l2p:        make([]nand.PPA, geo.Pages()),
		p2l:        make([]int64, geo.Pages()),
		blocks:     make([]blockMeta, geo.Blocks()),
		dies:       make([]dieState, geo.Dies()),
		retired:    make([]bool, geo.Blocks()),
		pageSz:     geo.PageSize,
	}
	for i := range f.l2p {
		f.l2p[i] = nand.InvalidPPA
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	for d := range f.dies {
		f.dies[d].active = -1
		// LIFO free list: push in reverse so block 0 pops first.
		for b := geo.BlocksPerDie - 1; b >= 0; b-- {
			f.dies[d].free = append(f.dies[d].free, b)
		}
	}
	return f
}

// Capacity reports the number of host-visible logical pages.
func (f *FTL) Capacity() int64 { return f.usableLPAs }

// PageSize reports the page size in bytes.
func (f *FTL) PageSize() int { return f.pageSz }

// Stats returns cumulative counters.
func (f *FTL) Stats() Stats { return f.stats }

// GCLog returns the retained GC events (oldest first).
func (f *FTL) GCLog() []GCEvent { return f.gcLog }

// FreeBlocks reports the total free blocks across all dies.
func (f *FTL) FreeBlocks() int {
	n := 0
	for d := range f.dies {
		n += len(f.dies[d].free)
	}
	return n
}

// RetiredBlocks reports the number of blocks taken out of service.
func (f *FTL) RetiredBlocks() int {
	n := 0
	for _, r := range f.retired {
		if r {
			n++
		}
	}
	return n
}

// BlockRetired reports whether a global block index is out of service.
func (f *FTL) BlockRetired(g int) bool { return g >= 0 && g < len(f.retired) && f.retired[g] }

func (f *FTL) inc(name string) {
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.Inc(name, 1)
	}
}

func (f *FTL) checkLPA(lpa int64) error {
	if lpa < 0 || lpa >= f.usableLPAs {
		return fmt.Errorf("ftl: LPA %d out of range [0,%d)", lpa, f.usableLPAs)
	}
	return nil
}

// invalidate drops the current mapping of lpa, if any.
func (f *FTL) invalidate(lpa int64) {
	old := f.l2p[lpa]
	if old == nand.InvalidPPA {
		return
	}
	f.l2p[lpa] = nand.InvalidPPA
	f.p2l[old] = -1
	f.blocks[f.arr.BlockOf(old)].valid--
}

// allocPage returns the next physical page of the round-robin write front,
// running foreground GC first if the chosen die is out of headroom.
// The pid argument is ignored here (single mixed stream); it exists so the
// signature matches the FDP FTL and call sites read identically.
func (f *FTL) allocPage(now sim.Time) (nand.PPA, sim.Time, error) {
	die := f.nextDie
	f.nextDie = (f.nextDie + 1) % len(f.dies)

	gcDone := now
	if !f.inGC {
		// Emergency: a die with no free block must collect until one frees
		// up. Each run nets at least one page of space as long as any
		// victim is below 100% valid, so the loop terminates; the iteration
		// cap catches modelling bugs.
		maxIters := 8 * f.arr.Geometry().PagesPerBlock
		for iter := 0; len(f.dies[die].free) == 0; iter++ {
			if iter > maxIters {
				return nand.InvalidPPA, now, fmt.Errorf("ftl: GC on die %d made no progress after %d runs", die, iter)
			}
			done, reclaimed, err := f.collect(gcDone, die)
			if err != nil {
				return nand.InvalidPPA, now, err
			}
			if !reclaimed {
				break
			}
			gcDone = done
		}
		// Below the watermark, collect one victim per allocation: the
		// foreground-GC stalls spread across host writes instead of
		// bursting, which is how real controllers behave under sustained
		// pressure.
		if len(f.dies[die].free) <= f.cfg.GCFreeBlocksLow {
			done, _, err := f.collect(gcDone, die)
			if err != nil {
				return nand.InvalidPPA, now, err
			}
			gcDone = done
		}
	}

	ds := &f.dies[die]
	if ds.active < 0 {
		if len(ds.free) == 0 {
			return nand.InvalidPPA, now, fmt.Errorf("ftl: die %d out of blocks (device full)", die)
		}
		ds.active = ds.free[len(ds.free)-1]
		ds.free = ds.free[:len(ds.free)-1]
	}
	page := f.arr.NextProgramPage(die, ds.active)
	ppa := f.arr.PPAOf(die, ds.active, page)
	if page == f.arr.Geometry().PagesPerBlock-1 {
		ds.active = -1 // block full after this program
	}
	return ppa, gcDone, nil
}

// collect reclaims one block on die using greedy (min-valid) victim
// selection. Valid pages are migrated to the same die's write front so GC
// stays die-local. It reports whether a victim was reclaimed, and the
// virtual time at which the die is available again for host work.
func (f *FTL) collect(now sim.Time, die int) (done sim.Time, reclaimed bool, err error) {
	f.inGC = true
	defer func() { f.inGC = false }()

	geo := f.arr.Geometry()
	ds := &f.dies[die]

	// Greedy victim: fewest valid pages among full (non-active, non-free)
	// blocks of this die.
	victim, victimValid := -1, geo.PagesPerBlock+1
	isFree := make(map[int]bool, len(ds.free))
	for _, b := range ds.free {
		isFree[b] = true
	}
	for b := 0; b < geo.BlocksPerDie; b++ {
		if b == ds.active || isFree[b] || f.retired[die*geo.BlocksPerDie+b] {
			continue
		}
		if f.arr.NextProgramPage(die, b) < geo.PagesPerBlock {
			continue // still being filled; not a GC candidate
		}
		if v := f.blocks[die*geo.BlocksPerDie+b].valid; v < victimValid {
			victim, victimValid = b, v
		}
	}
	if victim < 0 {
		return now, false, nil // nothing reclaimable yet
	}

	gcStart := now
	end := now
	copied := 0
	// The GC span parents every migration read/program and the erase; its
	// parent is whatever host write triggered collection (the FTL-write span
	// published via the tracer scope), so stalls show up inside the op tree.
	tr := f.cfg.Trace
	gcParent := tr.Scope()
	gcSpan := tr.Begin("ftl", "gc", gcParent, now)
	tr.SetScope(gcSpan)
	defer func() {
		tr.SetArg(gcSpan, int64(copied))
		tr.End(gcSpan, done)
		tr.SetScope(gcParent)
	}()
	for p := 0; p < geo.PagesPerBlock; p++ {
		src := f.arr.PPAOf(die, victim, p)
		lpa := f.p2l[src]
		if lpa < 0 {
			continue
		}
		_, rdone, ok, err := f.readWithRetry(now, src)
		if err != nil {
			return now, false, fmt.Errorf("ftl: GC read: %w", err)
		}
		if !ok {
			// Unrecoverable read: fail this single LPA rather than abort
			// the whole reclaim — the rest of the victim is still movable.
			f.invalidate(lpa)
			f.stats.LostPages++
			f.inc("ftl.lpa_lost")
			continue
		}
		// Migrate within this die: pull the destination from the die's own
		// write front (allocating a fresh block if needed); program
		// failures retire the destination block and retry elsewhere. The
		// stored ref re-programs the same pooled segment without copying:
		// the destination page retains it, the victim's erase releases it.
		dst, wdone, err := f.migrateProgram(rdone, die, f.arr.StoredRef(src))
		if err != nil {
			return now, false, fmt.Errorf("ftl: GC program: %w", err)
		}
		if wdone > end {
			end = wdone
		}
		// Remap.
		f.p2l[src] = -1
		f.blocks[die*geo.BlocksPerDie+victim].valid--
		f.l2p[lpa] = dst
		f.p2l[dst] = lpa
		f.blocks[f.arr.BlockOf(dst)].valid++
		copied++
		f.stats.NANDWritePages++
		f.stats.GCCopiedPages++
	}
	edone, err := f.arr.Erase(end, die, victim)
	if err != nil {
		if !nand.IsEraseFault(err) {
			return now, false, fmt.Errorf("ftl: GC erase: %w", err)
		}
		// Worn-out block: retire it instead of returning it to the free
		// list. No space was reclaimed, but the victim was processed, so
		// the caller's emergency loop moves on to the next candidate.
		f.stats.EraseFailures++
		f.inc("ftl.erase_fail")
		f.retireBlock(die*geo.BlocksPerDie + victim)
		f.stats.GCRuns++
		f.stats.GCBusy += edone.Sub(gcStart)
		return edone, true, nil
	}
	ds.free = append(ds.free, victim)

	f.stats.GCErasedBlocks++
	f.stats.GCRuns++
	f.stats.GCBusy += edone.Sub(gcStart)
	if len(f.gcLog) < f.cfg.GCEventLogLimit {
		f.gcLog = append(f.gcLog, GCEvent{
			At: gcStart, Die: die, VictimBlock: victim, ValidCopied: copied, Done: edone,
		})
	}
	return edone, true, nil
}

// allocPageOnDie hands out the next write-front page of a specific die
// without triggering GC (used by GC migration itself).
func (f *FTL) allocPageOnDie(die int) (nand.PPA, error) {
	ds := &f.dies[die]
	if ds.active < 0 {
		if len(ds.free) == 0 {
			return nand.InvalidPPA, fmt.Errorf("ftl: die %d out of blocks during GC", die)
		}
		ds.active = ds.free[len(ds.free)-1]
		ds.free = ds.free[:len(ds.free)-1]
	}
	page := f.arr.NextProgramPage(die, ds.active)
	ppa := f.arr.PPAOf(die, ds.active, page)
	if page == f.arr.Geometry().PagesPerBlock-1 {
		ds.active = -1
	}
	return ppa, nil
}

// readWithRetry reads src, re-reading up to maxReadRetries times on
// transient failures. ok=false means the page is unrecoverable (retries
// exhausted); a non-nil err is a model bug (unwritten page, bad PPA).
func (f *FTL) readWithRetry(now sim.Time, src nand.PPA) (data []byte, done sim.Time, ok bool, err error) {
	for attempt := 0; attempt <= maxReadRetries; attempt++ {
		data, done, err = f.arr.Read(now, src)
		if err == nil {
			return data, done, true, nil
		}
		if !nand.IsTransient(err) {
			return nil, now, false, err
		}
		f.stats.GCReadRetries++
		f.inc("ftl.gc_read_retry")
		now = done // the failed read still took die time; retry after it
	}
	return nil, now, false, nil
}

// retireBlock takes a global block out of service: it leaves every free
// list, stops being a write front or GC victim, and its still-valid LPAs are
// queued for migration (drained by drainRetired at the end of the host op).
func (f *FTL) retireBlock(g int) {
	if f.retired[g] {
		return
	}
	f.retired[g] = true
	f.stats.RetiredBlocks++
	f.inc("ftl.block_retired")
	geo := f.arr.Geometry()
	die, blk := g/geo.BlocksPerDie, g%geo.BlocksPerDie
	ds := &f.dies[die]
	if ds.active == blk {
		ds.active = -1
	}
	for i, b := range ds.free {
		if b == blk {
			ds.free = append(ds.free[:i], ds.free[i+1:]...)
			break
		}
	}
	base := f.arr.PPAOf(die, blk, 0)
	for p := 0; p < geo.PagesPerBlock; p++ {
		if lpa := f.p2l[base+nand.PPA(p)]; lpa >= 0 {
			f.pending = append(f.pending, lpa)
		}
	}
}

func (f *FTL) noteProgramFail(ppa nand.PPA) {
	f.stats.ProgramFailures++
	f.inc("ftl.program_fail")
	f.retireBlock(f.arr.BlockOf(ppa))
}

// allocMigrate hands out a migration destination, preferring prefDie and
// falling back to any die with room (a die can run dry when retirements eat
// its blocks).
func (f *FTL) allocMigrate(prefDie int) (nand.PPA, error) {
	for i := 0; i < len(f.dies); i++ {
		die := (prefDie + i) % len(f.dies)
		if ppa, err := f.allocPageOnDie(die); err == nil {
			return ppa, nil
		}
	}
	return nand.InvalidPPA, fmt.Errorf("ftl: no destination block for migration (device out of healthy blocks)")
}

// migrateProgram programs data onto a fresh page, retiring the destination
// block and retrying elsewhere on program failure.
//
//slimio:borrows data
func (f *FTL) migrateProgram(now sim.Time, prefDie int, data bufpool.Ref) (nand.PPA, sim.Time, error) {
	for attempt := 0; attempt <= maxProgramRetries; attempt++ {
		dst, err := f.allocMigrate(prefDie)
		if err != nil {
			return nand.InvalidPPA, now, err
		}
		done, err := f.arr.Program(now, dst, data)
		if err == nil {
			return dst, done, nil
		}
		if !nand.IsProgramFail(err) {
			return nand.InvalidPPA, now, err
		}
		f.noteProgramFail(dst)
	}
	return nand.InvalidPPA, now, fmt.Errorf("ftl: migration exhausted %d program attempts", maxProgramRetries+1)
}

// drainRetired migrates every LPA stranded on a retired block to healthy
// media. Migration program failures retire further blocks and re-queue; the
// loop terminates because retirements are bounded by the block count (the
// guard catches modelling bugs). Unrecoverable source reads drop the single
// LPA and are counted as LostPages.
func (f *FTL) drainRetired(now sim.Time) (sim.Time, error) {
	guard, limit := 0, 16*int(f.arr.Geometry().Pages())
	for len(f.pending) > 0 {
		if guard++; guard > limit {
			return now, fmt.Errorf("ftl: retirement migration made no progress after %d steps", guard)
		}
		lpa := f.pending[0]
		f.pending = f.pending[1:]
		src := f.l2p[lpa]
		if src == nand.InvalidPPA || !f.retired[f.arr.BlockOf(src)] {
			continue // invalidated or already moved since queued
		}
		_, rdone, ok, err := f.readWithRetry(now, src)
		if err != nil {
			return now, err
		}
		if !ok {
			f.invalidate(lpa)
			f.stats.LostPages++
			f.inc("ftl.lpa_lost")
			continue
		}
		dst, wdone, err := f.migrateProgram(rdone, f.arr.DieOf(src), f.arr.StoredRef(src))
		if err != nil {
			return now, err
		}
		f.p2l[src] = -1
		f.blocks[f.arr.BlockOf(src)].valid--
		f.l2p[lpa] = dst
		f.p2l[dst] = lpa
		f.blocks[f.arr.BlockOf(dst)].valid++
		f.stats.NANDWritePages++
		f.stats.RetireMigratedPages++
		if wdone > now {
			now = wdone
		}
	}
	return now, nil
}

// commitTorn decides what a torn program leaves visible after power loss.
// If lpa already had data, the L2P update rolls back — the FTL's mapping
// tables die with power, and power-up reconstruction only maps fully
// programmed pages, so the old image survives (this is what makes in-place
// tail rewrites crash-safe). A previously-unmapped lpa maps to the torn
// page: a partial program can pass the power-up OOB scan, and the CRC
// framing above is what must catch it.
func (f *FTL) commitTorn(lpa int64, ppa nand.PPA) {
	f.stats.TornWrites++
	f.inc("ftl.torn_write")
	if f.l2p[lpa] != nand.InvalidPPA {
		return
	}
	f.l2p[lpa] = ppa
	f.p2l[ppa] = lpa
	f.blocks[f.arr.BlockOf(ppa)].valid++
}

// Write stores one page of data at lpa. The pid placement hint is accepted
// for interface compatibility and deliberately ignored: a conventional SSD
// has no way to honor it, which is exactly the deficiency FDP addresses.
//
// A NAND program failure is handled in place: the bad block is retired, its
// stranded valid pages migrate to healthy media, and the write retries on a
// fresh page — the host never sees the media failure, mirroring how real
// FTLs hide grown bad blocks.
//
//slimio:borrows data
func (f *FTL) Write(now sim.Time, lpa int64, data bufpool.Ref, pid uint32) (done sim.Time, err error) {
	_ = pid
	if err := f.checkLPA(lpa); err != nil {
		return now, err
	}
	tr := f.cfg.Trace
	parent := tr.Scope()
	span := tr.Begin("ftl", "write", parent, now)
	tr.SetScope(span)
	defer func() {
		tr.End(span, done)
		tr.SetScope(parent)
	}()
	var ppa nand.PPA
	for attempt := 0; ; attempt++ {
		var ready sim.Time
		ppa, ready, err = f.allocPage(now)
		if err != nil {
			return now, err
		}
		done, err = f.arr.Program(ready, ppa, data)
		if err == nil {
			break
		}
		if nand.IsTornWrite(err) {
			f.commitTorn(lpa, ppa)
			return done, err
		}
		if !nand.IsProgramFail(err) || attempt >= maxProgramRetries {
			return now, err
		}
		f.noteProgramFail(ppa)
		if now, err = f.drainRetired(done); err != nil {
			return now, err
		}
	}
	f.invalidate(lpa)
	f.l2p[lpa] = ppa
	f.p2l[ppa] = lpa
	f.blocks[f.arr.BlockOf(ppa)].valid++
	f.stats.HostWritePages++
	f.stats.NANDWritePages++
	if len(f.pending) > 0 {
		// GC during allocPage may have retired blocks; finish their
		// migrations before returning so no LPA stays on retired media.
		if _, err := f.drainRetired(done); err != nil {
			return now, err
		}
	}
	return done, nil
}

// Read returns the page stored at lpa.
func (f *FTL) Read(now sim.Time, lpa int64) (data []byte, done sim.Time, err error) {
	if err := f.checkLPA(lpa); err != nil {
		return nil, now, err
	}
	ppa := f.l2p[lpa]
	if ppa == nand.InvalidPPA {
		return nil, now, fmt.Errorf("ftl: read of unmapped LPA %d", lpa)
	}
	f.stats.HostReadPages++
	tr := f.cfg.Trace
	parent := tr.Scope()
	span := tr.Begin("ftl", "read", parent, now)
	tr.SetScope(span)
	data, done, err = f.arr.Read(now, ppa)
	tr.End(span, done)
	tr.SetScope(parent)
	return data, done, err
}

// Deallocate (TRIM) invalidates count LPAs starting at lpa, telling the
// device their contents are dead. This is how the host communicates data
// lifetime ends; without it GC would treat stale WAL/snapshot pages as live.
func (f *FTL) Deallocate(lpa, count int64) error {
	if count < 0 || lpa < 0 || lpa+count > f.usableLPAs {
		return fmt.Errorf("ftl: deallocate range [%d,%d) out of bounds", lpa, lpa+count)
	}
	for i := int64(0); i < count; i++ {
		f.invalidate(lpa + i)
	}
	return nil
}

// Mapped reports whether lpa currently holds data.
func (f *FTL) Mapped(lpa int64) bool {
	return lpa >= 0 && lpa < f.usableLPAs && f.l2p[lpa] != nand.InvalidPPA
}

// BaseStats returns Stats under the name shared with the FDP FTL, so both
// device types satisfy one interface.
func (f *FTL) BaseStats() Stats { return f.stats }

// Array exposes the NAND array beneath the FTL.
func (f *FTL) Array() *nand.Array { return f.arr }
