package ftl

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/fault"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// TestGCFaultSweep drives a GC-heavy overwrite workload under swept read and
// program error rates and checks the retirement invariants the FTL promises:
// no live LPA ever maps into a retired block, the write accounting identity
// holds, the free pool never goes negative, and every surviving LPA reads
// back its newest value once the faults clear.
func TestGCFaultSweep(t *testing.T) {
	rates := []struct {
		name             string
		readErr, progErr float64
	}{
		{"reads-3pct", 0.03, 0},
		{"programs", 0, 0.003},
		{"mixed", 0.02, 0.003},
	}
	for _, rate := range rates {
		t.Run(rate.name, func(t *testing.T) {
			ctr := &metrics.Counter{}
			// Every program failure retires a whole block, so the rate must
			// stay small against the block budget or the device honestly dies.
			geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 32, PagesPerBlock: 8, PageSize: 128}
			arr, err := nand.New(geo, nand.DefaultLatencies())
			if err != nil {
				t.Fatal(err)
			}
			f := New(arr, Config{Metrics: ctr})
			plan := fault.NewPlan(fault.Config{Seed: 1234, ReadErrRate: rate.readErr, ProgramErrRate: rate.progErr})
			arr.SetFaultHook(plan)

			// Overwrite a small LPA window far past capacity to force steady
			// GC while faults land in host writes, GC copies, and migrations.
			lpas := f.Capacity() / 3
			latest := make(map[int64]int)
			now := sim.Time(0)
			for i := 0; i < int(3*f.Capacity()); i++ {
				lpa := int64(i) % lpas
				done, err := f.Write(now, lpa, bufpool.Borrowed(page(fmt.Sprintf("v%d-", i), f.PageSize())), 0)
				if err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				latest[lpa] = i
				now = done
				if f.FreeBlocks() < 0 {
					t.Fatalf("free-block count went negative after write %d", i)
				}
			}
			arr.SetFaultHook(nil)

			s := f.Stats()
			if rate.progErr > 0 && s.ProgramFailures == 0 {
				t.Fatal("program error rate injected nothing")
			}
			if s.NANDWritePages != s.HostWritePages+s.GCCopiedPages+s.RetireMigratedPages {
				t.Fatalf("write accounting broken: NAND %d != host %d + GC %d + migrated %d",
					s.NANDWritePages, s.HostWritePages, s.GCCopiedPages, s.RetireMigratedPages)
			}
			if s.RetiredBlocks != int64(f.RetiredBlocks()) {
				t.Fatalf("stats say %d retired blocks, map says %d", s.RetiredBlocks, f.RetiredBlocks())
			}
			if got := ctr.Get("ftl.block_retired"); got != s.RetiredBlocks {
				t.Fatalf("metrics counted %d retirements, stats %d", got, s.RetiredBlocks)
			}

			// No live mapping may point into a retired block, and every
			// surviving LPA must hold its newest acknowledged value.
			lost := 0
			for lpa := int64(0); lpa < lpas; lpa++ {
				ppa := f.l2p[lpa]
				if ppa == nand.InvalidPPA {
					lost++
					continue
				}
				if f.BlockRetired(arr.BlockOf(ppa)) {
					t.Fatalf("LPA %d maps to retired block %d", lpa, arr.BlockOf(ppa))
				}
				data, done, err := f.Read(now, lpa)
				if err != nil {
					t.Fatalf("read LPA %d after faults cleared: %v", lpa, err)
				}
				want := page(fmt.Sprintf("v%d-", latest[lpa]), f.PageSize())
				if !bytes.Equal(data, want) {
					t.Fatalf("LPA %d holds stale or corrupt data", lpa)
				}
				now = done
			}
			// LPAs may only vanish via unrecoverable reads, and each one is
			// accounted as lost.
			if int64(lost) > s.LostPages {
				t.Fatalf("%d LPAs unmapped but only %d recorded lost", lost, s.LostPages)
			}
		})
	}
}

// TestGCProgramFailureRetires pins the precise GC scenario: a program
// failure during a migration retires the destination block, the victim's
// valid data stays readable at its new home, and the failure is counted.
func TestGCProgramFailureRetires(t *testing.T) {
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 32, PagesPerBlock: 8, PageSize: 128}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	ctr := &metrics.Counter{}
	f := New(arr, Config{Metrics: ctr})
	// Every 150th program fails: host writes, GC copies, and retirement
	// migrations all take hits while the workload forces constant GC.
	nth := &nthProgramFailHook{n: 150}
	arr.SetFaultHook(nth)
	latest := make(map[int64]int)
	now := sim.Time(0)
	for i := 0; i < int(3*f.Capacity()); i++ {
		lpa := int64(i) % (f.Capacity() / 4)
		done, err := f.Write(now, lpa, bufpool.Borrowed(page(fmt.Sprintf("g%d-", i), f.PageSize())), 0)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		latest[lpa] = i
		now = done
	}
	arr.SetFaultHook(nil)
	s := f.Stats()
	if s.ProgramFailures == 0 || s.RetiredBlocks == 0 {
		t.Fatalf("hook injected nothing: %+v", s)
	}
	if s.GCRuns == 0 {
		t.Fatal("workload never triggered GC")
	}
	if ctr.Get("ftl.program_fail") != s.ProgramFailures {
		t.Fatalf("metrics counted %d program failures, stats %d", ctr.Get("ftl.program_fail"), s.ProgramFailures)
	}
	for lpa, v := range latest {
		data, done, err := f.Read(now, lpa)
		if err != nil {
			t.Fatalf("read LPA %d: %v", lpa, err)
		}
		if !bytes.Equal(data, page(fmt.Sprintf("g%d-", v), f.PageSize())) {
			t.Fatalf("LPA %d lost its newest value across GC program failures", lpa)
		}
		now = done
	}
}

// nthProgramFailHook fails every n-th page program, deterministically.
type nthProgramFailHook struct {
	n     int
	count int
}

func (h *nthProgramFailHook) ReadFault(now sim.Time, ppa nand.PPA) error { return nil }
func (h *nthProgramFailHook) ProgramFault(now, done sim.Time, ppa nand.PPA, data []byte) nand.ProgramDecision {
	h.count++
	if h.count%h.n == 0 {
		return nand.ProgramDecision{Outcome: nand.ProgramFail}
	}
	return nand.ProgramDecision{}
}
func (h *nthProgramFailHook) EraseFault(now sim.Time, die, block int) error { return nil }
