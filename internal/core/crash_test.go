package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/wal"
)

// decodeSegments replays all recovered segments and returns the records.
func decodeSegments(rec *imdb.Recovered) []wal.Record {
	var out []wal.Record
	for _, seg := range rec.WALSegments {
		rs, _ := wal.DecodeAll(seg)
		out = append(out, rs...)
	}
	return out
}

// Crash between rotation and snapshot commit: both the sealed and the open
// segment must be recovered, in order.
func TestCrashMidSnapshotRecoversBothSegments(t *testing.T) {
	r := newRig(t)
	mkRec := func(i int) []byte {
		return wal.AppendRecord(nil, wal.OpSet, []byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte("v"), 200))
	}
	r.run(t, func(env *sim.Env) {
		for i := 0; i < 10; i++ {
			if err := r.be.WALAppend(env, r.chain(mkRec(i))); err != nil {
				t.Error(err)
				return
			}
		}
		if err := r.be.WALSync(env); err != nil {
			t.Error(err)
			return
		}
		// Fork point: rotate. (The snapshot never completes — crash.)
		if err := r.be.WALRotate(env); err != nil {
			t.Error(err)
			return
		}
		for i := 10; i < 15; i++ {
			if err := r.be.WALAppend(env, r.chain(mkRec(i))); err != nil {
				t.Error(err)
				return
			}
		}
		if err := r.be.WALSync(env); err != nil {
			t.Error(err)
		}
	})
	eng2 := sim.NewEngine()
	be2, _ := New(eng2, r.dev, Config{MetaPages: 8, SlotPages: 96})
	eng2.Spawn("recover", func(env *sim.Env) {
		rec, err := be2.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		if len(rec.WALSegments) != 2 {
			t.Errorf("segments = %d, want 2 (sealed + open)", len(rec.WALSegments))
		}
		recs := decodeSegments(rec)
		if len(recs) != 15 {
			t.Errorf("recovered %d records, want 15", len(recs))
			return
		}
		for i, rc := range recs {
			if string(rc.Key) != fmt.Sprintf("k%03d", i) {
				t.Fatalf("record %d out of order: %q", i, rc.Key)
			}
		}
	})
	eng2.Run()
}

// Repeatedly failing snapshots stack sealed segments (up to the table
// limit); all of them recover in order.
func TestMultipleSealedSegments(t *testing.T) {
	r := newRig(t)
	var want int
	r.run(t, func(env *sim.Env) {
		idx := 0
		for seal := 0; seal < 3; seal++ {
			for i := 0; i < 4; i++ {
				rec := wal.AppendRecord(nil, wal.OpSet, []byte(fmt.Sprintf("k%04d", idx)), []byte("x"))
				idx++
				if err := r.be.WALAppend(env, r.chain(rec)); err != nil {
					t.Error(err)
					return
				}
			}
			if err := r.be.WALSync(env); err != nil {
				t.Error(err)
				return
			}
			if err := r.be.WALRotate(env); err != nil {
				t.Error(err)
				return
			}
		}
		want = idx
	})
	eng2 := sim.NewEngine()
	be2, _ := New(eng2, r.dev, Config{MetaPages: 8, SlotPages: 96})
	eng2.Spawn("recover", func(env *sim.Env) {
		rec, err := be2.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		recs := decodeSegments(rec)
		if len(recs) != want {
			t.Errorf("recovered %d records, want %d", len(recs), want)
			return
		}
		for i, rc := range recs {
			if string(rc.Key) != fmt.Sprintf("k%04d", i) {
				t.Fatalf("record %d out of order: %q", i, rc.Key)
			}
		}
	})
	eng2.Run()
}

func TestRotateLimitEnforced(t *testing.T) {
	r := newRig(t)
	r.run(t, func(env *sim.Env) {
		for seal := 0; seal < maxSealedSegments; seal++ {
			if err := r.be.WALAppend(env, r.chain(bytes.Repeat([]byte("x"), 600))); err != nil {
				t.Error(err)
				return
			}
			if err := r.be.WALRotate(env); err != nil {
				t.Errorf("rotate %d: %v", seal, err)
				return
			}
		}
		if err := r.be.WALAppend(env, r.chain(bytes.Repeat([]byte("x"), 600))); err != nil {
			t.Error(err)
			return
		}
		if err := r.be.WALRotate(env); err == nil {
			t.Error("rotation beyond the segment-table limit accepted")
		}
		// Discard clears the table and rotation works again.
		if err := r.be.WALDiscardOld(env); err != nil {
			t.Error(err)
			return
		}
		if err := r.be.WALRotate(env); err != nil {
			t.Errorf("rotate after discard: %v", err)
		}
	})
}

func TestRotateEmptySegmentIsNoop(t *testing.T) {
	r := newRig(t)
	r.run(t, func(env *sim.Env) {
		if err := r.be.WALRotate(env); err != nil {
			t.Error(err)
		}
		if r.be.meta.sealedCount() != 0 {
			t.Error("empty rotation sealed a segment")
		}
	})
}

// The metadata region is cyclic: many more state transitions than meta
// pages must still recover the newest record.
func TestMetadataRegionWraps(t *testing.T) {
	r := newRig(t) // MetaPages: 8
	rounds := 3 * 8
	r.run(t, func(env *sim.Env) {
		for i := 0; i < rounds; i++ {
			if err := r.be.WALAppend(env, r.chain(bytes.Repeat([]byte("m"), 700))); err != nil {
				t.Error(err)
				return
			}
			if err := r.be.WALRotate(env); err != nil { // one meta write
				t.Error(err)
				return
			}
			if err := r.be.WALDiscardOld(env); err != nil { // another
				t.Error(err)
				return
			}
		}
	})
	if r.be.meta.seq != uint64(2*rounds) {
		t.Fatalf("meta seq = %d, want %d", r.be.meta.seq, 2*rounds)
	}
	eng2 := sim.NewEngine()
	be2, _ := New(eng2, r.dev, Config{MetaPages: 8, SlotPages: 96})
	eng2.Spawn("recover", func(env *sim.Env) {
		if _, err := be2.Recover(env); err != nil {
			t.Error(err)
		}
	})
	eng2.Run()
	if be2.meta.seq != r.be.meta.seq {
		t.Fatalf("recovered seq %d, want %d (newest record must win)", be2.meta.seq, r.be.meta.seq)
	}
	if be2.meta.walGen != uint64(rounds) {
		t.Fatalf("recovered walGen %d, want %d", be2.meta.walGen, rounds)
	}
}

// End-to-end crash while a WAL-snapshot is in flight: kill the engine mid
// snapshot (Engine.Stop), recover on a fresh stack, and verify that every
// acknowledged-and-synced write survives.
func TestEngineCrashDuringSnapshot(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFDPDevice(t, 64)
	be, err := New(eng, dev, Config{MetaPages: 8, SlotPages: 192})
	if err != nil {
		t.Fatal(err)
	}
	// Slow compression keeps the snapshot running when we pull the plug.
	cfg := imdb.Config{Policy: imdb.PeriodicalLog, WALSnapshotTrigger: 40 << 10}
	cfg.Cost = imdb.DefaultCostModel()
	cfg.Cost.CompressBandwidth = 2 << 20
	db := imdb.New(eng, be, withPool(cfg, dev), nil)
	db.Start()

	written := map[string]string{}
	eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("key%03d", i%80)
			v := fmt.Sprintf("val-%d-%d", i, i*7)
			if err := db.Set(env, k, []byte(v)); err != nil {
				t.Error(err)
				return
			}
			written[k] = v
		}
	})
	// Stop mid-flight, ideally during a snapshot.
	eng.RunUntil(sim.Time(60 * sim.Millisecond))
	eng.Stop()

	eng2 := sim.NewEngine()
	be2, err := New(eng2, dev, Config{MetaPages: 8, SlotPages: 192})
	if err != nil {
		t.Fatal(err)
	}
	db2 := imdb.New(eng2, be2, withPool(imdb.Config{}, dev), nil)
	eng2.Spawn("recover", func(env *sim.Env) {
		if _, _, err := db2.Recover(env); err != nil {
			t.Error(err)
		}
	})
	eng2.Run()
	// Recovery must produce a consistent prefix: every key present must
	// hold a value that was actually written for it at some point (no
	// corruption, no cross-key mixing). Un-synced tail loss is legal.
	if db2.Store().Len() == 0 {
		t.Fatal("nothing recovered")
	}
	for i := 0; i < 80; i++ {
		k := fmt.Sprintf("key%03d", i)
		got := db2.Store().Get(k)
		if got == nil {
			continue
		}
		var matched bool
		for j := i; j < 400; j += 80 {
			if string(got) == fmt.Sprintf("val-%d-%d", j, j*7) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("key %s recovered corrupt value %q", k, got)
		}
	}
}

// Property: crash at a random instant (engine killed mid-everything), then
// recover on a fresh stack. The recovered store must be corruption-free:
// every key holds a value that was genuinely written for it, and the
// decoder accepted only CRC-clean frames.
func TestCrashPointRecoveryProperty(t *testing.T) {
	prop := func(seedRaw int64, crashAtRaw uint16) bool {
		eng := sim.NewEngine()
		dev := newFDPDevice(t, 64)
		be, err := New(eng, dev, Config{MetaPages: 8, SlotPages: 192})
		if err != nil {
			return false
		}
		cfg := imdb.Config{Policy: imdb.PeriodicalLog, WALSnapshotTrigger: 48 << 10}
		db := imdb.New(eng, be, withPool(cfg, dev), nil)
		db.Start()
		written := make(map[string]map[string]bool)
		eng.Spawn("client", func(env *sim.Env) {
			rid := 0
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key%03d", i%60)
				v := fmt.Sprintf("val-%d-%d", seedRaw, rid)
				rid++
				if written[k] == nil {
					written[k] = map[string]bool{}
				}
				written[k][v] = true
				if err := db.Set(env, k, []byte(v)); err != nil {
					return
				}
				if i%97 == 13 {
					db.TriggerSnapshot(imdb.OnDemandSnapshot)
				}
			}
		})
		crashAt := sim.Time(1+int64(crashAtRaw)%120) * sim.Time(sim.Millisecond)
		eng.RunUntil(crashAt)
		eng.Stop()

		eng2 := sim.NewEngine()
		be2, err := New(eng2, dev, Config{MetaPages: 8, SlotPages: 192})
		if err != nil {
			return false
		}
		db2 := imdb.New(eng2, be2, withPool(imdb.Config{}, dev), nil)
		ok := true
		eng2.Spawn("recover", func(env *sim.Env) {
			if _, _, err := db2.Recover(env); err != nil {
				ok = false
			}
		})
		eng2.Run()
		if !ok {
			return false
		}
		for i := 0; i < 60; i++ {
			k := fmt.Sprintf("key%03d", i)
			got := db2.Store().Get(k)
			if got == nil {
				continue // unsynced loss is legal
			}
			if written[k] == nil || !written[k][string(got)] {
				t.Logf("crash@%v key %s recovered alien value %q", crashAt, k, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
