// Package core implements SlimIO, the paper's contribution: a lightweight
// persistence backend for in-memory databases that writes the WAL and
// snapshots through separate io_uring passthru paths onto raw LBA space of
// an (ideally FDP-capable) SSD, with per-lifetime placement identifiers.
//
// The package provides:
//
//   - an explicit LBA space layout — Metadata / WAL / Snapshot regions
//     (§4.2), with the snapshot region managed as three slots (WAL-Snapshot,
//     On-Demand-Snapshot, Reserve) and new images always written to the
//     Reserve slot before being promoted;
//   - a WAL-Path ring owned by the main process and a fresh SQPOLL
//     Snapshot-Path ring per snapshot process (§4.1);
//   - checksummed, sequence-numbered metadata records making promotion and
//     WAL swaps crash-atomic;
//   - the recovery procedure (§4.2): read metadata, load the snapshot, then
//     replay the WAL — using a sequential read-ahead reader (§5.3);
//   - lifetime-based PID assignment (§4.3): WAL and WAL-Snapshots are
//     short-lived, On-Demand-Snapshots long-lived, metadata its own stream.
package core

import (
	"fmt"

	"github.com/slimio/slimio/internal/uring"
	"github.com/slimio/slimio/internal/vtrace"
)

// Placement identifiers per lifetime class (§4.3). The paper names WAL = 1
// and On-Demand-Snapshot = 2 explicitly; WAL-Snapshots share the WAL's
// short-lifetime class argument but get their own stream, and metadata is
// tiny but hot, so it is separated too.
const (
	PIDWAL         uint32 = 1
	PIDWALSnapshot uint32 = 2
	PIDOnDemand    uint32 = 3
	PIDMetadata    uint32 = 4
)

// slotRole is the current role of one snapshot slot.
type slotRole uint8

const (
	roleReserve slotRole = iota
	roleWALSnap
	roleOnDemand
)

func (r slotRole) String() string {
	switch r {
	case roleWALSnap:
		return "wal-snapshot"
	case roleOnDemand:
		return "on-demand"
	default:
		return "reserve"
	}
}

// Config tunes the SlimIO backend.
type Config struct {
	// MetaPages is the metadata region size (default 64 pages, written
	// cyclically).
	MetaPages int64
	// SlotPages is the size of each of the three snapshot slots. Default:
	// one fifth of the device, leaving the rest for the WAL ring.
	SlotPages int64
	// WALRing configures the WAL-Path (default: interrupt-driven io_uring,
	// syscall per submission batch).
	WALRing uring.Config
	// SnapshotRing configures each Snapshot-Path (default: SQPOLL, so the
	// snapshot process never issues a syscall, §4.1).
	SnapshotRing uring.Config
	// SnapshotRingSet marks SnapshotRing as explicitly configured (so a
	// deliberate all-defaults ring is possible in ablations).
	SnapshotRingSet bool
	// RecoveryReadAhead is the sequential read-ahead window, in pages, of
	// the recovery reader (default 256).
	RecoveryReadAhead int64
	// MaxWALInflight bounds in-flight WAL-Path write commands before the
	// writer blocks on the oldest completion (default 64).
	MaxWALInflight int
	// Trace, when non-nil, records core-layer spans (wal.append, wal.sync,
	// slot.write, slot.commit, meta.write) and is propagated into both ring
	// configs so uring command spans nest underneath. Nil disables tracing.
	Trace *vtrace.Tracer
}

func (c *Config) fillDefaults(capacity int64) {
	if c.MetaPages <= 0 {
		c.MetaPages = 64
	}
	if c.SlotPages <= 0 {
		c.SlotPages = capacity / 5
	}
	if !c.SnapshotRingSet {
		c.SnapshotRing.SQPoll = true
	}
	if c.RecoveryReadAhead <= 0 {
		c.RecoveryReadAhead = 256
	}
	if c.MaxWALInflight <= 0 {
		c.MaxWALInflight = 64
	}
	c.WALRing.Trace = c.Trace
	c.SnapshotRing.Trace = c.Trace
}

// layout is the computed LBA partitioning.
type layout struct {
	metaStart, metaPages int64
	slotStart            [3]int64
	slotPages            int64
	walStart, walPages   int64 // the WAL region (managed as a ring)
}

func computeLayout(capacity int64, cfg Config) (layout, error) {
	var l layout
	l.metaStart = 0
	l.metaPages = cfg.MetaPages
	l.slotPages = cfg.SlotPages
	next := l.metaPages
	for i := 0; i < 3; i++ {
		l.slotStart[i] = next
		next += l.slotPages
	}
	l.walStart = next
	l.walPages = capacity - next
	if l.walPages < 8 {
		return l, fmt.Errorf("core: device too small: %d pages left for WAL region", l.walPages)
	}
	return l, nil
}

// SlotInfo describes one snapshot slot for inspection.
type SlotInfo struct {
	Index int
	Role  string
	Start int64
	Pages int64
	Used  int64 // bytes of the committed image (0 for reserve)
}

// Stats aggregates backend counters.
type Stats struct {
	WALPageWrites      int64
	WALTailRewrites    int64
	SnapshotPageWrites int64
	MetadataWrites     int64
	Promotions         int64
	WALRotations       int64
	WALResets          int64 // sealed-segment discards
	DeallocatedPages   int64
}

func pagesNeeded(bytes int64, pageSize int64) int64 {
	return (bytes + pageSize - 1) / pageSize
}

// splitWrap splits an [off, off+n) page run inside a ring region of size
// regionPages into at most two contiguous runs (handling wrap-around).
type pageRun struct{ start, n int64 }

func splitWrap(regionStart, regionPages, off, n int64) []pageRun {
	off %= regionPages
	if off+n <= regionPages {
		return []pageRun{{regionStart + off, n}}
	}
	first := regionPages - off
	return []pageRun{
		{regionStart + off, first},
		{regionStart, n - first},
	}
}
