package core

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
	"github.com/slimio/slimio/internal/wal"
)

const testPageSize = 512

func newFDPDevice(t *testing.T, blocksPerDie int) *ssd.Device {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: blocksPerDie, PagesPerBlock: 16, PageSize: testPageSize}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fdp.New(arr, fdp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return ssd.New(f, ssd.Config{})
}

func newConvDevice(t *testing.T, blocksPerDie int) *ssd.Device {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: blocksPerDie, PagesPerBlock: 16, PageSize: testPageSize}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	return ssd.New(ftl.New(arr, ftl.Config{}), ssd.Config{})
}

type rig struct {
	eng *sim.Engine
	dev *ssd.Device
	be  *Backend
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	dev := newFDPDevice(t, 32)
	be, err := New(eng, dev, Config{MetaPages: 8, SlotPages: 96})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, dev: dev, be: be}
}

func (r *rig) run(t *testing.T, fn func(env *sim.Env)) {
	t.Helper()
	r.eng.Spawn("test", fn)
	r.eng.Run()
}

func TestLayoutComputation(t *testing.T) {
	lay, err := computeLayout(1000, Config{MetaPages: 10, SlotPages: 100})
	if err != nil {
		t.Fatal(err)
	}
	if lay.metaPages != 10 || lay.slotStart[0] != 10 || lay.slotStart[1] != 110 || lay.slotStart[2] != 210 {
		t.Fatalf("layout = %+v", lay)
	}
	if lay.walStart != 310 || lay.walPages != 690 {
		t.Fatalf("wal region = %d+%d", lay.walStart, lay.walPages)
	}
	if _, err := computeLayout(100, Config{MetaPages: 10, SlotPages: 40}); err == nil {
		t.Fatal("oversized slots accepted")
	}
}

func TestSplitWrap(t *testing.T) {
	runs := splitWrap(100, 50, 10, 20)
	if len(runs) != 1 || runs[0].start != 110 || runs[0].n != 20 {
		t.Fatalf("no-wrap runs = %+v", runs)
	}
	runs = splitWrap(100, 50, 45, 10)
	if len(runs) != 2 || runs[0].start != 145 || runs[0].n != 5 || runs[1].start != 100 || runs[1].n != 5 {
		t.Fatalf("wrap runs = %+v", runs)
	}
	runs = splitWrap(100, 50, 60, 5) // offset beyond region wraps in
	if len(runs) != 1 || runs[0].start != 110 {
		t.Fatalf("mod runs = %+v", runs)
	}
}

func TestMetaRecordRoundTrip(t *testing.T) {
	m := metaRecord{
		seq:       42,
		slotRoles: [3]slotRole{roleWALSnap, roleReserve, roleOnDemand},
		slotBytes: [3]int64{12345, 0, 999},
		walHead:   77,
		walGen:    3,
	}
	enc := m.encode()
	got, err := decodeMetaRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if *got != m {
		t.Fatalf("round trip: %+v != %+v", *got, m)
	}
	// Any single-byte corruption must be rejected.
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		if dec, err := decodeMetaRecord(bad); err == nil && *dec != m {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
	if _, err := decodeMetaRecord(enc[:10]); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestWALAppendSyncRecover(t *testing.T) {
	r := newRig(t)
	var want [][]byte
	r.run(t, func(env *sim.Env) {
		var stream []byte
		for i := 0; i < 40; i++ {
			k := []byte(fmt.Sprintf("key%02d", i))
			v := bytes.Repeat([]byte{byte(i)}, 100+i)
			want = append(want, v)
			stream = wal.AppendRecord(stream[:0], wal.OpSet, k, v)
			if err := r.be.WALAppend(env, r.chain(stream)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := r.be.WALSync(env); err != nil {
			t.Error(err)
			return
		}
	})
	// Recover through a fresh backend over the same device.
	eng2 := sim.NewEngine()
	be2, err := New(eng2, r.dev, Config{MetaPages: 8, SlotPages: 96})
	if err != nil {
		t.Fatal(err)
	}
	var rec *imdb.Recovered
	eng2.Spawn("recover", func(env *sim.Env) {
		var rerr error
		rec, rerr = be2.Recover(env)
		if rerr != nil {
			t.Error(rerr)
		}
	})
	eng2.Run()
	var recs []wal.Record
	for _, seg := range rec.WALSegments {
		rs, _ := wal.DecodeAll(seg)
		recs = append(recs, rs...)
	}
	if len(recs) != 40 {
		t.Fatalf("recovered %d WAL records, want 40", len(recs))
	}
	for i, rc := range recs {
		if !bytes.Equal(rc.Value, want[i]) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestWALTailSyncedWithoutFullPage(t *testing.T) {
	// A record smaller than a page must survive via the tail rewrite.
	r := newRig(t)
	r.run(t, func(env *sim.Env) {
		data := wal.AppendRecord(nil, wal.OpSet, []byte("k"), []byte("small"))
		if err := r.be.WALAppend(env, r.chain(data)); err != nil {
			t.Error(err)
			return
		}
		if r.be.Stats().WALPageWrites != 0 {
			t.Error("partial record should not have written a full page")
		}
		if err := r.be.WALSync(env); err != nil {
			t.Error(err)
			return
		}
		if r.be.Stats().WALTailRewrites != 1 {
			t.Error("sync did not write the tail")
		}
		// Second sync with no new data: no extra write.
		if err := r.be.WALSync(env); err != nil {
			t.Error(err)
			return
		}
		if r.be.Stats().WALTailRewrites != 1 {
			t.Error("idempotent sync rewrote the tail")
		}
	})
}

func TestWALRotateDiscardTrimsAndAdvances(t *testing.T) {
	r := newRig(t)
	r.run(t, func(env *sim.Env) {
		payload := bytes.Repeat([]byte("w"), 5*testPageSize)
		if err := r.be.WALAppend(env, r.chain(payload)); err != nil {
			t.Error(err)
			return
		}
		if err := r.be.WALRotate(env); err != nil {
			t.Error(err)
			return
		}
		if r.be.WALDurableSize() != 0 {
			t.Error("new segment not empty after rotate")
		}
		if r.be.sealedPages() != 5 {
			t.Errorf("sealed pages = %d, want 5", r.be.sealedPages())
		}
		// New segment lands after the sealed one.
		if err := r.be.WALAppend(env, r.chain(payload)); err != nil {
			t.Error(err)
			return
		}
		if err := r.be.WALDiscardOld(env); err != nil {
			t.Error(err)
			return
		}
		if r.be.Stats().DeallocatedPages < 5 {
			t.Errorf("deallocated %d pages, want >= 5", r.be.Stats().DeallocatedPages)
		}
		if r.be.meta.walGen != 1 {
			t.Errorf("walGen = %d", r.be.meta.walGen)
		}
		if r.be.sealedPages() != 0 {
			t.Error("sealed segments not cleared")
		}
		// Current segment must be untouched by the discard.
		if r.be.WALDurableSize() != int64(len(payload)) {
			t.Errorf("open segment size = %d", r.be.WALDurableSize())
		}
	})
}

func TestWALRegionFullErrors(t *testing.T) {
	r := newRig(t)
	r.run(t, func(env *sim.Env) {
		huge := bytes.Repeat([]byte("x"), int(r.be.lay.walPages+1)*testPageSize)
		if err := r.be.WALAppend(env, r.chain(huge)); err == nil {
			t.Error("overfull WAL accepted")
		}
	})
}

func TestSnapshotSlotPromotion(t *testing.T) {
	r := newRig(t)
	img1 := bytes.Repeat([]byte("A"), 3*testPageSize+17)
	img2 := bytes.Repeat([]byte("B"), 2*testPageSize+5)
	r.run(t, func(env *sim.Env) {
		// First WAL-snapshot goes to slot 0 (first reserve).
		sink, err := r.be.BeginSnapshot(env, imdb.WALSnapshot)
		if err != nil {
			t.Error(err)
			return
		}
		if err := sink.Write(env, img1); err != nil {
			t.Error(err)
			return
		}
		if err := sink.Commit(env); err != nil {
			t.Error(err)
			return
		}
		slots := r.be.Slots()
		if slots[0].Role != "wal-snapshot" || slots[0].Used != int64(len(img1)) {
			t.Errorf("slot0 = %+v", slots[0])
		}
		// Second WAL-snapshot must use another reserve slot, then demote
		// slot 0 back to reserve.
		sink2, err := r.be.BeginSnapshot(env, imdb.WALSnapshot)
		if err != nil {
			t.Error(err)
			return
		}
		if err := sink2.Write(env, img2); err != nil {
			t.Error(err)
			return
		}
		if err := sink2.Commit(env); err != nil {
			t.Error(err)
			return
		}
		slots = r.be.Slots()
		if slots[0].Role != "reserve" {
			t.Errorf("old slot not demoted: %+v", slots[0])
		}
		if slots[1].Role != "wal-snapshot" || slots[1].Used != int64(len(img2)) {
			t.Errorf("slot1 = %+v", slots[1])
		}
		if r.be.Stats().Promotions != 2 {
			t.Errorf("promotions = %d", r.be.Stats().Promotions)
		}
	})
}

func TestBothSnapshotKindsCoexist(t *testing.T) {
	r := newRig(t)
	r.run(t, func(env *sim.Env) {
		for _, kind := range []imdb.SnapshotKind{imdb.WALSnapshot, imdb.OnDemandSnapshot} {
			sink, err := r.be.BeginSnapshot(env, kind)
			if err != nil {
				t.Error(err)
				return
			}
			if err := sink.Write(env, bytes.Repeat([]byte{byte(kind + 1)}, testPageSize*2)); err != nil {
				t.Error(err)
				return
			}
			if err := sink.Commit(env); err != nil {
				t.Error(err)
				return
			}
		}
		roles := map[string]bool{}
		for _, s := range r.be.Slots() {
			roles[s.Role] = true
		}
		if !roles["wal-snapshot"] || !roles["on-demand"] || !roles["reserve"] {
			t.Errorf("slots = %+v", r.be.Slots())
		}
	})
}

func TestAbortPreservesOldSnapshot(t *testing.T) {
	// The Reserve-slot design's whole point: a failed snapshot never
	// damages the previous one.
	r := newRig(t)
	img := bytes.Repeat([]byte("GOOD"), testPageSize)
	r.run(t, func(env *sim.Env) {
		sink, _ := r.be.BeginSnapshot(env, imdb.WALSnapshot)
		if err := sink.Write(env, img); err != nil {
			t.Error(err)
			return
		}
		if err := sink.Commit(env); err != nil {
			t.Error(err)
			return
		}
		// Second snapshot fails midway.
		sink2, _ := r.be.BeginSnapshot(env, imdb.WALSnapshot)
		if err := sink2.Write(env, bytes.Repeat([]byte("BAD"), 2*testPageSize)); err != nil {
			t.Error(err)
			return
		}
		if err := sink2.Abort(env); err != nil {
			t.Error(err)
			return
		}
	})
	// Recovery must return the good image.
	eng2 := sim.NewEngine()
	be2, _ := New(eng2, r.dev, Config{MetaPages: 8, SlotPages: 96})
	eng2.Spawn("recover", func(env *sim.Env) {
		rec, err := be2.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		if !rec.HaveSnapshot {
			t.Error("good snapshot lost after abort")
			return
		}
		if !bytes.Equal(rec.Snapshot, img) {
			t.Error("recovered image differs")
		}
	})
	eng2.Run()
}

func TestSnapshotExceedingSlotFails(t *testing.T) {
	r := newRig(t)
	r.run(t, func(env *sim.Env) {
		sink, _ := r.be.BeginSnapshot(env, imdb.WALSnapshot)
		big := bytes.Repeat([]byte("x"), int(r.be.lay.slotPages+1)*testPageSize)
		if err := sink.Write(env, big); err == nil {
			t.Error("oversized snapshot accepted")
		}
	})
}

func TestNoReserveSlotError(t *testing.T) {
	r := newRig(t)
	r.run(t, func(env *sim.Env) {
		// Exhaust reserve slots by leaving two snapshots committed and one
		// sink open (holding the third slot's reserve role is not modeled;
		// instead commit three distinct kinds is impossible, so fake it by
		// marking roles directly).
		r.be.meta.slotRoles = [3]slotRole{roleWALSnap, roleOnDemand, roleWALSnap}
		if _, err := r.be.BeginSnapshot(env, imdb.WALSnapshot); err == nil {
			t.Error("BeginSnapshot without reserve slot succeeded")
		}
	})
}

func TestRecoverFreshDevice(t *testing.T) {
	r := newRig(t)
	r.run(t, func(env *sim.Env) {
		rec, err := r.be.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		var total int
		for _, seg := range rec.WALSegments {
			total += len(seg)
		}
		if rec.HaveSnapshot || total != 0 {
			t.Error("fresh device recovered data")
		}
	})
}

func TestRecoverTornWALTail(t *testing.T) {
	// Simulate a crash mid-append: full pages durable, tail never synced.
	r := newRig(t)
	var wantRecords int
	r.run(t, func(env *sim.Env) {
		var stream []byte
		rec := wal.AppendRecord(nil, wal.OpSet, []byte("key"), bytes.Repeat([]byte("v"), 300))
		for len(stream) < 4*testPageSize {
			stream = append(stream, rec...)
		}
		// How many whole records fit in the durable full pages?
		fullBytes := (len(stream) / testPageSize) * testPageSize
		wantRecords = fullBytes / len(rec)
		if err := r.be.WALAppend(env, r.chain(stream)); err != nil {
			t.Error(err)
		}
		// No WALSync: crash loses the partial tail page.
	})
	eng2 := sim.NewEngine()
	be2, _ := New(eng2, r.dev, Config{MetaPages: 8, SlotPages: 96})
	eng2.Spawn("recover", func(env *sim.Env) {
		rec, err := be2.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		var recs []wal.Record
		for _, seg := range rec.WALSegments {
			rs, _ := wal.DecodeAll(seg)
			recs = append(recs, rs...)
		}
		if len(recs) != wantRecords {
			t.Errorf("recovered %d records, want %d (durable prefix)", len(recs), wantRecords)
		}
	})
	eng2.Run()
}

func TestRecoverContinuesAppending(t *testing.T) {
	// After recovery, new appends must continue the stream seamlessly.
	r := newRig(t)
	recA := wal.AppendRecord(nil, wal.OpSet, []byte("a"), bytes.Repeat([]byte("1"), 700))
	recB := wal.AppendRecord(nil, wal.OpSet, []byte("b"), bytes.Repeat([]byte("2"), 700))
	r.run(t, func(env *sim.Env) {
		if err := r.be.WALAppend(env, r.chain(recA)); err != nil {
			t.Error(err)
			return
		}
		if err := r.be.WALSync(env); err != nil {
			t.Error(err)
		}
	})
	eng2 := sim.NewEngine()
	be2, _ := New(eng2, r.dev, Config{MetaPages: 8, SlotPages: 96})
	eng2.Spawn("continue", func(env *sim.Env) {
		if _, err := be2.Recover(env); err != nil {
			t.Error(err)
			return
		}
		if err := be2.WALAppend(env, r.chain(recB)); err != nil {
			t.Error(err)
			return
		}
		if err := be2.WALSync(env); err != nil {
			t.Error(err)
		}
	})
	eng2.Run()
	eng3 := sim.NewEngine()
	be3, _ := New(eng3, r.dev, Config{MetaPages: 8, SlotPages: 96})
	eng3.Spawn("verify", func(env *sim.Env) {
		rec, err := be3.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		var recs []wal.Record
		for _, seg := range rec.WALSegments {
			rs, _ := wal.DecodeAll(seg)
			recs = append(recs, rs...)
		}
		if len(recs) != 2 {
			t.Errorf("recovered %d records, want 2", len(recs))
			return
		}
		if string(recs[0].Key) != "a" || string(recs[1].Key) != "b" {
			t.Error("record order broken across recovery")
		}
	})
	eng3.Run()
}

func TestWALWrapsAroundRegion(t *testing.T) {
	r := newRig(t)
	region := r.be.lay.walPages
	payload := bytes.Repeat([]byte("r"), int(region*2/3)*testPageSize)
	r.run(t, func(env *sim.Env) {
		for round := 0; round < 4; round++ {
			if err := r.be.WALAppend(env, r.chain(payload)); err != nil {
				t.Errorf("round %d: %v", round, err)
				return
			}
			if err := r.be.WALRotate(env); err != nil {
				t.Error(err)
				return
			}
			if err := r.be.WALDiscardOld(env); err != nil {
				t.Error(err)
				return
			}
		}
		if r.be.meta.walGen != 4 {
			t.Errorf("walGen = %d", r.be.meta.walGen)
		}
	})
}

// End-to-end: full engine over SlimIO on FDP, through WAL-snapshots, clean
// shutdown, recovery — and WAF must be exactly 1.00 (the headline claim).
func TestEndToEndEngineWAFOne(t *testing.T) {
	eng := sim.NewEngine()
	dev := newFDPDevice(t, 64)
	be, err := New(eng, dev, Config{MetaPages: 8, SlotPages: 192})
	if err != nil {
		t.Fatal(err)
	}
	db := imdb.New(eng, be, withPool(imdb.Config{Policy: imdb.PeriodicalLog, WALSnapshotTrigger: 48 << 10}, dev), nil)
	db.Start()
	final := map[string]string{}
	eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 600; i++ {
			k := fmt.Sprintf("key%03d", i%80)
			v := fmt.Sprintf("value-%d", i)
			final[k] = v
			if err := db.Set(env, k, []byte(v)); err != nil {
				t.Error(err)
				return
			}
		}
		db.TriggerSnapshot(imdb.OnDemandSnapshot)
		db.Shutdown(env)
	})
	eng.Run()
	if len(db.Stats().Snapshots) == 0 {
		t.Fatal("no snapshots ran")
	}
	if waf := dev.Stats().WAF(); waf != 1.0 {
		t.Fatalf("WAF = %.4f, want exactly 1.00 on FDP with lifetime separation", waf)
	}

	db2 := imdb.New(eng, be, withPool(imdb.Config{}, dev), nil)
	eng.Spawn("recover", func(env *sim.Env) {
		if _, _, err := db2.Recover(env); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if db2.Store().Len() != len(final) {
		t.Fatalf("recovered %d keys, want %d", db2.Store().Len(), len(final))
	}
	for k, v := range final {
		if got := db2.Store().Get(k); string(got) != v {
			t.Fatalf("key %s: %q != %q", k, got, v)
		}
	}
}

// The same end-to-end flow on a conventional device still works (SlimIO
// without FDP, the Figure 4 configuration) — only WAF may exceed 1.
func TestEndToEndConventionalDevice(t *testing.T) {
	eng := sim.NewEngine()
	dev := newConvDevice(t, 64)
	be, err := New(eng, dev, Config{MetaPages: 8, SlotPages: 192})
	if err != nil {
		t.Fatal(err)
	}
	db := imdb.New(eng, be, withPool(imdb.Config{Policy: imdb.AlwaysLog, WALSnapshotTrigger: 48 << 10}, dev), nil)
	db.Start()
	eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 400; i++ {
			if err := db.Set(env, fmt.Sprintf("key%03d", i%60), bytes.Repeat([]byte("z"), 200)); err != nil {
				t.Error(err)
				return
			}
		}
		db.Shutdown(env)
	})
	eng.Run()
	if db.Stats().Sets != 400 {
		t.Fatalf("sets = %d", db.Stats().Sets)
	}
}

func TestRecoverFromSpecificKind(t *testing.T) {
	r := newRig(t)
	walImg := bytes.Repeat([]byte("W"), testPageSize+9)
	odImg := bytes.Repeat([]byte("O"), testPageSize+5)
	r.run(t, func(env *sim.Env) {
		for _, c := range []struct {
			kind imdb.SnapshotKind
			img  []byte
		}{{imdb.WALSnapshot, walImg}, {imdb.OnDemandSnapshot, odImg}} {
			sink, err := r.be.BeginSnapshot(env, c.kind)
			if err != nil {
				t.Error(err)
				return
			}
			if err := sink.Write(env, c.img); err != nil {
				t.Error(err)
				return
			}
			if err := sink.Commit(env); err != nil {
				t.Error(err)
				return
			}
		}
	})
	check := func(kind imdb.SnapshotKind, want []byte) {
		eng2 := sim.NewEngine()
		be2, _ := New(eng2, r.dev, Config{MetaPages: 8, SlotPages: 96})
		eng2.Spawn("recover", func(env *sim.Env) {
			rec, err := be2.RecoverFrom(env, kind)
			if err != nil {
				t.Error(err)
				return
			}
			if !rec.HaveSnapshot || rec.Kind != kind {
				t.Errorf("kind %v: got have=%v kind=%v", kind, rec.HaveSnapshot, rec.Kind)
				return
			}
			if !bytes.Equal(rec.Snapshot, want) {
				t.Errorf("kind %v: wrong image recovered", kind)
			}
		})
		eng2.Run()
	}
	check(imdb.WALSnapshot, walImg)
	check(imdb.OnDemandSnapshot, odImg)
}

// chain copies raw framed bytes into the device's pool as a wal.Chain
// (WALAppend consumes the references on success; on error they return to
// the caller, which these tests simply drop — no quiescence assert here).
func (r *rig) chain(data []byte) wal.Chain {
	return wal.NewChain(r.dev.FTL().Array().Pool(), data)
}

// withPool points the engine's WAL buffer at the device's page pool, the
// way production wiring does (exp.RunCell, slimio.New).
func withPool(cfg imdb.Config, dev *ssd.Device) imdb.Config {
	cfg.Pool = dev.FTL().Array().Pool()
	return cfg
}
