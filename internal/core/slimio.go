package core

import (
	"fmt"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
	"github.com/slimio/slimio/internal/uring"
	"github.com/slimio/slimio/internal/vtrace"
	"github.com/slimio/slimio/internal/wal"
)

// Backend is the SlimIO persistence backend. It satisfies imdb.Backend.
type Backend struct {
	eng      *sim.Engine
	dev      *ssd.Device
	cfg      Config
	lay      layout
	pageSize int64

	walRing *uring.Ring

	meta       metaRecord
	metaCursor int64

	// Current (open) segment state. The segment begins at curHead(), right
	// after the sealed segments recorded in the metadata segment table.
	// The partial tail page lives in a pooled segment (walTailSeg) that is
	// usually the very segment the engine's WAL buffer is still encoding
	// into: the open page's first walBytes%pageSize bytes are immutable
	// (append-only), so tail rewrites submit the same memory, zero-copy.
	walBytes      int64            // bytes appended to the open segment, tail included
	walFullPages  int64            // complete pages written to the device
	walTailSeg    *bufpool.Segment // backend-owned ref to the partial tail page
	walTailSynced int              // tail bytes already submitted to the device
	pool          *bufpool.Pool

	// staged holds pooled segment references the backend owns mid-call: the
	// chain WALAppend is consuming, and copy-path pages awaiting submission.
	// Every wait point in the append path (inflight reap, ring submission)
	// can freeze the calling process at a simulated power cut; references
	// move off this list in the same straight-line step that hands them to
	// the ring or a field, so Close releases exactly what a cut stranded.
	staged []*bufpool.Segment

	// outstanding holds completion signals of in-flight async WAL writes;
	// WALSync reaps them (the paper's dedicated CQ-handling thread keeps
	// the main process from ever blocking on individual submissions). The
	// set is bounded by Config.MaxWALInflight: when the device falls behind
	// (e.g. garbage collection on a non-FDP drive), the writer blocks on
	// the oldest completion — the direct-write exposure of Figure 4.
	outstanding []*sim.Signal

	snapGen int
	sinks   []*slotSink // every sink ever opened, for teardown accounting
	stats   Stats
}

var _ imdb.Backend = (*Backend)(nil)

// New formats dev with the SlimIO layout and returns a ready backend. All
// prior content of the LBA space is ignored (mkfs semantics).
func New(eng *sim.Engine, dev *ssd.Device, cfg Config) (*Backend, error) {
	cfg.fillDefaults(dev.Capacity())
	lay, err := computeLayout(dev.Capacity(), cfg)
	if err != nil {
		return nil, err
	}
	b := &Backend{
		eng:      eng,
		dev:      dev,
		cfg:      cfg,
		lay:      lay,
		pageSize: int64(dev.PageSize()),
		pool:     dev.FTL().Array().Pool(),
		walRing:  uring.NewRing(eng, dev, "wal-path", cfg.WALRing),
	}
	if b.pool.SegSize() != dev.PageSize() {
		return nil, fmt.Errorf("core: pool segment size %d != device page size %d", b.pool.SegSize(), dev.PageSize())
	}
	return b, nil
}

// Close releases pooled buffers the backend still holds and drops commands
// frozen in its rings' submission queues (only a simulated power cut leaves
// any). Teardown only: experiment cells call it before asserting pool
// quiescence.
func (b *Backend) Close() {
	b.walRing.DropPending()
	if b.walTailSeg != nil {
		b.walTailSeg.Release()
		b.walTailSeg = nil
	}
	for _, s := range b.staged {
		s.Release()
	}
	b.staged = nil
	b.outstanding = nil
	for _, s := range b.sinks {
		s.drop()
	}
	b.sinks = nil
}

// Label names the backend for reports.
func (b *Backend) Label() string { return "slimio" }

// Stats returns cumulative backend counters.
func (b *Backend) Stats() Stats { return b.stats }

// Device exposes the device below (for FTL stats).
func (b *Backend) Device() *ssd.Device { return b.dev }

// WALRing exposes the WAL-Path ring (for stats).
func (b *Backend) WALRing() *uring.Ring { return b.walRing }

// SnapshotRing exposes the most recent Snapshot-Path ring, or nil when no
// snapshot sink has been opened yet. Each snapshot generation gets its own
// ring; telemetry probes sample whichever is current.
func (b *Backend) SnapshotRing() *uring.Ring {
	if len(b.sinks) == 0 {
		return nil
	}
	return b.sinks[len(b.sinks)-1].ring
}

// Slots reports the snapshot slot states for inspection.
func (b *Backend) Slots() []SlotInfo {
	out := make([]SlotInfo, 3)
	for i := 0; i < 3; i++ {
		out[i] = SlotInfo{
			Index: i,
			Role:  b.meta.slotRoles[i].String(),
			Start: b.lay.slotStart[i],
			Pages: b.lay.slotPages,
			Used:  b.meta.slotBytes[i],
		}
	}
	return out
}

// writeMeta persists the current metadata record through ring as one atomic
// page write into the cyclic metadata region.
func (b *Backend) writeMeta(env *sim.Env, ring *uring.Ring) error {
	b.meta.seq++
	lpa := b.lay.metaStart + b.metaCursor%b.lay.metaPages
	b.metaCursor++
	b.stats.MetadataWrites++
	tr := b.cfg.Trace
	span := tr.Begin("core", "meta.write", tr.Scope(), env.Now())
	tr.SetScope(span)
	err := ring.Write(env, lpa, []bufpool.Ref{bufpool.Borrowed(b.meta.encode())}, PIDMetadata)
	tr.SetScope(0)
	tr.End(span, env.Now())
	return err
}

// sealedPages is the total page count of all sealed segments.
func (b *Backend) sealedPages() int64 {
	var p int64
	for _, l := range b.meta.sealedLens {
		p += pagesNeeded(l, b.pageSize)
	}
	return p
}

// curHead is the ring offset (pages) where the current open segment begins.
func (b *Backend) curHead() int64 {
	return (b.meta.walHead + b.sealedPages()) % b.lay.walPages
}

// walLPA maps a page offset within the open segment to a device LPA.
func (b *Backend) walLPA(pageOff int64) int64 {
	return b.lay.walStart + (b.curHead()+pageOff)%b.lay.walPages
}

// WALAppend writes log bytes at the open segment's tail through the
// WAL-Path. Complete pages are submitted asynchronously (reaped by WALSync
// or when the in-flight bound is hit); the partial tail stays buffered until
// WALSync. Passthru writes are durable on completion — there is no page
// cache to flush behind them.
//
// The chain's references transfer to the backend on success. The common case
// is fully zero-copy: the engine's buffer chunks at the same page boundaries
// as the open segment, so the chain's segments ARE the device pages and are
// handed to the ring as-is. Only a misaligned stream (an append continuing a
// recovered, partially-filled page) falls back to copying into
// backend-owned segments. On error nothing is consumed and ownership stays
// with the caller (see imdb.Backend).
func (b *Backend) WALAppend(env *sim.Env, data wal.Chain) error {
	n := int64(data.Len())
	if n == 0 {
		data.Release()
		return nil
	}
	needed := b.sealedPages() + (b.walBytes+n+b.pageSize-1)/b.pageSize
	if needed > b.lay.walPages {
		return fmt.Errorf("core: WAL region full (%d pages)", b.lay.walPages)
	}
	tr := b.cfg.Trace
	span := tr.Begin("core", "wal.append", tr.Scope(), env.Now())
	tr.SetArg(span, n)
	defer func() { tr.End(span, env.Now()) }()

	// Stage the chain where a frozen power cut can reach it before the first
	// wait point below.
	b.staged = append(b.staged[:0], data.Segs...)

	// Bounded submission: reap oldest completions when too many commands
	// are in flight.
	for len(b.outstanding) > b.cfg.MaxWALInflight {
		sig := b.outstanding[0]
		b.outstanding = b.outstanding[1:]
		t := env.Now()
		cqe := sig.Wait(env).(*uring.CQE)
		tr.Emit("core", "inflight.wait", span, t, env.Now(), 0)
		if cqe.Err != nil {
			// Ownership returns to the caller with every reference intact.
			b.staged = b.staged[:0]
			return cqe.Err
		}
	}

	if b.aligned(data) {
		b.appendAligned(env, span, data)
	} else {
		b.appendCopy(env, span, data)
	}
	b.walBytes += n
	return nil
}

// aligned reports whether the chain's segment boundaries line up with the
// open segment's page boundaries: the chain starts exactly at the current
// tail fill, inside the very segment holding the open page (or on a fresh
// page boundary). True for every append except ones continuing a recovered
// mid-page tail.
func (b *Backend) aligned(c wal.Chain) bool {
	// Segments sized differently from device pages (an engine buffer on a
	// foreign pool) can never be adopted — route them through the copy path.
	if len(c.Segs[0].Bytes()) != int(b.pageSize) {
		return false
	}
	fill := int(b.walBytes % b.pageSize)
	if c.Off != fill {
		return false
	}
	return fill == 0 || b.walTailSeg == c.Segs[0]
}

// appendAligned adopts the chain's segments as device pages: full segments
// go straight to the ring (reference transfer), the partial last segment
// becomes the new tail.
func (b *Backend) appendAligned(env *sim.Env, span vtrace.SpanID, c wal.Chain) {
	segs := c.Segs
	fullCount := len(segs)
	var newTail *bufpool.Segment
	if c.End < int(b.pageSize) {
		fullCount--
		newTail = segs[len(segs)-1]
	}
	if fullCount > 0 {
		b.submitFull(env, span, segs[:fullCount])
		if b.walTailSeg != nil {
			// The old partial tail page just went out as part of the
			// chain's first full segment; drop the backend's own ref.
			b.walTailSeg.Release()
			b.walTailSeg = nil
		}
		b.walTailSynced = 0
	}
	if newTail != nil {
		if b.walTailSeg == nil {
			b.walTailSeg = newTail // adopt the chain's reference
		} else {
			// The chain fit inside the already-held open page: its tail
			// reference duplicates the backend's.
			newTail.Release()
		}
		b.unstage(1)
	}
}

// unstage removes the first n staged segments — their references just moved
// to the ring or a backend field in the same straight-line step.
func (b *Backend) unstage(n int) {
	k := copy(b.staged, b.staged[n:])
	for i := k; i < len(b.staged); i++ {
		b.staged[i] = nil
	}
	b.staged = b.staged[:k]
}

// appendCopy is the misaligned fallback: chain bytes are copied into
// backend-owned segments at page-boundary alignment, then released.
func (b *Backend) appendCopy(env *sim.Env, span vtrace.SpanID, c wal.Chain) {
	ps := int(b.pageSize)
	fill := int(b.walBytes % b.pageSize)
	var full []*bufpool.Segment
	for i := range c.Segs {
		src := c.Span(i)
		for len(src) > 0 {
			if b.walTailSeg == nil {
				b.walTailSeg = b.pool.Get()
				b.walTailSynced = 0
			}
			nb := copy(b.walTailSeg.Bytes()[fill:], src)
			fill += nb
			src = src[nb:]
			if fill == ps {
				// The sealed copy moves from the tail field to staging until
				// submitFull hands it to the ring.
				full = append(full, b.walTailSeg)
				b.staged = append(b.staged, b.walTailSeg)
				b.walTailSeg = nil
				b.walTailSynced = 0
				fill = 0
			}
		}
	}
	// The chain is fully copied out; drop its references (the front of the
	// staging list) before the submission wait points below.
	chainSegs := len(c.Segs)
	c.Release()
	b.unstage(chainSegs)
	if len(full) > 0 {
		b.submitFull(env, span, full)
	}
}

// submitFull hands full-page segments to the WAL ring — one reference per
// segment transfers to the ring — splitting runs at ring wrap boundaries.
func (b *Backend) submitFull(env *sim.Env, span vtrace.SpanID, segs []*bufpool.Segment) {
	tr := b.cfg.Trace
	idx := 0
	for _, run := range splitWrap(b.lay.walStart, b.lay.walPages, b.curHead()+b.walFullPages, int64(len(segs))) {
		pages := make([]bufpool.Ref, run.n)
		for i := range pages {
			s := segs[idx]
			pages[i] = bufpool.Ref{Seg: s, B: s.Bytes()}
			idx++
		}
		// The run's references move to the ring (registered at Submit entry);
		// unstage them in the same straight-line step.
		b.unstage(int(run.n))
		tr.SetScope(span)
		sig := b.walRing.WriteAsync(env, run.start, pages, PIDWAL)
		tr.SetScope(0)
		b.outstanding = append(b.outstanding, sig)
	}
	b.walFullPages += int64(len(segs))
	b.stats.WALPageWrites += int64(len(segs))
}

// WALSync submits the partial tail page (if any un-synced bytes exist) and
// reaps every outstanding WAL write completion, after which all appended
// bytes are durable. Safe to run from a background process concurrently
// with further WALAppend calls: it takes ownership of the current
// outstanding set, and later appends accumulate into a fresh one.
func (b *Backend) WALSync(env *sim.Env) error {
	tr := b.cfg.Trace
	span := tr.Begin("core", "wal.sync", tr.Scope(), env.Now())
	defer func() { tr.End(span, env.Now()) }()
	if fill := int(b.walBytes % b.pageSize); fill > 0 && b.walTailSynced != fill {
		// Zero-copy tail rewrite: submit a view of the live tail segment.
		// The first fill bytes are immutable (append-only log), so the
		// engine may keep encoding past them while the write is in flight.
		lpa := b.walLPA(b.walFullPages)
		b.walTailSeg.Retain() // the ring releases its reference after issue
		tr.SetScope(span)
		sig := b.walRing.WriteAsync(env, lpa,
			[]bufpool.Ref{{Seg: b.walTailSeg, B: b.walTailSeg.Bytes()[:fill]}}, PIDWAL)
		tr.SetScope(0)
		b.outstanding = append(b.outstanding, sig)
		b.walTailSynced = fill
		b.stats.WALTailRewrites++
	}
	pending := b.outstanding
	b.outstanding = nil
	var firstErr error
	t := env.Now()
	for _, sig := range pending {
		if cqe := sig.Wait(env).(*uring.CQE); cqe.Err != nil && firstErr == nil {
			firstErr = cqe.Err
		}
	}
	if len(pending) > 0 {
		tr.Emit("core", "reap.wait", span, t, env.Now(), int64(len(pending)))
	}
	return firstErr
}

// WALDurableSize reports bytes appended to the open segment.
func (b *Backend) WALDurableSize() int64 { return b.walBytes }

// WALRotate seals the open segment into the metadata segment table and
// opens a new one immediately after it in the ring — the fork-point log
// rotation of a WAL-Snapshot. Costs one metadata page write.
func (b *Backend) WALRotate(env *sim.Env) error {
	if b.walBytes == 0 {
		return nil // empty segment: nothing to seal
	}
	if b.meta.sealedCount() == maxSealedSegments {
		return fmt.Errorf("core: too many sealed WAL segments (%d)", maxSealedSegments)
	}
	for i := range b.meta.sealedLens {
		if b.meta.sealedLens[i] == 0 {
			b.meta.sealedLens[i] = b.walBytes
			break
		}
	}
	b.walBytes = 0
	b.walFullPages = 0
	if b.walTailSeg != nil {
		b.walTailSeg.Release()
		b.walTailSeg = nil
	}
	b.walTailSynced = 0
	b.stats.WALRotations++
	return b.writeMeta(env, b.walRing)
}

// WALDiscardOld deallocates every sealed segment and advances the ring head
// past them — called once a WAL-Snapshot commit made the old log obsolete.
// The TRIM is what lets an FDP device reclaim the WAL's reclaim units
// without copying (§4.3).
func (b *Backend) WALDiscardOld(env *sim.Env) error {
	used := b.sealedPages()
	if used == 0 {
		return nil
	}
	for _, run := range splitWrap(b.lay.walStart, b.lay.walPages, b.meta.walHead, used) {
		if err := b.walRing.Deallocate(env, run.start, run.n); err != nil {
			return err
		}
		b.stats.DeallocatedPages += run.n
	}
	b.meta.walHead = (b.meta.walHead + used) % b.lay.walPages
	b.meta.sealedLens = [maxSealedSegments]int64{}
	b.meta.walGen++
	b.stats.WALResets++
	return b.writeMeta(env, b.walRing)
}

// slotSink streams a snapshot image into the Reserve slot via a dedicated
// Snapshot-Path ring. Chunks are copied once — out of the snapshot writer's
// reused compression frame into pooled segments — and those segments are
// what the device programs.
type slotSink struct {
	be          *Backend
	ring        *uring.Ring
	kind        imdb.SnapshotKind
	slot        int
	off         int64            // bytes written
	tailSeg     *bufpool.Segment // sink-owned ref to the partial tail page
	outstanding []*sim.Signal
}

// drop releases teardown-time leftovers: the partial tail and any commands
// frozen in the sink's ring (a power cut mid-snapshot leaves both).
func (s *slotSink) drop() {
	s.ring.DropPending()
	if s.tailSeg != nil {
		s.tailSeg.Release()
		s.tailSeg = nil
	}
}

// reap waits out all in-flight slot writes.
func (s *slotSink) reap(env *sim.Env) error {
	var firstErr error
	for _, sig := range s.outstanding {
		if cqe := sig.Wait(env).(*uring.CQE); cqe.Err != nil && firstErr == nil {
			firstErr = cqe.Err
		}
	}
	s.outstanding = s.outstanding[:0]
	return firstErr
}

func (s *slotSink) Write(env *sim.Env, chunk []byte) error {
	b := s.be
	if (s.off+int64(len(chunk))+b.pageSize-1)/b.pageSize > b.lay.slotPages {
		return fmt.Errorf("core: snapshot exceeds slot size (%d pages)", b.lay.slotPages)
	}
	tr := b.cfg.Trace
	span := tr.Begin("core", "slot.write", tr.Scope(), env.Now())
	tr.SetArg(span, int64(len(chunk)))
	defer func() { tr.End(span, env.Now()) }()
	ps := int(b.pageSize)
	fill := int(s.off % b.pageSize)
	startPage := s.off / b.pageSize // page the current tail (or chunk start) lands on
	var pages []bufpool.Ref
	for src := chunk; len(src) > 0; {
		if s.tailSeg == nil {
			s.tailSeg = b.pool.Get()
		}
		n := copy(s.tailSeg.Bytes()[fill:], src)
		fill += n
		src = src[n:]
		if fill == ps {
			// The sink's reference moves to the ring with the page.
			pages = append(pages, bufpool.Ref{Seg: s.tailSeg, B: s.tailSeg.Bytes()})
			s.tailSeg = nil
			fill = 0
		}
	}
	s.off += int64(len(chunk))
	if len(pages) == 0 {
		return nil
	}
	// Submit asynchronously: the SQPOLL poller dispatches while the
	// snapshot process compresses the next chunk, overlapping CPU and
	// device time (§4.1).
	tr.SetScope(span)
	sig := s.ring.WriteAsync(env, b.lay.slotStart[s.slot]+startPage, pages, s.pid())
	tr.SetScope(0)
	s.outstanding = append(s.outstanding, sig)
	b.stats.SnapshotPageWrites += int64(len(pages))
	return nil
}

func (s *slotSink) pid() uint32 {
	if s.kind == imdb.OnDemandSnapshot {
		return PIDOnDemand
	}
	return PIDWALSnapshot
}

// Commit flushes the tail, promotes the Reserve slot to its kind with one
// atomic metadata write, and deallocates the superseded image.
func (s *slotSink) Commit(env *sim.Env) error {
	b := s.be
	tr := b.cfg.Trace
	span := tr.Begin("core", "slot.commit", tr.Scope(), env.Now())
	defer func() { tr.End(span, env.Now()) }()
	if fill := int(s.off % b.pageSize); fill > 0 && s.tailSeg != nil {
		lpa := b.lay.slotStart[s.slot] + (s.off-int64(fill))/b.pageSize
		tr.SetScope(span)
		// The sink's reference moves to the ring with the partial page.
		sig := s.ring.WriteAsync(env, lpa,
			[]bufpool.Ref{{Seg: s.tailSeg, B: s.tailSeg.Bytes()[:fill]}}, s.pid())
		tr.SetScope(0)
		s.tailSeg = nil
		s.outstanding = append(s.outstanding, sig)
		b.stats.SnapshotPageWrites++
	}
	// The image must be fully durable before the promotion record points
	// at it.
	t := env.Now()
	if err := s.reap(env); err != nil {
		return err
	}
	tr.Emit("core", "reap.wait", span, t, env.Now(), 0)
	target := roleWALSnap
	if s.kind == imdb.OnDemandSnapshot {
		target = roleOnDemand
	}
	oldSlot := -1
	for i := 0; i < 3; i++ {
		if b.meta.slotRoles[i] == target {
			oldSlot = i
			break
		}
	}
	b.meta.slotRoles[s.slot] = target
	b.meta.slotBytes[s.slot] = s.off
	var oldBytes int64
	if oldSlot >= 0 {
		oldBytes = b.meta.slotBytes[oldSlot]
		b.meta.slotRoles[oldSlot] = roleReserve
		b.meta.slotBytes[oldSlot] = 0
	}
	tr.SetScope(span)
	err := b.writeMeta(env, s.ring)
	tr.SetScope(0)
	if err != nil {
		return err
	}
	b.stats.Promotions++
	if oldSlot >= 0 && oldBytes > 0 {
		n := pagesNeeded(oldBytes, b.pageSize)
		if err := s.ring.Deallocate(env, b.lay.slotStart[oldSlot], n); err != nil {
			return err
		}
		b.stats.DeallocatedPages += n
	}
	return nil
}

// Abort discards the partial image, returning the slot to Reserve duty.
func (s *slotSink) Abort(env *sim.Env) error {
	b := s.be
	_ = s.reap(env) // drain in-flight writes before trimming under them
	if s.tailSeg != nil {
		s.tailSeg.Release()
		s.tailSeg = nil
	}
	n := pagesNeeded(s.off-s.off%b.pageSize, b.pageSize)
	if n == 0 {
		return nil
	}
	err := s.ring.Deallocate(env, b.lay.slotStart[s.slot], n)
	if err == nil {
		b.stats.DeallocatedPages += n
	}
	return err
}

// BeginSnapshot picks the Reserve slot and opens a fresh SQPOLL
// Snapshot-Path ring owned by the calling (snapshot) process.
func (b *Backend) BeginSnapshot(env *sim.Env, kind imdb.SnapshotKind) (imdb.SnapshotSink, error) {
	slot := -1
	for i := 0; i < 3; i++ {
		if b.meta.slotRoles[i] == roleReserve {
			slot = i
			break
		}
	}
	if slot < 0 {
		return nil, fmt.Errorf("core: no Reserve slot available")
	}
	b.snapGen++
	ring := uring.NewRing(b.eng, b.dev, fmt.Sprintf("snapshot-path-%d", b.snapGen), b.cfg.SnapshotRing)
	sink := &slotSink{be: b, ring: ring, kind: kind, slot: slot}
	b.sinks = append(b.sinks, sink)
	return sink, nil
}

// Recover implements §4.2's procedure: scan the metadata region for the
// newest valid record, load the preferred snapshot image (the WAL-coupled
// one) through the read-ahead reader, and scan the WAL segments for the
// record stream. It also restores the backend's in-memory tail state so
// appends can continue.
func (b *Backend) Recover(env *sim.Env) (*imdb.Recovered, error) {
	return b.recover(env, nil)
}

// RecoverFrom restores from a specific snapshot kind — the paper's "either
// the WAL-Snapshot or On-Demand-Snapshot is loaded ... as requested". An
// On-Demand restore still replays the log segments on top (they are a
// superset of the changes since either image).
func (b *Backend) RecoverFrom(env *sim.Env, kind imdb.SnapshotKind) (*imdb.Recovered, error) {
	return b.recover(env, &kind)
}

func (b *Backend) recover(env *sim.Env, want *imdb.SnapshotKind) (*imdb.Recovered, error) {
	// 1. Metadata: newest valid record wins.
	var newest *metaRecord
	var newestIdx int64 = -1
	for i := int64(0); i < b.lay.metaPages; i++ {
		pages, err := b.walRing.Read(env, b.lay.metaStart+i, 1)
		if err != nil {
			continue // unwritten page
		}
		rec, err := decodeMetaRecord(pages[0])
		if err != nil {
			continue
		}
		if newest == nil || rec.seq > newest.seq {
			newest, newestIdx = rec, i
		}
	}
	out := &imdb.Recovered{WALTruncatedAt: -1}
	if newest != nil {
		b.meta = *newest
		b.metaCursor = newestIdx + 1
	}
	// With no metadata record yet (format-fresh device that never rotated
	// or committed a snapshot), the zero-value state is correct: WAL head
	// at 0, no sealed segments, all slots Reserve — so the scans below
	// still run.

	// 2. Snapshot: the requested kind, or (by default) the WAL-coupled
	// image first.
	find := func(role slotRole, kind imdb.SnapshotKind) int {
		for i := 0; i < 3; i++ {
			if b.meta.slotRoles[i] == role && b.meta.slotBytes[i] > 0 {
				out.Kind = kind
				return i
			}
		}
		return -1
	}
	slot := -1
	switch {
	case want != nil && *want == imdb.OnDemandSnapshot:
		slot = find(roleOnDemand, imdb.OnDemandSnapshot)
	case want != nil:
		slot = find(roleWALSnap, imdb.WALSnapshot)
	default:
		if slot = find(roleWALSnap, imdb.WALSnapshot); slot < 0 {
			slot = find(roleOnDemand, imdb.OnDemandSnapshot)
		}
	}
	if slot >= 0 {
		img, bad, err := b.readSequential(env, b.lay.slotStart[slot], pagesNeeded(b.meta.slotBytes[slot], b.pageSize))
		if err != nil {
			return nil, fmt.Errorf("core: snapshot read: %w", err)
		}
		if bad > 0 {
			// Unreadable pages were zero-filled; the snapshot loader will
			// stop at the hole and the WAL replay covers what it can.
			out.Degraded = append(out.Degraded, fmt.Sprintf("snapshot slot %d: %d unreadable pages zero-filled", slot, bad))
		}
		if int64(len(img)) > b.meta.slotBytes[slot] {
			img = img[:b.meta.slotBytes[slot]]
		}
		out.HaveSnapshot = true
		out.Snapshot = img
	}

	// 3. Sealed segments: exact lengths come from the segment table.
	segOff := b.meta.walHead
	for _, segLen := range b.meta.sealedLens {
		if segLen == 0 {
			continue
		}
		segPages := pagesNeeded(segLen, b.pageSize)
		seg, bad, err := b.readRingPages(env, segOff, segPages)
		if err != nil {
			return nil, fmt.Errorf("core: sealed segment read: %w", err)
		}
		if bad > 0 {
			out.Degraded = append(out.Degraded, fmt.Sprintf("sealed wal segment %d: %d unreadable pages zero-filled", len(out.WALSegments), bad))
		}
		if int64(len(seg)) > segLen {
			seg = seg[:segLen]
		}
		out.WALSegments = append(out.WALSegments, seg)
		segOff = (segOff + segPages) % b.lay.walPages
	}

	// 4. Open segment: read forward from its head until the first
	// unwritten page; the CRC framing then finds the valid prefix.
	openRaw, stopNote := b.readWALRaw(env, segOff)
	if stopNote != "" {
		out.Degraded = append(out.Degraded, stopNote)
	}
	out.WALSegments = append(out.WALSegments, openRaw)

	// 5. Restore append state: continue after the last whole record of the
	// open segment. A bad frame past the last whole record is either the
	// expected torn tail of the crashed write (non-zero garbage from a
	// partial page program) or real mid-segment corruption — both record
	// where the durable prefix ends; only a clean zero tail leaves
	// WALTruncatedAt at -1.
	_, consumed, corrupt := wal.DecodeStream(openRaw)
	if corrupt {
		out.WALTruncatedAt = consumed
		out.Degraded = append(out.Degraded, fmt.Sprintf("open wal segment: decode stopped on non-zero garbage at byte %d of %d", consumed, len(openRaw)))
	}
	b.walBytes = consumed
	b.walFullPages = consumed / b.pageSize
	if b.walTailSeg != nil {
		b.walTailSeg.Release()
		b.walTailSeg = nil
	}
	if rem := consumed % b.pageSize; rem > 0 {
		// The recovered mid-page tail lives in a backend-owned segment;
		// appends continuing it take the copying fallback path, since the
		// engine's fresh buffer chunks from a zero offset.
		b.walTailSeg = b.pool.Get()
		copy(b.walTailSeg.Bytes(), openRaw[consumed-rem:consumed])
	}
	b.walTailSynced = 0
	return out, nil
}

// readWALRaw reads WAL-region pages sequentially from ring offset start
// (with read-ahead) until an unwritten page or the region end. An unwritten
// page is the normal end of the log; a device read failure (retries already
// exhausted below) also ends the scan — everything durable before it is the
// recoverable prefix — and is reported in the returned note.
func (b *Backend) readWALRaw(env *sim.Env, start int64) (out []byte, note string) {
	ra := b.cfg.RecoveryReadAhead
	remaining := b.lay.walPages - b.sealedPages()
	for off := int64(0); off < remaining; {
		n := ra
		if off+n > remaining {
			n = remaining - off
		}
		runs := splitWrap(b.lay.walStart, b.lay.walPages, start+off, n)
		stop := false
		for _, run := range runs {
			data, err := b.walRing.Read(env, run.start, run.n)
			if err != nil {
				// Probe page by page to find the exact end.
				for i := int64(0); i < run.n; i++ {
					pg, perr := b.walRing.Read(env, run.start+i, 1)
					if perr != nil {
						if nand.IsDeviceError(perr) {
							note = fmt.Sprintf("open wal segment: unreadable page at ring offset %d ends the scan: %v", run.start+i, perr)
						}
						stop = true
						break
					}
					out = appendPage(out, pg[0], b.pageSize)
				}
			} else {
				for _, pg := range data {
					out = appendPage(out, pg, b.pageSize)
				}
			}
			if stop {
				break
			}
		}
		if stop {
			break
		}
		off += n
	}
	return out, note
}

// readRingPages reads exactly n pages starting at ring offset start,
// tolerating unwritten pages (an unsynced sealed tail reads as zeros) and
// unreadable ones (zero-filled; bad counts only real device failures so
// recovery can report the degradation).
func (b *Backend) readRingPages(env *sim.Env, start, n int64) (out []byte, bad int64, err error) {
	for _, run := range splitWrap(b.lay.walStart, b.lay.walPages, start, n) {
		data, err := b.walRing.Read(env, run.start, run.n)
		if err != nil {
			for i := int64(0); i < run.n; i++ {
				pg, perr := b.walRing.Read(env, run.start+i, 1)
				if perr != nil {
					if nand.IsDeviceError(perr) {
						bad++
					}
					out = appendPage(out, nil, b.pageSize)
					continue
				}
				out = appendPage(out, pg[0], b.pageSize)
			}
			continue
		}
		for _, pg := range data {
			out = appendPage(out, pg, b.pageSize)
		}
	}
	return out, bad, nil
}

// appendPage appends a device page, zero-padding short (tail) pages so
// byte offsets stay page-aligned for the decoder.
func appendPage(dst, pg []byte, pageSize int64) []byte {
	dst = append(dst, pg...)
	for i := int64(len(pg)); i < pageSize; i++ {
		dst = append(dst, 0)
	}
	return dst
}

// readSequential reads n pages from lpa with a double-buffered read-ahead
// pipeline: the next batch is in flight while the current one is consumed.
// This is the §5.3 recovery reader. A failed batch falls back to single-page
// reads to salvage what it can; pages that still fail (device retries are
// already exhausted below this layer) are zero-filled and counted in bad.
func (b *Backend) readSequential(env *sim.Env, lpa, n int64) (out []byte, bad int64, err error) {
	out = make([]byte, 0, n*b.pageSize)
	ra := b.cfg.RecoveryReadAhead
	issue := func(off int64) *sim.Signal {
		cnt := ra
		if off+cnt > n {
			cnt = n - off
		}
		return b.walRing.Submit(env, &uring.SQE{Op: uring.OpRead, LPA: lpa + off, N: cnt})
	}
	if n == 0 {
		return out, 0, nil
	}
	pendingSig := issue(0)
	for off := int64(0); off < n; off += ra {
		sig := pendingSig
		if off+ra < n {
			pendingSig = issue(off + ra)
		}
		cqe := sig.Wait(env).(*uring.CQE)
		if cqe.Err != nil {
			cnt := ra
			if off+cnt > n {
				cnt = n - off
			}
			for i := int64(0); i < cnt; i++ {
				pg, perr := b.walRing.Read(env, lpa+off+i, 1)
				if perr != nil {
					bad++
					out = appendPage(out, nil, b.pageSize)
					continue
				}
				out = appendPage(out, pg[0], b.pageSize)
			}
			continue
		}
		for _, pg := range cqe.Data {
			out = appendPage(out, pg, b.pageSize)
		}
	}
	return out, bad, nil
}
