package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// maxSealedSegments bounds how many sealed (pre-fork) WAL segments can be
// outstanding at once. One suffices in normal operation (a single snapshot
// in flight); the extra slots tolerate repeatedly failing snapshots without
// losing log data.
const maxSealedSegments = 4

// metaRecord is SlimIO's durable state: snapshot slot roles and image sizes,
// plus the WAL ring position and segment table. One record fits in (much
// less than) a page; records are written cyclically over the metadata region
// and the highest valid sequence number wins at recovery — making every
// state transition a single atomic page write (§4.2).
type metaRecord struct {
	seq       uint64
	slotRoles [3]slotRole
	slotBytes [3]int64
	// walHead is the ring offset (in pages, relative to the WAL region
	// start) where the oldest live segment begins.
	walHead int64
	// sealedLens are the byte lengths of sealed segments, oldest first,
	// laid out consecutively (page-aligned) from walHead. The current
	// (open) segment follows them and is recovered by scanning.
	sealedLens [maxSealedSegments]int64
	// walGen increments on every discard, fencing stale segments.
	walGen uint64
}

func (m *metaRecord) sealedCount() int {
	n := 0
	for _, l := range m.sealedLens {
		if l > 0 {
			n++
		}
	}
	return n
}

var metaMagic = []byte("SLIMMETA")

const metaRecordSize = 8 /*magic*/ + 8 /*seq*/ + 3 + 3*8 + 8 /*walHead*/ +
	maxSealedSegments*8 + 8 /*gen*/ + 4 /*crc*/

func (m *metaRecord) encode() []byte {
	buf := make([]byte, metaRecordSize)
	copy(buf[0:8], metaMagic)
	binary.LittleEndian.PutUint64(buf[8:16], m.seq)
	off := 16
	for i := 0; i < 3; i++ {
		buf[off] = byte(m.slotRoles[i])
		off++
	}
	for i := 0; i < 3; i++ {
		binary.LittleEndian.PutUint64(buf[off:off+8], uint64(m.slotBytes[i]))
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:off+8], uint64(m.walHead))
	off += 8
	for i := 0; i < maxSealedSegments; i++ {
		binary.LittleEndian.PutUint64(buf[off:off+8], uint64(m.sealedLens[i]))
		off += 8
	}
	binary.LittleEndian.PutUint64(buf[off:off+8], m.walGen)
	off += 8
	crc := crc32.ChecksumIEEE(buf[:off])
	binary.LittleEndian.PutUint32(buf[off:off+4], crc)
	return buf
}

func decodeMetaRecord(buf []byte) (*metaRecord, error) {
	if len(buf) < metaRecordSize {
		return nil, fmt.Errorf("core: metadata record too short")
	}
	buf = buf[:metaRecordSize]
	for i := range metaMagic {
		if buf[i] != metaMagic[i] {
			return nil, fmt.Errorf("core: bad metadata magic")
		}
	}
	body := metaRecordSize - 4
	want := binary.LittleEndian.Uint32(buf[body:])
	if crc32.ChecksumIEEE(buf[:body]) != want {
		return nil, fmt.Errorf("core: metadata CRC mismatch")
	}
	m := &metaRecord{}
	m.seq = binary.LittleEndian.Uint64(buf[8:16])
	off := 16
	for i := 0; i < 3; i++ {
		m.slotRoles[i] = slotRole(buf[off])
		off++
	}
	for i := 0; i < 3; i++ {
		m.slotBytes[i] = int64(binary.LittleEndian.Uint64(buf[off : off+8]))
		off += 8
	}
	m.walHead = int64(binary.LittleEndian.Uint64(buf[off : off+8]))
	off += 8
	for i := 0; i < maxSealedSegments; i++ {
		m.sealedLens[i] = int64(binary.LittleEndian.Uint64(buf[off : off+8]))
		off += 8
	}
	m.walGen = binary.LittleEndian.Uint64(buf[off : off+8])
	return m, nil
}
