package core

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/slimio/slimio/internal/fault"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/wal"
)

// testRNG is a local splitmix64 so the harness never touches math/rand
// global state (seed reproducibility is part of the contract under test).
func testRNG(seed int64) func() uint64 {
	state := uint64(seed)
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// crashRunResult summarizes one seeded crash run; two runs of the same seed
// must produce identical values (the determinism half of the contract).
type crashRunResult struct {
	appended  int
	acked     int
	recovered int
	digest    uint64
	faults    fault.Stats
}

// runSlimIOCrashSeed drives a seed-derived workload of framed WAL appends
// (many spanning multiple pages), syncs, rotations, and snapshot writes
// against a SlimIO backend, pulls the power at a seed-derived virtual time
// (in-flight programs tear), then recovers on a fresh engine over the same
// device and checks the durable-prefix model: the recovered record sequence
// is a prefix of the issued sequence no shorter than the acked count.
func runSlimIOCrashSeed(t *testing.T, seed int64) crashRunResult {
	t.Helper()
	next := testRNG(seed)
	eng := sim.NewEngine()
	dev := newFDPDevice(t, 64)
	be, err := New(eng, dev, Config{MetaPages: 8, SlotPages: 192})
	if err != nil {
		t.Fatal(err)
	}

	plan := fault.NewPlan(fault.Config{Seed: seed})
	cut := sim.Time(sim.Duration(50+next()%40_000) * sim.Microsecond)
	plan.SchedulePowerCut(cut)
	dev.FTL().Array().SetFaultHook(plan)

	var ops []wal.Record
	appended, acked := 0, 0
	eng.Spawn("client", func(env *sim.Env) {
		sync := func() bool {
			if err := be.WALSync(env); err != nil {
				return false
			}
			acked = appended
			return true
		}
		rotations := 0
		for i := 0; i < 160; i++ {
			key := []byte(fmt.Sprintf("k%05d", i))
			val := bytes.Repeat([]byte{byte('a' + i%26)}, 40+int(next()%2000))
			if err := be.WALAppend(env, wal.AppendRecord(nil, wal.OpSet, key, val)); err != nil {
				return
			}
			ops = append(ops, wal.Record{Op: wal.OpSet, Key: key, Value: val})
			appended++
			r := next() % 100
			if r < 35 && !sync() {
				return
			}
			if r < 6 && rotations < 3 {
				// Sync first so a sealed segment is always fully durable.
				if !sync() {
					return
				}
				if err := be.WALRotate(env); err != nil {
					return
				}
				rotations++
			}
			if r >= 94 {
				// A multi-page snapshot write for the cut to land inside.
				sink, err := be.BeginSnapshot(env, imdb.WALSnapshot)
				if err != nil {
					return
				}
				img := bytes.Repeat([]byte{byte(next())}, int(4+next()%12)*testPageSize)
				if err := sink.Write(env, img); err != nil {
					sink.Abort(env)
					return
				}
				if err := sink.Commit(env); err != nil {
					return
				}
			}
		}
		sync()
	})
	eng.RunUntil(cut)
	eng.Stop()

	// Power restored: recovery reads a healthy, frozen device.
	dev.FTL().Array().SetFaultHook(nil)

	eng2 := sim.NewEngine()
	be2, err := New(eng2, dev, Config{MetaPages: 8, SlotPages: 192})
	if err != nil {
		t.Fatal(err)
	}
	var rec *imdb.Recovered
	eng2.Spawn("recover", func(env *sim.Env) {
		r, err := be2.Recover(env)
		if err != nil {
			t.Errorf("seed %d: recover: %v", seed, err)
			return
		}
		rec = r
	})
	eng2.Run()
	if rec == nil {
		t.Fatalf("seed %d: recovery produced nothing", seed)
	}

	recs := decodeSegments(rec)
	checkRecordPrefix(t, fmt.Sprintf("slimio seed %d (cut %v)", seed, cut), recs, ops, acked)
	return crashRunResult{
		appended:  appended,
		acked:     acked,
		recovered: len(recs),
		digest:    digestRecords(recs),
		faults:    plan.Stats(),
	}
}

// checkRecordPrefix asserts the durable-prefix model: recs must equal
// ops[:len(recs)] with len(recs) >= acked (every synced record survives; an
// unsynced tail may be lost but never reordered, corrupted, or invented).
func checkRecordPrefix(t *testing.T, label string, recs, ops []wal.Record, acked int) {
	t.Helper()
	if len(recs) < acked {
		t.Fatalf("%s: recovered %d records, but %d were acked durable", label, len(recs), acked)
	}
	if len(recs) > len(ops) {
		t.Fatalf("%s: recovered %d records, only %d were ever appended", label, len(recs), len(ops))
	}
	for i, rc := range recs {
		if rc.Op != ops[i].Op || !bytes.Equal(rc.Key, ops[i].Key) || !bytes.Equal(rc.Value, ops[i].Value) {
			t.Fatalf("%s: record %d diverges from the issued sequence (key %q vs %q)",
				label, i, rc.Key, ops[i].Key)
		}
	}
}

func digestRecords(recs []wal.Record) uint64 {
	h := fnv.New64a()
	for _, rc := range recs {
		h.Write([]byte{byte(rc.Op)})
		h.Write(rc.Key)
		h.Write(rc.Value)
	}
	return h.Sum64()
}

// TestSeededCrashHarnessSlimIO runs the crash harness over many distinct
// seeds. Each seed derives its own workload shape and power-cut instant; the
// aggregate must include runs where the cut landed mid multi-page write
// (torn pages injected) and runs that actually lost an unsynced tail —
// otherwise the harness is not exercising what it claims to.
func TestSeededCrashHarnessSlimIO(t *testing.T) {
	var torn, lossy int64
	for seed := int64(1); seed <= 55; seed++ {
		res := runSlimIOCrashSeed(t, seed)
		torn += res.faults.TornPrograms
		if res.recovered < res.appended {
			lossy++
		}
	}
	if torn == 0 {
		t.Error("no seed tore a page: every cut missed the write window")
	}
	if lossy == 0 {
		t.Error("no seed lost an unsynced tail: every cut landed after quiescence")
	}
}

// TestSeededCrashDeterminismSlimIO: the same seed must reproduce the same
// fault schedule, the same loss, and byte-identical recovered records.
func TestSeededCrashDeterminismSlimIO(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := runSlimIOCrashSeed(t, seed)
		b := runSlimIOCrashSeed(t, seed)
		if a != b {
			t.Fatalf("seed %d not deterministic:\n first %+v\nsecond %+v", seed, a, b)
		}
	}
}
