// Seeded crash-recovery corpus for the SlimIO backend, deduplicated onto
// the shared model-checker harness (internal/crashmc): the workload shape,
// stack construction, power-cut replay, and prefix check that used to live
// here are now the checker's, and every seed is additionally judged by the
// full durability oracle (ack, snapshot, and damage-report rules) instead
// of the WAL-prefix check alone. Systematic lattice enumeration lives in
// internal/crashmc's own tests; this corpus keeps a broad spread of
// seed-derived single cuts running against this package.
package core_test

import (
	"testing"

	"github.com/slimio/slimio/internal/crashmc"
)

// TestSeededCrashHarnessSlimIO sweeps the seed corpus. Each seed derives
// its own workload and power-cut instant; the aggregate must include torn
// pages (cuts landing mid-program) and lossy cuts (an unsynced tail that
// recovery correctly drops), or the harness is not exercising the window
// it claims to.
func TestSeededCrashHarnessSlimIO(t *testing.T) {
	seeds := int64(55)
	if testing.Short() {
		seeds = 12
	}
	var torn, lossy int64
	for seed := int64(1); seed <= seeds; seed++ {
		res, v, err := crashmc.RunSeed(crashmc.SlimIO, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v != nil {
			t.Errorf("seed %d: oracle violation: %v", seed, v)
		}
		torn += res.Faults.TornPrograms
		if res.Recovered < res.Appended {
			lossy++
		}
	}
	if torn == 0 {
		t.Error("no seed tore a page: every cut missed the write window")
	}
	if lossy == 0 {
		t.Error("no seed lost an unsynced tail: every cut landed after quiescence")
	}
}

// TestSeededCrashDeterminismSlimIO: the same seed must reproduce the same
// cut, the same recovery, and the same fault counts, bit for bit.
func TestSeededCrashDeterminismSlimIO(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, av, err := crashmc.RunSeed(crashmc.SlimIO, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, bv, err := crashmc.RunSeed(crashmc.SlimIO, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a != b {
			t.Fatalf("seed %d not deterministic:\n first %+v\nsecond %+v", seed, a, b)
		}
		if (av == nil) != (bv == nil) {
			t.Fatalf("seed %d: oracle verdict not deterministic: %v vs %v", seed, av, bv)
		}
	}
}
