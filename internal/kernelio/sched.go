package kernelio

import (
	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
	"github.com/slimio/slimio/internal/vtrace"
)

// SchedMode selects the block-layer scheduling policy.
type SchedMode int

const (
	// SchedNone dispatches strictly FIFO (the paper sets the baseline's
	// scheduler to 'none').
	SchedNone SchedMode = iota
	// SchedSyncPriority dispatches synchronous requests (fsync, O_SYNC,
	// reads) ahead of asynchronous writeback, as BFQ/mq-deadline style
	// schedulers do — the behaviour §4 notes can deprioritize snapshot
	// writes indefinitely.
	SchedSyncPriority
)

func (m SchedMode) String() string {
	if m == SchedSyncPriority {
		return "sync-priority"
	}
	return "none"
}

// Request is one block-layer write request: a batch of pages bound for the
// device. Done fires with nil or an error when the device completes it.
//
// Ownership: Submit transfers one reference per pooled page payload to the
// scheduler, which releases each once the device has consumed the request
// (the NAND layer retains what it stores). Callers never free request
// payloads themselves.
type Request struct {
	Pages []ssd.PageWrite
	Sync  bool
	Done  *sim.Signal

	submitted sim.Time
	seq       uint64
	span      vtrace.SpanID // parent captured from the tracer scope at Submit
}

// SchedStats aggregates scheduler counters.
type SchedStats struct {
	Dispatched     int64
	SyncDispatched int64
	QueueWait      sim.Duration // total time requests sat in the dispatch queue
}

// Scheduler is the block-layer dispatch stage: a single kernel thread that
// pulls requests off the staging queues, pays per-request dispatch CPU, and
// issues them to the device. Device-side queueing happens on the NAND
// timelines; this stage models software queue ordering and its overhead.
type Scheduler struct {
	eng   *sim.Engine
	dev   *ssd.Device
	mode  SchedMode
	costs Costs

	syncQ   []*Request
	asyncQ  []*Request
	kick    *sim.Broadcast
	stats   SchedStats
	nextSeq uint64
	trace   *vtrace.Tracer

	// live tracks requests whose page payloads the scheduler still owns:
	// staged in a queue, or picked but not yet consumed by the device. The
	// window is small (bounded by writeback queue depth), so the linear
	// removal below stays cheap.
	live []*Request
}

// releasePages drops the scheduler's ownership of req's page payloads.
func (s *Scheduler) releasePages(req *Request) {
	for i := range req.Pages {
		req.Pages[i].Data.Release()
		req.Pages[i].Data = bufpool.Ref{}
	}
	for i, r := range s.live {
		if r == req {
			s.live = append(s.live[:i], s.live[i+1:]...)
			break
		}
	}
}

// DropPending releases the page payloads of every request the scheduler
// still owns — staged or frozen mid-dispatch by a simulated power cut.
// Teardown only.
func (s *Scheduler) DropPending() {
	for len(s.live) > 0 {
		s.releasePages(s.live[0])
	}
	s.syncQ, s.asyncQ = nil, nil
}

// SetTracer installs a tracer recording one sched/dispatch span per request
// (staged → device done) with a queue.wait child. Nil disables tracing.
func (s *Scheduler) SetTracer(t *vtrace.Tracer) { s.trace = t }

// NewScheduler starts the dispatch process on eng.
func NewScheduler(eng *sim.Engine, dev *ssd.Device, mode SchedMode, costs Costs) *Scheduler {
	s := &Scheduler{eng: eng, dev: dev, mode: mode, costs: costs, kick: sim.NewBroadcast(eng)}
	eng.SpawnDaemon("kblockd", s.run)
	return s
}

// Submit stages a request for dispatch and returns it. The caller waits on
// req.Done for completion. Callable from processes and callbacks.
func (s *Scheduler) Submit(pages []ssd.PageWrite, sync bool) *Request {
	req := &Request{Pages: pages, Sync: sync, Done: sim.NewSignal(s.eng), submitted: s.eng.Now(), seq: s.nextSeq, span: s.trace.Scope()}
	s.nextSeq++
	s.live = append(s.live, req)
	if sync {
		s.syncQ = append(s.syncQ, req)
	} else {
		s.asyncQ = append(s.asyncQ, req)
	}
	s.kick.Notify()
	return req
}

// Stats returns cumulative scheduler counters.
func (s *Scheduler) Stats() SchedStats { return s.stats }

// QueueDepth reports requests currently staged (not yet dispatched).
func (s *Scheduler) QueueDepth() int { return len(s.syncQ) + len(s.asyncQ) }

func (s *Scheduler) pick() *Request {
	switch s.mode {
	case SchedSyncPriority:
		if len(s.syncQ) > 0 {
			req := s.syncQ[0]
			s.syncQ = s.syncQ[1:]
			return req
		}
		if len(s.asyncQ) > 0 {
			req := s.asyncQ[0]
			s.asyncQ = s.asyncQ[1:]
			return req
		}
	default: // SchedNone: strict FIFO across both queues by submit time
		switch {
		case len(s.syncQ) > 0 && len(s.asyncQ) > 0:
			if s.syncQ[0].seq <= s.asyncQ[0].seq {
				req := s.syncQ[0]
				s.syncQ = s.syncQ[1:]
				return req
			}
			req := s.asyncQ[0]
			s.asyncQ = s.asyncQ[1:]
			return req
		case len(s.syncQ) > 0:
			req := s.syncQ[0]
			s.syncQ = s.syncQ[1:]
			return req
		case len(s.asyncQ) > 0:
			req := s.asyncQ[0]
			s.asyncQ = s.asyncQ[1:]
			return req
		}
	}
	return nil
}

func (s *Scheduler) run(env *sim.Env) {
	for {
		req := s.pick()
		if req == nil {
			s.kick.Wait(env)
			continue
		}
		s.stats.Dispatched++
		if req.Sync {
			s.stats.SyncDispatched++
		}
		s.stats.QueueWait += env.Now().Sub(req.submitted)
		tr := s.trace
		var span vtrace.SpanID
		if tr.Enabled() {
			span = tr.Begin("sched", "dispatch", req.span, req.submitted)
			tr.SetArg(span, int64(len(req.Pages)))
			tr.Emit("sched", "queue.wait", span, req.submitted, env.Now(), 0)
		}
		env.Work("dispatch", s.costs.DispatchCPU)
		prev := tr.Scope()
		tr.SetScope(span)
		done, err := s.dev.WriteScattered(env.Now(), req.Pages)
		tr.SetScope(prev)
		// The device has consumed the payloads (state mutation is
		// synchronous; only completion timing is deferred).
		s.releasePages(req)
		if err != nil {
			tr.End(span, env.Now())
			req.Done.Fire(err)
			continue
		}
		tr.End(span, done)
		env.Engine().At(done, func() { req.Done.Fire(nil) })
	}
}
