package kernelio

import (
	"fmt"
	"sort"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
	"github.com/slimio/slimio/internal/vtrace"
)

// extentPages is the allocation granule: files grow by whole extents of
// device pages, which keeps sequential file data sequential in LBA space.
const extentPages = 64

// metaPages is the LBA region reserved at the front of the device for the
// filesystem journal / checkpoint area, written cyclically at every commit.
const metaPages = 64

// FSStats aggregates filesystem counters.
type FSStats struct {
	Syscalls        int64
	BytesWritten    int64
	BytesRead       int64
	Commits         int64
	WritebackPages  int64
	CacheHits       int64
	CacheMisses     int64
	ThrottleStalls  int64
	ThrottleTime    sim.Duration
	JournalLockWait sim.Duration
}

type cachePage struct {
	seg      *bufpool.Segment // pooled backing store for data
	data     []byte
	dirty    bool
	inflight bool
}

// free returns the page's pooled segment. The page must not be used after.
func (pg *cachePage) free() {
	pg.seg.Release()
	pg.seg = nil
	pg.data = nil
}

// File is an open file on the simulated filesystem. Dirty pages are never
// evicted and clean pages only via DropCaches, so partial-page rewrites
// always find their page cached — sufficient for the append-dominated access
// pattern of database persistence. Not safe for use outside simulation
// context.
type File struct {
	fs      *Filesystem
	name    string
	size    int64
	extents []int64 // base LPA per extent, in file order
	pages   map[int64]*cachePage
	// dirtyIdx preserves dirty-page order for deterministic flushing.
	dirtyIdx  []int64
	inflightN int
	// flushSeq counts writeback completions, so fsync can wait for exactly
	// the in-flight pages that preceded it instead of chasing a file that
	// is continuously re-dirtied.
	flushSeq  int64
	flushDone *sim.Broadcast
	deleted   bool
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file length in bytes.
func (f *File) Size() int64 { return f.size }

type dirtyRef struct {
	f   *File
	idx int64
}

// Filesystem simulates a journaling filesystem (EXT4- or F2FS-profiled) over
// a Device, complete with page cache, background writeback, dirty
// throttling, and a journal lock shared by every writer — the shared kernel
// I/O path of the paper's baseline.
type Filesystem struct {
	eng   *sim.Engine
	dev   *ssd.Device
	sched *Scheduler
	costs Costs
	prof  Profile

	journal *sim.Resource
	files   map[string]*File

	freeExtents []int64
	freshCursor int64

	metaCursor int64

	dirtyQ     []dirtyRef
	dirtyCount int
	wbInflight int
	wbKick     *sim.Broadcast
	drained    *sim.Broadcast

	// group-commit state
	nextTicket int64
	commitSeq  int64
	committing bool
	commitDone *sim.Broadcast
	stats      FSStats

	// placementHint, when set, tags each file's device writes with an FDP
	// placement ID derived from its name — modelling an FDP-aware
	// filesystem (Chen et al., "FDPFS"). Nil leaves all writes on PID 0.
	placementHint func(fileName string) uint32

	// tolerateUnwritten, set on a post-crash remount, makes reads of pages
	// that never reached the device return zeros instead of failing: a file
	// whose metadata was journaled but whose data writeback never ran reads
	// back as holes, exactly like ext4 in data=ordered after power loss.
	tolerateUnwritten bool

	// trace, when non-nil, records syscall-level spans (kernelio/write,
	// kernelio/fsync, kernelio/read) with journal.wait / throttle /
	// commit.wait children, plus kernelio/writeback root trees for the
	// background flusher. Shared with the scheduler via SetTracer.
	trace *vtrace.Tracer

	// pool is the device stack's shared page-buffer pool. Cache pages and
	// writeback copies both live in it; writeback submissions transfer their
	// references to the block scheduler, which releases them once the device
	// has consumed the request.
	pool *bufpool.Pool

	// commitRec is the reusable journal-commit record payload, submitted to
	// the device as a borrowed (non-pooled) reference at every commit.
	commitRec []byte
}

// newCachePage hands out a zeroed pooled page. Zeroing is load-bearing: the
// pool recycles segments, and a stale tail persisted past the file's logical
// end would read back after a crash as mid-page garbage — which WAL decoding
// classifies as corruption — instead of the clean all-zero tail an unwritten
// page is expected to show.
func (fs *Filesystem) newCachePage() *cachePage {
	s := fs.pool.Get()
	b := s.Bytes()
	clear(b)
	return &cachePage{seg: s, data: b}
}

// NewFilesystem mounts a fresh filesystem on dev, using the given scheduler
// mode. The first metaPages LPAs hold the journal; the rest is data space.
func NewFilesystem(eng *sim.Engine, dev *ssd.Device, prof Profile, mode SchedMode, costs Costs) *Filesystem {
	fs := &Filesystem{
		eng:         eng,
		dev:         dev,
		sched:       NewScheduler(eng, dev, mode, costs),
		costs:       costs,
		prof:        prof,
		journal:     sim.NewResource(eng, 1),
		files:       make(map[string]*File),
		freshCursor: metaPages,
		wbKick:      sim.NewBroadcast(eng),
		drained:     sim.NewBroadcast(eng),
		commitDone:  sim.NewBroadcast(eng),
		nextTicket:  1, // commitSeq starts at 0, so the first fsync commits
		pool:        dev.FTL().Array().Pool(),
		commitRec:   commitRecord(dev.PageSize()),
	}
	eng.SpawnDaemon("writeback:"+prof.Name, fs.writeback)
	return fs
}

// Device exposes the underlying device (for stats).
func (fs *Filesystem) Device() *ssd.Device { return fs.dev }

// SetTracer installs a tracer on the filesystem and its block-layer
// scheduler. Nil disables tracing.
func (fs *Filesystem) SetTracer(t *vtrace.Tracer) {
	fs.trace = t
	fs.sched.SetTracer(t)
}

// Tracer returns the installed tracer (nil when tracing is off), letting
// layers above the filesystem parent their spans on the same tracer.
func (fs *Filesystem) Tracer() *vtrace.Tracer { return fs.trace }

// SetPlacementHint installs a per-file placement-ID function, making this an
// FDP-aware filesystem (used by the FDP-only ablation). Pass nil to disable.
func (fs *Filesystem) SetPlacementHint(fn func(fileName string) uint32) { fs.placementHint = fn }

// pidOf resolves a file's placement ID.
func (fs *Filesystem) pidOf(name string) uint32 {
	if fs.placementHint == nil {
		return 0
	}
	return fs.placementHint(name)
}

// Scheduler exposes the block-layer scheduler (for stats).
func (fs *Filesystem) Scheduler() *Scheduler { return fs.sched }

// Profile reports the mounted filesystem profile.
func (fs *Filesystem) Profile() Profile { return fs.prof }

// Stats returns cumulative filesystem counters.
func (fs *Filesystem) Stats() FSStats { return fs.stats }

// DirtyPages reports pages awaiting writeback.
func (fs *Filesystem) DirtyPages() int { return fs.dirtyCount }

// WritebackInflight reports writeback commands submitted to the block
// layer and not yet reaped — the writeback queue depth the telemetry plane
// samples.
func (fs *Filesystem) WritebackInflight() int { return fs.wbInflight }

func (fs *Filesystem) pageSize() int64 { return int64(fs.dev.PageSize()) }

// allocExtent hands out one extent, reusing freed ones first.
func (fs *Filesystem) allocExtent() (int64, error) {
	if n := len(fs.freeExtents); n > 0 {
		base := fs.freeExtents[n-1]
		fs.freeExtents = fs.freeExtents[:n-1]
		return base, nil
	}
	if fs.freshCursor+extentPages > fs.dev.Capacity() {
		return 0, fmt.Errorf("kernelio: filesystem full (ENOSPC)")
	}
	base := fs.freshCursor
	fs.freshCursor += extentPages
	return base, nil
}

// Create makes a new empty file. Creating an existing name is an error.
func (fs *Filesystem) Create(name string) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("kernelio: file %q exists", name)
	}
	f := &File{
		fs:        fs,
		name:      name,
		pages:     make(map[int64]*cachePage),
		flushDone: sim.NewBroadcast(fs.eng),
	}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *Filesystem) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("kernelio: file %q does not exist", name)
	}
	return f, nil
}

// Exists reports whether name exists.
func (fs *Filesystem) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// CrashMounted reports whether this filesystem came from Remount — i.e. it
// is reading post-crash device state rather than its own live cache.
func (fs *Filesystem) CrashMounted() bool { return fs.tolerateUnwritten }

// Names lists every live file, sorted (directory scan at recovery).
func (fs *Filesystem) Names() []string {
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Remount builds a fresh Filesystem over the same device, modelling a crash
// and reboot: the file table (names, sizes, extent maps) survives because
// the simulated filesystem journals its metadata, the page cache starts
// cold, and dirty pages that never reached writeback are simply gone. Pages
// whose device LPA was never programmed read back as zeros on the new mount
// (tolerateUnwritten), which a WAL decoder treats as a clean unwritten tail.
// The old Filesystem must not be used afterwards.
func (fs *Filesystem) Remount(eng *sim.Engine) *Filesystem {
	nfs := &Filesystem{
		eng:               eng,
		dev:               fs.dev,
		sched:             NewScheduler(eng, fs.dev, fs.sched.mode, fs.costs),
		costs:             fs.costs,
		prof:              fs.prof,
		journal:           sim.NewResource(eng, 1),
		files:             make(map[string]*File),
		freeExtents:       append([]int64(nil), fs.freeExtents...),
		freshCursor:       fs.freshCursor,
		metaCursor:        fs.metaCursor,
		wbKick:            sim.NewBroadcast(eng),
		drained:           sim.NewBroadcast(eng),
		commitDone:        sim.NewBroadcast(eng),
		nextTicket:        1,
		placementHint:     fs.placementHint,
		tolerateUnwritten: true,
		pool:              fs.pool,
		commitRec:         commitRecord(fs.dev.PageSize()),
	}
	nfs.SetTracer(fs.trace)
	for name, f := range fs.files {
		if f.deleted {
			continue
		}
		nfs.files[name] = &File{
			fs:        nfs,
			name:      name,
			size:      f.size,
			extents:   append([]int64(nil), f.extents...),
			pages:     make(map[int64]*cachePage),
			flushDone: sim.NewBroadcast(eng),
		}
	}
	eng.SpawnDaemon("writeback:"+nfs.prof.Name, nfs.writeback)
	return nfs
}

// lpaOf maps a file page index to its device LPA, growing the file as
// needed.
func (f *File) lpaOf(idx int64) (int64, error) {
	for int64(len(f.extents))*extentPages <= idx {
		base, err := f.fs.allocExtent()
		if err != nil {
			return 0, err
		}
		f.extents = append(f.extents, base)
	}
	return f.extents[idx/extentPages] + idx%extentPages, nil
}

// Write implements the write(2) path: syscall entry, journal handle under
// the shared lock, user→kernel copy into the page cache, dirty accounting,
// and dirty-ratio throttling. It returns when the data is in the page cache
// (durability requires Fsync).
func (f *File) Write(env *sim.Env, off int64, data []byte) error {
	if f.deleted {
		return fmt.Errorf("kernelio: write to deleted file %q", f.name)
	}
	if off < 0 {
		return fmt.Errorf("kernelio: negative offset %d", off)
	}
	fs := f.fs
	fs.stats.Syscalls++
	fs.stats.BytesWritten += int64(len(data))
	tr := fs.trace
	span := tr.Begin("kernelio", "write", tr.Scope(), env.Now())
	tr.SetArg(span, int64(len(data)))
	defer func() { tr.End(span, env.Now()) }()
	env.Work(TagSyscall, fs.costs.SyscallEntry)

	// The filesystem write lock (jbd2 handle / f2fs curseg) is held across
	// the whole buffered write — the §3.1.2 scalability bottleneck when two
	// processes write at once. A contended acquisition additionally burns
	// CPU in the optimistic-spin slow path, which is what inflates the
	// snapshot process's in-filesystem CPU share under concurrent WAL
	// traffic (Table 2).
	t0 := env.Now()
	fs.journal.Acquire(env)
	waited := env.Now().Sub(t0)
	fs.stats.JournalLockWait += waited
	if waited > 0 {
		tr.Emit("kernelio", "journal.wait", span, t0, env.Now(), 0)
	}
	if spin := waited; spin > 0 {
		if spin > 20*sim.Microsecond {
			spin = 20 * sim.Microsecond
		}
		env.Work(TagFS, spin)
	}
	env.Work(TagFS, fs.prof.HandleHold)

	// Under dirty-page pressure the write path slows down: every page
	// dirtied runs balance_dirty_pages, allocator slow paths, and contended
	// tree updates. Model it as a cost multiplier that grows with the
	// dirty ratio.
	press := float64(fs.dirtyCount) / float64(fs.costs.DirtyThrottlePages)
	if press > 1 {
		press = 1
	}
	mult := 1 + 0.6*press

	// Copy user buffer into the cache (under the write lock).
	copyCost := sim.DurationForBytes(int64(len(data)), fs.costs.CopyBandwidth)
	env.Work(TagCopy, sim.Duration(float64(copyCost)*mult))

	ps := fs.pageSize()
	firstIdx := off / ps
	lastIdx := (off + int64(len(data)) - 1) / ps
	if len(data) == 0 {
		lastIdx = firstIdx - 1
	}
	nPages := lastIdx - firstIdx + 1
	fsCost := fs.prof.PerOpCPU + fs.prof.PerPageCPU*sim.Duration(nPages)
	env.Work(TagFS, sim.Duration(float64(fsCost)*mult))

	// Reserve all blocks up front so ENOSPC is atomic: a failed write must
	// leave no partial data behind (callers retry the whole buffer).
	if lastIdx >= firstIdx {
		if _, err := f.lpaOf(lastIdx); err != nil {
			fs.journal.Release()
			return err
		}
	}
	fs.journal.Release()

	pos := 0
	for idx := firstIdx; idx <= lastIdx; idx++ {
		pg := f.pages[idx]
		if pg == nil {
			pg = fs.newCachePage()
			f.pages[idx] = pg
		}
		pageOff := off + int64(pos) - idx*ps
		n := copy(pg.data[pageOff:], data[pos:])
		pos += n
		if !pg.dirty {
			pg.dirty = true
			f.dirtyIdx = append(f.dirtyIdx, idx)
			fs.dirtyQ = append(fs.dirtyQ, dirtyRef{f, idx})
			fs.dirtyCount++
		}
	}
	if off+int64(len(data)) > f.size {
		f.size = off + int64(len(data))
	}

	if fs.dirtyCount >= fs.costs.DirtyBackgroundPages {
		fs.wbKick.Notify()
	}
	// Dirty throttling: block the writer until writeback drains. This is
	// what punishes the snapshot process's high dirtying rate (§3.1.3).
	for fs.dirtyCount >= fs.costs.DirtyThrottlePages {
		fs.stats.ThrottleStalls++
		t := env.Now()
		fs.wbKick.Notify()
		fs.drained.Wait(env)
		fs.stats.ThrottleTime += env.Now().Sub(t)
		tr.Emit("kernelio", "throttle", span, t, env.Now(), int64(fs.dirtyCount))
	}
	return nil
}

// Append writes data at the current end of file.
func (f *File) Append(env *sim.Env, data []byte) error {
	return f.Write(env, f.size, data)
}

// collectDirty pulls up to max dirty pages of this file (in dirty order),
// marking them in flight, and returns the device writes plus the cache pages
// to un-flag once the device completes.
func (f *File) collectDirty(max int) ([]ssd.PageWrite, []*cachePage) {
	var out []ssd.PageWrite
	var flushed []*cachePage
	keep := f.dirtyIdx[:0]
	for i, idx := range f.dirtyIdx {
		if len(out) >= max {
			keep = append(keep, f.dirtyIdx[i])
			continue
		}
		pg := f.pages[idx]
		if pg == nil || !pg.dirty {
			continue
		}
		lpa, err := f.lpaOf(idx)
		if err != nil {
			continue // extent was already allocated at Write time
		}
		pg.dirty = false
		pg.inflight = true
		f.inflightN++
		f.fs.dirtyCount--
		s := f.fs.pool.Get()
		data := s.Bytes()[:len(pg.data)]
		copy(data, pg.data)
		out = append(out, ssd.PageWrite{LPA: lpa, Data: bufpool.Ref{Seg: s, B: data}, PID: f.fs.pidOf(f.name)})
		flushed = append(flushed, pg)
	}
	f.dirtyIdx = keep
	return out, flushed
}

// Fsync implements fsync(2): flush this file's dirty pages with synchronous
// priority, wait for any writeback already in flight, then run (or join) a
// journal commit. Group commit semantics: concurrent fsyncs share one
// commit, as jbd2 does.
func (f *File) Fsync(env *sim.Env) error {
	if f.deleted {
		return fmt.Errorf("kernelio: fsync of deleted file %q", f.name)
	}
	fs := f.fs
	fs.stats.Syscalls++
	tr := fs.trace
	span := tr.Begin("kernelio", "fsync", tr.Scope(), env.Now())
	defer func() { tr.End(span, env.Now()) }()
	env.Work(TagSyscall, fs.costs.SyscallEntry)
	ticket := fs.nextTicket
	fs.nextTicket++

	// Flush our dirty pages (sync priority, batched).
	for {
		batch, flushed := f.collectDirty(fs.costs.WritebackBatch)
		if len(batch) == 0 {
			break
		}
		tr.SetScope(span)
		req := fs.sched.Submit(batch, true)
		tr.SetScope(0)
		err, _ := req.Done.Wait(env).(error)
		if err != nil {
			return err
		}
		for _, pg := range flushed {
			pg.inflight = false
		}
		f.clearInflight(len(batch))
		fs.drained.Notify()
	}
	// Wait out pages the background flusher grabbed before this fsync —
	// and only those; pages dirtied and grabbed later belong to a future
	// sync.
	target := f.flushSeq + int64(f.inflightN)
	for f.flushSeq < target {
		f.flushDone.Wait(env)
	}

	// Journal commit with group semantics.
	for fs.commitSeq < ticket {
		if fs.committing {
			t := env.Now()
			fs.commitDone.Wait(env)
			tr.Emit("kernelio", "commit.wait", span, t, env.Now(), 0)
			continue
		}
		fs.committing = true
		covers := fs.nextTicket - 1
		t0 := env.Now()
		fs.journal.Acquire(env)
		fs.stats.JournalLockWait += env.Now().Sub(t0)
		commitSpan := tr.Begin("kernelio", "commit", span, env.Now())
		env.Work(TagFS, fs.prof.CommitHold)
		var metas []ssd.PageWrite
		for i := 0; i < fs.prof.CommitPages; i++ {
			lpa := fs.metaCursor % metaPages
			fs.metaCursor++
			metas = append(metas, ssd.PageWrite{LPA: lpa, Data: bufpool.Borrowed(fs.commitRec)})
		}
		tr.SetScope(commitSpan)
		req := fs.sched.Submit(metas, true)
		tr.SetScope(0)
		err, _ := req.Done.Wait(env).(error)
		tr.End(commitSpan, env.Now())
		fs.journal.Release()
		fs.committing = false
		fs.commitSeq = covers
		fs.stats.Commits++
		fs.commitDone.Notify()
		if err != nil {
			return err
		}
	}
	return nil
}

func commitRecord(pageSize int) []byte {
	rec := make([]byte, 64)
	copy(rec, "JOURNAL-COMMIT")
	if pageSize < len(rec) {
		rec = rec[:pageSize]
	}
	return rec
}

func (f *File) clearInflight(n int) {
	f.inflightN -= n
	if f.inflightN < 0 {
		f.inflightN = 0
	}
	f.flushSeq += int64(n)
	f.flushDone.Notify()
}

// Read implements the read(2) path: page-cache hits cost only the copy;
// misses read through to the device with sequential readahead.
func (f *File) Read(env *sim.Env, off int64, n int) ([]byte, error) {
	if f.deleted {
		return nil, fmt.Errorf("kernelio: read of deleted file %q", f.name)
	}
	if off < 0 {
		return nil, fmt.Errorf("kernelio: negative offset %d", off)
	}
	fs := f.fs
	fs.stats.Syscalls++
	tr := fs.trace
	span := tr.Begin("kernelio", "read", tr.Scope(), env.Now())
	tr.SetArg(span, int64(n))
	defer func() { tr.End(span, env.Now()) }()
	env.Work(TagSyscall, fs.costs.SyscallEntry)
	if off >= f.size {
		return nil, nil // EOF
	}
	if int64(n) > f.size-off {
		n = int(f.size - off)
	}
	ps := fs.pageSize()
	firstIdx := off / ps
	lastIdx := (off + int64(n) - 1) / ps

	for idx := firstIdx; idx <= lastIdx; idx++ {
		if pg := f.pages[idx]; pg != nil {
			fs.stats.CacheHits++
			continue
		}
		fs.stats.CacheMisses++
		tr.SetScope(span)
		err := f.fillFrom(env, idx)
		tr.SetScope(0)
		if err != nil {
			return nil, err
		}
	}

	out := make([]byte, n)
	pos := 0
	for idx := firstIdx; idx <= lastIdx; idx++ {
		pg := f.pages[idx]
		pageOff := off + int64(pos) - idx*ps
		pos += copy(out[pos:], pg.data[pageOff:])
	}
	env.Work(TagCopy, sim.DurationForBytes(int64(n), fs.costs.CopyBandwidth))
	fs.stats.BytesRead += int64(n)
	return out, nil
}

// fillFrom reads page idx plus a readahead window of LPA-contiguous
// following pages into the cache, blocking until the device completes.
func (f *File) fillFrom(env *sim.Env, idx int64) error {
	fs := f.fs
	ps := fs.pageSize()
	lastFileIdx := (f.size - 1) / ps
	run := int64(1)
	maxRun := int64(fs.costs.ReadAheadPages)
	for run < maxRun && idx+run <= lastFileIdx {
		if f.pages[idx+run] != nil {
			break // already cached; stop the run
		}
		if (idx+run)%extentPages == 0 {
			break // extent boundary: LPAs stop being contiguous
		}
		run++
	}
	lpa, err := f.lpaOf(idx)
	if err != nil {
		return err
	}
	if fs.tolerateUnwritten {
		// Post-crash mount: any page in the run may be a hole (allocated,
		// never flushed). Read page by page, substituting zeros for
		// unmapped LPAs without touching the device.
		for i := int64(0); i < run; i++ {
			// Read before taking a pooled page: the device wait can freeze
			// this process at a power cut, and a page held only by this stack
			// frame would leak.
			var data [][]byte
			if fs.dev.Mapped(lpa + i) {
				var err error
				data, err = fs.dev.Read(env, lpa+i, 1)
				if err != nil {
					return err
				}
			}
			pg := fs.newCachePage()
			if len(data) > 0 {
				copy(pg.data, data[0])
			}
			f.pages[idx+i] = pg
		}
		return nil
	}
	pages, err := fs.dev.Read(env, lpa, run)
	if err != nil {
		return err
	}
	for i := int64(0); i < run; i++ {
		pg := fs.newCachePage()
		copy(pg.data, pages[i])
		f.pages[idx+i] = pg
	}
	return nil
}

// Truncate shrinks the file to size bytes, dropping clean cached pages past
// the new end (extents stay allocated, as on a real filesystem until hole
// punching). Recovery uses it to cut a torn WAL tail before appends resume,
// the way Redis truncates a partial AOF at startup; at that point the cache
// holds no dirty pages, so only clean pages need dropping.
func (f *File) Truncate(size int64) {
	if size < 0 || size >= f.size {
		return
	}
	f.size = size
	ps := f.fs.pageSize()
	firstDead := (size + ps - 1) / ps
	for idx, pg := range f.pages {
		if idx >= firstDead && !pg.dirty && !pg.inflight {
			pg.free()
			delete(f.pages, idx)
		}
	}
}

// Delete drops the file: cached dirty data is discarded (deleting an
// un-synced file loses it, as on a real OS), in-flight writeback is awaited,
// and the file's extents are TRIMmed so the device learns the data is dead.
func (fs *Filesystem) Delete(env *sim.Env, name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("kernelio: file %q does not exist", name)
	}
	fs.stats.Syscalls++
	env.Work(TagSyscall, fs.costs.SyscallEntry)
	// Discard dirty pages.
	for _, idx := range f.dirtyIdx {
		if pg := f.pages[idx]; pg != nil && pg.dirty {
			pg.dirty = false
			fs.dirtyCount--
		}
	}
	f.dirtyIdx = nil
	fs.drained.Notify()
	// Wait only for writeback already in flight at entry (the file is hot;
	// new flushes of other files keep the flusher busy indefinitely).
	target := f.flushSeq + int64(f.inflightN)
	for f.flushSeq < target {
		f.flushDone.Wait(env)
	}
	f.deleted = true
	delete(fs.files, name)
	for _, base := range f.extents {
		if err := fs.dev.Deallocate(base, extentPages); err != nil {
			return err
		}
		fs.freeExtents = append(fs.freeExtents, base)
	}
	f.extents = nil
	for _, pg := range f.pages {
		pg.free()
	}
	f.pages = nil
	// Metadata update for the unlink.
	fs.journal.Acquire(env)
	env.Work(TagFS, fs.prof.HandleHold)
	fs.journal.Release()
	return nil
}

// DropCaches evicts every clean page from every file, simulating
// `echo 3 > /proc/sys/vm/drop_caches` before a cold-cache recovery run.
func (fs *Filesystem) DropCaches() {
	for _, f := range fs.files {
		for idx, pg := range f.pages {
			if !pg.dirty && !pg.inflight {
				pg.free()
				delete(f.pages, idx)
			}
		}
	}
}

// Close releases every pooled buffer the filesystem still holds — cached
// pages, and write payloads staged at (or frozen inside) the block
// scheduler. Teardown only, e.g. before a pool-quiescence check; the
// filesystem must not be used afterwards.
func (fs *Filesystem) Close() {
	fs.sched.DropPending()
	for _, f := range fs.files {
		for _, pg := range f.pages {
			pg.free()
		}
		f.pages = nil
		f.dirtyIdx = nil
	}
	fs.dirtyQ = nil
	fs.dirtyCount = 0
}

// wbInflight is one writeback command awaiting device completion.
type wbInflight struct {
	req     *Request
	touched []*File
	flushed []*cachePage
	span    vtrace.SpanID
}

// writeback is the background flusher daemon (one per filesystem): it drains
// the global dirty queue in batches with async priority, keeping up to
// WritebackQD commands in flight — the pipelining that lets the page cache
// absorb device hiccups which stall direct writers.
func (fs *Filesystem) writeback(env *sim.Env) {
	qd := fs.costs.WritebackQD
	if qd < 1 {
		qd = 1
	}
	var inflight []wbInflight
	for {
		// Fill the pipeline.
		for len(inflight) < qd && len(fs.dirtyQ) > 0 {
			var batch []ssd.PageWrite
			var touched []*File
			var flushed []*cachePage
			for len(fs.dirtyQ) > 0 && len(batch) < fs.costs.WritebackBatch {
				ref := fs.dirtyQ[0]
				fs.dirtyQ = fs.dirtyQ[1:]
				if ref.f.deleted || ref.f.pages == nil {
					continue
				}
				pg := ref.f.pages[ref.idx]
				if pg == nil || !pg.dirty {
					continue // already flushed by fsync or deleted
				}
				lpa, err := ref.f.lpaOf(ref.idx)
				if err != nil {
					continue
				}
				pg.dirty = false
				pg.inflight = true
				ref.f.inflightN++
				fs.dirtyCount--
				// Remove from the file's own dirty list lazily: collectDirty
				// skips non-dirty entries.
				s := fs.pool.Get()
				data := s.Bytes()[:len(pg.data)]
				copy(data, pg.data)
				batch = append(batch, ssd.PageWrite{LPA: lpa, Data: bufpool.Ref{Seg: s, B: data}, PID: fs.pidOf(ref.f.name)})
				touched = append(touched, ref.f)
				flushed = append(flushed, pg)
			}
			if len(batch) == 0 {
				break
			}
			tr := fs.trace
			wbSpan := tr.Begin("kernelio", "writeback", 0, env.Now())
			tr.SetArg(wbSpan, int64(len(batch)))
			tr.SetScope(wbSpan)
			req := fs.sched.Submit(batch, false)
			tr.SetScope(0)
			inflight = append(inflight, wbInflight{
				req:     req,
				touched: touched,
				flushed: flushed,
				span:    wbSpan,
			})
			fs.wbInflight = len(inflight)
		}
		if len(inflight) == 0 {
			fs.wbKick.Wait(env)
			continue
		}
		// Reap the oldest command.
		w := inflight[0]
		inflight = inflight[1:]
		fs.wbInflight = len(inflight)
		w.req.Done.Wait(env)
		fs.trace.End(w.span, env.Now())
		fs.stats.WritebackPages += int64(len(w.req.Pages))
		for i, f := range w.touched {
			w.flushed[i].inflight = false
			f.clearInflight(1)
		}
		fs.drained.Notify()
	}
}

// Rename atomically renames a file, replacing any existing target (the
// rename(2) semantics Redis relies on to publish "dump.rdb.tmp" as the live
// snapshot).
func (fs *Filesystem) Rename(env *sim.Env, oldName, newName string) error {
	f, ok := fs.files[oldName]
	if !ok {
		return fmt.Errorf("kernelio: rename: %q does not exist", oldName)
	}
	fs.stats.Syscalls++
	env.Work(TagSyscall, fs.costs.SyscallEntry)
	if _, ok := fs.files[newName]; ok {
		if err := fs.Delete(env, newName); err != nil {
			return err
		}
	}
	fs.journal.Acquire(env)
	env.Work(TagFS, fs.prof.HandleHold)
	fs.journal.Release()
	delete(fs.files, oldName)
	f.name = newName
	fs.files[newName] = f
	return nil
}
