// Package kernelio models the traditional Linux kernel I/O path that the
// paper's baseline rides: POSIX syscalls with user↔kernel copies, a page
// cache with dirty-ratio writeback throttling, a journaling filesystem whose
// lock is shared by all writers, and a block-layer I/O scheduler.
//
// The model reproduces the four baseline pathologies analysed in §3.1 of the
// paper as explicit mechanisms:
//
//  1. syscall overhead — per-call entry cost plus copy bandwidth (§3.1.1);
//  2. filesystem scalability — a journal lock every writer contends on
//     (§3.1.2, Table 2);
//  3. pattern-blindness — frequent small writes pay per-call costs and
//     throttling that one large buffered write amortizes (§3.1.3);
//  4. no lifetime control — all data funnels into the device as one stream,
//     so a conventional FTL mixes lifetimes and GC copies valid data
//     (§3.1.4).
package kernelio

import "github.com/slimio/slimio/internal/sim"

// Costs are the filesystem-independent path constants. Defaults are in the
// range reported by storage-API studies on modern kernels (Didona et al.,
// SYSTOR'22; Ren & Trivedi, CHEOPS'23), chosen so that the kernel path
// consumes ~15% of a snapshot's duration when running alone, matching
// Figure 2a of the paper.
type Costs struct {
	// SyscallEntry is charged on every read/write/fsync call: mode switch,
	// entry/exit bookkeeping, VFS dispatch.
	SyscallEntry sim.Duration
	// CopyBandwidth is the user↔kernel memcpy rate in bytes/second.
	CopyBandwidth int64
	// DispatchCPU is the block-layer cost to dispatch one request
	// (blk-mq tag allocation, plug/unplug, scheduler bookkeeping).
	DispatchCPU sim.Duration
	// WritebackBatch is the number of dirty pages the background flusher
	// writes per device command.
	WritebackBatch int
	// WritebackQD is how many writeback commands the flusher keeps in
	// flight; the pipeline is what lets the page cache ride out device
	// hiccups (GC bursts) that stall direct writers.
	WritebackQD int
	// DirtyBackgroundPages starts background writeback.
	DirtyBackgroundPages int
	// DirtyThrottlePages blocks writers until writeback drains below it.
	DirtyThrottlePages int
	// ReadAheadPages is the page-cache readahead window for sequential reads.
	ReadAheadPages int
}

// DefaultCosts returns the calibrated path constants.
func DefaultCosts() Costs {
	return Costs{
		SyscallEntry:         1200 * sim.Nanosecond,
		CopyBandwidth:        2 << 30, // 2 GiB/s effective (page alloc + accounting)
		DispatchCPU:          2 * sim.Microsecond,
		WritebackBatch:       64,
		WritebackQD:          4,
		DirtyBackgroundPages: 1024, // 4 MiB at 4 KiB pages
		DirtyThrottlePages:   4096, // 16 MiB
		ReadAheadPages:       32,
	}
}

// Profile captures how a specific filesystem behaves on the write path. The
// two profiles mirror the paper's Table 1 pairing: EXT4 (ordered journaling,
// a jbd2 handle on every write and a heavier commit) and F2FS (log-
// structured, lighter per-op metadata but still a shared lock).
type Profile struct {
	Name string
	// HandleHold is CPU spent under the journal lock on every write call
	// (jbd2 handle start/stop for EXT4, curseg lock for F2FS).
	HandleHold sim.Duration
	// CommitHold is CPU spent under the journal lock at each fsync commit.
	CommitHold sim.Duration
	// CommitPages is the number of metadata pages durably written per
	// fsync commit (journal descriptor+commit blocks / node blocks).
	CommitPages int
	// PerOpCPU is write-path bookkeeping outside the lock (extent lookup,
	// dirty accounting) per call.
	PerOpCPU sim.Duration
	// PerPageCPU is charged for every page dirtied by a call.
	PerPageCPU sim.Duration
}

// EXT4 returns the ext4-like profile.
func EXT4() Profile {
	return Profile{
		Name:        "ext4",
		HandleHold:  900 * sim.Nanosecond,
		CommitHold:  6 * sim.Microsecond,
		CommitPages: 2,
		PerOpCPU:    1500 * sim.Nanosecond,
		PerPageCPU:  350 * sim.Nanosecond,
	}
}

// F2FS returns the f2fs-like profile: better but not perfect scalability
// (paper §3.1.2).
func F2FS() Profile {
	return Profile{
		Name:        "f2fs",
		HandleHold:  500 * sim.Nanosecond,
		CommitHold:  4 * sim.Microsecond,
		CommitPages: 1,
		PerOpCPU:    1300 * sim.Nanosecond,
		PerPageCPU:  300 * sim.Nanosecond,
	}
}

// CPU billing tags used with sim.Env.Work so experiments can attribute
// process busy time (Table 2 reports the "fs" share of the snapshot
// process).
const (
	TagSyscall = "syscall"
	TagCopy    = "copy"
	TagFS      = "fs"
)
