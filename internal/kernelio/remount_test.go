package kernelio

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
)

func newRemountRig(t *testing.T) (*sim.Engine, *ssd.Device, *Filesystem) {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 16, PagesPerBlock: 8, PageSize: 512}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	dev := ssd.New(ftl.New(arr, ftl.Config{}), ssd.Config{})
	return eng, dev, NewFilesystem(eng, dev, F2FS(), SchedNone, DefaultCosts())
}

// Remount models a crash: a new filesystem over the same device with the
// journaled file table but a cold cache. Fsynced bytes must read back; dirty
// bytes that never hit the device must come back as zeros, not garbage and
// not an I/O error.
func TestRemountLosesDirtyKeepsDurable(t *testing.T) {
	eng, _, fs := newRemountRig(t)
	durable := bytes.Repeat([]byte("D"), 1500) // ~3 pages
	dirty := bytes.Repeat([]byte("x"), 900)
	eng.Spawn("writer", func(env *sim.Env) {
		f, err := fs.Create("f.log")
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.Append(env, durable); err != nil {
			t.Error(err)
			return
		}
		if err := f.Fsync(env); err != nil {
			t.Error(err)
			return
		}
		// Never synced: dies with the cache at the crash.
		if err := f.Append(env, dirty); err != nil {
			t.Error(err)
		}
	})
	eng.Run()

	eng2 := sim.NewEngine()
	nfs := fs.Remount(eng2)
	if !nfs.CrashMounted() {
		t.Fatal("remounted filesystem does not report CrashMounted")
	}
	if fs.CrashMounted() {
		t.Fatal("live filesystem reports CrashMounted")
	}
	eng2.Spawn("reader", func(env *sim.Env) {
		f, err := nfs.Open("f.log")
		if err != nil {
			t.Error(err)
			return
		}
		if f.Size() != int64(len(durable)+len(dirty)) {
			t.Errorf("size = %d, want %d (journaled metadata survives)", f.Size(), len(durable)+len(dirty))
			return
		}
		got, err := f.Read(env, 0, int(f.Size()))
		if err != nil {
			t.Errorf("read after remount: %v", err)
			return
		}
		if !bytes.Equal(got[:len(durable)], durable) {
			t.Error("fsynced bytes did not survive the remount")
		}
		// The unsynced range may be partially present (writeback races the
		// crash) but never garbage: each byte is either the written value or
		// zero from an unwritten page.
		for i, b := range got[len(durable):] {
			if b != 0 && b != 'x' {
				t.Errorf("unsynced byte %d = %#x, want 0 or the written value", i, b)
				return
			}
		}
	})
	eng2.Run()
}

// The file table (names, sizes, extents) is journaled metadata: every file,
// including ones never fsynced, must still be listed after a remount.
func TestRemountKeepsFileTable(t *testing.T) {
	eng, _, fs := newRemountRig(t)
	eng.Spawn("writer", func(env *sim.Env) {
		for i := 0; i < 3; i++ {
			f, err := fs.Create(fmt.Sprintf("seg.%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			if err := f.Append(env, []byte("data")); err != nil {
				t.Error(err)
				return
			}
		}
		if err := fs.Delete(env, "seg.1"); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	nfs := fs.Remount(sim.NewEngine())
	names := nfs.Names()
	if len(names) != 2 || names[0] != "seg.0" || names[1] != "seg.2" {
		t.Fatalf("names after remount = %v, want [seg.0 seg.2]", names)
	}
}

// Truncate shrinks the logical size and drops cached pages past the cut, so
// appends resume at the durable prefix (the Redis AOF-truncation flow).
func TestTruncateThenAppendContinues(t *testing.T) {
	eng, _, fs := newRemountRig(t)
	eng.Spawn("writer", func(env *sim.Env) {
		f, err := fs.Create("aof")
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.Append(env, bytes.Repeat([]byte("A"), 1000)); err != nil {
			t.Error(err)
			return
		}
		f.Truncate(2000) // no-op past the end
		if f.Size() != 1000 {
			t.Errorf("grow-truncate changed size to %d", f.Size())
		}
		f.Truncate(600)
		if f.Size() != 600 {
			t.Errorf("size after truncate = %d, want 600", f.Size())
			return
		}
		if err := f.Append(env, bytes.Repeat([]byte("B"), 100)); err != nil {
			t.Error(err)
			return
		}
		got, err := f.Read(env, 0, int(f.Size()))
		if err != nil {
			t.Error(err)
			return
		}
		want := append(bytes.Repeat([]byte("A"), 600), bytes.Repeat([]byte("B"), 100)...)
		if !bytes.Equal(got, want) {
			t.Error("append after truncate did not resume at the cut")
		}
	})
	eng.Run()
}
