package kernelio

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
)

// rig bundles a fresh engine + device + filesystem for tests.
type rig struct {
	eng *sim.Engine
	dev *ssd.Device
	fs  *Filesystem
}

func newRig(t *testing.T, prof Profile, mode SchedMode) *rig {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 32, PagesPerBlock: 16, PageSize: 512}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	dev := ssd.New(ftl.New(arr, ftl.Config{}), ssd.Config{})
	return &rig{eng: eng, dev: dev, fs: NewFilesystem(eng, dev, prof, mode, DefaultCosts())}
}

// run executes fn as a process and drains the engine.
func (r *rig) run(t *testing.T, fn func(env *sim.Env)) {
	t.Helper()
	r.eng.Spawn("test", fn)
	r.eng.Run()
}

func TestWriteFsyncReadRoundTrip(t *testing.T) {
	r := newRig(t, F2FS(), SchedNone)
	payload := bytes.Repeat([]byte("slimio!"), 500) // 3.5 KiB, crosses pages
	r.run(t, func(env *sim.Env) {
		f, err := r.fs.Create("dump.rdb")
		if err != nil {
			t.Error(err)
			return
		}
		if err := f.Write(env, 0, payload); err != nil {
			t.Error(err)
			return
		}
		if err := f.Fsync(env); err != nil {
			t.Error(err)
			return
		}
		got, err := f.Read(env, 0, len(payload))
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, payload) {
			t.Error("round trip mismatch")
		}
	})
}

func TestReadAfterDropCaches(t *testing.T) {
	r := newRig(t, EXT4(), SchedNone)
	payload := bytes.Repeat([]byte("x9"), 4000) // 8 KiB
	r.run(t, func(env *sim.Env) {
		f, _ := r.fs.Create("wal.log")
		if err := f.Write(env, 0, payload); err != nil {
			t.Error(err)
			return
		}
		if err := f.Fsync(env); err != nil {
			t.Error(err)
			return
		}
		r.fs.DropCaches()
		before := r.fs.Stats().CacheMisses
		got, err := f.Read(env, 0, len(payload))
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(got, payload) {
			t.Error("cold read mismatch")
		}
		if r.fs.Stats().CacheMisses == before {
			t.Error("cold read did not miss the cache")
		}
	})
}

func TestReadAheadReducesDeviceRounds(t *testing.T) {
	r := newRig(t, F2FS(), SchedNone)
	n := 64 * 512 // 64 pages
	payload := bytes.Repeat([]byte("r"), n)
	var seqTime sim.Duration
	r.run(t, func(env *sim.Env) {
		f, _ := r.fs.Create("seq")
		if err := f.Write(env, 0, payload); err != nil {
			t.Error(err)
			return
		}
		if err := f.Fsync(env); err != nil {
			t.Error(err)
			return
		}
		r.fs.DropCaches()
		t0 := env.Now()
		for off := 0; off < n; off += 512 {
			if _, err := f.Read(env, int64(off), 512); err != nil {
				t.Error(err)
				return
			}
		}
		seqTime = env.Now().Sub(t0)
	})
	// With RA=32 the device should be visited ~2 times, not 64: total time
	// must be well under 64 sequential uncached page reads.
	naive := sim.Duration(64) * (nand.DefaultLatencies().PageRead + 20*sim.Microsecond)
	if seqTime >= naive {
		t.Fatalf("sequential read %v not helped by readahead (naive %v)", seqTime, naive)
	}
}

func TestDirtyDataLostWithoutFsync(t *testing.T) {
	r := newRig(t, F2FS(), SchedNone)
	r.run(t, func(env *sim.Env) {
		f, _ := r.fs.Create("tmp")
		if err := f.Write(env, 0, []byte("volatile")); err != nil {
			t.Error(err)
			return
		}
		// Deleting with dirty data discards it; device never sees a write.
		before := r.dev.Stats().HostWritePages
		if err := r.fs.Delete(env, "tmp"); err != nil {
			t.Error(err)
			return
		}
		if got := r.dev.Stats().HostWritePages; got != before {
			t.Errorf("deleted dirty file reached the device: %d pages", got-before)
		}
	})
}

func TestDeleteTrimsExtents(t *testing.T) {
	r := newRig(t, F2FS(), SchedNone)
	r.run(t, func(env *sim.Env) {
		f, _ := r.fs.Create("old-snapshot")
		data := bytes.Repeat([]byte("s"), 512*10)
		if err := f.Write(env, 0, data); err != nil {
			t.Error(err)
			return
		}
		if err := f.Fsync(env); err != nil {
			t.Error(err)
			return
		}
		if err := r.fs.Delete(env, "old-snapshot"); err != nil {
			t.Error(err)
			return
		}
		if r.fs.Exists("old-snapshot") {
			t.Error("file still exists")
		}
		// A new file reuses the freed extent.
		f2, _ := r.fs.Create("new")
		if err := f2.Write(env, 0, []byte("n")); err != nil {
			t.Error(err)
			return
		}
	})
}

func TestWriteToDeletedFileFails(t *testing.T) {
	r := newRig(t, F2FS(), SchedNone)
	r.run(t, func(env *sim.Env) {
		f, _ := r.fs.Create("gone")
		if err := r.fs.Delete(env, "gone"); err != nil {
			t.Error(err)
			return
		}
		if err := f.Write(env, 0, []byte("x")); err == nil {
			t.Error("write to deleted file succeeded")
		}
		if err := f.Fsync(env); err == nil {
			t.Error("fsync of deleted file succeeded")
		}
		if _, err := f.Read(env, 0, 1); err == nil {
			t.Error("read of deleted file succeeded")
		}
	})
}

func TestCreateDuplicateFails(t *testing.T) {
	r := newRig(t, F2FS(), SchedNone)
	if _, err := r.fs.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.Create("a"); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := r.fs.Open("missing"); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestAppendGrowsFile(t *testing.T) {
	r := newRig(t, F2FS(), SchedNone)
	r.run(t, func(env *sim.Env) {
		f, _ := r.fs.Create("log")
		for i := 0; i < 10; i++ {
			if err := f.Append(env, []byte("entry-")); err != nil {
				t.Error(err)
				return
			}
		}
		if f.Size() != 60 {
			t.Errorf("size = %d, want 60", f.Size())
		}
		got, err := f.Read(env, 54, 6)
		if err != nil || string(got) != "entry-" {
			t.Errorf("tail read = %q, %v", got, err)
		}
	})
}

func TestFsyncDurability(t *testing.T) {
	// After fsync, the device itself must hold the bytes (read the LPAs
	// directly, bypassing the cache).
	r := newRig(t, EXT4(), SchedNone)
	r.run(t, func(env *sim.Env) {
		f, _ := r.fs.Create("durable")
		payload := bytes.Repeat([]byte("D"), 512)
		if err := f.Write(env, 0, payload); err != nil {
			t.Error(err)
			return
		}
		if err := f.Fsync(env); err != nil {
			t.Error(err)
			return
		}
		lpa, err := f.lpaOf(0)
		if err != nil {
			t.Error(err)
			return
		}
		pages, err := r.dev.Read(env, lpa, 1)
		if err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(pages[0], payload) {
			t.Error("device does not hold fsynced bytes")
		}
	})
}

func TestJournalContentionBetweenProcesses(t *testing.T) {
	// Two writers on one filesystem must contend on the journal lock.
	r := newRig(t, EXT4(), SchedNone)
	buf := bytes.Repeat([]byte("c"), 256)
	writer := func(name string) func(*sim.Env) {
		return func(env *sim.Env) {
			f, err := r.fs.Create(name)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 200; i++ {
				if err := f.Append(env, buf); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}
	r.eng.Spawn("w1", writer("f1"))
	r.eng.Spawn("w2", writer("f2"))
	r.eng.Run()
	if r.fs.Stats().JournalLockWait == 0 {
		t.Fatal("no journal contention observed between concurrent writers")
	}
}

func TestDirtyThrottlingStallsFastWriter(t *testing.T) {
	// Tight thresholds so the test device can hold the burst.
	costs := DefaultCosts()
	costs.DirtyBackgroundPages = 64
	costs.DirtyThrottlePages = 256
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 32, PagesPerBlock: 16, PageSize: 512}
	arr, _ := nand.New(geo, nand.DefaultLatencies())
	eng := sim.NewEngine()
	dev := ssd.New(ftl.New(arr, ftl.Config{}), ssd.Config{})
	r := &rig{eng: eng, dev: dev, fs: NewFilesystem(eng, dev, F2FS(), SchedNone, costs)}
	page := bytes.Repeat([]byte("t"), 512)
	r.run(t, func(env *sim.Env) {
		f, _ := r.fs.Create("burst")
		// Write far beyond the throttle threshold as fast as possible.
		for i := 0; i < costs.DirtyThrottlePages*4; i++ {
			if err := f.Append(env, page); err != nil {
				t.Error(err)
				return
			}
		}
	})
	s := r.fs.Stats()
	if s.ThrottleStalls == 0 {
		t.Fatal("burst writer was never throttled")
	}
	if s.ThrottleTime == 0 {
		t.Fatal("throttle stalls accumulated no time")
	}
}

func TestSyncPrioritySchedulerFavorsFsync(t *testing.T) {
	// Submit a big async backlog, then a sync request: under sync-priority
	// it must dispatch before the backlog; under none it waits its turn.
	latency := func(mode SchedMode) sim.Duration {
		geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 32, PagesPerBlock: 16, PageSize: 512}
		arr, _ := nand.New(geo, nand.DefaultLatencies())
		eng := sim.NewEngine()
		dev := ssd.New(ftl.New(arr, ftl.Config{}), ssd.Config{})
		sched := NewScheduler(eng, dev, mode, DefaultCosts())
		var lat sim.Duration
		eng.Spawn("submitter", func(env *sim.Env) {
			page := make([]byte, 512)
			for i := 0; i < 100; i++ {
				sched.Submit([]ssd.PageWrite{{LPA: int64(100 + i), Data: bufpool.Borrowed(page)}}, false)
			}
			req := sched.Submit([]ssd.PageWrite{{LPA: 50, Data: bufpool.Borrowed(page)}}, true)
			t0 := env.Now()
			req.Done.Wait(env)
			lat = env.Now().Sub(t0)
		})
		eng.Run()
		return lat
	}
	none, prio := latency(SchedNone), latency(SchedSyncPriority)
	if prio >= none {
		t.Fatalf("sync-priority latency %v not better than none %v", prio, none)
	}
}

func TestGroupCommitSharesJournalWrites(t *testing.T) {
	// Many processes fsyncing small appends concurrently must produce far
	// fewer commits than fsyncs.
	r := newRig(t, EXT4(), SchedSyncPriority)
	const writers = 16
	const rounds = 8
	for w := 0; w < writers; w++ {
		name := fmt.Sprintf("f%d", w)
		r.eng.Spawn(name, func(env *sim.Env) {
			f, err := r.fs.Create(name)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < rounds; i++ {
				if err := f.Append(env, []byte("e")); err != nil {
					t.Error(err)
					return
				}
				if err := f.Fsync(env); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	r.eng.Run()
	commits := r.fs.Stats().Commits
	if commits == 0 {
		t.Fatal("no commits")
	}
	if commits >= writers*rounds {
		t.Fatalf("commits = %d, want group commit to merge %d fsyncs", commits, writers*rounds)
	}
}

func TestCPUBillingTags(t *testing.T) {
	r := newRig(t, F2FS(), SchedNone)
	var p *sim.Proc
	p = r.eng.Spawn("snapshotter", func(env *sim.Env) {
		f, _ := r.fs.Create("dump")
		for i := 0; i < 50; i++ {
			if err := f.Append(env, bytes.Repeat([]byte("b"), 512)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := f.Fsync(env); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if p.BusyTime(TagSyscall) == 0 {
		t.Error("no syscall CPU billed")
	}
	if p.BusyTime(TagFS) == 0 {
		t.Error("no fs CPU billed")
	}
	if p.BusyTime(TagCopy) == 0 {
		t.Error("no copy CPU billed")
	}
}

func TestConcurrentWritersIntegrity(t *testing.T) {
	// WAL-style appender + snapshot-style bulk writer sharing the fs: both
	// files must read back intact.
	r := newRig(t, EXT4(), SchedSyncPriority)
	rng := rand.New(rand.NewSource(5))
	walData := make([][]byte, 100)
	for i := range walData {
		walData[i] = []byte(fmt.Sprintf("wal-entry-%03d;", i))
	}
	snapData := bytes.Repeat([]byte("SNAPSHOT"), 2048) // 16 KiB
	_ = rng
	r.eng.Spawn("wal", func(env *sim.Env) {
		f, err := r.fs.Create("wal")
		if err != nil {
			t.Error(err)
			return
		}
		for _, e := range walData {
			if err := f.Append(env, e); err != nil {
				t.Error(err)
				return
			}
			if err := f.Fsync(env); err != nil {
				t.Error(err)
				return
			}
		}
	})
	r.eng.Spawn("snap", func(env *sim.Env) {
		f, err := r.fs.Create("snap")
		if err != nil {
			t.Error(err)
			return
		}
		for off := 0; off < len(snapData); off += 512 {
			end := off + 512
			if end > len(snapData) {
				end = len(snapData)
			}
			if err := f.Write(env, int64(off), snapData[off:end]); err != nil {
				t.Error(err)
				return
			}
		}
		if err := f.Fsync(env); err != nil {
			t.Error(err)
			return
		}
	})
	r.eng.Run()
	// Verify both files.
	r.eng.Spawn("verify", func(env *sim.Env) {
		r.fs.DropCaches()
		wal, _ := r.fs.Open("wal")
		var want []byte
		for _, e := range walData {
			want = append(want, e...)
		}
		got, err := wal.Read(env, 0, len(want))
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("wal corrupted: %v", err)
		}
		snap, _ := r.fs.Open("snap")
		got, err = snap.Read(env, 0, len(snapData))
		if err != nil || !bytes.Equal(got, snapData) {
			t.Errorf("snapshot corrupted: %v", err)
		}
	})
	r.eng.Run()
}

func TestReadPastEOF(t *testing.T) {
	r := newRig(t, F2FS(), SchedNone)
	r.run(t, func(env *sim.Env) {
		f, _ := r.fs.Create("short")
		if err := f.Write(env, 0, []byte("abc")); err != nil {
			t.Error(err)
			return
		}
		got, err := f.Read(env, 10, 5)
		if err != nil || got != nil {
			t.Errorf("read past EOF = %q, %v", got, err)
		}
		got, err = f.Read(env, 1, 100)
		if err != nil || string(got) != "bc" {
			t.Errorf("short read = %q, %v", got, err)
		}
	})
}

func TestSchedulerStats(t *testing.T) {
	r := newRig(t, F2FS(), SchedSyncPriority)
	r.run(t, func(env *sim.Env) {
		f, _ := r.fs.Create("x")
		if err := f.Write(env, 0, bytes.Repeat([]byte("z"), 2048)); err != nil {
			t.Error(err)
			return
		}
		if err := f.Fsync(env); err != nil {
			t.Error(err)
			return
		}
	})
	s := r.fs.Scheduler().Stats()
	if s.Dispatched == 0 || s.SyncDispatched == 0 {
		t.Fatalf("scheduler stats empty: %+v", s)
	}
}

func TestENOSPC(t *testing.T) {
	// Tiny device: writing beyond capacity must surface ENOSPC.
	geo := nand.Geometry{Channels: 1, DiesPerChannel: 1, BlocksPerDie: 8, PagesPerBlock: 16, PageSize: 512}
	arr, _ := nand.New(geo, nand.DefaultLatencies())
	eng := sim.NewEngine()
	dev := ssd.New(ftl.New(arr, ftl.Config{}), ssd.Config{})
	fs := NewFilesystem(eng, dev, F2FS(), SchedNone, DefaultCosts())
	var sawErr bool
	eng.Spawn("filler", func(env *sim.Env) {
		f, _ := fs.Create("big")
		chunk := bytes.Repeat([]byte("f"), 512)
		for i := 0; i < 10000; i++ {
			if err := f.Append(env, chunk); err != nil {
				sawErr = true
				return
			}
		}
	})
	eng.Run()
	if !sawErr {
		t.Fatal("filesystem never reported ENOSPC")
	}
}
