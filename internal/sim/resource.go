package sim

// Resource is a counted resource with FIFO admission: up to Capacity holders
// at once, waiters served in arrival order. With Capacity 1 it is a fair
// mutex; the simulation uses it for locks (filesystem journal, in-memory
// dictionary) and bounded service stations.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	// waiters is a ring, not a `w = w[1:]` slice: the backing array is
	// reused forever, so steady-state acquire/release never allocates.
	waiters ring[*Proc]

	// contention statistics
	acquisitions int64
	waited       int64
	waitTime     Duration
}

// NewResource returns a resource admitting up to capacity concurrent
// holders. Capacity must be positive.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: Resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Acquire blocks the calling process until a slot is available and takes it.
func (r *Resource) Acquire(env *Env) {
	r.acquisitions++
	if r.inUse < r.capacity && r.waiters.len() == 0 {
		r.inUse++
		return
	}
	r.waited++
	start := env.Now()
	r.waiters.push(env.p)
	env.park()
	// The releaser transferred the slot to us (inUse stays counted).
	r.waitTime += env.Now().Sub(start)
}

// TryAcquire takes a slot if one is free, without blocking.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && r.waiters.len() == 0 {
		r.inUse++
		r.acquisitions++
		return true
	}
	return false
}

// Release frees a slot, handing it directly to the oldest waiter if any.
// Callable from a process or an engine callback.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of un-acquired Resource")
	}
	if r.waiters.len() > 0 {
		// Transfer the slot: inUse is unchanged, the waiter now holds it.
		r.eng.wakeAt(r.eng.now, r.waiters.pop())
		return
	}
	r.inUse--
}

// InUse reports the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of parked waiters.
func (r *Resource) QueueLen() int { return r.waiters.len() }

// Acquisitions reports the total number of Acquire/TryAcquire grants
// attempted (successful TryAcquire and every Acquire).
func (r *Resource) Acquisitions() int64 { return r.acquisitions }

// ContendedAcquisitions reports how many Acquire calls had to wait.
func (r *Resource) ContendedAcquisitions() int64 { return r.waited }

// TotalWaitTime reports the cumulative virtual time processes spent parked
// on this resource.
func (r *Resource) TotalWaitTime() Duration { return r.waitTime }

// Timeline models a serially-occupied facility (a NAND die, a DMA engine) as
// a busy-until horizon instead of a queue of parked processes. Reserving
// work returns the interval it will occupy; callers schedule their own
// completion callbacks. This is far cheaper than a Resource for components
// with very high event rates and preserves FIFO service order exactly.
type Timeline struct {
	busyUntil Time
	busyTotal Duration
}

// Reserve books d of exclusive service starting no earlier than now and no
// earlier than the end of previously reserved work. It returns the start and
// end of the booked interval and advances the horizon to end.
func (tl *Timeline) Reserve(now Time, d Duration) (start, end Time) {
	start = now
	if tl.busyUntil > start {
		start = tl.busyUntil
	}
	end = start.Add(d)
	tl.busyUntil = end
	tl.busyTotal += d
	return start, end
}

// BusyUntil reports the current service horizon.
func (tl *Timeline) BusyUntil() Time { return tl.busyUntil }

// BusyTotal reports cumulative reserved service time, for utilization stats.
func (tl *Timeline) BusyTotal() Duration { return tl.busyTotal }
