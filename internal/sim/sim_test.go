package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %v, want 30", e.Now())
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-timestamp events ran out of order: %v", got)
		}
	}
}

func TestPastEventClampsToNow(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(100, func() {
		e.At(50, func() { // in the past; must run at t=100, not 50
			if e.Now() != 100 {
				t.Errorf("past event ran at %v, want 100", e.Now())
			}
			ran = true
		})
	})
	e.Run()
	if !ran {
		t.Fatal("past event never ran")
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var wake Time
	e.Spawn("sleeper", func(env *Env) {
		env.Sleep(5 * Microsecond)
		wake = env.Now()
	})
	e.Run()
	if wake != Time(5*Microsecond) {
		t.Fatalf("woke at %v, want 5µs", wake)
	}
}

func TestInterleavedProcesses(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.Spawn("a", func(env *Env) {
		for i := 0; i < 3; i++ {
			env.Sleep(10)
			trace = append(trace, fmt.Sprintf("a@%d", env.Now()))
		}
	})
	e.Spawn("b", func(env *Env) {
		for i := 0; i < 2; i++ {
			env.Sleep(15)
			trace = append(trace, fmt.Sprintf("b@%d", env.Now()))
		}
	})
	e.Run()
	// At t=30 both wake; b scheduled its wake first (at t=15), so it runs first.
	want := []string{"a@10", "b@15", "a@20", "b@30", "a@30"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		r := NewResource(e, 1)
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn(fmt.Sprintf("p%d", i), func(env *Env) {
				env.Sleep(Duration(i % 2)) // two start waves
				r.Acquire(env)
				env.Sleep(7)
				trace = append(trace, fmt.Sprintf("%d@%d", i, env.Now()))
				r.Release()
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic traces:\n%v\n%v", a, b)
		}
	}
}

func TestWorkBilling(t *testing.T) {
	e := NewEngine()
	p := e.Spawn("worker", func(env *Env) {
		env.Work("fs", 30*Microsecond)
		env.Work("compress", 70*Microsecond)
		env.Work("fs", 10*Microsecond)
		env.Sleep(100 * Microsecond) // idle, not billed
	})
	e.Run()
	if got := p.BusyTime("fs"); got != 40*Microsecond {
		t.Errorf("fs busy = %v, want 40µs", got)
	}
	if got := p.BusyTime("compress"); got != 70*Microsecond {
		t.Errorf("compress busy = %v, want 70µs", got)
	}
	if got := p.TotalBusyTime(); got != 110*Microsecond {
		t.Errorf("total busy = %v, want 110µs", got)
	}
}

func TestResourceMutexFIFO(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.Spawn(fmt.Sprintf("p%d", i), func(env *Env) {
			env.Sleep(Duration(i)) // arrival order 0,1,2,3
			r.Acquire(env)
			order = append(order, i)
			env.Sleep(100)
			r.Release()
		})
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
	if r.ContendedAcquisitions() != 3 {
		t.Errorf("contended = %d, want 3", r.ContendedAcquisitions())
	}
	if r.InUse() != 0 {
		t.Errorf("resource still held: inUse=%d", r.InUse())
	}
}

func TestResourceCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var concurrent, peak int
	for i := 0; i < 6; i++ {
		e.Spawn("p", func(env *Env) {
			r.Acquire(env)
			concurrent++
			if concurrent > peak {
				peak = concurrent
			}
			env.Sleep(10)
			concurrent--
			r.Release()
		})
	}
	e.Run()
	if peak != 2 {
		t.Fatalf("peak concurrency = %d, want 2", peak)
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire succeeded on full resource")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestReleaseUnacquiredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine()
	NewResource(e, 1).Release()
}

func TestSignal(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	var got []any
	for i := 0; i < 3; i++ {
		e.Spawn("waiter", func(env *Env) { got = append(got, s.Wait(env)) })
	}
	e.Spawn("firer", func(env *Env) {
		env.Sleep(50)
		s.Fire(42)
	})
	e.Run()
	if len(got) != 3 {
		t.Fatalf("got %d wakeups, want 3", len(got))
	}
	for _, v := range got {
		if v != 42 {
			t.Fatalf("value = %v, want 42", v)
		}
	}
	// Waiting after the fire returns immediately.
	e2 := NewEngine()
	s2 := NewSignal(e2)
	s2.Fire("x")
	var after any
	e2.Spawn("late", func(env *Env) { after = s2.Wait(env) })
	e2.Run()
	if after != "x" {
		t.Fatalf("late wait = %v, want x", after)
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEngine()
	s := NewSignal(e)
	s.Fire(nil)
	s.Fire(nil)
}

func TestBroadcast(t *testing.T) {
	e := NewEngine()
	b := NewBroadcast(e)
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(env *Env) {
			b.Wait(env)
			woken++
		})
	}
	e.Spawn("n", func(env *Env) {
		env.Sleep(10)
		if b.Waiting() != 3 {
			t.Errorf("waiting = %d, want 3", b.Waiting())
		}
		b.Notify()
	})
	e.Run()
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got []int
	e.Spawn("consumer", func(env *Env) {
		for {
			v, ok := q.Pop(env)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	e.Spawn("producer", func(env *Env) {
		for i := 0; i < 5; i++ {
			env.Sleep(10)
			q.Push(i)
		}
		q.Close()
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 items", got)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("queue order = %v", got)
		}
	}
}

func TestQueueTryPop(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	q.Push("a")
	if v, ok := q.TryPop(); !ok || v != "a" {
		t.Fatalf("TryPop = %q,%v", v, ok)
	}
}

func TestTimelineFIFO(t *testing.T) {
	var tl Timeline
	s1, e1 := tl.Reserve(100, 50)
	if s1 != 100 || e1 != 150 {
		t.Fatalf("first reserve = [%d,%d], want [100,150]", s1, e1)
	}
	// Second request at an earlier now still queues behind the first.
	s2, e2 := tl.Reserve(120, 30)
	if s2 != 150 || e2 != 180 {
		t.Fatalf("second reserve = [%d,%d], want [150,180]", s2, e2)
	}
	// After the horizon, service starts immediately.
	s3, _ := tl.Reserve(500, 10)
	if s3 != 500 {
		t.Fatalf("third reserve start = %d, want 500", s3)
	}
	if tl.BusyTotal() != 90 {
		t.Fatalf("busy total = %v, want 90", tl.BusyTotal())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Spawn("ticker", func(env *Env) {
		for i := 0; i < 100; i++ {
			env.Sleep(10)
			count++
		}
	})
	e.RunUntil(55)
	if count != 5 {
		t.Fatalf("count at t=55 is %d, want 5", count)
	}
	if e.Now() != 55 {
		t.Fatalf("now = %v, want 55", e.Now())
	}
	e.Run()
	if count != 100 {
		t.Fatalf("final count = %d, want 100", count)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Spawn("ticker", func(env *Env) {
		for {
			env.Sleep(10)
			count++
			if count == 7 {
				e.Stop()
			}
		}
	})
	e.Run()
	if count != 7 {
		t.Fatalf("count = %d, want 7", count)
	}
	if !e.Stopped() {
		t.Fatal("engine not marked stopped")
	}
}

func TestDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine()
	s := NewSignal(e)
	e.Spawn("stuck", func(env *Env) { s.Wait(env) }) // nobody fires
	e.Run()
}

func TestProcDoneSignal(t *testing.T) {
	e := NewEngine()
	var observed Time
	p := e.Spawn("child", func(env *Env) { env.Sleep(30) })
	e.Spawn("parent", func(env *Env) {
		p.Done.Wait(env)
		observed = env.Now()
	})
	e.Run()
	if observed != 30 {
		t.Fatalf("parent observed child end at %v, want 30", observed)
	}
	if !p.Terminated() {
		t.Fatal("child not marked terminated")
	}
}

func TestDurationForBytes(t *testing.T) {
	if d := DurationForBytes(1<<30, 1<<30); d != Second {
		t.Fatalf("1GiB at 1GiB/s = %v, want 1s", d)
	}
	if d := DurationForBytes(0, 100); d != 0 {
		t.Fatalf("zero bytes = %v, want 0", d)
	}
	if d := DurationForBytes(100, 0); d != 0 {
		t.Fatalf("zero bandwidth = %v, want 0", d)
	}
	// Property: monotone in n, and never truncates to zero for positive n.
	prop := func(n uint32, bw uint32) bool {
		nb, bwb := int64(n%1<<28)+1, int64(bw%1<<28)+1
		d1 := DurationForBytes(nb, bwb)
		d2 := DurationForBytes(nb*2, bwb)
		return d1 > 0 && d2 >= d1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500 * Nanosecond, "2.500µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDaemonsExcludedFromDeadlock(t *testing.T) {
	e := NewEngine()
	b := NewBroadcast(e)
	e.SpawnDaemon("service", func(env *Env) {
		for {
			b.Wait(env) // parks forever once the workload drains
		}
	})
	done := false
	e.Spawn("worker", func(env *Env) {
		env.Sleep(10)
		b.Notify()
		env.Sleep(10)
		done = true
	})
	// Must drain without a deadlock panic despite the parked daemon.
	e.Run()
	if !done {
		t.Fatal("worker did not finish")
	}
}

func TestDaemonTerminationCounted(t *testing.T) {
	e := NewEngine()
	p := e.SpawnDaemon("short-lived", func(env *Env) { env.Sleep(5) })
	e.Run()
	if !p.Terminated() {
		t.Fatal("daemon did not terminate")
	}
	// A later non-daemon deadlock must still panic.
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s := NewSignal(e)
	e.Spawn("stuck", func(env *Env) { s.Wait(env) })
	e.Run()
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	e := NewEngine()
	s := NewSignal(e)
	cleaned := 0
	for i := 0; i < 5; i++ {
		e.SpawnDaemon("parked", func(env *Env) {
			defer func() { cleaned++ }()
			s.Wait(env) // never fired
		})
	}
	e.Spawn("worker", func(env *Env) { env.Sleep(10) })
	e.Run()
	e.Shutdown()
	if cleaned != 5 {
		t.Fatalf("cleaned = %d, want 5 (parked goroutines must unwind)", cleaned)
	}
	if len(e.procs) != 0 {
		t.Fatalf("procs still registered: %d", len(e.procs))
	}
}
