package sim

import "testing"

// BenchmarkEventThroughput measures raw callback-event processing.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			e.After(10, tick)
		}
	}
	e.After(10, tick)
	b.ResetTimer()
	e.Run()
}

// BenchmarkProcessSwitch measures the coroutine handoff cost (park+resume).
func BenchmarkProcessSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(env *Env) {
		for i := 0; i < b.N; i++ {
			env.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkResourceHandoff measures contended mutex transfer between two
// processes.
func BenchmarkResourceHandoff(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, 1)
	worker := func(env *Env) {
		for i := 0; i < b.N/2; i++ {
			r.Acquire(env)
			env.Sleep(1)
			r.Release()
		}
	}
	e.Spawn("a", worker)
	e.Spawn("b", worker)
	b.ResetTimer()
	e.Run()
}

// TestHotPathAllocBudgets pins the allocation budget of the three DES hot
// paths: the event loop and coroutine switch must be allocation-free, and a
// contended resource handoff may allocate at most once per op (waiter-ring
// growth amortizes to zero; the budget leaves headroom for runtime noise).
// Regressions here reintroduce GC pressure that dominates paper-scale runs.
func TestHotPathAllocBudgets(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed assertion is not a -short test")
	}
	cases := []struct {
		name   string
		bench  func(*testing.B)
		budget int64 // max allocs/op
	}{
		{"EventThroughput", BenchmarkEventThroughput, 0},
		{"ProcessSwitch", BenchmarkProcessSwitch, 1},
		{"ResourceHandoff", BenchmarkResourceHandoff, 1},
	}
	for _, tc := range cases {
		res := testing.Benchmark(tc.bench)
		if got := res.AllocsPerOp(); got > tc.budget {
			t.Errorf("%s: %d allocs/op, budget %d (%s)", tc.name, got, tc.budget, res.MemString())
		}
	}
}

// BenchmarkTimelineReserve measures the analytic facility booking used by
// the NAND model.
func BenchmarkTimelineReserve(b *testing.B) {
	var tl Timeline
	for i := 0; i < b.N; i++ {
		tl.Reserve(Time(i), 5)
	}
}
