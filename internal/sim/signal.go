package sim

// Signal is a one-shot event carrying an optional value. Any number of
// processes may Wait on it; Fire releases them all (in wait order) and makes
// every later Wait return immediately. Fire may be called from a process or
// from an engine callback.
type Signal struct {
	eng   *Engine
	fired bool
	val   any
	// w0 inlines the first waiter: almost every Signal (request completion,
	// Proc.Done) has exactly one, and the inline slot means the common case
	// never allocates a waiter slice.
	w0   *Proc
	more []*Proc
}

// NewSignal returns an unfired signal bound to eng.
func NewSignal(eng *Engine) *Signal { return &Signal{eng: eng} }

// Fired reports whether the signal has fired.
func (s *Signal) Fired() bool { return s.fired }

// Value returns the value passed to Fire, or nil before firing.
func (s *Signal) Value() any { return s.val }

// Fire marks the signal fired and wakes all waiters. Firing twice panics:
// a Signal models a one-shot completion, and double completion is a bug.
func (s *Signal) Fire(val any) {
	if s.fired {
		panic("sim: Signal fired twice")
	}
	s.fired = true
	s.val = val
	if s.w0 != nil {
		s.eng.wakeAt(s.eng.now, s.w0)
		s.w0 = nil
	}
	for _, p := range s.more {
		s.eng.wakeAt(s.eng.now, p)
	}
	s.more = nil
}

// Wait blocks the calling process until the signal fires and returns the
// fired value. Returns immediately if already fired.
func (s *Signal) Wait(env *Env) any {
	if s.fired {
		return s.val
	}
	if s.w0 == nil && len(s.more) == 0 {
		s.w0 = env.p
	} else {
		s.more = append(s.more, env.p)
	}
	env.park()
	return s.val
}

// Broadcast is a reusable condition: processes Wait, and each Notify wakes
// every process currently waiting. Unlike Signal it never latches.
type Broadcast struct {
	eng     *Engine
	waiters []*Proc
}

// NewBroadcast returns a Broadcast bound to eng.
func NewBroadcast(eng *Engine) *Broadcast { return &Broadcast{eng: eng} }

// Wait parks the calling process until the next Notify.
func (b *Broadcast) Wait(env *Env) {
	b.waiters = append(b.waiters, env.p)
	env.park()
}

// Notify wakes every currently waiting process. The backing array is kept
// for reuse: wake-ups are queued events, so no waiter re-registers before
// the loop finishes.
func (b *Broadcast) Notify() {
	for _, p := range b.waiters {
		b.eng.wakeAt(b.eng.now, p)
	}
	b.waiters = b.waiters[:0]
}

// Waiting reports how many processes are parked on b.
func (b *Broadcast) Waiting() int { return len(b.waiters) }

// Queue is an unbounded FIFO message queue between processes, the virtual-
// time analogue of a Go channel. Push never blocks; Pop blocks the caller
// while the queue is empty.
type Queue[T any] struct {
	eng     *Engine
	items   ring[T]
	waiters ring[*Proc]
	closed  bool
}

// NewQueue returns an empty queue bound to eng.
func NewQueue[T any](eng *Engine) *Queue[T] { return &Queue[T]{eng: eng} }

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return q.items.len() }

// Push appends an item and wakes one waiter, if any. Push may be called from
// a process or from an engine callback. Pushing to a closed queue panics.
func (q *Queue[T]) Push(item T) {
	if q.closed {
		panic("sim: push to closed Queue")
	}
	q.items.push(item)
	q.wakeOne()
}

// Close marks the queue closed: queued items can still be popped, and
// further Pops return ok=false. All current waiters are woken.
func (q *Queue[T]) Close() {
	q.closed = true
	for q.waiters.len() > 0 {
		q.wakeOne()
	}
}

func (q *Queue[T]) wakeOne() {
	if q.waiters.len() == 0 {
		return
	}
	q.eng.wakeAt(q.eng.now, q.waiters.pop())
}

// Pop removes and returns the oldest item, blocking while the queue is
// empty. It returns ok=false only when the queue is closed and drained.
func (q *Queue[T]) Pop(env *Env) (item T, ok bool) {
	for q.items.len() == 0 {
		if q.closed {
			return item, false
		}
		q.waiters.push(env.p)
		env.park()
	}
	return q.items.pop(), true
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (item T, ok bool) {
	if q.items.len() == 0 {
		return item, false
	}
	return q.items.pop(), true
}
