package sim

// ring is a growable circular FIFO. Unlike the append/reslice idiom
// (`q = q[1:]` + `append`), a ring reuses its backing array forever, so
// steady-state push/pop is allocation-free — which matters because every
// wakeup on the simulator's hot path flows through one of these (the
// engine's same-timestamp queue, Resource waiter lists, Queue items).
// The backing array length is always a power of two so index wrapping is a
// mask, not a division.
type ring[T any] struct {
	buf  []T
	head int
	size int
}

// len reports the number of queued items.
func (r *ring[T]) len() int { return r.size }

// push appends v at the tail.
func (r *ring[T]) push(v T) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = v
	r.size++
}

// pop removes and returns the head. Caller must check len() first.
func (r *ring[T]) pop() T {
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release references for GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	if r.size == 0 {
		r.head = 0
	}
	return v
}

// peek returns a pointer to the head element. Caller must check len() first.
func (r *ring[T]) peek() *T { return &r.buf[r.head] }

func (r *ring[T]) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 8
	}
	nb := make([]T, n)
	for i := 0; i < r.size; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}
