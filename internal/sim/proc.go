package sim

// Proc is a simulation process: a goroutine that the engine resumes one at a
// time. A Proc is created with Engine.Spawn and runs until its body returns.
type Proc struct {
	name    string
	eng     *Engine
	fn      func(*Env)
	seq     int64 // spawn order, the deterministic teardown ordering
	resume  chan struct{}
	started bool
	done    bool
	daemon  bool

	// Done fires (with a nil value) when the process body returns.
	Done *Signal

	// busy accumulates virtual CPU time billed via Env.Work, keyed by an
	// arbitrary tag. Experiments use it to report per-component CPU shares
	// (e.g. the filesystem write-path share of the snapshot process,
	// Table 2 of the paper).
	busy map[string]Duration
}

// main is the body of the process goroutine, started lazily on the first
// transfer of the simulation baton to this process. On return — normal or
// via the Shutdown unwind — it does the termination bookkeeping and passes
// the baton onward.
func (p *Proc) main() {
	e := p.eng
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(procKilled); !ok {
				panic(r)
			}
		}
		p.done = true
		e.nprocs--
		if p.daemon {
			e.ndaemons--
		}
		delete(e.procs, p)
		if !p.Done.Fired() {
			p.Done.Fire(nil)
		}
		e.exitBaton()
	}()
	env := &Env{p: p, eng: e}
	p.fn(env)
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Terminated reports whether the process body has returned.
func (p *Proc) Terminated() bool { return p.done }

// BusyTime reports the virtual CPU time billed under tag via Env.Work.
func (p *Proc) BusyTime(tag string) Duration { return p.busy[tag] }

// TotalBusyTime reports the sum of all billed CPU time.
func (p *Proc) TotalBusyTime() Duration {
	var total Duration
	for _, d := range p.busy {
		total += d
	}
	return total
}

// Env is the handle a process body uses to interact with the simulation. It
// is valid only inside the process it was created for.
type Env struct {
	p   *Proc
	eng *Engine
}

// Engine returns the engine this process runs on.
func (env *Env) Engine() *Engine { return env.eng }

// Proc returns the process this Env belongs to.
func (env *Env) Proc() *Proc { return env.p }

// Now reports the current virtual time.
func (env *Env) Now() Time { return env.eng.now }

// park yields the simulation baton and blocks until some event resumes this
// process. The caller must already have arranged for a wake-up (a scheduled
// event, a resource grant, a signal subscription, ...). The baton is handed
// directly to whatever runs next — see Engine.yieldBaton.
func (env *Env) park() {
	env.eng.yieldBaton(env.p)
	if env.eng.killing {
		panic(procKilled{})
	}
}

// Sleep advances this process by d of virtual time, yielding to other
// events. Non-positive durations still yield once, at the current time,
// which gives other same-timestamp events a chance to run.
func (env *Env) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	env.eng.wakeAt(env.eng.now.Add(d), env.p)
	env.park()
}

// Work sleeps for d and bills it as CPU time under tag on this process.
// It models the process actively computing (as opposed to waiting on I/O).
func (env *Env) Work(tag string, d Duration) {
	if d > 0 {
		if env.p.busy == nil {
			env.p.busy = make(map[string]Duration)
		}
		env.p.busy[tag] += d
	}
	env.Sleep(d)
}

// Yield lets every other event already scheduled for the current timestamp
// run before this process continues.
func (env *Env) Yield() { env.Sleep(0) }

// Spawn starts a child process on the same engine.
func (env *Env) Spawn(name string, fn func(*Env)) *Proc {
	return env.eng.Spawn(name, fn)
}
