package sim

import (
	"fmt"
	"sort"
)

// event is a single scheduled occurrence. Exactly one of fn or proc is set:
// fn events run inline on whichever goroutine currently drives the
// simulation; proc events resume (or first start) a process.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
}

// eventLess orders events by (time, seq). seq is unique per engine, so this
// is a strict total order: execution order is fully determined by the
// schedule, never by queue internals — the root of bit-reproducibility.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a 4-ary min-heap of events ordered by (time, seq). A custom
// non-boxing heap (instead of container/heap over an interface) keeps
// push/pop free of interface-conversion allocations — the event queue is the
// hottest data structure in the simulator. 4-ary halves the tree depth
// versus binary, trading slightly more comparisons per level for fewer
// cache-missing swaps on the sift paths.
type eventHeap struct {
	items []event
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) push(ev event) {
	h.items = append(h.items, ev)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items[n] = event{} // release fn/proc references
	h.items = h.items[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(h.items[c], h.items[min]) {
				min = c
			}
		}
		if !eventLess(h.items[min], h.items[i]) {
			break
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
	return top
}

// Engine owns the virtual clock and the event queue. The zero value is not
// usable; construct with NewEngine.
//
// Scheduling model: exactly one goroutine at a time holds the simulation
// "baton" — either the driver (the goroutine that called Run/RunUntil/
// Shutdown) or one process goroutine. A parking process does not bounce
// control back to the driver: it pops the next event itself and hands the
// baton directly to the next runnable process (or runs callbacks inline, or
// simply returns if the next event is its own wake-up). That removes up to
// two goroutine context switches per park/resume while executing events in
// exactly the same (time, seq) order as a central dispatch loop would.
type Engine struct {
	now  Time
	seq  uint64
	heap eventHeap
	// fifo holds events scheduled for the current timestamp. Scheduling at
	// `now` is the overwhelmingly common case (Resource.Release → waiter,
	// Signal.Fire → waiter, completion → handler), and such events always
	// sort after the heap's same-time entries and before everything later,
	// so a plain ring preserves (time, seq) order while skipping the heap.
	fifo ring[event]

	// driverCh parks the driver while a process goroutine carries the
	// simulation; a process hands the baton back when the queue drains,
	// the RunUntil deadline is reached, or the engine is stopped.
	driverCh chan struct{}
	limit    Time
	limited  bool

	// running is the process currently holding the simulation baton; nil
	// while the driver is executing callbacks.
	running  *Proc
	procs    map[*Proc]struct{}
	spawnSeq int64
	nprocs   int
	ndaemons int
	stopped  bool
	killing  bool
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{driverCh: make(chan struct{}), procs: make(map[*Proc]struct{})}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// schedule enqueues an event at t (clamped to now if in the past).
func (e *Engine) schedule(t Time, fn func(), p *Proc) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := event{at: t, seq: e.seq, fn: fn, proc: p}
	if t == e.now {
		e.fifo.push(ev)
		return
	}
	e.heap.push(ev)
}

// At schedules fn to run at time t (clamped to now if in the past). Callbacks
// run on the goroutine driving the simulation and must not block; they may
// schedule further events, fire signals, and release resources.
func (e *Engine) At(t Time, fn func()) { e.schedule(t, fn, nil) }

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

// wakeAt schedules p to be resumed at time t.
func (e *Engine) wakeAt(t Time, p *Proc) { e.schedule(t, nil, p) }

// Spawn creates a process executing fn and schedules it to start now.
// Processes run one at a time; fn must yield only through sim primitives.
func (e *Engine) Spawn(name string, fn func(*Env)) *Proc {
	e.spawnSeq++
	p := &Proc{
		name:   name,
		eng:    e,
		fn:     fn,
		seq:    e.spawnSeq,
		resume: make(chan struct{}),
		Done:   NewSignal(e),
	}
	e.nprocs++
	e.procs[p] = struct{}{}
	e.schedule(e.now, nil, p)
	return p
}

// SpawnDaemon creates a service process (kernel thread, poller) that is
// expected to remain parked forever once the workload drains: it is excluded
// from deadlock detection and simply abandoned when the simulation ends.
func (e *Engine) SpawnDaemon(name string, fn func(*Env)) *Proc {
	p := e.Spawn(name, fn)
	p.daemon = true
	e.ndaemons++
	return p
}

// procKilled is the sentinel panic value used to unwind a parked process
// during Engine.Shutdown.
type procKilled struct{}

// popNext removes the earliest pending event in (time, seq) order, honoring
// the RunUntil deadline. FIFO entries are always stamped with the current
// time, so they can only lose to same-time heap entries with older sequence
// numbers (scheduled before the clock reached this instant) and are always
// within any active deadline.
func (e *Engine) popNext() (event, bool) {
	if e.fifo.len() > 0 {
		if e.heap.len() > 0 && eventLess(e.heap.items[0], *e.fifo.peek()) {
			return e.heap.pop(), true
		}
		return e.fifo.pop(), true
	}
	if e.heap.len() == 0 {
		return event{}, false
	}
	if e.limited && e.heap.items[0].at > e.limit {
		return event{}, false
	}
	return e.heap.pop(), true
}

// transferTo hands the simulation baton to p, starting its goroutine on
// first transfer. The caller must immediately either block on its own
// resume/driver channel or exit; it may not touch engine state afterwards.
func (e *Engine) transferTo(p *Proc) {
	e.running = p
	if !p.started {
		p.started = true
		go p.main() //slimio:allow rawgoroutine the engine itself implements processes as baton-passing goroutines; exactly one is ever runnable
		return
	}
	p.resume <- struct{}{}
}

// yieldBaton is the parking half of direct handoff: the parking process
// itself drains callbacks and advances the clock until it meets a process
// event. Its own wake-up returns without any goroutine switch (the Sleep/
// Work fast path); another process gets the baton handed over directly (one
// switch, versus two through a central loop). When nothing is runnable —
// queue drained, deadline reached, or engine stopped — the baton goes back
// to the driver and the process stays parked until a later run resumes it.
func (e *Engine) yieldBaton(p *Proc) {
	for !e.stopped {
		ev, ok := e.popNext()
		if !ok {
			break
		}
		e.now = ev.at
		if ev.proc == nil {
			ev.fn()
			continue
		}
		if ev.proc == p {
			e.running = p
			return
		}
		if ev.proc.done {
			continue
		}
		e.transferTo(ev.proc)
		<-p.resume
		e.running = p
		return
	}
	e.running = nil
	e.driverCh <- struct{}{}
	<-p.resume
	e.running = p
}

// exitBaton passes the baton onward as a terminating process goroutine
// exits: like yieldBaton, but the caller never needs the baton back.
func (e *Engine) exitBaton() {
	for !e.stopped {
		ev, ok := e.popNext()
		if !ok {
			break
		}
		e.now = ev.at
		if ev.proc == nil {
			ev.fn()
			continue
		}
		if ev.proc.done {
			continue
		}
		e.transferTo(ev.proc)
		return
	}
	e.running = nil
	e.driverCh <- struct{}{}
}

// runLoop drives events from the calling (driver) goroutine until the first
// handoff to a process, then parks until a process returns the baton. By the
// time it returns, either the queue has drained (up to any deadline) or the
// engine has been stopped, and no process holds the baton.
func (e *Engine) runLoop() {
	for !e.stopped {
		ev, ok := e.popNext()
		if !ok {
			return
		}
		e.now = ev.at
		if ev.proc == nil {
			ev.fn()
			continue
		}
		if ev.proc.done {
			continue
		}
		e.transferTo(ev.proc)
		<-e.driverCh
		return
	}
}

// Run executes events until the queue drains or Stop is called, and returns
// the final virtual time. Processes still parked when the queue drains are
// considered deadlocked and cause a panic naming them, since that always
// indicates a modelling bug.
func (e *Engine) Run() Time {
	e.runLoop()
	if live := e.nprocs - e.ndaemons; !e.stopped && live > 0 {
		panic(fmt.Sprintf("sim: event queue drained with %d non-daemon process(es) still parked (deadlock)", live))
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then stops with the
// clock at the deadline. Parked processes are left in place so the caller can
// inspect state mid-flight; Run or RunUntil can be called again to continue.
func (e *Engine) RunUntil(deadline Time) Time {
	e.limit, e.limited = deadline, true
	e.runLoop()
	e.limited = false
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop halts the event loop after the current event. Parked processes stay
// parked; their goroutines are abandoned (the process ends with the Go
// program). Intended for open-ended scenarios with a fixed observation
// window.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending reports the number of scheduled events, useful in tests.
func (e *Engine) Pending() int { return e.heap.len() + e.fifo.len() }

// Shutdown tears the simulation down: every parked process is unwound (its
// goroutine exits via an internal panic that park() raises), so nothing
// keeps the simulated world reachable afterwards. Call it once a run is
// finished and its results extracted; the engine must not be used again.
// Experiment harnesses rely on this to avoid leaking a whole simulated
// device per run through parked goroutine stacks.
func (e *Engine) Shutdown() {
	e.stopped = true
	e.killing = true
	// Collect first: unwinding mutates e.procs. Unwind in spawn order, not
	// map order, so teardown (and anything a process does while dying) is
	// as deterministic as the run itself.
	parked := make([]*Proc, 0, len(e.procs))
	for p := range e.procs {
		parked = append(parked, p)
	}
	sort.Slice(parked, func(i, j int) bool { return parked[i].seq < parked[j].seq })
	for _, p := range parked {
		// Processes that were spawned but never started have no goroutine
		// to unwind; earlier unwinds may also have completed later procs.
		if !p.started || p.done {
			continue
		}
		p.resume <- struct{}{}
		<-e.driverCh
	}
}
