package sim

import (
	"container/heap"
	"fmt"
)

// event is a single scheduled occurrence. Exactly one of fn or proc is set:
// fn events run inline on the engine goroutine; proc events resume a parked
// process.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (popped any) {
	old := *h
	n := len(old)
	popped = old[n-1]
	*h = old[:n-1]
	return
}

// Engine owns the virtual clock and the event queue. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	ack    chan struct{}
	// running is the process currently holding the (conceptual) simulation
	// thread; nil while the engine itself is executing callbacks.
	running  *Proc
	procs    map[*Proc]struct{}
	nprocs   int
	ndaemons int
	stopped  bool
	killing  bool
}

// NewEngine returns an empty simulation at time zero.
func NewEngine() *Engine {
	return &Engine{ack: make(chan struct{}), procs: make(map[*Proc]struct{})}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at time t (clamped to now if in the past). Callbacks
// run on the engine goroutine and must not block; they may schedule further
// events, fire signals, and release resources.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now.Add(d), fn) }

// wakeAt schedules p to be resumed at time t.
func (e *Engine) wakeAt(t Time, p *Proc) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, proc: p})
}

// Spawn creates a process executing fn and schedules it to start now.
// Processes run one at a time; fn must yield only through sim primitives.
func (e *Engine) Spawn(name string, fn func(*Env)) *Proc {
	p := &Proc{
		name:   name,
		eng:    e,
		resume: make(chan struct{}),
		Done:   NewSignal(e),
	}
	e.nprocs++
	e.procs[p] = struct{}{}
	e.At(e.now, func() { e.startProc(p, fn) })
	return p
}

// SpawnDaemon creates a service process (kernel thread, poller) that is
// expected to remain parked forever once the workload drains: it is excluded
// from deadlock detection and simply abandoned when the simulation ends.
func (e *Engine) SpawnDaemon(name string, fn func(*Env)) *Proc {
	p := e.Spawn(name, fn)
	p.daemon = true
	e.ndaemons++
	return p
}

// procKilled is the sentinel panic value used to unwind a parked process
// during Engine.Shutdown.
type procKilled struct{}

func (e *Engine) startProc(p *Proc, fn func(*Env)) {
	e.running = p
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					panic(r)
				}
			}
			p.done = true
			e.nprocs--
			if p.daemon {
				e.ndaemons--
			}
			delete(e.procs, p)
			if !p.Done.Fired() {
				p.Done.Fire(nil)
			}
			e.ack <- struct{}{}
		}()
		env := &Env{p: p, eng: e}
		fn(env)
	}()
	<-e.ack
	e.running = nil
}

// resumeProc hands the simulation thread to p until it parks or terminates.
func (e *Engine) resumeProc(p *Proc) {
	if p.done {
		return
	}
	e.running = p
	p.resume <- struct{}{}
	<-e.ack
	e.running = nil
}

// Run executes events until the queue drains or Stop is called, and returns
// the final virtual time. Processes still parked when the queue drains are
// considered deadlocked and cause a panic naming them, since that always
// indicates a modelling bug.
func (e *Engine) Run() Time {
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		if ev.proc != nil {
			e.resumeProc(ev.proc)
		} else {
			ev.fn()
		}
	}
	if live := e.nprocs - e.ndaemons; !e.stopped && live > 0 {
		panic(fmt.Sprintf("sim: event queue drained with %d non-daemon process(es) still parked (deadlock)", live))
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then stops with the
// clock at the deadline. Parked processes are left in place so the caller can
// inspect state mid-flight; Run or RunUntil can be called again to continue.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		if ev.proc != nil {
			e.resumeProc(ev.proc)
		} else {
			ev.fn()
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Stop halts the event loop after the current event. Parked processes stay
// parked; their goroutines are abandoned (the process ends with the Go
// program). Intended for open-ended scenarios with a fixed observation
// window.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

// Pending reports the number of scheduled events, useful in tests.
func (e *Engine) Pending() int { return len(e.events) }

// Shutdown tears the simulation down: every parked process is unwound (its
// goroutine exits via an internal panic that park() raises), so nothing
// keeps the simulated world reachable afterwards. Call it once a run is
// finished and its results extracted; the engine must not be used again.
// Experiment harnesses rely on this to avoid leaking a whole simulated
// device per run through parked goroutine stacks.
func (e *Engine) Shutdown() {
	e.stopped = true
	e.killing = true
	// Collect first: resuming mutates e.procs.
	var parked []*Proc
	for p := range e.procs {
		if !p.done {
			parked = append(parked, p)
		}
	}
	for _, p := range parked {
		e.resumeProc(p)
	}
}
