// Package sim implements the deterministic discrete-event simulation (DES)
// kernel that every other subsystem in this repository runs on.
//
// The simulation advances a virtual nanosecond clock by executing events in
// (time, sequence) order. User logic runs either as lightweight callbacks
// (for purely reactive components such as device timelines) or as processes:
// goroutines that the engine resumes one at a time, so that the whole
// simulation is single-threaded in effect and bit-reproducible regardless of
// GOMAXPROCS.
//
// Processes must block only through sim primitives (Sleep, Resource.Acquire,
// Signal.Wait, Queue.Pop, ...). Blocking on ordinary Go channels or mutexes
// from inside a process deadlocks the engine by construction.
package sim

import "fmt"

// Time is an absolute virtual timestamp in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units, mirroring package time.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as fractional seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Seconds reports d as fractional seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports d as fractional milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds reports d as fractional microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// DurationForBytes returns the time needed to move n bytes at a bandwidth of
// bytesPerSec, rounding up to a whole nanosecond. A non-positive bandwidth
// yields zero cost, which lets cost models disable a term.
func DurationForBytes(n int64, bytesPerSec int64) Duration {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	// ns = n * 1e9 / bw, computed to avoid overflow for large n.
	whole := n / bytesPerSec
	rem := n % bytesPerSec
	ns := whole*int64(Second) + (rem*int64(Second)+bytesPerSec-1)/bytesPerSec
	return Duration(ns)
}
