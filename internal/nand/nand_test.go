package nand

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/sim"
)

func testArray(t *testing.T) *Array {
	t.Helper()
	geo := Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 4, PagesPerBlock: 8, PageSize: 512}
	a, err := New(geo, DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryMath(t *testing.T) {
	g := Geometry{Channels: 8, DiesPerChannel: 8, BlocksPerDie: 16, PagesPerBlock: 256, PageSize: 4096}
	if g.Dies() != 64 {
		t.Errorf("dies = %d", g.Dies())
	}
	if g.Blocks() != 1024 {
		t.Errorf("blocks = %d", g.Blocks())
	}
	if g.Pages() != 1024*256 {
		t.Errorf("pages = %d", g.Pages())
	}
	if g.Capacity() != 1024*256*4096 {
		t.Errorf("capacity = %d", g.Capacity())
	}
}

func TestDefaultGeometry(t *testing.T) {
	g := DefaultGeometry(2 << 30)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Channels != 8 || g.DiesPerChannel != 8 || g.PageSize != 4096 {
		t.Fatalf("unexpected FEMU defaults: %+v", g)
	}
	cap := g.Capacity()
	if cap < (2<<30)*9/10 || cap > 2<<30 {
		t.Fatalf("capacity = %d, want ~2GiB", cap)
	}
	if DefaultGeometry(0).Capacity() != cap {
		t.Fatal("zero total must default to 2GiB")
	}
}

func TestValidate(t *testing.T) {
	bad := Geometry{Channels: 0, DiesPerChannel: 1, BlocksPerDie: 1, PagesPerBlock: 1, PageSize: 1}
	if bad.Validate() == nil {
		t.Fatal("expected validation error")
	}
	if _, err := New(bad, DefaultLatencies()); err == nil {
		t.Fatal("New must reject bad geometry")
	}
}

func TestPPAConversionRoundTrip(t *testing.T) {
	a := testArray(t)
	g := a.Geometry()
	for die := 0; die < g.Dies(); die++ {
		for block := 0; block < g.BlocksPerDie; block++ {
			for page := 0; page < g.PagesPerBlock; page++ {
				ppa := a.PPAOf(die, block, page)
				if a.DieOf(ppa) != die {
					t.Fatalf("DieOf(%d) = %d, want %d", ppa, a.DieOf(ppa), die)
				}
				if a.BlockOf(ppa) != die*g.BlocksPerDie+block {
					t.Fatalf("BlockOf(%d) = %d", ppa, a.BlockOf(ppa))
				}
				if a.PageOf(ppa) != page {
					t.Fatalf("PageOf(%d) = %d, want %d", ppa, a.PageOf(ppa), page)
				}
			}
		}
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	a := testArray(t)
	payload := []byte("hello nand")
	ppa := a.PPAOf(1, 2, 0)
	if _, err := a.Program(0, ppa, bufpool.Borrowed(payload)); err != nil {
		t.Fatal(err)
	}
	got, _, err := a.Read(0, ppa)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %q, want %q", got, payload)
	}
	// Mutating the original buffer must not affect stored data.
	payload[0] = 'X'
	got2, _, _ := a.Read(0, ppa)
	if got2[0] == 'X' {
		t.Fatal("stored page aliases caller buffer")
	}
}

func TestSequentialProgramRule(t *testing.T) {
	a := testArray(t)
	// Page 1 before page 0 must fail.
	if _, err := a.Program(0, a.PPAOf(0, 0, 1), bufpool.Borrowed([]byte("x"))); err == nil {
		t.Fatal("out-of-order program succeeded")
	}
	if _, err := a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	// Reprogramming page 0 must fail.
	if _, err := a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed([]byte("y"))); err == nil {
		t.Fatal("reprogram without erase succeeded")
	}
	if _, err := a.Program(0, a.PPAOf(0, 0, 1), bufpool.Borrowed([]byte("x"))); err != nil {
		t.Fatal(err)
	}
}

func TestEraseResetsBlock(t *testing.T) {
	a := testArray(t)
	g := a.Geometry()
	for p := 0; p < g.PagesPerBlock; p++ {
		if _, err := a.Program(0, a.PPAOf(0, 0, p), bufpool.Borrowed([]byte{byte(p)})); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.NextProgramPage(0, 0); got != g.PagesPerBlock {
		t.Fatalf("full block next page = %d", got)
	}
	if _, err := a.Erase(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if got := a.NextProgramPage(0, 0); got != 0 {
		t.Fatalf("erased block next page = %d", got)
	}
	if a.EraseCount(0, 0) != 1 {
		t.Fatalf("erase count = %d", a.EraseCount(0, 0))
	}
	// Old data gone.
	if _, _, err := a.Read(0, a.PPAOf(0, 0, 3)); err == nil {
		t.Fatal("read of erased page succeeded")
	}
	// Block programmable again from page 0.
	if _, err := a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed([]byte("new"))); err != nil {
		t.Fatal(err)
	}
}

func TestReadUnwrittenFails(t *testing.T) {
	a := testArray(t)
	if _, _, err := a.Read(0, a.PPAOf(0, 1, 0)); err == nil {
		t.Fatal("expected error reading unwritten page")
	}
}

func TestBoundsChecks(t *testing.T) {
	a := testArray(t)
	if _, err := a.Program(0, InvalidPPA, bufpool.Ref{}); err == nil {
		t.Fatal("program at InvalidPPA succeeded")
	}
	if _, _, err := a.Read(0, PPA(a.Geometry().Pages())); err == nil {
		t.Fatal("read past end succeeded")
	}
	if _, err := a.Erase(0, a.Geometry().Dies(), 0); err == nil {
		t.Fatal("erase of bad die succeeded")
	}
	big := make([]byte, a.Geometry().PageSize+1)
	if _, err := a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed(big)); err == nil {
		t.Fatal("oversized program succeeded")
	}
}

func TestTimingSerializesPerDie(t *testing.T) {
	a := testArray(t)
	lat := a.Latencies()
	// Two programs to the same die: second completes one program later.
	done1, err := a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed([]byte("a")))
	if err != nil {
		t.Fatal(err)
	}
	done2, err := a.Program(0, a.PPAOf(0, 0, 1), bufpool.Borrowed([]byte("b")))
	if err != nil {
		t.Fatal(err)
	}
	if done2.Sub(done1) < lat.PageWrite {
		t.Fatalf("same-die programs overlapped: %v then %v", done1, done2)
	}
	// Programs to dies on different channels overlap fully.
	otherDie := a.Geometry().DiesPerChannel // first die of channel 1
	done3, err := a.Program(0, a.PPAOf(otherDie, 0, 0), bufpool.Borrowed([]byte("c")))
	if err != nil {
		t.Fatal(err)
	}
	if done3 != done1 {
		t.Fatalf("cross-channel program did not run in parallel: %v vs %v", done3, done1)
	}
}

func TestChannelContention(t *testing.T) {
	a := testArray(t)
	// Dies 0 and 1 share channel 0: their transfers serialize even though
	// the NAND cells operate in parallel.
	d0, _ := a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed([]byte("a")))
	d1, _ := a.Program(0, a.PPAOf(1, 0, 0), bufpool.Borrowed([]byte("b")))
	if d1 <= d0 {
		t.Skipf("channel xfer too small to observe: %v vs %v", d0, d1)
	}
	if got, want := d1.Sub(d0), a.Latencies().ChannelXfer; got != want {
		t.Fatalf("channel stagger = %v, want %v", got, want)
	}
}

func TestEraseLatency(t *testing.T) {
	a := testArray(t)
	done, err := a.Erase(1000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := done.Sub(1000); got != a.Latencies().BlockErase {
		t.Fatalf("erase latency = %v, want %v", got, a.Latencies().BlockErase)
	}
}

func TestStatsCounting(t *testing.T) {
	a := testArray(t)
	_, _ = a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed([]byte("a")))
	_, _, _ = a.Read(0, a.PPAOf(0, 0, 0))
	_, _ = a.Erase(0, 0, 0)
	s := a.Stats()
	if s.Programs != 1 || s.Reads != 1 || s.Erases != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: any interleaving of valid programs and erases keeps data
// readable and correct for the pages most recently programmed.
func TestDataIntegrityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		geo := Geometry{Channels: 1, DiesPerChannel: 2, BlocksPerDie: 3, PagesPerBlock: 4, PageSize: 64}
		a, err := New(geo, DefaultLatencies())
		if err != nil {
			return false
		}
		type key struct{ die, block, page int }
		expect := make(map[key][]byte)
		now := sim.Time(0)
		for op := 0; op < 200; op++ {
			die := rng.Intn(geo.Dies())
			block := rng.Intn(geo.BlocksPerDie)
			if rng.Intn(10) == 0 {
				if _, err := a.Erase(now, die, block); err != nil {
					return false
				}
				for p := 0; p < geo.PagesPerBlock; p++ {
					delete(expect, key{die, block, p})
				}
				continue
			}
			page := a.NextProgramPage(die, block)
			if page >= geo.PagesPerBlock {
				continue // full; skip
			}
			data := []byte(fmt.Sprintf("%d/%d/%d/%d", seed, die, block, op))
			if _, err := a.Program(now, a.PPAOf(die, block, page), bufpool.Borrowed(data)); err != nil {
				return false
			}
			expect[key{die, block, page}] = data
			now += sim.Time(rng.Intn(1000))
		}
		for k, want := range expect {
			got, _, err := a.Read(now, a.PPAOf(k.die, k.block, k.page))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxBusyUntil(t *testing.T) {
	a := testArray(t)
	if a.MaxBusyUntil() != 0 {
		t.Fatal("idle array must have zero horizon")
	}
	done, _ := a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed([]byte("x")))
	if a.MaxBusyUntil() != done {
		t.Fatalf("horizon = %v, want %v", a.MaxBusyUntil(), done)
	}
}

func TestDieBusyTotal(t *testing.T) {
	a := testArray(t)
	_, _ = a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed([]byte("x")))
	if a.DieBusyTotal(0) != a.Latencies().PageWrite {
		t.Fatalf("die busy = %v", a.DieBusyTotal(0))
	}
	if a.DieBusyTotal(1) != 0 {
		t.Fatalf("idle die busy = %v", a.DieBusyTotal(1))
	}
}

func TestWearStats(t *testing.T) {
	a := testArray(t)
	if w := a.Wear(); w.TotalErases != 0 || w.MaxErases != 0 {
		t.Fatalf("fresh array wear = %+v", w)
	}
	_, _ = a.Erase(0, 0, 0)
	_, _ = a.Erase(0, 0, 0)
	_, _ = a.Erase(0, 1, 2)
	w := a.Wear()
	if w.TotalErases != 3 || w.MaxErases != 2 || w.MinErases != 0 {
		t.Fatalf("wear = %+v", w)
	}
	if w.MeanErases <= 0 {
		t.Fatalf("mean = %v", w.MeanErases)
	}
}
