// Package nand models a NAND flash array with FEMU-compatible geometry and
// timing: channels × dies, blocks of sequentially-programmed pages, and the
// three basic operations (page read, page program, block erase).
//
// The model is functional as well as temporal: programmed pages hold real
// bytes, which the FTL layers above physically move during garbage
// collection, so data-integrity properties can be tested end to end.
//
// Timing uses sim.Timeline horizons per die and per channel rather than
// simulation processes, which keeps the event count per host command at one
// regardless of how many flash operations it fans out to. State mutations
// take effect immediately; the returned completion time tells the caller
// when the operation is durable/serviceable in virtual time.
package nand

import (
	"errors"
	"fmt"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/vtrace"
)

// quarantineSlack pads the read horizon when an erased page's segment is
// released back to the buffer pool. Read results are handed to consumers as
// aliases at the read's completion time; every consumer in this repository
// copies the bytes out within the same-timestamp event cascade plus
// sub-microsecond ring/handler work (≤ ~300 ns), so a microsecond-scale pad
// is far more than enough.
const quarantineSlack = 10 * sim.Microsecond

// Status is an NVMe-style command status code, surfaced alongside Go errors
// so the layers above can classify failures the way a real driver would.
type Status uint16

const (
	// StatusOK is command success.
	StatusOK Status = 0
	// StatusInternal (NVMe 0x06) covers model errors with no media cause.
	StatusInternal Status = 0x06
	// StatusWriteFault (NVMe 0x280): the die failed to program the page.
	// The page is unreadable and the FTL must retire the block.
	StatusWriteFault Status = 0x280
	// StatusUnrecoveredRead (NVMe 0x281): the read failed. Injected read
	// faults are transient — a retry may succeed.
	StatusUnrecoveredRead Status = 0x281
	// StatusInterruptedWrite is a model-specific code for a program cut by
	// power loss: the page holds a torn (partially programmed) image.
	StatusInterruptedWrite Status = 0x3F0
	// StatusEraseFault is a model-specific code for a failed block erase;
	// the block keeps its pre-erase contents and must be retired.
	StatusEraseFault Status = 0x3F1
)

// DeviceError is a failed NAND operation with its NVMe-style status.
type DeviceError struct {
	Status    Status
	Transient bool // a retry may succeed (read disturb, not worn media)
	Op        string
	PPA       PPA
}

func (e *DeviceError) Error() string {
	return fmt.Sprintf("nand: %s of PPA %d failed (status 0x%x, transient=%v)", e.Op, e.PPA, uint16(e.Status), e.Transient)
}

// StatusOf extracts the NVMe-style status from err (StatusOK for nil,
// StatusInternal for non-device errors).
func StatusOf(err error) Status {
	if err == nil {
		return StatusOK
	}
	var de *DeviceError
	if errors.As(err, &de) {
		return de.Status
	}
	return StatusInternal
}

// IsDeviceError reports whether err carries an NVMe-style device status (as
// opposed to a model/usage error such as an out-of-range address).
func IsDeviceError(err error) bool {
	var de *DeviceError
	return errors.As(err, &de)
}

// IsTransient reports whether err is a device error a retry may clear.
func IsTransient(err error) bool {
	var de *DeviceError
	return errors.As(err, &de) && de.Transient
}

// IsProgramFail reports a permanent program failure (block must retire).
func IsProgramFail(err error) bool { return StatusOf(err) == StatusWriteFault }

// IsTornWrite reports a program interrupted by power loss.
func IsTornWrite(err error) bool { return StatusOf(err) == StatusInterruptedWrite }

// IsEraseFault reports a failed block erase.
func IsEraseFault(err error) bool { return StatusOf(err) == StatusEraseFault }

// ProgramOutcome classifies what a fault hook did to a page program.
type ProgramOutcome int

const (
	// ProgramOK leaves the program untouched.
	ProgramOK ProgramOutcome = iota
	// ProgramFail is a permanent media failure: the page stores nothing and
	// the operation returns StatusWriteFault.
	ProgramFail
	// ProgramTorn stores the decision's Torn bytes instead of the payload
	// (a partial program at power loss) and returns StatusInterruptedWrite.
	ProgramTorn
)

// ProgramDecision is a fault hook's verdict on one page program.
type ProgramDecision struct {
	Outcome ProgramOutcome
	// Torn is the partially-programmed image stored when Outcome is
	// ProgramTorn. The array takes ownership of the slice.
	Torn []byte
}

// FaultHook is consulted on every array operation when installed. The zero
// state (no hook) is a strict no-op: no extra branches beyond one nil check,
// so fault-free runs stay bit-identical with or without the fault subsystem
// compiled in. Implementations live in internal/fault.
type FaultHook interface {
	// ReadFault returns a non-nil error to fail this read. The array still
	// reserves die and channel time, so the returned completion time gives
	// retry backoff a meaningful base.
	ReadFault(now sim.Time, ppa PPA) error
	// ProgramFault classifies a program spanning [now, done).
	ProgramFault(now, done sim.Time, ppa PPA, data []byte) ProgramDecision
	// EraseFault returns a non-nil error to fail this erase; the block then
	// keeps its pre-erase contents.
	EraseFault(now sim.Time, die, block int) error
}

// Geometry describes the physical layout of the array. The defaults mirror
// the paper's FEMU configuration (8 channels, 8 dies/channel, 4 KiB pages).
type Geometry struct {
	Channels       int
	DiesPerChannel int
	BlocksPerDie   int
	PagesPerBlock  int
	PageSize       int // bytes
}

// DefaultGeometry returns the paper's FEMU geometry scaled to a small device
// (default ~2 GiB) so the full experiment suite runs in seconds. BlocksPerDie
// is derived from totalBytes; pass 0 for the 2 GiB default.
func DefaultGeometry(totalBytes int64) Geometry {
	if totalBytes <= 0 {
		totalBytes = 2 << 30
	}
	g := Geometry{
		Channels:       8,
		DiesPerChannel: 8,
		PagesPerBlock:  256, // 1 MiB blocks at 4 KiB pages
		PageSize:       4096,
	}
	dieBytes := totalBytes / int64(g.Channels*g.DiesPerChannel)
	// Keep at least 16 blocks per die so FTL over-provisioning and GC
	// headroom stay a small fraction of the device even at tiny scales:
	// shrink the block size rather than the block count.
	for g.PagesPerBlock > 16 && dieBytes/int64(g.PagesPerBlock*g.PageSize) < 16 {
		g.PagesPerBlock /= 2
	}
	g.BlocksPerDie = int(dieBytes / int64(g.PagesPerBlock*g.PageSize))
	if g.BlocksPerDie < 4 {
		g.BlocksPerDie = 4
	}
	return g
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.DiesPerChannel <= 0 || g.BlocksPerDie <= 0 ||
		g.PagesPerBlock <= 0 || g.PageSize <= 0 {
		return fmt.Errorf("nand: geometry fields must be positive: %+v", g)
	}
	return nil
}

// Dies reports the total die count.
func (g Geometry) Dies() int { return g.Channels * g.DiesPerChannel }

// Blocks reports the total block count.
func (g Geometry) Blocks() int { return g.Dies() * g.BlocksPerDie }

// Pages reports the total page count.
func (g Geometry) Pages() int64 { return int64(g.Blocks()) * int64(g.PagesPerBlock) }

// Capacity reports the raw byte capacity.
func (g Geometry) Capacity() int64 { return g.Pages() * int64(g.PageSize) }

// PagesPerDie reports pages per die.
func (g Geometry) PagesPerDie() int64 { return int64(g.BlocksPerDie) * int64(g.PagesPerBlock) }

// Latencies holds the operation timing constants. Defaults are FEMU's, which
// the paper uses: 40 µs page read, 200 µs page program, 2 ms block erase.
type Latencies struct {
	PageRead   sim.Duration
	PageWrite  sim.Duration
	BlockErase sim.Duration
	// ChannelXfer is the bus time to move one page between controller and
	// die. FEMU's simple mode folds this into the NAND latencies; keep a
	// small non-zero value so channel contention exists.
	ChannelXfer sim.Duration
}

// DefaultLatencies returns FEMU's default NAND timing.
func DefaultLatencies() Latencies {
	return Latencies{
		PageRead:    40 * sim.Microsecond,
		PageWrite:   200 * sim.Microsecond,
		BlockErase:  2 * sim.Millisecond,
		ChannelXfer: 5 * sim.Microsecond, // ~800 MB/s bus per channel at 4 KiB pages
	}
}

// PPA is a flat physical page address:
// ppa = (die*BlocksPerDie + block)*PagesPerBlock + page.
type PPA int64

// InvalidPPA marks an unmapped physical address.
const InvalidPPA PPA = -1

type blockState struct {
	nextPage int // next programmable page index (sequential-program rule)
	erases   int64
}

// Stats aggregates operation counters for the whole array. The fault
// counters stay zero unless a hook is installed and injects.
type Stats struct {
	Reads    int64
	Programs int64
	Erases   int64

	ReadFaults   int64
	ProgramFails int64
	TornPrograms int64
	EraseFaults  int64
}

// Array is the NAND device. It is not safe for concurrent use; in this
// repository it is only ever touched from simulation context.
type Array struct {
	geo    Geometry
	lat    Latencies
	dies   []sim.Timeline
	chans  []sim.Timeline
	blocks []blockState // indexed by die*BlocksPerDie + block
	data   [][]byte     // indexed by PPA; nil = unwritten since last erase
	// segs holds, per PPA, the pooled segment backing data[ppa] (nil for
	// torn images, which are plain Go memory dropped to the GC on erase).
	// Each stored page holds one reference, released on erase through the
	// pool's virtual-time quarantine.
	segs []*bufpool.Segment
	pool *bufpool.Pool
	// readHorizon is the latest completion time over all reads so far: no
	// outstanding read alias can be consumed after it (plus handler slack).
	// It gates recycling of erased pages' buffers; see pageArena.
	readHorizon sim.Time
	// clock, when set, reports the engine's current execution instant —
	// required to recycle buffers, because op `now` arguments can run ahead
	// of the clock inside synchronous FTL chains (GC migrations forward
	// future completion times), while quarantined buffers only become safe
	// once the *executing* event time passes every aliasing read.
	clock Clock
	stats Stats
	hook  FaultHook      // nil = perfect device
	trace *vtrace.Tracer // nil = tracing off (the default)
}

// Clock reports the current virtual time; *sim.Engine satisfies it.
type Clock interface {
	Now() sim.Time
}

// SetClock attaches the simulation clock, enabling recycling of erased
// pages' segments through the buffer pool. Without a clock the pool still
// batches allocations in chunks but never reuses a quarantined segment
// (always safe, just less economical).
func (a *Array) SetClock(c Clock) {
	a.clock = c
	a.pool.SetClock(c)
}

// SetPool replaces the array's buffer pool with a shared one, so host-side
// layers (wal encoding, kernelio page cache) and the array recycle the same
// segments. Must be called before the first program; the current clock is
// carried over.
func (a *Array) SetPool(p *bufpool.Pool) {
	if p.SegSize() != a.geo.PageSize {
		panic(fmt.Sprintf("nand: pool segment size %d != page size %d", p.SegSize(), a.geo.PageSize))
	}
	a.pool = p
	if a.clock != nil {
		p.SetClock(a.clock)
	}
}

// Pool returns the array's buffer pool: the single pool every layer of a
// stack draws payload segments from.
func (a *Array) Pool() *bufpool.Pool { return a.pool }

// SetFaultHook installs (or, with nil, removes) the fault injector consulted
// on every read, program, and erase.
func (a *Array) SetFaultHook(h FaultHook) { a.hook = h }

// SetTracer attaches (or, with nil, removes) the cell's span recorder. The
// array emits one span per page read/program and block erase, with the span
// Arg carrying the die/channel queue wait in nanoseconds, plus instants for
// injected faults. Absent a tracer the only cost is one nil check per op.
func (a *Array) SetTracer(t *vtrace.Tracer) { a.trace = t }

// New builds an erased array with the given geometry and latencies.
func New(geo Geometry, lat Latencies) (*Array, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	return &Array{
		geo:    geo,
		lat:    lat,
		dies:   make([]sim.Timeline, geo.Dies()),
		chans:  make([]sim.Timeline, geo.Channels),
		blocks: make([]blockState, geo.Blocks()),
		data:   make([][]byte, geo.Pages()),
		segs:   make([]*bufpool.Segment, geo.Pages()),
		pool:   bufpool.New(geo.PageSize),
	}, nil
}

// Geometry returns the array geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// Latencies returns the timing constants.
func (a *Array) Latencies() Latencies { return a.lat }

// Stats returns cumulative operation counters.
func (a *Array) Stats() Stats { return a.stats }

// PPAOf composes a flat physical address.
func (a *Array) PPAOf(die, block, page int) PPA {
	return PPA((int64(die)*int64(a.geo.BlocksPerDie)+int64(block))*int64(a.geo.PagesPerBlock) + int64(page))
}

// DieOf returns the die index of ppa.
func (a *Array) DieOf(ppa PPA) int {
	return int(int64(ppa) / (int64(a.geo.BlocksPerDie) * int64(a.geo.PagesPerBlock)))
}

// BlockOf returns the (global) block index of ppa.
func (a *Array) BlockOf(ppa PPA) int {
	return int(int64(ppa) / int64(a.geo.PagesPerBlock))
}

// PageOf returns the in-block page index of ppa.
func (a *Array) PageOf(ppa PPA) int {
	return int(int64(ppa) % int64(a.geo.PagesPerBlock))
}

func (a *Array) channelOf(die int) int { return die / a.geo.DiesPerChannel }

func (a *Array) checkPPA(ppa PPA) error {
	if ppa < 0 || int64(ppa) >= a.geo.Pages() {
		return fmt.Errorf("nand: PPA %d out of range [0,%d)", ppa, a.geo.Pages())
	}
	return nil
}

// NextProgramPage returns the next programmable page index of a block, or
// PagesPerBlock when the block is full.
func (a *Array) NextProgramPage(die, block int) int {
	return a.blocks[die*a.geo.BlocksPerDie+block].nextPage
}

// EraseCount returns how many times a block has been erased (wear).
func (a *Array) EraseCount(die, block int) int64 {
	return a.blocks[die*a.geo.BlocksPerDie+block].erases
}

// Read returns the bytes stored at ppa along with the virtual time at which
// the data is available. Reading a page that was never programmed since its
// last erase is an FTL bug and returns an error.
//
// The returned slice aliases the stored page: it is valid until the caller's
// next simulation yield after the completion time, by which point the bytes
// must have been copied out (erased-page buffers are recycled once the clock
// passes the read horizon). Every consumer in this repository copies
// immediately on completion.
func (a *Array) Read(now sim.Time, ppa PPA) (data []byte, done sim.Time, err error) {
	if err := a.checkPPA(ppa); err != nil {
		return nil, now, err
	}
	if a.hook != nil {
		if herr := a.hook.ReadFault(now, ppa); herr != nil {
			// The die still spent the sense and transfer time; the returned
			// completion time anchors the caller's retry backoff.
			die := a.DieOf(ppa)
			senseStart, senseEnd := a.dies[die].Reserve(now, a.lat.PageRead)
			_, done = a.chans[a.channelOf(die)].Reserve(senseEnd, a.lat.ChannelXfer)
			a.stats.Reads++
			a.stats.ReadFaults++
			if a.trace != nil {
				a.trace.Emit("nand", "read", a.trace.Scope(), now, done, int64(senseStart.Sub(now)))
				a.trace.Instant("fault", "read.err", now, int64(ppa))
			}
			return nil, done, herr
		}
	}
	d := a.data[ppa]
	if d == nil {
		return nil, now, fmt.Errorf("nand: read of unwritten page %d", ppa)
	}
	die := a.DieOf(ppa)
	// Die senses the page, then the channel transfers it out.
	senseStart, senseEnd := a.dies[die].Reserve(now, a.lat.PageRead)
	_, done = a.chans[a.channelOf(die)].Reserve(senseEnd, a.lat.ChannelXfer)
	if done > a.readHorizon {
		a.readHorizon = done
	}
	a.stats.Reads++
	if a.trace != nil {
		a.trace.Emit("nand", "read", a.trace.Scope(), now, done, int64(senseStart.Sub(now)))
	}
	return d, done, nil
}

// Program writes data (at most PageSize bytes) to ppa and returns the time
// at which the program completes. It enforces the two NAND rules the FTL
// must respect: pages within a block are programmed strictly in order, and
// a page cannot be reprogrammed without an intervening block erase.
//
// Ownership: when data.Seg is non-nil the array stores the bytes by alias
// and retains one reference on the segment (released, quarantined, when the
// block erases). The producer must treat data.B as immutable for as long as
// any reference exists — the wal chain's append-only discipline. A borrowed
// ref (data.Seg == nil) is copied into a pool segment, so one-shot callers
// (metadata records, preconditioning) need no pool plumbing.
//
//slimio:borrows data
func (a *Array) Program(now sim.Time, ppa PPA, data bufpool.Ref) (done sim.Time, err error) {
	if err := a.checkPPA(ppa); err != nil {
		return now, err
	}
	if len(data.B) > a.geo.PageSize {
		return now, fmt.Errorf("nand: program of %d bytes exceeds page size %d", len(data.B), a.geo.PageSize)
	}
	die := a.DieOf(ppa)
	blockGlobal := a.BlockOf(ppa)
	page := a.PageOf(ppa)
	bs := &a.blocks[blockGlobal]
	if page != bs.nextPage {
		return now, fmt.Errorf("nand: out-of-order program: block %d expects page %d, got %d",
			blockGlobal, bs.nextPage, page)
	}
	bs.nextPage++
	// Channel transfers data in, then the die programs.
	xferStart, xferEnd := a.chans[a.channelOf(die)].Reserve(now, a.lat.ChannelXfer)
	_, done = a.dies[die].Reserve(xferEnd, a.lat.PageWrite)
	a.stats.Programs++
	if a.trace != nil {
		a.trace.Emit("nand", "program", a.trace.Scope(), now, done, int64(xferStart.Sub(now)))
	}
	if a.hook != nil {
		switch dec := a.hook.ProgramFault(now, done, ppa, data.B); dec.Outcome {
		case ProgramFail:
			// The page is consumed (a failed program cannot be retried in
			// place) but holds nothing readable.
			a.stats.ProgramFails++
			a.trace.Instant("fault", "program.err", now, int64(ppa))
			return done, &DeviceError{Status: StatusWriteFault, Op: "program", PPA: ppa}
		case ProgramTorn:
			a.data[ppa] = dec.Torn
			a.segs[ppa] = nil
			a.stats.TornPrograms++
			a.trace.Instant("fault", "program.torn", now, int64(ppa))
			return done, &DeviceError{Status: StatusInterruptedWrite, Op: "program", PPA: ppa}
		}
	}
	if data.Seg != nil {
		// Zero-copy store: alias the producer's pooled bytes and hold a
		// reference until the block erases.
		data.Seg.Retain()
		a.segs[ppa] = data.Seg
		a.data[ppa] = data.B
		return done, nil
	}
	// Borrowed bytes: copy into a pool segment so later caller mutation
	// cannot corrupt "flash" contents. The pool recycles erased pages'
	// segments instead of allocating per program; the reclaim gate is the
	// engine clock, not `now` (see Array.clock).
	s := a.pool.Get()
	stored := s.Bytes()[:len(data.B)]
	copy(stored, data.B)
	a.segs[ppa] = s
	a.data[ppa] = stored
	return done, nil
}

// StoredRef returns a pooled view of the page stored at ppa (Seg nil for
// torn images). GC and retirement migration use it to re-program live data
// onto fresh media without copying: Program retains the segment again for
// the destination page, and the source block's erase releases its share.
func (a *Array) StoredRef(ppa PPA) bufpool.Ref {
	return bufpool.Ref{Seg: a.segs[ppa], B: a.data[ppa]}
}

// ReleaseStored drops every stored page's pool reference immediately (no
// quarantine). Experiment teardown calls it — after the engine has stopped
// and all results are extracted — so the pool's in-flight count can be
// asserted zero; the array is no longer readable afterwards.
func (a *Array) ReleaseStored() {
	for i, s := range a.segs {
		if s != nil {
			s.Release()
			a.segs[i] = nil
		}
		a.data[i] = nil
	}
}

// Erase wipes a block, making all its pages programmable again, and returns
// the completion time.
func (a *Array) Erase(now sim.Time, die, block int) (done sim.Time, err error) {
	if die < 0 || die >= a.geo.Dies() || block < 0 || block >= a.geo.BlocksPerDie {
		return now, fmt.Errorf("nand: erase of invalid block die=%d block=%d", die, block)
	}
	bs := &a.blocks[die*a.geo.BlocksPerDie+block]
	if a.hook != nil {
		if herr := a.hook.EraseFault(now, die, block); herr != nil {
			// A failed erase still occupies the die; the block keeps its
			// contents and program pointer so the FTL can retire it.
			var eraseStart sim.Time
			eraseStart, done = a.dies[die].Reserve(now, a.lat.BlockErase)
			a.stats.Erases++
			a.stats.EraseFaults++
			if a.trace != nil {
				a.trace.Emit("nand", "erase", a.trace.Scope(), now, done, int64(eraseStart.Sub(now)))
				a.trace.Instant("fault", "erase.err", now, int64(die*a.geo.BlocksPerDie+block))
			}
			return done, herr
		}
	}
	bs.nextPage = 0
	bs.erases++
	base := a.PPAOf(die, block, 0)
	reusable := a.readHorizon.Add(quarantineSlack)
	for p := 0; p < a.geo.PagesPerBlock; p++ {
		ppa := base + PPA(p)
		if s := a.segs[ppa]; s != nil {
			// The stored alias may still back an in-flight read until the
			// read horizon passes; the pool quarantines until then.
			s.ReleaseAt(reusable)
			a.segs[ppa] = nil
		}
		a.data[ppa] = nil // torn images drop to the garbage collector
	}
	var eraseStart sim.Time
	eraseStart, done = a.dies[die].Reserve(now, a.lat.BlockErase)
	a.stats.Erases++
	if a.trace != nil {
		a.trace.Emit("nand", "erase", a.trace.Scope(), now, done, int64(eraseStart.Sub(now)))
	}
	return done, nil
}

// OccupyAllDies books d of service on every die starting at now, modelling
// controller-internal work (injected garbage collection) that competes with
// host commands.
func (a *Array) OccupyAllDies(now sim.Time, d sim.Duration) {
	for i := range a.dies {
		a.dies[i].Reserve(now, d)
	}
}

// WearStats summarizes block erase counts across the array, the input to
// wear-leveling analysis.
type WearStats struct {
	MinErases, MaxErases int64
	TotalErases          int64
	MeanErases           float64
}

// Wear reports erase-count statistics over every block.
func (a *Array) Wear() WearStats {
	var w WearStats
	if len(a.blocks) == 0 {
		return w
	}
	w.MinErases = a.blocks[0].erases
	for i := range a.blocks {
		e := a.blocks[i].erases
		w.TotalErases += e
		if e < w.MinErases {
			w.MinErases = e
		}
		if e > w.MaxErases {
			w.MaxErases = e
		}
	}
	w.MeanErases = float64(w.TotalErases) / float64(len(a.blocks))
	return w
}

// DieBusyTotal reports cumulative busy time of a die, for utilization stats.
func (a *Array) DieBusyTotal(die int) sim.Duration { return a.dies[die].BusyTotal() }

// ChannelBusyTotal reports cumulative busy (transfer) time of a channel,
// for the telemetry plane's per-channel occupancy gauges.
func (a *Array) ChannelBusyTotal(ch int) sim.Duration { return a.chans[ch].BusyTotal() }

// MaxBusyUntil reports the latest horizon over all dies and channels: the
// time at which the array fully drains if no further work arrives.
func (a *Array) MaxBusyUntil() sim.Time {
	var m sim.Time
	for i := range a.dies {
		if t := a.dies[i].BusyUntil(); t > m {
			m = t
		}
	}
	for i := range a.chans {
		if t := a.chans[i].BusyUntil(); t > m {
			m = t
		}
	}
	return m
}
