package nand

import "github.com/slimio/slimio/internal/sim"

// arenaChunkPages is how many page buffers each fresh arena chunk carves.
const arenaChunkPages = 64

// quarantineSlack pads the read horizon when a freed buffer enters
// quarantine. Read results are handed to consumers as aliases at the read's
// completion time; every consumer in this repository copies the bytes out
// within the same-timestamp event cascade plus sub-microsecond ring/handler
// work (≤ ~300 ns), so a microsecond-scale pad is far more than enough.
const quarantineSlack = 10 * sim.Microsecond

// quarBuf is a freed page buffer that becomes reusable at ready.
type quarBuf struct {
	buf   []byte
	ready sim.Time
}

// pageArena allocates page buffers in large chunks and recycles the buffers
// of erased pages. Program used to `make([]byte, ...)` per stored page —
// the single largest allocation source in the simulator — while erases threw
// the old buffers to the garbage collector; the arena turns that churn into
// steady-state reuse.
//
// Recycling is gated by a virtual-time quarantine: Array.Read returns stored
// pages by alias, so a buffer freed by an erase may still be referenced by
// an in-flight read (e.g. GC migrates a block's live pages, erases it, and a
// host read issued just before is still being consumed). A freed buffer
// re-enters circulation only once the clock passes every read completion
// that could alias it (the array's read horizon at free time, padded by
// quarantineSlack for post-completion handler work). Consumers must copy
// read data before their next yield — which every caller in this repository
// does; see Array.Read.
type pageArena struct {
	pageSize int
	chunk    []byte
	free     [][]byte
	// quar is FIFO: the read horizon is monotone, so buffers become ready
	// in the order they were freed.
	quar    []quarBuf
	quarOff int
}

// get returns an n-byte buffer (n ≤ pageSize). Contents are unspecified;
// the caller must overwrite all n bytes.
func (a *pageArena) get(now sim.Time, n int) []byte {
	for a.quarOff < len(a.quar) && a.quar[a.quarOff].ready < now {
		a.free = append(a.free, a.quar[a.quarOff].buf)
		a.quar[a.quarOff] = quarBuf{}
		a.quarOff++
	}
	if a.quarOff > 0 && (a.quarOff == len(a.quar) || a.quarOff > len(a.quar)/2) {
		// Slide pending entries to the front so the backing array is reused
		// instead of growing while the head is consumed.
		n := copy(a.quar, a.quar[a.quarOff:])
		for i := n; i < len(a.quar); i++ {
			a.quar[i] = quarBuf{}
		}
		a.quar, a.quarOff = a.quar[:n], 0
	}
	if k := len(a.free); k > 0 {
		buf := a.free[k-1]
		a.free = a.free[:k-1]
		return buf[:n]
	}
	return a.getFresh(n)
}

// getFresh carves a never-used buffer from the current chunk, bypassing the
// recycle path (used when no clock is attached to gate reuse).
func (a *pageArena) getFresh(n int) []byte {
	if len(a.chunk) < a.pageSize {
		a.chunk = make([]byte, arenaChunkPages*a.pageSize)
	}
	buf := a.chunk[:a.pageSize:a.pageSize]
	a.chunk = a.chunk[a.pageSize:]
	return buf[:n]
}

// put quarantines buf until ready. Buffers the arena did not carve (torn
// images handed in by the fault hook) are dropped to the garbage collector.
func (a *pageArena) put(buf []byte, ready sim.Time) {
	if cap(buf) != a.pageSize {
		return
	}
	a.quar = append(a.quar, quarBuf{buf: buf[:a.pageSize], ready: ready})
}
