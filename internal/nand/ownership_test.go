package nand

import (
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/sim"
)

// Fault-path ownership: a torn program (power cut mid-page) stores the
// hook's partial image, NOT an alias of the caller's pooled segment — the
// array must not retain a reference it would never release (the torn slot
// holds plain bytes, so the erase path has nothing to release there).
func TestTornProgramOwnership(t *testing.T) {
	a := testArray(t)
	pool := a.Pool()
	s := pool.Get()
	copy(s.Bytes(), page("payload", a.geo.PageSize))
	a.SetFaultHook(&scriptHook{programDec: ProgramDecision{
		Outcome: ProgramTorn, Torn: page("torn", a.geo.PageSize/2),
	}})
	ppa := a.PPAOf(0, 0, 0)
	if _, err := a.Program(0, ppa, bufpool.Ref{Seg: s, B: s.Bytes()}); !IsTornWrite(err) {
		t.Fatalf("err = %v, want interrupted-write status", err)
	}
	if ref := a.StoredRef(ppa); ref.Seg != nil {
		t.Fatal("torn slot aliases the caller's pooled segment")
	}
	if got := s.Refs(); got != 1 {
		t.Fatalf("caller's refcount = %d after torn program, want 1 (array must not retain)", got)
	}
	s.Release()
	a.SetFaultHook(nil)
	a.ReleaseStored()
	if n := pool.InFlight(); n != 0 {
		t.Fatalf("%d segments in flight after teardown", n)
	}
}

// A permanently failed program consumes the page slot but stores nothing:
// ownership of the payload stays with the caller, and teardown must not
// find a stale reference parked on the dead slot.
func TestProgramFailOwnership(t *testing.T) {
	a := testArray(t)
	pool := a.Pool()
	s := pool.Get()
	copy(s.Bytes(), page("payload", a.geo.PageSize))
	a.SetFaultHook(&scriptHook{programDec: ProgramDecision{Outcome: ProgramFail}})
	ppa := a.PPAOf(0, 0, 0)
	if _, err := a.Program(0, ppa, bufpool.Ref{Seg: s, B: s.Bytes()}); !IsProgramFail(err) {
		t.Fatalf("err = %v, want write-fault status", err)
	}
	if ref := a.StoredRef(ppa); ref.Seg != nil || ref.B != nil {
		t.Fatal("failed program stored something")
	}
	if got := s.Refs(); got != 1 {
		t.Fatalf("caller's refcount = %d after failed program, want 1", got)
	}
	s.Release()
	a.SetFaultHook(nil)
	a.ReleaseStored()
	if n := pool.InFlight(); n != 0 {
		t.Fatalf("%d segments in flight after teardown", n)
	}
}

// Erase releases each stored page's reference exactly once (into the read
// quarantine), and a subsequent ReleaseStored must treat the erased slots
// as empty — a second release of the same segment panics in bufpool, so
// this test passing IS the no-double-release proof.
func TestEraseReleasesStoredExactlyOnce(t *testing.T) {
	a := testArray(t)
	pool := a.Pool()
	ppb := a.geo.PagesPerBlock
	segs := make([]*bufpool.Segment, ppb)
	now := sim.Time(0)
	for p := 0; p < ppb; p++ {
		s := pool.Get()
		copy(s.Bytes(), page("z", a.geo.PageSize))
		segs[p] = s
		done, err := a.Program(now, a.PPAOf(0, 0, p), bufpool.Ref{Seg: s, B: s.Bytes()})
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if got := segs[0].Refs(); got != 2 {
		t.Fatalf("refs = %d after zero-copy program, want 2 (caller + array)", got)
	}
	if _, err := a.Erase(now, 0, 0); err != nil {
		t.Fatal(err)
	}
	for p, s := range segs {
		if got := s.Refs(); got != 1 {
			t.Fatalf("page %d: refs = %d after erase, want 1 (array's share released)", p, got)
		}
	}
	a.ReleaseStored() // must skip the erased block's already-released slots
	for _, s := range segs {
		s.Release()
	}
	if n := pool.InFlight(); n != 0 {
		t.Fatalf("%d segments in flight after teardown", n)
	}
}
