package nand

import (
	"bytes"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/sim"
)

// scriptHook is a FaultHook with per-call scripted decisions.
type scriptHook struct {
	readErr    error
	programDec ProgramDecision
	eraseErr   error
}

func (h *scriptHook) ReadFault(now sim.Time, ppa PPA) error { return h.readErr }
func (h *scriptHook) ProgramFault(now, done sim.Time, ppa PPA, data []byte) ProgramDecision {
	return h.programDec
}
func (h *scriptHook) EraseFault(now sim.Time, die, block int) error { return h.eraseErr }

func page(s string, size int) []byte {
	b := make([]byte, 0, size)
	for len(b) < size {
		b = append(b, s...)
	}
	return b[:size]
}

func TestHookReadFaultPropagates(t *testing.T) {
	a := testArray(t)
	if _, err := a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed(page("ok", a.geo.PageSize))); err != nil {
		t.Fatal(err)
	}
	h := &scriptHook{readErr: &DeviceError{Status: StatusUnrecoveredRead, Transient: true, Op: "read"}}
	a.SetFaultHook(h)
	_, done, err := a.Read(0, a.PPAOf(0, 0, 0))
	if !IsTransient(err) || StatusOf(err) != StatusUnrecoveredRead {
		t.Fatalf("read err = %v, want transient unrecovered-read", err)
	}
	if done <= 0 {
		t.Fatal("failed read must still advance time (retry backoff anchor)")
	}
	if a.Stats().ReadFaults != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
	// The data is intact: dropping the hook makes the page readable again.
	a.SetFaultHook(nil)
	d, _, err := a.Read(done, a.PPAOf(0, 0, 0))
	if err != nil || !bytes.Equal(d, page("ok", a.geo.PageSize)) {
		t.Fatalf("retry after fault cleared: %v", err)
	}
}

// A failed program consumes the page slot (no in-place retry) but stores
// nothing; a torn program stores the hook's partial image. Both must keep
// the sequential-program rule moving forward.
func TestHookProgramFailAndTorn(t *testing.T) {
	a := testArray(t)
	h := &scriptHook{programDec: ProgramDecision{Outcome: ProgramFail}}
	a.SetFaultHook(h)
	if _, err := a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed(page("lost", a.geo.PageSize))); !IsProgramFail(err) {
		t.Fatalf("program err = %v, want write-fault", err)
	}
	if a.NextProgramPage(0, 0) != 1 {
		t.Fatalf("failed program must consume the page slot, nextPage = %d", a.NextProgramPage(0, 0))
	}
	torn := bytes.Repeat([]byte{0xA5}, a.geo.PageSize)
	h.programDec = ProgramDecision{Outcome: ProgramTorn, Torn: torn}
	if _, err := a.Program(0, a.PPAOf(0, 0, 1), bufpool.Borrowed(page("torn", a.geo.PageSize))); !IsTornWrite(err) {
		t.Fatalf("program err = %v, want interrupted-write", err)
	}
	a.SetFaultHook(nil)
	// Page 0 holds nothing readable; page 1 holds the torn image.
	if _, _, err := a.Read(0, a.PPAOf(0, 0, 0)); err == nil {
		t.Fatal("failed program left readable data")
	}
	d, _, err := a.Read(0, a.PPAOf(0, 0, 1))
	if err != nil || !bytes.Equal(d, torn) {
		t.Fatalf("torn page read = %v, image match %v", err, bytes.Equal(d, torn))
	}
	if s := a.Stats(); s.ProgramFails != 1 || s.TornPrograms != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// A failed erase keeps the block's contents and program pointer so the FTL
// can still migrate valid pages off it before retiring it.
func TestHookEraseFaultKeepsContents(t *testing.T) {
	a := testArray(t)
	want := page("keep", a.geo.PageSize)
	if _, err := a.Program(0, a.PPAOf(0, 0, 0), bufpool.Borrowed(want)); err != nil {
		t.Fatal(err)
	}
	a.SetFaultHook(&scriptHook{eraseErr: &DeviceError{Status: StatusEraseFault, Op: "erase"}})
	if _, err := a.Erase(0, 0, 0); !IsEraseFault(err) {
		t.Fatalf("erase err = %v, want erase-fault", err)
	}
	a.SetFaultHook(nil)
	if a.NextProgramPage(0, 0) != 1 {
		t.Fatalf("failed erase reset the program pointer to %d", a.NextProgramPage(0, 0))
	}
	d, _, err := a.Read(0, a.PPAOf(0, 0, 0))
	if err != nil || !bytes.Equal(d, want) {
		t.Fatalf("block lost its contents on failed erase: %v", err)
	}
	if a.Stats().EraseFaults != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
}
