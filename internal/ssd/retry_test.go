package ssd

import (
	"bytes"
	"testing"

	"github.com/slimio/slimio/internal/fault"
	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// failNReadsHook fails the next n read attempts, then heals.
type failNReadsHook struct{ n int }

func (h *failNReadsHook) ReadFault(now sim.Time, ppa nand.PPA) error {
	if h.n > 0 {
		h.n--
		return &nand.DeviceError{Status: nand.StatusUnrecoveredRead, Transient: true, Op: "read", PPA: ppa}
	}
	return nil
}
func (h *failNReadsHook) ProgramFault(now, done sim.Time, ppa nand.PPA, data []byte) nand.ProgramDecision {
	return nand.ProgramDecision{}
}
func (h *failNReadsHook) EraseFault(now sim.Time, die, block int) error { return nil }

func newRetryDevice(t *testing.T) (*nand.Array, *Device) {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 8, PagesPerBlock: 8, PageSize: 128}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	return arr, New(ftl.New(arr, ftl.Config{}), Config{})
}

// Two transient read failures must cost exactly two retries, succeed on the
// third attempt, and push the completion past the exponential backoff
// (100 µs + 200 µs on the virtual clock) — never rewinding time.
func TestReadRetryBackoff(t *testing.T) {
	arr, dev := newRetryDevice(t)
	payload := pages(1, dev.PageSize(), 'r')
	wdone, err := dev.WritePages(0, 3, refs(payload), 0)
	if err != nil {
		t.Fatal(err)
	}
	arr.SetFaultHook(&failNReadsHook{n: 2})
	data, rdone, err := dev.ReadPages(wdone, 3, 1)
	if err != nil {
		t.Fatalf("read with 2 transient faults: %v", err)
	}
	if !bytes.Equal(data[0], payload[0]) {
		t.Fatal("retried read returned wrong data")
	}
	if got := dev.IOStats().ReadRetries; got != 2 {
		t.Fatalf("ReadRetries = %d, want 2", got)
	}
	if minDone := wdone.Add(300 * sim.Microsecond); rdone < minDone {
		t.Fatalf("completion %v precedes the backoff floor %v", rdone, minDone)
	}
}

// A read that keeps failing exhausts the bounded retry budget and surfaces
// the device status instead of looping forever.
func TestReadRetriesExhausted(t *testing.T) {
	arr, dev := newRetryDevice(t)
	if _, err := dev.WritePages(0, 0, refs(pages(1, dev.PageSize(), 'x')), 0); err != nil {
		t.Fatal(err)
	}
	arr.SetFaultHook(&failNReadsHook{n: 1 << 30})
	_, _, err := dev.ReadPages(0, 0, 1)
	if nand.StatusOf(err) != nand.StatusUnrecoveredRead {
		t.Fatalf("err = %v, want unrecovered-read status", err)
	}
	st := dev.IOStats()
	if st.ReadRetries != 5 || st.ReadFailures != 1 {
		t.Fatalf("stats = %+v, want 5 retries (default budget) and 1 failure", st)
	}
}

// Torn writes are permanent (the power is gone): the front end must not
// burn retries on them, only count the failure and pass the status up.
func TestTornWriteNotRetried(t *testing.T) {
	arr, dev := newRetryDevice(t)
	plan := fault.NewPlan(fault.Config{Seed: 5})
	plan.SchedulePowerCut(0) // every program completes after the cut
	arr.SetFaultHook(plan)
	_, err := dev.WritePages(0, 0, refs(pages(1, dev.PageSize(), 't')), 0)
	if !nand.IsTornWrite(err) {
		t.Fatalf("err = %v, want interrupted-write status", err)
	}
	st := dev.IOStats()
	if st.WriteRetries != 0 || st.WriteFailures != 1 {
		t.Fatalf("stats = %+v, want 0 retries and 1 failure", st)
	}
}
