package ssd

import (
	"fmt"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// Namespace is an NVMe-style namespace: a contiguous logical-page window of
// a shared FTL plus a placement-identifier remapping. Wrapping one in New
// gives each co-located tenant its own Device over the same physical media,
// so multi-tenant stacks need no changes above the device layer — a
// tenant's LPAs are isolated by the window and its placement streams by the
// PID map (typically fdp.PIDLease.PID).
//
// A Namespace holds no payload state of its own: reads, writes, and trims
// translate and forward, so it satisfies the FTL contract of the front-end
// (Write borrows data exactly like the FTL below it).
type Namespace struct {
	inner  FTL
	base   int64
	pages  int64
	mapPID func(uint32) uint32

	hostWrites int64
}

// NewNamespace carves the window [basePage, basePage+pages) out of inner.
// mapPID translates namespace-local placement identifiers to device PIDs;
// nil is the identity (useful over a conventional FTL, which ignores PIDs
// anyway).
func NewNamespace(inner FTL, basePage, pages int64, mapPID func(uint32) uint32) (*Namespace, error) {
	if inner == nil {
		return nil, fmt.Errorf("ssd: namespace over nil FTL")
	}
	if basePage < 0 || pages <= 0 || basePage+pages > inner.Capacity() {
		return nil, fmt.Errorf("ssd: namespace window [%d,%d) outside device capacity %d",
			basePage, basePage+pages, inner.Capacity())
	}
	return &Namespace{inner: inner, base: basePage, pages: pages, mapPID: mapPID}, nil
}

func (n *Namespace) checkLPA(lpa int64) error {
	if lpa < 0 || lpa >= n.pages {
		return fmt.Errorf("ssd: namespace LPA %d out of range [0,%d)", lpa, n.pages)
	}
	return nil
}

func (n *Namespace) pid(local uint32) uint32 {
	if n.mapPID == nil {
		return local
	}
	return n.mapPID(local)
}

// Write stores one page at the namespace-local lpa on the mapped placement
// stream.
//
//slimio:borrows data
func (n *Namespace) Write(now sim.Time, lpa int64, data bufpool.Ref, pid uint32) (sim.Time, error) {
	if err := n.checkLPA(lpa); err != nil {
		return now, err
	}
	done, err := n.inner.Write(now, n.base+lpa, data, n.pid(pid))
	if err == nil {
		n.hostWrites++
	}
	return done, err
}

// Read returns the page stored at the namespace-local lpa.
func (n *Namespace) Read(now sim.Time, lpa int64) ([]byte, sim.Time, error) {
	if err := n.checkLPA(lpa); err != nil {
		return nil, now, err
	}
	return n.inner.Read(now, n.base+lpa)
}

// Deallocate trims count namespace-local pages starting at lpa.
func (n *Namespace) Deallocate(lpa, count int64) error {
	if count < 0 || lpa < 0 || lpa+count > n.pages {
		return fmt.Errorf("ssd: namespace deallocate range [%d,%d) out of bounds [0,%d)", lpa, lpa+count, n.pages)
	}
	return n.inner.Deallocate(n.base+lpa, count)
}

// Capacity reports the window size in pages.
func (n *Namespace) Capacity() int64 { return n.pages }

// PageSize reports the shared device's page size.
func (n *Namespace) PageSize() int { return n.inner.PageSize() }

// BaseStats reports the whole shared device's counters (namespaces share
// the FTL, so host/NAND page totals are device-global; per-namespace write
// volume is HostWritePages).
func (n *Namespace) BaseStats() ftl.Stats { return n.inner.BaseStats() }

// Array exposes the shared NAND array.
func (n *Namespace) Array() *nand.Array { return n.inner.Array() }

// Mapped reports whether the namespace-local lpa holds data.
func (n *Namespace) Mapped(lpa int64) bool {
	return lpa >= 0 && lpa < n.pages && n.inner.Mapped(n.base+lpa)
}

// Base reports the window's first device LPA.
func (n *Namespace) Base() int64 { return n.base }

// HostWritePages counts pages successfully written through this namespace —
// the per-tenant host write volume even when the FTL below cannot attribute
// (the conventional single-stream baseline).
func (n *Namespace) HostWritePages() int64 { return n.hostWrites }
