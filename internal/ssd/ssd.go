// Package ssd provides the NVMe-style front-end shared by both flash
// translation layers: page-granular read/write/deallocate commands with an
// optional FDP placement identifier, per-command controller overhead, and a
// preconditioning helper that puts a device under garbage-collection
// pressure for the paper's "under GC" scenarios.
//
// The front-end is deliberately thin: queueing happens on the NAND die and
// channel timelines below, and path-specific behaviour (page cache, I/O
// scheduler, io_uring rings) lives in the kernelio and uring packages above.
package ssd

import (
	"fmt"
	"math/rand"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/vtrace"
)

// FTL is the translation-layer contract the device front-end drives. Both
// ftl.FTL (conventional) and fdp.FTL (flexible data placement) satisfy it;
// the conventional FTL simply ignores the placement identifier.
//
// Write borrows data for the duration of the call: the NAND layer retains
// pooled segments it stores and the caller keeps its own reference, so the
// front-end never owns payload bytes.
type FTL interface {
	Write(now sim.Time, lpa int64, data bufpool.Ref, pid uint32) (done sim.Time, err error)
	Read(now sim.Time, lpa int64) (data []byte, done sim.Time, err error)
	Deallocate(lpa, count int64) error
	Capacity() int64
	PageSize() int
	BaseStats() ftl.Stats
	Array() *nand.Array
	Mapped(lpa int64) bool
}

// Config tunes the device front-end.
type Config struct {
	// CommandOverhead models NVMe controller processing per command
	// (submission decode, completion posting). Default 5 µs.
	CommandOverhead sim.Duration
	// MaxRetries bounds per-page retries of transient device errors before
	// the command fails with the NVMe status of the last attempt. Default 5.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling per attempt
	// — all in virtual time on the simulation clock. Default 100 µs.
	RetryBackoff sim.Duration
	// Metrics, when non-nil, counts retries and terminal failures
	// (ssd.read_retry, ssd.write_retry, ssd.read_fail, ssd.write_fail).
	Metrics *metrics.Counter
	// Trace, when non-nil, records one ssd command span per
	// WritePages/ReadPages/WriteScattered (Arg = page count) and instants
	// for transient-error retries and terminal failures.
	Trace *vtrace.Tracer
}

func (c *Config) fillDefaults() {
	if c.CommandOverhead <= 0 {
		c.CommandOverhead = 5 * sim.Microsecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * sim.Microsecond
	}
}

// IOStats counts front-end error handling.
type IOStats struct {
	ReadRetries   int64
	WriteRetries  int64
	ReadFailures  int64 // reads failed after exhausting retries
	WriteFailures int64 // writes failed with a device status (incl. torn)
}

// Device is a page-granular NVMe-ish block device over an FTL.
type Device struct {
	ftl FTL
	cfg Config
	io  IOStats
}

// New wraps an FTL as a Device.
func New(f FTL, cfg Config) *Device {
	cfg.fillDefaults()
	return &Device{ftl: f, cfg: cfg}
}

// FTL exposes the underlying translation layer (for stats and inspection).
func (d *Device) FTL() FTL { return d.ftl }

// IOStats reports front-end retry/failure counters.
func (d *Device) IOStats() IOStats { return d.io }

// Mapped reports whether lpa currently holds data (no media access).
func (d *Device) Mapped(lpa int64) bool { return d.ftl.Mapped(lpa) }

func (d *Device) inc(name string) {
	if d.cfg.Metrics != nil {
		d.cfg.Metrics.Inc(name, 1)
	}
}

// readPage reads one page, retrying transient device errors with exponential
// backoff on the virtual clock. The failed attempt's own completion time is
// the backoff base, so retries never rewind time.
func (d *Device) readPage(now sim.Time, lpa int64) ([]byte, sim.Time, error) {
	backoff := d.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		data, done, err := d.ftl.Read(now, lpa)
		if err == nil {
			return data, done, nil
		}
		if !nand.IsTransient(err) || attempt >= d.cfg.MaxRetries {
			if nand.IsDeviceError(err) {
				d.io.ReadFailures++
				d.inc("ssd.read_fail")
				d.cfg.Trace.Instant("ssd", "read.fail", done, lpa)
			}
			return nil, done, err
		}
		d.io.ReadRetries++
		d.inc("ssd.read_retry")
		d.cfg.Trace.Instant("ssd", "read.retry", done, int64(attempt+1))
		now = done.Add(backoff)
		backoff *= 2
	}
}

// writePage writes one page with the same transient-retry policy. Permanent
// program failures never reach here — the FTL absorbs them by retiring the
// block and remapping — so terminal errors are torn writes (power loss) or
// model errors.
//
//slimio:borrows data
func (d *Device) writePage(now sim.Time, lpa int64, data bufpool.Ref, pid uint32) (sim.Time, error) {
	backoff := d.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		done, err := d.ftl.Write(now, lpa, data, pid)
		if err == nil {
			return done, nil
		}
		if !nand.IsTransient(err) || attempt >= d.cfg.MaxRetries {
			if nand.IsDeviceError(err) {
				d.io.WriteFailures++
				d.inc("ssd.write_fail")
				d.cfg.Trace.Instant("ssd", "write.fail", done, lpa)
			}
			return done, err
		}
		d.io.WriteRetries++
		d.inc("ssd.write_retry")
		d.cfg.Trace.Instant("ssd", "write.retry", done, int64(attempt+1))
		now = done.Add(backoff)
		backoff *= 2
	}
}

// Capacity reports the device size in pages.
func (d *Device) Capacity() int64 { return d.ftl.Capacity() }

// PageSize reports the page size in bytes.
func (d *Device) PageSize() int { return d.ftl.PageSize() }

// Stats reports host-visible FTL counters.
func (d *Device) Stats() ftl.Stats { return d.ftl.BaseStats() }

// WritePages issues one write command covering len(pages) consecutive
// logical pages starting at lpa, tagged with pid, and returns the command's
// completion time. Pages fan out to the FTL back to back, so die striping
// below provides the parallelism; the command completes when its last page
// is durable. Page refs are borrowed: the caller still owns its references
// when WritePages returns (retries re-submit the same ref).
//
//slimio:borrows pages
func (d *Device) WritePages(now sim.Time, lpa int64, pages []bufpool.Ref, pid uint32) (cmdDone sim.Time, err error) {
	if len(pages) == 0 {
		return now, nil
	}
	tr := d.cfg.Trace
	parent := tr.Scope()
	span := tr.Begin("ssd", "write", parent, now)
	tr.SetArg(span, int64(len(pages)))
	tr.SetScope(span)
	defer func() {
		tr.End(span, cmdDone)
		tr.SetScope(parent)
	}()
	start := now.Add(d.cfg.CommandOverhead)
	end := start
	for i, p := range pages {
		if len(p.B) > d.PageSize() {
			return now, fmt.Errorf("ssd: page %d is %d bytes, page size %d", i, len(p.B), d.PageSize())
		}
		done, err := d.writePage(start, lpa+int64(i), p, pid)
		if err != nil {
			if done > end {
				end = done
			}
			return end, err
		}
		if done > end {
			end = done
		}
	}
	return end, nil
}

// ReadPages issues one read command covering n consecutive logical pages
// starting at lpa. It returns the page contents and the completion time.
func (d *Device) ReadPages(now sim.Time, lpa int64, n int64) (pages [][]byte, cmdDone sim.Time, err error) {
	tr := d.cfg.Trace
	parent := tr.Scope()
	span := tr.Begin("ssd", "read", parent, now)
	tr.SetArg(span, n)
	tr.SetScope(span)
	defer func() {
		tr.End(span, cmdDone)
		tr.SetScope(parent)
	}()
	start := now.Add(d.cfg.CommandOverhead)
	end := start
	out := make([][]byte, 0, n)
	for i := int64(0); i < n; i++ {
		data, done, err := d.readPage(start, lpa+i)
		if err != nil {
			return nil, now, err
		}
		if done > end {
			end = done
		}
		out = append(out, data)
	}
	return out, end, nil
}

// Deallocate issues a TRIM for count pages starting at lpa.
func (d *Device) Deallocate(lpa, count int64) error {
	return d.ftl.Deallocate(lpa, count)
}

// Write is the blocking form of WritePages for simulation processes: the
// calling process sleeps until the command completes.
//
//slimio:borrows pages
func (d *Device) Write(env *sim.Env, lpa int64, pages []bufpool.Ref, pid uint32) error {
	done, err := d.WritePages(env.Now(), lpa, pages, pid)
	if err != nil {
		return err
	}
	env.Sleep(done.Sub(env.Now()))
	return nil
}

// Read is the blocking form of ReadPages.
func (d *Device) Read(env *sim.Env, lpa int64, n int64) ([][]byte, error) {
	data, done, err := d.ReadPages(env.Now(), lpa, n)
	if err != nil {
		return nil, err
	}
	env.Sleep(done.Sub(env.Now()))
	return data, nil
}

// Precondition fills fraction frac of the LPA range [from, to) with
// synthetic pages and then invalidates every holeEvery-th written page,
// leaving the device with fragmented mostly-valid data so that subsequent
// writes trigger garbage collection that must copy. This reproduces the
// paper's "under GC" scenarios on a simulated device that starts empty.
// holeEvery <= 0 punches no holes (fully pinned data).
func Precondition(dev *Device, from, to int64, frac float64, holeEvery int64, rng *rand.Rand) error {
	if from < 0 || to > dev.Capacity() || from >= to {
		return fmt.Errorf("ssd: precondition range [%d,%d) invalid for capacity %d", from, to, dev.Capacity())
	}
	if frac <= 0 || frac > 1 {
		return fmt.Errorf("ssd: precondition fraction %v out of (0,1]", frac)
	}
	span := to - from
	n := int64(float64(span) * frac)
	payload := make([]byte, dev.PageSize())
	rng.Read(payload)
	ref := bufpool.Borrowed(payload) // NAND copies borrowed pages into the pool
	// Issue everything at time zero: the fill is device history, not part
	// of the measured run; the dies drain the short backlog during warmup.
	for i := int64(0); i < n; i++ {
		if _, err := dev.ftl.Write(0, from+i, ref, 0); err != nil {
			return fmt.Errorf("ssd: precondition write %d: %w", i, err)
		}
	}
	// Punch holes so reclaim victims are fragmented but mostly valid.
	if holeEvery > 0 {
		for i := from; i < from+n; i += holeEvery {
			if err := dev.ftl.Deallocate(i, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// PageWrite names one page of a scattered write command, optionally tagged
// with a per-page FDP placement identifier (used by the FDP-aware-filesystem
// ablation; plain kernel-path writes leave it zero). Data is borrowed for
// the duration of the command.
type PageWrite struct {
	LPA  int64
	Data bufpool.Ref
	PID  uint32
}

// WriteScattered issues one command writing a set of (possibly
// non-contiguous) pages, as produced by filesystem writeback batching. The
// command completes when its last page is durable.
func (d *Device) WriteScattered(now sim.Time, pages []PageWrite) (cmdDone sim.Time, err error) {
	if len(pages) == 0 {
		return now, nil
	}
	tr := d.cfg.Trace
	parent := tr.Scope()
	span := tr.Begin("ssd", "write.scattered", parent, now)
	tr.SetArg(span, int64(len(pages)))
	tr.SetScope(span)
	defer func() {
		tr.End(span, cmdDone)
		tr.SetScope(parent)
	}()
	start := now.Add(d.cfg.CommandOverhead)
	end := start
	for _, p := range pages {
		if len(p.Data.B) > d.PageSize() {
			return now, fmt.Errorf("ssd: page at LPA %d is %d bytes, page size %d", p.LPA, len(p.Data.B), d.PageSize())
		}
		done, err := d.writePage(start, p.LPA, p.Data, p.PID)
		if err != nil {
			if done > end {
				end = done
			}
			return end, err
		}
		if done > end {
			end = done
		}
	}
	return end, nil
}

// InjectGCPressure puts the device under sustained internal garbage
// collection: every period, duty×period of controller work is booked on
// every die, delaying host commands behind it. This reproduces the paper's
// "under GC" scenarios directly — at heavily scaled-down capacities the
// free-space dynamics that cause organic steady-state GC cannot form, so
// the pressure is injected and documented as a substitution (DESIGN.md).
// The returned stop function ends the injection.
func (d *Device) InjectGCPressure(eng *sim.Engine, duty float64, period sim.Duration) (stop func()) {
	if duty < 0 {
		duty = 0
	}
	if duty > 0.9 {
		duty = 0.9
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		d.ftl.Array().OccupyAllDies(eng.Now(), sim.Duration(float64(period)*duty))
		eng.After(period, tick)
	}
	eng.After(period, tick)
	return func() { stopped = true }
}
