// Package ssd provides the NVMe-style front-end shared by both flash
// translation layers: page-granular read/write/deallocate commands with an
// optional FDP placement identifier, per-command controller overhead, and a
// preconditioning helper that puts a device under garbage-collection
// pressure for the paper's "under GC" scenarios.
//
// The front-end is deliberately thin: queueing happens on the NAND die and
// channel timelines below, and path-specific behaviour (page cache, I/O
// scheduler, io_uring rings) lives in the kernelio and uring packages above.
package ssd

import (
	"fmt"
	"math/rand"

	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// FTL is the translation-layer contract the device front-end drives. Both
// ftl.FTL (conventional) and fdp.FTL (flexible data placement) satisfy it;
// the conventional FTL simply ignores the placement identifier.
type FTL interface {
	Write(now sim.Time, lpa int64, data []byte, pid uint32) (done sim.Time, err error)
	Read(now sim.Time, lpa int64) (data []byte, done sim.Time, err error)
	Deallocate(lpa, count int64) error
	Capacity() int64
	PageSize() int
	BaseStats() ftl.Stats
	Array() *nand.Array
}

// Config tunes the device front-end.
type Config struct {
	// CommandOverhead models NVMe controller processing per command
	// (submission decode, completion posting). Default 5 µs.
	CommandOverhead sim.Duration
}

func (c *Config) fillDefaults() {
	if c.CommandOverhead <= 0 {
		c.CommandOverhead = 5 * sim.Microsecond
	}
}

// Device is a page-granular NVMe-ish block device over an FTL.
type Device struct {
	ftl FTL
	cfg Config
}

// New wraps an FTL as a Device.
func New(f FTL, cfg Config) *Device {
	cfg.fillDefaults()
	return &Device{ftl: f, cfg: cfg}
}

// FTL exposes the underlying translation layer (for stats and inspection).
func (d *Device) FTL() FTL { return d.ftl }

// Capacity reports the device size in pages.
func (d *Device) Capacity() int64 { return d.ftl.Capacity() }

// PageSize reports the page size in bytes.
func (d *Device) PageSize() int { return d.ftl.PageSize() }

// Stats reports host-visible FTL counters.
func (d *Device) Stats() ftl.Stats { return d.ftl.BaseStats() }

// WritePages issues one write command covering len(pages) consecutive
// logical pages starting at lpa, tagged with pid, and returns the command's
// completion time. Pages fan out to the FTL back to back, so die striping
// below provides the parallelism; the command completes when its last page
// is durable.
func (d *Device) WritePages(now sim.Time, lpa int64, pages [][]byte, pid uint32) (sim.Time, error) {
	if len(pages) == 0 {
		return now, nil
	}
	start := now.Add(d.cfg.CommandOverhead)
	end := start
	for i, p := range pages {
		if len(p) > d.PageSize() {
			return now, fmt.Errorf("ssd: page %d is %d bytes, page size %d", i, len(p), d.PageSize())
		}
		done, err := d.ftl.Write(start, lpa+int64(i), p, pid)
		if err != nil {
			return now, err
		}
		if done > end {
			end = done
		}
	}
	return end, nil
}

// ReadPages issues one read command covering n consecutive logical pages
// starting at lpa. It returns the page contents and the completion time.
func (d *Device) ReadPages(now sim.Time, lpa int64, n int64) ([][]byte, sim.Time, error) {
	start := now.Add(d.cfg.CommandOverhead)
	end := start
	out := make([][]byte, 0, n)
	for i := int64(0); i < n; i++ {
		data, done, err := d.ftl.Read(start, lpa+i)
		if err != nil {
			return nil, now, err
		}
		if done > end {
			end = done
		}
		out = append(out, data)
	}
	return out, end, nil
}

// Deallocate issues a TRIM for count pages starting at lpa.
func (d *Device) Deallocate(lpa, count int64) error {
	return d.ftl.Deallocate(lpa, count)
}

// Write is the blocking form of WritePages for simulation processes: the
// calling process sleeps until the command completes.
func (d *Device) Write(env *sim.Env, lpa int64, pages [][]byte, pid uint32) error {
	done, err := d.WritePages(env.Now(), lpa, pages, pid)
	if err != nil {
		return err
	}
	env.Sleep(done.Sub(env.Now()))
	return nil
}

// Read is the blocking form of ReadPages.
func (d *Device) Read(env *sim.Env, lpa int64, n int64) ([][]byte, error) {
	data, done, err := d.ReadPages(env.Now(), lpa, n)
	if err != nil {
		return nil, err
	}
	env.Sleep(done.Sub(env.Now()))
	return data, nil
}

// Precondition fills fraction frac of the LPA range [from, to) with
// synthetic pages and then invalidates every holeEvery-th written page,
// leaving the device with fragmented mostly-valid data so that subsequent
// writes trigger garbage collection that must copy. This reproduces the
// paper's "under GC" scenarios on a simulated device that starts empty.
// holeEvery <= 0 punches no holes (fully pinned data).
func Precondition(dev *Device, from, to int64, frac float64, holeEvery int64, rng *rand.Rand) error {
	if from < 0 || to > dev.Capacity() || from >= to {
		return fmt.Errorf("ssd: precondition range [%d,%d) invalid for capacity %d", from, to, dev.Capacity())
	}
	if frac <= 0 || frac > 1 {
		return fmt.Errorf("ssd: precondition fraction %v out of (0,1]", frac)
	}
	span := to - from
	n := int64(float64(span) * frac)
	payload := make([]byte, dev.PageSize())
	rng.Read(payload)
	// Issue everything at time zero: the fill is device history, not part
	// of the measured run; the dies drain the short backlog during warmup.
	for i := int64(0); i < n; i++ {
		if _, err := dev.ftl.Write(0, from+i, payload, 0); err != nil {
			return fmt.Errorf("ssd: precondition write %d: %w", i, err)
		}
	}
	// Punch holes so reclaim victims are fragmented but mostly valid.
	if holeEvery > 0 {
		for i := from; i < from+n; i += holeEvery {
			if err := dev.ftl.Deallocate(i, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// PageWrite names one page of a scattered write command, optionally tagged
// with a per-page FDP placement identifier (used by the FDP-aware-filesystem
// ablation; plain kernel-path writes leave it zero).
type PageWrite struct {
	LPA  int64
	Data []byte
	PID  uint32
}

// WriteScattered issues one command writing a set of (possibly
// non-contiguous) pages, as produced by filesystem writeback batching. The
// command completes when its last page is durable.
func (d *Device) WriteScattered(now sim.Time, pages []PageWrite) (sim.Time, error) {
	if len(pages) == 0 {
		return now, nil
	}
	start := now.Add(d.cfg.CommandOverhead)
	end := start
	for _, p := range pages {
		if len(p.Data) > d.PageSize() {
			return now, fmt.Errorf("ssd: page at LPA %d is %d bytes, page size %d", p.LPA, len(p.Data), d.PageSize())
		}
		done, err := d.ftl.Write(start, p.LPA, p.Data, p.PID)
		if err != nil {
			return now, err
		}
		if done > end {
			end = done
		}
	}
	return end, nil
}

// InjectGCPressure puts the device under sustained internal garbage
// collection: every period, duty×period of controller work is booked on
// every die, delaying host commands behind it. This reproduces the paper's
// "under GC" scenarios directly — at heavily scaled-down capacities the
// free-space dynamics that cause organic steady-state GC cannot form, so
// the pressure is injected and documented as a substitution (DESIGN.md).
// The returned stop function ends the injection.
func (d *Device) InjectGCPressure(eng *sim.Engine, duty float64, period sim.Duration) (stop func()) {
	if duty < 0 {
		duty = 0
	}
	if duty > 0.9 {
		duty = 0.9
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		d.ftl.Array().OccupyAllDies(eng.Now(), sim.Duration(float64(period)*duty))
		eng.After(period, tick)
	}
	eng.After(period, tick)
	return func() { stopped = true }
}
