package ssd

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

func newConvDevice(t *testing.T) *Device {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 8, PagesPerBlock: 8, PageSize: 128}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	return New(ftl.New(arr, ftl.Config{}), Config{})
}

func newFDPDevice(t *testing.T) *Device {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 8, PagesPerBlock: 8, PageSize: 128}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fdp.New(arr, fdp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return New(f, Config{})
}

// Compile-time interface checks for both FTLs.
var (
	_ FTL = (*ftl.FTL)(nil)
	_ FTL = (*fdp.FTL)(nil)
)

func pages(n, size int, tag byte) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, size)
		for j := range p {
			p[j] = tag + byte(i)
		}
		out[i] = p
	}
	return out
}

func TestMultiPageWriteRead(t *testing.T) {
	for name, dev := range map[string]*Device{"conv": newConvDevice(t), "fdp": newFDPDevice(t)} {
		in := pages(5, 128, 'a')
		done, err := dev.WritePages(0, 10, refs(in), 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if done <= 0 {
			t.Fatalf("%s: non-positive completion", name)
		}
		out, _, err := dev.ReadPages(done, 10, 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range in {
			if !bytes.Equal(in[i], out[i]) {
				t.Fatalf("%s: page %d mismatch", name, i)
			}
		}
	}
}

func TestMultiPageWriteParallelism(t *testing.T) {
	dev := newConvDevice(t)
	// 4 dies: a 4-page write should complete in roughly one program, not 4.
	one, err := dev.WritePages(0, 0, refs(pages(1, 128, 'x')), 0)
	if err != nil {
		t.Fatal(err)
	}
	dev2 := newConvDevice(t)
	four, err := dev2.WritePages(0, 0, refs(pages(4, 128, 'x')), 0)
	if err != nil {
		t.Fatal(err)
	}
	if four >= one*3 {
		t.Fatalf("4-page write took %v vs 1-page %v: no die parallelism", four, one)
	}
}

func TestCommandOverheadApplied(t *testing.T) {
	dev := newConvDevice(t)
	done, err := dev.WritePages(0, 0, refs(pages(1, 128, 'x')), 0)
	if err != nil {
		t.Fatal(err)
	}
	lat := nand.DefaultLatencies()
	min := sim.Time(5*sim.Microsecond) + sim.Time(lat.PageWrite)
	if done < min {
		t.Fatalf("completion %v below overhead+program %v", done, min)
	}
}

func TestEmptyWriteNoop(t *testing.T) {
	dev := newConvDevice(t)
	done, err := dev.WritePages(100, 0, nil, 0)
	if err != nil || done != 100 {
		t.Fatalf("empty write: done=%v err=%v", done, err)
	}
}

func TestOversizedPageRejected(t *testing.T) {
	dev := newConvDevice(t)
	if _, err := dev.WritePages(0, 0, refs([][]byte{make([]byte, 129)}), 0); err == nil {
		t.Fatal("oversized page accepted")
	}
}

func TestBlockingHelpers(t *testing.T) {
	dev := newConvDevice(t)
	eng := sim.NewEngine()
	var wrote, read sim.Time
	eng.Spawn("io", func(env *sim.Env) {
		if err := dev.Write(env, 0, refs(pages(2, 128, 'b')), 0); err != nil {
			t.Error(err)
			return
		}
		wrote = env.Now()
		data, err := dev.Read(env, 0, 2)
		if err != nil {
			t.Error(err)
			return
		}
		read = env.Now()
		if len(data) != 2 || data[0][0] != 'b' {
			t.Error("read back wrong data")
		}
	})
	eng.Run()
	if wrote == 0 || read <= wrote {
		t.Fatalf("blocking ops did not advance time: wrote=%v read=%v", wrote, read)
	}
}

func TestPreconditionCreatesGCPressure(t *testing.T) {
	dev := newConvDevice(t)
	rng := rand.New(rand.NewSource(1))
	if err := Precondition(dev, dev.Capacity()/2, dev.Capacity(), 0.95, 2, rng); err != nil {
		t.Fatal(err)
	}
	// Now hammer the lower half; GC should kick in quickly.
	now := sim.Time(0)
	for i := 0; i < int(dev.Capacity()); i++ {
		done, err := dev.WritePages(now, int64(i%int(dev.Capacity()/4)), refs(pages(1, 128, 'h')), 0)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if dev.Stats().GCRuns == 0 {
		t.Fatal("precondition did not induce GC")
	}
}

func TestPreconditionValidation(t *testing.T) {
	dev := newConvDevice(t)
	rng := rand.New(rand.NewSource(1))
	if err := Precondition(dev, -1, 10, 0.5, 2, rng); err == nil {
		t.Fatal("negative from accepted")
	}
	if err := Precondition(dev, 0, dev.Capacity()+1, 0.5, 2, rng); err == nil {
		t.Fatal("past-capacity to accepted")
	}
	if err := Precondition(dev, 0, 10, 1.5, 2, rng); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestStatsPassThrough(t *testing.T) {
	dev := newFDPDevice(t)
	if _, err := dev.WritePages(0, 0, refs(pages(3, 128, 'p')), 2); err != nil {
		t.Fatal(err)
	}
	if got := dev.Stats().HostWritePages; got != 3 {
		t.Fatalf("host writes = %d, want 3", got)
	}
	if dev.Capacity() <= 0 || dev.PageSize() != 128 {
		t.Fatal("capacity/page size passthrough broken")
	}
}

func TestDeallocatePassThrough(t *testing.T) {
	dev := newConvDevice(t)
	if _, err := dev.WritePages(0, 0, refs(pages(2, 128, 'd')), 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.Deallocate(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dev.ReadPages(0, 0, 1); err == nil {
		t.Fatal("read after TRIM succeeded")
	}
}

// refs wraps raw test pages as borrowed (unpooled) buffer references.
func refs(pp [][]byte) []bufpool.Ref {
	out := make([]bufpool.Ref, len(pp))
	for i, p := range pp {
		out[i] = bufpool.Borrowed(p)
	}
	return out
}
