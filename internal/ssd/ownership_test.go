package ssd

import (
	"bytes"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// failNProgramsHook fails the next n page programs permanently, then heals.
type failNProgramsHook struct{ n int }

func (h *failNProgramsHook) ReadFault(now sim.Time, ppa nand.PPA) error { return nil }
func (h *failNProgramsHook) ProgramFault(now, done sim.Time, ppa nand.PPA, data []byte) nand.ProgramDecision {
	if h.n > 0 {
		h.n--
		return nand.ProgramDecision{Outcome: nand.ProgramFail}
	}
	return nand.ProgramDecision{}
}
func (h *failNProgramsHook) EraseFault(now sim.Time, die, block int) error { return nil }

// Fault-path ownership across the NVMe retry machinery: a permanent program
// failure makes the FTL retire the block and re-program the SAME pooled ref
// onto fresh media. The failed attempt must not retain (nothing stores), the
// successful attempt retains exactly once, and after the host drops its
// share the pool drains to zero at teardown — no leak, no double release.
func TestProgramRetryPooledOwnership(t *testing.T) {
	arr, dev := newRetryDevice(t)
	pool := arr.Pool()
	arr.SetFaultHook(&failNProgramsHook{n: 2})
	var hostRefs []bufpool.Ref
	payload := make([]bufpool.Ref, 4)
	for i := range payload {
		s := pool.Get()
		copy(s.Bytes(), pages(1, dev.PageSize(), byte('A'+i))[0])
		payload[i] = bufpool.Ref{Seg: s, B: s.Bytes()}
		hostRefs = append(hostRefs, payload[i])
	}
	wdone, err := dev.WritePages(0, 0, payload, 0)
	if err != nil {
		t.Fatalf("write across program failures: %v", err)
	}
	if got := dev.Stats().ProgramFailures; got != 2 {
		t.Fatalf("ProgramFailures = %d, want 2 (both absorbed by remapping)", got)
	}
	// Each page is stored exactly once: host share + array share = 2, even
	// for the pages whose first program attempt failed.
	for i, r := range hostRefs {
		if got := r.Seg.Refs(); got != 2 {
			t.Fatalf("page %d: refs = %d after retried write, want 2", i, got)
		}
	}
	data, _, err := dev.ReadPages(wdone, 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		if !bytes.Equal(data[i], hostRefs[i].B) {
			t.Fatalf("page %d corrupted by the retry path", i)
		}
	}
	// Host hands off: durable completion releases the submission references.
	for _, r := range hostRefs {
		r.Release()
	}
	arr.ReleaseStored()
	if n := pool.InFlight(); n != 0 {
		t.Fatalf("%d segments in flight after teardown", n)
	}
}

// A torn write (power loss) must leave ownership with the host: the torn
// slot stores a partial image in plain memory, never an alias of the pooled
// payload, so recovery can release the pool without consulting the device.
func TestTornWritePooledOwnership(t *testing.T) {
	arr, dev := newRetryDevice(t)
	pool := arr.Pool()
	s := pool.Get()
	copy(s.Bytes(), pages(1, dev.PageSize(), 't')[0])
	hook := &tornOnceHook{image: pages(1, dev.PageSize()/2, 'T')[0]}
	arr.SetFaultHook(hook)
	_, err := dev.WritePages(0, 0, []bufpool.Ref{{Seg: s, B: s.Bytes()}}, 0)
	if !nand.IsTornWrite(err) {
		t.Fatalf("err = %v, want interrupted-write status", err)
	}
	if got := s.Refs(); got != 1 {
		t.Fatalf("refs = %d after torn write, want 1 (device must not retain)", got)
	}
	s.Release()
	arr.ReleaseStored()
	if n := pool.InFlight(); n != 0 {
		t.Fatalf("%d segments in flight after teardown", n)
	}
}

// tornOnceHook tears the first program it sees, then heals.
type tornOnceHook struct {
	image []byte
	done  bool
}

func (h *tornOnceHook) ReadFault(now sim.Time, ppa nand.PPA) error { return nil }
func (h *tornOnceHook) ProgramFault(now, done sim.Time, ppa nand.PPA, data []byte) nand.ProgramDecision {
	if !h.done {
		h.done = true
		return nand.ProgramDecision{Outcome: nand.ProgramTorn, Torn: h.image}
	}
	return nand.ProgramDecision{}
}
func (h *tornOnceHook) EraseFault(now sim.Time, die, block int) error { return nil }
