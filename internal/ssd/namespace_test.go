package ssd

import (
	"bytes"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/nand"
)

// Namespace must satisfy the device front-end's FTL contract.
var _ FTL = (*Namespace)(nil)

func newSharedFDP(t *testing.T) *fdp.FTL {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 8, PagesPerBlock: 8, PageSize: 128}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	f, err := fdp.New(arr, fdp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func nsPage(tag byte, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = tag
	}
	return p
}

func TestNamespaceWindowValidation(t *testing.T) {
	f := newSharedFDP(t)
	cap := f.Capacity()
	if _, err := NewNamespace(nil, 0, 1, nil); err == nil {
		t.Fatal("nil FTL accepted")
	}
	if _, err := NewNamespace(f, -1, 10, nil); err == nil {
		t.Fatal("negative base accepted")
	}
	if _, err := NewNamespace(f, 0, 0, nil); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := NewNamespace(f, cap-5, 6, nil); err == nil {
		t.Fatal("window past capacity accepted")
	}
	if _, err := NewNamespace(f, 0, cap, nil); err != nil {
		t.Fatalf("full-device window rejected: %v", err)
	}
}

func TestNamespaceIsolatesWindows(t *testing.T) {
	f := newSharedFDP(t)
	half := f.Capacity() / 2
	ns0, err := NewNamespace(f, 0, half, nil)
	if err != nil {
		t.Fatal(err)
	}
	ns1, err := NewNamespace(f, half, half, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both namespaces write local LPA 3 — distinct device pages.
	if _, err := ns0.Write(0, 3, bufpool.Borrowed(nsPage('a', 128)), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ns1.Write(0, 3, bufpool.Borrowed(nsPage('b', 128)), 0); err != nil {
		t.Fatal(err)
	}
	got0, _, err := ns0.Read(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	got1, _, err := ns1.Read(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got0, nsPage('a', 128)) || !bytes.Equal(got1, nsPage('b', 128)) {
		t.Fatal("namespace windows overlap")
	}
	if !f.Mapped(3) || !f.Mapped(half+3) {
		t.Fatal("device LPAs not where the window math says")
	}
	// Out-of-window accesses fail locally without touching the device.
	if _, err := ns0.Write(0, half, bufpool.Borrowed(nsPage('x', 128)), 0); err == nil {
		t.Fatal("write past window accepted")
	}
	if _, _, err := ns0.Read(0, -1); err == nil {
		t.Fatal("negative read accepted")
	}
	if ns0.Capacity() != half || ns1.Base() != half {
		t.Fatal("window geometry misreported")
	}
}

func TestNamespaceDeallocate(t *testing.T) {
	f := newSharedFDP(t)
	half := f.Capacity() / 2
	ns1, err := NewNamespace(f, half, half, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4; i++ {
		if _, err := ns1.Write(0, i, bufpool.Borrowed(nsPage('d', 128)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := ns1.Deallocate(0, 4); err != nil {
		t.Fatal(err)
	}
	if ns1.Mapped(0) || f.Mapped(half) {
		t.Fatal("deallocate did not unmap the windowed pages")
	}
	if err := ns1.Deallocate(half-2, 4); err == nil {
		t.Fatal("deallocate past window accepted")
	}
	if err := ns1.Deallocate(0, -1); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestNamespacePIDRemap(t *testing.T) {
	f := newSharedFDP(t)
	a, err := fdp.NewPIDAllocator(8)
	if err != nil {
		t.Fatal(err)
	}
	a.Acquire("t0", 4) //nolint:errcheck // layout setup
	l1, err := a.Acquire("t1", 4)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := NewNamespace(f, 0, f.Capacity()/2, l1.PID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Write(0, 0, bufpool.Borrowed(nsPage('p', 128)), 1); err != nil {
		t.Fatal(err)
	}
	s := f.Stats()
	if s.HostWritesByPID[l1.Base+1] != 1 {
		t.Fatalf("write not billed to leased PID %d: %v", l1.Base+1, s.HostWritesByPID)
	}
	// An out-of-lease local stream surfaces the device's own rejection.
	if _, err := ns.Write(0, 1, bufpool.Borrowed(nsPage('p', 128)), 4); err == nil {
		t.Fatal("out-of-lease local stream accepted")
	}
	if got := ns.HostWritePages(); got != 1 {
		t.Fatalf("HostWritePages = %d, want 1 (failed writes must not count)", got)
	}
}
