package metrics

import (
	"testing"

	"github.com/slimio/slimio/internal/sim"
)

func BenchmarkHistogramRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(sim.Duration(i*7919) % (100 * sim.Millisecond))
	}
}

func BenchmarkHistogramP999(b *testing.B) {
	var h Histogram
	for i := 0; i < 100000; i++ {
		h.Record(sim.Duration(i*7919) % (100 * sim.Millisecond))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.P999()
	}
}

func BenchmarkSeriesAdd(b *testing.B) {
	s := NewSeries(sim.Second)
	for i := 0; i < b.N; i++ {
		s.Add(sim.Time(i%1000)*sim.Time(sim.Millisecond), 1)
	}
}
