// Package metrics provides the measurement primitives shared by every
// experiment: log-bucketed latency histograms with high-percentile queries,
// fixed-interval time series (for runtime RPS plots), and simple counters.
// All values are virtual-time durations or plain counts; nothing here touches
// the wall clock.
package metrics

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/slimio/slimio/internal/sim"
)

// subBucketBits controls histogram resolution: each power-of-two range is
// split into 2^subBucketBits linear sub-buckets, giving a worst-case relative
// error of 2^-subBucketBits (≈0.8% with 7 bits), comparable to HdrHistogram
// at 2 significant digits.
const subBucketBits = 7

const subBuckets = 1 << subBucketBits

// Histogram records non-negative durations in logarithmic buckets and
// answers percentile queries. The zero value is ready to use.
type Histogram struct {
	counts [64 - subBucketBits][subBuckets]int64
	total  int64
	sum    sim.Duration
	min    sim.Duration
	max    sim.Duration
}

// Record adds one observation. Negative values are clamped to zero. A nil
// receiver is a no-op, so telemetry-off code paths can call through without
// branching (same contract as Gauge.Set).
func (h *Histogram) Record(d sim.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	if h.total == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.total++
	h.sum += d
	major, minor := bucketOf(int64(d))
	h.counts[major][minor]++
}

// bucketOf maps a value to its (major, minor) bucket. Bucket row 0 covers
// [0, subBuckets) at width 1; row m>=1 covers values whose most significant
// bit is at index subBucketBits+m-1, split into subBuckets linear sub-buckets
// of width 2^(m-1).
func bucketOf(v int64) (major, minor int) {
	if v < subBuckets {
		return 0, int(v)
	}
	e := 63 - bits.LeadingZeros64(uint64(v)) // MSB index, >= subBucketBits
	major = e - subBucketBits + 1
	minor = int(v>>uint(e-subBucketBits)) - subBuckets
	return major, minor
}

// bucketValue returns a representative (midpoint) duration for a bucket.
func bucketValue(major, minor int) int64 {
	if major == 0 {
		return int64(minor)
	}
	width := int64(1) << uint(major-1)
	lower := (int64(subBuckets) + int64(minor)) * width
	return lower + width/2
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Sum reports the sum of all observations.
func (h *Histogram) Sum() sim.Duration { return h.sum }

// Min reports the smallest observation, or 0 when empty.
func (h *Histogram) Min() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest observation, or 0 when empty.
func (h *Histogram) Max() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Mean reports the arithmetic mean, or 0 when empty.
func (h *Histogram) Mean() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.total)
}

// Percentile returns the value at or below which p percent of observations
// fall (p in [0,100]). Accuracy is bounded by the sub-bucket resolution,
// except for p high enough to select the final observation, where the exact
// recorded maximum is returned.
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.total == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	if p < 0 {
		p = 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for major := range h.counts {
		for minor, c := range h.counts[major] {
			seen += c
			if seen >= rank {
				if seen == h.total {
					// This bucket contains the max; report it exactly when
					// the query lands on the final observation.
					if rank == h.total {
						return h.max
					}
				}
				v := bucketValue(major, minor)
				if sim.Duration(v) > h.max {
					return h.max
				}
				if sim.Duration(v) < h.min {
					return h.min
				}
				return sim.Duration(v)
			}
		}
	}
	return h.max
}

// P50, P99 and P999 are shorthands for common tail-latency queries.
func (h *Histogram) P50() sim.Duration  { return h.Percentile(50) }
func (h *Histogram) P99() sim.Duration  { return h.Percentile(99) }
func (h *Histogram) P999() sim.Duration { return h.Percentile(99.9) }

// Merge adds all of other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
	for major := range h.counts {
		for minor := range h.counts[major] {
			h.counts[major][minor] += other.counts[major][minor]
		}
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		h.total, h.Mean(), h.P50(), h.P99(), h.P999(), h.Max())
}
