package metrics

import (
	"fmt"

	"github.com/slimio/slimio/internal/sim"
)

// GaugeBucket is one virtual-time interval of a Gauge: the last, smallest,
// and largest value observed in the interval, plus how many observations
// landed in it. Samples == 0 marks an empty interval (Last/Min/Max are
// meaningless there).
type GaugeBucket struct {
	Last    int64
	Min     int64
	Max     int64
	Samples int64
}

// Gauge records a sampled instantaneous value (queue depth, dirty pages,
// cumulative busy time) against the virtual clock, keeping last/min/max per
// fixed-width interval. Unlike Series it is not a rate: each bucket
// summarizes the values seen inside it, so downsampling a fast-moving
// signal loses resolution but never the envelope.
//
// A nil *Gauge is a no-op recorder — the telemetry-off hot path pays one
// branch and allocates nothing, the same contract as a nil *vtrace.Tracer.
type Gauge struct {
	interval sim.Duration
	buckets  []GaugeBucket
	dropped  int64
}

// NewGauge returns a Gauge with the given bucket width.
func NewGauge(interval sim.Duration) *Gauge {
	if interval <= 0 {
		panic("metrics: Gauge interval must be positive")
	}
	return &Gauge{interval: interval}
}

// Set records value v observed at virtual time t. Samples at negative times
// or past the Series bucket cap are dropped and counted, mirroring
// Series.Add: a misconfigured interval must not corrupt or OOM a run.
func (g *Gauge) Set(t sim.Time, v int64) {
	if g == nil {
		return
	}
	if t < 0 {
		g.dropped++
		return
	}
	idx := int(int64(t) / int64(g.interval))
	if idx >= MaxSeriesBuckets {
		g.dropped++
		return
	}
	for len(g.buckets) <= idx {
		g.buckets = append(g.buckets, GaugeBucket{})
	}
	b := &g.buckets[idx]
	if b.Samples == 0 {
		b.Last, b.Min, b.Max = v, v, v
	} else {
		b.Last = v
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
	}
	b.Samples++
}

// Interval reports the bucket width.
func (g *Gauge) Interval() sim.Duration {
	if g == nil {
		return 0
	}
	return g.interval
}

// Len reports the number of buckets (including empty interior buckets up to
// the last observation).
func (g *Gauge) Len() int {
	if g == nil {
		return 0
	}
	return len(g.buckets)
}

// Bucket returns bucket i (the zero bucket outside the recorded range).
func (g *Gauge) Bucket(i int) GaugeBucket {
	if g == nil || i < 0 || i >= len(g.buckets) {
		return GaugeBucket{}
	}
	return g.buckets[i]
}

// Last returns the most recent observed value (from the last non-empty
// bucket), or 0 when nothing was ever observed.
func (g *Gauge) Last() int64 {
	if g == nil {
		return 0
	}
	for i := len(g.buckets) - 1; i >= 0; i-- {
		if g.buckets[i].Samples > 0 {
			return g.buckets[i].Last
		}
	}
	return 0
}

// Errors reports how many Set calls were dropped for a negative time or an
// over-cap bucket index, with a nil error when there were none.
func (g *Gauge) Errors() (dropped int64, err error) {
	if g == nil || g.dropped == 0 {
		return 0, nil
	}
	return g.dropped, fmt.Errorf("metrics: %d gauge samples dropped (negative time or bucket index >= %d)", g.dropped, MaxSeriesBuckets)
}
