package metrics

import (
	"math/rand"
	"testing"

	"github.com/slimio/slimio/internal/sim"
)

// refBucket mirrors GaugeBucket for the brute-force reference model.
type refBucket struct {
	last, min, max, samples int64
}

// TestGaugePropertyVsReference drives random Set sequences through a Gauge
// and an exact reference model and requires identical last/min/max/samples
// in every bucket, identical Len, Last, and drop counts.
func TestGaugePropertyVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		interval := sim.Duration(1 + rng.Int63n(5000))
		g := NewGauge(interval)
		ref := make(map[int]*refBucket)
		refDropped := int64(0)
		maxIdx := -1

		n := 1 + rng.Intn(400)
		for i := 0; i < n; i++ {
			var ts sim.Time
			switch rng.Intn(10) {
			case 0: // negative time: must drop
				ts = sim.Time(-1 - rng.Int63n(1000))
			case 1: // past the bucket cap: must drop
				ts = sim.Time(int64(interval) * int64(MaxSeriesBuckets+rng.Intn(5)))
			default:
				ts = sim.Time(rng.Int63n(200 * int64(interval)))
			}
			v := rng.Int63n(1000) - 500
			g.Set(ts, v)

			if ts < 0 {
				refDropped++
				continue
			}
			idx := int(int64(ts) / int64(interval))
			if idx >= MaxSeriesBuckets {
				refDropped++
				continue
			}
			if idx > maxIdx {
				maxIdx = idx
			}
			b := ref[idx]
			if b == nil {
				b = &refBucket{last: v, min: v, max: v}
				ref[idx] = b
			} else {
				b.last = v
				if v < b.min {
					b.min = v
				}
				if v > b.max {
					b.max = v
				}
			}
			b.samples++
		}

		if got, want := g.Len(), maxIdx+1; got != want {
			t.Fatalf("trial %d: Len = %d, want %d", trial, got, want)
		}
		var wantLast int64
		lastSet := false
		for i := 0; i <= maxIdx; i++ {
			got := g.Bucket(i)
			want := ref[i]
			if want == nil {
				if got.Samples != 0 {
					t.Fatalf("trial %d bucket %d: samples %d, want empty", trial, i, got.Samples)
				}
				continue
			}
			if got.Last != want.last || got.Min != want.min || got.Max != want.max || got.Samples != want.samples {
				t.Fatalf("trial %d bucket %d: got %+v, want %+v", trial, i, got, *want)
			}
			wantLast = want.last
			lastSet = true
		}
		if lastSet && g.Last() != wantLast {
			t.Fatalf("trial %d: Last = %d, want %d", trial, g.Last(), wantLast)
		}
		dropped, err := g.Errors()
		if dropped != refDropped {
			t.Fatalf("trial %d: dropped = %d, want %d", trial, dropped, refDropped)
		}
		if (err != nil) != (refDropped > 0) {
			t.Fatalf("trial %d: err = %v with %d drops", trial, err, refDropped)
		}
	}
}

func TestGaugeOutOfRangeBucketIsZero(t *testing.T) {
	g := NewGauge(10)
	g.Set(25, 7)
	if b := g.Bucket(-1); b != (GaugeBucket{}) {
		t.Errorf("Bucket(-1) = %+v", b)
	}
	if b := g.Bucket(99); b != (GaugeBucket{}) {
		t.Errorf("Bucket(99) = %+v", b)
	}
	// Interior empty bucket stays zero; the observed one is exact.
	if b := g.Bucket(0); b.Samples != 0 {
		t.Errorf("Bucket(0) = %+v, want empty", b)
	}
	if b := g.Bucket(2); b.Samples != 1 || b.Last != 7 {
		t.Errorf("Bucket(2) = %+v", b)
	}
}

func TestNewGaugePanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGauge(0) did not panic")
		}
	}()
	NewGauge(0)
}

// TestNilGaugeAllocFree is the telemetry-off contract: every method of a
// nil *Gauge is a no-op and allocates nothing.
func TestNilGaugeAllocFree(t *testing.T) {
	var g *Gauge
	allocs := testing.AllocsPerRun(200, func() {
		g.Set(12345, 42)
		_ = g.Len()
		_ = g.Last()
		_ = g.Interval()
		_ = g.Bucket(3)
		_, _ = g.Errors()
	})
	if allocs != 0 {
		t.Fatalf("nil Gauge allocated %.1f per op, want 0", allocs)
	}
}
