package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/slimio/slimio/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.P999() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramSingle(t *testing.T) {
	var h Histogram
	h.Record(42 * sim.Microsecond)
	for _, p := range []float64{0, 50, 99, 99.9, 100} {
		if got := h.Percentile(p); got != 42*sim.Microsecond {
			t.Fatalf("p%v = %v, want 42µs", p, got)
		}
	}
	if h.Mean() != 42*sim.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below subBuckets land in width-1 buckets: exact percentiles.
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i))
	}
	if got := h.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := h.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var vals []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~6 decades, typical of latency data.
		v := int64(math.Exp(rng.Float64()*14)) + 1
		vals = append(vals, v)
		h.Record(sim.Duration(v))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		rank := int(math.Ceil(p/100*float64(len(vals)))) - 1
		exact := float64(vals[rank])
		got := float64(h.Percentile(p))
		if relErr := math.Abs(got-exact) / exact; relErr > 0.02 {
			t.Errorf("p%v: got %v, exact %v, rel err %.3f > 2%%", p, got, exact, relErr)
		}
	}
}

func TestHistogramRecordNegativeClamps(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record: min=%v max=%v n=%d", h.Min(), h.Max(), h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(sim.Duration(10))
		b.Record(sim.Duration(1000))
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 10 || a.Max() != 1000 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if got := a.Percentile(25); got != 10 {
		t.Fatalf("merged p25 = %v, want 10", got)
	}
	if got := float64(a.Percentile(75)); math.Abs(got-1000)/1000 > 0.01 {
		t.Fatalf("merged p75 = %v, want ~1000", got)
	}
	var empty Histogram
	a.Merge(&empty) // must be a no-op
	if a.Count() != 200 {
		t.Fatal("merging empty changed count")
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

// Property: percentile is within resolution bounds and monotone in p, and
// min <= p(x) <= max always.
func TestHistogramProperties(t *testing.T) {
	prop := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		for i := 0; i < n; i++ {
			h.Record(sim.Duration(rng.Int63n(1 << 40)))
		}
		prev := sim.Duration(-1)
		for p := 0.0; p <= 100; p += 7.3 {
			v := h.Percentile(p)
			if v < h.Min() || v > h.Max() || v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(100) == h.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	prop := func(raw uint64) bool {
		v := int64(raw % (1 << 50))
		major, minor := bucketOf(v)
		rep := bucketValue(major, minor)
		if v < subBuckets {
			return rep == v
		}
		// Representative must be within one sub-bucket width of v.
		return math.Abs(float64(rep-v))/float64(v) <= 1.0/subBuckets
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(sim.Second)
	s.Add(0, 5)
	s.Add(sim.Time(1500*sim.Millisecond), 10)
	s.Add(sim.Time(1900*sim.Millisecond), 10)
	s.Add(sim.Time(4*sim.Second), 1)
	if s.Len() != 5 {
		t.Fatalf("len = %d, want 5", s.Len())
	}
	if s.Count(0) != 5 || s.Count(1) != 20 || s.Count(2) != 0 || s.Count(4) != 1 {
		t.Fatalf("counts = %d,%d,%d,%d", s.Count(0), s.Count(1), s.Count(2), s.Count(4))
	}
	if s.Rate(1) != 20 {
		t.Fatalf("rate(1) = %v, want 20/s", s.Rate(1))
	}
	if s.Total() != 26 {
		t.Fatalf("total = %d", s.Total())
	}
	if got := s.MinRate(0, 5); got != 0 {
		t.Fatalf("min rate = %v, want 0 (idle bucket)", got)
	}
	if got := s.MinRate(0, 2); got != 5 {
		t.Fatalf("min rate [0,2) = %v, want 5", got)
	}
}

func TestSeriesOutOfRange(t *testing.T) {
	s := NewSeries(sim.Second)
	if s.Count(3) != 0 || s.Rate(-1) != 0 {
		t.Fatal("out-of-range buckets must read 0")
	}
	if s.MinRate(5, 2) != 0 {
		t.Fatal("inverted range must read 0")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries(sim.Second)
	s.Add(0, 3)
	csv := s.CSV()
	want := "t_seconds,rate_per_sec\n0.000,3.0\n"
	if csv != want {
		t.Fatalf("csv = %q, want %q", csv, want)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Get("x") != 0 {
		t.Fatal("unset counter must be 0")
	}
	c.Inc("x", 2)
	c.Inc("x", 3)
	c.Inc("y", 1)
	if c.Get("x") != 5 || c.Get("y") != 1 {
		t.Fatalf("x=%d y=%d", c.Get("x"), c.Get("y"))
	}
}
