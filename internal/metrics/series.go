package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/slimio/slimio/internal/sim"
)

// Series accumulates event counts into fixed-width virtual-time intervals,
// producing rate-over-time data such as the runtime RPS plots in Figures 4
// and 5 of the paper.
type Series struct {
	interval sim.Duration
	counts   []int64
	dropped  int64
}

// NewSeries returns a Series with the given bucket width.
func NewSeries(interval sim.Duration) *Series {
	if interval <= 0 {
		panic("metrics: Series interval must be positive")
	}
	return &Series{interval: interval}
}

// MaxSeriesBuckets caps how many buckets a Series will grow to. A
// misconfigured interval (nanosecond buckets over a seconds-long run) would
// otherwise allocate an effectively unbounded slice; past the cap, samples
// are dropped and counted instead of extending the series.
const MaxSeriesBuckets = 1 << 22

// Add records n events at virtual time t. Samples at negative times or past
// the bucket cap are dropped (and reported via Errors): both indicate a
// misconfiguration, and neither is allowed to corrupt or OOM a run.
func (s *Series) Add(t sim.Time, n int64) {
	if t < 0 {
		s.dropped++
		return
	}
	idx := int(int64(t) / int64(s.interval))
	if idx >= MaxSeriesBuckets {
		s.dropped++
		return
	}
	for len(s.counts) <= idx {
		s.counts = append(s.counts, 0)
	}
	s.counts[idx] += n
}

// Errors reports how many Add calls were dropped for a negative time or an
// over-cap bucket index, with a nil error when there were none.
func (s *Series) Errors() (dropped int64, err error) {
	if s.dropped == 0 {
		return 0, nil
	}
	return s.dropped, fmt.Errorf("metrics: %d samples dropped (negative time or bucket index >= %d)", s.dropped, MaxSeriesBuckets)
}

// Interval reports the bucket width.
func (s *Series) Interval() sim.Duration { return s.interval }

// Len reports the number of buckets (including trailing zeros up to the last
// recorded event).
func (s *Series) Len() int { return len(s.counts) }

// Count returns the raw event count of bucket i.
func (s *Series) Count(i int) int64 {
	if i < 0 || i >= len(s.counts) {
		return 0
	}
	return s.counts[i]
}

// Rate returns bucket i's event rate in events per second.
func (s *Series) Rate(i int) float64 {
	return float64(s.Count(i)) / s.interval.Seconds()
}

// Rates returns the per-bucket rates in events per second.
func (s *Series) Rates() []float64 {
	out := make([]float64, len(s.counts))
	for i := range s.counts {
		out[i] = s.Rate(i)
	}
	return out
}

// Total reports the sum of all recorded events.
func (s *Series) Total() int64 {
	var t int64
	for _, c := range s.counts {
		t += c
	}
	return t
}

// MinRate returns the smallest bucket rate over [from, to) bucket indices,
// clamped to the valid range. Returns 0 for an empty range.
func (s *Series) MinRate(from, to int) float64 {
	if from < 0 {
		from = 0
	}
	if to > len(s.counts) {
		to = len(s.counts)
	}
	if from >= to {
		return 0
	}
	min := s.Rate(from)
	for i := from + 1; i < to; i++ {
		if r := s.Rate(i); r < min {
			min = r
		}
	}
	return min
}

// CSV renders the series as "t_seconds,rate" lines, the format consumed by
// external plotting of Figures 4-5.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("t_seconds,rate_per_sec\n")
	for i := range s.counts {
		t := sim.Duration(i) * s.interval
		fmt.Fprintf(&b, "%.3f,%.1f\n", t.Seconds(), s.Rate(i))
	}
	return b.String()
}

// Counter is a named monotonic counter set. It is safe for concurrent use:
// one Counter is shared by every experiment cell, and the parallel cell
// scheduler runs cells on separate goroutines.
type Counter struct {
	mu   sync.Mutex
	vals map[string]int64
}

// Inc adds n to the named counter.
func (c *Counter) Inc(name string, n int64) {
	c.mu.Lock()
	if c.vals == nil {
		c.vals = make(map[string]int64)
	}
	c.vals[name] += n
	c.mu.Unlock()
}

// Get reads the named counter (0 if never incremented).
func (c *Counter) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[name]
}

// Snapshot returns a copy of every counter, for printing summaries.
func (c *Counter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}

// KV is one named counter value.
type KV struct {
	Key   string
	Value int64
}

// Sorted returns every counter as key-sorted pairs — the deterministic form
// every printing call site must use (map-order output is a lint violation;
// see DESIGN.md "Determinism contract").
func (c *Counter) Sorted() []KV {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]KV, 0, len(keys))
	for _, k := range keys {
		out = append(out, KV{Key: k, Value: c.vals[k]})
	}
	return out
}
