package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/slimio/slimio/internal/sim"
)

// refPercentile is the exact reference: the rank-th smallest observation,
// with the same rank convention Percentile documents (rank = ceil(p/100*n),
// clamped to [1, n]).
func refPercentile(sorted []sim.Duration, p float64) sim.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p >= 100 {
		return sorted[n-1]
	}
	if p < 0 {
		p = 0
	}
	rank := int64(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramPercentileProperty drives Percentile against the exact
// sorted-slice reference over randomized seeded inputs and asserts the
// documented ≈2⁻⁷ relative-error bound (plus one count for sub-bucket-0
// integer truncation).
func TestHistogramPercentileProperty(t *testing.T) {
	dists := []struct {
		name string
		gen  func(r *rand.Rand) sim.Duration
	}{
		{"uniform-small", func(r *rand.Rand) sim.Duration { return sim.Duration(r.Int63n(200)) }},
		{"uniform-wide", func(r *rand.Rand) sim.Duration { return sim.Duration(r.Int63n(int64(10 * sim.Second))) }},
		{"exponential", func(r *rand.Rand) sim.Duration {
			return sim.Duration(r.ExpFloat64() * float64(50*sim.Microsecond))
		}},
		{"bimodal", func(r *rand.Rand) sim.Duration {
			if r.Intn(10) == 0 {
				return sim.Duration(int64(2*sim.Millisecond) + r.Int63n(int64(sim.Millisecond)))
			}
			return sim.Duration(int64(5*sim.Microsecond) + r.Int63n(int64(sim.Microsecond)))
		}},
	}
	percentiles := []float64{0, 1, 10, 25, 50, 75, 90, 99, 99.9, 99.99, 100}
	for _, dist := range dists {
		for seed := int64(1); seed <= 5; seed++ {
			r := rand.New(rand.NewSource(seed * 7919))
			n := 1000 + r.Intn(9000)
			var h Histogram
			vals := make([]sim.Duration, n)
			for i := range vals {
				vals[i] = dist.gen(r)
				h.Record(vals[i])
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for _, p := range percentiles {
				got := h.Percentile(p)
				want := refPercentile(vals, p)
				diff := got - want
				if diff < 0 {
					diff = -diff
				}
				tol := want>>subBucketBits + 1
				if diff > tol {
					t.Errorf("%s seed=%d n=%d p=%v: got %d, ref %d (diff %d > tol %d)",
						dist.name, seed, n, p, got, want, diff, tol)
				}
			}
			// Mean and Sum are exact, not bucketed.
			var sum sim.Duration
			for _, v := range vals {
				sum += v
			}
			if h.Sum() != sum || h.Mean() != sum/sim.Duration(n) {
				t.Errorf("%s seed=%d: sum/mean not exact: %d/%d vs %d/%d",
					dist.name, seed, h.Sum(), h.Mean(), sum, sum/sim.Duration(n))
			}
			if h.Min() != vals[0] || h.Max() != vals[n-1] {
				t.Errorf("%s seed=%d: min/max not exact", dist.name, seed)
			}
		}
	}
}

// TestHistogramMergeProperty: merging two histograms must equal the
// histogram of the concatenated inputs, bucket for bucket.
func TestHistogramMergeProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed * 104729))
		var a, b, both Histogram
		na, nb := 100+r.Intn(2000), 100+r.Intn(2000)
		all := make([]sim.Duration, 0, na+nb)
		for i := 0; i < na; i++ {
			v := sim.Duration(r.Int63n(int64(sim.Second)))
			a.Record(v)
			both.Record(v)
			all = append(all, v)
		}
		for i := 0; i < nb; i++ {
			v := sim.Duration(r.ExpFloat64() * float64(sim.Millisecond))
			b.Record(v)
			both.Record(v)
			all = append(all, v)
		}
		a.Merge(&b)
		if a != both {
			t.Fatalf("seed=%d: merged histogram differs from histogram of concatenation", seed)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for _, p := range []float64{50, 99, 99.9} {
			got, want := a.Percentile(p), refPercentile(all, p)
			diff := got - want
			if diff < 0 {
				diff = -diff
			}
			if diff > want>>subBucketBits+1 {
				t.Errorf("seed=%d p=%v: merged percentile %d vs ref %d", seed, p, got, want)
			}
		}
	}
}

func TestSeriesAddGuards(t *testing.T) {
	s := NewSeries(sim.Millisecond)
	s.Add(sim.Time(0).Add(5*sim.Millisecond), 3)
	if got := s.Count(5); got != 3 {
		t.Fatalf("bucket 5 = %d, want 3", got)
	}
	if dropped, err := s.Errors(); dropped != 0 || err != nil {
		t.Fatalf("clean series reports errors: %d, %v", dropped, err)
	}

	s.Add(sim.Time(-1), 1)
	if dropped, err := s.Errors(); dropped != 1 || err == nil {
		t.Fatalf("negative time not dropped: %d, %v", dropped, err)
	}
	if s.Len() != 6 || s.Total() != 3 {
		t.Fatalf("negative Add mutated series: len=%d total=%d", s.Len(), s.Total())
	}

	// A time mapping past the bucket cap must be dropped, not allocated.
	huge := sim.Time(int64(sim.Millisecond) * int64(MaxSeriesBuckets+10))
	s.Add(huge, 1)
	if dropped, _ := s.Errors(); dropped != 2 {
		t.Fatalf("over-cap index not dropped: %d", dropped)
	}
	if s.Len() != 6 {
		t.Fatalf("over-cap Add grew the series to %d buckets", s.Len())
	}

	// A tiny interval against a realistic virtual timestamp is the
	// misconfiguration this guards against: 1 ns buckets at t = 10 s would
	// be 10^10 buckets (~80 GB).
	tiny := NewSeries(1)
	tiny.Add(sim.Time(0).Add(10*sim.Second), 1)
	if dropped, err := tiny.Errors(); dropped != 1 || err == nil {
		t.Fatalf("tiny-interval OOM guard failed: %d, %v", dropped, err)
	}
}

func TestCounterSorted(t *testing.T) {
	var c Counter
	c.Inc("zeta", 3)
	c.Inc("alpha", 1)
	c.Inc("mid", 2)
	c.Inc("alpha", 4)
	got := c.Sorted()
	want := []KV{{"alpha", 5}, {"mid", 2}, {"zeta", 3}}
	if len(got) != len(want) {
		t.Fatalf("Sorted len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sorted[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	var empty Counter
	if len(empty.Sorted()) != 0 {
		t.Error("empty counter Sorted not empty")
	}
}
