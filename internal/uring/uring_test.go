package uring

import (
	"bytes"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/fdp"
	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
)

func newDev(t *testing.T, useFDP bool) *ssd.Device {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 16, PagesPerBlock: 16, PageSize: 512}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if useFDP {
		f, err := fdp.New(arr, fdp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return ssd.New(f, ssd.Config{})
	}
	return ssd.New(ftl.New(arr, ftl.Config{}), ssd.Config{})
}

func pages(n int, tag byte) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, 512)
		for j := range p {
			p[j] = tag + byte(i)
		}
		out[i] = p
	}
	return out
}

func TestWriteReadRoundTripBothModes(t *testing.T) {
	for _, sqpoll := range []bool{false, true} {
		dev := newDev(t, true)
		eng := sim.NewEngine()
		ring := NewRing(eng, dev, "t", Config{SQPoll: sqpoll})
		in := pages(3, 'a')
		eng.Spawn("app", func(env *sim.Env) {
			if err := ring.Write(env, 10, refs(in), 1); err != nil {
				t.Errorf("sqpoll=%v: %v", sqpoll, err)
				return
			}
			out, err := ring.Read(env, 10, 3)
			if err != nil {
				t.Errorf("sqpoll=%v: %v", sqpoll, err)
				return
			}
			for i := range in {
				if !bytes.Equal(in[i], out[i]) {
					t.Errorf("sqpoll=%v: page %d mismatch", sqpoll, i)
				}
			}
		})
		eng.Run()
	}
}

func TestSQPollEliminatesSyscalls(t *testing.T) {
	dev := newDev(t, true)
	eng := sim.NewEngine()
	ring := NewRing(eng, dev, "t", Config{SQPoll: true})
	eng.Spawn("app", func(env *sim.Env) {
		for i := 0; i < 10; i++ {
			if err := ring.Write(env, int64(i), refs(pages(1, 'x')), 1); err != nil {
				t.Error(err)
				return
			}
		}
	})
	eng.Run()
	s := ring.Stats()
	if s.Syscalls != 0 {
		t.Fatalf("SQPOLL mode issued %d syscalls", s.Syscalls)
	}
	if s.Submitted != 10 || s.Completed != 10 {
		t.Fatalf("submitted=%d completed=%d, want 10/10", s.Submitted, s.Completed)
	}
	if s.SQPollWakes == 0 {
		t.Fatal("poller never picked up work")
	}
}

func TestNonSQPollCountsSyscalls(t *testing.T) {
	dev := newDev(t, true)
	eng := sim.NewEngine()
	ring := NewRing(eng, dev, "t", Config{SQPoll: false})
	eng.Spawn("app", func(env *sim.Env) {
		for i := 0; i < 7; i++ {
			if err := ring.Write(env, int64(i), refs(pages(1, 'x')), 1); err != nil {
				t.Error(err)
				return
			}
		}
	})
	eng.Run()
	if s := ring.Stats(); s.Syscalls != 7 {
		t.Fatalf("syscalls = %d, want 7", s.Syscalls)
	}
}

func TestAsyncSubmissionOverlapsDeviceTime(t *testing.T) {
	// Submitting N single-page writes async and then waiting must be much
	// faster than N sequential blocking writes, thanks to die parallelism.
	dev := newDev(t, true)
	eng := sim.NewEngine()
	ring := NewRing(eng, dev, "t", Config{SQPoll: true})
	var asyncTime sim.Duration
	eng.Spawn("app", func(env *sim.Env) {
		t0 := env.Now()
		var sigs []*sim.Signal
		for i := 0; i < 8; i++ {
			sigs = append(sigs, ring.WriteAsync(env, int64(i), refs(pages(1, 'p')), 1))
		}
		for _, s := range sigs {
			if cqe := s.Wait(env).(*CQE); cqe.Err != nil {
				t.Error(cqe.Err)
			}
		}
		asyncTime = env.Now().Sub(t0)
	})
	eng.Run()

	dev2 := newDev(t, true)
	eng2 := sim.NewEngine()
	ring2 := NewRing(eng2, dev2, "t", Config{SQPoll: true})
	var seqTime sim.Duration
	eng2.Spawn("app", func(env *sim.Env) {
		t0 := env.Now()
		for i := 0; i < 8; i++ {
			if err := ring2.Write(env, int64(i), refs(pages(1, 'p')), 1); err != nil {
				t.Error(err)
			}
		}
		seqTime = env.Now().Sub(t0)
	})
	eng2.Run()
	if asyncTime*2 >= seqTime {
		t.Fatalf("async batch %v not much faster than sequential %v", asyncTime, seqTime)
	}
}

func TestPIDReachesFDPDevice(t *testing.T) {
	dev := newDev(t, true)
	eng := sim.NewEngine()
	ring := NewRing(eng, dev, "t", Config{SQPoll: true})
	eng.Spawn("app", func(env *sim.Env) {
		if err := ring.Write(env, 0, refs(pages(2, 'w')), 3); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	f := dev.FTL().(*fdp.FTL)
	if got := f.Stats().HostWritesByPID[3]; got != 2 {
		t.Fatalf("PID 3 writes = %d, want 2", got)
	}
}

func TestDeallocateCommand(t *testing.T) {
	dev := newDev(t, true)
	eng := sim.NewEngine()
	ring := NewRing(eng, dev, "t", Config{SQPoll: true})
	eng.Spawn("app", func(env *sim.Env) {
		if err := ring.Write(env, 0, refs(pages(4, 'd')), 1); err != nil {
			t.Error(err)
			return
		}
		if err := ring.Deallocate(env, 0, 4); err != nil {
			t.Error(err)
			return
		}
		if _, err := ring.Read(env, 0, 1); err == nil {
			t.Error("read after TRIM succeeded")
		}
	})
	eng.Run()
}

func TestErrorsSurfaceInCQE(t *testing.T) {
	dev := newDev(t, false)
	eng := sim.NewEngine()
	ring := NewRing(eng, dev, "t", Config{SQPoll: true})
	eng.Spawn("app", func(env *sim.Env) {
		if _, err := ring.Read(env, 0, 1); err == nil {
			t.Error("read of unmapped LPA returned no error")
		}
		if err := ring.Write(env, dev.Capacity()+5, refs(pages(1, 'x')), 0); err == nil {
			t.Error("out-of-range write returned no error")
		}
	})
	eng.Run()
}

func TestUnknownOpcode(t *testing.T) {
	dev := newDev(t, false)
	eng := sim.NewEngine()
	ring := NewRing(eng, dev, "t", Config{SQPoll: false})
	eng.Spawn("app", func(env *sim.Env) {
		cqe := ring.SubmitAndWait(env, &SQE{Op: Op(99)})
		if cqe.Err == nil {
			t.Error("unknown opcode accepted")
		}
	})
	eng.Run()
}

func TestTwoRingsAreIndependent(t *testing.T) {
	// The SlimIO pattern: WAL-Path and Snapshot-Path rings on one device.
	// A burst on one ring must not add software-queue wait to the other
	// (device-level die contention is the only shared resource).
	dev := newDev(t, true)
	eng := sim.NewEngine()
	walRing := NewRing(eng, dev, "wal", Config{SQPoll: false})
	snapRing := NewRing(eng, dev, "snap", Config{SQPoll: true})
	var walErr, snapErr error
	eng.Spawn("wal", func(env *sim.Env) {
		for i := 0; i < 20; i++ {
			if walErr = walRing.Write(env, int64(i), refs(pages(1, 'w')), 1); walErr != nil {
				return
			}
		}
	})
	eng.Spawn("snap", func(env *sim.Env) {
		for i := 0; i < 20; i++ {
			if snapErr = snapRing.Write(env, int64(100+i), refs(pages(4, 's')), 2); snapErr != nil {
				return
			}
		}
	})
	eng.Run()
	if walErr != nil || snapErr != nil {
		t.Fatalf("wal=%v snap=%v", walErr, snapErr)
	}
	if walRing.Stats().Completed != 20 || snapRing.Stats().Completed != 20 {
		t.Fatal("completions missing")
	}
}

func TestSubmissionLatencyCheaperThanSyscallMode(t *testing.T) {
	// Measure pure submission cost (not completion): SQPOLL submission
	// must cost the app far less CPU time than syscall-mode submission.
	cost := func(sqpoll bool) sim.Duration {
		dev := newDev(t, true)
		eng := sim.NewEngine()
		ring := NewRing(eng, dev, "t", Config{SQPoll: sqpoll})
		var p *sim.Proc
		p = eng.Spawn("app", func(env *sim.Env) {
			var sigs []*sim.Signal
			for i := 0; i < 50; i++ {
				sigs = append(sigs, ring.WriteAsync(env, int64(i), refs(pages(1, 'c')), 1))
			}
			for _, s := range sigs {
				s.Wait(env)
			}
		})
		eng.Run()
		return p.BusyTime("syscall") + p.BusyTime("ring") + p.BusyTime("dispatch")
	}
	if poll, sys := cost(true), cost(false); poll*2 >= sys {
		t.Fatalf("SQPOLL submission cost %v not well below syscall mode %v", poll, sys)
	}
}

// refs wraps raw test pages as borrowed (unpooled) buffer references.
func refs(pp [][]byte) []bufpool.Ref {
	out := make([]bufpool.Ref, len(pp))
	for i, p := range pp {
		out[i] = bufpool.Borrowed(p)
	}
	return out
}
