// Package uring models io_uring with NVMe passthrough (the kernel's "I/O
// passthru" path, Joshi et al., FAST'24): a submission queue / completion
// queue pair shared between application and kernel, an optional SQPOLL
// kernel poller that removes syscalls from the submission path entirely, and
// passthru commands that bypass the page cache, filesystem, and block-layer
// scheduler to reach the device directly — carrying an FDP placement
// identifier end to end.
//
// This is the I/O path SlimIO builds on: the Redis main process owns one
// ring for the WAL-Path and each snapshot process owns another for the
// Snapshot-Path, so the two workloads share no kernel state (paper §4.1).
package uring

import (
	"fmt"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
	"github.com/slimio/slimio/internal/vtrace"
)

// Op is a passthru command opcode.
type Op int

const (
	// OpWrite writes consecutive pages at an LPA with a placement ID.
	OpWrite Op = iota
	// OpRead reads consecutive pages from an LPA.
	OpRead
	// OpDeallocate TRIMs a page range.
	OpDeallocate
)

// SQE is a submission-queue entry (one passthru NVMe command).
//
// Ownership: Submit takes one reference per pooled page in Pages. The ring
// releases each after the device has consumed the command (the NAND layer
// retains what it stores), so a caller that wants to keep using a segment
// past submission must Retain its own reference first.
type SQE struct {
	Op    Op
	LPA   int64
	Pages []bufpool.Ref // OpWrite: page payloads
	N     int64         // OpRead / OpDeallocate: page count
	PID   uint32        // FDP placement identifier

	// Span optionally parents this command's trace span; when zero the
	// ring falls back to the tracer's current scope at Submit time.
	Span vtrace.SpanID

	done      *sim.Signal
	result    *CQE
	span      vtrace.SpanID
	submitted sim.Time
}

// CQE is a completion-queue entry. Status carries the NVMe-style status of
// the command (StatusOK on success), mirroring how passthru surfaces raw
// device status to the application instead of a flattened errno.
type CQE struct {
	Err    error
	Status nand.Status
	Data   [][]byte // OpRead results
}

// Config tunes the ring.
type Config struct {
	// SQPoll enables the kernel submission poller: submissions cost no
	// syscall, only a ring write plus the poller pickup latency.
	SQPoll bool
	// SQPollPickup is how long the poller takes to notice a new SQE.
	// Default 500 ns (a polling kernel thread on a dedicated core).
	SQPollPickup sim.Duration
	// SubmitSyscall is the io_uring_enter cost paid per submission batch
	// when SQPoll is off. Default 1.2 µs.
	SubmitSyscall sim.Duration
	// RingOverhead is the user-space cost of preparing one SQE and, on the
	// completion side, reaping one CQE. Default 150 ns.
	RingOverhead sim.Duration
	// DispatchCPU is the kernel-side cost to turn an SQE into an NVMe
	// command (no block layer, no scheduler: cheaper than the kernel
	// path's dispatch). Default 700 ns.
	DispatchCPU sim.Duration
	// Trace, when non-nil, records one uring command span per SQE
	// (submit → completion post) with an sq.wait child covering the time
	// the SQE sat in the submission queue. Nil disables tracing.
	Trace *vtrace.Tracer
}

func (c *Config) fillDefaults() {
	if c.SQPollPickup <= 0 {
		c.SQPollPickup = 500 * sim.Nanosecond
	}
	if c.SubmitSyscall <= 0 {
		c.SubmitSyscall = 1200 * sim.Nanosecond
	}
	if c.RingOverhead <= 0 {
		c.RingOverhead = 150 * sim.Nanosecond
	}
	if c.DispatchCPU <= 0 {
		c.DispatchCPU = 700 * sim.Nanosecond
	}
}

// Stats aggregates ring counters.
type Stats struct {
	Submitted   int64
	Completed   int64
	Syscalls    int64 // zero in SQPOLL mode
	SQPollWakes int64
	// SQPollIdle is cumulative time the SQPOLL poller spent parked with an
	// empty submission queue (zero when SQPoll is off) — the telemetry
	// plane derives poller utilization from its deltas.
	SQPollIdle sim.Duration
}

// Ring is one io_uring instance bound to a device. A Ring is owned by one
// simulated process (as in the paper: one ring per I/O path) but completions
// may be awaited by any process.
type Ring struct {
	eng   *sim.Engine
	dev   *ssd.Device
	cfg   Config
	name  string
	sq    []*SQE
	cq    *sim.Queue[*SQE]
	kick  *sim.Broadcast
	stats Stats

	// pending registers every accepted write command whose page references
	// the ring still owns. Registration happens at Submit entry — before any
	// simulated wait — so a power cut frozen anywhere in the submission or
	// dispatch path leaves the references reachable for DropPending. The
	// window is at most the ring depth, so linear removal stays cheap.
	pending []*SQE
}

// NewRing creates a ring over dev. With cfg.SQPoll a kernel poller daemon is
// spawned; a CQ-handler daemon always runs, firing each SQE's completion
// signal (the paper's "dedicated CQ handling thread").
func NewRing(eng *sim.Engine, dev *ssd.Device, name string, cfg Config) *Ring {
	cfg.fillDefaults()
	r := &Ring{
		eng:  eng,
		dev:  dev,
		cfg:  cfg,
		name: name,
		cq:   sim.NewQueue[*SQE](eng),
		kick: sim.NewBroadcast(eng),
	}
	if cfg.SQPoll {
		eng.SpawnDaemon("sqpoll:"+name, r.sqPoller)
	}
	eng.SpawnDaemon("cq-handler:"+name, r.cqHandler)
	return r
}

// Stats returns cumulative ring counters.
func (r *Ring) Stats() Stats { return r.stats }

// SQDepth reports entries waiting for the poller (SQPOLL mode only).
func (r *Ring) SQDepth() int { return len(r.sq) }

// CQDepth reports completions posted but not yet reaped by the CQ handler.
func (r *Ring) CQDepth() int { return r.cq.Len() }

// Submit places an SQE on the ring and returns a signal that fires with a
// *CQE when the command completes. In SQPOLL mode this costs the caller only
// the ring write; otherwise it pays the submission syscall and the kernel
// dispatch inline.
func (r *Ring) Submit(env *sim.Env, sqe *SQE) *sim.Signal {
	sqe.done = sim.NewSignal(r.eng)
	r.stats.Submitted++
	if sqe.Op == OpWrite {
		r.pending = append(r.pending, sqe)
	}
	if tr := r.cfg.Trace; tr.Enabled() {
		parent := sqe.Span
		if parent == 0 {
			parent = tr.Scope()
		}
		sqe.span = tr.Begin("uring", opName(sqe.Op), parent, env.Now())
		tr.SetArg(sqe.span, sqe.pageCount())
		sqe.submitted = env.Now()
	}
	env.Work("ring", r.cfg.RingOverhead)
	if r.cfg.SQPoll {
		r.sq = append(r.sq, sqe)
		r.kick.Notify()
		return sqe.done
	}
	r.stats.Syscalls++
	env.Work("syscall", r.cfg.SubmitSyscall)
	env.Work("dispatch", r.cfg.DispatchCPU)
	r.issue(env.Now(), sqe)
	return sqe.done
}

// SubmitAndWait submits and blocks until completion, returning the CQE.
func (r *Ring) SubmitAndWait(env *sim.Env, sqe *SQE) *CQE {
	done := r.Submit(env, sqe)
	cqe := done.Wait(env).(*CQE)
	env.Work("ring", r.cfg.RingOverhead) // reap
	return cqe
}

// sqPoller is the SQPOLL kernel thread: it notices new SQEs after the pickup
// latency and dispatches them without any syscall from the application.
func (r *Ring) sqPoller(env *sim.Env) {
	for {
		if len(r.sq) == 0 {
			idleFrom := env.Now()
			r.kick.Wait(env)
			r.stats.SQPollIdle += env.Now().Sub(idleFrom)
			continue
		}
		env.Sleep(r.cfg.SQPollPickup)
		for len(r.sq) > 0 {
			sqe := r.sq[0]
			r.sq = r.sq[1:]
			r.stats.SQPollWakes++
			env.Work("dispatch", r.cfg.DispatchCPU)
			r.issue(env.Now(), sqe)
		}
	}
}

// opName maps an opcode to its trace span name.
func opName(op Op) string {
	switch op {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpDeallocate:
		return "deallocate"
	default:
		return "unknown"
	}
}

// pageCount is the page payload size of the command, for span args.
func (s *SQE) pageCount() int64 {
	if s.Op == OpWrite {
		return int64(len(s.Pages))
	}
	return s.N
}

// issue translates an SQE into device operations and schedules its CQE.
func (r *Ring) issue(now sim.Time, sqe *SQE) {
	tr := r.cfg.Trace
	prev := tr.Scope()
	if sqe.span != 0 {
		tr.Emit("uring", "sq.wait", sqe.span, sqe.submitted, now, 0)
	}
	tr.SetScope(sqe.span)
	defer tr.SetScope(prev)
	switch sqe.Op {
	case OpWrite:
		done, err := r.dev.WritePages(now, sqe.LPA, sqe.Pages, sqe.PID)
		// WritePages has fully consumed the payload (device state mutation,
		// including retries, is synchronous; only timing is deferred), so the
		// ring's references are dropped here — release-on-durable is enforced
		// below this layer by the NAND quarantine on the stored segments.
		r.releasePages(sqe)
		r.complete(done, sqe, &CQE{Err: err, Status: nand.StatusOf(err)})
	case OpRead:
		data, done, err := r.dev.ReadPages(now, sqe.LPA, sqe.N)
		r.complete(done, sqe, &CQE{Err: err, Status: nand.StatusOf(err), Data: data})
	case OpDeallocate:
		err := r.dev.Deallocate(sqe.LPA, sqe.N)
		r.complete(now, sqe, &CQE{Err: err, Status: nand.StatusOf(err)})
	default:
		r.complete(now, sqe, &CQE{Err: fmt.Errorf("uring: unknown opcode %d", sqe.Op), Status: nand.StatusInternal})
	}
}

// complete posts the CQE at time t; the CQ handler daemon fires the waiter.
func (r *Ring) complete(t sim.Time, sqe *SQE, cqe *CQE) {
	sqe.result = cqe
	r.cfg.Trace.End(sqe.span, t)
	r.eng.At(t, func() { r.cq.Push(sqe) })
}

// releasePages drops the ring's references on a consumed write command and
// unregisters it from the pending set.
func (r *Ring) releasePages(sqe *SQE) {
	for i := range sqe.Pages {
		sqe.Pages[i].Release()
		sqe.Pages[i] = bufpool.Ref{}
	}
	for i, p := range r.pending {
		if p == sqe {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			break
		}
	}
}

// DropPending releases payload references of every write command the ring
// still owns — queued in the submission queue or frozen mid-dispatch. Only
// teardown after a simulated power cut calls this: the SQPOLL poller froze
// with the engine, so these commands will never issue and their (lost)
// payloads must be returned to the pool for leak accounting.
func (r *Ring) DropPending() {
	for len(r.pending) > 0 {
		r.releasePages(r.pending[0])
	}
	r.sq = nil
}

// cqHandler drains the completion queue and fires each command's signal.
func (r *Ring) cqHandler(env *sim.Env) {
	for {
		sqe, ok := r.cq.Pop(env)
		if !ok {
			return
		}
		env.Work("ring", r.cfg.RingOverhead)
		r.stats.Completed++
		sqe.done.Fire(sqe.result)
	}
}

// Convenience wrappers for the common commands.

// Write submits a multi-page write and blocks until durable. It takes one
// reference per pooled page (see SQE).
//
//slimio:owns pages
func (r *Ring) Write(env *sim.Env, lpa int64, pages []bufpool.Ref, pid uint32) error {
	cqe := r.SubmitAndWait(env, &SQE{Op: OpWrite, LPA: lpa, Pages: pages, PID: pid})
	return cqe.Err
}

// WriteAsync submits a multi-page write and returns immediately with the
// completion signal (fired with *CQE). It takes one reference per pooled
// page (see SQE).
//
//slimio:owns pages
func (r *Ring) WriteAsync(env *sim.Env, lpa int64, pages []bufpool.Ref, pid uint32) *sim.Signal {
	return r.Submit(env, &SQE{Op: OpWrite, LPA: lpa, Pages: pages, PID: pid})
}

// Read submits a multi-page read and blocks for the data.
func (r *Ring) Read(env *sim.Env, lpa int64, n int64) ([][]byte, error) {
	cqe := r.SubmitAndWait(env, &SQE{Op: OpRead, LPA: lpa, N: n})
	return cqe.Data, cqe.Err
}

// Deallocate submits a TRIM and blocks until acknowledged.
func (r *Ring) Deallocate(env *sim.Env, lpa int64, n int64) error {
	cqe := r.SubmitAndWait(env, &SQE{Op: OpDeallocate, LPA: lpa, N: n})
	return cqe.Err
}
