package wal

import (
	"bytes"
	"testing"
)

func BenchmarkAppendRecord4K(b *testing.B) {
	key := []byte("00001234")
	val := bytes.Repeat([]byte("v"), 4096)
	var buf []byte
	b.SetBytes(int64(EncodedSize(key, val)))
	for i := 0; i < b.N; i++ {
		buf = AppendRecord(buf[:0], OpSet, key, val)
	}
}

func BenchmarkDecode4K(b *testing.B) {
	key := []byte("00001234")
	val := bytes.Repeat([]byte("v"), 4096)
	buf := AppendRecord(nil, OpSet, key, val)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}
