package wal

import (
	"bytes"
	"testing"
)

func stream(n int) []byte {
	var buf []byte
	for i := 0; i < n; i++ {
		buf = AppendRecord(buf, OpSet, []byte{byte('a' + i)}, bytes.Repeat([]byte{byte(i + 1)}, 20+i*7))
	}
	return buf
}

func TestDecodeStreamCleanZeroTail(t *testing.T) {
	buf := stream(3)
	want := int64(len(buf))
	buf = append(buf, make([]byte, 100)...) // unwritten page tail
	recs, prefix, corrupt := DecodeStream(buf)
	if len(recs) != 3 || prefix != want || corrupt {
		t.Fatalf("recs=%d prefix=%d corrupt=%v, want 3/%d/false", len(recs), prefix, corrupt, want)
	}
}

func TestDecodeStreamGarbageTail(t *testing.T) {
	buf := stream(3)
	want := int64(len(buf))
	buf = append(buf, 0, 0, 0xA5, 0x17) // torn-page garbage after the zeros
	recs, prefix, corrupt := DecodeStream(buf)
	if len(recs) != 3 || prefix != want || !corrupt {
		t.Fatalf("recs=%d prefix=%d corrupt=%v, want 3/%d/true", len(recs), prefix, corrupt, want)
	}
}

func TestDecodeStreamStopsAtMidSegmentFlip(t *testing.T) {
	one := stream(1)
	buf := stream(4)
	buf[len(one)+5] ^= 0xFF // corrupt the second record's header
	recs, prefix, corrupt := DecodeStream(buf)
	if len(recs) != 1 || prefix != int64(len(one)) || !corrupt {
		t.Fatalf("recs=%d prefix=%d corrupt=%v, want 1/%d/true", len(recs), prefix, corrupt, len(one))
	}
}

// FuzzDecode: whatever the bytes, the decoder must never panic, must accept
// only frames that re-encode to the exact bytes it consumed (CRC-clean), and
// must report a durable prefix inside the buffer with an honest corrupt flag.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(stream(1))
	f.Add(stream(5))
	f.Add(append(stream(2), make([]byte, 64)...))
	f.Add(append(stream(3), 0xA5, 0x01, 0xFF))
	f.Add(stream(4)[:37])                                                             // torn mid-frame
	f.Add([]byte{recordMagic, 1, 255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0}) // absurd lengths
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, prefix, corrupt := DecodeStream(data)
		if prefix < 0 || prefix > int64(len(data)) {
			t.Fatalf("prefix %d outside buffer of %d bytes", prefix, len(data))
		}
		var re []byte
		for _, r := range recs {
			re = AppendRecord(re, r.Op, r.Key, r.Value)
		}
		if int64(len(re)) != prefix || !bytes.Equal(re, data[:prefix]) {
			t.Fatalf("accepted records do not re-encode to the %d consumed bytes", prefix)
		}
		wantCorrupt := false
		for _, b := range data[prefix:] {
			if b != 0 {
				wantCorrupt = true
				break
			}
		}
		if corrupt != wantCorrupt {
			t.Fatalf("corrupt=%v but tail non-zero=%v", corrupt, wantCorrupt)
		}
		// DecodeAll must agree with DecodeStream.
		recs2, truncated := DecodeAll(data)
		if len(recs2) != len(recs) || truncated != corrupt {
			t.Fatalf("DecodeAll diverges from DecodeStream")
		}
	})
}
