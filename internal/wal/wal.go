// Package wal provides the write-ahead-log record format and the user-level
// write buffer shared by the baseline and SlimIO persistence backends.
//
// Records are CRC-framed so a decoder can detect a torn tail after a crash:
// everything up to the first bad frame is the durable prefix, matching how
// Redis truncates a partial AOF on startup.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/slimio/slimio/internal/bufpool"
)

// Op is the logged operation type.
type Op uint8

const (
	// OpSet records a key/value write.
	OpSet Op = 1
	// OpDel records a key deletion (empty value).
	OpDel Op = 2
)

// Record is one logged mutation.
type Record struct {
	Op    Op
	Key   []byte
	Value []byte
}

const recordMagic = 0xA5

// headerSize is magic(1) + op(1) + keyLen(4) + valLen(4) + crc(4).
const headerSize = 14

// EncodedSize returns the framed size of a record.
func EncodedSize(key, value []byte) int { return headerSize + len(key) + len(value) }

// AppendRecord appends the framed record to dst and returns the result.
func AppendRecord(dst []byte, op Op, key, value []byte) []byte {
	var hdr [headerSize]byte
	hdr[0] = recordMagic
	hdr[1] = byte(op)
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(value)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:10])
	crc.Write(key)
	crc.Write(value)
	binary.LittleEndian.PutUint32(hdr[10:14], crc.Sum32())
	dst = append(dst, hdr[:]...)
	dst = append(dst, key...)
	dst = append(dst, value...)
	return dst
}

// ErrTornRecord marks a frame that fails validation: the readable prefix
// before it is the recoverable log.
var ErrTornRecord = fmt.Errorf("wal: torn or corrupt record")

// Decode parses one record at the front of buf. It returns the record and
// the number of bytes consumed, or ErrTornRecord (n==0) when the frame is
// incomplete or corrupt.
func Decode(buf []byte) (rec Record, n int, err error) {
	if len(buf) < headerSize {
		return rec, 0, ErrTornRecord
	}
	if buf[0] != recordMagic {
		return rec, 0, ErrTornRecord
	}
	keyLen := binary.LittleEndian.Uint32(buf[2:6])
	valLen := binary.LittleEndian.Uint32(buf[6:10])
	total := headerSize + int(keyLen) + int(valLen)
	if int(keyLen) > 1<<24 || int(valLen) > 1<<28 || len(buf) < total {
		return rec, 0, ErrTornRecord
	}
	want := binary.LittleEndian.Uint32(buf[10:14])
	crc := crc32.NewIEEE()
	crc.Write(buf[:10])
	crc.Write(buf[headerSize:total])
	if crc.Sum32() != want {
		return rec, 0, ErrTornRecord
	}
	rec.Op = Op(buf[1])
	rec.Key = append([]byte(nil), buf[headerSize:headerSize+int(keyLen)]...)
	rec.Value = append([]byte(nil), buf[headerSize+int(keyLen):total]...)
	return rec, total, nil
}

// DecodeStream parses records until the buffer ends or a bad frame stops it.
// It returns the valid record prefix, the byte offset where decoding stopped
// (the durable-prefix length; len(buf) when the whole buffer decoded), and
// whether the stop looked like corruption. A trailing run of zero bytes is a
// clean unwritten tail (corrupt=false); any non-zero garbage after the last
// valid frame — a torn page program, flipped bits mid-segment — reports
// corrupt=true so recovery can distinguish "expected crash artifact" from
// "data loss past this point".
func DecodeStream(buf []byte) (recs []Record, prefix int64, corrupt bool) {
	off := 0
	for off < len(buf) {
		rec, n, err := Decode(buf[off:])
		if err != nil {
			for _, b := range buf[off:] {
				if b != 0 {
					return recs, int64(off), true
				}
			}
			return recs, int64(off), false
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, int64(off), false
}

// DecodeAll parses records until the buffer ends or a torn frame is hit,
// returning the valid prefix. A trailing run of zero bytes (an unwritten
// page tail) is not an error; any other trailing garbage is reported via
// truncated=true so callers can log it.
func DecodeAll(buf []byte) (recs []Record, truncated bool) {
	recs, _, corrupt := DecodeStream(buf)
	return recs, corrupt
}

// Chain is a drained run of WAL bytes held in pooled, page-sized segments —
// the iovec-style hand-off from the engine's write buffer to a backend.
//
// Ownership contract (the zero-copy data plane's load-bearing rules):
//
//   - The receiver of a Chain owns exactly one reference per segment in Segs
//     and must Release (or transfer) each exactly once. Chain.Release drops
//     them all; a backend that forwards whole segments to the device instead
//     hands each reference down the submission path.
//   - Only [Off, End) of the chain is the receiver's data: Off is the start
//     offset in Segs[0], End the used length of the last segment. Bytes
//     below Off were drained earlier (and may already sit on the device);
//     bytes past End in the last segment still belong to the producer.
//   - Drained bytes are immutable. The producing Buffer keeps filling the
//     shared tail segment strictly past End and never rewrites a byte below
//     it, so a receiver (or the device) may hold segment references for as
//     long as it likes — recycling is gated by the pool's reference counts
//     and the NAND quarantine, never by the producer's write position.
type Chain struct {
	Segs []*bufpool.Segment
	Off  int // byte offset in Segs[0] where the run starts
	End  int // bytes used in the last segment
}

// Empty reports whether the chain carries no segments.
func (c Chain) Empty() bool { return len(c.Segs) == 0 }

// Len is the number of payload bytes in the chain.
func (c Chain) Len() int {
	n := 0
	for i := range c.Segs {
		n += len(c.Span(i))
	}
	return n
}

// Span returns the payload byte range of segment i (respecting Off on the
// first segment and End on the last).
func (c Chain) Span(i int) []byte {
	b := c.Segs[i].Bytes()
	lo, hi := 0, len(b)
	if i == 0 {
		lo = c.Off
	}
	if i == len(c.Segs)-1 {
		hi = c.End
	}
	return b[lo:hi]
}

// AppendTo flattens the chain's payload onto dst (for backends that need a
// contiguous view, e.g. the kernel-path file write).
func (c Chain) AppendTo(dst []byte) []byte {
	for i := range c.Segs {
		dst = append(dst, c.Span(i)...)
	}
	return dst
}

// Release drops the receiver's reference on every segment. Call exactly once
// unless the references were transferred elsewhere.
func (c *Chain) Release() {
	for _, s := range c.Segs {
		s.Release()
	}
	c.Segs = nil
}

// NewChain copies raw, already-framed bytes into freshly pooled segments and
// returns a chain owning one reference per segment. Helper for tests and
// replay paths that start from a contiguous stream; the hot path encodes
// directly into segments via Buffer instead.
func NewChain(pool *bufpool.Pool, data []byte) Chain {
	var c Chain
	for len(data) > 0 {
		s := pool.Get()
		n := copy(s.Bytes(), data)
		data = data[n:]
		c.Segs = append(c.Segs, s)
		c.End = n
	}
	return c
}

// Buffer is the user-level WAL write buffer (the paper's "Periodical-Log"
// staging area): records accumulate here and drain to the backend either
// when the server goes idle, when the buffer exceeds a size threshold, or on
// the flush timer.
//
// Records are encoded directly into pooled page-sized segments, so a drain
// transfers references instead of bytes: the same memory the event loop
// encoded into is what the device programs (zero-copy data plane). After a
// drain the buffer retains the partial tail segment and keeps filling it
// past the drained range — see Chain for why that is safe.
type Buffer struct {
	pool     *bufpool.Pool
	segs     []*bufpool.Segment // buffer-owned refs; segs[0] may be a shared tail
	off      int                // un-drained start offset in segs[0]
	end      int                // write position in the last segment
	records  int
	appended int64  // lifetime bytes appended, for WAL-snapshot triggering
	kbuf     []byte // reused scratch for AppendString keys
}

// NewBuffer returns a buffer encoding into pool's segments.
func NewBuffer(pool *bufpool.Pool) *Buffer {
	if pool == nil {
		panic("wal: NewBuffer needs a pool")
	}
	return &Buffer{pool: pool}
}

// write copies p into the tail, pulling fresh segments as needed.
func (b *Buffer) write(p []byte) {
	ss := b.pool.SegSize()
	for len(p) > 0 {
		if len(b.segs) == 0 || b.end == ss {
			b.segs = append(b.segs, b.pool.Get())
			b.end = 0
		}
		n := copy(b.segs[len(b.segs)-1].Bytes()[b.end:], p)
		b.end += n
		p = p[n:]
	}
}

// Append frames a record into the buffer.
func (b *Buffer) Append(op Op, key, value []byte) {
	var hdr [headerSize]byte
	hdr[0] = recordMagic
	hdr[1] = byte(op)
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(value)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:10])
	crc.Write(key)
	crc.Write(value)
	binary.LittleEndian.PutUint32(hdr[10:14], crc.Sum32())
	b.write(hdr[:])
	b.write(key)
	b.write(value)
	b.records++
	b.appended += int64(headerSize + len(key) + len(value))
}

// AppendString is Append with a string key, encoded through a reused scratch
// buffer so the per-command []byte(key) conversion allocates nothing.
func (b *Buffer) AppendString(op Op, key string, value []byte) {
	b.kbuf = append(b.kbuf[:0], key...)
	b.Append(op, b.kbuf, value)
}

// Len reports buffered (un-drained) bytes.
func (b *Buffer) Len() int {
	if len(b.segs) == 0 {
		return 0
	}
	return (len(b.segs)-1)*b.pool.SegSize() + b.end - b.off
}

// Records reports buffered record count.
func (b *Buffer) Records() int { return b.records }

// AppendedTotal reports lifetime bytes appended (drained or not).
func (b *Buffer) AppendedTotal() int64 { return b.appended }

// Drain hands the buffered bytes to the caller as a Chain (one reference per
// segment transfers; see Chain's ownership contract) and resets the record
// count. The buffer retains the partial tail segment — taking a reference of
// its own — and continues encoding past the drained range.
//
//slimio:owns return
func (b *Buffer) Drain() Chain {
	if b.Len() == 0 {
		return Chain{}
	}
	c := Chain{Segs: b.segs, Off: b.off, End: b.end}
	last := b.segs[len(b.segs)-1]
	if b.end < b.pool.SegSize() {
		last.Retain()
		b.segs = []*bufpool.Segment{last}
		b.off = b.end
	} else {
		b.segs = nil
		b.off, b.end = 0, 0
	}
	b.records = 0
	return c
}

// Cut drops the retained tail segment so the next append starts on a fresh
// one — called after a WAL rotation, keeping the buffer's segment boundaries
// page-aligned with the backend's new log head. The buffer must be drained.
func (b *Buffer) Cut() {
	if b.Len() != 0 {
		panic("wal: Cut on a buffer with un-drained bytes")
	}
	b.Close()
}

// Close releases every segment the buffer still holds (including un-drained
// data). Use at shutdown/teardown; the buffer is reusable afterwards.
func (b *Buffer) Close() {
	for _, s := range b.segs {
		s.Release()
	}
	b.segs = nil
	b.off, b.end = 0, 0
	b.records = 0
}

// Reset discards buffered data and the lifetime counter (used when a
// WAL-snapshot supersedes the log).
func (b *Buffer) Reset() {
	b.Close()
	b.appended = 0
}
