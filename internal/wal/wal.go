// Package wal provides the write-ahead-log record format and the user-level
// write buffer shared by the baseline and SlimIO persistence backends.
//
// Records are CRC-framed so a decoder can detect a torn tail after a crash:
// everything up to the first bad frame is the durable prefix, matching how
// Redis truncates a partial AOF on startup.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Op is the logged operation type.
type Op uint8

const (
	// OpSet records a key/value write.
	OpSet Op = 1
	// OpDel records a key deletion (empty value).
	OpDel Op = 2
)

// Record is one logged mutation.
type Record struct {
	Op    Op
	Key   []byte
	Value []byte
}

const recordMagic = 0xA5

// headerSize is magic(1) + op(1) + keyLen(4) + valLen(4) + crc(4).
const headerSize = 14

// EncodedSize returns the framed size of a record.
func EncodedSize(key, value []byte) int { return headerSize + len(key) + len(value) }

// AppendRecord appends the framed record to dst and returns the result.
func AppendRecord(dst []byte, op Op, key, value []byte) []byte {
	var hdr [headerSize]byte
	hdr[0] = recordMagic
	hdr[1] = byte(op)
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(len(value)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[:10])
	crc.Write(key)
	crc.Write(value)
	binary.LittleEndian.PutUint32(hdr[10:14], crc.Sum32())
	dst = append(dst, hdr[:]...)
	dst = append(dst, key...)
	dst = append(dst, value...)
	return dst
}

// ErrTornRecord marks a frame that fails validation: the readable prefix
// before it is the recoverable log.
var ErrTornRecord = fmt.Errorf("wal: torn or corrupt record")

// Decode parses one record at the front of buf. It returns the record and
// the number of bytes consumed, or ErrTornRecord (n==0) when the frame is
// incomplete or corrupt.
func Decode(buf []byte) (rec Record, n int, err error) {
	if len(buf) < headerSize {
		return rec, 0, ErrTornRecord
	}
	if buf[0] != recordMagic {
		return rec, 0, ErrTornRecord
	}
	keyLen := binary.LittleEndian.Uint32(buf[2:6])
	valLen := binary.LittleEndian.Uint32(buf[6:10])
	total := headerSize + int(keyLen) + int(valLen)
	if int(keyLen) > 1<<24 || int(valLen) > 1<<28 || len(buf) < total {
		return rec, 0, ErrTornRecord
	}
	want := binary.LittleEndian.Uint32(buf[10:14])
	crc := crc32.NewIEEE()
	crc.Write(buf[:10])
	crc.Write(buf[headerSize:total])
	if crc.Sum32() != want {
		return rec, 0, ErrTornRecord
	}
	rec.Op = Op(buf[1])
	rec.Key = append([]byte(nil), buf[headerSize:headerSize+int(keyLen)]...)
	rec.Value = append([]byte(nil), buf[headerSize+int(keyLen):total]...)
	return rec, total, nil
}

// DecodeStream parses records until the buffer ends or a bad frame stops it.
// It returns the valid record prefix, the byte offset where decoding stopped
// (the durable-prefix length; len(buf) when the whole buffer decoded), and
// whether the stop looked like corruption. A trailing run of zero bytes is a
// clean unwritten tail (corrupt=false); any non-zero garbage after the last
// valid frame — a torn page program, flipped bits mid-segment — reports
// corrupt=true so recovery can distinguish "expected crash artifact" from
// "data loss past this point".
func DecodeStream(buf []byte) (recs []Record, prefix int64, corrupt bool) {
	off := 0
	for off < len(buf) {
		rec, n, err := Decode(buf[off:])
		if err != nil {
			for _, b := range buf[off:] {
				if b != 0 {
					return recs, int64(off), true
				}
			}
			return recs, int64(off), false
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, int64(off), false
}

// DecodeAll parses records until the buffer ends or a torn frame is hit,
// returning the valid prefix. A trailing run of zero bytes (an unwritten
// page tail) is not an error; any other trailing garbage is reported via
// truncated=true so callers can log it.
func DecodeAll(buf []byte) (recs []Record, truncated bool) {
	recs, _, corrupt := DecodeStream(buf)
	return recs, corrupt
}

// Buffer is the user-level WAL write buffer (the paper's "Periodical-Log"
// staging area): records accumulate here and drain to the backend either
// when the server goes idle, when the buffer exceeds a size threshold, or on
// the flush timer.
type Buffer struct {
	buf      []byte
	records  int
	appended int64 // lifetime bytes appended, for WAL-snapshot triggering
	sizeHint int   // largest drained size seen: presize to skip regrowth
}

// Append frames a record into the buffer.
func (b *Buffer) Append(op Op, key, value []byte) {
	if b.buf == nil && b.sizeHint > 0 {
		// Drain hands the previous backing array to the caller, so each
		// fill cycle starts from nil; presizing to the previous drained
		// size avoids re-paying the append-grow copies every cycle. The
		// hint tracks the last drain, not the maximum: drain sizes vary
		// wildly between threshold-driven and idle-driven cycles, and a
		// sticky maximum would zero a worst-case buffer every cycle.
		b.buf = make([]byte, 0, b.sizeHint)
	}
	before := len(b.buf)
	b.buf = AppendRecord(b.buf, op, key, value)
	b.records++
	b.appended += int64(len(b.buf) - before)
}

// Len reports buffered (un-drained) bytes.
func (b *Buffer) Len() int { return len(b.buf) }

// Records reports buffered record count.
func (b *Buffer) Records() int { return b.records }

// AppendedTotal reports lifetime bytes appended (drained or not).
func (b *Buffer) AppendedTotal() int64 { return b.appended }

// Drain returns the buffered bytes and resets the buffer. The returned slice
// is owned by the caller.
func (b *Buffer) Drain() []byte {
	out := b.buf
	b.sizeHint = len(out)
	b.buf = nil
	b.records = 0
	return out
}

// Reset discards buffered data and the lifetime counter (used when a
// WAL-snapshot supersedes the log).
func (b *Buffer) Reset() {
	b.buf = nil
	b.records = 0
	b.appended = 0
}
