package wal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/slimio/slimio/internal/bufpool"
)

func TestRecordRoundTrip(t *testing.T) {
	buf := AppendRecord(nil, OpSet, []byte("key1"), []byte("value-1"))
	rec, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if rec.Op != OpSet || string(rec.Key) != "key1" || string(rec.Value) != "value-1" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	key, val := []byte("abc"), []byte("defgh")
	buf := AppendRecord(nil, OpSet, key, val)
	if len(buf) != EncodedSize(key, val) {
		t.Fatalf("encoded %d, EncodedSize %d", len(buf), EncodedSize(key, val))
	}
}

func TestDecodeEmptyAndShort(t *testing.T) {
	if _, _, err := Decode(nil); err != ErrTornRecord {
		t.Fatal("empty buffer must be torn")
	}
	buf := AppendRecord(nil, OpSet, []byte("k"), []byte("v"))
	if _, _, err := Decode(buf[:len(buf)-1]); err != ErrTornRecord {
		t.Fatal("truncated record must be torn")
	}
}

func TestDecodeCorruptPayload(t *testing.T) {
	buf := AppendRecord(nil, OpSet, []byte("k"), []byte("value"))
	buf[len(buf)-1] ^= 0xFF
	if _, _, err := Decode(buf); err != ErrTornRecord {
		t.Fatal("corrupt payload must fail CRC")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	buf := AppendRecord(nil, OpSet, []byte("k"), []byte("v"))
	buf[0] = 0
	if _, _, err := Decode(buf); err != ErrTornRecord {
		t.Fatal("bad magic must be torn")
	}
}

func TestDecodeAllStream(t *testing.T) {
	var buf []byte
	for i := 0; i < 20; i++ {
		buf = AppendRecord(buf, OpSet, []byte{byte('a' + i)}, bytes.Repeat([]byte{byte(i)}, i*7))
	}
	recs, truncated := DecodeAll(buf)
	if truncated {
		t.Fatal("clean stream reported truncated")
	}
	if len(recs) != 20 {
		t.Fatalf("decoded %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.Key[0] != byte('a'+i) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestDecodeAllTornTail(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = AppendRecord(buf, OpSet, []byte("k"), []byte("vvvv"))
	}
	whole := len(buf)
	buf = AppendRecord(buf, OpSet, []byte("k"), []byte("torn-me"))
	buf = buf[:whole+7] // tear the last record
	recs, truncated := DecodeAll(buf)
	if len(recs) != 5 {
		t.Fatalf("decoded %d, want the 5 whole records", len(recs))
	}
	if !truncated {
		t.Fatal("torn tail not reported")
	}
}

func TestDecodeAllZeroPadding(t *testing.T) {
	buf := AppendRecord(nil, OpSet, []byte("k"), []byte("v"))
	buf = append(buf, make([]byte, 100)...) // unwritten page tail
	recs, truncated := DecodeAll(buf)
	if len(recs) != 1 || truncated {
		t.Fatalf("recs=%d truncated=%v, want 1/false", len(recs), truncated)
	}
}

func TestBuffer(t *testing.T) {
	pool := bufpool.New(4096)
	b := NewBuffer(pool)
	b.Append(OpSet, []byte("a"), []byte("1"))
	b.Append(OpSet, []byte("b"), []byte("2"))
	if b.Records() != 2 || b.Len() == 0 {
		t.Fatalf("records=%d len=%d", b.Records(), b.Len())
	}
	total := b.AppendedTotal()
	if total != int64(b.Len()) {
		t.Fatalf("appended %d != len %d", total, b.Len())
	}
	data := b.Drain()
	if b.Len() != 0 || b.Records() != 0 {
		t.Fatal("drain did not clear")
	}
	if b.AppendedTotal() != total {
		t.Fatal("drain must not reset lifetime counter")
	}
	recs, _ := DecodeAll(data.AppendTo(nil))
	if len(recs) != 2 {
		t.Fatalf("drained stream decodes %d records", len(recs))
	}
	data.Release()
	b.Append(OpSet, []byte("c"), []byte("3"))
	b.Reset()
	if b.AppendedTotal() != 0 || b.Len() != 0 {
		t.Fatal("reset must clear everything")
	}
	b.Close()
	if n := pool.InFlight(); n != 0 {
		t.Fatalf("%d segments still in flight after close", n)
	}
}

// Property: any sequence of records survives encode/decode, and any single
// bit flip in the stream is detected (no record decodes with wrong content).
func TestRecordProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%16) + 1
		var buf []byte
		var keys, vals [][]byte
		for i := 0; i < count; i++ {
			k := make([]byte, rng.Intn(20)+1)
			v := make([]byte, rng.Intn(200))
			rng.Read(k)
			rng.Read(v)
			keys, vals = append(keys, k), append(vals, v)
			buf = AppendRecord(buf, OpSet, k, v)
		}
		recs, truncated := DecodeAll(buf)
		if truncated || len(recs) != count {
			return false
		}
		for i := range recs {
			if !bytes.Equal(recs[i].Key, keys[i]) || !bytes.Equal(recs[i].Value, vals[i]) {
				return false
			}
		}
		// Flip one random bit: decoding must not produce count intact
		// records with altered content silently.
		flipped := append([]byte(nil), buf...)
		pos := rng.Intn(len(flipped))
		flipped[pos] ^= 1 << uint(rng.Intn(8))
		recs2, trunc2 := DecodeAll(flipped)
		if !trunc2 && len(recs2) == count {
			for i := range recs2 {
				if !bytes.Equal(recs2[i].Key, keys[i]) || !bytes.Equal(recs2[i].Value, vals[i]) {
					return false // undetected corruption
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the old contiguous Buffer's Drain aliasing hazard: Drain
// handed callers a view of the buffer's internal slice, so a later append
// could grow-and-move (or rewrite) bytes a device write was still reading.
// The segment chain forbids that by construction — bytes below the drained
// End are immutable while the producer keeps encoding into the shared tail
// segment, so the in-flight view must stay bit-identical no matter how much
// is appended afterwards.
func TestDrainImmutableWhileProducerAppends(t *testing.T) {
	pool := bufpool.New(128)
	b := NewBuffer(pool)
	b.Append(OpSet, []byte("key-a"), bytes.Repeat([]byte("1"), 40))
	chain := b.Drain()
	want := chain.AppendTo(nil) // what an in-flight device write would DMA
	// Producer keeps going: fills the shared tail segment, crosses many
	// segment boundaries, drains and releases again.
	for i := 0; i < 32; i++ {
		b.Append(OpSet, []byte("key-b"), bytes.Repeat([]byte("2"), 60))
	}
	chain2 := b.Drain()
	if got := chain.AppendTo(nil); !bytes.Equal(got, want) {
		t.Fatal("later appends mutated a drained, in-flight chain")
	}
	chain2.Release()
	chain.Release()
	b.Close()
	if n := pool.InFlight(); n != 0 {
		t.Fatalf("%d segments still in flight after teardown", n)
	}
}

// Regression for recycle-after-drain: once the producer releases its share
// of a drained chain, the pool must not hand those segments to new writers
// while the device still holds references — recycling is gated by the
// reference counts, not by the producer's write position.
func TestDrainRecycleGatedByDeviceRefs(t *testing.T) {
	pool := bufpool.New(128)
	b := NewBuffer(pool)
	b.Append(OpSet, []byte("k"), bytes.Repeat([]byte("x"), 300)) // spans segments
	chain := b.Drain()
	want := chain.AppendTo(nil)
	// The device retains every segment (as nand.Program does on store)
	// before the producer releases and recycles its own bookkeeping.
	view := chain // device-side descriptor copy
	for _, s := range view.Segs {
		s.Retain()
	}
	chain.Release()
	b.Close()
	// Hammer the pool with a fresh producer: if a device-held segment were
	// recycled, these appends would overwrite its bytes.
	b2 := NewBuffer(pool)
	for i := 0; i < 16; i++ {
		b2.Append(OpSet, []byte("z"), bytes.Repeat([]byte("9"), 100))
	}
	c2 := b2.Drain()
	if got := view.AppendTo(nil); !bytes.Equal(got, want) {
		t.Fatal("pool recycled device-held segments into new writes")
	}
	c2.Release()
	b2.Close()
	view.Release()
	if n := pool.InFlight(); n != 0 {
		t.Fatalf("%d segments still in flight after teardown", n)
	}
}
