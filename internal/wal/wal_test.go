package wal

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	buf := AppendRecord(nil, OpSet, []byte("key1"), []byte("value-1"))
	rec, n, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d", n, len(buf))
	}
	if rec.Op != OpSet || string(rec.Key) != "key1" || string(rec.Value) != "value-1" {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	key, val := []byte("abc"), []byte("defgh")
	buf := AppendRecord(nil, OpSet, key, val)
	if len(buf) != EncodedSize(key, val) {
		t.Fatalf("encoded %d, EncodedSize %d", len(buf), EncodedSize(key, val))
	}
}

func TestDecodeEmptyAndShort(t *testing.T) {
	if _, _, err := Decode(nil); err != ErrTornRecord {
		t.Fatal("empty buffer must be torn")
	}
	buf := AppendRecord(nil, OpSet, []byte("k"), []byte("v"))
	if _, _, err := Decode(buf[:len(buf)-1]); err != ErrTornRecord {
		t.Fatal("truncated record must be torn")
	}
}

func TestDecodeCorruptPayload(t *testing.T) {
	buf := AppendRecord(nil, OpSet, []byte("k"), []byte("value"))
	buf[len(buf)-1] ^= 0xFF
	if _, _, err := Decode(buf); err != ErrTornRecord {
		t.Fatal("corrupt payload must fail CRC")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	buf := AppendRecord(nil, OpSet, []byte("k"), []byte("v"))
	buf[0] = 0
	if _, _, err := Decode(buf); err != ErrTornRecord {
		t.Fatal("bad magic must be torn")
	}
}

func TestDecodeAllStream(t *testing.T) {
	var buf []byte
	for i := 0; i < 20; i++ {
		buf = AppendRecord(buf, OpSet, []byte{byte('a' + i)}, bytes.Repeat([]byte{byte(i)}, i*7))
	}
	recs, truncated := DecodeAll(buf)
	if truncated {
		t.Fatal("clean stream reported truncated")
	}
	if len(recs) != 20 {
		t.Fatalf("decoded %d records, want 20", len(recs))
	}
	for i, r := range recs {
		if r.Key[0] != byte('a'+i) {
			t.Fatalf("record %d out of order", i)
		}
	}
}

func TestDecodeAllTornTail(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = AppendRecord(buf, OpSet, []byte("k"), []byte("vvvv"))
	}
	whole := len(buf)
	buf = AppendRecord(buf, OpSet, []byte("k"), []byte("torn-me"))
	buf = buf[:whole+7] // tear the last record
	recs, truncated := DecodeAll(buf)
	if len(recs) != 5 {
		t.Fatalf("decoded %d, want the 5 whole records", len(recs))
	}
	if !truncated {
		t.Fatal("torn tail not reported")
	}
}

func TestDecodeAllZeroPadding(t *testing.T) {
	buf := AppendRecord(nil, OpSet, []byte("k"), []byte("v"))
	buf = append(buf, make([]byte, 100)...) // unwritten page tail
	recs, truncated := DecodeAll(buf)
	if len(recs) != 1 || truncated {
		t.Fatalf("recs=%d truncated=%v, want 1/false", len(recs), truncated)
	}
}

func TestBuffer(t *testing.T) {
	var b Buffer
	b.Append(OpSet, []byte("a"), []byte("1"))
	b.Append(OpSet, []byte("b"), []byte("2"))
	if b.Records() != 2 || b.Len() == 0 {
		t.Fatalf("records=%d len=%d", b.Records(), b.Len())
	}
	total := b.AppendedTotal()
	if total != int64(b.Len()) {
		t.Fatalf("appended %d != len %d", total, b.Len())
	}
	data := b.Drain()
	if b.Len() != 0 || b.Records() != 0 {
		t.Fatal("drain did not clear")
	}
	if b.AppendedTotal() != total {
		t.Fatal("drain must not reset lifetime counter")
	}
	recs, _ := DecodeAll(data)
	if len(recs) != 2 {
		t.Fatalf("drained stream decodes %d records", len(recs))
	}
	b.Append(OpSet, []byte("c"), []byte("3"))
	b.Reset()
	if b.AppendedTotal() != 0 || b.Len() != 0 {
		t.Fatal("reset must clear everything")
	}
}

// Property: any sequence of records survives encode/decode, and any single
// bit flip in the stream is detected (no record decodes with wrong content).
func TestRecordProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%16) + 1
		var buf []byte
		var keys, vals [][]byte
		for i := 0; i < count; i++ {
			k := make([]byte, rng.Intn(20)+1)
			v := make([]byte, rng.Intn(200))
			rng.Read(k)
			rng.Read(v)
			keys, vals = append(keys, k), append(vals, v)
			buf = AppendRecord(buf, OpSet, k, v)
		}
		recs, truncated := DecodeAll(buf)
		if truncated || len(recs) != count {
			return false
		}
		for i := range recs {
			if !bytes.Equal(recs[i].Key, keys[i]) || !bytes.Equal(recs[i].Value, vals[i]) {
				return false
			}
		}
		// Flip one random bit: decoding must not produce count intact
		// records with altered content silently.
		flipped := append([]byte(nil), buf...)
		pos := rng.Intn(len(flipped))
		flipped[pos] ^= 1 << uint(rng.Intn(8))
		recs2, trunc2 := DecodeAll(flipped)
		if !trunc2 && len(recs2) == count {
			for i := range recs2 {
				if !bytes.Equal(recs2[i].Key, keys[i]) || !bytes.Equal(recs2[i].Value, vals[i]) {
					return false // undetected corruption
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
