// Package load turns package patterns into parsed, type-checked packages
// for the analyzers, using only the standard library plus the go tool
// itself: `go list -export` supplies compiled export data for every
// dependency (exactly the mechanism `go vet` uses), so no source-importer
// or external loader module is needed and no network is touched.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listed mirrors the `go list -json` fields we consume.
type listed struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

func goList(dir string, args ...string) ([]listed, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listed
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listed
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load type-checks the packages matched by patterns (resolved relative to
// dir; dir == "" means the current directory). Only non-test Go files are
// loaded: the determinism contract governs production code, and tests
// legitimately measure wall time.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}

	// One invocation resolves the target set AND compiles export data for
	// the whole dependency universe (-deps).
	args := append([]string{"-e", "-export", "-deps", "-json=ImportPath,Dir,GoFiles,Export,ImportMap,Error"}, patterns...)
	universe, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exportFor := make(map[string]string, len(universe))
	for _, p := range universe {
		if p.Export != "" {
			exportFor[p.ImportPath] = p.Export
		}
	}

	// A second, cheap invocation distinguishes the targets from their deps.
	targets, err := goList(dir, append([]string{"-e", "-json=ImportPath,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	isTarget := make(map[string]bool, len(targets))
	for _, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s", p.Error.Err)
		}
		isTarget[p.ImportPath] = true
	}

	fset := token.NewFileSet()
	// One shared importer caches each dependency's export data across all
	// target packages.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var out []*Package
	for _, p := range universe {
		if !isTarget[p.ImportPath] || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := typecheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, p listed) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
