// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so the
// repository needs no external module to enforce its determinism contract.
// It deliberately mirrors the upstream API shape (Analyzer, Pass,
// Diagnostic) so the passes under internal/analysis/* read like ordinary
// go/analysis passes and could be ported to the real framework by swapping
// one import.
//
// On top of the upstream shape it adds one repo-specific mechanism:
// `//slimio:allow <pass> <reason>` suppression comments. A diagnostic is
// suppressed when the reported line, or the line immediately above it,
// carries an allow comment naming the reporting pass and a non-empty
// justification. Malformed allow comments (no pass name, unknown pass,
// missing reason) are themselves diagnostics, so suppressions stay
// self-documenting.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in //slimio:allow
	// comments. It must be a valid identifier.
	Name string

	// Doc is a one-paragraph summary: first line is a short description,
	// the rest is the rationale printed by `slimio-vet -explain`.
	Doc string

	// Run applies the pass to one package and reports findings via
	// pass.Report. The result value is unused (kept for upstream API
	// parity).
	Run func(pass *Pass) (any, error)
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a single type-checked package and a
// sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver installs this and applies
	// //slimio:allow filtering.
	Report func(Diagnostic)
}

// Reportf constructs a Diagnostic at pos and delivers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a fully resolved diagnostic: position translated through the
// file set and tagged with the reporting analyzer. It is what drivers print
// or serialize.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Offset   int            `json:"offset"` // byte offset in File: the stable sort key
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// AllowComment is one parsed //slimio:allow directive.
type AllowComment struct {
	Pos    token.Pos
	Line   int    // line the directive is written on
	Pass   string // analyzer name being suppressed ("" when malformed)
	Reason string // justification text ("" when missing)
}

const allowPrefix = "//slimio:allow"

// ParseAllowComments extracts every //slimio:allow directive from a file.
// Directives are recognized only as line comments (upstream directive
// convention: no space after //).
func ParseAllowComments(fset *token.FileSet, file *ast.File) []AllowComment {
	var out []AllowComment
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, allowPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, allowPrefix)
			// Require a word boundary so "//slimio:allowance" is ignored.
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue
			}
			fields := strings.Fields(rest)
			ac := AllowComment{
				Pos:  c.Pos(),
				Line: fset.Position(c.Pos()).Line,
			}
			if len(fields) > 0 {
				ac.Pass = fields[0]
			}
			if len(fields) > 1 {
				ac.Reason = strings.Join(fields[1:], " ")
			}
			out = append(out, ac)
		}
	}
	return out
}

// Suppressions indexes a package's allow comments for diagnostic filtering.
type Suppressions struct {
	// byLine maps file base -> line -> passes allowed on that line.
	byLine map[string]map[int][]string
}

// NewSuppressions builds the index for a package and returns, alongside it,
// diagnostics for malformed directives. known names the valid pass names.
func NewSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) (*Suppressions, []Diagnostic) {
	s := &Suppressions{byLine: make(map[string]map[int][]string)}
	var bad []Diagnostic
	for _, f := range files {
		for _, ac := range ParseAllowComments(fset, f) {
			switch {
			case ac.Pass == "":
				bad = append(bad, Diagnostic{Pos: ac.Pos,
					Message: "malformed //slimio:allow: want \"//slimio:allow <pass> <reason>\""})
				continue
			case known != nil && !known[ac.Pass]:
				bad = append(bad, Diagnostic{Pos: ac.Pos,
					Message: fmt.Sprintf("//slimio:allow names unknown pass %q (known: %s)", ac.Pass, knownList(known))})
				continue
			case ac.Reason == "":
				bad = append(bad, Diagnostic{Pos: ac.Pos,
					Message: fmt.Sprintf("//slimio:allow %s needs a reason: suppressions must be self-documenting", ac.Pass)})
				continue
			}
			file := fset.Position(ac.Pos).Filename
			if s.byLine[file] == nil {
				s.byLine[file] = make(map[int][]string)
			}
			s.byLine[file][ac.Line] = append(s.byLine[file][ac.Line], ac.Pass)
		}
	}
	return s, bad
}

// Allowed reports whether a diagnostic from pass at pos is suppressed: an
// allow directive for that pass sits on the same line or the line above.
func (s *Suppressions) Allowed(fset *token.FileSet, pass string, pos token.Pos) bool {
	p := fset.Position(pos)
	lines := s.byLine[p.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		for _, name := range lines[l] {
			if name == pass {
				return true
			}
		}
	}
	return false
}

func knownList(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// Inspect walks every file in the pass in source order, calling fn for each
// node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
