// Package dataflow is a generic intraprocedural forward-dataflow solver
// over the CFGs of package cfg: a classic worklist algorithm parameterized
// by a join-semilattice (Bottom/Join/Equal) and a per-block transfer
// function.
//
// The solver is deterministic by construction: blocks are visited in
// reverse postorder, the worklist is drained in that fixed order, and joins
// fold predecessor facts in edge order — so two runs over the same graph
// with a pure transfer function produce identical results, which is what
// lets the ownership passes participate in slimio-vet's byte-for-byte
// output determinism bar.
//
// Bottom means "unreachable / no information". The solver never calls the
// transfer function on a bottom input: unreachable blocks keep bottom on
// both sides, so a reporting pass replaying block facts naturally skips
// dead code.
package dataflow

import (
	"github.com/slimio/slimio/internal/analysis/cfg"
)

// Lattice describes the fact domain of an analysis. Implementations must be
// pure: Join must not mutate its arguments.
type Lattice[F any] interface {
	// Bottom is the identity of Join ("unreachable").
	Bottom() F
	// Join combines facts flowing in from two predecessors.
	Join(a, b F) F
	// Equal reports whether two facts carry the same information; the
	// solver iterates until every block's input fact stops changing.
	Equal(a, b F) bool
}

// Result holds the fixpoint: the fact at block entry and exit, indexed by
// cfg Block.Index.
type Result[F any] struct {
	In, Out []F
}

// maxPasses bounds worklist iterations per block: any sane lattice for a
// function-sized graph converges in a handful of sweeps, so hitting the
// bound means a Join that does not converge (a pass bug worth a loud stop).
const maxPasses = 1 << 14

// Forward solves a forward dataflow problem on g. entry is the fact at the
// function's entry block; transfer applies one block's nodes to an incoming
// fact and must be pure (it runs an unspecified number of times).
func Forward[F any](g *cfg.Graph, lat Lattice[F], entry F, transfer func(b *cfg.Block, in F) F) *Result[F] {
	n := len(g.Blocks)
	res := &Result[F]{In: make([]F, n), Out: make([]F, n)}
	for i := 0; i < n; i++ {
		res.In[i] = lat.Bottom()
		res.Out[i] = lat.Bottom()
	}

	order := postorder(g)
	// Reverse postorder: forward analyses converge fastest visiting
	// predecessors before successors.
	rpo := make([]*cfg.Block, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}

	onList := make([]bool, n)
	for _, b := range rpo {
		onList[b.Index] = true
	}
	steps := 0
	for {
		var cur *cfg.Block
		for _, b := range rpo { // first pending block in RPO: deterministic
			if onList[b.Index] {
				cur = b
				break
			}
		}
		if cur == nil {
			return res
		}
		onList[cur.Index] = false
		if steps++; steps > maxPasses*n {
			panic("dataflow: fixpoint iteration did not converge (non-monotone Join?)")
		}

		in := lat.Bottom()
		if cur == g.Entry {
			in = entry
		}
		for _, p := range cur.Preds {
			in = lat.Join(in, res.Out[p.Index])
		}
		out := res.Out[cur.Index]
		if lat.Equal(in, lat.Bottom()) && cur != g.Entry {
			// Unreachable: keep bottom, never run the transfer.
			res.In[cur.Index] = in
			continue
		}
		res.In[cur.Index] = in
		newOut := transfer(cur, in)
		if lat.Equal(out, newOut) {
			continue
		}
		res.Out[cur.Index] = newOut
		for _, s := range cur.Succs {
			onList[s.Index] = true
		}
	}
}

// postorder returns the blocks reachable from Entry in DFS postorder,
// following successor edges in order (deterministic).
func postorder(g *cfg.Graph) []*cfg.Block {
	seen := make([]bool, len(g.Blocks))
	var order []*cfg.Block
	var visit func(b *cfg.Block)
	visit = func(b *cfg.Block) {
		seen[b.Index] = true
		for _, s := range b.Succs {
			if !seen[s.Index] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	visit(g.Entry)
	// Unreachable blocks (dead code after return/goto) still get a slot at
	// the end so Result indexing stays total; they keep bottom facts.
	for _, b := range g.Blocks {
		if !seen[b.Index] {
			order = append([]*cfg.Block{b}, order...)
		}
	}
	return order
}
