package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"github.com/slimio/slimio/internal/analysis/cfg"
)

// setLattice is the powerset lattice over identifier names: join = union.
type setLattice struct{}

func (setLattice) Bottom() map[string]bool { return nil }

func (setLattice) Join(a, b map[string]bool) map[string]bool {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (setLattice) Equal(a, b map[string]bool) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// assigned is a may-be-assigned analysis: the fact is the set of variable
// names assigned on some path reaching a point.
func assigned(b *cfg.Block, in map[string]bool) map[string]bool {
	out := in
	cloned := false
	for _, n := range b.Nodes {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			continue
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if !cloned {
				m := make(map[string]bool, len(out)+1)
				for k := range out {
					m[k] = true
				}
				out, cloned = m, true
			}
			out[id.Name] = true
		}
	}
	if out == nil {
		out = map[string]bool{} // reachable but empty
	}
	return out
}

func solve(t *testing.T, src string) (*cfg.Graph, *Result[map[string]bool]) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package t\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	g := cfg.New(fn.Body)
	return g, Forward[map[string]bool](g, setLattice{}, map[string]bool{}, assigned)
}

func names(m map[string]bool) string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

// TestBranchJoin: a variable assigned on only one branch is still in the
// may-set after the join; one assigned on neither stays out.
func TestBranchJoin(t *testing.T) {
	g, res := solve(t, `
func f(c bool) {
	a := 1
	if c {
		b := 2
		_ = b
	}
	a = 3
}`)
	got := names(res.In[g.Exit.Index])
	if got != "a,b" {
		t.Errorf("exit fact = %q, want \"a,b\"", got)
	}
}

// TestLoopFixpoint: an assignment inside a loop body must flow around the
// back edge into the loop head's input fact.
func TestLoopFixpoint(t *testing.T) {
	g, res := solve(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		x := i
		_ = x
	}
}`)
	var head *cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	got := names(res.In[head.Index])
	if got != "i,x" {
		t.Errorf("loop head fact = %q, want \"i,x\" (back edge not applied)", got)
	}
}

// TestUnreachableStaysBottom: code after a return keeps a bottom (nil)
// fact — the transfer function must never have run on it.
func TestUnreachableStaysBottom(t *testing.T) {
	g, res := solve(t, `
func f() {
	return
	x := 1
	_ = x
}`)
	for _, b := range g.Blocks {
		if b.Kind == "unreachable" && len(b.Preds) == 0 {
			if res.In[b.Index] != nil || res.Out[b.Index] != nil {
				t.Errorf("unreachable b%d has non-bottom facts", b.Index)
			}
		}
	}
	if res.In[g.Exit.Index] == nil {
		t.Error("exit unexpectedly bottom")
	}
}

// TestDeterministic: two solves of the same function yield identical facts
// block by block.
func TestDeterministic(t *testing.T) {
	src := `
func f(xs []int) int {
	total := 0
	for _, v := range xs {
		if v > 0 {
			total += v
		} else {
			total -= v
		}
	}
	return total
}`
	g1, r1 := solve(t, src)
	_, r2 := solve(t, src)
	for i := range g1.Blocks {
		if names(r1.In[i]) != names(r2.In[i]) || names(r1.Out[i]) != names(r2.Out[i]) {
			t.Errorf("block %d facts differ between runs", i)
		}
	}
}
