// Fixture for the suite driver: exercises the full RunPackage flow —
// scoped analyzers, malformed //slimio:allow reporting, and suppression.
package probe

import "fmt"

//slimio:allow maporder
func Dump(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

func Allowed(m map[string]int) {
	//slimio:allow maporder fixture: caller sorts the output downstream
	for k := range m {
		fmt.Println(k)
	}
}
