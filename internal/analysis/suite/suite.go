// Package suite assembles the slimio-vet analyzers and decides which pass
// applies to which package. The scoping is the determinism contract's
// blast radius (documented in DESIGN.md "Determinism contract"):
//
//   - wallclock, globalrand, rawgoroutine guard the deterministic
//     simulation packages (internal/..., minus the analysis tooling
//     itself) — this automatically covers new simulation packages such as
//     the crash-consistency model checker (internal/crashmc), whose
//     replay-bit-identically contract depends on exactly these passes: the
//     experiment harness binaries under cmd/ legitimately measure wall
//     time and never run inside the simulation. cmd/slimio-top is the one
//     exception: its table mode renders CI-diffed deterministic output
//     from telemetry dumps, so it opts in (internal/telemetry itself is
//     covered as an internal/ package — its sampling tick rides the
//     virtual clock).
//   - retainbuf shares that scope (internal/bufpool included): every layer
//     of the zero-copy write path handles pooled segments, and a backing
//     slice retained past its Release is silent cross-request corruption.
//   - refflow proves the bufpool ownership contract flow-sensitively on
//     the packages that hold or hand off pooled references (wal, uring,
//     kernelio, ssd, fdp, ftl, nand, snapshot, core, crashmc, exp): a ref
//     that can leak at function exit, a double Release, or a use after
//     Release is a finding, with //slimio:owns and //slimio:borrows
//     declaring transfers across function boundaries (see DESIGN.md
//     "Statically enforced ownership"). The telemetry plane (whose probes
//     read gauges off that same write path) and the slimio-top renderer
//     share the scope.
//   - maporder applies module-wide (tooling included): ordered output must
//     be a contract everywhere, harness and linter alike.
//   - floatfold applies where float folds feed published numbers:
//     internal/metrics and internal/exp.
//
// Test files are never analyzed: tests may time themselves, fan out, and
// iterate maps freely — the contract governs what produces results, not
// what checks them.
package suite

import (
	"sort"
	"strings"

	"github.com/slimio/slimio/internal/analysis"
	"github.com/slimio/slimio/internal/analysis/floatfold"
	"github.com/slimio/slimio/internal/analysis/globalrand"
	"github.com/slimio/slimio/internal/analysis/load"
	"github.com/slimio/slimio/internal/analysis/maporder"
	"github.com/slimio/slimio/internal/analysis/rawgoroutine"
	"github.com/slimio/slimio/internal/analysis/refflow"
	"github.com/slimio/slimio/internal/analysis/retainbuf"
	"github.com/slimio/slimio/internal/analysis/wallclock"
)

// Module is the module path the scoping rules are anchored to.
const Module = "github.com/slimio/slimio"

// A ScopedAnalyzer pairs a pass with the import paths it governs.
type ScopedAnalyzer struct {
	*analysis.Analyzer
	// Applies reports whether the pass runs on the package.
	Applies func(importPath string) bool
}

func deterministic(path string) bool {
	// slimio-top is the one binary under cmd/ inside the contract: its
	// table mode is CI-diffed deterministic output, so it obeys the same
	// clock/randomness/ordering rules as the simulation packages (live
	// mode's wall-clock pacing carries an explicit //slimio:allow).
	if path == Module+"/cmd/slimio-top" {
		return true
	}
	if !strings.HasPrefix(path, Module+"/internal/") {
		return false
	}
	// The static-analysis tooling is not simulation code.
	return !strings.HasPrefix(path, Module+"/internal/analysis")
}

func inModule(path string) bool {
	return path == Module || strings.HasPrefix(path, Module+"/")
}

func floatScoped(path string) bool {
	return strings.HasPrefix(path, Module+"/internal/metrics") ||
		strings.HasPrefix(path, Module+"/internal/exp")
}

// refflowDirs are the packages that hold or hand off pooled references:
// the whole zero-copy write path plus the harnesses that drive it. The
// analysis tooling itself and the leaf packages that never see a bufpool
// ref stay out of scope.
var refflowDirs = []string{
	"wal", "uring", "kernelio", "ssd", "fdp", "ftl", "nand",
	"snapshot", "core", "crashmc", "exp", "telemetry",
}

func refflowScoped(path string) bool {
	// The dashboard renders data the probes pulled off the write path; it
	// must never be the place a pooled ref quietly escapes to.
	if path == Module+"/cmd/slimio-top" {
		return true
	}
	for _, d := range refflowDirs {
		prefix := Module + "/internal/" + d
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

// All is the slimio-vet suite in reporting order.
var All = []ScopedAnalyzer{
	{wallclock.Analyzer, deterministic},
	{globalrand.Analyzer, deterministic},
	{rawgoroutine.Analyzer, deterministic},
	{retainbuf.Analyzer, deterministic},
	{refflow.Analyzer, refflowScoped},
	{maporder.Analyzer, inModule},
	{floatfold.Analyzer, floatScoped},
}

// Names returns every pass name (sorted), plus the pseudo-pass "allow"
// used for malformed suppression directives.
func Names() []string {
	names := make([]string, 0, len(All))
	for _, sa := range All {
		names = append(names, sa.Name)
	}
	sort.Strings(names)
	return names
}

// Known returns the valid //slimio:allow pass-name set.
func Known() map[string]bool {
	known := make(map[string]bool, len(All))
	for _, sa := range All {
		known[sa.Name] = true
	}
	return known
}

// Lookup finds a pass by name (nil when absent).
func Lookup(name string) *analysis.Analyzer {
	for _, sa := range All {
		if sa.Name == name {
			return sa.Analyzer
		}
	}
	return nil
}

// Applicable returns the analyzers that govern importPath.
func Applicable(importPath string) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, sa := range All {
		if sa.Applies(importPath) {
			out = append(out, sa.Analyzer)
		}
	}
	return out
}

// RunPackage applies every applicable pass to one loaded package and
// returns the surviving (non-suppressed) findings plus malformed-allow
// findings, in source order.
func RunPackage(pkg *load.Package) ([]analysis.Finding, error) {
	analyzers := Applicable(pkg.ImportPath)
	supp, malformed := analysis.NewSuppressions(pkg.Fset, pkg.Files, Known())

	var findings []analysis.Finding
	record := func(name string, d analysis.Diagnostic) {
		p := pkg.Fset.Position(d.Pos)
		findings = append(findings, analysis.Finding{
			Analyzer: name, Pos: p, File: p.Filename, Line: p.Line, Col: p.Column,
			Offset: p.Offset, Message: d.Message,
		})
	}
	for _, d := range malformed {
		record("allow", d)
	}
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				if supp.Allowed(pkg.Fset, a.Name, d.Pos) {
					return
				}
				record(a.Name, d)
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings deterministically: by file, then byte
// offset, then reporting pass, then message. Drivers apply the same order
// to cross-package aggregates so two identical runs emit byte-identical
// output.
func SortFindings(findings []analysis.Finding) {
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
