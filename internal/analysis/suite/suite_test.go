package suite

import (
	"strings"
	"testing"

	"github.com/slimio/slimio/internal/analysis/load"
)

// names extracts the analyzer names applicable to an import path.
func names(importPath string) []string {
	var out []string
	for _, a := range Applicable(importPath) {
		out = append(out, a.Name)
	}
	return out
}

func TestScoping(t *testing.T) {
	cases := []struct {
		path string
		want []string
	}{
		// Simulation packages get the full determinism contract; the
		// zero-copy write path additionally gets refflow.
		{Module + "/internal/sim", []string{"wallclock", "globalrand", "rawgoroutine", "retainbuf", "maporder"}},
		{Module + "/internal/kernelio", []string{"wallclock", "globalrand", "rawgoroutine", "retainbuf", "refflow", "maporder"}},
		{Module + "/internal/wal", []string{"wallclock", "globalrand", "rawgoroutine", "retainbuf", "refflow", "maporder"}},
		{Module + "/internal/nand", []string{"wallclock", "globalrand", "rawgoroutine", "retainbuf", "refflow", "maporder"}},
		// bufpool implements the contract refflow enforces on its clients;
		// it keeps the alias pass but not the ownership pass.
		{Module + "/internal/bufpool", []string{"wallclock", "globalrand", "rawgoroutine", "retainbuf", "maporder"}},
		// The crash-consistency model checker replays schedules
		// bit-identically, so it must sit under the full determinism
		// contract like any other simulation package — and it drives the
		// data plane, so refflow applies too.
		{Module + "/internal/crashmc", []string{"wallclock", "globalrand", "rawgoroutine", "retainbuf", "refflow", "maporder"}},
		// Metrics and the experiment harness additionally get floatfold.
		{Module + "/internal/metrics", []string{"wallclock", "globalrand", "rawgoroutine", "retainbuf", "maporder", "floatfold"}},
		{Module + "/internal/exp", []string{"wallclock", "globalrand", "rawgoroutine", "retainbuf", "refflow", "maporder", "floatfold"}},
		// The telemetry plane samples on the virtual clock inside cell
		// engines: full determinism contract, plus refflow because its
		// probes read gauges off the zero-copy write path.
		{Module + "/internal/telemetry", []string{"wallclock", "globalrand", "rawgoroutine", "retainbuf", "refflow", "maporder"}},
		// slimio-top's table mode is CI-diffed deterministic output: the
		// one cmd/ binary inside the contract (live mode carries an
		// explicit wallclock allow).
		{Module + "/cmd/slimio-top", []string{"wallclock", "globalrand", "rawgoroutine", "retainbuf", "refflow", "maporder"}},
		// Harness binaries legitimately measure wall time; only ordered
		// output is policed there.
		{Module + "/cmd/slimio-bench", []string{"maporder"}},
		{Module, []string{"maporder"}},
		// The linter does not lint itself for simulation purity, but its
		// own output ordering is still a contract.
		{Module + "/internal/analysis/wallclock", []string{"maporder"}},
		// Other modules are out of scope entirely.
		{"example.com/other", nil},
	}
	for _, c := range cases {
		got := names(c.path)
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("Applicable(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestSuiteRegistry(t *testing.T) {
	if len(All) != 7 {
		t.Fatalf("suite has %d passes, want 7", len(All))
	}
	known := Known()
	for _, sa := range All {
		if !known[sa.Name] {
			t.Errorf("Known() missing %s", sa.Name)
		}
		if Lookup(sa.Name) != sa.Analyzer {
			t.Errorf("Lookup(%q) did not return the registered analyzer", sa.Name)
		}
		if !strings.Contains(sa.Doc, "\n") {
			t.Errorf("%s: Doc has no rationale beyond the summary line", sa.Name)
		}
		if strings.TrimSpace(sa.Doc) == "" {
			t.Errorf("%s: empty Doc", sa.Name)
		}
	}
	if Lookup("nosuchpass") != nil {
		t.Error("Lookup of unknown pass returned non-nil")
	}
}

// TestRunPackage drives the whole driver path over a fixture: a malformed
// allow directive (missing reason) surfaces as an "allow" finding, the real
// violation it fails to cover surfaces as a maporder finding, a well-formed
// directive suppresses, and findings come out in position order.
func TestRunPackage(t *testing.T) {
	pkgs, err := load.Load("", "./testdata/src/probe")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	findings, err := RunPackage(pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%v", len(findings), findings)
	}
	if findings[0].Analyzer != "allow" || !strings.Contains(findings[0].Message, "needs a reason") {
		t.Errorf("finding 0 = %v, want malformed-allow diagnostic", findings[0])
	}
	if findings[1].Analyzer != "maporder" || findings[1].Line <= findings[0].Line {
		t.Errorf("finding 1 = %v, want later-positioned maporder diagnostic", findings[1])
	}
}
