package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseAllowComments(t *testing.T) {
	fset, f := parse(t, `package p

func a() {
	//slimio:allow wallclock progress banner only
	_ = 1
	_ = 2 //slimio:allow maporder trailing form
	//slimio:allowance not a directive
	//slimio:allow
	//slimio:allow floatfold
}
`)
	acs := ParseAllowComments(fset, f)
	if len(acs) != 4 {
		t.Fatalf("got %d directives, want 4: %+v", len(acs), acs)
	}
	if acs[0].Pass != "wallclock" || acs[0].Reason != "progress banner only" {
		t.Errorf("directive 0 = %+v", acs[0])
	}
	if acs[1].Pass != "maporder" || acs[1].Reason != "trailing form" || acs[1].Line != 6 {
		t.Errorf("directive 1 = %+v", acs[1])
	}
	if acs[2].Pass != "" { // bare //slimio:allow
		t.Errorf("directive 2 = %+v", acs[2])
	}
	if acs[3].Pass != "floatfold" || acs[3].Reason != "" {
		t.Errorf("directive 3 = %+v", acs[3])
	}
}

func TestNewSuppressionsMalformed(t *testing.T) {
	fset, f := parse(t, `package p

func a() {
	//slimio:allow
	//slimio:allow nosuchpass because reasons
	//slimio:allow wallclock
	//slimio:allow wallclock a fine reason
	_ = 1
}
`)
	known := map[string]bool{"wallclock": true, "maporder": true}
	supp, bad := NewSuppressions(fset, []*ast.File{f}, known)
	if len(bad) != 3 {
		t.Fatalf("got %d malformed diagnostics, want 3: %+v", len(bad), bad)
	}
	for i, wantSub := range []string{"malformed", "unknown pass", "needs a reason"} {
		if !strings.Contains(bad[i].Message, wantSub) {
			t.Errorf("malformed[%d] = %q, want substring %q", i, bad[i].Message, wantSub)
		}
	}
	// The valid directive on line 7 suppresses wallclock on lines 7 and 8
	// (same line or the line below it), and nothing else.
	linePos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	if !supp.Allowed(fset, "wallclock", linePos(7)) {
		t.Error("same-line suppression did not apply")
	}
	if !supp.Allowed(fset, "wallclock", linePos(8)) {
		t.Error("line-above suppression did not apply")
	}
	if supp.Allowed(fset, "maporder", linePos(8)) {
		t.Error("suppression leaked to a different pass")
	}
	if supp.Allowed(fset, "wallclock", linePos(9)) {
		t.Error("suppression leaked two lines down")
	}
}
