// Package maporder flags map iteration that feeds order-sensitive sinks.
package maporder

import (
	"go/ast"
	"strings"

	"github.com/slimio/slimio/internal/analysis"
)

// Doc's first line is the summary; the rest is the -explain rationale.
const Doc = `flag range-over-map whose body feeds ordered output or schedules events

Go randomizes map iteration order on purpose. A loop over a map that appends
to a slice, writes to a stream (fmt.Fprintf, Write, Encode), sends on a
channel, or schedules simulation events therefore produces a different
ordering every run — exactly the nondeterminism the bit-identical-output
contract forbids, and the kind that one determinism test on one workload
will not catch. The fix is to make ordering a contract: collect the keys,
sort them, and iterate the sorted slice. A body consisting solely of
"keys = append(keys, k)" (collecting loop variables for a later sort) is
recognized as that idiom and not flagged. Copying into another map or
deleting entries is order-insensitive and also fine.
Suppress an intentional exception with //slimio:allow maporder <reason>.`

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  Doc,
	Run:  run,
}

var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": false, // Sprint* build values, not emit them; leave to the sink that prints them
}

var streamMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !analysis.IsMapType(pass.TypesInfo, rng.X) {
			return true
		}
		if isKeyCollection(rng) {
			return true
		}
		if sink := findSink(pass, rng); sink != "" {
			pass.Reportf(rng.Pos(),
				"map iteration order is random but the loop body %s; sort the keys first and range over the sorted slice", sink)
		}
		return true
	})
	return nil, nil
}

// isKeyCollection recognizes the collect-then-sort idiom: the whole loop
// body is a single `s = append(s, k)` (or `append(s, k, v)`) whose appended
// arguments are exactly the loop variables.
func isKeyCollection(rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	loopVars := map[string]bool{}
	for _, v := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := v.(*ast.Ident); ok {
			loopVars[id.Name] = true
		}
	}
	if len(call.Args) < 2 {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || !loopVars[id.Name] {
			return false
		}
	}
	return true
}

// findSink scans the loop body for the first order-sensitive side effect and
// describes it ("" when the body is order-insensitive).
func findSink(pass *analysis.Pass, rng *ast.RangeStmt) string {
	var sink string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "sends on a channel"
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok {
					if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" {
						sink = "appends to a slice"
					}
				}
			}
		case *ast.CallExpr:
			if pkg, name := analysis.PkgFuncRef(pass.TypesInfo, n.Fun); pkg == "fmt" && fmtPrinters[name] {
				sink = "writes formatted output (fmt." + name + ")"
				return false
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				switch {
				case streamMethods[name]:
					sink = "writes to a stream (." + name + ")"
				case strings.HasPrefix(name, "Spawn") || strings.HasPrefix(name, "Schedule"):
					sink = "schedules simulation work (." + name + ")"
				}
			}
		}
		return sink == ""
	})
	return sink
}
