// Fixture for the maporder pass: map iteration feeding ordered sinks
// fires; the collect-then-sort idiom, map copies, and deletes do not; and
// //slimio:allow suppresses.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k, v := range m { // want `appends to a slice`
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

func badStream(m map[string]int, w *strings.Builder) {
	for k := range m { // want `writes to a stream`
		w.WriteString(k)
	}
}

func badPrint(m map[string]int) {
	for k := range m { // want `writes formatted output`
		fmt.Println(k)
	}
}

type scheduler struct{}

func (scheduler) Schedule(name string)    {}
func (scheduler) SpawnDaemon(name string) {}

func badSchedule(m map[string]int, s scheduler) {
	for k := range m { // want `schedules simulation work`
		s.Schedule(k)
	}
	for k := range m { // want `schedules simulation work`
		s.SpawnDaemon(k)
	}
}

func badSend(m map[string]int, ch chan string) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

func goodCollectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m { // the sanctioned idiom: sole statement collects the loop var
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return out
}

func goodCopyAndDelete(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // map-to-map copy is order-insensitive
		out[k] = v
	}
	for k, v := range m { // deletes and arithmetic are order-insensitive
		if v == 0 {
			delete(out, k)
		}
	}
	return out
}

func goodIntSum(m map[string]int) int {
	var total int
	for _, v := range m { // integer accumulation is exact in any order
		total += v
	}
	return total
}

func allowed(m map[string]int) []string {
	var out []string
	//slimio:allow maporder fixture: proves the suppression path works
	for k := range m {
		out = append(out, k+"!")
	}
	return out
}
