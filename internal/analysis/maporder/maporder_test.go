package maporder_test

import (
	"testing"

	"github.com/slimio/slimio/internal/analysis/analysistest"
	"github.com/slimio/slimio/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "./testdata/src/a", maporder.Analyzer)
}
