// Fixture for the rawgoroutine pass: go statements and the forbidden
// concurrency/timer types fire, sim-style cooperative code does not, and
// //slimio:allow suppresses.
package a

import (
	"sync"
	"time"
)

type poller struct {
	tick *time.Ticker // want `time.Ticker`
	wake *time.Timer  // want `time.Timer`
}

func bad() {
	var wg sync.WaitGroup // want `sync.WaitGroup`
	go func() {}()        // want `raw go statement`
	wg.Wait()
}

func badParam(wg *sync.WaitGroup) { // want `sync.WaitGroup`
	wg.Done()
}

func good() {
	// Mutexes guard shared counters without ordering events; they stay legal.
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

func allowed() {
	//slimio:allow rawgoroutine fixture: proves the suppression path works
	go func() {}()
}
