// Package rawgoroutine forbids raw concurrency primitives in deterministic
// packages.
package rawgoroutine

import (
	"go/ast"

	"github.com/slimio/slimio/internal/analysis"
)

// Doc's first line is the summary; the rest is the -explain rationale.
const Doc = `forbid raw goroutines, sync.WaitGroup, and time.Ticker in deterministic packages

The simulator is cooperative: exactly one simulation process runs at a time,
resumed by the engine's baton, which is what makes event order — and
therefore every result byte — reproducible. A raw go statement inside
simulation code introduces host-scheduler interleaving the engine cannot
order; sync.WaitGroup and time.Ticker are the companion primitives of that
style. All simulated concurrency must go through internal/sim
(Engine.Spawn, SpawnDaemon, resources, signals). The two sanctioned
exceptions carry //slimio:allow comments: the engine itself implements
processes as baton-passing goroutines, and the experiment scheduler's
worker pool (internal/exp/parallel.go) runs whole isolated cells in
parallel. Suppress further exceptions with //slimio:allow rawgoroutine
<reason>.`

// Analyzer is the rawgoroutine pass.
var Analyzer = &analysis.Analyzer{
	Name: "rawgoroutine",
	Doc:  Doc,
	Run:  run,
}

// forbiddenTypes maps package path -> type name -> short reason.
var forbiddenTypes = map[string]map[string]string{
	"sync": {"WaitGroup": "host-scheduler synchronization"},
	"time": {"Ticker": "wall-clock periodic events", "Timer": "wall-clock delayed events"},
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"raw go statement in a deterministic package; spawn simulation processes through internal/sim (Engine.Spawn)")
		case *ast.SelectorExpr:
			// Flag mentions of the forbidden types themselves (var decls,
			// struct fields, parameters), not arbitrary expressions of the
			// type, so each declaration is reported once.
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || !tv.IsType() {
				return true
			}
			pkg, name := analysis.NamedTypePath(tv.Type)
			if reason, ok := forbiddenTypes[pkg][name]; ok {
				pass.Reportf(n.Pos(),
					"%s.%s (%s) in a deterministic package; use internal/sim primitives", pkg, name, reason)
			}
		}
		return true
	})
	return nil, nil
}
