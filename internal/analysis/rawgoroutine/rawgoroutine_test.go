package rawgoroutine_test

import (
	"testing"

	"github.com/slimio/slimio/internal/analysis/analysistest"
	"github.com/slimio/slimio/internal/analysis/rawgoroutine"
)

func TestRawgoroutine(t *testing.T) {
	analysistest.Run(t, "./testdata/src/a", rawgoroutine.Analyzer)
}
