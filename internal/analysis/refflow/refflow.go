// Package refflow is the flow-sensitive buffer-lifecycle pass: it tracks
// the ownership state of bufpool references (segments, refs, wal chains)
// per variable through each function's control-flow graph and reports
// references that may leak, double-release, or be used after release.
package refflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/slimio/slimio/internal/analysis"
	"github.com/slimio/slimio/internal/analysis/cfg"
	"github.com/slimio/slimio/internal/analysis/dataflow"
)

// Doc's first line is the summary; the rest is the -explain rationale.
const Doc = `verify bufpool reference lifecycles flow-sensitively (leak, double release, use after release)

The zero-copy data plane threads refcounted bufpool segments from the WAL
encoder through the rings down to the NAND array; the runtime enforces the
ownership contract only when a test happens to drive a path (refcount panics,
end-of-cell quiescence). This pass proves the discipline statically, per
function, on the control-flow graph: a variable bound to a pooled reference
(pool.Get, an //slimio:owns-annotated source, an owning parameter) is tracked
through branches, loops and defers as live / released / moved, and the pass
reports
  - a reference that may reach function exit still live (leaked),
  - a Release on a path where the reference was already released or its
    ownership already transferred,
  - any use of a reference after a Release on some path reaching it.

Ownership crossing a function boundary is declared with annotations in the
callee's doc comment:

	//slimio:owns <name>...     the function consumes the named refs (or, for
	                            "return", hands an owned ref to its caller)
	//slimio:borrows <name>...  the function only reads the named refs and
	                            must not release them

Annotations are resolved for same-package callees; a call into another
package (or any un-annotated call, store into a structure, closure capture,
or variable aliasing) conservatively ends tracking for the escaping
reference — the pass trades cross-function precision for zero false
positives. Suppress an intentional exception with
//slimio:allow refflow <reason>.`

// Analyzer is the refflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "refflow",
	Doc:  Doc,
	Run:  run,
}

// Paths of the packages whose types carry pooled references.
const (
	bufpoolPath = "github.com/slimio/slimio/internal/bufpool"
	walPath     = "github.com/slimio/slimio/internal/wal"
)

// trackedType reports whether t is (a pointer to) one of the ref-carrying
// types whose lifecycle the pass verifies.
func trackedType(t types.Type) bool {
	if t == nil {
		return false
	}
	pkg, name := analysis.NamedTypePath(t)
	switch {
	case pkg == bufpoolPath && (name == "Segment" || name == "Ref"):
		return true
	case pkg == walPath && name == "Chain":
		return true
	}
	return false
}

// st is a bitmask of the conditions a tracked reference may be in at a
// program point (the dataflow join is set union, so several bits at once
// mean "on some path").
type st uint8

const (
	stLive     st = 1 << iota // holds a reference it must eventually release
	stReleased                // the reference was dropped
	stMoved                   // ownership was transferred (owns-call, return)
	stDeferred                // a deferred Release will run at exit
	stEscaped                 // untrackable (stored, aliased, unknown call)
	stBorrowed                // annotated borrow: usable, must not release
)

// fact maps each tracked local to its possible states; nil is bottom
// (unreachable).
type fact map[types.Object]st

type lattice struct{}

func (lattice) Bottom() fact { return nil }

func (lattice) Join(a, b fact) fact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(fact, len(a)+len(b))
	for o, s := range a {
		out[o] = s
	}
	for o, s := range b {
		out[o] |= s
	}
	return out
}

func (lattice) Equal(a, b fact) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for o, s := range a {
		if b[o] != s {
			return false
		}
	}
	return true
}

// annot is one function's parsed ownership annotations.
type annot struct {
	owns    map[string]bool
	borrows map[string]bool
}

func (a *annot) ownsName(name string) bool    { return a != nil && a.owns[name] }
func (a *annot) borrowsName(name string) bool { return a != nil && a.borrows[name] }

func run(pass *analysis.Pass) (any, error) {
	annots := collectAnnotations(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			analyzeFunc(pass, annots, fn.Type, fn.Recv, fn.Body, annots[funcObj(pass, fn)])
			// Function literals are analyzed as their own units (the
			// enclosing analysis treats them as escapes).
			for _, lit := range collectFuncLits(fn.Body) {
				analyzeFunc(pass, annots, lit.Type, nil, lit.Body, nil)
			}
		}
	}
	return nil, nil
}

func funcObj(pass *analysis.Pass, fn *ast.FuncDecl) *types.Func {
	obj, _ := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	return obj
}

// collectFuncLits returns every function literal under body, outermost
// first, in source order.
func collectFuncLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// collectAnnotations parses //slimio:owns and //slimio:borrows directives
// from every function's doc comment in the package, validating the named
// parameters, and indexes them by the function's type object so call sites
// resolve through go/types.
func collectAnnotations(pass *analysis.Pass) map[*types.Func]*annot {
	out := make(map[*types.Func]*annot)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			a := parseAnnot(pass, fn)
			if a == nil {
				continue
			}
			if obj := funcObj(pass, fn); obj != nil {
				out[obj] = a
			}
		}
	}
	return out
}

const (
	ownsPrefix    = "//slimio:owns"
	borrowsPrefix = "//slimio:borrows"
)

func parseAnnot(pass *analysis.Pass, fn *ast.FuncDecl) *annot {
	valid := map[string]bool{"return": true}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				valid[name.Name] = true
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)

	var a *annot
	for _, c := range fn.Doc.List {
		var prefix string
		var set *map[string]bool
		switch {
		case strings.HasPrefix(c.Text, ownsPrefix) && directiveBoundary(c.Text, ownsPrefix):
			prefix = ownsPrefix
		case strings.HasPrefix(c.Text, borrowsPrefix) && directiveBoundary(c.Text, borrowsPrefix):
			prefix = borrowsPrefix
		default:
			continue
		}
		if a == nil {
			a = &annot{owns: map[string]bool{}, borrows: map[string]bool{}}
		}
		if prefix == ownsPrefix {
			set = &a.owns
		} else {
			set = &a.borrows
		}
		// Validation diagnostics anchor at the declaration, not the directive
		// comment, so fixture `// want` expectations can sit beside them.
		names := strings.Fields(strings.TrimPrefix(c.Text, prefix))
		if len(names) == 0 {
			pass.Reportf(fn.Pos(), "%s needs at least one receiver/parameter name (or \"return\")", prefix)
			continue
		}
		for _, name := range names {
			if !valid[name] {
				pass.Reportf(fn.Pos(), "%s names %q, which is not a receiver or parameter of %s (or \"return\")",
					prefix, name, fn.Name.Name)
				continue
			}
			if prefix == ownsPrefix && a.borrows[name] || prefix == borrowsPrefix && a.owns[name] {
				pass.Reportf(fn.Pos(), "%q is named by both //slimio:owns and //slimio:borrows on %s", name, fn.Name.Name)
				continue
			}
			(*set)[name] = true
		}
	}
	return a
}

// directiveBoundary requires a word boundary after the directive prefix so
// "//slimio:ownership" is not parsed as //slimio:owns.
func directiveBoundary(text, prefix string) bool {
	rest := strings.TrimPrefix(text, prefix)
	return rest == "" || rest[0] == ' ' || rest[0] == '\t'
}

// report is one deduplicated diagnostic (the transfer function replays
// during reporting, so the same program point can be visited repeatedly).
type report struct {
	pos token.Pos
	msg string
}

// funcAnalysis carries one function's analysis state.
type funcAnalysis struct {
	pass      *analysis.Pass
	info      *types.Info
	annots    map[*types.Func]*annot
	obligated map[types.Object]token.Pos // ref origin: must be dead at exit
	reports   map[report]bool
}

// analyzeFunc verifies one function (or function literal) body. fnAnnot is
// the function's own annotation set (nil for literals / unannotated funcs).
func analyzeFunc(pass *analysis.Pass, annots map[*types.Func]*annot, ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt, fnAnnot *annot) {
	fa := &funcAnalysis{
		pass:      pass,
		info:      pass.TypesInfo,
		annots:    annots,
		obligated: map[types.Object]token.Pos{},
		reports:   map[report]bool{},
	}

	// Entry fact: annotated parameters and receiver.
	entry := fact{}
	bind := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				obj := fa.info.Defs[name]
				if obj == nil || !trackedType(obj.Type()) {
					continue
				}
				switch {
				case fnAnnot.ownsName(name.Name):
					entry[obj] = stLive
					fa.obligated[obj] = name.Pos()
				case fnAnnot.borrowsName(name.Name):
					entry[obj] = stBorrowed
				}
			}
		}
	}
	bind(recv)
	bind(ftype.Params)

	// Obligation pre-scan: record every acquisition site syntactically (in
	// source order, once) so the exit check knows which locals owe a release
	// and where to point the leak diagnostic. Function literals are their own
	// analysis units and are skipped.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				fa.scanAcquire(n.Lhs, n.Rhs)
			}
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(n.Names))
			for i, name := range n.Names {
				lhs[i] = name
			}
			fa.scanAcquire(lhs, n.Values)
		}
		return true
	})

	g := cfg.New(body)
	transfer := func(b *cfg.Block, in fact) fact {
		f := cloneFact(in)
		for _, n := range b.Nodes {
			fa.exec(n, f, false)
		}
		return f
	}
	res := dataflow.Forward[fact](g, lattice{}, entry, transfer)

	// Reporting replay: re-run the transfer over every reachable block with
	// reporting enabled, using the fixed-point input facts.
	for _, b := range g.Blocks {
		in := res.In[b.Index]
		if in == nil && b != g.Entry {
			continue
		}
		f := cloneFact(in)
		if b == g.Entry {
			f = cloneFact(entry)
		}
		for _, n := range b.Nodes {
			fa.exec(n, f, true)
		}
	}

	// Exit obligation: every acquired reference must be dead (released,
	// moved, deferred, or escaped) on every path reaching the normal exit.
	// Panic exits are exempt: a panicking cell is torn down wholesale.
	if exit := res.In[g.Exit.Index]; exit != nil {
		objs := make([]types.Object, 0, len(fa.obligated))
		for o := range fa.obligated {
			objs = append(objs, o)
		}
		sort.Slice(objs, func(i, j int) bool { return fa.obligated[objs[i]] < fa.obligated[objs[j]] })
		for _, o := range objs {
			s := exit[o]
			if s&stLive != 0 && s&(stEscaped|stDeferred) == 0 {
				fa.reportf(fa.obligated[o],
					"%s holds a pooled reference that may reach function exit without Release or ownership transfer", o.Name())
			}
		}
	}

	// Emit deduplicated reports in source order.
	keys := make([]report, 0, len(fa.reports))
	for r := range fa.reports {
		keys = append(keys, r)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pos != keys[j].pos {
			return keys[i].pos < keys[j].pos
		}
		return keys[i].msg < keys[j].msg
	})
	for _, r := range keys {
		pass.Reportf(r.pos, "%s", r.msg)
	}
}

func cloneFact(f fact) fact {
	out := make(fact, len(f)+4)
	for o, s := range f {
		out[o] = s
	}
	return out
}

// reportf queues one deduplicated diagnostic (only during replay).
func (fa *funcAnalysis) reportf(pos token.Pos, format string, args ...any) {
	fa.reports[report{pos, fmt.Sprintf(format, args...)}] = true
}

// exec applies one CFG node to the fact. When reporting is false it must be
// a pure transfer (it runs under the fixpoint solver); when true it also
// queues diagnostics.
func (fa *funcAnalysis) exec(n ast.Node, f fact, reporting bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		fa.assign(n, f, reporting)

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					fa.valueSpec(vs, f, reporting)
				}
			}
		}

	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if obj := fa.trackedIdent(res); obj != nil {
				if _, tracked := f[obj]; tracked {
					fa.useCheck(res.Pos(), obj, f, reporting)
					f[obj] = f[obj]&^stLive | stMoved
					continue
				}
			}
			fa.evalExpr(res, f, reporting)
		}

	case *ast.DeferStmt:
		fa.deferStmt(n, f, reporting)

	case *ast.GoStmt:
		fa.escapeAll(n.Call, f)

	case *ast.ExprStmt:
		fa.evalExpr(n.X, f, reporting)

	case *ast.SendStmt:
		fa.evalExpr(n.Chan, f, reporting)
		if obj := fa.trackedIdent(n.Value); obj != nil {
			f[obj] |= stEscaped
		} else {
			fa.evalExpr(n.Value, f, reporting)
		}

	case *ast.IncDecStmt:
		fa.evalExpr(n.X, f, reporting)

	case *ast.RangeStmt:
		// Head node: advance the iterator, (re)assign key and value. Range
		// element variables borrow from the collection — untracked.
		fa.evalExpr(n.X, f, reporting)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := e.(*ast.Ident); ok {
				if obj := fa.info.Defs[id]; obj != nil {
					delete(f, obj)
				}
			}
		}

	case ast.Expr:
		fa.evalExpr(n, f, reporting)
	}
}

// valueSpec handles `var x = expr` declarations like defining assignments.
func (fa *funcAnalysis) valueSpec(vs *ast.ValueSpec, f fact, reporting bool) {
	if len(vs.Values) == 0 {
		return
	}
	lhs := make([]ast.Expr, len(vs.Names))
	for i, n := range vs.Names {
		lhs[i] = n
	}
	fa.assignPairs(lhs, vs.Values, f, reporting)
}

func (fa *funcAnalysis) assign(n *ast.AssignStmt, f fact, reporting bool) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		// op= never applies to ref types; evaluate for uses only.
		for _, e := range n.Rhs {
			fa.evalExpr(e, f, reporting)
		}
		for _, e := range n.Lhs {
			fa.evalExpr(e, f, reporting)
		}
		return
	}
	fa.assignPairs(n.Lhs, n.Rhs, f, reporting)
}

func (fa *funcAnalysis) assignPairs(lhs, rhs []ast.Expr, f fact, reporting bool) {
	// Multi-value form: x, y := call().
	if len(lhs) > 1 && len(rhs) == 1 {
		owned := false
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			owned = fa.ownedSource(call)
		}
		fa.evalExpr(rhs[0], f, reporting)
		for _, l := range lhs {
			fa.bindLHS(l, f, reporting, owned, nil)
		}
		return
	}
	if len(lhs) != len(rhs) {
		return
	}
	type rhsEffect struct {
		owned bool
		alias types.Object
	}
	effects := make([]rhsEffect, len(rhs))
	for i, r := range rhs {
		if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
			effects[i].owned = fa.ownedSource(call)
			fa.evalExpr(r, f, reporting)
			continue
		}
		if obj := fa.trackedIdent(r); obj != nil {
			if _, tracked := f[obj]; tracked {
				fa.useCheck(r.Pos(), obj, f, reporting)
				effects[i].alias = obj
				continue
			}
		}
		fa.evalExpr(r, f, reporting)
	}
	for i, l := range lhs {
		fa.bindLHS(l, f, reporting, effects[i].owned, effects[i].alias)
	}
}

// bindLHS applies one assignment target. owned marks the bound value a
// freshly acquired reference; alias names a tracked variable whose value is
// being copied (both sides become untrackable).
func (fa *funcAnalysis) bindLHS(l ast.Expr, f fact, reporting bool, owned bool, alias types.Object) {
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok {
		// Storing into a field, slice, map, or dereference: the stored
		// reference escapes; the target expression's bases are uses.
		fa.evalExpr(l, f, reporting)
		if alias != nil {
			f[alias] |= stEscaped
		}
		return
	}
	if id.Name == "_" {
		return
	}
	obj := fa.info.Defs[id]
	if obj == nil {
		obj = fa.info.Uses[id]
	}
	if obj == nil || !trackedType(obj.Type()) {
		return
	}
	old, hadOld := f[obj]
	if hadOld && reporting &&
		old&stLive != 0 && old&(stReleased|stMoved|stDeferred|stEscaped|stBorrowed) == 0 {
		fa.reportf(id.Pos(), "%s is overwritten while still holding a pooled reference (leaked)", obj.Name())
	}
	keepDeferred := old & stDeferred // a deferred closure releases the final value
	switch {
	case owned:
		f[obj] = stLive | keepDeferred
	case alias != nil:
		// Two variables now hold the same reference; per-variable tracking
		// cannot attribute the single release obligation, so both escape.
		f[alias] |= stEscaped
		f[obj] = stEscaped
	default:
		if keepDeferred != 0 {
			f[obj] = keepDeferred
		} else {
			delete(f, obj)
		}
	}
}

// ownedSource reports whether call yields a reference the caller owns:
// bufpool Pool.Get, or a same-package callee annotated //slimio:owns return.
func (fa *funcAnalysis) ownedSource(call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
		if tv, ok := fa.info.Types[sel.X]; ok {
			if pkg, name := analysis.NamedTypePath(tv.Type); pkg == bufpoolPath && name == "Pool" {
				return true
			}
		}
	}
	return fa.calleeAnnot(call).ownsName("return")
}

// recordObligation notes a reference origin the exit check must see dead.
// Called from the syntactic pre-scan (deterministic, runs once).
func (fa *funcAnalysis) recordObligation(obj types.Object, pos token.Pos) {
	if _, ok := fa.obligated[obj]; !ok {
		fa.obligated[obj] = pos
	}
}

// scanAcquire records obligations for tracked identifiers assigned from an
// owned source (pool.Get or an //slimio:owns return callee).
func (fa *funcAnalysis) scanAcquire(lhs, rhs []ast.Expr) {
	ownedAt := func(i int) bool {
		var r ast.Expr
		switch {
		case len(rhs) == 1:
			r = rhs[0] // covers s, err := f() too
		case i < len(rhs):
			r = rhs[i]
		default:
			return false
		}
		call, ok := ast.Unparen(r).(*ast.CallExpr)
		return ok && fa.ownedSource(call)
	}
	for i, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := fa.info.Defs[id]
		if obj == nil {
			obj = fa.info.Uses[id]
		}
		if obj == nil || !trackedType(obj.Type()) {
			continue
		}
		if ownedAt(i) {
			fa.recordObligation(obj, id.Pos())
		}
	}
}

// calleeAnnot resolves the annotation set of a call's target through
// go/types (nil for cross-package or unannotated callees).
func (fa *funcAnalysis) calleeAnnot(call *ast.CallExpr) *annot {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = fa.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = fa.info.Uses[fun.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		return fa.annots[fn]
	}
	return nil
}

// calleeFunc resolves the called function's type object, if any.
func (fa *funcAnalysis) calleeFunc(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = fa.info.Uses[fun]
	case *ast.SelectorExpr:
		obj = fa.info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// trackedIdent resolves e to a tracked-type identifier's object (nil
// otherwise).
func (fa *funcAnalysis) trackedIdent(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := fa.info.Uses[id]
	if obj == nil {
		obj = fa.info.Defs[id]
	}
	if obj == nil || !trackedType(obj.Type()) {
		return nil
	}
	return obj
}

// useCheck reports a read of obj on a path where its reference is already
// gone.
func (fa *funcAnalysis) useCheck(pos token.Pos, obj types.Object, f fact, reporting bool) {
	if !reporting {
		return
	}
	s := f[obj]
	if s&stEscaped != 0 {
		return
	}
	if s&stReleased != 0 {
		fa.reportf(pos, "use of %s after Release: the pool may already have recycled its backing bytes", obj.Name())
	} else if s&stMoved != 0 {
		fa.reportf(pos, "use of %s after its ownership was transferred", obj.Name())
	}
}

// release applies x.Release()/x.ReleaseAt(...) to obj.
func (fa *funcAnalysis) release(pos token.Pos, obj types.Object, f fact, reporting, deferred bool) {
	s, tracked := f[obj]
	if !tracked || s&stEscaped != 0 {
		return
	}
	if reporting {
		switch {
		case s&stReleased != 0:
			fa.reportf(pos, "possible double Release of %s (already released on a path reaching here)", obj.Name())
		case s&stDeferred != 0:
			fa.reportf(pos, "Release of %s is already scheduled by a deferred Release", obj.Name())
		case s&stMoved != 0:
			fa.reportf(pos, "Release of %s after its ownership was transferred", obj.Name())
		case s&stBorrowed != 0:
			fa.reportf(pos, "Release of %s, which this function only borrows (//slimio:borrows)", obj.Name())
		}
	}
	if deferred {
		f[obj] = s&^stLive | stDeferred
	} else {
		f[obj] = s&^(stLive|stBorrowed) | stReleased
	}
}

// isReleaseName matches the pool's release entry points.
func isReleaseName(name string) bool { return name == "Release" || name == "ReleaseAt" }

// evalExpr walks an expression, applying use checks and call effects.
func (fa *funcAnalysis) evalExpr(e ast.Expr, f fact, reporting bool) {
	switch e := e.(type) {
	case nil:
		return

	case *ast.Ident:
		if obj := fa.trackedIdent(e); obj != nil {
			if _, tracked := f[obj]; tracked {
				fa.useCheck(e.Pos(), obj, f, reporting)
			}
		}

	case *ast.CallExpr:
		fa.evalCall(e, f, reporting)

	case *ast.SelectorExpr:
		fa.evalExpr(e.X, f, reporting)

	case *ast.FuncLit:
		// Closures are separate analysis units; captured refs escape.
		fa.escapeAll(e, f)

	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if obj := fa.trackedIdent(e.X); obj != nil {
				f[obj] |= stEscaped
				return
			}
		}
		fa.evalExpr(e.X, f, reporting)

	case *ast.BinaryExpr:
		// Nil comparisons of a released ref are harmless bookkeeping, not
		// byte access — exempt tracked idents from the use check there.
		exempt := e.Op == token.EQL || e.Op == token.NEQ
		for _, op := range []ast.Expr{e.X, e.Y} {
			if exempt && fa.trackedIdent(op) != nil {
				continue
			}
			fa.evalExpr(op, f, reporting)
		}

	case *ast.CompositeLit:
		// A ref stored into a composite (bufpool.Ref{Seg: s}, []*Segment{s})
		// escapes per-variable tracking.
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if obj := fa.trackedIdent(v); obj != nil {
				f[obj] |= stEscaped
				continue
			}
			fa.evalExpr(v, f, reporting)
		}

	case *ast.ParenExpr:
		fa.evalExpr(e.X, f, reporting)
	case *ast.StarExpr:
		fa.evalExpr(e.X, f, reporting)
	case *ast.IndexExpr:
		fa.evalExpr(e.X, f, reporting)
		fa.evalExpr(e.Index, f, reporting)
	case *ast.IndexListExpr:
		fa.evalExpr(e.X, f, reporting)
		for _, idx := range e.Indices {
			fa.evalExpr(idx, f, reporting)
		}
	case *ast.SliceExpr:
		fa.evalExpr(e.X, f, reporting)
		fa.evalExpr(e.Low, f, reporting)
		fa.evalExpr(e.High, f, reporting)
		fa.evalExpr(e.Max, f, reporting)
	case *ast.TypeAssertExpr:
		fa.evalExpr(e.X, f, reporting)
	case *ast.KeyValueExpr:
		fa.evalExpr(e.Key, f, reporting)
		fa.evalExpr(e.Value, f, reporting)
	}
}

// evalCall applies a call's effects: built-in bufpool lifecycle methods on a
// tracked receiver, annotated same-package ownership transfer on arguments,
// and conservative escape for everything else.
func (fa *funcAnalysis) evalCall(call *ast.CallExpr, f fact, reporting bool) {
	// Lifecycle method on a tracked local: x.Release(), x.ReleaseAt(t),
	// x.Retain().
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := fa.trackedIdent(sel.X); obj != nil {
			if _, tracked := f[obj]; tracked {
				switch {
				case isReleaseName(sel.Sel.Name):
					for _, a := range call.Args {
						fa.evalExpr(a, f, reporting)
					}
					fa.release(sel.Pos(), obj, f, reporting, false)
					return
				case sel.Sel.Name == "Retain":
					fa.useCheck(sel.Pos(), obj, f, reporting)
					return
				default:
					// Any other method on a tracked receiver (Bytes, Span,
					// AppendTo, ...) reads the backing bytes: a use. The
					// tracked types' method sets are known not to stash
					// their receiver, so the ref does not escape. A
					// same-package method annotated to consume its receiver
					// transfers ownership instead.
					fa.useCheck(sel.Pos(), obj, f, reporting)
					fn := fa.calleeFunc(call)
					an := fa.calleeAnnot(call)
					if fn != nil && an != nil {
						if recvName := recvParamName(fn); recvName != "" && an.ownsName(recvName) {
							f[obj] = f[obj]&^stLive | stMoved
						}
					}
					for i, a := range call.Args {
						fa.evalArg(a, an, paramName(fn, i), f, reporting)
					}
					return
				}
			}
		}
	}

	an := fa.calleeAnnot(call)
	fn := fa.calleeFunc(call)
	fa.evalExpr(call.Fun, f, reporting)
	for i, arg := range call.Args {
		fa.evalArg(arg, an, paramName(fn, i), f, reporting)
	}
}

// evalArg applies one call argument: owns-annotated parameters consume the
// reference, borrows-annotated ones only read it, anything else makes a
// tracked reference escape.
func (fa *funcAnalysis) evalArg(arg ast.Expr, an *annot, param string, f fact, reporting bool) {
	obj := fa.trackedIdent(arg)
	if obj == nil {
		fa.evalExpr(arg, f, reporting)
		return
	}
	s, tracked := f[obj]
	if !tracked {
		return
	}
	fa.useCheck(arg.Pos(), obj, f, reporting)
	switch {
	case an.ownsName(param):
		f[obj] = s&^stLive | stMoved
	case an.borrowsName(param):
		// Callee only reads; the caller's obligation is unchanged.
	default:
		f[obj] = s | stEscaped
	}
}

// paramName resolves the name of fn's i'th parameter (variadic-aware).
func paramName(fn *types.Func, i int) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return ""
	}
	if i >= sig.Params().Len() {
		if sig.Variadic() {
			i = sig.Params().Len() - 1
		} else {
			return ""
		}
	}
	return sig.Params().At(i).Name()
}

// recvParamName resolves fn's receiver name.
func recvParamName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return sig.Recv().Name()
}

// deferStmt handles the defer forms the data plane uses: a direct deferred
// Release, a deferred closure releasing captured refs, and deferred calls
// into annotated callees. Anything else makes its tracked arguments escape.
func (fa *funcAnalysis) deferStmt(n *ast.DeferStmt, f fact, reporting bool) {
	call := n.Call

	// defer x.Release() / defer x.ReleaseAt(t)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isReleaseName(sel.Sel.Name) {
		if obj := fa.trackedIdent(sel.X); obj != nil {
			if _, tracked := f[obj]; tracked {
				for _, a := range call.Args {
					fa.evalExpr(a, f, reporting)
				}
				fa.release(sel.Pos(), obj, f, reporting, true)
				return
			}
		}
	}

	// defer func() { ...; x.Release(); ... }()
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		released := map[types.Object]token.Pos{}
		other := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && isReleaseName(sel.Sel.Name) {
					if obj := fa.trackedIdent(sel.X); obj != nil {
						if _, seen := released[obj]; !seen {
							released[obj] = sel.Pos()
						}
						for _, a := range m.Args {
							ast.Inspect(a, fa.markOther(other, f))
						}
						return false
					}
				}
			case *ast.Ident:
				fa.markOther(other, f)(m)
			}
			return true
		})
		objs := make([]types.Object, 0, len(released))
		for o := range released {
			objs = append(objs, o)
		}
		sort.Slice(objs, func(i, j int) bool { return released[objs[i]] < released[objs[j]] })
		for _, o := range objs {
			fa.release(released[o], o, f, reporting, true)
		}
		for o := range other {
			if _, wasReleased := released[o]; !wasReleased {
				f[o] |= stEscaped
			}
		}
		return
	}

	// defer f(x): annotated callees apply at exit; owns means the callee
	// will release, so the obligation is met (deferred), borrows changes
	// nothing, anything else escapes.
	an := fa.calleeAnnot(call)
	fn := fa.calleeFunc(call)
	fa.evalExpr(call.Fun, f, reporting)
	for i, arg := range call.Args {
		obj := fa.trackedIdent(arg)
		if obj == nil {
			fa.evalExpr(arg, f, reporting)
			continue
		}
		s, tracked := f[obj]
		if !tracked {
			continue
		}
		switch {
		case an.ownsName(paramName(fn, i)):
			f[obj] = s&^stLive | stDeferred
		case an.borrowsName(paramName(fn, i)):
			// read-only at exit
		default:
			f[obj] = s | stEscaped
		}
	}
}

// markOther returns an inspector marking tracked identifier references.
func (fa *funcAnalysis) markOther(other map[types.Object]bool, f fact) func(ast.Node) bool {
	return func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := fa.trackedIdent(id); obj != nil {
				if _, tracked := f[obj]; tracked {
					other[obj] = true
				}
			}
		}
		return true
	}
}

// escapeAll ends tracking for every tracked variable referenced under n.
func (fa *funcAnalysis) escapeAll(n ast.Node, f fact) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := fa.trackedIdent(id); obj != nil {
				if _, tracked := f[obj]; tracked {
					f[obj] |= stEscaped
				}
			}
		}
		return true
	})
}
