package refflow_test

import (
	"testing"

	"github.com/slimio/slimio/internal/analysis/analysistest"
	"github.com/slimio/slimio/internal/analysis/refflow"
)

func TestRefflow(t *testing.T) {
	analysistest.Run(t, "./testdata/src/a", refflow.Analyzer)
}
