// Annotated ownership seams used by the fixtures in a.go. Living in a
// second file also exercises multi-file fixture packages: annotations must
// resolve across files of the same package.
package a

import "github.com/slimio/slimio/internal/bufpool"

// acquire hands its caller an owned segment; the caller must release it.
//
//slimio:owns return
func acquire(p *bufpool.Pool) *bufpool.Segment {
	s := p.Get()
	return s
}

// consume takes ownership of s and releases it.
//
//slimio:owns s
func consume(s *bufpool.Segment) {
	s.Release()
}

// peek reads s without taking a reference; it must not release it.
//
//slimio:borrows s
func peek(s *bufpool.Segment) byte {
	b := s.Bytes()
	s.Release() // want `Release of s, which this function only borrows`
	return b[0]
}

// consumeLeak takes ownership but forgets to release on one path.
//
//slimio:owns s
func consumeLeak(s *bufpool.Segment, c bool) { // want `s holds a pooled reference that may reach function exit`
	if c {
		s.Release()
	}
}

// badAnnot names a parameter that does not exist.
//
//slimio:owns q
func badAnnot(s *bufpool.Segment) { // want `names "q", which is not a receiver or parameter of badAnnot`
	_ = s
}

// conflicted names s as both owned and borrowed.
//
//slimio:owns s
//slimio:borrows s
func conflicted(s *bufpool.Segment) { // want `"s" is named by both //slimio:owns and //slimio:borrows`
	s.Release()
}
