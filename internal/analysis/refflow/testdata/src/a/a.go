// Fixtures for the refflow pass: pooled references that may leak at
// function exit, double releases, and uses after release all fire; the
// disciplined shapes the data plane actually uses (defer, ownership
// handoff, conservative escape) stay quiet.
package a

import "github.com/slimio/slimio/internal/bufpool"

// --- leaks -----------------------------------------------------------------

func leak(p *bufpool.Pool) {
	s := p.Get() // want `s holds a pooled reference that may reach function exit without Release or ownership transfer`
	_ = s.Bytes()
}

func leakOnOneBranch(p *bufpool.Pool, c bool) {
	s := p.Get() // want `s holds a pooled reference that may reach function exit`
	if c {
		s.Release()
	}
}

func leakFromAnnotatedSource(p *bufpool.Pool) {
	s := acquire(p) // want `s holds a pooled reference that may reach function exit`
	_ = s.Bytes()
}

func overwriteWhileLive(p *bufpool.Pool) {
	s := p.Get()
	s = p.Get() // want `s is overwritten while still holding a pooled reference`
	s.Release()
}

// --- double release --------------------------------------------------------

func doubleRelease(p *bufpool.Pool) {
	s := p.Get()
	s.Release()
	s.Release() // want `possible double Release of s`
}

func doubleReleaseOnPath(p *bufpool.Pool, c bool) {
	s := p.Get()
	if c {
		s.Release()
	}
	s.Release() // want `possible double Release of s`
}

func releaseInLoop(p *bufpool.Pool, n int) {
	s := p.Get() // want `s holds a pooled reference that may reach function exit`
	for i := 0; i < n; i++ {
		s.Release() // want `possible double Release of s`
	}
}

func releaseAfterDefer(p *bufpool.Pool) {
	s := p.Get()
	defer s.Release()
	s.Release() // want `Release of s is already scheduled by a deferred Release`
}

func releaseAfterMove(p *bufpool.Pool) {
	s := p.Get()
	consume(s)
	s.Release() // want `Release of s after its ownership was transferred`
}

// --- use after release -----------------------------------------------------

func useAfterRelease(p *bufpool.Pool) []byte {
	s := p.Get()
	s.Release()
	return s.Bytes() // want `use of s after Release`
}

func useAfterReleaseAt(p *bufpool.Pool) []byte {
	s := p.Get()
	s.ReleaseAt(10)  // quarantine is still a release for the holder
	return s.Bytes() // want `use of s after Release`
}

func useAfterReleaseOnPath(p *bufpool.Pool, c bool) byte {
	s := p.Get()
	if c {
		s.Release()
	} else {
		consume(s)
	}
	return s.Bytes()[0] // want `use of s after Release`
}

func useArgAfterRelease(p *bufpool.Pool) {
	s := p.Get()
	s.Release()
	consume(s) // want `use of s after Release`
}

func useAfterMove(p *bufpool.Pool) {
	s := p.Get()
	consume(s)
	_ = s.Bytes() // want `use of s after its ownership was transferred`
}

// --- clean shapes ----------------------------------------------------------

func goodReleaseBothBranches(p *bufpool.Pool, c bool) {
	s := p.Get()
	if c {
		s.Release()
		return
	}
	s.Release()
}

func goodDeferredRelease(p *bufpool.Pool) byte {
	s := p.Get()
	defer s.Release()
	return s.Bytes()[0]
}

func goodDeferredClosure(p, q *bufpool.Pool) {
	a := p.Get()
	b := q.Get()
	defer func() {
		a.Release()
		b.Release()
	}()
	_ = a.Bytes()
	_ = b.Bytes()
}

func goodHandoff(p *bufpool.Pool) {
	s := acquire(p)
	consume(s)
}

func goodBorrowedUse(p *bufpool.Pool) byte {
	s := p.Get()
	defer s.Release()
	return peek(s)
}

func goodReturnTransfers(p *bufpool.Pool) *bufpool.Segment {
	s := p.Get()
	return s
}

func goodNilCheckAfterRelease(p *bufpool.Pool) bool {
	s := p.Get()
	s.Release()
	return s == nil // bookkeeping, not a byte access
}

type holder struct{ s *bufpool.Segment }

func goodEscapeToStore(p *bufpool.Pool, h *holder) {
	s := p.Get()
	h.s = s // conservative: stored refs leave per-variable tracking
}

func goodEscapeToClosure(p *bufpool.Pool) func() {
	s := p.Get()
	return func() { s.Release() }
}

func allowedLeak(p *bufpool.Pool) {
	//slimio:allow refflow ring registry tracks this reference out of band
	s := p.Get()
	_ = s.Bytes()
}
