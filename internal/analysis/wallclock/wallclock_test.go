package wallclock_test

import (
	"testing"

	"github.com/slimio/slimio/internal/analysis/analysistest"
	"github.com/slimio/slimio/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "./testdata/src/a", wallclock.Analyzer)
}
