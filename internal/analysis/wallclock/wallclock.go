// Package wallclock forbids wall-clock access in deterministic packages.
package wallclock

import (
	"go/ast"

	"github.com/slimio/slimio/internal/analysis"
)

// Doc's first line is the summary; the rest is the -explain rationale.
const Doc = `forbid wall-clock time in deterministic simulation packages

Every seeded run of the simulator must be bit-identical: the paper's WAF and
latency numbers are reproduced structurally, not statistically, and the
determinism regression test compares full output bytes across runs. A single
time.Now, time.Sleep, or timer in simulation code makes results depend on
host scheduling and clock resolution. Virtual time must come from
internal/sim (Engine.Now, Env.Sleep, sim.Duration); the experiment harness
binaries (cmd/*) may measure wall time, deterministic packages may not.
Suppress an intentional exception with //slimio:allow wallclock <reason>.`

// forbidden lists the package-level time functions that read or wait on the
// host clock. Constructors like time.Duration arithmetic and formatting are
// fine; anything observing "now" is not.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  Doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name := analysis.PkgFuncRef(pass.TypesInfo, sel)
		if pkg == "time" && forbidden[name] {
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; deterministic packages must use virtual time from internal/sim", name)
		}
		return true
	})
	return nil, nil
}
