// Fixture for the wallclock pass: every host-clock observation fires, pure
// duration arithmetic does not, and //slimio:allow suppresses.
package a

import "time"

var sink time.Time

func bad() {
	sink = time.Now()             // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond)  // want `time.Sleep reads the wall clock`
	_ = time.Since(sink)          // want `time.Since reads the wall clock`
	_ = time.Until(sink)          // want `time.Until reads the wall clock`
	<-time.After(time.Second)     // want `time.After reads the wall clock`
	t := time.NewTimer(time.Hour) // want `time.NewTimer reads the wall clock`
	t.Stop()
	k := time.NewTicker(time.Hour) // want `time.NewTicker reads the wall clock`
	k.Stop()
	time.AfterFunc(time.Hour, func() {}) // want `time.AfterFunc reads the wall clock`
}

func reference() {
	// A bare reference (no call) leaks the clock just as well.
	f := time.Now // want `time.Now reads the wall clock`
	_ = f
}

func good() {
	// Duration arithmetic and formatting never read the clock.
	d := 5 * time.Millisecond
	_ = d.Seconds()
	_ = time.Duration(42).String()
	_ = time.Unix(0, 0) // constructing a fixed instant is deterministic
}

func allowed() {
	//slimio:allow wallclock fixture: proves the suppression path works
	sink = time.Now()
	_ = time.Since(sink) //slimio:allow wallclock trailing same-line directive also suppresses
}
