// Package retainbuf flags uses of a pooled segment's backing slice after
// the segment has been released.
package retainbuf

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/slimio/slimio/internal/analysis"
)

// Doc's first line is the summary; the rest is the -explain rationale.
const Doc = `forbid use of a pooled segment's backing slice past its Release

The zero-copy write path hands bufpool segments from the WAL encoder through
the rings to the NAND array; Release recycles a segment the moment its last
reference drops, so a slice obtained from Segment.Bytes (or a Ref's B field)
is valid only while the holder keeps a reference. Code that releases first
and reads later observes whatever payload the pool's next writer encodes —
a silent cross-request corruption no test reliably catches, because the
recycling order depends on the workload. The pass tracks, within one
function, variables bound to a segment's backing slice and reports any use
after a Release/ReleaseAt of that segment; direct Bytes()/.B accesses on a
released local are reported too. Copy the bytes out (AppendTo) or hold a
Retain for the slice's whole lifetime. Suppress an intentional exception
with //slimio:allow retainbuf <reason>.`

// bufpoolPath anchors the type matching to the real pool package.
const bufpoolPath = "github.com/slimio/slimio/internal/bufpool"

// Analyzer is the retainbuf pass.
var Analyzer = &analysis.Analyzer{
	Name: "retainbuf",
	Doc:  Doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFunc(pass, fn.Body)
			}
		}
	}
	return nil, nil
}

// pooledName resolves t to "Segment" or "Ref" when it is (a pointer to) one
// of bufpool's payload-carrying types, "" otherwise.
func pooledName(t types.Type) string {
	if t == nil {
		return ""
	}
	pkg, name := analysis.NamedTypePath(t)
	if pkg == bufpoolPath && (name == "Segment" || name == "Ref") {
		return name
	}
	return ""
}

// localObj resolves expr as a plain local identifier and returns its object
// ("" kind means it is not a pooled type). Field selectors and index
// expressions are deliberately not tracked: their aliasing is beyond a
// per-function pass, and restricting to locals keeps the pass free of false
// positives.
func localObj(info *types.Info, expr ast.Expr) (types.Object, string) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return nil, ""
	}
	return obj, pooledName(obj.Type())
}

// viewSource resolves expr (through re-slicings) to the pooled local whose
// backing bytes it aliases: s.Bytes(), s.Bytes()[:n], or r.B.
func viewSource(info *types.Info, expr ast.Expr) types.Object {
	for {
		if s, ok := expr.(*ast.SliceExpr); ok {
			expr = s.X
			continue
		}
		break
	}
	switch e := expr.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Bytes" {
			return nil
		}
		if obj, kind := localObj(info, sel.X); kind == "Segment" {
			return obj
		}
	case *ast.SelectorExpr:
		if e.Sel.Name != "B" {
			return nil
		}
		if obj, kind := localObj(info, e.X); kind == "Ref" {
			return obj
		}
	}
	return nil
}

// checkFunc applies the pass to one function body. The analysis is a
// source-order heuristic: a use textually after the earliest Release of the
// segment it aliases is reported. That misses release-in-loop patterns and
// cross-function escapes, and is exactly as precise as a reviewer reading
// the function top to bottom — the contract the pass encodes.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	released := make(map[types.Object]token.Pos) // pooled local -> earliest Release
	views := make(map[types.Object]types.Object) // slice local -> pooled local

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Release runs at function exit: the bytes stay valid
			// for the whole body, so its textual position is not a release
			// point.
			return false
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Release" && sel.Sel.Name != "ReleaseAt") {
				return true
			}
			if obj, kind := localObj(info, sel.X); kind != "" {
				if p, ok := released[obj]; !ok || n.Pos() < p {
					released[obj] = n.Pos()
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Rhs {
				src := viewSource(info, n.Rhs[i])
				if src == nil {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj, _ := localObj(info, id); obj != nil {
						views[obj] = src
					}
				}
			}
		}
		return true
	})
	if len(released) == 0 {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			src, ok := views[info.Uses[n]]
			if !ok {
				return true
			}
			if rel, ok := released[src]; ok && rel < n.Pos() {
				pass.Reportf(n.Pos(),
					"%s aliases the backing slice of %s, which was already released; the pool may have recycled the bytes — copy them out or Retain for the slice's lifetime",
					n.Name, src.Name())
			}
		case *ast.SelectorExpr:
			if n.Sel.Name != "Bytes" && n.Sel.Name != "B" {
				return true
			}
			obj, kind := localObj(info, n.X)
			if kind == "" {
				return true
			}
			if (kind == "Segment") != (n.Sel.Name == "Bytes") {
				return true
			}
			if rel, ok := released[obj]; ok && rel < n.Pos() {
				pass.Reportf(n.Pos(),
					"%s.%s after %s was released; the pool may have recycled the bytes — copy them out or Retain for the slice's lifetime",
					obj.Name(), n.Sel.Name, obj.Name())
			}
		}
		return true
	})
}
