// Package retainbuf flags uses of a pooled segment's backing slice after
// the segment has been released.
package retainbuf

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/slimio/slimio/internal/analysis"
	"github.com/slimio/slimio/internal/analysis/cfg"
	"github.com/slimio/slimio/internal/analysis/dataflow"
)

// Doc's first line is the summary; the rest is the -explain rationale.
const Doc = `forbid use of a pooled segment's backing slice past its Release

The zero-copy write path hands bufpool segments from the WAL encoder through
the rings to the NAND array; Release recycles a segment the moment its last
reference drops, so a slice obtained from Segment.Bytes (or a Ref's B field)
is valid only while the holder keeps a reference. Code that releases first
and reads later observes whatever payload the pool's next writer encodes —
a silent cross-request corruption no test reliably catches, because the
recycling order depends on the workload. The pass runs a flow-sensitive
analysis over the function's control-flow graph: it tracks which locals
alias a segment's backing slice and which segments may have been released
on a path reaching each use, so a release on one branch does not poison an
independent branch, re-assigning the slice variable ends the alias, and a
release on a loop's back edge is seen by the next iteration's uses. Direct
Bytes()/.B accesses on a released local are reported too. Copy the bytes
out (AppendTo) or hold a Retain for the slice's whole lifetime. Suppress an
intentional exception with //slimio:allow retainbuf <reason>.`

// bufpoolPath anchors the type matching to the real pool package.
const bufpoolPath = "github.com/slimio/slimio/internal/bufpool"

// Analyzer is the retainbuf pass.
var Analyzer = &analysis.Analyzer{
	Name: "retainbuf",
	Doc:  Doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
			for _, lit := range funcLits(fn.Body) {
				checkFunc(pass, lit.Body)
			}
		}
	}
	return nil, nil
}

func funcLits(body *ast.BlockStmt) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	return lits
}

// pooledName resolves t to "Segment" or "Ref" when it is (a pointer to) one
// of bufpool's payload-carrying types, "" otherwise.
func pooledName(t types.Type) string {
	if t == nil {
		return ""
	}
	pkg, name := analysis.NamedTypePath(t)
	if pkg == bufpoolPath && (name == "Segment" || name == "Ref") {
		return name
	}
	return ""
}

// localObj resolves expr as a plain local identifier and returns its object
// ("" kind means it is not a pooled type). Field selectors and index
// expressions are deliberately not tracked: their aliasing is beyond a
// per-function pass, and restricting to locals keeps the pass free of false
// positives.
func localObj(info *types.Info, expr ast.Expr) (types.Object, string) {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return nil, ""
	}
	return obj, pooledName(obj.Type())
}

// viewSource resolves expr (through re-slicings) to the pooled local whose
// backing bytes it aliases: s.Bytes(), s.Bytes()[:n], or r.B.
func viewSource(info *types.Info, expr ast.Expr) types.Object {
	for {
		if s, ok := expr.(*ast.SliceExpr); ok {
			expr = s.X
			continue
		}
		break
	}
	switch e := expr.(type) {
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Bytes" {
			return nil
		}
		if obj, kind := localObj(info, sel.X); kind == "Segment" {
			return obj
		}
	case *ast.SelectorExpr:
		if e.Sel.Name != "B" {
			return nil
		}
		if obj, kind := localObj(info, e.X); kind == "Ref" {
			return obj
		}
	}
	return nil
}

// rb is the per-object fact: for a pooled local, whether a Release may have
// run on a path reaching the point; for a slice local, the set of pooled
// locals whose backing bytes it may alias.
type rb struct {
	released bool
	sources  map[types.Object]bool
}

// fact maps tracked locals to their state; nil is bottom (unreachable).
// Objects carry an entry only when there is something to say (a released
// segment, an aliasing slice) — absence means "fresh / not aliasing".
type fact map[types.Object]rb

type lattice struct{}

func (lattice) Bottom() fact { return nil }

func (lattice) Join(a, b fact) fact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := make(fact, len(a)+len(b))
	for o, s := range a {
		out[o] = s
	}
	for o, s := range b {
		cur, ok := out[o]
		if !ok {
			out[o] = s
			continue
		}
		merged := rb{released: cur.released || s.released}
		if cur.sources != nil || s.sources != nil {
			merged.sources = make(map[types.Object]bool, len(cur.sources)+len(s.sources))
			for k := range cur.sources {
				merged.sources[k] = true
			}
			for k := range s.sources {
				merged.sources[k] = true
			}
		}
		out[o] = merged
	}
	return out
}

func (lattice) Equal(a, b fact) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for o, s := range a {
		t, ok := b[o]
		if !ok || s.released != t.released || len(s.sources) != len(t.sources) {
			return false
		}
		for k := range s.sources {
			if !t.sources[k] {
				return false
			}
		}
	}
	return true
}

func cloneFact(f fact) fact {
	out := make(fact, len(f)+2)
	for o, s := range f {
		out[o] = s // rb.sources maps are copy-on-write (never mutated in place)
	}
	return out
}

type checker struct {
	info    *types.Info
	reports map[string]report
}

type report struct {
	pos token.Pos
	msg string
}

// checkFunc applies the pass to one function body over its CFG.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{info: pass.TypesInfo, reports: map[string]report{}}

	g := cfg.New(body)
	transfer := func(b *cfg.Block, in fact) fact {
		f := cloneFact(in)
		for _, n := range b.Nodes {
			c.exec(n, f, false)
		}
		return f
	}
	res := dataflow.Forward[fact](g, lattice{}, fact{}, transfer)

	for _, b := range g.Blocks {
		in := res.In[b.Index]
		if in == nil && b != g.Entry {
			continue
		}
		f := cloneFact(in)
		for _, n := range b.Nodes {
			c.exec(n, f, true)
		}
	}

	keys := make([]report, 0, len(c.reports))
	for _, r := range c.reports {
		keys = append(keys, r)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pos != keys[j].pos {
			return keys[i].pos < keys[j].pos
		}
		return keys[i].msg < keys[j].msg
	})
	for _, r := range keys {
		pass.Reportf(r.pos, "%s", r.msg)
	}
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	c.reports[fmt.Sprintf("%d:%s", pos, msg)] = report{pos, msg}
}

// exec applies one CFG node. Pure when reporting is false (it runs under
// the fixpoint solver).
func (c *checker) exec(n ast.Node, f fact, reporting bool) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// A deferred Release runs at function exit: the bytes stay valid for
		// the whole body, so it is not a release point. Uses inside the call
		// are still checked against the state at registration.
		c.walk(n.Call, f, reporting, false)

	case *ast.AssignStmt:
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			c.walk(n, f, reporting, true)
			return
		}
		c.assign(n.Lhs, n.Rhs, f, reporting)

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				c.assign(lhs, vs.Values, f, reporting)
			}
		}

	case *ast.RangeStmt:
		// Head node: advance the iterator, (re)assign key and value —
		// a re-assignment kills any alias the variables carried. The body is
		// wired as blocks; do not descend.
		c.walk(n.X, f, reporting, true)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj, _ := localObj(c.info, id); obj != nil {
					delete(f, obj)
				}
			}
		}

	default:
		c.walk(n, f, reporting, true)
	}
}

// assign handles = and := statements: view bindings are established or
// killed per left-hand side, right-hand sides are checked for uses, and a
// re-assigned pooled local starts fresh (unreleased).
func (c *checker) assign(lhs, rhs []ast.Expr, f fact, reporting bool) {
	// Right-hand sides first (the old values are what the reads observe).
	for _, r := range rhs {
		c.walk(r, f, reporting, true)
	}
	paired := len(lhs) == len(rhs)
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			// Field/index targets: check the target expression's reads, keep
			// tracking unchanged.
			c.walk(l, f, reporting, true)
			continue
		}
		if id.Name == "_" {
			continue
		}
		obj, kind := localObj(c.info, id)
		if obj == nil {
			continue
		}
		if kind != "" {
			// A pooled local bound to a fresh value is not released.
			delete(f, obj)
			continue
		}
		var src types.Object
		if paired {
			src = viewSource(c.info, rhs[i])
		}
		if src != nil {
			f[obj] = rb{sources: map[types.Object]bool{src: true}}
		} else if _, tracked := f[obj]; tracked {
			// Re-assignment to anything else ends the alias.
			delete(f, obj)
		}
	}
}

// walk inspects one atomic node's expression tree: view uses and direct
// Bytes()/.B accesses are checked against the current fact, and (when
// markReleases is set) Release/ReleaseAt calls update it.
func (c *checker) walk(n ast.Node, f fact, reporting, markReleases bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// Literal bodies are separate analysis units with their own CFG.
			return false

		case *ast.CallExpr:
			sel, ok := m.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Release" && sel.Sel.Name != "ReleaseAt") {
				return true
			}
			obj, kind := localObj(c.info, sel.X)
			if obj == nil || kind == "" {
				return true
			}
			if markReleases {
				cur := f[obj]
				cur.released = true
				f[obj] = cur
			}
			// The receiver ident is not a slice use; still walk the args.
			for _, a := range m.Args {
				c.walk(a, f, reporting, markReleases)
			}
			return false

		case *ast.Ident:
			if !reporting {
				return true
			}
			st, ok := f[c.info.Uses[m]]
			if !ok || len(st.sources) == 0 {
				return true
			}
			srcs := make([]types.Object, 0, len(st.sources))
			for src := range st.sources {
				srcs = append(srcs, src)
			}
			sort.Slice(srcs, func(i, j int) bool { return srcs[i].Pos() < srcs[j].Pos() })
			for _, src := range srcs {
				if f[src].released {
					c.reportf(m.Pos(),
						"%s aliases the backing slice of %s, which was already released; the pool may have recycled the bytes — copy them out or Retain for the slice's lifetime",
						m.Name, src.Name())
				}
			}

		case *ast.SelectorExpr:
			if m.Sel.Name != "Bytes" && m.Sel.Name != "B" {
				return true
			}
			obj, kind := localObj(c.info, m.X)
			if kind == "" {
				return true
			}
			if (kind == "Segment") != (m.Sel.Name == "Bytes") {
				return true
			}
			if reporting && f[obj].released {
				c.reportf(m.Pos(),
					"%s.%s after %s was released; the pool may have recycled the bytes — copy them out or Retain for the slice's lifetime",
					obj.Name(), m.Sel.Name, obj.Name())
			}
		}
		return true
	})
}
