// Fixture for the retainbuf pass: uses of a pooled backing slice after
// Release fire, uses before (or under a still-held reference with an allow
// comment) do not.
package a

import "github.com/slimio/slimio/internal/bufpool"

func useAfterRelease(p *bufpool.Pool) byte {
	s := p.Get()
	b := s.Bytes()
	s.Release()
	return b[0] // want `b aliases the backing slice of s`
}

func useAfterReleaseSliced(p *bufpool.Pool) byte {
	s := p.Get()
	b := s.Bytes()[:8]
	s.Release()
	return b[0] // want `b aliases the backing slice of s`
}

func bytesCallAfterRelease(p *bufpool.Pool) []byte {
	s := p.Get()
	s.ReleaseAt(0)   // quarantined release is still a release
	return s.Bytes() // want `s.Bytes after s was released`
}

func refViewAfterRelease(r bufpool.Ref) byte {
	b := r.B
	r.Release()
	return b[0] // want `b aliases the backing slice of r`
}

func refFieldAfterRelease(r bufpool.Ref) []byte {
	r.Release()
	return r.B // want `r.B after r was released`
}

func goodUseBeforeRelease(p *bufpool.Pool) byte {
	s := p.Get()
	b := s.Bytes()
	v := b[0]
	s.Release()
	return v
}

func goodCopyOut(p *bufpool.Pool) []byte {
	s := p.Get()
	out := append([]byte(nil), s.Bytes()...)
	s.Release()
	return out
}

// A deferred Release runs at function exit, so the slice stays valid for
// the whole body: the pass must not treat the defer's textual position as
// the release point.
func goodDeferredRelease(p *bufpool.Pool) byte {
	s := p.Get()
	defer s.Release()
	b := s.Bytes()
	return b[0]
}

func allowed(p *bufpool.Pool) byte {
	s := p.Get()
	s.Retain()
	b := s.Bytes()
	s.Release()
	//slimio:allow retainbuf fixture: the Retain above still holds the bytes
	v := b[0]
	s.Release()
	return v
}
