// Fixture for the retainbuf pass: uses of a pooled backing slice after
// Release fire, uses before (or under a still-held reference with an allow
// comment) do not.
package a

import "github.com/slimio/slimio/internal/bufpool"

func useAfterRelease(p *bufpool.Pool) byte {
	s := p.Get()
	b := s.Bytes()
	s.Release()
	return b[0] // want `b aliases the backing slice of s`
}

func useAfterReleaseSliced(p *bufpool.Pool) byte {
	s := p.Get()
	b := s.Bytes()[:8]
	s.Release()
	return b[0] // want `b aliases the backing slice of s`
}

func bytesCallAfterRelease(p *bufpool.Pool) []byte {
	s := p.Get()
	s.ReleaseAt(0)   // quarantined release is still a release
	return s.Bytes() // want `s.Bytes after s was released`
}

func refViewAfterRelease(r bufpool.Ref) byte {
	b := r.B
	r.Release()
	return b[0] // want `b aliases the backing slice of r`
}

func refFieldAfterRelease(r bufpool.Ref) []byte {
	r.Release()
	return r.B // want `r.B after r was released`
}

func goodUseBeforeRelease(p *bufpool.Pool) byte {
	s := p.Get()
	b := s.Bytes()
	v := b[0]
	s.Release()
	return v
}

func goodCopyOut(p *bufpool.Pool) []byte {
	s := p.Get()
	out := append([]byte(nil), s.Bytes()...)
	s.Release()
	return out
}

// A deferred Release runs at function exit, so the slice stays valid for
// the whole body: the pass must not treat the defer's textual position as
// the release point.
func goodDeferredRelease(p *bufpool.Pool) byte {
	s := p.Get()
	defer s.Release()
	b := s.Bytes()
	return b[0]
}

// The alias ends when the slice variable is re-assigned: a use of the new
// value after Release must not fire (the source-order heuristic this pass
// replaced reported it).
func goodReassignedSlice(p *bufpool.Pool) byte {
	s := p.Get()
	b := s.Bytes()
	v := b[0]
	s.Release()
	b = []byte{v}
	return b[0]
}

// A Release on one branch must not poison a use on the other: the paths are
// exclusive, so the use never observes recycled bytes.
func goodBranchIsolatedRelease(p *bufpool.Pool, c bool) byte {
	s := p.Get()
	b := s.Bytes()
	if c {
		s.Release()
		return 0
	}
	v := b[0]
	s.Release()
	return v
}

// A Release late in a loop body reaches the next iteration's use over the
// back edge — textual order says the use comes first, the flow says it does
// not.
func loopCarriedRelease(p *bufpool.Pool, n int) byte {
	s := p.Get()
	b := s.Bytes()
	var v byte
	for i := 0; i < n; i++ {
		v = b[0] // want `b aliases the backing slice of s`
		s.Release()
	}
	return v
}

func allowed(p *bufpool.Pool) byte {
	s := p.Get()
	s.Retain()
	b := s.Bytes()
	s.Release()
	//slimio:allow retainbuf fixture: the Retain above still holds the bytes
	v := b[0]
	s.Release()
	return v
}
