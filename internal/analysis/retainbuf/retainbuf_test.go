package retainbuf_test

import (
	"testing"

	"github.com/slimio/slimio/internal/analysis/analysistest"
	"github.com/slimio/slimio/internal/analysis/retainbuf"
)

func TestRetainbuf(t *testing.T) {
	analysistest.Run(t, "./testdata/src/a", retainbuf.Analyzer)
}
