// Fixture functions for the CFG golden-dump test. Parsed only — never
// compiled — so the declarations are free to reference undefined helpers.
package funcs

func ifElse(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}

func shortCircuit(a, b, c bool) int {
	if a && (b || !c) {
		return 1
	}
	return 0
}

func forLoop(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

func rangeLoop(xs []int) int {
	sum := 0
	for i, v := range xs {
		_ = i
		sum += v
	}
	return sum
}

func switchCases(x int) string {
	switch y := x * 2; y {
	case 0:
		return "zero"
	case 1, 2:
		fallthrough
	case 3:
		return "small"
	default:
		return "big"
	}
}

func selectCases(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
		return 0
	default:
		return -1
	}
}

func labeledLoops(grid [][]int) int {
outer:
	for _, row := range grid {
		for _, v := range row {
			if v == 0 {
				continue outer
			}
			if v < 0 {
				break outer
			}
		}
	}
	return 1
}

func deferRelease(p pool) byte {
	s := p.Get()
	defer s.Release()
	b := s.Bytes()
	return b[0]
}

func panicPath(x int) int {
	if x < 0 {
		panic("negative")
	}
	return x
}

func gotoRetry(n int) int {
	tries := 0
retry:
	tries++
	if tries < n {
		goto retry
	}
	return tries
}

func infinite(c chan int) {
	for {
		<-c
	}
}
