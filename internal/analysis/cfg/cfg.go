// Package cfg constructs intraprocedural control-flow graphs from go/ast
// function bodies, built only on the standard library (it deliberately
// mirrors the shape of golang.org/x/tools/go/cfg so passes read familiarly).
//
// The graph is a list of basic blocks holding "atomic" nodes — simple
// statements and the leaf expressions of short-circuit conditions — wired by
// successor edges. Compound statements never appear as nodes; their control
// structure becomes edges:
//
//   - if/for conditions are split at &&, || and ! so each leaf condition
//     lands in the block that actually evaluates it (short-circuit edges);
//   - switch/type-switch clauses each get a block (the dispatch block fans
//     out to every clause; fallthrough edges chain clause bodies);
//   - select clauses each get a block holding their comm statement;
//   - labeled break/continue and goto resolve through the label;
//   - return statements edge to the synthetic Exit block, and calls to the
//     panic builtin edge to the synthetic Panic block, so "function exit"
//     and "abnormal exit" are distinct join points a dataflow pass can treat
//     differently;
//   - range statements appear as a single node in their loop-head block (the
//     node stands for "advance the iterator and assign key/value"); a pass
//     walking block nodes must not descend into the range body, which is
//     wired as ordinary blocks.
//
// Defer is modeled as data, not edges: each *ast.DeferStmt is both a node in
// the block where it executes (registration point) and an entry in
// Graph.Defers, so a pass can apply deferred effects at Exit. This matches
// how the repo's ownership passes consume defers (a deferred Release
// satisfies the release-before-exit obligation without being a release
// point in the body).
//
// Edge order is deterministic and meaningful: a condition block's first
// successor is its true branch, the second its false branch; a dispatch
// block's successors follow source order.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every block; Blocks[0] is Entry, Blocks[1] Exit,
	// Blocks[2] Panic. Remaining blocks appear in construction order
	// (deterministic for a given AST).
	Blocks []*Block
	Entry  *Block
	Exit   *Block // normal function exit (every return, and falling off the end)
	Panic  *Block // abnormal exit (calls to the panic builtin)

	// Defers lists every defer statement in the body, in source order.
	// Deferred calls run at both Exit and Panic; passes decide how to apply
	// them.
	Defers []*ast.DeferStmt
}

// A Block is one basic block.
type Block struct {
	Index int    // position in Graph.Blocks
	Kind  string // construction site, e.g. "if.then", "for.head" (for dumps)
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// New builds the CFG of body. The AST is not modified. body may contain
// syntax only — no type information is needed.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	g.Panic = b.newBlock("panic")
	b.cur = g.Entry
	b.stmtList(body.List)
	b.jump(g.Exit) // falling off the end of the body
	for _, p := range b.gotoPatches {
		if lb, ok := b.labels[p.label]; ok {
			b.edge(p.from, lb)
		}
	}
	return g
}

type gotoPatch struct {
	from  *Block
	label string
}

// targets is one entry of the break/continue resolution stack.
type targets struct {
	label    string
	breaks   *Block
	cont     *Block // nil for switch/select
	fallNext *Block // fallthrough target (switch clauses only)
}

type builder struct {
	g           *Graph
	cur         *Block
	stack       []targets
	labels      map[string]*Block
	gotoPatches []gotoPatch
	pending     string // label attached to the next statement
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump wires the current block to.
func (b *builder) jump(to *Block) { b.edge(b.cur, to) }

// add appends a node to the current block.
func (b *builder) add(n ast.Node) { b.cur.Nodes = append(b.cur.Nodes, n) }

// unreachable parks the builder on a fresh predecessor-less block after a
// terminating statement (return, goto, panic...). Statements that follow are
// dead code but still get blocks, like upstream cfg.
func (b *builder) unreachable() { b.cur = b.newBlock("unreachable") }

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pending
	b.pending = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.newBlock("label." + s.Label.Name)
		b.jump(lb)
		b.cur = lb
		b.labels[s.Label.Name] = lb
		b.pending = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		els := done
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.jump(done)
		}
		b.cur = done

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, done)
		} else {
			b.jump(body)
		}
		b.stack = append(b.stack, targets{label: label, breaks: done, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.stack = b.stack[:len(b.stack)-1]
		if post != nil {
			b.jump(post)
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.cur = done

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.jump(head)
		b.cur = head
		// The RangeStmt node stands for "advance and assign key/value";
		// passes must not descend into its Body (already wired as blocks).
		b.add(s)
		b.jump(body)
		b.jump(done)
		b.stack = append(b.stack, targets{label: label, breaks: done, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.stack = b.stack[:len(b.stack)-1]
		b.jump(head)
		b.cur = done

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(label, s.Body, "switch")

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(label, s.Body, "typeswitch")

	case *ast.SelectStmt:
		done := b.newBlock("select.done")
		dispatch := b.cur
		b.stack = append(b.stack, targets{label: label, breaks: done})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			b.edge(dispatch, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.jump(done)
		}
		b.stack = b.stack[:len(b.stack)-1]
		// An empty select blocks forever: done keeps no predecessors.
		b.cur = done

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
		b.unreachable()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s, false); t != nil {
				b.jump(t)
			}
			b.unreachable()
		case token.CONTINUE:
			if t := b.findTarget(s, true); t != nil {
				b.jump(t)
			}
			b.unreachable()
		case token.GOTO:
			if lb, ok := b.labels[s.Label.Name]; ok {
				b.jump(lb)
			} else {
				b.gotoPatches = append(b.gotoPatches, gotoPatch{b.cur, s.Label.Name})
			}
			b.unreachable()
		case token.FALLTHROUGH:
			for i := len(b.stack) - 1; i >= 0; i-- {
				if b.stack[i].fallNext != nil {
					b.jump(b.stack[i].fallNext)
					break
				}
			}
			b.unreachable()
		}

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanicCall(call) {
			b.jump(b.g.Panic)
			b.unreachable()
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, Go, Send, IncDec, ... — atomic for control flow.
		b.add(s)
	}
}

// switchBody wires the clause blocks of a (type) switch. The dispatch block
// (current) fans out to every clause in source order — and to done when no
// default exists. Each clause block starts with its case expressions;
// fallthrough edges chain a clause to the next clause's block.
func (b *builder) switchBody(label string, body *ast.BlockStmt, kind string) {
	done := b.newBlock(kind + ".done")
	dispatch := b.cur
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		k := kind + ".case"
		if cc.List == nil {
			k = kind + ".default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(k)
		b.edge(dispatch, blocks[i])
	}
	if !hasDefault {
		b.edge(dispatch, done)
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		var fallNext *Block
		if i+1 < len(clauses) {
			fallNext = blocks[i+1]
		}
		b.stack = append(b.stack, targets{label: label, breaks: done, fallNext: fallNext})
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.jump(done)
		b.stack = b.stack[:len(b.stack)-1]
	}
	b.cur = done
}

// findTarget resolves a break/continue (optionally labeled) against the
// enclosing-construct stack.
func (b *builder) findTarget(s *ast.BranchStmt, wantCont bool) *Block {
	for i := len(b.stack) - 1; i >= 0; i-- {
		t := b.stack[i]
		if wantCont && t.cont == nil {
			continue // switch/select: continue passes through to the loop
		}
		if s.Label != nil && t.label != s.Label.Name {
			continue
		}
		if wantCont {
			return t.cont
		}
		return t.breaks
	}
	return nil
}

// cond wires the evaluation of a boolean expression so control reaches t
// when it is true and f when it is false, splitting short-circuit operators
// into their own blocks. Leaf conditions are added as nodes of the block
// that evaluates them; a leaf block's successor order is [true, false].
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		b.cond(e.X, t, f)
		return
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			mid := b.newBlock("cond.and")
			b.cond(e.X, mid, f)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock("cond.or")
			b.cond(e.X, t, mid)
			b.cur = mid
			b.cond(e.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			b.cond(e.X, f, t)
			return
		}
	}
	b.add(e)
	b.jump(t)
	b.jump(f)
}

// isPanicCall recognizes a direct call to the panic builtin. Purely
// syntactic: a local identifier shadowing panic would be misclassified, a
// trade the no-type-info constructor accepts.
func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Dump renders the graph deterministically for golden tests and debugging.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:\n", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, "\t%s\n", NodeString(fset, n))
		}
		if len(blk.Succs) > 0 {
			ids := make([]string, len(blk.Succs))
			for i, s := range blk.Succs {
				ids[i] = fmt.Sprintf("b%d", s.Index)
			}
			fmt.Fprintf(&sb, "\t-> %s\n", strings.Join(ids, " "))
		}
	}
	if len(g.Defers) > 0 {
		sb.WriteString("defers:\n")
		for _, d := range g.Defers {
			fmt.Fprintf(&sb, "\t%s\n", NodeString(fset, d))
		}
	}
	return sb.String()
}

// NodeString renders one block node on a single line.
func NodeString(fset *token.FileSet, n ast.Node) string {
	if r, ok := n.(*ast.RangeStmt); ok {
		// Print only the iteration header; the body is wired as blocks.
		var hdr strings.Builder
		hdr.WriteString("range ")
		if r.Key != nil {
			hdr.WriteString(exprString(fset, r.Key))
			if r.Value != nil {
				hdr.WriteString(", ")
				hdr.WriteString(exprString(fset, r.Value))
			}
			hdr.WriteString(" " + r.Tok.String() + " ")
		}
		hdr.WriteString(exprString(fset, r.X))
		return hdr.String()
	}
	return exprString(fset, n)
}

func exprString(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	// Flatten any multi-line rendering (e.g. a func literal argument).
	s := buf.String()
	s = strings.ReplaceAll(s, "\n", " ")
	s = strings.Join(strings.Fields(s), " ")
	return s
}
