package cfg

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden CFG dump")

// TestGoldenDumps builds the CFG of every fixture function and compares the
// rendered graphs against testdata/funcs.golden byte for byte. Regenerate
// with `go test ./internal/analysis/cfg -run Golden -update`.
func TestGoldenDumps(t *testing.T) {
	got := dumpFixture(t)
	golden := "testdata/funcs.golden"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("CFG dump differs from %s.\ngot:\n%s", golden, got)
	}
}

// TestDumpDeterministic re-parses and re-builds the fixture and demands a
// byte-identical dump — the CFG construction order must not depend on any
// hidden iteration order.
func TestDumpDeterministic(t *testing.T) {
	if a, b := dumpFixture(t), dumpFixture(t); a != b {
		t.Error("two CFG builds of the same source dumped differently")
	}
}

func dumpFixture(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "testdata/funcs.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		fmt.Fprintf(&sb, "func %s:\n", fn.Name.Name)
		sb.WriteString(New(fn.Body).Dump(fset))
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestStructuralInvariants checks edge symmetry and sink shape on every
// fixture graph: Succs/Preds mirror each other, Exit and Panic have no
// successors, and Entry has no predecessors.
func TestStructuralInvariants(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "testdata/funcs.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		g := New(fn.Body)
		if len(g.Entry.Preds) != 0 {
			t.Errorf("%s: entry has predecessors", fn.Name.Name)
		}
		if len(g.Exit.Succs) != 0 || len(g.Panic.Succs) != 0 {
			t.Errorf("%s: exit/panic sink has successors", fn.Name.Name)
		}
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				if !containsEdge(s.Preds, b) {
					t.Errorf("%s: edge b%d->b%d missing from Preds", fn.Name.Name, b.Index, s.Index)
				}
			}
			for _, p := range b.Preds {
				if !containsEdge(p.Succs, b) {
					t.Errorf("%s: pred edge b%d->b%d missing from Succs", fn.Name.Name, p.Index, b.Index)
				}
			}
		}
	}
}

func containsEdge(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}
