package analysistest_test

import (
	"fmt"
	"go/ast"
	"strings"
	"testing"

	"github.com/slimio/slimio/internal/analysis"
	"github.com/slimio/slimio/internal/analysis/analysistest"
)

// marker reports every direct call expression: a trivially predictable
// analyzer, so the self-tests exercise only the harness.
var marker = &analysis.Analyzer{
	Name: "marker",
	Doc:  "report every direct call (analysistest self-test fixture)",
	Run: func(pass *analysis.Pass) (any, error) {
		pass.Inspect(func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok {
					pass.Reportf(call.Pos(), "call of %s", id.Name)
				}
			}
			return true
		})
		return nil, nil
	},
}

// TestMultiFileCounts runs the harness over a two-file fixture using the
// N*"re" count syntax; any mismatch fails this test directly.
func TestMultiFileCounts(t *testing.T) {
	analysistest.Run(t, "./testdata/src/multi", marker)
}

// recorder captures the failures the harness would report.
type recorder struct {
	errors []string
	fatals []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
}

// TestHarnessFlagsMismatches proves the harness actually fails on the two
// mismatch classes: a want with no diagnostic (here via an overcounted
// 2*"re") and a diagnostic with no want.
func TestHarnessFlagsMismatches(t *testing.T) {
	rec := &recorder{}
	analysistest.RunTB(rec, "./testdata/src/bad", marker)
	if len(rec.fatals) != 0 {
		t.Fatalf("unexpected fatal failures: %v", rec.fatals)
	}
	if len(rec.errors) != 2 {
		t.Fatalf("got %d failures, want 2: %v", len(rec.errors), rec.errors)
	}
	var unmatchedWant, unexpectedDiag bool
	for _, e := range rec.errors {
		if strings.Contains(e, "no diagnostic at") {
			unmatchedWant = true
		}
		if strings.Contains(e, "unexpected diagnostic") {
			unexpectedDiag = true
		}
	}
	if !unmatchedWant || !unexpectedDiag {
		t.Errorf("failure classes missing (unmatched want: %v, unexpected diagnostic: %v): %v",
			unmatchedWant, unexpectedDiag, rec.errors)
	}
}
