// A deliberately mismatched fixture for the harness self-test: the counted
// want expects one diagnostic too many, and the second call reports with no
// want at all. RunTB over this package must produce exactly those two
// failures.
package bad

func helper() {}

func caller() {
	helper() // want 2*`call of helper`
	helper()
}
