// The other half of the fixture: expectations in a second file are
// collected and matched the same way.
package multi

func helper() {}

func inner() int { return 1 }

func wrap(x int) int { return x }

func alsoCovered() {
	helper() // want `call of helper`
}
