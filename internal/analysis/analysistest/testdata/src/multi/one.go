// Half of a two-file fixture: the harness must resolve wants and
// diagnostics across every file of the package, and a counted want must
// claim exactly that many diagnostics on its line.
package multi

func caller() int {
	helper()             // want `call of helper`
	return wrap(inner()) // want 2*`call of`
}
