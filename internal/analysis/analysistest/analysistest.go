// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixture source, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line carrying an expected diagnostic gets a trailing comment
//
//	code() // want "regexp" "another regexp"
//
// where each quoted string is a regular expression that must match the
// message of exactly one diagnostic reported on that line. Diagnostics with
// no matching want, and wants with no matching diagnostic, fail the test.
// A count prefix expects the same pattern several times on one line:
//
//	code() // want 2*"regexp"
//
// is shorthand for writing the quoted pattern twice. Fixture packages may
// span multiple files; wants and diagnostics are matched per file and line,
// and package-wide state (such as ownership annotations on helpers in a
// sibling file) resolves across the whole fixture package.
//
// //slimio:allow suppression is applied exactly as the slimio-vet driver
// applies it, so a fixture can prove the suppression path works by pairing
// a violating line with an allow comment and no want. Malformed allow
// directives surface as diagnostics from the pseudo-pass "allow" and can be
// asserted with want comments too.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/slimio/slimio/internal/analysis"
	"github.com/slimio/slimio/internal/analysis/load"
)

// TB is the slice of testing.TB the harness needs. It exists so the
// harness's own tests can substitute a recorder and assert which failures
// Run would report.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// Run loads the fixture package at pattern (a directory path relative to
// the test's working directory, e.g. "./testdata/src/a") and applies a.
func Run(t *testing.T, pattern string, a *analysis.Analyzer) {
	t.Helper()
	RunTB(t, pattern, a)
}

// RunTB is Run with a pluggable failure sink.
func RunTB(t TB, pattern string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Load("", pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", pattern)
	}
	for _, pkg := range pkgs {
		checkPackage(t, pkg, a)
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func checkPackage(t TB, pkg *load.Package, a *analysis.Analyzer) {
	t.Helper()

	wants := collectWants(t, pkg)

	known := map[string]bool{a.Name: true}
	supp, malformed := analysis.NewSuppressions(pkg.Fset, pkg.Files, known)

	var findings []analysis.Finding
	record := func(name string, d analysis.Diagnostic) {
		p := pkg.Fset.Position(d.Pos)
		findings = append(findings, analysis.Finding{
			Analyzer: name, Pos: p, File: p.Filename, Line: p.Line, Col: p.Column,
			Message: d.Message,
		})
	}
	for _, d := range malformed {
		record("allow", d)
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			if supp.Allowed(pkg.Fset, a.Name, d.Pos) {
				return
			}
			record(a.Name, d)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}

	for _, f := range findings {
		if !claimWant(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s matching %q", a.Name, key, w.re)
			}
		}
	}
}

func claimWant(wants map[string][]*want, f analysis.Finding) bool {
	key := fmt.Sprintf("%s:%d", f.File, f.Line)
	for _, w := range wants[key] {
		if !w.matched && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE tokenizes the expectation list: double-quoted or backquoted Go
// string literals, each holding one regexp, optionally prefixed with a
// repeat count as in 2*"re".
var wantRE = regexp.MustCompile("(?:(\\d+)\\*)?(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// collectWants scans fixture comments for `// want "re"...` expectations.
func collectWants(t TB, pkg *load.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, tok := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					count := 1
					if tok[1] != "" {
						n, err := strconv.Atoi(tok[1])
						if err != nil || n < 1 {
							t.Fatalf("%s: bad want count %q", key, tok[1])
						}
						count = n
					}
					unq, err := strconv.Unquote(tok[2])
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, tok[2], err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, unq, err)
					}
					// A counted want is sugar for the same pattern repeated:
					// each instance must claim a distinct diagnostic.
					for i := 0; i < count; i++ {
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}
