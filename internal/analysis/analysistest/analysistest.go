// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixture source, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line carrying an expected diagnostic gets a trailing comment
//
//	code() // want "regexp" "another regexp"
//
// where each quoted string is a regular expression that must match the
// message of exactly one diagnostic reported on that line. Diagnostics with
// no matching want, and wants with no matching diagnostic, fail the test.
//
// //slimio:allow suppression is applied exactly as the slimio-vet driver
// applies it, so a fixture can prove the suppression path works by pairing
// a violating line with an allow comment and no want. Malformed allow
// directives surface as diagnostics from the pseudo-pass "allow" and can be
// asserted with want comments too.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/slimio/slimio/internal/analysis"
	"github.com/slimio/slimio/internal/analysis/load"
)

// Run loads the fixture package at pattern (a directory path relative to
// the test's working directory, e.g. "./testdata/src/a") and applies a.
func Run(t *testing.T, pattern string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := load.Load("", pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", pattern)
	}
	for _, pkg := range pkgs {
		checkPackage(t, pkg, a)
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func checkPackage(t *testing.T, pkg *load.Package, a *analysis.Analyzer) {
	t.Helper()

	wants := collectWants(t, pkg)

	known := map[string]bool{a.Name: true}
	supp, malformed := analysis.NewSuppressions(pkg.Fset, pkg.Files, known)

	var findings []analysis.Finding
	record := func(name string, d analysis.Diagnostic) {
		p := pkg.Fset.Position(d.Pos)
		findings = append(findings, analysis.Finding{
			Analyzer: name, Pos: p, File: p.Filename, Line: p.Line, Col: p.Column,
			Message: d.Message,
		})
	}
	for _, d := range malformed {
		record("allow", d)
	}
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			if supp.Allowed(pkg.Fset, a.Name, d.Pos) {
				return
			}
			record(a.Name, d)
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer error: %v", a.Name, err)
	}

	for _, f := range findings {
		if !claimWant(wants, f) {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic at %s matching %q", a.Name, key, w.re)
			}
		}
	}
}

func claimWant(wants map[string][]*want, f analysis.Finding) bool {
	key := fmt.Sprintf("%s:%d", f.File, f.Line)
	for _, w := range wants[key] {
		if !w.matched && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE tokenizes the expectation list: double-quoted or backquoted Go
// string literals, each holding one regexp.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// collectWants scans fixture comments for `// want "re"...` expectations.
func collectWants(t *testing.T, pkg *load.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRE.FindAllString(text[len("want "):], -1) {
					unq, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, q, err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, unq, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}
