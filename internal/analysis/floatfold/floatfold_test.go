package floatfold_test

import (
	"testing"

	"github.com/slimio/slimio/internal/analysis/analysistest"
	"github.com/slimio/slimio/internal/analysis/floatfold"
)

func TestFloatfold(t *testing.T) {
	analysistest.Run(t, "./testdata/src/a", floatfold.Analyzer)
}
