// Package floatfold flags order-dependent floating-point accumulation over
// map iteration.
package floatfold

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/slimio/slimio/internal/analysis"
)

// Doc's first line is the summary; the rest is the -explain rationale.
const Doc = `flag floating-point accumulation inside range-over-map loops

Floating-point addition and multiplication are not associative: folding the
same set of float64 values in two different orders can differ in the last
ulp, and map iteration order changes every run. A metrics table or figure
cell computed by accumulating floats over a map would therefore flip its
low bits between runs — breaking byte-identical output in a way that is
practically impossible to debug after the fact. Accumulate over a sorted
key slice, accumulate integers (the metrics package's histograms and
counters are integer-exact for this reason), or restructure so the fold
order is fixed. Suppress an intentional exception with
//slimio:allow floatfold <reason>.`

// Analyzer is the floatfold pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatfold",
	Doc:  Doc,
	Run:  run,
}

var foldOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true,
}

func run(pass *analysis.Pass) (any, error) {
	pass.Inspect(func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !analysis.IsMapType(pass.TypesInfo, rng.X) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if isFloatFold(pass.TypesInfo, asg) {
				pass.Reportf(asg.Pos(),
					"floating-point accumulation in map-iteration order is non-associative and changes between runs; fold over sorted keys or accumulate integers")
			}
			return true
		})
		return true
	})
	return nil, nil
}

// isFloatFold recognizes `x op= expr` with float x, and the spelled-out
// `x = x + expr` / `x = expr + x` forms.
func isFloatFold(info *types.Info, asg *ast.AssignStmt) bool {
	if len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, rhs := asg.Lhs[0], asg.Rhs[0]
	if !analysis.IsFloat(info, lhs) {
		return false
	}
	if foldOps[asg.Tok] {
		return true
	}
	if asg.Tok != token.ASSIGN {
		return false
	}
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.MUL, token.SUB, token.QUO:
	default:
		return false
	}
	lobj := refObj(info, lhs)
	if lobj == nil {
		return false
	}
	return refObj(info, bin.X) == lobj || refObj(info, bin.Y) == lobj
}

// refObj resolves a plain identifier (or selector's field) to its object so
// `x = x + y` can match LHS and RHS occurrences of the same variable.
func refObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}
