// Fixture for the floatfold pass: float accumulation in map order fires
// (compound and spelled-out forms, locals and fields), integer folds and
// slice iteration do not, and //slimio:allow suppresses.
package a

func badSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation`
	}
	return total
}

func badSpelledOut(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation`
	}
	return total
}

func badProduct(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `floating-point accumulation`
	}
	return p
}

type stats struct{ mean float64 }

func badField(m map[string]float64, s *stats) {
	for _, v := range m {
		s.mean += v / float64(len(m)) // want `floating-point accumulation`
	}
}

func goodIntegers(m map[string]int64) int64 {
	var total int64
	for _, v := range m { // integer addition is exact in any order
		total += v
	}
	return total
}

func goodSlice(vals []float64) float64 {
	var total float64
	for _, v := range vals { // slice order is fixed; fold order is stable
		total += v
	}
	return total
}

func goodNonFold(m map[string]float64) float64 {
	var last float64
	for _, v := range m {
		last = v * 2 // overwrite, not accumulation (still order-dependent, but not a fold)
	}
	return last
}

func allowed(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//slimio:allow floatfold fixture: proves the suppression path works
		total += v
	}
	return total
}
