// Package globalrand forbids process-global randomness in deterministic
// packages.
package globalrand

import (
	"go/ast"

	"github.com/slimio/slimio/internal/analysis"
)

// Doc's first line is the summary; the rest is the -explain rationale.
const Doc = `forbid global math/rand state and crypto/rand in deterministic packages

Reproducing the paper's results depends on every random draw flowing from an
explicitly seeded *rand.Rand owned by the component drawing it (workload
generator, fault plan, SSD latency jitter). The top-level math/rand
functions share one process-global source: any draw from it is perturbed by
unrelated code and by package initialization order, silently breaking
bit-identical replay. crypto/rand is nondeterministic by design and is never
acceptable in simulation code. Constructors (rand.New, rand.NewSource,
rand.NewZipf) remain allowed — they are how the seeded sources are built.
Suppress an intentional exception with //slimio:allow globalrand <reason>.`

// forbidden lists the math/rand package-level functions that draw from (or
// mutate) the shared global source.
var forbidden = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings of the same global draws.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

var randPkgs = map[string]bool{"math/rand": true, "math/rand/v2": true}

// Analyzer is the globalrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  Doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if imp, ok := analysis.Imports(f, "crypto/rand"); ok {
			pass.Reportf(imp.Pos(),
				"crypto/rand is nondeterministic; deterministic packages must draw from a seeded *rand.Rand")
		}
	}
	pass.Inspect(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name := analysis.PkgFuncRef(pass.TypesInfo, sel)
		if randPkgs[pkg] && forbidden[name] {
			pass.Reportf(sel.Pos(),
				"rand.%s draws from the process-global source; use an explicitly seeded *rand.Rand", name)
		}
		return true
	})
	return nil, nil
}
