package globalrand_test

import (
	"testing"

	"github.com/slimio/slimio/internal/analysis/analysistest"
	"github.com/slimio/slimio/internal/analysis/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, "./testdata/src/a", globalrand.Analyzer)
}
