// Fixture for the globalrand pass: global-source draws and crypto/rand
// fire, explicitly seeded sources do not, and //slimio:allow suppresses.
package a

import (
	crand "crypto/rand" // want `crypto/rand is nondeterministic`
	"math/rand"
)

func bad() {
	_ = rand.Intn(10)                  // want `rand.Intn draws from the process-global source`
	_ = rand.Int()                     // want `rand.Int draws from the process-global source`
	_ = rand.Float64()                 // want `rand.Float64 draws from the process-global source`
	_ = rand.Int63n(7)                 // want `rand.Int63n draws from the process-global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle draws from the process-global source`
	var b [8]byte
	_, _ = crand.Read(b[:]) // the import itself is the finding
}

func badReference() {
	f := rand.Float64 // want `rand.Float64 draws from the process-global source`
	_ = f
}

func good() {
	// The constructors build the explicitly seeded sources the contract
	// requires; drawing from r is deterministic.
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(10)
	z := rand.NewZipf(r, 1.1, 1, 100)
	_ = z.Uint64()
}

func allowed() {
	//slimio:allow globalrand fixture: proves the suppression path works
	_ = rand.Int()
}
