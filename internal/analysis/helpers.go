package analysis

import (
	"go/ast"
	"go/types"
)

// PkgFuncRef resolves expr as a reference to a package-level function or
// variable of an imported package (e.g. the `time.Now` in `time.Now()` or
// in `f := time.Now`). It returns the package path and object name, or
// ("", "") when expr is not such a reference.
func PkgFuncRef(info *types.Info, expr ast.Expr) (pkgPath, name string) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	if _, isPkg := info.Uses[ident].(*types.PkgName); !isPkg {
		return "", ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// NamedTypePath resolves t (through pointers and aliases) to a named type's
// package path and name, or ("", "") for unnamed types.
func NamedTypePath(t types.Type) (pkgPath, name string) {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}

// IsMapType reports whether expr's type (per info) is a map.
func IsMapType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// IsFloat reports whether expr's type (per info) has a floating-point
// underlying kind.
func IsFloat(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// Imports reports whether the file imports the given path, returning the
// import spec when it does.
func Imports(file *ast.File, path string) (*ast.ImportSpec, bool) {
	for _, imp := range file.Imports {
		if imp.Path != nil && imp.Path.Value == `"`+path+`"` {
			return imp, true
		}
	}
	return nil, false
}
