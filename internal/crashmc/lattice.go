package crashmc

import (
	"sort"

	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// CutPoint is one candidate crash instant, labelled with the event
// boundary that produced it. Two boundaries at the same virtual instant
// freeze the same device state, so the lattice is deduplicated by T; the
// label is for reports only.
type CutPoint struct {
	T    sim.Time
	Kind string
}

// latticeRecorder harvests candidate crash instants. It implements
// fault.Recorder for the device-level boundaries (page programs with their
// torn window, block erases — GC valid-copy migrations are plain programs
// and erases, so they are captured automatically) and additionally receives
// the driver's client-visible return instants (WAL append/sync/rotate,
// snapshot write/commit — the uring CQ-reap chain surfaces as exactly these
// returns) through mark.
//
// For a boundary at t it emits both t-1 and t: a cut at a program's
// completion instant keeps the page, one tick earlier tears it, and the
// same pre/post split brackets issue instants and acknowledgement returns.
type latticeRecorder struct {
	points []CutPoint
}

func (l *latticeRecorder) add(t sim.Time, kind string) {
	if t > 1 {
		l.points = append(l.points, CutPoint{T: t - 1, Kind: kind + ".pre"})
	}
	if t > 0 {
		l.points = append(l.points, CutPoint{T: t, Kind: kind})
	}
}

// RecordRead implements fault.Recorder. Reads do not change durable state,
// so cutting around them adds replay cost without adding distinct
// outcomes; they are not harvested.
func (l *latticeRecorder) RecordRead(now sim.Time, ppa nand.PPA) {}

// RecordProgram implements fault.Recorder.
func (l *latticeRecorder) RecordProgram(start, done sim.Time, ppa nand.PPA) {
	l.add(start, "program.start")
	l.add(done, "program.done")
}

// RecordErase implements fault.Recorder.
func (l *latticeRecorder) RecordErase(now sim.Time, die, block int) {
	l.add(now, "erase")
}

// mark is the driver-side hook for client-visible instants.
func (l *latticeRecorder) mark(kind string, t sim.Time) { l.add(t, kind) }

// buildLattice orders the harvested points, appends the natural end of the
// run (a crash after quiescence), and deduplicates by instant. Points
// outside (0, end] are dropped: the engine cannot stop before time zero,
// and nothing happens past the end.
func buildLattice(points []CutPoint, end sim.Time) []CutPoint {
	pts := make([]CutPoint, 0, len(points)+1)
	pts = append(pts, points...)
	pts = append(pts, CutPoint{T: end, Kind: "end"})
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].T != pts[j].T {
			return pts[i].T < pts[j].T
		}
		return pts[i].Kind < pts[j].Kind
	})
	out := pts[:0]
	var last sim.Time = -1
	for _, p := range pts {
		if p.T <= 0 || p.T > end || p.T == last {
			continue
		}
		out = append(out, p)
		last = p.T
	}
	return out
}

// sampleLattice picks at most budget points by deterministic stride
// sampling (index i maps to i*len/budget), preserving order and always
// covering the full span. budget <= 0 selects the whole lattice.
func sampleLattice(lattice []CutPoint, budget int) []CutPoint {
	if budget <= 0 || budget >= len(lattice) {
		return lattice
	}
	out := make([]CutPoint, 0, budget)
	for i := 0; i < budget; i++ {
		out = append(out, lattice[i*len(lattice)/budget])
	}
	return out
}
