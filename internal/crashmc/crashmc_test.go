package crashmc

import (
	"reflect"
	"testing"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/wal"
)

// TestLatticeEnumerationAndSeedCorpus: the acceptance bar — on the smoke
// workload each backend's lattice holds at least 200 distinct crash
// points, a stride sample of them replays with zero oracle violations, and
// the sampled cuts actually tear pages (the checker is exercising the
// window it claims to).
func TestLatticeEnumerationAndSeedCorpus(t *testing.T) {
	budget := 256
	if testing.Short() {
		budget = 24
	}
	for _, tgt := range Targets {
		t.Run(tgt.String(), func(t *testing.T) {
			ctr := &metrics.Counter{}
			res, err := Check(Config{
				Target:   tgt,
				Workload: Workload{Seed: 1, Ops: DefaultOps},
				Budget:   budget,
				Metrics:  ctr,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.LatticeSize < 200 {
				t.Errorf("lattice has %d distinct crash points, want >= 200", res.LatticeSize)
			}
			if res.CutsChecked != budget {
				t.Errorf("checked %d cuts, want %d", res.CutsChecked, budget)
			}
			for _, v := range res.Violations {
				t.Errorf("oracle violation: %v", &v)
			}
			if res.Faults.TornPrograms == 0 {
				t.Error("no sampled cut tore a page: the stride missed every program window")
			}
			if got := ctr.Get("crashmc.cuts_checked"); got != int64(budget) {
				t.Errorf("counter crashmc.cuts_checked = %d, want %d", got, budget)
			}
			if got := ctr.Get("fault.torn_program"); got != res.Faults.TornPrograms {
				t.Errorf("counter fault.torn_program = %d, want %d (Stats.AddTo wiring)", got, res.Faults.TornPrograms)
			}
		})
	}
}

// TestCheckDeterminism: the same config must reproduce the same lattice,
// the same faults, and the same (empty) violation list, bit for bit.
func TestCheckDeterminism(t *testing.T) {
	for _, tgt := range Targets {
		t.Run(tgt.String(), func(t *testing.T) {
			cfg := Config{Target: tgt, Workload: Workload{Seed: 7, Ops: 60}, Budget: 10}
			a, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Check(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("not deterministic:\n first %+v\nsecond %+v", a, b)
			}
		})
	}
}

// TestMutationCaughtShrunkAndReplayed is the checker's mutation test: an
// injected ack-without-sync bug must be caught, the shrinker must cut the
// failing schedule to at most a quarter of the original length, and the
// serialized repro must replay to the identical violation.
func TestMutationCaughtShrunkAndReplayed(t *testing.T) {
	const ops = 40
	for _, tgt := range Targets {
		t.Run(tgt.String(), func(t *testing.T) {
			w := Workload{Seed: 3, Ops: ops, Mutation: MutAckOnAppend}
			res, err := Check(Config{Target: tgt, Workload: w, StopAtFirst: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) == 0 {
				t.Fatalf("mutation not caught: %d cuts checked, lattice %d", res.CutsChecked, res.LatticeSize)
			}
			v := res.Violations[0]
			if v.Code != CodeAckedLost {
				t.Fatalf("mutation surfaced as %q, want %q: %v", v.Code, CodeAckedLost, &v)
			}

			shrunk, sv, err := Shrink(tgt, w, v.Cut)
			if err != nil {
				t.Fatal(err)
			}
			if shrunk.Ops > ops/4 {
				t.Errorf("shrunk schedule has %d ops, want <= %d (25%% of %d)", shrunk.Ops, ops/4, ops)
			}

			rep := NewRepro(tgt, shrunk, v.Cut, *sv)
			data, err := rep.Encode()
			if err != nil {
				t.Fatal(err)
			}
			back, err := DecodeRepro(data)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.Replay()
			if err != nil {
				t.Fatal(err)
			}
			if got == nil {
				t.Fatal("repro replay did not fail the oracle")
			}
			if *got != back.Violation {
				t.Fatalf("repro not bit-identical:\n want %+v\n  got %+v", back.Violation, *got)
			}
		})
	}
}

// TestOracleRules exercises each oracle clause on a synthetic history, so
// a regression in one rule is named directly rather than surfacing as an
// unexplained enumeration failure.
func TestOracleRules(t *testing.T) {
	rec := func(i byte) wal.Record {
		return wal.Record{Op: wal.OpSet, Key: []byte{'k', i}, Value: []byte{'v', i}}
	}
	encode := func(recs ...wal.Record) []byte {
		var buf []byte
		for _, r := range recs {
			buf = wal.AppendRecord(buf, r.Op, r.Key, r.Value)
		}
		return buf
	}
	hist := &History{Ops: []wal.Record{rec(0), rec(1), rec(2)}, Acked: 2}
	clean := func() *imdb.Recovered {
		return &imdb.Recovered{WALSegments: [][]byte{encode(rec(0), rec(1))}, WALTruncatedAt: -1}
	}

	cases := []struct {
		name string
		hist *History
		rec  *imdb.Recovered
		want string // violation code, "" for pass
	}{
		{"clean-prefix", hist, clean(), ""},
		{"acked-lost", hist,
			&imdb.Recovered{WALSegments: [][]byte{encode(rec(0))}, WALTruncatedAt: -1},
			CodeAckedLost},
		{"alien-record", hist,
			&imdb.Recovered{WALSegments: [][]byte{encode(rec(0), rec(9))}, WALTruncatedAt: -1},
			CodeAlienRecord},
		{"over-recovered", hist,
			&imdb.Recovered{WALSegments: [][]byte{encode(rec(0), rec(1), rec(2), rec(3))}, WALTruncatedAt: -1},
			CodeOverRecovered},
		{"truncation-without-note", hist, func() *imdb.Recovered {
			r := clean()
			r.WALTruncatedAt = 10
			return r
		}(), CodeDegradedInconsistent},
		{"truncation-with-note", hist, func() *imdb.Recovered {
			r := clean()
			r.WALTruncatedAt = 10
			r.Degraded = []string{"wal segment 0: corrupt frame at byte 10"}
			return r
		}(), ""},
		{"snapshot-lost", &History{
			Ops:   hist.Ops,
			Acked: 2,
			Snaps: []*SnapEvent{{Img: []byte{1, 2, 3}, Committed: true}},
		}, clean(), CodeSnapshotLost},
		{"snapshot-alien", &History{
			Ops:   hist.Ops,
			Acked: 2,
			Snaps: []*SnapEvent{{Img: []byte{1, 2, 3}, Committed: true}},
		}, func() *imdb.Recovered {
			r := clean()
			r.HaveSnapshot = true
			r.Kind = imdb.WALSnapshot
			r.Snapshot = []byte{9, 9, 9}
			return r
		}(), CodeSnapshotAlien},
		{"snapshot-in-flight-may-vanish", &History{
			Ops:   hist.Ops,
			Acked: 2,
			Snaps: []*SnapEvent{
				{Img: []byte{1, 2, 3}, Committed: true},
				{Img: []byte{4, 5, 6}, CommitInFlight: true},
			},
		}, clean(), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := checkOracle(SlimIO, 1000, tc.hist, tc.rec)
			switch {
			case tc.want == "" && v != nil:
				t.Fatalf("unexpected violation: %v", v)
			case tc.want != "" && v == nil:
				t.Fatalf("want %q violation, got none", tc.want)
			case tc.want != "" && v.Code != tc.want:
				t.Fatalf("want %q, got %q: %v", tc.want, v.Code, v)
			}
		})
	}
}

// TestSampleLattice: stride sampling is deterministic, ordered, within
// budget, and spans the full lattice.
func TestSampleLattice(t *testing.T) {
	lattice := make([]CutPoint, 100)
	for i := range lattice {
		lattice[i] = CutPoint{T: sim.Time(10 * (i + 1)), Kind: "x"}
	}
	got := sampleLattice(lattice, 7)
	if len(got) != 7 {
		t.Fatalf("sampled %d, want 7", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].T <= got[i-1].T {
			t.Fatalf("sample not strictly ordered at %d", i)
		}
	}
	if got[0] != lattice[0] {
		t.Errorf("sample does not start at the lattice head")
	}
	if all := sampleLattice(lattice, 0); len(all) != len(lattice) {
		t.Errorf("budget 0 must select the whole lattice")
	}
}
