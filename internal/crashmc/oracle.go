package crashmc

import (
	"bytes"
	"fmt"
	"hash/fnv"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/wal"
)

// Violation codes, most severe first in enumeration reports.
const (
	// CodeAckedLost: a record covered by a returned WALSync (or, under
	// MutAckOnAppend, a claimed ack) did not survive recovery.
	CodeAckedLost = "acked-lost"
	// CodeAlienRecord: recovery produced a record that diverges from the
	// issued sequence — an invented, reordered, or corrupted value.
	CodeAlienRecord = "alien-record"
	// CodeOverRecovered: recovery produced more records than were ever
	// appended.
	CodeOverRecovered = "over-recovered"
	// CodeSnapshotLost: a snapshot whose Commit returned before the cut
	// (with no later commit racing it) was not recovered.
	CodeSnapshotLost = "snapshot-lost"
	// CodeSnapshotAlien: the recovered snapshot matches no committed or
	// committing image.
	CodeSnapshotAlien = "snapshot-alien"
	// CodeDegradedInconsistent: the damage report disagrees with itself
	// (a WAL truncation offset without a Degraded note, or out of range).
	CodeDegradedInconsistent = "degraded-inconsistent"
)

// Violation is one durability-contract breach at a specific cut. Every
// field is comparable, so two violations from independent replays can be
// checked for bit-identical equality — the repro-file contract.
type Violation struct {
	Target    string   `json:"target"`
	Cut       sim.Time `json:"cut"`
	Code      string   `json:"code"`
	Detail    string   `json:"detail"`
	Appended  int      `json:"appended"`
	Acked     int      `json:"acked"`
	Recovered int      `json:"recovered"`
	// Digest is an FNV-1a fold of the recovered record sequence.
	Digest uint64 `json:"digest"`
}

func (v *Violation) String() string {
	return fmt.Sprintf("%s @%v %s: %s (appended %d, acked %d, recovered %d, digest %#x)",
		v.Target, v.Cut, v.Code, v.Detail, v.Appended, v.Acked, v.Recovered, v.Digest)
}

// decodeSegments concatenates the durable record prefixes of the recovered
// WAL segments in order.
func decodeSegments(rec *imdb.Recovered) []wal.Record {
	var out []wal.Record
	for _, seg := range rec.WALSegments {
		rs, _ := wal.DecodeAll(seg)
		out = append(out, rs...)
	}
	return out
}

// digestRecords folds a record sequence for cheap bit-identity checks.
func digestRecords(recs []wal.Record) uint64 {
	h := fnv.New64a()
	for _, rc := range recs {
		h.Write([]byte{byte(rc.Op)})
		h.Write(rc.Key)
		h.Write(rc.Value)
	}
	return h.Sum64()
}

// checkOracle judges one recovered state against the client-visible
// history at the cut. The contract (DESIGN.md §6):
//
//   - prefix rule: the recovered record sequence must be an exact prefix
//     of the issued sequence — unacked writes recover to old-or-new, never
//     to an alien value, and never reorder;
//   - ack rule: the prefix is no shorter than the acked count — every
//     write whose covering sync returned before the cut survives;
//   - snapshot rule: a recovered snapshot must byte-match a committed or
//     commit-in-flight image, and the latest committed image is mandatory
//     unless a later commit was racing the cut (in that window the kernel
//     path's delete-then-rename may legitimately leave neither);
//   - damage-report rule: a WAL truncation offset must be in range and
//     carry a Degraded note.
//
// It returns nil when every rule holds.
func checkOracle(tgt Target, cut sim.Time, h *History, rec *imdb.Recovered) *Violation {
	recs := decodeSegments(rec)
	mk := func(code, detail string) *Violation {
		return &Violation{
			Target:    tgt.String(),
			Cut:       cut,
			Code:      code,
			Detail:    detail,
			Appended:  len(h.Ops),
			Acked:     h.Acked,
			Recovered: len(recs),
			Digest:    digestRecords(recs),
		}
	}

	// Prefix rule.
	if len(recs) > len(h.Ops) {
		return mk(CodeOverRecovered,
			fmt.Sprintf("recovered %d records, only %d were ever appended", len(recs), len(h.Ops)))
	}
	for i, rc := range recs {
		if rc.Op != h.Ops[i].Op || !bytes.Equal(rc.Key, h.Ops[i].Key) || !bytes.Equal(rc.Value, h.Ops[i].Value) {
			return mk(CodeAlienRecord,
				fmt.Sprintf("record %d diverges from the issued sequence (key %q vs %q)", i, rc.Key, h.Ops[i].Key))
		}
	}

	// Ack rule.
	if len(recs) < h.Acked {
		return mk(CodeAckedLost,
			fmt.Sprintf("recovered %d records, but %d were acked durable", len(recs), h.Acked))
	}

	// Snapshot rule.
	lastCommitted := -1
	commitInFlight := false
	for i, se := range h.Snaps {
		if se.Committed {
			lastCommitted = i
		}
		if se.CommitInFlight {
			commitInFlight = true
		}
	}
	if rec.HaveSnapshot {
		if rec.Kind != imdb.WALSnapshot {
			return mk(CodeSnapshotAlien,
				fmt.Sprintf("recovered a %v snapshot, but only wal snapshots were written", rec.Kind))
		}
		ok := false
		for _, se := range h.Snaps {
			if (se.Committed || se.CommitInFlight) && bytes.Equal(rec.Snapshot, se.Img) {
				ok = true
				break
			}
		}
		if !ok {
			return mk(CodeSnapshotAlien,
				fmt.Sprintf("recovered %d-byte snapshot matches no committed or committing image", len(rec.Snapshot)))
		}
	}
	if lastCommitted >= 0 && !commitInFlight {
		// No commit was racing the cut, so the last acked image is
		// mandatory: Commit's return promised it durable.
		if !rec.HaveSnapshot {
			return mk(CodeSnapshotLost,
				fmt.Sprintf("snapshot %d committed before the cut but none recovered", lastCommitted))
		}
		if !bytes.Equal(rec.Snapshot, h.Snaps[lastCommitted].Img) {
			return mk(CodeSnapshotLost,
				fmt.Sprintf("recovered snapshot is not the last committed image (index %d)", lastCommitted))
		}
	}

	// Damage-report rule.
	if rec.WALTruncatedAt != -1 {
		if rec.WALTruncatedAt < 0 {
			return mk(CodeDegradedInconsistent,
				fmt.Sprintf("WALTruncatedAt = %d is neither -1 nor a valid offset", rec.WALTruncatedAt))
		}
		if len(rec.Degraded) == 0 {
			return mk(CodeDegradedInconsistent,
				fmt.Sprintf("WAL truncated at byte %d but no Degraded note records it", rec.WALTruncatedAt))
		}
	}
	return nil
}
