package crashmc

import (
	"testing"

	"github.com/slimio/slimio/internal/exp"
)

// Ten-seed smoke over the 2-tenant FDP stack: a shared power cut must leave
// every tenant independently recoverable, with each judged by the full
// durability oracle against its own client-visible history.
func TestTenantSeededCrashFDP(t *testing.T) {
	seeds := int64(10)
	if testing.Short() {
		seeds = 4
	}
	var appended, lossy int
	for seed := int64(1); seed <= seeds; seed++ {
		res, vs, err := RunTenantSeed(exp.TenantFDP, seed, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range vs {
			t.Errorf("seed %d: oracle violation: %v", seed, v)
		}
		if len(res.Tenants) != 2 {
			t.Fatalf("seed %d: %d tenant outcomes, want 2", seed, len(res.Tenants))
		}
		for i, u := range res.Tenants {
			appended += u.Appended
			if u.Recovered < u.Appended {
				lossy++
			}
			if u.Recovered < u.Acked {
				// checkOracle flags this too, but assert the headline
				// per-tenant durability bound explicitly.
				t.Errorf("seed %d tenant %d: recovered %d < acked %d", seed, i, u.Recovered, u.Acked)
			}
		}
	}
	if appended == 0 {
		t.Fatal("no tenant appended anything before any cut; harness is inert")
	}
	if lossy == 0 {
		t.Error("no cut ever lost an unsynced tail: every cut landed after quiescence")
	}
}

// The shared-PID baseline runs the identical SlimIO write path, so its
// durability contract is the same even though its placement mixes lifetimes.
func TestTenantSeededCrashSharedBaseline(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		_, vs, err := RunTenantSeed(exp.TenantShared, seed, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range vs {
			t.Errorf("seed %d: oracle violation: %v", seed, v)
		}
	}
}

// Same seed, same cut, same per-tenant recovery — bit for bit.
func TestTenantSeededCrashDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		a, av, err := RunTenantSeed(exp.TenantFDP, seed, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, bv, err := RunTenantSeed(exp.TenantFDP, seed, 2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Cut != b.Cut || len(a.Tenants) != len(b.Tenants) {
			t.Fatalf("seed %d not deterministic:\n first %+v\nsecond %+v", seed, a, b)
		}
		for i := range a.Tenants {
			if a.Tenants[i] != b.Tenants[i] {
				t.Fatalf("seed %d tenant %d not deterministic:\n first %+v\nsecond %+v",
					seed, i, a.Tenants[i], b.Tenants[i])
			}
		}
		if len(av) != len(bv) {
			t.Fatalf("seed %d: oracle verdicts not deterministic: %v vs %v", seed, av, bv)
		}
	}
}
