package crashmc

import (
	"fmt"

	"github.com/slimio/slimio/internal/sim"
)

// Shrink greedily minimizes a failing schedule to a smallest failing one,
// holding the cut instant fixed: first the workload prefix is halved while
// the oracle keeps failing, then walked down one op at a time. The
// simulation prefix before the cut only depends on ops that started before
// it, so the first phase usually collapses straight to the few ops the cut
// can observe; the decrement phase then squeezes whatever remains.
//
// It returns the smallest failing workload and the violation it produces
// (which a repro replay must reproduce bit-identically), or an error if
// the given schedule does not fail at cut in the first place.
func Shrink(tgt Target, w Workload, cut sim.Time) (Workload, *Violation, error) {
	w = w.withDefaults()
	fails := func(ops int) (*Violation, error) {
		w2 := w
		w2.Ops = ops
		out, err := runOnce(tgt, w2, cut, nil, nil)
		if err != nil {
			return nil, err
		}
		return checkOracle(tgt, cut, out.Hist, out.Rec), nil
	}
	best, err := fails(w.Ops)
	if err != nil {
		return w, nil, err
	}
	if best == nil {
		return w, nil, fmt.Errorf("crashmc: shrink: schedule does not fail at cut %v", cut)
	}
	cur := w.Ops
	for cur > 1 {
		v, err := fails(cur / 2)
		if err != nil {
			return w, nil, err
		}
		if v == nil {
			break
		}
		cur, best = cur/2, v
	}
	for cur > 1 {
		v, err := fails(cur - 1)
		if err != nil {
			return w, nil, err
		}
		if v == nil {
			break
		}
		cur, best = cur-1, v
	}
	w.Ops = cur
	return w, best, nil
}
