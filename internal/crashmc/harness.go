// Package crashmc is a deterministic crash-consistency model checker for
// the two persistence backends (internal/core's SlimIO I/O passthru path
// and internal/baseline's kernel path).
//
// Where the PR-1 seeded crash harness sampled one random power-cut instant
// per seed, the checker enumerates the crash-point lattice: a recording
// pass runs the workload once with a passive fault.Plan whose Recorder
// harvests every durability-relevant event boundary — NAND program
// start/completion (the torn-page window), block erases, and the
// client-visible WAL append/sync/rotate and snapshot-commit returns. Every
// distinct instant, plus its immediate predecessor (the torn variant),
// becomes a candidate cut. Each cut is replayed bit-identically — same
// seed, same workload, power pulled at exactly that instant — recovered,
// and judged by a durability oracle built from the client-visible history
// (see oracle.go). On violation a greedy shrinker minimizes the workload
// prefix to a smallest failing schedule, serialized as a repro file that
// cmd/slimio-check replays bit-identically.
//
// Determinism: the checker is strictly serial, uses a local splitmix64
// stream, and never reads the wall clock, so it falls under every
// slimio-vet determinism pass (wallclock/globalrand/rawgoroutine) like any
// other simulation package.
package crashmc

import (
	"bytes"
	"fmt"

	"github.com/slimio/slimio/internal/baseline"
	"github.com/slimio/slimio/internal/core"
	"github.com/slimio/slimio/internal/exp"
	"github.com/slimio/slimio/internal/fault"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/telemetry"
	"github.com/slimio/slimio/internal/wal"
)

// Target selects which backend stack the checker drives.
type Target int

const (
	// SlimIO is the I/O-passthru backend on an FDP SSD (internal/core).
	SlimIO Target = iota
	// Baseline is the kernel-path backend on a conventional SSD
	// (internal/baseline over kernelio's f2fs profile).
	Baseline
)

// Targets lists every checkable target in reporting order.
var Targets = []Target{SlimIO, Baseline}

func (t Target) String() string {
	if t == Baseline {
		return exp.BaselineF2FS.String()
	}
	return exp.SlimIOFDP.String()
}

// Kind maps the target to its experiment-harness stack kind.
func (t Target) Kind() exp.BackendKind {
	if t == Baseline {
		return exp.BaselineF2FS
	}
	return exp.SlimIOFDP
}

// ParseTarget accepts both the short CLI spellings and the stack labels.
func ParseTarget(s string) (Target, error) {
	switch s {
	case "slimio", exp.SlimIOFDP.String():
		return SlimIO, nil
	case "baseline", exp.BaselineF2FS.String():
		return Baseline, nil
	}
	return 0, fmt.Errorf("crashmc: unknown target %q", s)
}

// Mutation deliberately breaks the harness's durability accounting, so the
// checker can prove it detects oracle violations (the model checker's own
// mutation test).
type Mutation int

const (
	// MutNone is the honest harness.
	MutNone Mutation = iota
	// MutAckOnAppend claims durability at WALAppend return without waiting
	// for WALSync — the classic forgot-to-fsync bug. Any cut between an
	// append's return and the covering sync's completion then loses
	// "acked" records, which the oracle must flag.
	MutAckOnAppend
)

// DefaultOps is the standard workload length (matches the PR-1 harness).
const DefaultOps = 160

// Workload derives a deterministic client schedule from a seed: framed WAL
// appends (sizes from the seed stream), syncs, up to three rotations, and
// multi-page WAL-snapshot writes, the same shape as the PR-1 seeded crash
// harness so the seed corpus carries over.
type Workload struct {
	Seed     int64
	Ops      int
	Mutation Mutation
}

// withDefaults fills the zero-value workload length.
func (w Workload) withDefaults() Workload {
	if w.Ops <= 0 {
		w.Ops = DefaultOps
	}
	return w
}

// SnapEvent is the client-visible life of one snapshot write.
type SnapEvent struct {
	// Img is the exact image handed to the sink.
	Img []byte
	// CommitInFlight is true from the Commit call until it returns; in
	// that window a crash may legitimately surface the new image, the
	// previous one, or (kernel path: delete-then-rename) none at all.
	CommitInFlight bool
	// Committed is true once Commit returned: the image was acked durable.
	Committed bool
}

// History is the client-visible record of one run, maintained by the
// driver as it executes; when the engine stops at a cut, the history holds
// exactly what a client had observed by that instant.
type History struct {
	// Ops are the appended records in issue order.
	Ops []wal.Record
	// Acked counts the leading ops covered by a returned WALSync.
	Acked int
	// Snaps are the snapshot writes in issue order.
	Snaps []*SnapEvent
}

// rng returns a local splitmix64 stream; the checker never touches
// math/rand global state (seed reproducibility is the contract under test).
func rng(seed int64) func() uint64 {
	state := uint64(seed)
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// clientState holds the client's WAL write buffer where the harness can
// still reach it after a power cut freezes the client mid-call. A chain in
// the middle of a WALAppend needs no tracking here: both backends stage the
// references they have not yet handed off in their own structures (see
// core.Backend.staged, baseline.Backend.appending), so a frozen call leaves
// nothing reachable only from the client's stack.
type clientState struct {
	buf *wal.Buffer
}

// close releases whatever the (possibly frozen) client still owns.
func (cs *clientState) close() {
	cs.buf.Close()
}

// drive executes the seeded workload against be. mark, when non-nil,
// receives every client-visible return instant for lattice harvesting.
func drive(env *sim.Env, be imdb.Backend, w Workload, pageSize int, cs *clientState, h *History, mark func(kind string, t sim.Time)) {
	next := rng(w.Seed)
	note := func(kind string) {
		if mark != nil {
			mark(kind, env.Now())
		}
	}
	sync := func() bool {
		if err := be.WALSync(env); err != nil {
			return false
		}
		h.Acked = len(h.Ops)
		note("sync.return")
		return true
	}
	rotations := 0
	for i := 0; i < w.Ops; i++ {
		key := []byte(fmt.Sprintf("k%05d", i))
		val := bytes.Repeat([]byte{byte('a' + i%26)}, 40+int(next()%2000))
		cs.buf.Append(wal.OpSet, key, val)
		chain := cs.buf.Drain()
		if err := be.WALAppend(env, chain); err != nil {
			chain.Release() // failed append leaves ownership with the caller
			return
		}
		h.Ops = append(h.Ops, wal.Record{Op: wal.OpSet, Key: key, Value: val})
		if w.Mutation == MutAckOnAppend {
			// Injected oracle bug: claim durability at append return, as
			// an engine that forgot to fsync would.
			h.Acked = len(h.Ops)
		}
		note("append.return")
		r := next() % 100
		if r < 35 && !sync() {
			return
		}
		if r < 6 && rotations < 3 {
			// Sync first so a sealed segment is always fully durable.
			if !sync() {
				return
			}
			if err := be.WALRotate(env); err != nil {
				return
			}
			// Drop the buffer's retained tail so the next append starts on a
			// fresh segment, page-aligned with the new log head.
			cs.buf.Cut()
			rotations++
			note("rotate.return")
		}
		if r >= 94 {
			// A multi-page snapshot write for a cut to land inside.
			sink, err := be.BeginSnapshot(env, imdb.WALSnapshot)
			if err != nil {
				return
			}
			img := bytes.Repeat([]byte{byte(next())}, int(4+next()%12)*pageSize)
			se := &SnapEvent{Img: img}
			h.Snaps = append(h.Snaps, se)
			if err := sink.Write(env, img); err != nil {
				sink.Abort(env)
				return
			}
			note("snap.write.return")
			se.CommitInFlight = true
			if err := sink.Commit(env); err != nil {
				return
			}
			se.CommitInFlight = false
			se.Committed = true
			note("snap.commit.return")
		}
	}
	sync()
}

// Device sizing for checker stacks: small enough that hundreds of replays
// stay cheap, big enough that DefaultGeometry keeps its 16-blocks-per-die
// GC headroom floor.
const (
	deviceBytes = 64 << 20
	slotBytes   = 1 << 20
)

// runOutcome is everything one replay produces: the client-visible history
// up to the cut, the recovered state, and the injected-fault stats.
type runOutcome struct {
	Hist   *History
	Rec    *imdb.Recovered
	Faults fault.Stats
	// End is the cut instant, or the natural end of a full run.
	End sim.Time
}

// runOnce builds a fresh stack for tgt, drives the workload, and recovers.
// cut == 0 runs to completion (the recording pass); cut > 0 pulls power at
// that instant (in-flight programs tear, nothing past it executes) before
// recovering on a fresh engine over the frozen device.
func runOnce(tgt Target, w Workload, cut sim.Time, rec fault.Recorder, mark func(string, sim.Time)) (*runOutcome, error) {
	return runOnceTele(tgt, w, cut, rec, mark, nil)
}

// runOnceTele is runOnce with an optional telemetry cell whose flight ring
// records the replay's per-layer state. Only cut > 0 replays may be
// instrumented: the sampling tick reschedules itself, so a run-to-drain
// engine (cut == 0) would never stop.
func runOnceTele(tgt Target, w Workload, cut sim.Time, rec fault.Recorder, mark func(string, sim.Time), tele *telemetry.Cell) (*runOutcome, error) {
	sc := exp.Scale{
		Name:          "crashmc",
		DeviceBytes:   deviceBytes,
		SlotBytes:     slotBytes,
		FaultRecorder: rec,
	}
	eng := sim.NewEngine()
	st, err := exp.BuildStack(eng, tgt.Kind(), sc)
	if err != nil {
		return nil, err
	}
	// Unwind parked processes so replays do not pile up leaked stacks.
	defer eng.Shutdown()
	if cut > 0 {
		st.ArmPowerCut(cut)
		exp.AttachStackTelemetry(st, tele)
		tele.Start(eng)
	}
	pageSize := st.Dev.PageSize()
	hist := &History{}
	cs := &clientState{buf: wal.NewBuffer(st.Pool())}
	eng.Spawn("client", func(env *sim.Env) {
		drive(env, st.Backend, w, pageSize, cs, hist, mark)
	})
	end := cut
	if cut > 0 {
		eng.RunUntil(cut)
		eng.Stop()
	} else {
		end = eng.Run()
	}
	// Power restored: recovery reads a healthy, frozen device.
	st.Dev.FTL().Array().SetFaultHook(nil)

	eng2 := sim.NewEngine()
	defer eng2.Shutdown()
	var be2 imdb.Backend
	switch tgt {
	case SlimIO:
		nbe, err := core.New(eng2, st.Dev, core.Config{SlotPages: slotBytes / int64(pageSize)})
		if err != nil {
			return nil, fmt.Errorf("crashmc: %s reopen (cut %v): %w", tgt, cut, err)
		}
		be2 = nbe
	case Baseline:
		nbe, err := baseline.Remount(st.FS.Remount(eng2))
		if err != nil {
			return nil, fmt.Errorf("crashmc: %s remount (cut %v): %w", tgt, cut, err)
		}
		be2 = nbe
	default:
		return nil, fmt.Errorf("crashmc: unknown target %d", tgt)
	}
	var recd *imdb.Recovered
	var recErr error
	eng2.Spawn("recover", func(env *sim.Env) {
		recd, recErr = be2.Recover(env)
	})
	eng2.Run()
	if recErr != nil {
		return nil, fmt.Errorf("crashmc: %s recover (cut %v): %w", tgt, cut, recErr)
	}
	if recd == nil {
		return nil, fmt.Errorf("crashmc: %s recovery produced nothing (cut %v)", tgt, cut)
	}
	// Teardown: release everything both stacks (the cut one and the recovery
	// one) still hold, then require the data plane quiescent — a non-zero
	// count is a leaked reference somewhere on the zero-copy write path, and
	// every replay of the crash-point lattice runs this check.
	cs.close()
	switch nbe := be2.(type) {
	case *core.Backend:
		nbe.Close()
	case *baseline.Backend:
		nbe.Close()
	}
	st.Close()
	if n := st.Pool().InFlight(); n != 0 {
		return nil, fmt.Errorf("crashmc: %s: %d pooled segments leaked after teardown (cut %v)", tgt, n, cut)
	}
	st.Pool().Close()
	return &runOutcome{Hist: hist, Rec: recd, Faults: st.Fault.Stats(), End: end}, nil
}

// SeedResult summarizes one seeded crash run; two runs with the same seed
// must be identical (the determinism half of the contract).
type SeedResult struct {
	Cut       sim.Time
	Appended  int
	Acked     int
	Recovered int
	Digest    uint64
	Faults    fault.Stats
}

// RunSeed replicates the PR-1 seeded crash harness on the shared
// model-checker machinery: a recording pass measures the workload's span,
// the seed picks one cut inside it, and the replay is judged by the full
// durability oracle rather than only the WAL-prefix check. It backs the
// deduplicated seed-corpus tests in internal/core and internal/baseline.
func RunSeed(tgt Target, seed int64) (SeedResult, *Violation, error) {
	w := Workload{Seed: seed, Ops: DefaultOps}
	full, err := runOnce(tgt, w, 0, nil, nil)
	if err != nil {
		return SeedResult{}, nil, err
	}
	// A distinct stream for the cut draw, so it is not correlated with the
	// workload's first value-size draw.
	next := rng(^seed)
	cut := sim.Time(1 + next()%uint64(full.End))
	out, err := runOnce(tgt, w, cut, nil, nil)
	if err != nil {
		return SeedResult{}, nil, err
	}
	recs := decodeSegments(out.Rec)
	res := SeedResult{
		Cut:       cut,
		Appended:  len(out.Hist.Ops),
		Acked:     out.Hist.Acked,
		Recovered: len(recs),
		Digest:    digestRecords(recs),
		Faults:    out.Faults,
	}
	return res, checkOracle(tgt, cut, out.Hist, out.Rec), nil
}
