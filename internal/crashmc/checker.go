package crashmc

import (
	"fmt"

	"github.com/slimio/slimio/internal/fault"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/telemetry"
)

// Config parameterizes one model-checking run.
type Config struct {
	Target   Target
	Workload Workload
	// Budget bounds how many cuts are replayed (0 = the whole lattice),
	// selected by deterministic stride sampling so a small CI budget still
	// covers the full span of the run.
	Budget int
	// StopAtFirst stops enumeration at the first violation (in lattice
	// order) — the shrinker and mutation tests want the earliest failing
	// cut, not an exhaustive census.
	StopAtFirst bool
	// Metrics, when non-nil, receives the aggregate injected-fault
	// counters (fault.*) and checker progress counters (crashmc.*).
	Metrics *metrics.Counter
	// FlightDir, when non-empty, attaches a telemetry cell to every replay
	// and dumps its flight ring (the trailing per-layer state samples) there
	// when that replay's recovery violates the durability oracle. The
	// recording pass and the full-run sanity check are not instrumented:
	// their engines run to queue drain, which a sampling tick would prevent.
	FlightDir string
}

// Result is one model-checking run's outcome.
type Result struct {
	Target Target
	// LatticeSize is the number of distinct candidate crash instants
	// harvested from the recording pass.
	LatticeSize int
	// CutsChecked is how many of them were replayed and judged.
	CutsChecked int
	// End is the workload's natural end (the lattice's upper bound).
	End sim.Time
	// Violations are the oracle breaches found, in lattice order.
	Violations []Violation
	// Faults aggregates injected faults (torn pages) across all replays.
	Faults fault.Stats
}

// Check runs the model checker: one recording pass to harvest the
// crash-point lattice, then one bit-identical replay per selected cut,
// each recovered and judged by the durability oracle.
func Check(cfg Config) (*Result, error) {
	w := cfg.Workload.withDefaults()
	lr := &latticeRecorder{}
	full, err := runOnce(cfg.Target, w, 0, lr, lr.mark)
	if err != nil {
		return nil, err
	}
	res := &Result{Target: cfg.Target, End: full.End}

	// Sanity cut zero: with no crash at all, recovery must reproduce the
	// complete history (anything else is a bug regardless of crash points).
	if v := checkOracle(cfg.Target, full.End, full.Hist, full.Rec); v != nil {
		v.Code = "full-run/" + v.Code
		res.Violations = append(res.Violations, *v)
		if cfg.StopAtFirst {
			return res, nil
		}
	}

	var flights *telemetry.Registry
	if cfg.FlightDir != "" {
		flights = telemetry.NewRegistry(0)
		flights.FlightDir = cfg.FlightDir
	}

	lattice := buildLattice(lr.points, full.End)
	res.LatticeSize = len(lattice)
	for _, cp := range sampleLattice(lattice, cfg.Budget) {
		tele := flights.Cell(fmt.Sprintf("%s/cut-%d", cfg.Target, int64(cp.T)))
		out, err := runOnceTele(cfg.Target, w, cp.T, nil, nil, tele)
		if err != nil {
			return nil, err
		}
		res.CutsChecked++
		res.Faults.Add(out.Faults)
		if v := checkOracle(cfg.Target, cp.T, out.Hist, out.Rec); v != nil {
			tele.DumpFlight("oracle violation: " + v.Code) //nolint:errcheck // the violation is the headline
			res.Violations = append(res.Violations, *v)
			if cfg.StopAtFirst {
				break
			}
		}
	}
	if cfg.Metrics != nil {
		res.Faults.AddTo(cfg.Metrics)
		cfg.Metrics.Inc("crashmc.lattice_points", int64(res.LatticeSize))
		cfg.Metrics.Inc("crashmc.cuts_checked", int64(res.CutsChecked))
		cfg.Metrics.Inc("crashmc.violations", int64(len(res.Violations)))
	}
	return res, nil
}
