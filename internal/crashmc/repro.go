package crashmc

import (
	"encoding/json"
	"fmt"

	"github.com/slimio/slimio/internal/sim"
)

// ReproVersion is bumped whenever the schedule encoding changes meaning.
const ReproVersion = 1

// Repro is a serialized smallest failing schedule: everything needed to
// re-run one crash replay bit-identically, plus the violation the original
// run observed. slimio-check writes one on violation and replays it with
// -repro; a replay that produces any other violation (or none) means the
// build under test no longer fails the same way.
type Repro struct {
	Version  int    `json:"version"`
	Target   string `json:"target"`
	Seed     int64  `json:"seed"`
	Ops      int    `json:"ops"`
	Mutation int    `json:"mutation"`
	CutNanos int64  `json:"cut_nanos"`
	// Violation is the expected oracle breach, bit for bit.
	Violation Violation `json:"violation"`
}

// NewRepro packages a failing schedule (typically post-Shrink).
func NewRepro(tgt Target, w Workload, cut sim.Time, v Violation) *Repro {
	w = w.withDefaults()
	return &Repro{
		Version:   ReproVersion,
		Target:    tgt.String(),
		Seed:      w.Seed,
		Ops:       w.Ops,
		Mutation:  int(w.Mutation),
		CutNanos:  int64(cut),
		Violation: v,
	}
}

// Encode renders the repro as indented JSON with a trailing newline.
func (r *Repro) Encode() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// DecodeRepro parses and validates a repro file.
func DecodeRepro(data []byte) (*Repro, error) {
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("crashmc: repro: %w", err)
	}
	if r.Version != ReproVersion {
		return nil, fmt.Errorf("crashmc: repro version %d, this build speaks %d", r.Version, ReproVersion)
	}
	if _, err := ParseTarget(r.Target); err != nil {
		return nil, err
	}
	if r.Ops <= 0 || r.CutNanos <= 0 {
		return nil, fmt.Errorf("crashmc: repro: ops %d / cut %d out of range", r.Ops, r.CutNanos)
	}
	return &r, nil
}

// Replay re-runs the schedule and returns the violation it observes (nil
// when the schedule no longer fails the oracle). Callers compare against
// r.Violation with == for the bit-identical contract.
func (r *Repro) Replay() (*Violation, error) {
	tgt, err := ParseTarget(r.Target)
	if err != nil {
		return nil, err
	}
	w := Workload{Seed: r.Seed, Ops: r.Ops, Mutation: Mutation(r.Mutation)}
	cut := sim.Time(r.CutNanos)
	out, err := runOnce(tgt, w, cut, nil, nil)
	if err != nil {
		return nil, err
	}
	return checkOracle(tgt, cut, out.Hist, out.Rec), nil
}
