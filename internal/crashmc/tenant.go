package crashmc

import (
	"fmt"

	"github.com/slimio/slimio/internal/core"
	"github.com/slimio/slimio/internal/exp"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/wal"
)

// TenantOutcome is one tenant's share of a multi-tenant crash run: what its
// client observed up to the cut and what its recovery produced.
type TenantOutcome struct {
	Appended  int
	Acked     int
	Recovered int
	Digest    uint64
}

// TenantSeedResult summarizes one seeded multi-tenant crash run; like
// SeedResult, two runs with the same seed must be identical.
type TenantSeedResult struct {
	Cut     sim.Time
	Tenants []TenantOutcome
}

// RunTenantSeed is the multi-tenant sibling of RunSeed: it mounts `tenants`
// SlimIO backends on one shared device via exp.BuildTenantStack, drives each
// with its own seed-derived workload, pulls power on the whole device at a
// seed-drawn instant, then recovers every tenant independently and judges
// each against the SlimIO durability oracle. The point: a shared outage must
// not let one tenant's in-flight state corrupt another's durable prefix,
// under either placement mode.
func RunTenantSeed(placement exp.TenantPlacement, seed int64, tenants int) (TenantSeedResult, []*Violation, error) {
	if tenants < 2 {
		tenants = 2
	}
	// Per-tenant op budgets divide the single-tenant workload length so the
	// total write volume (and checker wall time) stays comparable.
	ops := DefaultOps / tenants
	if ops < 1 {
		ops = 1
	}
	full, err := runTenantOnce(placement, seed, tenants, ops, 0)
	if err != nil {
		return TenantSeedResult{}, nil, err
	}
	// Distinct stream for the cut draw, uncorrelated with the workloads.
	next := rng(^seed)
	cut := sim.Time(1 + next()%uint64(full.end))
	out, err := runTenantOnce(placement, seed, tenants, ops, cut)
	if err != nil {
		return TenantSeedResult{}, nil, err
	}
	res := TenantSeedResult{Cut: cut}
	var violations []*Violation
	for i := 0; i < tenants; i++ {
		recs := decodeSegments(out.recs[i])
		res.Tenants = append(res.Tenants, TenantOutcome{
			Appended:  len(out.hists[i].Ops),
			Acked:     out.hists[i].Acked,
			Recovered: len(recs),
			Digest:    digestRecords(recs),
		})
		if v := checkOracle(SlimIO, cut, out.hists[i], out.recs[i]); v != nil {
			violations = append(violations, v)
		}
	}
	return res, violations, nil
}

// tenantRunOutcome is one multi-tenant replay: per-tenant histories and
// recoveries, plus the run's end instant.
type tenantRunOutcome struct {
	hists []*History
	recs  []*imdb.Recovered
	end   sim.Time
}

// runTenantOnce builds a fresh tenant stack, drives every tenant's workload
// concurrently on the one engine, and recovers each tenant on a fresh engine
// over the frozen shared device. cut == 0 runs to completion.
func runTenantOnce(placement exp.TenantPlacement, seed int64, tenants, ops int, cut sim.Time) (*tenantRunOutcome, error) {
	sc := exp.Scale{
		Name:        "crashmc-tenant",
		DeviceBytes: deviceBytes,
		SlotBytes:   slotBytes / int64(tenants),
	}
	eng := sim.NewEngine()
	ts, err := exp.BuildTenantStack(eng, placement, tenants, sc)
	if err != nil {
		return nil, err
	}
	defer eng.Shutdown()
	if cut > 0 {
		ts.ArmPowerCut(cut)
	}
	pageSize := ts.Dev.PageSize()
	hists := make([]*History, tenants)
	clients := make([]*clientState, tenants)
	for i, t := range ts.Tenants {
		i, t := i, t
		hists[i] = &History{}
		clients[i] = &clientState{buf: wal.NewBuffer(ts.Pool())}
		// Distinct per-tenant seeds: tenants must not issue correlated
		// schedules, or a cut would always land at the same phase for all.
		w := Workload{Seed: seed + int64(i)*7717, Ops: ops}
		eng.Spawn(fmt.Sprintf("tenant%d-client", i), func(env *sim.Env) {
			drive(env, t.Slim, w, pageSize, clients[i], hists[i], nil)
		})
	}
	end := cut
	if cut > 0 {
		eng.RunUntil(cut)
		eng.Stop()
	} else {
		end = eng.Run()
	}
	// Power restored: every tenant's recovery reads the healthy, frozen
	// shared device through its own namespace window.
	ts.Dev.FTL().Array().SetFaultHook(nil)

	eng2 := sim.NewEngine()
	defer eng2.Shutdown()
	recs := make([]*imdb.Recovered, tenants)
	recErrs := make([]error, tenants)
	backends := make([]*core.Backend, tenants)
	for i, t := range ts.Tenants {
		nbe, err := core.New(eng2, t.Dev, core.Config{SlotPages: sc.SlotBytes / int64(pageSize)})
		if err != nil {
			return nil, fmt.Errorf("crashmc: tenant%d reopen (cut %v): %w", i, cut, err)
		}
		backends[i] = nbe
	}
	for i := range backends {
		i := i
		eng2.Spawn(fmt.Sprintf("recover%d", i), func(env *sim.Env) {
			recs[i], recErrs[i] = backends[i].Recover(env)
		})
	}
	eng2.Run()
	for i, err := range recErrs {
		if err != nil {
			return nil, fmt.Errorf("crashmc: tenant%d recover (cut %v): %w", i, cut, err)
		}
		if recs[i] == nil {
			return nil, fmt.Errorf("crashmc: tenant%d recovery produced nothing (cut %v)", i, cut)
		}
	}
	// Teardown mirrors runOnce: release both generations' references, then
	// require the shared data plane quiescent.
	for i := range clients {
		clients[i].close()
		backends[i].Close()
	}
	ts.Close()
	if n := ts.Pool().InFlight(); n != 0 {
		return nil, fmt.Errorf("crashmc: tenant stack: %d pooled segments leaked after teardown (cut %v)", n, cut)
	}
	ts.Pool().Close()
	return &tenantRunOutcome{hists: hists, recs: recs, end: end}, nil
}
