// Package fault provides a deterministic, seed-driven fault plan for the
// simulated device stack. A Plan implements nand.FaultHook and is installed
// on a nand.Array, where it is consulted on every read, program, and erase:
//
//   - transient read failures with a per-operation probability (NVMe status
//     0x281, Unrecovered Read Error — a retry may succeed),
//   - permanent program failures with a per-operation probability (NVMe
//     status 0x280, Write Fault — the FTL must retire the block),
//   - erase failures (the block keeps its contents and must retire),
//   - torn/partial page programs at power loss: once a power cut is
//     scheduled at a virtual time T, every program whose completion falls
//     after T stores a deterministically corrupted partial image instead of
//     its payload,
//   - scheduled power cuts at arbitrary virtual times, driven by the crash
//     harness (the engine stops at T; the torn classification above makes
//     the device contents at T physically honest).
//
// Determinism: the plan owns a local splitmix64 generator seeded from
// Config.Seed — no math/rand global state, no wall clock. Since the
// simulation itself is deterministic, the same seed over the same workload
// yields the same fault schedule, byte for byte. With every rate at zero and
// no power cut scheduled, the plan makes no decisions and consumes no
// randomness, so attaching it leaves runs bit-identical to a perfect device.
package fault

import (
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// Config parameterizes a fault plan. The zero value injects nothing.
type Config struct {
	// Seed drives the plan's private PRNG.
	Seed int64
	// ReadErrRate is the per-read probability of a transient read failure.
	ReadErrRate float64
	// ProgramErrRate is the per-program probability of a permanent failure.
	ProgramErrRate float64
	// EraseErrRate is the per-erase probability of an erase failure.
	EraseErrRate float64
	// Metrics, when non-nil, receives one counter increment per injected
	// fault ("fault.read_err", "fault.program_err", "fault.erase_err",
	// "fault.torn_program").
	Metrics *metrics.Counter
}

// Counter names used for injected faults, shared by the live per-fault
// increments (Config.Metrics) and Stats.AddTo so both paths agree byte for
// byte in a sorted counter dump.
const (
	CounterReadErr     = "fault.read_err"
	CounterProgramErr  = "fault.program_err"
	CounterEraseErr    = "fault.erase_err"
	CounterTornProgram = "fault.torn_program"
)

// Stats counts the faults a plan actually injected.
type Stats struct {
	ReadErrors    int64
	ProgramErrors int64
	EraseErrors   int64
	TornPrograms  int64
}

// Add accumulates other into s (aggregating plans across replays).
func (s *Stats) Add(other Stats) {
	s.ReadErrors += other.ReadErrors
	s.ProgramErrors += other.ProgramErrors
	s.EraseErrors += other.EraseErrors
	s.TornPrograms += other.TornPrograms
}

// AddTo exports the counts into c under the same names a live plan uses,
// so harnesses that build plans without Config.Metrics (the crash checker
// spins up one plan per replay) still surface totals in the sorted counter
// dump slimio-bench and slimio-check print. Zero counts are skipped to keep
// fault-free dumps empty.
func (s Stats) AddTo(c *metrics.Counter) {
	for _, kv := range []struct {
		name string
		n    int64
	}{
		{CounterReadErr, s.ReadErrors},
		{CounterProgramErr, s.ProgramErrors},
		{CounterEraseErr, s.EraseErrors},
		{CounterTornProgram, s.TornPrograms},
	} {
		if kv.n != 0 {
			c.Inc(kv.name, kv.n)
		}
	}
}

// Recorder observes every device-level operation boundary the plan is
// consulted on: program start/completion, erase, read. The crash model
// checker (internal/crashmc) attaches one to a passive plan to harvest the
// crash-point lattice — the set of virtual instants where pulling power
// yields a distinct device state. A recorder must not mutate simulation
// state; it only collects timestamps.
type Recorder interface {
	// RecordRead is called for every page read at its issue time.
	RecordRead(now sim.Time, ppa nand.PPA)
	// RecordProgram is called for every page program with its issue and
	// completion times. A power cut in [start, done) tears the page; a cut
	// at or after done leaves it intact.
	RecordProgram(start, done sim.Time, ppa nand.PPA)
	// RecordErase is called for every block erase at its issue time.
	RecordErase(now sim.Time, die, block int)
}

// Plan is one deterministic fault schedule. It satisfies nand.FaultHook.
type Plan struct {
	cfg      Config
	rng      splitmix
	cutAt    sim.Time
	cutArmed bool
	stats    Stats
	rec      Recorder
}

var _ nand.FaultHook = (*Plan)(nil)

// NewPlan builds a plan from cfg.
func NewPlan(cfg Config) *Plan {
	return &Plan{cfg: cfg, rng: splitmix{state: uint64(cfg.Seed)}}
}

// Active reports whether the plan needs to be installed at all: it can
// inject something, or a recorder wants to observe operation boundaries.
// BuildStack skips installing an inactive plan so the hook stays nil
// (strict no-op).
func (p *Plan) Active() bool {
	return p.cfg.ReadErrRate > 0 || p.cfg.ProgramErrRate > 0 || p.cfg.EraseErrRate > 0 || p.cutArmed || p.rec != nil
}

// SetRecorder attaches (or clears) a boundary recorder. A recorder
// activates an otherwise-zero plan; with every rate at zero it observes
// without injecting, consuming no randomness, so a recorded run stays
// bit-identical to an unhooked one.
func (p *Plan) SetRecorder(r Recorder) { p.rec = r }

// SchedulePowerCut arms a power cut at virtual time at: programs completing
// after it become torn. The harness pairs this with eng.RunUntil(at) +
// eng.Stop() so no process observes a completion past the cut.
func (p *Plan) SchedulePowerCut(at sim.Time) {
	p.cutAt = at
	p.cutArmed = true
}

// PowerCut returns the scheduled cut time, if any.
func (p *Plan) PowerCut() (sim.Time, bool) { return p.cutAt, p.cutArmed }

// Stats returns the injected-fault counts.
func (p *Plan) Stats() Stats { return p.stats }

func (p *Plan) count(name string) {
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.Inc(name, 1)
	}
}

// ReadFault implements nand.FaultHook.
func (p *Plan) ReadFault(now sim.Time, ppa nand.PPA) error {
	if p.rec != nil {
		p.rec.RecordRead(now, ppa)
	}
	if p.cfg.ReadErrRate > 0 && p.rng.float64() < p.cfg.ReadErrRate {
		p.stats.ReadErrors++
		p.count(CounterReadErr)
		return &nand.DeviceError{Status: nand.StatusUnrecoveredRead, Transient: true, Op: "read", PPA: ppa}
	}
	return nil
}

// ProgramFault implements nand.FaultHook. The power-cut check comes first: a
// program still in flight when power dies is torn regardless of media health.
func (p *Plan) ProgramFault(now, done sim.Time, ppa nand.PPA, data []byte) nand.ProgramDecision {
	if p.rec != nil {
		p.rec.RecordProgram(now, done, ppa)
	}
	if p.cutArmed && done > p.cutAt {
		p.stats.TornPrograms++
		p.count(CounterTornProgram)
		return nand.ProgramDecision{Outcome: nand.ProgramTorn, Torn: p.tornImage(data)}
	}
	if p.cfg.ProgramErrRate > 0 && p.rng.float64() < p.cfg.ProgramErrRate {
		p.stats.ProgramErrors++
		p.count(CounterProgramErr)
		return nand.ProgramDecision{Outcome: nand.ProgramFail}
	}
	return nand.ProgramDecision{}
}

// EraseFault implements nand.FaultHook.
func (p *Plan) EraseFault(now sim.Time, die, block int) error {
	if p.rec != nil {
		p.rec.RecordErase(now, die, block)
	}
	if p.cfg.EraseErrRate > 0 && p.rng.float64() < p.cfg.EraseErrRate {
		p.stats.EraseErrors++
		p.count(CounterEraseErr)
		return &nand.DeviceError{Status: nand.StatusEraseFault, Op: "erase", PPA: nand.InvalidPPA}
	}
	return nil
}

// tornImage builds the partial program image of a torn page: a prefix of the
// intended payload survives, the rest is non-zero garbage (so WAL decoding
// can distinguish it from a clean unwritten tail).
func (p *Plan) tornImage(data []byte) []byte {
	out := make([]byte, len(data))
	if len(data) == 0 {
		return out
	}
	keep := int(p.rng.next() % uint64(len(data)+1))
	copy(out, data[:keep])
	for i := keep; i < len(out); i++ {
		b := byte(p.rng.next())
		if b == 0 {
			b = 0xA5
		}
		out[i] = b
	}
	return out
}

// splitmix is splitmix64 (Steele et al.): tiny, fast, and sequential-seed
// friendly, which matters because crash-harness seeds are 0,1,2,...
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0,1).
func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
