// Package fault provides a deterministic, seed-driven fault plan for the
// simulated device stack. A Plan implements nand.FaultHook and is installed
// on a nand.Array, where it is consulted on every read, program, and erase:
//
//   - transient read failures with a per-operation probability (NVMe status
//     0x281, Unrecovered Read Error — a retry may succeed),
//   - permanent program failures with a per-operation probability (NVMe
//     status 0x280, Write Fault — the FTL must retire the block),
//   - erase failures (the block keeps its contents and must retire),
//   - torn/partial page programs at power loss: once a power cut is
//     scheduled at a virtual time T, every program whose completion falls
//     after T stores a deterministically corrupted partial image instead of
//     its payload,
//   - scheduled power cuts at arbitrary virtual times, driven by the crash
//     harness (the engine stops at T; the torn classification above makes
//     the device contents at T physically honest).
//
// Determinism: the plan owns a local splitmix64 generator seeded from
// Config.Seed — no math/rand global state, no wall clock. Since the
// simulation itself is deterministic, the same seed over the same workload
// yields the same fault schedule, byte for byte. With every rate at zero and
// no power cut scheduled, the plan makes no decisions and consumes no
// randomness, so attaching it leaves runs bit-identical to a perfect device.
package fault

import (
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// Config parameterizes a fault plan. The zero value injects nothing.
type Config struct {
	// Seed drives the plan's private PRNG.
	Seed int64
	// ReadErrRate is the per-read probability of a transient read failure.
	ReadErrRate float64
	// ProgramErrRate is the per-program probability of a permanent failure.
	ProgramErrRate float64
	// EraseErrRate is the per-erase probability of an erase failure.
	EraseErrRate float64
	// Metrics, when non-nil, receives one counter increment per injected
	// fault ("fault.read_err", "fault.program_err", "fault.erase_err",
	// "fault.torn_program").
	Metrics *metrics.Counter
}

// Stats counts the faults a plan actually injected.
type Stats struct {
	ReadErrors    int64
	ProgramErrors int64
	EraseErrors   int64
	TornPrograms  int64
}

// Plan is one deterministic fault schedule. It satisfies nand.FaultHook.
type Plan struct {
	cfg      Config
	rng      splitmix
	cutAt    sim.Time
	cutArmed bool
	stats    Stats
}

var _ nand.FaultHook = (*Plan)(nil)

// NewPlan builds a plan from cfg.
func NewPlan(cfg Config) *Plan {
	return &Plan{cfg: cfg, rng: splitmix{state: uint64(cfg.Seed)}}
}

// Active reports whether the plan can inject anything at all. BuildStack
// skips installing an inactive plan so the hook stays nil (strict no-op).
func (p *Plan) Active() bool {
	return p.cfg.ReadErrRate > 0 || p.cfg.ProgramErrRate > 0 || p.cfg.EraseErrRate > 0 || p.cutArmed
}

// SchedulePowerCut arms a power cut at virtual time at: programs completing
// after it become torn. The harness pairs this with eng.RunUntil(at) +
// eng.Stop() so no process observes a completion past the cut.
func (p *Plan) SchedulePowerCut(at sim.Time) {
	p.cutAt = at
	p.cutArmed = true
}

// PowerCut returns the scheduled cut time, if any.
func (p *Plan) PowerCut() (sim.Time, bool) { return p.cutAt, p.cutArmed }

// Stats returns the injected-fault counts.
func (p *Plan) Stats() Stats { return p.stats }

func (p *Plan) count(name string) {
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.Inc(name, 1)
	}
}

// ReadFault implements nand.FaultHook.
func (p *Plan) ReadFault(now sim.Time, ppa nand.PPA) error {
	if p.cfg.ReadErrRate > 0 && p.rng.float64() < p.cfg.ReadErrRate {
		p.stats.ReadErrors++
		p.count("fault.read_err")
		return &nand.DeviceError{Status: nand.StatusUnrecoveredRead, Transient: true, Op: "read", PPA: ppa}
	}
	return nil
}

// ProgramFault implements nand.FaultHook. The power-cut check comes first: a
// program still in flight when power dies is torn regardless of media health.
func (p *Plan) ProgramFault(now, done sim.Time, ppa nand.PPA, data []byte) nand.ProgramDecision {
	if p.cutArmed && done > p.cutAt {
		p.stats.TornPrograms++
		p.count("fault.torn_program")
		return nand.ProgramDecision{Outcome: nand.ProgramTorn, Torn: p.tornImage(data)}
	}
	if p.cfg.ProgramErrRate > 0 && p.rng.float64() < p.cfg.ProgramErrRate {
		p.stats.ProgramErrors++
		p.count("fault.program_err")
		return nand.ProgramDecision{Outcome: nand.ProgramFail}
	}
	return nand.ProgramDecision{}
}

// EraseFault implements nand.FaultHook.
func (p *Plan) EraseFault(now sim.Time, die, block int) error {
	if p.cfg.EraseErrRate > 0 && p.rng.float64() < p.cfg.EraseErrRate {
		p.stats.EraseErrors++
		p.count("fault.erase_err")
		return &nand.DeviceError{Status: nand.StatusEraseFault, Op: "erase", PPA: nand.InvalidPPA}
	}
	return nil
}

// tornImage builds the partial program image of a torn page: a prefix of the
// intended payload survives, the rest is non-zero garbage (so WAL decoding
// can distinguish it from a clean unwritten tail).
func (p *Plan) tornImage(data []byte) []byte {
	out := make([]byte, len(data))
	if len(data) == 0 {
		return out
	}
	keep := int(p.rng.next() % uint64(len(data)+1))
	copy(out, data[:keep])
	for i := keep; i < len(out); i++ {
		b := byte(p.rng.next())
		if b == 0 {
			b = 0xA5
		}
		out[i] = b
	}
	return out
}

// splitmix is splitmix64 (Steele et al.): tiny, fast, and sequential-seed
// friendly, which matters because crash-harness seeds are 0,1,2,...
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0,1).
func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
