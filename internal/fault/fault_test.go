package fault

import (
	"bytes"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

func TestZeroPlanIsInactiveNoop(t *testing.T) {
	p := NewPlan(Config{Seed: 7})
	if p.Active() {
		t.Fatal("zero-rate plan reports Active")
	}
	before := p.rng.state
	data := bytes.Repeat([]byte("x"), 64)
	if err := p.ReadFault(0, 0); err != nil {
		t.Fatalf("read fault from zero plan: %v", err)
	}
	if d := p.ProgramFault(0, 100, 0, data); d.Outcome != nand.ProgramOK {
		t.Fatalf("program decision = %v, want ProgramOK", d.Outcome)
	}
	if err := p.EraseFault(0, 0, 0); err != nil {
		t.Fatalf("erase fault from zero plan: %v", err)
	}
	if p.rng.state != before {
		t.Fatal("zero-rate plan consumed randomness")
	}
	if p.Stats() != (Stats{}) {
		t.Fatalf("zero-rate plan counted faults: %+v", p.Stats())
	}
}

// Two plans with the same seed and rates must make identical decisions over
// an identical operation sequence — the whole point of seed-driven faults.
func TestSameSeedSameSchedule(t *testing.T) {
	mk := func() *Plan {
		return NewPlan(Config{Seed: 42, ReadErrRate: 0.3, ProgramErrRate: 0.3, EraseErrRate: 0.3})
	}
	a, b := mk(), mk()
	data := bytes.Repeat([]byte("d"), 32)
	for i := 0; i < 500; i++ {
		ppa := nand.PPA(i)
		switch i % 3 {
		case 0:
			ea, eb := a.ReadFault(sim.Time(i), ppa), b.ReadFault(sim.Time(i), ppa)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("op %d: read decisions diverge (%v vs %v)", i, ea, eb)
			}
		case 1:
			da := a.ProgramFault(sim.Time(i), sim.Time(i+1), ppa, data)
			db := b.ProgramFault(sim.Time(i), sim.Time(i+1), ppa, data)
			if da.Outcome != db.Outcome || !bytes.Equal(da.Torn, db.Torn) {
				t.Fatalf("op %d: program decisions diverge", i)
			}
		case 2:
			ea, eb := a.EraseFault(sim.Time(i), i, i), b.EraseFault(sim.Time(i), i, i)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("op %d: erase decisions diverge (%v vs %v)", i, ea, eb)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats(), b.Stats())
	}
	if s := a.Stats(); s.ReadErrors == 0 || s.ProgramErrors == 0 || s.EraseErrors == 0 {
		t.Fatalf("30%% rates over 500 ops injected nothing: %+v", s)
	}
}

func TestFaultKindsAndStatuses(t *testing.T) {
	p := NewPlan(Config{Seed: 1, ReadErrRate: 1, ProgramErrRate: 1, EraseErrRate: 1})
	if err := p.ReadFault(0, 5); !nand.IsTransient(err) || nand.StatusOf(err) != nand.StatusUnrecoveredRead {
		t.Fatalf("read fault = %v, want transient unrecovered-read", err)
	}
	if d := p.ProgramFault(0, 1, 5, []byte("abc")); d.Outcome != nand.ProgramFail || d.Torn != nil {
		t.Fatalf("program fault = %+v, want ProgramFail with no image", d)
	}
	if err := p.EraseFault(0, 0, 0); !nand.IsEraseFault(err) {
		t.Fatalf("erase fault = %v, want erase-fault status", err)
	}
}

// A power cut tears exactly the programs whose completion falls after the
// cut, regardless of the program error rate (the cut check runs first).
func TestPowerCutClassification(t *testing.T) {
	p := NewPlan(Config{Seed: 3})
	if p.Active() {
		t.Fatal("plan active before arming")
	}
	p.SchedulePowerCut(1000)
	if !p.Active() {
		t.Fatal("armed power cut must activate the plan")
	}
	data := bytes.Repeat([]byte("p"), 48)
	if d := p.ProgramFault(900, 1000, 7, data); d.Outcome != nand.ProgramOK {
		t.Fatalf("program completing at the cut: %v, want OK", d.Outcome)
	}
	d := p.ProgramFault(990, 1001, 7, data)
	if d.Outcome != nand.ProgramTorn {
		t.Fatalf("program completing after the cut: %v, want torn", d.Outcome)
	}
	if len(d.Torn) != len(data) {
		t.Fatalf("torn image %d bytes, payload %d", len(d.Torn), len(data))
	}
	if p.Stats().TornPrograms != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

// The torn image keeps a prefix of the payload and fills the rest with
// non-zero garbage, so WAL decoding can tell it from a clean unwritten tail.
func TestTornImageShape(t *testing.T) {
	p := NewPlan(Config{Seed: 11})
	data := bytes.Repeat([]byte{0x42}, 256)
	sawPartial := false
	for i := 0; i < 50; i++ {
		img := p.tornImage(data)
		if len(img) != len(data) {
			t.Fatalf("torn image %d bytes, payload %d", len(img), len(data))
		}
		k := 0
		for k < len(img) && img[k] == data[k] {
			k++
		}
		for j := k; j < len(img); j++ {
			if img[j] == 0 {
				t.Fatalf("iteration %d: zero byte at %d in the garbage region (looks like a clean tail)", i, j)
			}
		}
		if k < len(img) {
			sawPartial = true
		}
	}
	if !sawPartial {
		t.Fatal("50 torn images all kept the full payload")
	}
}

// An installed zero-rate plan must leave the array bit-identical (data and
// timing) to a run with no hook at all — fault-free results do not shift.
func TestZeroRatePlanBitIdentical(t *testing.T) {
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 4, PagesPerBlock: 8, PageSize: 256}
	run := func(install bool) ([]byte, sim.Time) {
		arr, err := nand.New(geo, nand.DefaultLatencies())
		if err != nil {
			t.Fatal(err)
		}
		if install {
			arr.SetFaultHook(NewPlan(Config{Seed: 99}))
		}
		var last sim.Time
		for i := 0; i < 16; i++ {
			ppa := arr.PPAOf(i%4, 0, i/4)
			done, err := arr.Program(sim.Time(i*1000), ppa, bufpool.Borrowed(bytes.Repeat([]byte{byte(i + 1)}, geo.PageSize)))
			if err != nil {
				t.Fatal(err)
			}
			if done > last {
				last = done
			}
		}
		var out []byte
		for i := 0; i < 16; i++ {
			data, done, err := arr.Read(last+sim.Time(i*1000), arr.PPAOf(i%4, 0, i/4))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, data...)
			if done > last {
				last = done
			}
		}
		return out, last
	}
	d1, t1 := run(false)
	d2, t2 := run(true)
	if !bytes.Equal(d1, d2) || t1 != t2 {
		t.Fatalf("zero-rate plan shifted results: bytes equal=%v, time %v vs %v", bytes.Equal(d1, d2), t1, t2)
	}
}

// recordingSink captures Recorder callbacks for the seam test.
type recordingSink struct {
	reads, programs, erases int
}

func (r *recordingSink) RecordRead(now sim.Time, ppa nand.PPA)            { r.reads++ }
func (r *recordingSink) RecordProgram(start, done sim.Time, ppa nand.PPA) { r.programs++ }
func (r *recordingSink) RecordErase(now sim.Time, die, block int)         { r.erases++ }

// TestRecorderSeam: attaching a Recorder activates an otherwise-zero plan
// (so the NAND array consults it), every boundary reaches the recorder, and
// no fault is injected and no randomness consumed while recording.
func TestRecorderSeam(t *testing.T) {
	p := NewPlan(Config{Seed: 7})
	sink := &recordingSink{}
	p.SetRecorder(sink)
	if !p.Active() {
		t.Fatal("plan with a recorder must report Active")
	}
	before := p.rng.state
	data := bytes.Repeat([]byte("x"), 64)
	if err := p.ReadFault(0, 0); err != nil {
		t.Fatalf("read fault while recording: %v", err)
	}
	if d := p.ProgramFault(0, 100, 0, data); d.Outcome != nand.ProgramOK {
		t.Fatalf("program decision = %v, want ProgramOK", d.Outcome)
	}
	if err := p.EraseFault(0, 0, 0); err != nil {
		t.Fatalf("erase fault while recording: %v", err)
	}
	if sink.reads != 1 || sink.programs != 1 || sink.erases != 1 {
		t.Fatalf("recorder saw %d/%d/%d boundaries, want 1/1/1", sink.reads, sink.programs, sink.erases)
	}
	if p.rng.state != before {
		t.Fatal("recording consumed randomness")
	}
	if p.Stats() != (Stats{}) {
		t.Fatalf("recording counted faults: %+v", p.Stats())
	}
	p.SetRecorder(nil)
	if p.Active() {
		t.Fatal("clearing the recorder must deactivate a zero-rate plan")
	}
}

// TestStatsAddAndAddTo: replay aggregation and the counter export skip
// zeroes so fault-free dumps stay empty.
func TestStatsAddAndAddTo(t *testing.T) {
	var s Stats
	s.Add(Stats{ReadErrors: 2, TornPrograms: 3})
	s.Add(Stats{TornPrograms: 1, EraseErrors: 4})
	want := Stats{ReadErrors: 2, EraseErrors: 4, TornPrograms: 4}
	if s != want {
		t.Fatalf("Add: got %+v, want %+v", s, want)
	}
	ctr := &metrics.Counter{}
	s.AddTo(ctr)
	if got := ctr.Get(CounterReadErr); got != 2 {
		t.Errorf("%s = %d, want 2", CounterReadErr, got)
	}
	if got := ctr.Get(CounterEraseErr); got != 4 {
		t.Errorf("%s = %d, want 4", CounterEraseErr, got)
	}
	if got := ctr.Get(CounterTornProgram); got != 4 {
		t.Errorf("%s = %d, want 4", CounterTornProgram, got)
	}
	kvs := ctr.Sorted()
	for _, kv := range kvs {
		if kv.Key == CounterProgramErr {
			t.Errorf("zero count %s exported; fault-free dumps must stay empty", CounterProgramErr)
		}
	}
	if (Stats{}).AddTo(ctr); len(ctr.Sorted()) != len(kvs) {
		t.Error("zero Stats.AddTo added counters")
	}
}
