package imdb

import "github.com/slimio/slimio/internal/sim"

// CostModel holds the host-CPU cost constants of the engine. All values are
// virtual time; the defaults are calibrated so that the simulated baseline
// lands in the paper's measured ranges (Tables 1, 3, 4): tens of thousands
// of requests per second per event loop, snapshot work dominated by
// compression, and fork/COW stalls of the right order for multi-GB
// datasets.
type CostModel struct {
	// CmdBaseCPU is charged per command: parsing, dispatch, hashing,
	// response formatting.
	CmdBaseCPU sim.Duration
	// StoreBandwidth is the memcpy rate for moving values in and out of
	// the store (bytes/second).
	StoreBandwidth int64
	// ForkBase is the fixed cost of fork(2).
	ForkBase sim.Duration
	// ForkPerPage is the page-table copy cost per resident page; the whole
	// fork stalls the main process (Pang et al., VLDB'23 measure tens of
	// milliseconds per GB).
	ForkPerPage sim.Duration
	// COWCopyPerPage is the copy-on-write fault cost per page: both the
	// main process and the snapshot process serialize on the copy.
	COWCopyPerPage sim.Duration
	// SerializeBandwidth is the snapshot-process rate for framing entries.
	SerializeBandwidth int64
	// CompressBandwidth is the snapshot-process compression rate (the paper
	// notes compression dominates snapshot CPU for small values).
	CompressBandwidth int64
	// DecompressBandwidth is the recovery-side inverse.
	DecompressBandwidth int64
	// InsertPerEntry is the recovery cost to insert one entry into the
	// store.
	InsertPerEntry sim.Duration
	// MemPageSize is the COW granularity (bytes).
	MemPageSize int
	// KeyOverhead approximates per-key allocator/dict overhead (bytes),
	// counted in memory-usage reporting.
	KeyOverhead int
	// SnapshotBatchKeys is how many entries the snapshot process serializes
	// per dict-lock hold.
	SnapshotBatchKeys int
}

// DefaultCostModel returns the calibrated constants.
func DefaultCostModel() CostModel {
	return CostModel{
		CmdBaseCPU:          6 * sim.Microsecond,
		StoreBandwidth:      6 << 30, // 6 GiB/s
		ForkBase:            80 * sim.Microsecond,
		ForkPerPage:         120 * sim.Nanosecond,
		COWCopyPerPage:      4 * sim.Microsecond,
		SerializeBandwidth:  2 << 30,   // 2 GiB/s
		CompressBandwidth:   700 << 20, // 700 MiB/s (flate level 1 class)
		DecompressBandwidth: 1400 << 20,
		InsertPerEntry:      2 * sim.Microsecond,
		MemPageSize:         4096,
		KeyOverhead:         64,
		SnapshotBatchKeys:   64,
	}
}
