// Package imdb implements the Redis-like in-memory database engine the
// paper instruments: a key/value store served by a single event-loop
// process, persisted through a pluggable backend by the combination of a
// write-ahead log (Periodical-Log or Always-Log policy) and fork-based
// snapshots (WAL-Snapshots triggered by log growth, On-Demand-Snapshots
// triggered by the operator), with copy-on-write memory accounting.
//
// Two backends exist: internal/baseline (files on the simulated kernel I/O
// path) and internal/core (SlimIO: io_uring passthru onto raw LBA space).
package imdb

import (
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/wal"
)

// SnapshotKind distinguishes the paper's two snapshot types.
type SnapshotKind int

const (
	// WALSnapshot bounds WAL growth; completing one supersedes and deletes
	// the previous WAL and WAL-Snapshot.
	WALSnapshot SnapshotKind = iota
	// OnDemandSnapshot is an operator-requested point-in-time backup with a
	// long lifetime.
	OnDemandSnapshot
)

func (k SnapshotKind) String() string {
	if k == OnDemandSnapshot {
		return "on-demand"
	}
	return "wal"
}

// SnapshotSink receives a snapshot image chunk by chunk. Write is called
// from the snapshot process; Commit makes the image durable and atomically
// promotes it to the valid snapshot of its kind (superseding the previous
// one); Abort discards a partial image.
type SnapshotSink interface {
	Write(env *sim.Env, chunk []byte) error
	Commit(env *sim.Env) error
	Abort(env *sim.Env) error
}

// Recovered is the durable state a backend reconstructs at startup.
type Recovered struct {
	// HaveSnapshot reports whether a snapshot image was found.
	HaveSnapshot bool
	// Kind is the kind of the recovered snapshot (the paper recovers either
	// the WAL-Snapshot plus the WAL, or an On-Demand-Snapshot alone).
	Kind SnapshotKind
	// Snapshot is the raw snapshot image.
	Snapshot []byte
	// WALSegments are the durable log segments in append order (a sealed
	// pre-fork segment, if a WAL-Snapshot was in flight at the crash, then
	// the current segment). Each may have its own torn tail.
	WALSegments [][]byte
	// WALTruncatedAt is the byte offset into the open WAL segment where
	// decoding stopped on non-zero garbage (mid-segment corruption or a torn
	// page program), or -1 when the segment ended cleanly — a zero tail is
	// the expected crash artifact and does not count. Recovery replays the
	// prefix either way; the offset records how much was salvageable.
	WALTruncatedAt int64
	// Degraded lists human-readable notes about damage recovery worked
	// around (unreadable snapshot pages, corrupt WAL tails, lost segments).
	// Empty means a clean recovery.
	Degraded []string
}

// Backend is the persistence substrate: everything below the engine's
// buffers. Implementations decide how bytes reach storage (kernel path vs
// I/O passthru) and how space is managed (files vs raw LBA regions).
type Backend interface {
	// Label names the backend for reports.
	Label() string

	// WALAppend writes log bytes at the tail of the current log segment.
	// Durability is only guaranteed after WALSync returns. The chain's
	// segment references transfer to the backend (see wal.Chain), EXCEPT on
	// error: a failed append leaves ownership with the caller so the bytes
	// can be parked and retried when log space frees up.
	WALAppend(env *sim.Env, data wal.Chain) error
	// WALSync makes all appended WAL bytes durable.
	WALSync(env *sim.Env) error
	// WALDurableSize reports bytes appended to the current log segment
	// (the WAL-Snapshot trigger measures growth since the last rotation).
	WALDurableSize() int64
	// WALRotate seals the current log segment and starts a new one. The
	// engine rotates at the fork point of a WAL-Snapshot (Redis 7's
	// multipart AOF): post-fork records land in the new segment, and no
	// replay is needed when the snapshot completes.
	WALRotate(env *sim.Env) error
	// WALDiscardOld drops every sealed segment, keeping only the current
	// one — called once a WAL-Snapshot commit makes the old log obsolete.
	WALDiscardOld(env *sim.Env) error

	// BeginSnapshot opens a sink for a new snapshot image of the given
	// kind. At most one snapshot is in flight at a time (engine-enforced,
	// mirroring Redis).
	BeginSnapshot(env *sim.Env, kind SnapshotKind) (SnapshotSink, error)

	// Recover loads the durable state (used at startup and in the paper's
	// recovery experiment, Table 5).
	Recover(env *sim.Env) (*Recovered, error)
}
