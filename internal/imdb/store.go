package imdb

// pageSpan is the range of memory pages backing one key's value.
type pageSpan struct {
	start int64
	n     int64
}

// Store is the in-memory keyspace: a hash map plus an insertion-ordered key
// list (for deterministic snapshot iteration) and a page map used by the
// copy-on-write model. Values are stored by reference; callers must not
// mutate slices they pass in.
type Store struct {
	vals map[string][]byte
	// keys preserves insertion order for deterministic snapshot iteration;
	// deleted keys leave tombstones (skipped by the snapshot writer), and
	// listed prevents re-inserted keys from being listed twice.
	keys     []string
	listed   map[string]struct{}
	spans    map[string]pageSpan
	bytes    int64
	pageSize int64
	nextPage int64

	// COW bookkeeping: a page with epoch[p] == currentEpoch has already
	// been copied since the last fork.
	epoch     []int32
	curEpoch  int32
	copiedNow int64
}

// NewStore returns an empty store with the given COW page size.
func NewStore(pageSize int) *Store {
	if pageSize <= 0 {
		pageSize = 4096
	}
	return &Store{
		vals:     make(map[string][]byte),
		listed:   make(map[string]struct{}),
		spans:    make(map[string]pageSpan),
		pageSize: int64(pageSize),
	}
}

// Len reports the number of live keys.
func (s *Store) Len() int { return len(s.vals) }

// ListedLen reports the snapshot-iteration index range (live keys plus
// tombstones).
func (s *Store) ListedLen() int { return len(s.keys) }

// Bytes reports the sum of key+value payload bytes.
func (s *Store) Bytes() int64 { return s.bytes }

// Pages reports resident memory pages (for fork cost).
func (s *Store) Pages() int64 { return s.nextPage }

// Get returns the value for key, or nil.
func (s *Store) Get(key string) []byte { return s.vals[key] }

// Set stores value under key, returning whether the key is new and the page
// span now backing it. Values that grow get a fresh span (old pages are
// simply abandoned, approximating allocator churn).
func (s *Store) Set(key string, value []byte) (isNew bool, span pageSpan) {
	old, exists := s.vals[key]
	if !exists {
		if _, ok := s.listed[key]; !ok {
			s.keys = append(s.keys, key)
			s.listed[key] = struct{}{}
		}
		s.bytes += int64(len(key))
		isNew = true
	} else {
		s.bytes -= int64(len(old))
	}
	s.bytes += int64(len(value))
	s.vals[key] = value

	need := (int64(len(value)) + s.pageSize - 1) / s.pageSize
	if need == 0 {
		need = 1
	}
	sp, ok := s.spans[key]
	if !ok || sp.n < need {
		sp = pageSpan{start: s.nextPage, n: need}
		s.nextPage += need
		s.spans[key] = sp
	}
	return isNew, sp
}

// Delete removes key, returning whether it existed and the page span it
// occupied (for COW accounting). The insertion-order key list keeps a
// tombstone so snapshot iteration indexes stay stable; Get returns nil for
// deleted keys and the snapshot writer skips them.
func (s *Store) Delete(key string) (existed bool, span pageSpan) {
	old, ok := s.vals[key]
	if !ok {
		return false, pageSpan{}
	}
	s.bytes -= int64(len(old)) + int64(len(key))
	delete(s.vals, key)
	span = s.spans[key]
	delete(s.spans, key)
	return true, span
}

// KeyAt returns the i-th key in insertion order.
func (s *Store) KeyAt(i int) string { return s.keys[i] }

// BeginCOWEpoch starts a new fork epoch: every page becomes "shared" again.
func (s *Store) BeginCOWEpoch() {
	s.curEpoch++
	s.copiedNow = 0
}

// TouchPages marks span's pages written in the current epoch and returns
// how many of them needed a copy-on-write fault.
func (s *Store) TouchPages(span pageSpan) int64 {
	for int64(len(s.epoch)) < s.nextPage {
		s.epoch = append(s.epoch, 0)
	}
	var copied int64
	for p := span.start; p < span.start+span.n; p++ {
		if s.epoch[p] != s.curEpoch {
			s.epoch[p] = s.curEpoch
			copied++
		}
	}
	s.copiedNow += copied
	return copied
}

// CopiedPages reports pages copied in the current epoch.
func (s *Store) CopiedPages() int64 { return s.copiedNow }

// PageSize reports the COW page size.
func (s *Store) PageSize() int64 { return s.pageSize }
