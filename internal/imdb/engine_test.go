package imdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/wal"
)

// memBackend is an in-memory Backend with fixed per-call latencies, letting
// engine tests run without a device below them.
type memBackend struct {
	eng        *sim.Engine
	walData    []byte
	walSynced  int
	sealed     [][]byte
	snapshots  map[SnapshotKind][]byte
	walLatency sim.Duration
	beginCount int
	failCommit bool
}

func newMemBackend(eng *sim.Engine) *memBackend {
	return &memBackend{eng: eng, snapshots: make(map[SnapshotKind][]byte), walLatency: 50 * sim.Microsecond}
}

func (m *memBackend) Label() string { return "mem" }

func (m *memBackend) WALAppend(env *sim.Env, data wal.Chain) error {
	env.Sleep(m.walLatency)
	m.walData = data.AppendTo(m.walData)
	data.Release()
	return nil
}

func (m *memBackend) WALSync(env *sim.Env) error {
	env.Sleep(m.walLatency)
	m.walSynced = len(m.walData)
	return nil
}

func (m *memBackend) WALDurableSize() int64 { return int64(len(m.walData)) }

func (m *memBackend) WALRotate(env *sim.Env) error {
	m.sealed = append(m.sealed, m.walData)
	m.walData = nil
	m.walSynced = 0
	return nil
}

func (m *memBackend) WALDiscardOld(env *sim.Env) error {
	m.sealed = nil
	return nil
}

type memSink struct {
	be   *memBackend
	kind SnapshotKind
	buf  []byte
}

func (s *memSink) Write(env *sim.Env, chunk []byte) error {
	env.Sleep(20 * sim.Microsecond)
	s.buf = append(s.buf, chunk...)
	return nil
}

func (s *memSink) Commit(env *sim.Env) error {
	if s.be.failCommit {
		return fmt.Errorf("mem: injected commit failure")
	}
	env.Sleep(20 * sim.Microsecond)
	s.be.snapshots[s.kind] = s.buf
	return nil
}

func (s *memSink) Abort(env *sim.Env) error { return nil }

func (m *memBackend) BeginSnapshot(env *sim.Env, kind SnapshotKind) (SnapshotSink, error) {
	m.beginCount++
	return &memSink{be: m, kind: kind}, nil
}

func (m *memBackend) Recover(env *sim.Env) (*Recovered, error) {
	rec := &Recovered{}
	for _, seg := range m.sealed {
		rec.WALSegments = append(rec.WALSegments, append([]byte(nil), seg...))
	}
	rec.WALSegments = append(rec.WALSegments, append([]byte(nil), m.walData[:m.walSynced]...))
	if img, ok := m.snapshots[WALSnapshot]; ok {
		rec.HaveSnapshot = true
		rec.Kind = WALSnapshot
		rec.Snapshot = img
	} else if img, ok := m.snapshots[OnDemandSnapshot]; ok {
		rec.HaveSnapshot = true
		rec.Kind = OnDemandSnapshot
		rec.Snapshot = img
	}
	return rec, nil
}

type testRig struct {
	eng *sim.Engine
	be  *memBackend
	db  *Engine
}

func newTestRig(cfg Config) *testRig {
	eng := sim.NewEngine()
	be := newMemBackend(eng)
	db := New(eng, be, cfg, nil)
	db.Start()
	return &testRig{eng: eng, be: be, db: db}
}

func value(i int, size int) []byte {
	return bytes.Repeat([]byte{byte('a' + i%26)}, size)
}

func TestSetGetRoundTrip(t *testing.T) {
	r := newTestRig(Config{Policy: PeriodicalLog})
	r.eng.Spawn("client", func(env *sim.Env) {
		if err := r.db.Set(env, "k1", []byte("v1")); err != nil {
			t.Error(err)
			return
		}
		got, err := r.db.Get(env, "k1")
		if err != nil || string(got) != "v1" {
			t.Errorf("get = %q, %v", got, err)
		}
		if got, _ := r.db.Get(env, "missing"); got != nil {
			t.Error("missing key returned data")
		}
		r.db.Shutdown(env)
	})
	r.eng.Run()
	s := r.db.Stats()
	if s.Sets != 1 || s.Gets != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPeriodicalFlushOnIdle(t *testing.T) {
	r := newTestRig(Config{Policy: PeriodicalLog})
	r.eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 10; i++ {
			if err := r.db.Set(env, fmt.Sprintf("k%d", i), value(i, 32)); err != nil {
				t.Error(err)
				return
			}
		}
		// Blocking Set leaves the queue idle between commands, so the
		// engine flushes opportunistically; by now the WAL must hold data.
		if r.be.WALDurableSize() == 0 {
			t.Error("idle flush never happened")
		}
		r.db.Shutdown(env)
	})
	r.eng.Run()
	recs, _ := wal.DecodeAll(r.be.walData)
	if len(recs) != 10 {
		t.Fatalf("WAL has %d records, want 10", len(recs))
	}
}

func TestAlwaysLogDurableBeforeReply(t *testing.T) {
	r := newTestRig(Config{Policy: AlwaysLog})
	r.eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 5; i++ {
			if err := r.db.Set(env, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
				t.Error(err)
				return
			}
			// Every reply implies durability: synced WAL covers the record.
			recs, _ := wal.DecodeAll(r.be.walData[:r.be.walSynced])
			if len(recs) != i+1 {
				t.Errorf("after set %d: %d durable records", i, len(recs))
			}
		}
		r.db.Shutdown(env)
	})
	r.eng.Run()
}

func TestAlwaysLogGroupCommit(t *testing.T) {
	r := newTestRig(Config{Policy: AlwaysLog, BatchMax: 64})
	const clients = 32
	for c := 0; c < clients; c++ {
		c := c
		r.eng.Spawn(fmt.Sprintf("cl%d", c), func(env *sim.Env) {
			for i := 0; i < 4; i++ {
				if err := r.db.Set(env, fmt.Sprintf("c%d-k%d", c, i), value(i, 64)); err != nil {
					t.Error(err)
					return
				}
			}
		})
	}
	r.eng.Run()
	s := r.db.Stats()
	if s.WALFlushes >= s.Sets {
		t.Fatalf("flushes=%d sets=%d: no group commit", s.WALFlushes, s.Sets)
	}
}

func TestOnDemandSnapshotRoundTrip(t *testing.T) {
	r := newTestRig(Config{Policy: PeriodicalLog})
	want := map[string]string{}
	r.eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 200; i++ {
			k, v := fmt.Sprintf("key%03d", i), fmt.Sprintf("val%03d", i)
			want[k] = v
			if err := r.db.Set(env, k, []byte(v)); err != nil {
				t.Error(err)
				return
			}
		}
		r.db.TriggerSnapshot(OnDemandSnapshot)
		r.db.Shutdown(env) // waits for the snapshot child
	})
	r.eng.Run()
	st := r.db.Stats()
	if len(st.Snapshots) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(st.Snapshots))
	}
	ev := st.Snapshots[0]
	if ev.Kind != OnDemandSnapshot || ev.Entries != 200 || ev.Duration <= 0 {
		t.Fatalf("event = %+v", ev)
	}
	if _, ok := r.be.snapshots[OnDemandSnapshot]; !ok {
		t.Fatal("backend has no on-demand snapshot")
	}
}

func TestWALSnapshotTriggerAndReset(t *testing.T) {
	// Small trigger: after enough sets, a WAL-Snapshot must run and the WAL
	// must restart (much smaller than the pre-snapshot log).
	r := newTestRig(Config{Policy: PeriodicalLog, WALSnapshotTrigger: 16 << 10})
	r.eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 400; i++ {
			if err := r.db.Set(env, fmt.Sprintf("key%03d", i%100), value(i, 128)); err != nil {
				t.Error(err)
				return
			}
		}
		r.db.Shutdown(env)
	})
	r.eng.Run()
	st := r.db.Stats()
	if len(st.Snapshots) == 0 {
		t.Fatal("WAL-Snapshot never triggered")
	}
	for _, ev := range st.Snapshots {
		if ev.Kind != WALSnapshot {
			t.Fatalf("unexpected snapshot kind %v", ev.Kind)
		}
	}
	// After the last snapshot + remaining traffic, the WAL must be far
	// smaller than total bytes logged.
	if r.be.WALDurableSize() >= st.WALBytes {
		t.Fatalf("WAL never reset: durable=%d total-flushed=%d", r.be.WALDurableSize(), st.WALBytes)
	}
}

func TestRecoveryEqualsFinalState(t *testing.T) {
	// Write through snapshots and WAL resets, shut down cleanly, recover
	// into a fresh engine, and compare every key.
	r := newTestRig(Config{Policy: PeriodicalLog, WALSnapshotTrigger: 8 << 10})
	final := map[string]string{}
	r.eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("key%03d", i%70)
			v := fmt.Sprintf("val-%d-%d", i, i*i)
			final[k] = v
			if err := r.db.Set(env, k, []byte(v)); err != nil {
				t.Error(err)
				return
			}
		}
		r.db.Shutdown(env)
	})
	r.eng.Run()
	if len(r.db.Stats().Snapshots) == 0 {
		t.Fatal("test needs at least one WAL-Snapshot to be meaningful")
	}

	db2 := New(r.eng, r.be, Config{Policy: PeriodicalLog}, nil)
	r.eng.Spawn("recover", func(env *sim.Env) {
		entries, walRecs, err := db2.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		if entries == 0 {
			t.Error("recovery loaded no snapshot entries")
		}
		_ = walRecs
	})
	r.eng.Run()
	if db2.Store().Len() != len(final) {
		t.Fatalf("recovered %d keys, want %d", db2.Store().Len(), len(final))
	}
	for k, v := range final {
		if got := db2.Store().Get(k); string(got) != v {
			t.Fatalf("key %s: recovered %q, want %q", k, got, v)
		}
	}
}

func TestCOWAccountingDuringSnapshot(t *testing.T) {
	// A long snapshot with concurrent overwrites must copy pages and raise
	// peak memory above base.
	cfg := Config{Policy: PeriodicalLog}
	cfg.Cost = DefaultCostModel()
	cfg.Cost.CompressBandwidth = 4 << 20 // slow snapshot: keep it running
	r := newTestRig(cfg)
	r.eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 100; i++ {
			if err := r.db.Set(env, fmt.Sprintf("key%03d", i), value(i, 4096)); err != nil {
				t.Error(err)
				return
			}
		}
		r.db.TriggerSnapshot(OnDemandSnapshot)
		// Overwrite everything while the snapshot runs.
		for i := 0; i < 100; i++ {
			if err := r.db.Set(env, fmt.Sprintf("key%03d", i), value(i+1, 4096)); err != nil {
				t.Error(err)
				return
			}
		}
		r.db.Shutdown(env)
	})
	r.eng.Run()
	s := r.db.Stats()
	if s.COWCopies == 0 {
		t.Fatal("no COW copies despite concurrent writes")
	}
	if s.PeakMemory <= s.BaseMemory {
		t.Fatalf("peak %d not above base %d", s.PeakMemory, s.BaseMemory)
	}
	if s.ForkStall == 0 {
		t.Fatal("fork stall not accounted")
	}
}

func TestSecondSnapshotIgnoredWhileActive(t *testing.T) {
	cfg := Config{Policy: PeriodicalLog}
	cfg.Cost = DefaultCostModel()
	cfg.Cost.CompressBandwidth = 4 << 20
	r := newTestRig(cfg)
	r.eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 50; i++ {
			if err := r.db.Set(env, fmt.Sprintf("k%d", i), value(i, 2048)); err != nil {
				t.Error(err)
				return
			}
		}
		r.db.TriggerSnapshot(OnDemandSnapshot)
		r.db.TriggerSnapshot(OnDemandSnapshot) // must be dropped
		r.db.Shutdown(env)
	})
	r.eng.Run()
	if n := r.be.beginCount; n != 1 {
		t.Fatalf("BeginSnapshot called %d times, want 1", n)
	}
}

func TestSnapshotCommitFailureCounted(t *testing.T) {
	r := newTestRig(Config{Policy: PeriodicalLog})
	r.be.failCommit = true
	r.eng.Spawn("client", func(env *sim.Env) {
		if err := r.db.Set(env, "k", []byte("v")); err != nil {
			t.Error(err)
			return
		}
		r.db.TriggerSnapshot(OnDemandSnapshot)
		r.db.Shutdown(env)
	})
	r.eng.Run()
	s := r.db.Stats()
	if s.SnapshotsAbort != 1 || len(s.Snapshots) != 0 {
		t.Fatalf("aborts=%d ok=%d", s.SnapshotsAbort, len(s.Snapshots))
	}
}

func TestQueriesServedDuringSnapshot(t *testing.T) {
	// The core property fork-based snapshotting buys: the engine keeps
	// serving while the child writes the dump.
	cfg := Config{Policy: PeriodicalLog}
	cfg.Cost = DefaultCostModel()
	cfg.Cost.CompressBandwidth = 2 << 20
	r := newTestRig(cfg)
	var servedDuring int
	r.eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 50; i++ {
			if err := r.db.Set(env, fmt.Sprintf("k%d", i), value(i, 4096)); err != nil {
				t.Error(err)
				return
			}
		}
		trig := r.db.TriggerSnapshot(OnDemandSnapshot)
		trig.Reply.Wait(env) // accepted: snapshot is now active
		for r.db.SnapshotActive() {
			if _, err := r.db.Get(env, "k1"); err != nil {
				t.Error(err)
				return
			}
			servedDuring++
			env.Sleep(sim.Millisecond)
		}
		r.db.Shutdown(env)
	})
	r.eng.Run()
	if servedDuring < 5 {
		t.Fatalf("only %d queries served during snapshot", servedDuring)
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore(4096)
	isNew, span := s.Set("a", bytes.Repeat([]byte("x"), 5000))
	if !isNew || span.n != 2 {
		t.Fatalf("new=%v span=%+v", isNew, span)
	}
	isNew, span2 := s.Set("a", []byte("tiny"))
	if isNew || span2.start != span.start {
		t.Fatalf("shrinking value must keep span: %+v vs %+v", span2, span)
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	// COW epochs.
	s.BeginCOWEpoch()
	if c := s.TouchPages(span); c != 2 {
		t.Fatalf("first touch copied %d, want 2", c)
	}
	if c := s.TouchPages(span); c != 0 {
		t.Fatalf("second touch copied %d, want 0", c)
	}
	s.BeginCOWEpoch()
	if c := s.TouchPages(span); c != 2 {
		t.Fatalf("new epoch touch copied %d, want 2", c)
	}
}

func TestStoreGrowingValueGetsFreshSpan(t *testing.T) {
	s := NewStore(4096)
	_, sp1 := s.Set("k", []byte("small"))
	_, sp2 := s.Set("k", bytes.Repeat([]byte("B"), 9000))
	if sp2.start == sp1.start || sp2.n != 3 {
		t.Fatalf("grown span = %+v (was %+v)", sp2, sp1)
	}
}

// Property: for any random interleaving of SETs, snapshot triggers, and
// policies, clean-shutdown recovery reproduces the final store exactly.
func TestRecoveryProperty(t *testing.T) {
	prop := func(seed int64, policyRaw, trigRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		policy := PeriodicalLog
		if policyRaw%2 == 1 {
			policy = AlwaysLog
		}
		trigger := int64(trigRaw%8+1) << 11 // 2-16 KiB
		r := newTestRig(Config{Policy: policy, WALSnapshotTrigger: trigger})
		final := map[string]string{}
		ok := true
		r.eng.Spawn("client", func(env *sim.Env) {
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("key%02d", rng.Intn(40))
				v := fmt.Sprintf("v-%d-%d", seed, i)
				if err := r.db.Set(env, k, []byte(v)); err != nil {
					ok = false
					return
				}
				final[k] = v
				if rng.Intn(60) == 0 {
					r.db.TriggerSnapshot(OnDemandSnapshot)
				}
			}
			r.db.Shutdown(env)
		})
		r.eng.Run()
		if !ok {
			return false
		}
		db2 := New(r.eng, r.be, Config{}, nil)
		r.eng.Spawn("recover", func(env *sim.Env) {
			if _, _, err := db2.Recover(env); err != nil {
				ok = false
			}
		})
		r.eng.Run()
		if !ok || db2.Store().Len() != len(final) {
			return false
		}
		for k, v := range final {
			if string(db2.Store().Get(k)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteRoundTripAndRecovery(t *testing.T) {
	r := newTestRig(Config{Policy: PeriodicalLog, WALSnapshotTrigger: 8 << 10})
	final := map[string]string{}
	r.eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 400; i++ {
			k := fmt.Sprintf("key%02d", i%50)
			if i%7 == 3 {
				if err := r.db.Del(env, k); err != nil {
					t.Error(err)
					return
				}
				delete(final, k)
				continue
			}
			v := fmt.Sprintf("v%d", i)
			if err := r.db.Set(env, k, []byte(v)); err != nil {
				t.Error(err)
				return
			}
			final[k] = v
		}
		// Deleted keys read as missing.
		if err := r.db.Del(env, "key01"); err != nil {
			t.Error(err)
			return
		}
		delete(final, "key01")
		if v, _ := r.db.Get(env, "key01"); v != nil {
			t.Errorf("deleted key returned %q", v)
		}
		// Take a snapshot with tombstones in the key list.
		trig := r.db.TriggerSnapshot(OnDemandSnapshot)
		trig.Reply.Wait(env)
		r.db.WaitNoSnapshot(env)
		r.db.Shutdown(env)
	})
	r.eng.Run()
	if r.db.Stats().Dels == 0 {
		t.Fatal("no deletes recorded")
	}
	if r.db.Store().Len() != len(final) {
		t.Fatalf("live keys = %d, want %d", r.db.Store().Len(), len(final))
	}

	db2 := New(r.eng, r.be, Config{}, nil)
	r.eng.Spawn("recover", func(env *sim.Env) {
		if _, _, err := db2.Recover(env); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if db2.Store().Len() != len(final) {
		t.Fatalf("recovered %d keys, want %d", db2.Store().Len(), len(final))
	}
	for k, v := range final {
		if got := db2.Store().Get(k); string(got) != v {
			t.Fatalf("key %s = %q, want %q", k, got, v)
		}
	}
	if got := db2.Store().Get("key01"); got != nil {
		t.Fatalf("deleted key survived recovery: %q", got)
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore(4096)
	s.Set("a", bytes.Repeat([]byte("x"), 5000))
	bytesBefore := s.Bytes()
	existed, span := s.Delete("a")
	if !existed || span.n != 2 {
		t.Fatalf("existed=%v span=%+v", existed, span)
	}
	if s.Get("a") != nil {
		t.Fatal("deleted key readable")
	}
	if s.Bytes() >= bytesBefore {
		t.Fatal("bytes not reclaimed")
	}
	if existed, _ := s.Delete("a"); existed {
		t.Fatal("double delete reported existed")
	}
	// Re-insert after delete gets a fresh span and counts as new.
	isNew, _ := s.Set("a", []byte("back"))
	if !isNew && s.Get("a") == nil {
		t.Fatal("re-insert failed")
	}
	if string(s.Get("a")) != "back" {
		t.Fatal("re-inserted value wrong")
	}
}
