package imdb

import (
	"bytes"
	"fmt"
	"io"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/snapshot"
	"github.com/slimio/slimio/internal/vtrace"
	"github.com/slimio/slimio/internal/wal"
)

// LogPolicy selects the WAL durability policy (paper §2.1, §5.1).
type LogPolicy int

const (
	// PeriodicalLog buffers log records in user space and flushes when the
	// server goes idle, the buffer exceeds FlushBytes, or the flush timer
	// fires (Redis's default).
	PeriodicalLog LogPolicy = iota
	// AlwaysLog makes every write durable before replying, with group
	// commit across the commands of one event-loop batch.
	AlwaysLog
)

func (p LogPolicy) String() string {
	if p == AlwaysLog {
		return "always"
	}
	return "periodical"
}

// Op is a client request opcode.
type Op int

const (
	// OpGet reads a key.
	OpGet Op = iota
	// OpSet writes a key.
	OpSet
	// OpDel deletes a key.
	OpDel
	opTick     // internal: flush timer
	opSnapshot // internal: trigger a snapshot
	opSnapDone // internal: snapshot child finished
	opStop     // internal: drain and shut down
)

// Response is what a request's Reply signal fires with.
type Response struct {
	Value []byte
	Err   error
}

// Request is one client command.
type Request struct {
	Op    Op
	Key   string
	Value []byte
	// Reply fires with *Response when the command is finished (for SET
	// under Always-Log: after it is durable).
	Reply *sim.Signal

	kind       SnapshotKind // for opSnapshot
	snapResult *snapResult  // for opSnapDone

	// Trace state: the op-layer root span opened at Submit, when the
	// request entered the queue, and when its apply finished (so the
	// commit.wait child can be stamped at reply time).
	span     vtrace.SpanID
	enqueued sim.Time
	applied  sim.Time
}

// snapResult carries a snapshot child's outcome back to the event loop.
type snapResult struct {
	kind   SnapshotKind
	writer *snapshot.Writer
	err    error
	ended  sim.Time
	proc   *sim.Proc
}

// SnapshotEvent records one completed snapshot for reporting.
type SnapshotEvent struct {
	Kind            SnapshotKind
	Start, End      sim.Time
	Duration        sim.Duration
	RawBytes        int64
	CompressedBytes int64
	Entries         int64
	COWCopiedPages  int64
	// CPU breakdown of the snapshot process, by billing tag. In-memory
	// work is BusySerialize+BusyCompress; the kernel-path share (Table 2,
	// Figure 2a) is BusySyscall+BusyCopy+BusyFS (zero under SlimIO, which
	// bills "ring"/"dispatch" instead, reported as BusyRing).
	BusySerialize sim.Duration
	BusyCompress  sim.Duration
	BusySyscall   sim.Duration
	BusyCopy      sim.Duration
	BusyFS        sim.Duration
	BusyRing      sim.Duration
}

// InMemoryTime is the snapshot CPU spent on serialization and compression.
func (ev *SnapshotEvent) InMemoryTime() sim.Duration {
	return ev.BusySerialize + ev.BusyCompress
}

// KernelPathTime is the snapshot CPU spent inside the I/O path (syscalls,
// copies, filesystem code, or ring/dispatch work under passthru).
func (ev *SnapshotEvent) KernelPathTime() sim.Duration {
	return ev.BusySyscall + ev.BusyCopy + ev.BusyFS + ev.BusyRing
}

// DeviceWaitTime is the remainder: time the snapshot process spent blocked
// on storage (device service, writeback throttling, scheduler queues).
func (ev *SnapshotEvent) DeviceWaitTime() sim.Duration {
	d := ev.Duration - ev.InMemoryTime() - ev.KernelPathTime()
	if d < 0 {
		d = 0
	}
	return d
}

// Stats aggregates engine counters.
type Stats struct {
	Gets, Sets     int64
	Dels           int64
	WALFlushes     int64
	WALSyncs       int64
	WALStalls      int64
	WALBytes       int64
	COWCopies      int64
	COWStall       sim.Duration
	ForkStall      sim.Duration
	PeakMemory     int64
	BaseMemory     int64
	Snapshots      []SnapshotEvent
	SnapshotsAbort int64
}

// Config tunes the engine.
type Config struct {
	Policy LogPolicy
	// WALSnapshotTrigger starts a WAL-Snapshot once this many bytes have
	// been logged since the last one (paper: 50–55 GB; scale accordingly).
	// Zero disables automatic WAL-Snapshots.
	WALSnapshotTrigger int64
	// FlushInterval is the Periodical-Log timer (default 1s).
	FlushInterval sim.Duration
	// FlushBytes force-flushes the WAL buffer when it grows past this
	// (default 4 MiB).
	FlushBytes int64
	// BatchMax bounds commands drained per event-loop iteration (and thus
	// per group commit under Always-Log). Default 64.
	BatchMax int
	// SnapshotChunk is the snapshot chunk size (default 64 KiB).
	SnapshotChunk int
	// Cost is the CPU cost model; zero value selects DefaultCostModel.
	Cost CostModel
	// Pool supplies the page segments the WAL buffer encodes into — share
	// the backend device's pool so drained segments flow to NAND without a
	// copy. Nil creates a private 4 KiB pool (tests, toy setups).
	Pool *bufpool.Pool
	// Trace, when non-nil, records one op-layer root span per client
	// command (queue / apply / commit.wait children), wal-layer root trees
	// per flush, and snapshot-layer root trees per snapshot child. The
	// same tracer must be installed on the backend stack for device spans
	// to nest underneath. Nil disables tracing.
	Trace *vtrace.Tracer
}

func (c *Config) fillDefaults() {
	if c.FlushInterval <= 0 {
		c.FlushInterval = sim.Second
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 4 << 20
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 64
	}
	if c.SnapshotChunk <= 0 {
		c.SnapshotChunk = snapshot.DefaultChunkSize
	}
	if c.Cost.CmdBaseCPU == 0 {
		c.Cost = DefaultCostModel()
	}
	if c.Pool == nil {
		c.Pool = bufpool.New(4096)
	}
}

// Engine is the database server: one event-loop process, a request queue,
// and snapshot child processes. Construct with New, then Start.
type Engine struct {
	eng *sim.Engine
	be  Backend
	cfg Config

	store *Store
	reqQ  *sim.Queue[*Request]

	walBuf *wal.Buffer
	// walRotated marks that the running WAL-Snapshot rotated the log at
	// fork, so its completion should discard the sealed segment.
	walRotated bool
	// walPending holds drained log bytes the backend could not accept
	// (log space exhausted while a snapshot runs); they are retried when
	// the snapshot completes. While non-empty, appended data is NOT durable
	// — the write-stall regime of Figure 4. The engine owns the chain's
	// segment references until a retry succeeds.
	walPending wal.Chain

	syncing  bool
	syncDone *sim.Broadcast

	snapActive   bool
	snapKind     SnapshotKind
	snapStart    sim.Time
	dictLock     *sim.Resource // serializes COW copies with snapshot iteration
	snapDone     *sim.Broadcast
	stopReq      *Request
	stopped      bool
	mainProc     *sim.Proc
	snapProcs    int
	opSeries     *metrics.Series
	stats        Stats
	lastSnapshot *SnapshotEvent
	lastRecovery *Recovered
}

// New builds an engine over backend be. opSeries, if non-nil, receives one
// count per completed command (for runtime RPS plots).
func New(eng *sim.Engine, be Backend, cfg Config, opSeries *metrics.Series) *Engine {
	cfg.fillDefaults()
	return &Engine{
		eng:      eng,
		be:       be,
		cfg:      cfg,
		walBuf:   wal.NewBuffer(cfg.Pool),
		store:    NewStore(cfg.Cost.MemPageSize),
		reqQ:     sim.NewQueue[*Request](eng),
		dictLock: sim.NewResource(eng, 1),
		snapDone: sim.NewBroadcast(eng),
		syncDone: sim.NewBroadcast(eng),
		opSeries: opSeries,
	}
}

// Start launches the event loop (and the flush ticker under
// Periodical-Log).
func (e *Engine) Start() {
	// The event loop and ticker are daemons: like any server they park
	// waiting for requests, and either run forever (open-ended scenarios)
	// or exit via Shutdown.
	e.mainProc = e.eng.SpawnDaemon("imdb-main", e.mainLoop)
	if e.cfg.Policy == PeriodicalLog {
		e.eng.SpawnDaemon("flush-ticker", e.ticker)
	}
}

// Submit enqueues a client request. The caller waits on req.Reply.
func (e *Engine) Submit(req *Request) {
	if req.Reply == nil {
		req.Reply = sim.NewSignal(e.eng)
	}
	if tr := e.cfg.Trace; tr.Enabled() {
		switch req.Op {
		case OpGet, OpSet, OpDel:
			req.enqueued = e.eng.Now()
			req.span = tr.Begin("op", opTraceName(req.Op), 0, req.enqueued)
		}
	}
	e.reqQ.Push(req)
}

// opTraceName maps a client opcode to its op-span name.
func opTraceName(op Op) string {
	switch op {
	case OpGet:
		return "get"
	case OpSet:
		return "set"
	default:
		return "del"
	}
}

// traceApply stamps the queue and apply children of r's op span: queued
// from Submit until start, applied over [start, now].
func (e *Engine) traceApply(env *sim.Env, r *Request, start sim.Time) {
	if r.span == 0 {
		return
	}
	tr := e.cfg.Trace
	tr.Emit("imdb", "queue", r.span, r.enqueued, start, 0)
	tr.Emit("imdb", "apply", r.span, start, env.Now(), 0)
	r.applied = env.Now()
}

// endOp closes r's op span at reply time; commitWait adds the child span
// covering the durability wait between apply and reply (Always-Log).
func (e *Engine) endOp(env *sim.Env, r *Request, commitWait bool) {
	if r.span == 0 {
		return
	}
	tr := e.cfg.Trace
	if commitWait && env.Now().Sub(r.applied) > 0 {
		tr.Emit("imdb", "commit.wait", r.span, r.applied, env.Now(), 0)
	}
	tr.End(r.span, env.Now())
	r.span = 0
}

// Get is a convenience blocking read.
func (e *Engine) Get(env *sim.Env, key string) ([]byte, error) {
	req := &Request{Op: OpGet, Key: key, Reply: sim.NewSignal(e.eng)}
	e.Submit(req)
	resp := req.Reply.Wait(env).(*Response)
	return resp.Value, resp.Err
}

// Set is a convenience blocking write.
func (e *Engine) Set(env *sim.Env, key string, value []byte) error {
	req := &Request{Op: OpSet, Key: key, Value: value, Reply: sim.NewSignal(e.eng)}
	e.Submit(req)
	resp := req.Reply.Wait(env).(*Response)
	return resp.Err
}

// Del is a convenience blocking delete.
func (e *Engine) Del(env *sim.Env, key string) error {
	req := &Request{Op: OpDel, Key: key, Reply: sim.NewSignal(e.eng)}
	e.Submit(req)
	resp := req.Reply.Wait(env).(*Response)
	return resp.Err
}

// TriggerSnapshot requests a snapshot of the given kind; it is ignored if
// one is already running (the paper: the two kinds cannot run concurrently).
// The returned signal fires when the request has been accepted or dropped.
func (e *Engine) TriggerSnapshot(kind SnapshotKind) *Request {
	req := &Request{Op: opSnapshot, kind: kind, Reply: sim.NewSignal(e.eng)}
	e.Submit(req)
	return req
}

// Shutdown asks the event loop to drain, waits for any snapshot to finish,
// flushes the WAL, and stops. Blocks until done.
func (e *Engine) Shutdown(env *sim.Env) {
	req := &Request{Op: opStop, Reply: sim.NewSignal(e.eng)}
	e.Submit(req)
	req.Reply.Wait(env)
}

// Stats returns a copy of the engine counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Snapshots = append([]SnapshotEvent(nil), e.stats.Snapshots...)
	s.BaseMemory = e.memoryBase()
	return s
}

// Store exposes the keyspace (for verification in tests and recovery).
func (e *Engine) Store() *Store { return e.store }

// Backend exposes the persistence backend.
func (e *Engine) Backend() Backend { return e.be }

// SnapshotActive reports whether a snapshot process is running.
func (e *Engine) SnapshotActive() bool { return e.snapActive }

// WaitNoSnapshot blocks the calling process until no snapshot is active.
func (e *Engine) WaitNoSnapshot(env *sim.Env) {
	for e.snapActive {
		e.snapDone.Wait(env)
	}
}

// WALBufferedBytes reports bytes accumulated in the WAL buffer since the
// last drain — the telemetry plane's WAL-buffer-depth gauge.
func (e *Engine) WALBufferedBytes() int { return e.walBuf.Len() }

// WALPendingBytes reports drained log bytes the backend has not yet
// accepted; a growing value marks an fsync backlog.
func (e *Engine) WALPendingBytes() int { return e.walPending.Len() }

// SyncInFlight reports whether a WAL sync is outstanding.
func (e *Engine) SyncInFlight() bool { return e.syncing }

// MemoryNow reports the engine's current modelled memory footprint —
// the instantaneous value whose maximum Stats.PeakMemory records.
func (e *Engine) MemoryNow() int64 { return e.memoryNow() }

// memoryBase is the steady-state footprint: store payload + per-key
// overhead.
func (e *Engine) memoryBase() int64 {
	return e.store.Bytes() + int64(e.store.Len())*int64(e.cfg.Cost.KeyOverhead)
}

// memoryNow adds snapshot-period overheads: COW page copies and the WAL
// rewrite buffer (Table 1's near-doubling comes from the COW term).
func (e *Engine) memoryNow() int64 {
	m := e.memoryBase() + int64(e.walBuf.Len()+e.walPending.Len())
	if e.snapActive {
		// The child shares pages with the parent until COW faults copy them.
		m += e.store.CopiedPages() * e.store.PageSize()
	}
	return m
}

func (e *Engine) notePeak() {
	if m := e.memoryNow(); m > e.stats.PeakMemory {
		e.stats.PeakMemory = m
	}
}

func (e *Engine) ticker(env *sim.Env) {
	for {
		env.Sleep(e.cfg.FlushInterval)
		if e.stopped {
			return
		}
		e.reqQ.Push(&Request{Op: opTick})
	}
}

func (e *Engine) mainLoop(env *sim.Env) {
	for {
		req, ok := e.reqQ.Pop(env)
		if !ok {
			return
		}
		batch := []*Request{req}
		for len(batch) < e.cfg.BatchMax {
			r, ok := e.reqQ.TryPop()
			if !ok {
				break
			}
			batch = append(batch, r)
		}

		var setReplies []*Request
		for _, r := range batch {
			switch r.Op {
			case OpGet:
				e.execGet(env, r)
			case OpSet:
				e.execSet(env, r)
				if e.cfg.Policy == AlwaysLog {
					setReplies = append(setReplies, r)
				} else {
					e.endOp(env, r, false)
					r.Reply.Fire(&Response{})
				}
			case OpDel:
				e.execDel(env, r)
				if e.cfg.Policy == AlwaysLog {
					setReplies = append(setReplies, r)
				} else {
					e.endOp(env, r, false)
					r.Reply.Fire(&Response{})
				}
			case opTick:
				// Periodical-Log timer: make everything appended so far
				// durable. As in Redis's appendfsync-everysec, the sync runs
				// on a background thread; the event loop only blocks when
				// the previous sync is still lagging.
				if err := e.appendWAL(env, 0); err != nil {
					panic(fmt.Sprintf("imdb: WAL append failed: %v", err))
				}
				for e.syncing {
					e.syncDone.Wait(env)
				}
				e.syncing = true
				env.Spawn("wal-bio-sync", func(child *sim.Env) {
					tr := e.cfg.Trace
					span := tr.Begin("wal", "sync", 0, child.Now())
					tr.SetScope(span)
					err := e.be.WALSync(child)
					tr.SetScope(0)
					tr.End(span, child.Now())
					if err != nil {
						panic(fmt.Sprintf("imdb: WAL sync failed: %v", err))
					}
					e.stats.WALSyncs++
					e.syncing = false
					e.syncDone.Notify()
				})
			case opSnapshot:
				e.maybeStartSnapshot(env, r.kind)
				r.Reply.Fire(&Response{})
			case opSnapDone:
				e.finishSnapshot(env, r.snapResult)
			case opStop:
				e.stopReq = r
			}
		}

		if e.cfg.Policy == AlwaysLog && (len(setReplies) > 0 || e.walBuf.Len() > 0) {
			if err := e.flushWAL(env); err != nil {
				resp := &Response{Err: err}
				for _, r := range setReplies {
					e.endOp(env, r, true)
					r.Reply.Fire(resp)
				}
				setReplies = nil
			}
		}
		for _, r := range setReplies {
			e.endOp(env, r, true)
			r.Reply.Fire(&Response{})
		}

		// Automatic WAL-Snapshot trigger.
		if e.cfg.WALSnapshotTrigger > 0 && !e.snapActive &&
			e.be.WALDurableSize()+int64(e.walBuf.Len()) >= e.cfg.WALSnapshotTrigger {
			e.maybeStartSnapshot(env, WALSnapshot)
		}

		// Periodical-Log: hand the buffer to the backend at the end of each
		// event-loop iteration (Redis flushes the AOF buffer in
		// beforeSleep); durability comes from the flush timer above.
		if e.cfg.Policy == PeriodicalLog && e.walBuf.Len() > 0 {
			if err := e.appendWAL(env, 0); err != nil {
				panic(fmt.Sprintf("imdb: WAL append failed: %v", err))
			}
		}

		// Shutdown once no snapshot is in flight: the child wakes us via
		// opSnapDone if one is. Wait out any background sync first.
		if e.stopReq != nil && !e.snapActive {
			for e.syncing {
				e.syncDone.Wait(env)
			}
			err := e.flushWAL(env)
			e.ReleaseBuffers() // drop the retained tail and any parked chain
			e.stopped = true
			e.stopReq.Reply.Fire(&Response{Err: err})
			return
		}
	}
}

func (e *Engine) execGet(env *sim.Env, r *Request) {
	cost := e.cfg.Cost
	start := env.Now()
	v := e.store.Get(r.Key)
	env.Work("cmd", cost.CmdBaseCPU+sim.DurationForBytes(int64(len(v)), cost.StoreBandwidth))
	e.stats.Gets++
	e.countOp(env)
	e.traceApply(env, r, start)
	e.endOp(env, r, false)
	r.Reply.Fire(&Response{Value: v})
}

func (e *Engine) execSet(env *sim.Env, r *Request) {
	cost := e.cfg.Cost
	start := env.Now()
	env.Work("cmd", cost.CmdBaseCPU+sim.DurationForBytes(int64(len(r.Value)), cost.StoreBandwidth))
	_, span := e.store.Set(r.Key, r.Value)

	// Copy-on-write: during a snapshot, first touch of a shared page copies
	// it, stalling both processes on the dict lock (paper §2.2).
	if e.snapActive {
		if copied := e.store.TouchPages(span); copied > 0 {
			t0 := env.Now()
			e.dictLock.Acquire(env)
			env.Work("cow", cost.COWCopyPerPage*sim.Duration(copied))
			e.dictLock.Release()
			e.stats.COWCopies += copied
			e.stats.COWStall += env.Now().Sub(t0)
		}
	}

	e.walBuf.AppendString(wal.OpSet, r.Key, r.Value)
	e.stats.Sets++
	e.countOp(env)
	e.traceApply(env, r, start)
	e.notePeak()
}

// execDel removes a key and logs a deletion record; like SETs, deletions
// during a snapshot pay copy-on-write for the pages they touch.
func (e *Engine) execDel(env *sim.Env, r *Request) {
	cost := e.cfg.Cost
	start := env.Now()
	env.Work("cmd", cost.CmdBaseCPU)
	existed, span := e.store.Delete(r.Key)
	if e.snapActive && existed {
		if copied := e.store.TouchPages(span); copied > 0 {
			t0 := env.Now()
			e.dictLock.Acquire(env)
			env.Work("cow", cost.COWCopyPerPage*sim.Duration(copied))
			e.dictLock.Release()
			e.stats.COWCopies += copied
			e.stats.COWStall += env.Now().Sub(t0)
		}
	}
	e.walBuf.AppendString(wal.OpDel, r.Key, nil)
	e.stats.Dels++
	e.countOp(env)
	e.traceApply(env, r, start)
}

func (e *Engine) countOp(env *sim.Env) {
	if e.opSeries != nil {
		e.opSeries.Add(env.Now(), 1)
	}
}

// appendWAL drains the user-level buffer into the backend without forcing
// durability. If the backend is out of log space while a snapshot is in
// flight (which will free the old WAL on completion), the bytes are parked
// and retried at snapshot completion: the engine keeps serving but writes
// lose durability until the stall clears, as §5.4 observes for direct-write
// designs under device pressure.
func (e *Engine) appendWAL(env *sim.Env, parent vtrace.SpanID) error {
	if !e.walPending.Empty() {
		// Already stalled on log space: nothing can free it except a
		// snapshot completion, so keep buffering instead of re-offering
		// the parked chain on every retry.
		return nil
	}
	if e.walBuf.Len() == 0 {
		return nil
	}
	data := e.walBuf.Drain()
	n := int64(data.Len())
	tr := e.cfg.Trace
	span := tr.Begin("wal", "append", parent, env.Now())
	tr.SetArg(span, n)
	tr.SetScope(span)
	err := e.be.WALAppend(env, data)
	tr.SetScope(0)
	tr.End(span, env.Now())
	if err != nil {
		// On error the chain's references stay with the engine (see
		// imdb.Backend): park and retry at snapshot completion.
		if e.snapActive {
			e.walPending = data
			e.stats.WALStalls++
			return nil
		}
		if e.cfg.WALSnapshotTrigger > 0 {
			// Force the log-compacting snapshot and park the bytes.
			e.maybeStartSnapshot(env, WALSnapshot)
			e.walPending = data
			e.stats.WALStalls++
			return nil
		}
		data.Release()
		return err
	}
	e.stats.WALFlushes++
	e.stats.WALBytes += n
	return nil
}

// flushWAL drains the buffer and makes it durable (Always-Log batches,
// shutdown).
func (e *Engine) flushWAL(env *sim.Env) error {
	tr := e.cfg.Trace
	span := tr.Begin("wal", "flush", 0, env.Now())
	defer func() { tr.End(span, env.Now()) }()
	if err := e.appendWAL(env, span); err != nil {
		return err
	}
	tr.SetScope(span)
	err := e.be.WALSync(env)
	tr.SetScope(0)
	if err != nil {
		return err
	}
	e.stats.WALSyncs++
	return nil
}

// maybeStartSnapshot forks a snapshot child unless one is already running.
func (e *Engine) maybeStartSnapshot(env *sim.Env, kind SnapshotKind) {
	if e.snapActive {
		return
	}
	// fork(2): the main process stalls for the page-table copy. The stall
	// is part of the snapshot interval (phase accounting includes it).
	cost := e.cfg.Cost
	e.snapStart = env.Now()
	stall := cost.ForkBase + cost.ForkPerPage*sim.Duration(e.store.Pages())
	t0 := env.Now()
	env.Work("fork", stall)
	e.stats.ForkStall += env.Now().Sub(t0)
	e.cfg.Trace.Instant("snapshot", "fork", env.Now(), int64(stall))

	e.store.BeginCOWEpoch()
	e.snapActive = true
	e.snapKind = kind
	e.walRotated = false
	if kind == WALSnapshot {
		// Rotate the log at the fork point (Redis 7 multipart-AOF style):
		// pre-fork records stay in the sealed segment that the snapshot
		// will supersede; post-fork records start a fresh segment.
		if err := e.appendWAL(env, 0); err == nil && e.walPending.Empty() {
			if err := e.be.WALRotate(env); err == nil {
				e.walRotated = true
				// Start the post-fork records on a fresh segment so the
				// buffer's page boundaries track the new log head.
				e.walBuf.Cut()
			}
		}
	}
	keysAtFork := e.store.ListedLen()
	e.snapProcs++
	env.Spawn(fmt.Sprintf("snapshot-%s-%d", kind, e.snapProcs), func(child *sim.Env) {
		e.runSnapshot(child, kind, keysAtFork)
	})
}

// runSnapshot is the snapshot child process: iterate the keyspace under
// short dict-lock holds, serialize and compress chunks, and stream them into
// the backend sink. Completion is reported back to the event loop through
// the request queue so that WAL swapping happens in main-loop context.
func (e *Engine) runSnapshot(env *sim.Env, kind SnapshotKind, keysAtFork int) {
	tr := e.cfg.Trace
	snapSpan := tr.Begin("snapshot", kind.String(), 0, env.Now())
	report := func(w *snapshot.Writer, err error) {
		tr.End(snapSpan, env.Now())
		e.reqQ.Push(&Request{Op: opSnapDone, snapResult: &snapResult{
			kind: kind, writer: w, err: err, ended: env.Now(), proc: env.Proc(),
		}})
	}
	cost := e.cfg.Cost
	tr.SetScope(snapSpan)
	sink, err := e.be.BeginSnapshot(env, kind)
	tr.SetScope(0)
	if err != nil {
		report(nil, err)
		return
	}
	var werr error
	w, err := snapshot.NewWriter(e.cfg.SnapshotChunk, func(chunk []byte, raw int) error {
		env.Work("compress", sim.DurationForBytes(int64(raw), cost.CompressBandwidth))
		tr.SetScope(snapSpan)
		err := sink.Write(env, chunk)
		tr.SetScope(0)
		return err
	})
	if err != nil {
		_ = sink.Abort(env)
		report(nil, err)
		return
	}
	type kv struct {
		k string
		v []byte
	}
	batch := make([]kv, 0, cost.SnapshotBatchKeys)
	for i := 0; i < keysAtFork && werr == nil; i += cost.SnapshotBatchKeys {
		endIdx := i + cost.SnapshotBatchKeys
		if endIdx > keysAtFork {
			endIdx = keysAtFork
		}
		// Only the dict walk holds the lock (the COW-contended resource);
		// serialization, compression and I/O run outside it, as they do in
		// a real forked child.
		e.dictLock.Acquire(env)
		batch = batch[:0]
		for j := i; j < endIdx; j++ {
			k := e.store.KeyAt(j)
			if v := e.store.Get(k); v != nil {
				batch = append(batch, kv{k, v})
			}
		}
		e.dictLock.Release()
		var batchBytes int64
		for _, ent := range batch {
			batchBytes += int64(snapshot.EntrySize([]byte(ent.k), ent.v))
			if werr = w.Add([]byte(ent.k), ent.v); werr != nil {
				break
			}
		}
		env.Work("serialize", sim.DurationForBytes(batchBytes, cost.SerializeBandwidth))
		env.Yield() // let the main loop interleave between batches
	}
	if werr == nil {
		werr = w.Close()
	}
	if werr != nil {
		_ = sink.Abort(env)
		report(nil, werr)
		return
	}
	tr.SetScope(snapSpan)
	err = sink.Commit(env)
	tr.SetScope(0)
	if err != nil {
		report(nil, err)
		return
	}
	report(w, nil)
}

// finishSnapshot runs in the event loop when the child reports completion:
// record the event, and for WAL-Snapshots swap in the new WAL seeded with
// the rewrite buffer.
func (e *Engine) finishSnapshot(env *sim.Env, res *snapResult) {
	if res.err != nil {
		e.stats.SnapshotsAbort++
	} else {
		w := res.writer
		ev := SnapshotEvent{
			Kind:            res.kind,
			Start:           e.snapStart,
			End:             res.ended,
			Duration:        res.ended.Sub(e.snapStart),
			RawBytes:        w.RawBytes(),
			CompressedBytes: w.CompressedBytes(),
			Entries:         w.Entries(),
			COWCopiedPages:  e.store.CopiedPages(),
			BusySerialize:   res.proc.BusyTime("serialize"),
			BusyCompress:    res.proc.BusyTime("compress"),
			BusySyscall:     res.proc.BusyTime("syscall"),
			BusyCopy:        res.proc.BusyTime("copy"),
			BusyFS:          res.proc.BusyTime("fs"),
			BusyRing:        res.proc.BusyTime("ring") + res.proc.BusyTime("dispatch"),
		}
		e.stats.Snapshots = append(e.stats.Snapshots, ev)
		e.lastSnapshot = &ev
		if res.kind == WALSnapshot && e.walRotated {
			// The snapshot covers everything up to the fork, so the sealed
			// pre-fork segment is obsolete; the current segment (post-fork
			// records) simply continues. No replay is needed.
			_ = e.be.WALDiscardOld(env)
		}
	}
	e.notePeak()
	e.walRotated = false
	e.snapActive = false
	e.snapDone.Notify()
	// Retry any bytes parked during the snapshot (On-Demand completions do
	// not clear the log, so the parked data still needs appending).
	if !e.walPending.Empty() {
		data := e.walPending
		e.walPending = wal.Chain{}
		n := int64(data.Len())
		tr := e.cfg.Trace
		span := tr.Begin("wal", "append", 0, env.Now())
		tr.SetArg(span, n)
		tr.SetScope(span)
		err := e.be.WALAppend(env, data)
		tr.SetScope(0)
		tr.End(span, env.Now())
		if err != nil {
			// Still no space: stay stalled until the next completion.
			e.walPending = data
			e.stats.WALStalls++
		} else {
			e.stats.WALFlushes++
			e.stats.WALBytes += n
		}
	}
}

// ReleaseBuffers drops every pooled segment the engine still holds — the WAL
// buffer's tail and any parked (stalled) chain. Teardown only: experiment
// cells call it before asserting pool quiescence. Parked bytes were never
// durable, so dropping them models exactly what the stall regime loses.
func (e *Engine) ReleaseBuffers() {
	e.walBuf.Close()
	e.walPending.Release()
}

// LastSnapshot returns the most recent completed snapshot event, or nil.
func (e *Engine) LastSnapshot() *SnapshotEvent { return e.lastSnapshot }

// LastRecovery returns what the backend handed to the most recent Recover
// call — including its Degraded notes and WAL truncation point — or nil if
// Recover has not run.
func (e *Engine) LastRecovery() *Recovered { return e.lastRecovery }

// Recover loads durable state from the backend into a fresh store,
// returning counts. It must be called before Start (on a new Engine) and
// bills realistic CPU: decompress + insert per entry, then WAL replay.
func (e *Engine) Recover(env *sim.Env) (entries int64, walRecords int64, err error) {
	rec, err := e.be.Recover(env)
	if err != nil {
		return 0, 0, err
	}
	e.lastRecovery = rec
	cost := e.cfg.Cost
	if rec.HaveSnapshot {
		r := snapshot.NewReader(bytes.NewReader(rec.Snapshot))
		for {
			batch, rerr := r.Next()
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				// A committed snapshot should decode end to end; damage here
				// means the device lost pages under it. Keep what loaded and
				// lean on the WAL replay below rather than refusing to start.
				rec.Degraded = append(rec.Degraded, fmt.Sprintf("snapshot decode stopped after %d entries: %v", entries, rerr))
				break
			}
			var raw int64
			for _, ent := range batch {
				raw += int64(snapshot.EntrySize(ent.Key, ent.Value))
				e.store.Set(string(ent.Key), ent.Value)
				entries++
			}
			env.Work("decompress", sim.DurationForBytes(raw, cost.DecompressBandwidth))
			env.Work("insert", cost.InsertPerEntry*sim.Duration(len(batch)))
		}
	}
	// Replay the log segments in order; each truncates independently at a
	// torn record. Corruption past the durable prefix is noted, not fatal:
	// the prefix is exactly what the backend guaranteed durable.
	for i, seg := range rec.WALSegments {
		recs, prefix, corrupt := wal.DecodeStream(seg)
		if corrupt {
			rec.Degraded = append(rec.Degraded, fmt.Sprintf("wal segment %d: corrupt frame at byte %d (replayed %d records)", i, prefix, len(recs)))
		}
		for _, r := range recs {
			switch r.Op {
			case wal.OpDel:
				e.store.Delete(string(r.Key))
			default:
				e.store.Set(string(r.Key), r.Value)
			}
			walRecords++
			env.Work("insert", cost.InsertPerEntry)
		}
		env.Work("insert", sim.DurationForBytes(int64(len(seg)), cost.StoreBandwidth))
	}
	return entries, walRecords, nil
}
