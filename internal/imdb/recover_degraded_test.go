package imdb

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/snapshot"
	"github.com/slimio/slimio/internal/wal"
)

// cannedBackend hands Recover a pre-built Recovered, so these tests can put
// precisely damaged state in front of the engine without arranging a real
// device crash.
type cannedBackend struct {
	*memBackend
	rec *Recovered
}

func (c *cannedBackend) Recover(env *sim.Env) (*Recovered, error) { return c.rec, nil }

// recoverCanned runs Engine.Recover over a canned Recovered and returns the
// engine (for store and LastRecovery assertions) plus Recover's counts.
func recoverCanned(t *testing.T, rec *Recovered) (*Engine, int64, int64) {
	t.Helper()
	eng := sim.NewEngine()
	be := &cannedBackend{memBackend: newMemBackend(eng), rec: rec}
	db := New(eng, be, Config{Policy: PeriodicalLog}, nil)
	var entries, walRecs int64
	eng.Spawn("recover", func(env *sim.Env) {
		var err error
		entries, walRecs, err = db.Recover(env)
		if err != nil {
			t.Errorf("recover: %v", err)
		}
	})
	eng.Run()
	return db, entries, walRecs
}

// buildSnapshotImage writes entries through the real snapshot Writer with a
// small chunk size and returns the image plus each payload chunk's offset
// within it (excluding the magic preamble and trailer).
func buildSnapshotImage(t *testing.T, chunkSize int, keys, vals [][]byte) (img []byte, chunkOffs []int) {
	t.Helper()
	var buf []byte
	w, err := snapshot.NewWriter(chunkSize, func(chunk []byte, rawBytes int) error {
		// The writer emits the magic first and the trailer last; payload
		// chunks carry a 12-byte header and land in between.
		if !bytes.HasPrefix(chunk, snapshot.Magic) && rawBytes > len(chunk) {
			chunkOffs = append(chunkOffs, len(buf))
		}
		buf = append(buf, chunk...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if err := w.Add(keys[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf, chunkOffs
}

// TestRecoverDegradedSnapshotDecode: a committed snapshot whose image lost
// bytes under it (a chunk CRC mismatch mid-image) must not fail recovery —
// the engine keeps the entries that decoded, notes the damage in Degraded,
// and still replays the WAL on top.
func TestRecoverDegradedSnapshotDecode(t *testing.T) {
	var keys, vals [][]byte
	for i := 0; i < 10; i++ {
		keys = append(keys, []byte(fmt.Sprintf("s%02d", i)))
		vals = append(vals, bytes.Repeat([]byte{byte('a' + i)}, 30))
	}
	// ~38 raw bytes per entry and a 64-byte chunk target → two entries per
	// chunk, five chunks.
	img, chunkOffs := buildSnapshotImage(t, 64, keys, vals)
	if len(chunkOffs) < 2 {
		t.Fatalf("image has %d payload chunks, need >= 2", len(chunkOffs))
	}
	// Flip one byte inside the second chunk's compressed payload (past its
	// 12-byte header) — the CRC check must stop the decode there.
	img[chunkOffs[1]+12+1] ^= 0xff

	// The exact note embeds the reader's error; derive it from the same
	// damaged image rather than hard-coding the wording.
	surviving := int64(0)
	var decodeErr error
	r := snapshot.NewReader(bytes.NewReader(img))
	for {
		batch, err := r.Next()
		if err != nil {
			decodeErr = err
			break
		}
		surviving += int64(len(batch))
	}
	if decodeErr == nil || surviving == 0 || surviving >= int64(len(keys)) {
		t.Fatalf("damaged image must decode partially: %d entries, err %v", surviving, decodeErr)
	}

	walSeg := wal.AppendRecord(nil, wal.OpSet, []byte("w00"), []byte("wal-value"))
	db, entries, walRecs := recoverCanned(t, &Recovered{
		HaveSnapshot:   true,
		Kind:           WALSnapshot,
		Snapshot:       img,
		WALSegments:    [][]byte{walSeg},
		WALTruncatedAt: -1,
	})

	if entries != surviving {
		t.Errorf("recovered %d snapshot entries, want %d (the decodable prefix)", entries, surviving)
	}
	if walRecs != 1 {
		t.Errorf("replayed %d wal records, want 1 (replay continues past snapshot damage)", walRecs)
	}
	rec := db.LastRecovery()
	if rec == nil {
		t.Fatal("LastRecovery is nil after Recover")
	}
	want := fmt.Sprintf("snapshot decode stopped after %d entries: %v", surviving, decodeErr)
	if len(rec.Degraded) != 1 || rec.Degraded[0] != want {
		t.Errorf("Degraded = %q, want exactly [%q]", rec.Degraded, want)
	}
	if rec.WALTruncatedAt != -1 {
		t.Errorf("WALTruncatedAt = %d, want -1 (snapshot damage is not a WAL truncation)", rec.WALTruncatedAt)
	}
	for i := int64(0); i < surviving; i++ {
		if got := db.Store().Get(string(keys[i])); !bytes.Equal(got, vals[i]) {
			t.Errorf("store[%s] = %q, want the snapshot value", keys[i], got)
		}
	}
	for i := surviving; i < int64(len(keys)); i++ {
		if got := db.Store().Get(string(keys[i])); got != nil {
			t.Errorf("store[%s] = %q, want absent (past the damage point)", keys[i], got)
		}
	}
	if got := db.Store().Get("w00"); !bytes.Equal(got, []byte("wal-value")) {
		t.Errorf("store[w00] = %q, want the wal value", got)
	}
}

// TestRecoverDegradedCorruptWALFrame: a WAL segment whose tail is garbage
// (a torn frame mid-segment) must replay its valid prefix, note the exact
// segment index and byte offset in Degraded, and keep WALTruncatedAt
// consistent with the note.
func TestRecoverDegradedCorruptWALFrame(t *testing.T) {
	mkrec := func(i int) []byte {
		return wal.AppendRecord(nil, wal.OpSet,
			[]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte{byte('a' + i)}, 20))
	}
	seg0 := append(mkrec(0), mkrec(1)...)
	seg1 := append(mkrec(2), mkrec(3)...)
	// Non-zero garbage after the valid prefix: DecodeStream must classify
	// the tail as corruption, not clean trailing-zero padding.
	corrupt := append(append([]byte(nil), seg1...), bytes.Repeat([]byte{0xde}, 17)...)

	recs, prefix, isCorrupt := wal.DecodeStream(corrupt)
	if !isCorrupt || len(recs) != 2 || prefix != int64(len(seg1)) {
		t.Fatalf("test segment not torn as intended: %d recs, prefix %d, corrupt %v", len(recs), prefix, isCorrupt)
	}

	db, entries, walRecs := recoverCanned(t, &Recovered{
		WALSegments:    [][]byte{seg0, corrupt},
		WALTruncatedAt: prefix,
	})

	if entries != 0 {
		t.Errorf("recovered %d snapshot entries, want 0", entries)
	}
	if walRecs != 4 {
		t.Errorf("replayed %d wal records, want 4 (both segments' valid prefixes)", walRecs)
	}
	rec := db.LastRecovery()
	if rec == nil {
		t.Fatal("LastRecovery is nil after Recover")
	}
	want := fmt.Sprintf("wal segment 1: corrupt frame at byte %d (replayed 2 records)", prefix)
	if len(rec.Degraded) != 1 || rec.Degraded[0] != want {
		t.Errorf("Degraded = %q, want exactly [%q]", rec.Degraded, want)
	}
	if rec.WALTruncatedAt != int64(prefix) {
		t.Errorf("WALTruncatedAt = %d, want %d", rec.WALTruncatedAt, prefix)
	}
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%02d", i)
		if got := db.Store().Get(key); !bytes.Equal(got, bytes.Repeat([]byte{byte('a' + i)}, 20)) {
			t.Errorf("store[%s] = %q, want the replayed value", key, got)
		}
	}
}
