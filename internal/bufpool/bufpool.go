// Package bufpool provides the reference-counted, page-aligned buffer pool
// behind the zero-copy data plane: payload bytes are encoded once into a
// pooled segment and every lower layer (wal chain → uring submission →
// ssd/fdp/ftl → nand program) passes a reference to the same backing memory
// instead of copying it.
//
// # Ownership contract
//
// A Segment is acquired with refcount 1 (Pool.Get). Whoever holds a
// reference may read the bytes; only the producer that acquired the segment
// may write, and only append-only: bytes at offsets below any byte range
// that has been handed to another holder (a drained wal.Chain, a submitted
// device write) are immutable until every reference is released. Each holder
// releases exactly once (Release), or — when the release happens because a
// NAND block erase recycled the stored page — with ReleaseAt, which parks
// the segment in a virtual-time quarantine until every in-flight reader
// horizon has passed (the same rule the PR-2 nand page arena enforced; that
// arena is folded into this pool).
//
// Releasing a reference you do not hold panics: refcounts never go
// negative, and under `-race` builds the panic carries the recorded
// acquire/release call sites (see debug_race.go).
//
// # Determinism
//
// The pool consults only the simulation clock (SetClock) and allocates from
// append-only free lists, so runs remain bit-identical serial and parallel:
// each experiment cell owns one pool, single-runner like the engine itself.
// Backing chunks are recycled across cells through a process-global cache
// (Close), zeroed on reuse so a recycled chunk is bit-indistinguishable from
// freshly allocated memory.
package bufpool

import (
	"fmt"

	"github.com/slimio/slimio/internal/sim"
)

// Clock exposes the engine's current virtual time; quarantined segments
// become reusable only once the clock passes their ready time.
type Clock interface {
	Now() sim.Time
}

// chunkSegs is how many segments one backing allocation carves: big enough
// to amortize allocator pressure, small enough not to overshoot tiny runs.
const chunkSegs = 64

// Pool hands out fixed-size (page-size) reference-counted segments.
// Not safe for concurrent use; simulation context only (one pool per cell).
type Pool struct {
	segSize int
	clock   Clock

	chunk  []byte     // current carve source
	chunks [][]byte   // every chunk carved, returned to the chunk cache on Close
	free   []*Segment // LIFO free list
	// quar is a FIFO of finally-released segments whose quarantine has not
	// expired. Ready times are harvested conservatively in FIFO order: a
	// head with a later ready time only delays reuse of what follows, never
	// allows early reuse.
	quar    []*Segment
	quarOff int

	inFlight  int64
	allocated int64
}

// New builds a pool of segSize-byte segments (the device page size).
func New(segSize int) *Pool {
	if segSize <= 0 {
		panic(fmt.Sprintf("bufpool: invalid segment size %d", segSize))
	}
	return &Pool{segSize: segSize}
}

// SetClock attaches the simulation clock. Without a clock the pool still
// recycles plainly-released segments but keeps quarantined ones parked
// forever (standalone unit tests don't erase blocks).
func (p *Pool) SetClock(c Clock) { p.clock = c }

// SegSize reports the fixed segment size.
func (p *Pool) SegSize() int { return p.segSize }

// InFlight reports how many segments currently have a non-zero refcount.
// Experiment teardown asserts this reaches zero after every layer releases
// (the leak detector of DESIGN.md §3 "Buffer ownership").
func (p *Pool) InFlight() int64 { return p.inFlight }

// Allocated reports how many segments the pool ever carved (footprint).
func (p *Pool) Allocated() int64 { return p.allocated }

// Get returns a segment with refcount 1 and undefined contents.
func (p *Pool) Get() *Segment {
	if p.clock != nil {
		p.harvest(p.clock.Now())
	}
	var s *Segment
	if n := len(p.free); n > 0 {
		s = p.free[n-1]
		p.free = p.free[:n-1]
	} else {
		s = p.carve()
	}
	s.refs = 1
	s.ready = 0
	p.inFlight++
	debugAcquire(s)
	return s
}

// harvest moves quarantined segments whose ready time has passed onto the
// free list, compacting the FIFO's consumed prefix once it dominates.
func (p *Pool) harvest(now sim.Time) {
	for p.quarOff < len(p.quar) && p.quar[p.quarOff].ready < now {
		p.free = append(p.free, p.quar[p.quarOff])
		p.quar[p.quarOff] = nil
		p.quarOff++
	}
	if p.quarOff > len(p.quar)/2 && p.quarOff > 0 {
		n := copy(p.quar, p.quar[p.quarOff:])
		for i := n; i < len(p.quar); i++ {
			p.quar[i] = nil
		}
		p.quar = p.quar[:n]
		p.quarOff = 0
	}
}

// carve cuts a fresh segment out of the current backing chunk.
func (p *Pool) carve() *Segment {
	if len(p.chunk) < p.segSize {
		p.chunk = getChunk(chunkSegs * p.segSize)
		p.chunks = append(p.chunks, p.chunk)
	}
	b := p.chunk[:p.segSize:p.segSize]
	p.chunk = p.chunk[p.segSize:]
	p.allocated++
	return &Segment{pool: p, b: b}
}

// put files a finally-released segment for reuse.
func (p *Pool) put(s *Segment) {
	p.inFlight--
	if s.ready == 0 || (p.clock != nil && s.ready < p.clock.Now()) {
		p.free = append(p.free, s)
		return
	}
	p.quar = append(p.quar, s)
}

// Segment is one pooled, fixed-size buffer.
type Segment struct {
	pool  *Pool
	b     []byte
	refs  int32
	ready sim.Time   // latest quarantine deadline seen via ReleaseAt
	dbg   *debugInfo // acquire/release sites, race builds only
}

// Bytes returns the segment's full backing slice (len == cap == SegSize).
// The slice is valid only while the caller holds a reference; slimio-vet's
// retainbuf pass flags uses that outlive the caller's Release.
func (s *Segment) Bytes() []byte { return s.b }

// Refs reports the current reference count (test hook).
func (s *Segment) Refs() int { return int(s.refs) }

// Retain adds a reference (e.g. the NAND array storing the page, or the wal
// buffer keeping the shared tail segment across a drain).
func (s *Segment) Retain() {
	if s.refs <= 0 {
		panic(fmt.Sprintf("bufpool: Retain on dead segment (refs=%d)%s", s.refs, debugDump(s)))
	}
	s.refs++
	debugAcquire(s)
}

// Release drops a reference; the final release recycles the segment
// (honoring any quarantine deadline recorded by ReleaseAt).
func (s *Segment) Release() {
	debugRelease(s)
	s.refs--
	if s.refs < 0 {
		panic(fmt.Sprintf("bufpool: double release (refs=%d)%s", s.refs, debugDump(s)))
	}
	if s.refs == 0 {
		s.pool.put(s)
	}
}

// ReleaseAt drops a reference like Release but records that the backing
// bytes may still be read until the virtual instant ready (a block erase
// recycles stored pages only after every read horizon has passed). The
// latest deadline wins when several stored copies of the segment erase.
func (s *Segment) ReleaseAt(ready sim.Time) {
	if ready > s.ready {
		s.ready = ready
	}
	s.Release()
}

// Ref is a borrowed-or-owned view of payload bytes: B is what gets written,
// Seg is the pooled segment backing it (nil when the bytes are plain Go
// memory a consumer must copy, e.g. metadata records or preconditioning
// payloads). The holder of a Ref with a non-nil Seg owns one reference
// unless the API it passed the Ref to documents an ownership transfer.
type Ref struct {
	Seg *Segment
	B   []byte
}

// Borrowed wraps non-pooled bytes: consumers that need the data past the
// call must copy it.
func Borrowed(b []byte) Ref { return Ref{B: b} }

// Retain adds a reference when the view is pooled (no-op for borrowed).
func (r Ref) Retain() {
	if r.Seg != nil {
		r.Seg.Retain()
	}
}

// Release drops the view's reference when pooled (no-op for borrowed).
func (r Ref) Release() {
	if r.Seg != nil {
		r.Seg.Release()
	}
}
