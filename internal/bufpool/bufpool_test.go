package bufpool

import (
	"testing"

	"github.com/slimio/slimio/internal/sim"
)

type fakeClock struct{ now sim.Time }

func (c *fakeClock) Now() sim.Time { return c.now }

func TestGetReleaseRecycles(t *testing.T) {
	p := New(4096)
	s := p.Get()
	if got := len(s.Bytes()); got != 4096 {
		t.Fatalf("segment size = %d, want 4096", got)
	}
	if p.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", p.InFlight())
	}
	s.Bytes()[0] = 0xAB
	s.Release()
	if p.InFlight() != 0 {
		t.Fatalf("InFlight after release = %d, want 0", p.InFlight())
	}
	s2 := p.Get()
	if s2 != s {
		t.Fatalf("plainly released segment was not recycled")
	}
	s2.Release()
	if p.Allocated() != 1 {
		t.Fatalf("Allocated = %d, want 1", p.Allocated())
	}
}

func TestRetainKeepsSegmentAlive(t *testing.T) {
	p := New(64)
	s := p.Get()
	s.Retain()
	s.Release()
	if p.InFlight() != 1 {
		t.Fatalf("InFlight = %d after one of two releases, want 1", p.InFlight())
	}
	if got := p.Get(); got == s {
		t.Fatalf("segment recycled while still referenced")
	}
	s.Release()
	if p.InFlight() != 1 { // only the second Get remains
		t.Fatalf("InFlight = %d, want 1", p.InFlight())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := New(64)
	s := p.Get()
	s.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("double release did not panic")
		}
	}()
	s.Release()
}

func TestRetainAfterFreePanics(t *testing.T) {
	p := New(64)
	s := p.Get()
	s.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("retain after final release did not panic")
		}
	}()
	s.Retain()
}

func TestQuarantineGatesReuse(t *testing.T) {
	clk := &fakeClock{}
	p := New(64)
	p.SetClock(clk)
	s := p.Get()
	s.ReleaseAt(100)
	if p.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0 (quarantined, not leaked)", p.InFlight())
	}
	clk.now = 50
	if got := p.Get(); got == s {
		t.Fatalf("segment reused before quarantine expired")
	}
	clk.now = 101
	got := p.Get()
	if got != s {
		t.Fatalf("segment not reused after quarantine expired")
	}
}

// TestReleaseAtLatestDeadlineWins: two stored copies of one segment erase at
// different horizons; the buffer's plain release afterwards must still honor
// the later deadline.
func TestReleaseAtLatestDeadlineWins(t *testing.T) {
	clk := &fakeClock{}
	p := New(64)
	p.SetClock(clk)
	s := p.Get()     // producer ref
	s.Retain()       // stored copy 1
	s.Retain()       // stored copy 2
	s.ReleaseAt(200) // erase of copy 1
	s.ReleaseAt(120) // erase of copy 2 (earlier horizon)
	s.Release()      // producer drops last
	clk.now = 150
	if got := p.Get(); got == s {
		t.Fatalf("segment reused at t=150 before the t=200 deadline")
	}
	clk.now = 201
	if got := p.Get(); got != s {
		t.Fatalf("segment not reused after the latest deadline passed")
	}
}

func TestBorrowedRefIsNoOp(t *testing.T) {
	r := Borrowed([]byte{1, 2, 3})
	r.Retain()
	r.Release() // must not panic
	if r.Seg != nil {
		t.Fatalf("borrowed ref has a segment")
	}
}

// TestHotPathAllocBudgets pins the steady-state allocation cost of the pool
// hot path: once warmed, a get/release cycle allocates nothing.
func TestHotPathAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("race builds record acquire/release sites, which allocates")
	}
	p := New(4096)
	// Warm: carve one chunk's worth.
	warm := make([]*Segment, chunkSegs)
	for i := range warm {
		warm[i] = p.Get()
	}
	for _, s := range warm {
		s.Release()
	}
	avg := testing.AllocsPerRun(1000, func() {
		s := p.Get()
		s.Retain()
		s.Release()
		s.Release()
	})
	if avg != 0 {
		t.Fatalf("pool get/retain/release cycle allocates %.1f/op, budget 0", avg)
	}
}
