//go:build race

package bufpool

// Race-instrumented builds (the CI `go test -race` job) record the call
// site of every Retain/Get and Release on each segment, so a double-release
// or retain-after-free panic names the code paths that paired wrongly
// instead of just the final count.
//
// The hooks run on the data plane's hottest path (every page acquire and
// release, millions per experiment cell), so recording must stay cheap:
// they capture raw program counters only — symbolization via
// runtime.CallersFrames happens exclusively in debugDump, on the panic
// path. History is bounded per segment lifetime: a fresh Get resets it,
// and only the most recent debugSiteKeep sites of each kind survive
// (a mispaired release is diagnosed by its latest few call paths, not the
// segment's full biography).

import (
	"fmt"
	"runtime"
	"strings"
)

const (
	debugSiteDepth = 6  // frames captured per site
	debugSiteKeep  = 16 // most recent sites kept per kind per lifetime
)

// raceEnabled lets tests skip allocation budgets that the site tracking
// below deliberately breaks.
const raceEnabled = true

type debugSite struct {
	pcs [debugSiteDepth]uintptr
	n   int
}

type debugInfo struct {
	acquires []debugSite
	releases []debugSite
}

func capture() debugSite {
	var s debugSite
	s.n = runtime.Callers(3, s.pcs[:])
	return s
}

// keepRecent appends s, sliding out the oldest entry once the bound is hit.
func keepRecent(list []debugSite, s debugSite) []debugSite {
	if len(list) >= debugSiteKeep {
		copy(list, list[1:])
		list[len(list)-1] = s
		return list
	}
	return append(list, s)
}

func debugAcquire(s *Segment) {
	if s.dbg == nil {
		s.dbg = &debugInfo{}
	}
	if s.refs == 1 { // fresh Get: a new lifetime, drop the previous one's history
		s.dbg.acquires = s.dbg.acquires[:0]
		s.dbg.releases = s.dbg.releases[:0]
	}
	s.dbg.acquires = keepRecent(s.dbg.acquires, capture())
}

func debugRelease(s *Segment) {
	if s.dbg == nil {
		s.dbg = &debugInfo{}
	}
	s.dbg.releases = keepRecent(s.dbg.releases, capture())
}

func formatSite(d debugSite) string {
	frames := runtime.CallersFrames(d.pcs[:d.n])
	var b strings.Builder
	for {
		f, more := frames.Next()
		if f.Function != "" {
			fmt.Fprintf(&b, "%s (%s:%d); ", f.Function, f.File, f.Line)
		}
		if !more {
			break
		}
	}
	return b.String()
}

func debugDump(s *Segment) string {
	if s == nil || s.dbg == nil {
		return ""
	}
	fmtHdr := func(b *strings.Builder, kind string) {
		fmt.Fprintf(b, "%s sites (most recent %d):\n", kind, debugSiteKeep)
	}
	var b strings.Builder
	b.WriteString("\n")
	fmtHdr(&b, "acquire")
	for _, a := range s.dbg.acquires {
		fmt.Fprintf(&b, "  %s\n", formatSite(a))
	}
	fmtHdr(&b, "release")
	for _, r := range s.dbg.releases {
		fmt.Fprintf(&b, "  %s\n", formatSite(r))
	}
	return b.String()
}
