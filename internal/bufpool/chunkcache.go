package bufpool

import (
	"fmt"
	"sync"
)

// chunkCache recycles pools' backing chunks across experiment cells. A
// cell's pool dies with its stack, but the next cell needs the same
// device-capacity-sized footprint — without recycling, a multi-cell
// experiment suite re-allocates hundreds of megabytes per cell just to
// throw them away. The cache is process-global and mutex-guarded (parallel
// cells return and take chunks concurrently); determinism is unaffected
// because recycled chunks are zeroed before reuse, making them
// bit-indistinguishable from freshly allocated memory.
var chunkCache struct {
	mu     sync.Mutex
	bySize map[int][][]byte
}

// getChunk returns a zeroed chunk of exactly size bytes, reusing a retired
// pool's chunk when one is available.
func getChunk(size int) []byte {
	chunkCache.mu.Lock()
	list := chunkCache.bySize[size]
	if n := len(list); n > 0 {
		c := list[n-1]
		list[n-1] = nil
		chunkCache.bySize[size] = list[:n-1]
		chunkCache.mu.Unlock()
		clear(c)
		return c
	}
	chunkCache.mu.Unlock()
	return make([]byte, size)
}

// putChunks returns a retired pool's chunks to the cache.
func putChunks(size int, chunks [][]byte) {
	if len(chunks) == 0 {
		return
	}
	chunkCache.mu.Lock()
	if chunkCache.bySize == nil {
		chunkCache.bySize = make(map[int][][]byte)
	}
	chunkCache.bySize[size] = append(chunkCache.bySize[size], chunks...)
	chunkCache.mu.Unlock()
}

// Close retires the pool, returning its backing chunks to the process-wide
// chunk cache for the next cell's pool. Call it only once the pool is
// quiescent — InFlight() == 0 — since every segment's bytes alias a chunk;
// closing a live pool would hand referenced memory to another cell. A
// closed pool must not be used again.
func (p *Pool) Close() {
	if p.inFlight != 0 {
		panic(fmt.Sprintf("bufpool: Close with %d segments still in flight", p.inFlight))
	}
	putChunks(chunkSegs*p.segSize, p.chunks)
	p.chunks = nil
	p.chunk = nil
	p.free = nil
	p.quar = nil
	p.quarOff = 0
}
