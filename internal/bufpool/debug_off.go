//go:build !race

package bufpool

// debugInfo is empty in non-race builds; the field on Segment stays nil and
// the hooks below compile to nothing, keeping the hot path allocation-free.
type debugInfo struct{}

// raceEnabled lets tests skip allocation budgets that the race-mode site
// tracking deliberately breaks.
const raceEnabled = false

func debugAcquire(*Segment) {}

func debugRelease(*Segment) {}

func debugDump(*Segment) string { return "" }
