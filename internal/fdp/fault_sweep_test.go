package fdp

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/fault"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// TestReclaimFaultSweep is the FDP twin of the conventional FTL's GC fault
// sweep: a multi-stream overwrite workload far past capacity under swept
// read and program error rates. Invariants: no live LPA maps into a retired
// block, the write accounting identity holds, the free-RU pool stays sane,
// and every surviving LPA reads back its newest value once faults clear.
func TestReclaimFaultSweep(t *testing.T) {
	rates := []struct {
		name             string
		readErr, progErr float64
	}{
		{"reads-3pct", 0.03, 0},
		{"programs", 0, 0.003},
		{"mixed", 0.02, 0.003},
	}
	for _, rate := range rates {
		t.Run(rate.name, func(t *testing.T) {
			ctr := &metrics.Counter{}
			// Program failures retire whole blocks, so the rate must stay
			// small against the block budget or the device honestly dies.
			geo := nand.Geometry{Channels: 1, DiesPerChannel: 2, BlocksPerDie: 64, PagesPerBlock: 8, PageSize: 128}
			arr, err := nand.New(geo, nand.DefaultLatencies())
			if err != nil {
				t.Fatal(err)
			}
			f, err := New(arr, Config{Metrics: ctr})
			if err != nil {
				t.Fatal(err)
			}
			plan := fault.NewPlan(fault.Config{Seed: 77, ReadErrRate: rate.readErr, ProgramErrRate: rate.progErr})
			arr.SetFaultHook(plan)

			lpas := f.Capacity() / 3
			latest := make(map[int64]int)
			now := sim.Time(0)
			for i := 0; i < int(3*f.Capacity()); i++ {
				lpa := int64(i) % lpas
				pid := uint32(i % 3) // three lifetime streams, like WAL/snapshot/on-demand
				done, err := f.Write(now, lpa, bufpool.Borrowed(page(fmt.Sprintf("v%d-", i), f.PageSize())), pid)
				if err != nil {
					t.Fatalf("write %d: %v", i, err)
				}
				latest[lpa] = i
				now = done
				if f.FreeRUs() < 0 {
					t.Fatalf("free-RU count went negative after write %d", i)
				}
			}
			arr.SetFaultHook(nil)

			s := f.Stats()
			if rate.progErr > 0 && s.ProgramFailures == 0 {
				t.Fatal("program error rate injected nothing")
			}
			if s.NANDWritePages != s.HostWritePages+s.GCCopiedPages+s.RetireMigratedPages {
				t.Fatalf("write accounting broken: NAND %d != host %d + reclaim %d + migrated %d",
					s.NANDWritePages, s.HostWritePages, s.GCCopiedPages, s.RetireMigratedPages)
			}
			if s.RetiredBlocks != int64(f.RetiredBlocks()) {
				t.Fatalf("stats say %d retired blocks, map says %d", s.RetiredBlocks, f.RetiredBlocks())
			}
			if got := ctr.Get("fdp.block_retired"); got != s.RetiredBlocks {
				t.Fatalf("metrics counted %d retirements, stats %d", got, s.RetiredBlocks)
			}

			lost := 0
			for lpa := int64(0); lpa < lpas; lpa++ {
				ppa := f.l2p[lpa]
				if ppa == nand.InvalidPPA {
					lost++
					continue
				}
				if f.BlockRetired(arr.BlockOf(ppa)) {
					t.Fatalf("LPA %d maps to retired block %d", lpa, arr.BlockOf(ppa))
				}
				data, done, err := f.Read(now, lpa)
				if err != nil {
					t.Fatalf("read LPA %d after faults cleared: %v", lpa, err)
				}
				if !bytes.Equal(data, page(fmt.Sprintf("v%d-", latest[lpa]), f.PageSize())) {
					t.Fatalf("LPA %d holds stale or corrupt data", lpa)
				}
				now = done
			}
			if int64(lost) > s.LostPages {
				t.Fatalf("%d LPAs unmapped but only %d recorded lost", lost, s.LostPages)
			}
		})
	}
}

// TestReclaimEraseFaultRetires forces erase failures during reclaim: the
// block must leave service (dead RUs leave the rotation), the victim's valid
// data must survive, and writes must keep succeeding on what remains.
func TestReclaimEraseFaultRetires(t *testing.T) {
	geo := nand.Geometry{Channels: 1, DiesPerChannel: 2, BlocksPerDie: 64, PagesPerBlock: 8, PageSize: 128}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	ctr := &metrics.Counter{}
	f, err := New(arr, Config{Metrics: ctr})
	if err != nil {
		t.Fatal(err)
	}
	arr.SetFaultHook(&nthEraseFailHook{n: 7})
	latest := make(map[int64]int)
	now := sim.Time(0)
	for i := 0; i < int(3*f.Capacity()); i++ {
		lpa := int64(i) % (f.Capacity() / 3)
		done, err := f.Write(now, lpa, bufpool.Borrowed(page(fmt.Sprintf("e%d-", i), f.PageSize())), uint32(i%2))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		latest[lpa] = i
		now = done
	}
	arr.SetFaultHook(nil)
	s := f.Stats()
	if s.EraseFailures == 0 || s.RetiredBlocks == 0 {
		t.Fatalf("hook injected nothing: %+v", s)
	}
	if ctr.Get("fdp.erase_fail") != s.EraseFailures {
		t.Fatalf("metrics counted %d erase failures, stats %d", ctr.Get("fdp.erase_fail"), s.EraseFailures)
	}
	for lpa, v := range latest {
		data, done, err := f.Read(now, lpa)
		if err != nil {
			t.Fatalf("read LPA %d: %v", lpa, err)
		}
		if !bytes.Equal(data, page(fmt.Sprintf("e%d-", v), f.PageSize())) {
			t.Fatalf("LPA %d lost its newest value across erase failures", lpa)
		}
		now = done
	}
}

// nthEraseFailHook fails every n-th block erase, deterministically.
type nthEraseFailHook struct {
	n     int
	count int
}

func (h *nthEraseFailHook) ReadFault(now sim.Time, ppa nand.PPA) error { return nil }
func (h *nthEraseFailHook) ProgramFault(now, done sim.Time, ppa nand.PPA, data []byte) nand.ProgramDecision {
	return nand.ProgramDecision{}
}
func (h *nthEraseFailHook) EraseFault(now sim.Time, die, block int) error {
	h.count++
	if h.count%h.n == 0 {
		return &nand.DeviceError{Status: nand.StatusEraseFault, Op: "erase", PPA: nand.InvalidPPA}
	}
	return nil
}
