package fdp

import (
	"strings"
	"testing"
)

func TestLeaseAcquireSequential(t *testing.T) {
	a, err := NewPIDAllocator(10)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := a.Acquire("t0", 5)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := a.Acquire("t1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if l0.Base != 0 || l0.Count != 5 || l1.Base != 5 || l1.Count != 5 {
		t.Fatalf("leases = [%d,%d) and [%d,%d), want [0,5) and [5,10)",
			l0.Base, int(l0.Base)+l0.Count, l1.Base, int(l1.Base)+l1.Count)
	}
	if a.Free() != 0 {
		t.Fatalf("free = %d, want 0", a.Free())
	}
}

func TestLeaseOverSubscriptionRejected(t *testing.T) {
	a, _ := NewPIDAllocator(10)
	if _, err := a.Acquire("t0", 5); err != nil {
		t.Fatal(err)
	}
	// Deterministic rejection: same request, same error, state unchanged.
	for i := 0; i < 3; i++ {
		_, err := a.Acquire("t1", 6)
		if err == nil {
			t.Fatal("6 PIDs granted with only 5 free")
		}
		if !strings.Contains(err.Error(), "exhausted") {
			t.Fatalf("error %q does not name exhaustion", err)
		}
		if a.Free() != 5 {
			t.Fatalf("rejected acquire changed state: free = %d, want 5", a.Free())
		}
	}
	// The namespace is not burned: a fitting request still succeeds.
	if _, err := a.Acquire("t1", 5); err != nil {
		t.Fatalf("fitting acquire after rejection: %v", err)
	}
}

func TestLeaseDuplicateTenantRejected(t *testing.T) {
	a, _ := NewPIDAllocator(10)
	if _, err := a.Acquire("t0", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire("t0", 2); err == nil {
		t.Fatal("second lease granted to the same tenant")
	}
}

func TestLeaseBadRequests(t *testing.T) {
	if _, err := NewPIDAllocator(0); err == nil {
		t.Fatal("empty namespace accepted")
	}
	a, _ := NewPIDAllocator(10)
	if _, err := a.Acquire("t0", 0); err == nil {
		t.Fatal("zero-PID lease accepted")
	}
	if _, err := a.Acquire("t0", -1); err == nil {
		t.Fatal("negative lease accepted")
	}
}

func TestLeaseReleaseReuse(t *testing.T) {
	a, _ := NewPIDAllocator(15)
	l0, _ := a.Acquire("t0", 5)
	l1, _ := a.Acquire("t1", 5)
	l2, _ := a.Acquire("t2", 5)
	_ = l2

	// Releasing the middle range leaves a hole that the next same-size
	// tenant reuses first-fit.
	a.Release(l1)
	if a.Free() != 5 {
		t.Fatalf("free = %d, want 5", a.Free())
	}
	l3, err := a.Acquire("t3", 5)
	if err != nil {
		t.Fatal(err)
	}
	if l3.Base != 5 {
		t.Fatalf("reused base = %d, want 5 (first fit)", l3.Base)
	}

	// Double release is a no-op.
	a.Release(l1)
	if a.Free() != 0 {
		t.Fatalf("double release freed PIDs: free = %d", a.Free())
	}

	// Adjacent releases merge, so a bigger tenant fits the combined run.
	a.Release(l0)
	a.Release(l3)
	l4, err := a.Acquire("t4", 10)
	if err != nil {
		t.Fatalf("merged range not reusable: %v", err)
	}
	if l4.Base != 0 {
		t.Fatalf("merged base = %d, want 0", l4.Base)
	}
}

func TestLeaseDeterministicSequence(t *testing.T) {
	// The same acquire/release script must produce byte-identical lease
	// layouts on every run (the allocator feeds experiment output).
	run := func() []PIDLease {
		a, _ := NewPIDAllocator(20)
		l0, _ := a.Acquire("a", 4)
		l1, _ := a.Acquire("b", 6)
		a.Release(l0)
		a.Acquire("c", 3) //nolint:errcheck // layout probe
		a.Acquire("d", 5) //nolint:errcheck // layout probe
		a.Release(l1)
		a.Acquire("e", 2) //nolint:errcheck // layout probe
		var out []PIDLease
		for _, l := range a.Leases() {
			out = append(out, *l)
		}
		return out
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("run %d: %d leases, want %d", i, len(again), len(first))
		}
		for j := range first {
			if first[j].Tenant != again[j].Tenant || first[j].Base != again[j].Base || first[j].Count != again[j].Count {
				t.Fatalf("run %d lease %d = %+v, want %+v", i, j, again[j], first[j])
			}
		}
	}
}

func TestLeasePIDMapping(t *testing.T) {
	a, _ := NewPIDAllocator(10)
	a.Acquire("t0", 5) //nolint:errcheck // layout setup
	l1, _ := a.Acquire("t1", 5)
	cases := []struct {
		local, want uint32
	}{
		{0, 5},
		{4, 9},
		{5, 10},  // out of lease: maps to MaxPIDs so the device rejects
		{99, 10}, // far out of lease: same rejection mapping
	}
	for _, c := range cases {
		if got := l1.PID(c.local); got != c.want {
			t.Errorf("PID(%d) = %d, want %d", c.local, got, c.want)
		}
	}
	if l1.Contains(4) || !l1.Contains(5) || !l1.Contains(9) || l1.Contains(10) {
		t.Fatal("Contains boundaries wrong")
	}
}

func TestLeaseRollup(t *testing.T) {
	a, _ := NewPIDAllocator(10)
	a.Acquire("t0", 5) //nolint:errcheck // layout setup
	a.Acquire("t1", 5) //nolint:errcheck // layout setup
	s := Stats{
		HostWritesByPID: map[uint32]int64{0: 10, 1: 20, 5: 7, 6: 3},
		GCCopiesByPID:   map[uint32]int64{1: 4, 6: 6},
	}
	got := a.Rollup(s)
	if len(got) != 2 {
		t.Fatalf("rollup rows = %d, want 2", len(got))
	}
	if got[0].Tenant != "t0" || got[0].HostWrites != 30 || got[0].GCCopies != 4 {
		t.Fatalf("t0 rollup = %+v", got[0])
	}
	if got[1].Tenant != "t1" || got[1].HostWrites != 10 || got[1].GCCopies != 6 {
		t.Fatalf("t1 rollup = %+v", got[1])
	}
	if w := got[0].WAF(); w != 34.0/30.0 {
		t.Fatalf("t0 WAF = %v", w)
	}
	if w := (TenantUsage{}).WAF(); w != 1 {
		t.Fatalf("idle tenant WAF = %v, want 1", w)
	}
}
