// Package fdp implements a Flexible Data Placement (NVMe FDP) flash
// translation layer over a nand.Array.
//
// The host tags each write with a Placement Identifier (PID); the FTL groups
// same-PID data into Reclaim Units (RUs) — fixed-size groups of physical
// blocks striped across dies. Because data that dies together was placed
// together, reclaiming space normally means erasing a wholly-invalid RU with
// zero valid-data movement, which is how the paper's SlimIO configuration
// achieves WAF = 1.00 (paper §2.3, §4.3).
//
// If the host mixes lifetimes within a PID the FTL still works: a partially
// valid RU victim is migrated page by page exactly like a conventional FTL,
// and the copies show up in Stats — making the "FDP only helps if the host
// separates lifetimes" property testable.
package fdp

import (
	"fmt"
	"sort"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/vtrace"
)

const (
	maxProgramRetries = 4
	maxReadRetries    = 4
)

// Stats extends the conventional FTL counters with RU-level reclaim info.
type Stats struct {
	ftl.Stats
	RUsReclaimed      int64
	RUsReclaimedEmpty int64 // reclaimed with zero valid copies (the FDP win)
	HostWritesByPID   map[uint32]int64
	// GCCopiesByPID attributes reclaim-migrated pages to the PID that owned
	// the victim reclaim unit, so multi-tenant roll-ups can bill GC work to
	// the stream that caused it. Sums to GCCopiedPages.
	GCCopiesByPID map[uint32]int64
}

// PIDCount is one placement stream's cumulative page counters, for sorted
// per-PID export.
type PIDCount struct {
	PID        uint32
	HostWrites int64
	GCCopies   int64
}

// PIDWrites returns the per-PID counters in ascending PID order — the
// deterministic iteration every print/export site must use instead of
// ranging over the maps directly.
func (s Stats) PIDWrites() []PIDCount {
	pids := make([]uint32, 0, len(s.HostWritesByPID)+len(s.GCCopiesByPID))
	for pid := range s.HostWritesByPID {
		pids = append(pids, pid)
	}
	for pid := range s.GCCopiesByPID {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	out := make([]PIDCount, 0, len(pids))
	for i, pid := range pids {
		if i > 0 && pid == pids[i-1] {
			continue
		}
		out = append(out, PIDCount{PID: pid, HostWrites: s.HostWritesByPID[pid], GCCopies: s.GCCopiesByPID[pid]})
	}
	return out
}

// ReclaimEvent records one RU reclaim for inspection.
type ReclaimEvent struct {
	At          sim.Time
	RU          int
	PID         uint32
	ValidCopied int
	Done        sim.Time
}

// Config tunes the FDP FTL.
type Config struct {
	// BlocksPerRU is the reclaim-unit size in physical blocks (default: one
	// block per die, so an RU stripes across the whole array).
	BlocksPerRU int
	// MaxPIDs is the number of placement identifiers the device supports
	// (default 8, matching the paper's emulated device). Writes with
	// pid >= MaxPIDs are rejected. Every actively-written PID pins one open
	// reclaim unit, so the device needs roughly MaxPIDs+ReclaimFreeRUsLow+2
	// reclaim units of physical capacity to serve all streams at once.
	MaxPIDs int
	// OverProvision is the fraction of raw capacity hidden from the host
	// (default 1/8).
	OverProvision float64
	// ReclaimFreeRUsLow triggers a proactive (one-RU) reclaim when the
	// free pool is at or below this level (default 2). An empty pool
	// forces emergency reclaim until a free RU exists.
	ReclaimFreeRUsLow int
	// EventLogLimit bounds the retained reclaim log (default 4096).
	EventLogLimit int
	// Metrics, when non-nil, receives counter increments for fault-handling
	// events (fdp.program_fail, fdp.block_retired, fdp.gc_read_retry,
	// fdp.lpa_lost, fdp.erase_fail, fdp.torn_write).
	Metrics *metrics.Counter
	// Trace, when non-nil, records fdp/write, fdp/read and fdp/reclaim
	// spans (reclaim spans carry the copied-page count as Arg, and an empty
	// reclaim — the FDP win — also emits an fdp/reclaim.empty instant).
	Trace *vtrace.Tracer
}

func (c *Config) fillDefaults(geo nand.Geometry) {
	if c.BlocksPerRU <= 0 {
		c.BlocksPerRU = geo.Dies()
	}
	if c.MaxPIDs <= 0 {
		c.MaxPIDs = 8
	}
	if c.OverProvision <= 0 || c.OverProvision >= 1 {
		c.OverProvision = 1.0 / 8
	}
	if c.ReclaimFreeRUsLow <= 0 {
		c.ReclaimFreeRUsLow = 2
	}
	if c.EventLogLimit <= 0 {
		c.EventLogLimit = 4096
	}
}

type blockRef struct{ die, block int }

type ruState int

const (
	ruFree ruState = iota
	ruOpen
	ruClosed
	// ruDead marks a reclaim unit whose every block has been retired; it
	// leaves the free/open/closed rotation permanently.
	ruDead
)

type reclaimUnit struct {
	id     int
	blocks []blockRef
	state  ruState
	pid    uint32
	valid  int
	// writeCursor is the number of pages programmed into this RU; pages
	// stripe round-robin across the RU's blocks.
	writeCursor int
	// closedSeq orders closed RUs by age, so reclaim's tie-break rotates
	// through the pool instead of thrashing a few units (wear leveling).
	closedSeq int64
	// retiredCnt counts this RU's blocks that have been retired (grown bad
	// blocks). The RU keeps working around them until all are gone.
	retiredCnt int
}

func (ru *reclaimUnit) pages(perBlock int) int { return len(ru.blocks) * perBlock }

// FTL is the FDP translation layer. Not safe for concurrent use.
type FTL struct {
	arr *nand.Array
	cfg Config

	usableLPAs int64
	l2p        []nand.PPA
	p2l        []int64
	ruOf       []int32 // global block index -> RU id

	rus      []*reclaimUnit
	freeRUs  []int
	active   map[uint32]*reclaimUnit // PID -> open RU
	closeSeq int64

	// retired flags globally-indexed blocks taken out of service after a
	// program or erase failure; pending queues LPAs stranded on them for
	// migration at the end of the current host write.
	retired []bool
	pending []int64

	stats     Stats
	log       []ReclaimEvent
	reclaimIn bool
	pageSz    int
}

// New builds an FDP FTL over a fresh array. The geometry's total block count
// must be a multiple of BlocksPerRU.
func New(arr *nand.Array, cfg Config) (*FTL, error) {
	geo := arr.Geometry()
	cfg.fillDefaults(geo)
	if geo.Blocks()%cfg.BlocksPerRU != 0 {
		return nil, fmt.Errorf("fdp: %d blocks not divisible by RU size %d", geo.Blocks(), cfg.BlocksPerRU)
	}
	nRU := geo.Blocks() / cfg.BlocksPerRU
	// Usable capacity honors over-provisioning and always reserves enough
	// whole reclaim units (threshold+2) for reclaim to make progress even
	// when a partially-valid victim must be migrated.
	pagesPerRU := int64(cfg.BlocksPerRU) * int64(geo.PagesPerBlock)
	usable := int64(float64(geo.Pages()) * (1 - cfg.OverProvision))
	reserve := geo.Pages() - int64(cfg.ReclaimFreeRUsLow+2)*pagesPerRU
	if reserve < usable {
		usable = reserve
	}
	if usable < 1 {
		usable = 1
	}
	f := &FTL{
		arr:        arr,
		cfg:        cfg,
		usableLPAs: usable,
		l2p:        make([]nand.PPA, geo.Pages()),
		p2l:        make([]int64, geo.Pages()),
		ruOf:       make([]int32, geo.Blocks()),
		retired:    make([]bool, geo.Blocks()),
		active:     make(map[uint32]*reclaimUnit),
		pageSz:     geo.PageSize,
	}
	f.stats.HostWritesByPID = make(map[uint32]int64)
	f.stats.GCCopiesByPID = make(map[uint32]int64)
	for i := range f.l2p {
		f.l2p[i] = nand.InvalidPPA
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	// Assemble RUs by striping blocks across dies: RU r's j-th block lives
	// on die j mod Dies, so every RU enjoys full array parallelism.
	dieCursor := make([]int, geo.Dies())
	for r := 0; r < nRU; r++ {
		ru := &reclaimUnit{id: r, state: ruFree}
		for j := 0; j < cfg.BlocksPerRU; j++ {
			die := (r*cfg.BlocksPerRU + j) % geo.Dies()
			block := dieCursor[die]
			dieCursor[die]++
			if block >= geo.BlocksPerDie {
				return nil, fmt.Errorf("fdp: RU striping overflowed die %d (choose BlocksPerRU divisible by die count)", die)
			}
			ru.blocks = append(ru.blocks, blockRef{die, block})
			f.ruOf[die*geo.BlocksPerDie+block] = int32(r)
		}
		f.rus = append(f.rus, ru)
		f.freeRUs = append(f.freeRUs, r)
	}
	return f, nil
}

// Capacity reports host-visible logical pages.
func (f *FTL) Capacity() int64 { return f.usableLPAs }

// PageSize reports the page size in bytes.
func (f *FTL) PageSize() int { return f.pageSz }

// Stats returns cumulative counters. The returned per-PID maps are copies.
func (f *FTL) Stats() Stats {
	s := f.stats
	s.HostWritesByPID = make(map[uint32]int64, len(f.stats.HostWritesByPID))
	for k, v := range f.stats.HostWritesByPID {
		s.HostWritesByPID[k] = v
	}
	s.GCCopiesByPID = make(map[uint32]int64, len(f.stats.GCCopiesByPID))
	for k, v := range f.stats.GCCopiesByPID {
		s.GCCopiesByPID[k] = v
	}
	return s
}

// BaseStats returns the conventional-FTL-compatible counters, satisfying the
// shared device interface.
func (f *FTL) BaseStats() ftl.Stats { return f.stats.Stats }

// Array exposes the NAND array beneath the FTL.
func (f *FTL) Array() *nand.Array { return f.arr }

// ReclaimLog returns retained reclaim events (oldest first).
func (f *FTL) ReclaimLog() []ReclaimEvent { return f.log }

// FreeRUs reports the size of the free reclaim-unit pool.
func (f *FTL) FreeRUs() int { return len(f.freeRUs) }

// RUCount reports the total number of reclaim units.
func (f *FTL) RUCount() int { return len(f.rus) }

// RUUsage describes one reclaim unit for the inspect tooling.
type RUUsage struct {
	ID    int
	State string
	PID   uint32
	Valid int
	Total int
}

// Usage returns a snapshot of every RU's occupancy.
func (f *FTL) Usage() []RUUsage {
	perBlock := f.arr.Geometry().PagesPerBlock
	out := make([]RUUsage, len(f.rus))
	names := map[ruState]string{ruFree: "free", ruOpen: "open", ruClosed: "closed", ruDead: "dead"}
	for i, ru := range f.rus {
		out[i] = RUUsage{ID: ru.id, State: names[ru.state], PID: ru.pid, Valid: ru.valid, Total: ru.pages(perBlock)}
	}
	return out
}

// RetiredBlocks reports how many physical blocks have been retired.
func (f *FTL) RetiredBlocks() int {
	n := 0
	for _, r := range f.retired {
		if r {
			n++
		}
	}
	return n
}

// BlockRetired reports whether global block index g is retired.
func (f *FTL) BlockRetired(g int) bool { return f.retired[g] }

func (f *FTL) inc(name string) {
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.Inc(name, 1)
	}
}

func (f *FTL) checkLPA(lpa int64) error {
	if lpa < 0 || lpa >= f.usableLPAs {
		return fmt.Errorf("fdp: LPA %d out of range [0,%d)", lpa, f.usableLPAs)
	}
	return nil
}

func (f *FTL) invalidate(lpa int64) {
	old := f.l2p[lpa]
	if old == nand.InvalidPPA {
		return
	}
	f.l2p[lpa] = nand.InvalidPPA
	f.p2l[old] = -1
	f.rus[f.ruOf[f.arr.BlockOf(old)]].valid--
}

// nextPPA returns the next physical page of an open RU, striping across its
// blocks so consecutive pages land on different dies. Retired blocks are
// skipped; an RU with every block retired (which openRU never hands out)
// yields InvalidPPA.
func (f *FTL) nextPPA(ru *reclaimUnit) nand.PPA {
	geo := f.arr.Geometry()
	for i := 0; i < len(ru.blocks); i++ {
		b := ru.blocks[ru.writeCursor%len(ru.blocks)]
		ru.writeCursor++
		if f.retired[b.die*geo.BlocksPerDie+b.block] {
			continue
		}
		if f.arr.NextProgramPage(b.die, b.block) >= geo.PagesPerBlock {
			continue // block filled unevenly after a mid-RU retirement
		}
		// The in-block page index equals the block's own program pointer by
		// construction, since pages rotate over the RU's blocks in fixed
		// order (retired blocks simply drop out of the rotation).
		return f.arr.PPAOf(b.die, b.block, f.arr.NextProgramPage(b.die, b.block))
	}
	return nand.InvalidPPA
}

// ruFullAfter reports whether the RU has no programmable page left after
// handing one out at ppa. With no retired blocks the write cursor is an exact
// count and the check is O(1); once blocks retire, remaining capacity is the
// sum of each healthy block's unprogrammed pages (minus the page just handed
// out, which the array has not seen yet).
func (f *FTL) ruFullAfter(ru *reclaimUnit, ppa nand.PPA) bool {
	geo := f.arr.Geometry()
	if ru.retiredCnt == 0 {
		return ru.writeCursor >= ru.pages(geo.PagesPerBlock)
	}
	remaining := 0
	for _, b := range ru.blocks {
		if f.retired[b.die*geo.BlocksPerDie+b.block] {
			continue
		}
		remaining += geo.PagesPerBlock - f.arr.NextProgramPage(b.die, b.block)
	}
	return remaining-1 <= 0
}

// retireBlock takes a global block out of service. LPAs still mapped onto it
// are queued for migration (drained at the end of the host write); if the
// owning reclaim unit loses its last healthy block it goes dead and leaves
// the rotation entirely.
func (f *FTL) retireBlock(g int) {
	if f.retired[g] {
		return
	}
	f.retired[g] = true
	f.stats.RetiredBlocks++
	f.inc("fdp.block_retired")
	geo := f.arr.Geometry()
	die, blk := g/geo.BlocksPerDie, g%geo.BlocksPerDie
	base := f.arr.PPAOf(die, blk, 0)
	for p := 0; p < geo.PagesPerBlock; p++ {
		if lpa := f.p2l[base+nand.PPA(p)]; lpa >= 0 {
			f.pending = append(f.pending, lpa)
		}
	}
	ru := f.rus[f.ruOf[g]]
	ru.retiredCnt++
	if ru.retiredCnt < len(ru.blocks) {
		return
	}
	switch ru.state {
	case ruFree:
		for i, id := range f.freeRUs {
			if id == ru.id {
				f.freeRUs = append(f.freeRUs[:i], f.freeRUs[i+1:]...)
				break
			}
		}
	case ruOpen:
		if f.active[ru.pid] == ru {
			delete(f.active, ru.pid)
		}
	}
	ru.state = ruDead
}

func (f *FTL) noteProgramFail(ppa nand.PPA) {
	f.stats.ProgramFailures++
	f.inc("fdp.program_fail")
	f.retireBlock(f.arr.BlockOf(ppa))
}

// readWithRetry reads src, re-reading up to maxReadRetries times on
// transient failures. ok=false means the page is unrecoverable; a non-nil
// err is a model bug.
func (f *FTL) readWithRetry(now sim.Time, src nand.PPA) (data []byte, done sim.Time, ok bool, err error) {
	for attempt := 0; attempt <= maxReadRetries; attempt++ {
		data, done, err = f.arr.Read(now, src)
		if err == nil {
			return data, done, true, nil
		}
		if !nand.IsTransient(err) {
			return nil, now, false, err
		}
		f.stats.GCReadRetries++
		f.inc("fdp.gc_read_retry")
		now = done
	}
	return nil, now, false, nil
}

// migrateProgram places and programs data into pid's stream, retiring bad
// destination blocks and retrying on program failure.
//
//slimio:borrows data
func (f *FTL) migrateProgram(now sim.Time, pid uint32, data bufpool.Ref) (nand.PPA, sim.Time, error) {
	for attempt := 0; attempt <= maxProgramRetries; attempt++ {
		dst, ready, err := f.placePage(now, pid)
		if err != nil {
			return nand.InvalidPPA, now, err
		}
		done, err := f.arr.Program(ready, dst, data)
		if err == nil {
			return dst, done, nil
		}
		if !nand.IsProgramFail(err) {
			return nand.InvalidPPA, now, err
		}
		f.noteProgramFail(dst)
	}
	return nand.InvalidPPA, now, fmt.Errorf("fdp: migration exhausted %d program attempts", maxProgramRetries+1)
}

// drainRetired migrates every LPA stranded on a retired block into its
// stream's open RU. See the ftl package for the termination argument.
func (f *FTL) drainRetired(now sim.Time) (sim.Time, error) {
	guard, limit := 0, 16*int(f.arr.Geometry().Pages())
	for len(f.pending) > 0 {
		if guard++; guard > limit {
			return now, fmt.Errorf("fdp: retirement migration made no progress after %d steps", guard)
		}
		lpa := f.pending[0]
		f.pending = f.pending[1:]
		src := f.l2p[lpa]
		if src == nand.InvalidPPA || !f.retired[f.arr.BlockOf(src)] {
			continue // invalidated or already moved since queued
		}
		_, rdone, ok, err := f.readWithRetry(now, src)
		if err != nil {
			return now, err
		}
		if !ok {
			f.invalidate(lpa)
			f.stats.LostPages++
			f.inc("fdp.lpa_lost")
			continue
		}
		pid := f.rus[f.ruOf[f.arr.BlockOf(src)]].pid
		dst, wdone, err := f.migrateProgram(rdone, pid, f.arr.StoredRef(src))
		if err != nil {
			return now, err
		}
		f.p2l[src] = -1
		f.rus[f.ruOf[f.arr.BlockOf(src)]].valid--
		f.l2p[lpa] = dst
		f.p2l[dst] = lpa
		f.rus[f.ruOf[f.arr.BlockOf(dst)]].valid++
		f.stats.NANDWritePages++
		f.stats.RetireMigratedPages++
		if wdone > now {
			now = wdone
		}
	}
	return now, nil
}

// commitTorn decides what a torn program leaves visible after power loss:
// a previously-mapped LPA rolls back to its old page (power-up L2P
// reconstruction only trusts fully programmed pages), a previously-unmapped
// LPA maps to the torn page so the layers above must catch the corruption.
func (f *FTL) commitTorn(lpa int64, ppa nand.PPA) {
	f.stats.TornWrites++
	f.inc("fdp.torn_write")
	if f.l2p[lpa] != nand.InvalidPPA {
		return
	}
	f.l2p[lpa] = ppa
	f.p2l[ppa] = lpa
	f.rus[f.ruOf[f.arr.BlockOf(ppa)]].valid++
}

// openRU returns the active RU for pid, drawing (and if necessary
// reclaiming) from the free pool. done is when any triggered reclaim work
// finishes.
func (f *FTL) openRU(now sim.Time, pid uint32) (*reclaimUnit, sim.Time, error) {
	if ru := f.active[pid]; ru != nil {
		return ru, now, nil
	}
	done := now
	if !f.reclaimIn {
		// Emergency: with no free RU at all, reclaim until one appears.
		maxIters := 4 * len(f.rus)
		for iter := 0; len(f.freeRUs) == 0; iter++ {
			if iter > maxIters {
				return nil, now, fmt.Errorf("fdp: reclaim made no progress after %d runs", iter)
			}
			d, reclaimed, err := f.reclaim(done)
			if err != nil {
				return nil, now, err
			}
			if !reclaimed {
				break
			}
			done = d
		}
		// Proactive: restore headroom before the pool empties, so emergency
		// reclaim (which may need a destination RU for migration) never
		// starts from zero. Lifetime-separated victims reclaim in one
		// parallel erase round, so the host-visible stall stays short.
		for len(f.freeRUs) <= f.cfg.ReclaimFreeRUsLow {
			d, reclaimed, err := f.reclaim(done)
			if err != nil {
				return nil, now, err
			}
			if !reclaimed {
				break
			}
			done = d
		}
		// Reclaim migration may itself have opened an RU for this PID;
		// reuse it rather than orphaning it.
		if ru := f.active[pid]; ru != nil {
			return ru, done, nil
		}
	}
	if len(f.freeRUs) == 0 {
		return nil, now, fmt.Errorf("fdp: no free reclaim units (device full)")
	}
	// FIFO allocation rotates reclaim units through the pool, spreading
	// erases evenly across blocks (coarse wear leveling).
	id := f.freeRUs[0]
	f.freeRUs = f.freeRUs[1:]
	ru := f.rus[id]
	ru.state = ruOpen
	ru.pid = pid
	ru.writeCursor = 0
	f.active[pid] = ru
	return ru, done, nil
}

// reclaim frees the closed RU with the fewest valid pages. A wholly-invalid
// RU costs only erases; otherwise valid pages migrate to their PID's open RU
// first (inflating WAF, which Stats expose). It reports whether a victim was
// reclaimed.
func (f *FTL) reclaim(now sim.Time) (done sim.Time, reclaimed bool, err error) {
	f.reclaimIn = true
	defer func() { f.reclaimIn = false }()

	var victim *reclaimUnit
	for _, ru := range f.rus {
		if ru.state != ruClosed {
			continue
		}
		if victim == nil || ru.valid < victim.valid ||
			(ru.valid == victim.valid && ru.closedSeq < victim.closedSeq) {
			victim = ru
		}
	}
	if victim == nil {
		return now, false, nil
	}

	start, end := now, now
	copied := 0
	// The reclaim span parents the migration and erase NAND work; its parent
	// is the host write that triggered it (published via the tracer scope),
	// so reclaim stalls appear inside the op tree that paid for them.
	tr := f.cfg.Trace
	rcParent := tr.Scope()
	rcSpan := tr.Begin("fdp", "reclaim", rcParent, now)
	tr.SetScope(rcSpan)
	defer func() {
		tr.SetArg(rcSpan, int64(copied))
		tr.End(rcSpan, done)
		tr.SetScope(rcParent)
	}()
	if victim.valid > 0 {
		perBlock := f.arr.Geometry().PagesPerBlock
		for _, b := range victim.blocks {
			for p := 0; p < perBlock; p++ {
				src := f.arr.PPAOf(b.die, b.block, p)
				lpa := f.p2l[src]
				if lpa < 0 {
					continue
				}
				_, rdone, ok, err := f.readWithRetry(now, src)
				if err != nil {
					return now, false, fmt.Errorf("fdp: reclaim read: %w", err)
				}
				if !ok {
					// Unrecoverable media error under a single page: drop
					// that LPA, keep the reclaim going.
					f.invalidate(lpa)
					f.stats.LostPages++
					f.inc("fdp.lpa_lost")
					continue
				}
				// Re-program the stored segment itself (no copy): the
				// destination retains it, the victim's erase releases it.
				dst, wdone, err := f.migrateProgram(rdone, victim.pid, f.arr.StoredRef(src))
				if err != nil {
					return now, false, fmt.Errorf("fdp: reclaim program: %w", err)
				}
				if wdone > end {
					end = wdone
				}
				f.p2l[src] = -1
				victim.valid--
				f.l2p[lpa] = dst
				f.p2l[dst] = lpa
				f.rus[f.ruOf[f.arr.BlockOf(dst)]].valid++
				copied++
				f.stats.NANDWritePages++
				f.stats.GCCopiedPages++
				f.stats.GCCopiesByPID[victim.pid]++
			}
		}
	}
	// The victim's blocks live on distinct dies, so their erases proceed in
	// parallel: book them all at the same base time. Retired blocks are never
	// erased; an erase failure retires the block instead of failing the
	// reclaim (its pages hold no valid data by now).
	eraseStart := end
	geo := f.arr.Geometry()
	for _, b := range victim.blocks {
		g := b.die*geo.BlocksPerDie + b.block
		if f.retired[g] {
			continue
		}
		edone, err := f.arr.Erase(eraseStart, b.die, b.block)
		if err != nil {
			if !nand.IsEraseFault(err) {
				return now, false, fmt.Errorf("fdp: reclaim erase: %w", err)
			}
			f.stats.EraseFailures++
			f.inc("fdp.erase_fail")
			f.retireBlock(g)
			if edone > end {
				end = edone
			}
			continue
		}
		if edone > end {
			end = edone
		}
		f.stats.GCErasedBlocks++
	}
	victim.valid = 0
	victim.writeCursor = 0
	if victim.retiredCnt < len(victim.blocks) {
		victim.state = ruFree
		f.freeRUs = append(f.freeRUs, victim.id)
	}

	f.stats.GCRuns++
	f.stats.RUsReclaimed++
	if copied == 0 {
		f.stats.RUsReclaimedEmpty++
		tr.Instant("fdp", "reclaim.empty", start, int64(victim.id))
	}
	f.stats.GCBusy += end.Sub(start)
	if len(f.log) < f.cfg.EventLogLimit {
		f.log = append(f.log, ReclaimEvent{At: start, RU: victim.id, PID: victim.pid, ValidCopied: copied, Done: end})
	}
	return end, true, nil
}

func (f *FTL) closeRU(ru *reclaimUnit, pid uint32) {
	ru.state = ruClosed
	f.closeSeq++
	ru.closedSeq = f.closeSeq
	delete(f.active, pid)
}

// placePage hands out the next physical page for pid's stream, rotating the
// open RU when it fills (or when retirements leave it nothing programmable).
func (f *FTL) placePage(now sim.Time, pid uint32) (nand.PPA, sim.Time, error) {
	done := now
	for attempt := 0; attempt < 4; attempt++ {
		ru, d, err := f.openRU(done, pid)
		if err != nil {
			return nand.InvalidPPA, now, err
		}
		done = d
		ppa := f.nextPPA(ru)
		if ppa == nand.InvalidPPA {
			// Every remaining block was retired out from under the RU;
			// close it (reclaim will still erase its healthy blocks) and
			// open a fresh one.
			f.closeRU(ru, pid)
			continue
		}
		if f.ruFullAfter(ru, ppa) {
			f.closeRU(ru, pid)
		}
		return ppa, done, nil
	}
	return nand.InvalidPPA, now, fmt.Errorf("fdp: no programmable reclaim unit for pid %d", pid)
}

// Write stores one page at lpa within the placement stream pid.
//
// A NAND program failure is absorbed: the destination block retires, its
// stranded valid pages migrate, and the write retries on a fresh page. A
// torn program (power cut mid-write) returns the device error after
// recording honest post-crash mapping state — see commitTorn.
//
//slimio:borrows data
func (f *FTL) Write(now sim.Time, lpa int64, data bufpool.Ref, pid uint32) (done sim.Time, err error) {
	if err := f.checkLPA(lpa); err != nil {
		return now, err
	}
	if int(pid) >= f.cfg.MaxPIDs {
		return now, fmt.Errorf("fdp: PID %d exceeds device limit %d", pid, f.cfg.MaxPIDs)
	}
	tr := f.cfg.Trace
	parent := tr.Scope()
	span := tr.Begin("fdp", "write", parent, now)
	tr.SetArg(span, int64(pid))
	tr.SetScope(span)
	defer func() {
		tr.End(span, done)
		tr.SetScope(parent)
	}()
	var ppa nand.PPA
	for attempt := 0; ; attempt++ {
		var ready sim.Time
		ppa, ready, err = f.placePage(now, pid)
		if err != nil {
			return now, err
		}
		done, err = f.arr.Program(ready, ppa, data)
		if err == nil {
			break
		}
		if nand.IsTornWrite(err) {
			f.commitTorn(lpa, ppa)
			return done, err
		}
		if !nand.IsProgramFail(err) || attempt >= maxProgramRetries {
			return now, err
		}
		f.noteProgramFail(ppa)
		if now, err = f.drainRetired(done); err != nil {
			return now, err
		}
	}
	f.invalidate(lpa)
	f.l2p[lpa] = ppa
	f.p2l[ppa] = lpa
	f.rus[f.ruOf[f.arr.BlockOf(ppa)]].valid++
	f.stats.HostWritePages++
	f.stats.NANDWritePages++
	f.stats.HostWritesByPID[pid]++
	if len(f.pending) > 0 {
		// Retirements during placement/GC queued stranded LPAs; migrate
		// them now so no mapping survives on retired media.
		if _, err := f.drainRetired(done); err != nil {
			return now, err
		}
	}
	return done, nil
}

// Read returns the page stored at lpa.
func (f *FTL) Read(now sim.Time, lpa int64) (data []byte, done sim.Time, err error) {
	if err := f.checkLPA(lpa); err != nil {
		return nil, now, err
	}
	ppa := f.l2p[lpa]
	if ppa == nand.InvalidPPA {
		return nil, now, fmt.Errorf("fdp: read of unmapped LPA %d", lpa)
	}
	f.stats.HostReadPages++
	tr := f.cfg.Trace
	parent := tr.Scope()
	span := tr.Begin("fdp", "read", parent, now)
	tr.SetScope(span)
	data, done, err = f.arr.Read(now, ppa)
	tr.End(span, done)
	tr.SetScope(parent)
	return data, done, err
}

// Deallocate (TRIM) invalidates count LPAs starting at lpa.
func (f *FTL) Deallocate(lpa, count int64) error {
	if count < 0 || lpa < 0 || lpa+count > f.usableLPAs {
		return fmt.Errorf("fdp: deallocate range [%d,%d) out of bounds", lpa, lpa+count)
	}
	for i := int64(0); i < count; i++ {
		f.invalidate(lpa + i)
	}
	return nil
}

// Mapped reports whether lpa currently holds data.
func (f *FTL) Mapped(lpa int64) bool {
	return lpa >= 0 && lpa < f.usableLPAs && f.l2p[lpa] != nand.InvalidPPA
}

// Conventional adapts the line-based FTL into a conventional (non-FDP) SSD:
// placement hints are ignored, so every write shares one stream and data
// with different lifetimes mixes within reclaim units (superblocks) — the
// FEMU-style baseline device of the paper's evaluation. Reclaiming such a
// mixed superblock copies its still-valid pages, which is where the
// baseline's write amplification (Table 3: 1.14–1.24) comes from.
type Conventional struct {
	*FTL
}

// NewConventional builds a single-stream line-based FTL over arr.
func NewConventional(arr *nand.Array, cfg Config) (*Conventional, error) {
	cfg.MaxPIDs = 1
	f, err := New(arr, cfg)
	if err != nil {
		return nil, err
	}
	return &Conventional{FTL: f}, nil
}

// Write stores one page at lpa, ignoring the placement hint.
//
//slimio:borrows data
func (c *Conventional) Write(now sim.Time, lpa int64, data bufpool.Ref, pid uint32) (sim.Time, error) {
	return c.FTL.Write(now, lpa, data, 0)
}
