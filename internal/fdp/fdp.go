// Package fdp implements a Flexible Data Placement (NVMe FDP) flash
// translation layer over a nand.Array.
//
// The host tags each write with a Placement Identifier (PID); the FTL groups
// same-PID data into Reclaim Units (RUs) — fixed-size groups of physical
// blocks striped across dies. Because data that dies together was placed
// together, reclaiming space normally means erasing a wholly-invalid RU with
// zero valid-data movement, which is how the paper's SlimIO configuration
// achieves WAF = 1.00 (paper §2.3, §4.3).
//
// If the host mixes lifetimes within a PID the FTL still works: a partially
// valid RU victim is migrated page by page exactly like a conventional FTL,
// and the copies show up in Stats — making the "FDP only helps if the host
// separates lifetimes" property testable.
package fdp

import (
	"fmt"

	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// Stats extends the conventional FTL counters with RU-level reclaim info.
type Stats struct {
	ftl.Stats
	RUsReclaimed      int64
	RUsReclaimedEmpty int64 // reclaimed with zero valid copies (the FDP win)
	HostWritesByPID   map[uint32]int64
}

// ReclaimEvent records one RU reclaim for inspection.
type ReclaimEvent struct {
	At          sim.Time
	RU          int
	PID         uint32
	ValidCopied int
	Done        sim.Time
}

// Config tunes the FDP FTL.
type Config struct {
	// BlocksPerRU is the reclaim-unit size in physical blocks (default: one
	// block per die, so an RU stripes across the whole array).
	BlocksPerRU int
	// MaxPIDs is the number of placement identifiers the device supports
	// (default 8, matching the paper's emulated device). Writes with
	// pid >= MaxPIDs are rejected. Every actively-written PID pins one open
	// reclaim unit, so the device needs roughly MaxPIDs+ReclaimFreeRUsLow+2
	// reclaim units of physical capacity to serve all streams at once.
	MaxPIDs int
	// OverProvision is the fraction of raw capacity hidden from the host
	// (default 1/8).
	OverProvision float64
	// ReclaimFreeRUsLow triggers a proactive (one-RU) reclaim when the
	// free pool is at or below this level (default 2). An empty pool
	// forces emergency reclaim until a free RU exists.
	ReclaimFreeRUsLow int
	// EventLogLimit bounds the retained reclaim log (default 4096).
	EventLogLimit int
}

func (c *Config) fillDefaults(geo nand.Geometry) {
	if c.BlocksPerRU <= 0 {
		c.BlocksPerRU = geo.Dies()
	}
	if c.MaxPIDs <= 0 {
		c.MaxPIDs = 8
	}
	if c.OverProvision <= 0 || c.OverProvision >= 1 {
		c.OverProvision = 1.0 / 8
	}
	if c.ReclaimFreeRUsLow <= 0 {
		c.ReclaimFreeRUsLow = 2
	}
	if c.EventLogLimit <= 0 {
		c.EventLogLimit = 4096
	}
}

type blockRef struct{ die, block int }

type ruState int

const (
	ruFree ruState = iota
	ruOpen
	ruClosed
)

type reclaimUnit struct {
	id     int
	blocks []blockRef
	state  ruState
	pid    uint32
	valid  int
	// writeCursor is the number of pages programmed into this RU; pages
	// stripe round-robin across the RU's blocks.
	writeCursor int
	// closedSeq orders closed RUs by age, so reclaim's tie-break rotates
	// through the pool instead of thrashing a few units (wear leveling).
	closedSeq int64
}

func (ru *reclaimUnit) pages(perBlock int) int { return len(ru.blocks) * perBlock }

// FTL is the FDP translation layer. Not safe for concurrent use.
type FTL struct {
	arr *nand.Array
	cfg Config

	usableLPAs int64
	l2p        []nand.PPA
	p2l        []int64
	ruOf       []int32 // global block index -> RU id

	rus      []*reclaimUnit
	freeRUs  []int
	active   map[uint32]*reclaimUnit // PID -> open RU
	closeSeq int64

	stats     Stats
	log       []ReclaimEvent
	reclaimIn bool
	pageSz    int
}

// New builds an FDP FTL over a fresh array. The geometry's total block count
// must be a multiple of BlocksPerRU.
func New(arr *nand.Array, cfg Config) (*FTL, error) {
	geo := arr.Geometry()
	cfg.fillDefaults(geo)
	if geo.Blocks()%cfg.BlocksPerRU != 0 {
		return nil, fmt.Errorf("fdp: %d blocks not divisible by RU size %d", geo.Blocks(), cfg.BlocksPerRU)
	}
	nRU := geo.Blocks() / cfg.BlocksPerRU
	// Usable capacity honors over-provisioning and always reserves enough
	// whole reclaim units (threshold+2) for reclaim to make progress even
	// when a partially-valid victim must be migrated.
	pagesPerRU := int64(cfg.BlocksPerRU) * int64(geo.PagesPerBlock)
	usable := int64(float64(geo.Pages()) * (1 - cfg.OverProvision))
	reserve := geo.Pages() - int64(cfg.ReclaimFreeRUsLow+2)*pagesPerRU
	if reserve < usable {
		usable = reserve
	}
	if usable < 1 {
		usable = 1
	}
	f := &FTL{
		arr:        arr,
		cfg:        cfg,
		usableLPAs: usable,
		l2p:        make([]nand.PPA, geo.Pages()),
		p2l:        make([]int64, geo.Pages()),
		ruOf:       make([]int32, geo.Blocks()),
		active:     make(map[uint32]*reclaimUnit),
		pageSz:     geo.PageSize,
	}
	f.stats.HostWritesByPID = make(map[uint32]int64)
	for i := range f.l2p {
		f.l2p[i] = nand.InvalidPPA
	}
	for i := range f.p2l {
		f.p2l[i] = -1
	}
	// Assemble RUs by striping blocks across dies: RU r's j-th block lives
	// on die j mod Dies, so every RU enjoys full array parallelism.
	dieCursor := make([]int, geo.Dies())
	for r := 0; r < nRU; r++ {
		ru := &reclaimUnit{id: r, state: ruFree}
		for j := 0; j < cfg.BlocksPerRU; j++ {
			die := (r*cfg.BlocksPerRU + j) % geo.Dies()
			block := dieCursor[die]
			dieCursor[die]++
			if block >= geo.BlocksPerDie {
				return nil, fmt.Errorf("fdp: RU striping overflowed die %d (choose BlocksPerRU divisible by die count)", die)
			}
			ru.blocks = append(ru.blocks, blockRef{die, block})
			f.ruOf[die*geo.BlocksPerDie+block] = int32(r)
		}
		f.rus = append(f.rus, ru)
		f.freeRUs = append(f.freeRUs, r)
	}
	return f, nil
}

// Capacity reports host-visible logical pages.
func (f *FTL) Capacity() int64 { return f.usableLPAs }

// PageSize reports the page size in bytes.
func (f *FTL) PageSize() int { return f.pageSz }

// Stats returns cumulative counters. The returned HostWritesByPID map is a
// copy.
func (f *FTL) Stats() Stats {
	s := f.stats
	s.HostWritesByPID = make(map[uint32]int64, len(f.stats.HostWritesByPID))
	for k, v := range f.stats.HostWritesByPID {
		s.HostWritesByPID[k] = v
	}
	return s
}

// BaseStats returns the conventional-FTL-compatible counters, satisfying the
// shared device interface.
func (f *FTL) BaseStats() ftl.Stats { return f.stats.Stats }

// Array exposes the NAND array beneath the FTL.
func (f *FTL) Array() *nand.Array { return f.arr }

// ReclaimLog returns retained reclaim events (oldest first).
func (f *FTL) ReclaimLog() []ReclaimEvent { return f.log }

// FreeRUs reports the size of the free reclaim-unit pool.
func (f *FTL) FreeRUs() int { return len(f.freeRUs) }

// RUCount reports the total number of reclaim units.
func (f *FTL) RUCount() int { return len(f.rus) }

// RUUsage describes one reclaim unit for the inspect tooling.
type RUUsage struct {
	ID    int
	State string
	PID   uint32
	Valid int
	Total int
}

// Usage returns a snapshot of every RU's occupancy.
func (f *FTL) Usage() []RUUsage {
	perBlock := f.arr.Geometry().PagesPerBlock
	out := make([]RUUsage, len(f.rus))
	names := map[ruState]string{ruFree: "free", ruOpen: "open", ruClosed: "closed"}
	for i, ru := range f.rus {
		out[i] = RUUsage{ID: ru.id, State: names[ru.state], PID: ru.pid, Valid: ru.valid, Total: ru.pages(perBlock)}
	}
	return out
}

func (f *FTL) checkLPA(lpa int64) error {
	if lpa < 0 || lpa >= f.usableLPAs {
		return fmt.Errorf("fdp: LPA %d out of range [0,%d)", lpa, f.usableLPAs)
	}
	return nil
}

func (f *FTL) invalidate(lpa int64) {
	old := f.l2p[lpa]
	if old == nand.InvalidPPA {
		return
	}
	f.l2p[lpa] = nand.InvalidPPA
	f.p2l[old] = -1
	f.rus[f.ruOf[f.arr.BlockOf(old)]].valid--
}

// nextPPA returns the next physical page of an open RU, striping across its
// blocks so consecutive pages land on different dies.
func (f *FTL) nextPPA(ru *reclaimUnit) nand.PPA {
	b := ru.blocks[ru.writeCursor%len(ru.blocks)]
	ru.writeCursor++
	// The in-block page index equals the block's own program pointer by
	// construction, since pages rotate over the RU's blocks in fixed order.
	return f.arr.PPAOf(b.die, b.block, f.arr.NextProgramPage(b.die, b.block))
}

// openRU returns the active RU for pid, drawing (and if necessary
// reclaiming) from the free pool. done is when any triggered reclaim work
// finishes.
func (f *FTL) openRU(now sim.Time, pid uint32) (*reclaimUnit, sim.Time, error) {
	if ru := f.active[pid]; ru != nil {
		return ru, now, nil
	}
	done := now
	if !f.reclaimIn {
		// Emergency: with no free RU at all, reclaim until one appears.
		maxIters := 4 * len(f.rus)
		for iter := 0; len(f.freeRUs) == 0; iter++ {
			if iter > maxIters {
				return nil, now, fmt.Errorf("fdp: reclaim made no progress after %d runs", iter)
			}
			d, reclaimed, err := f.reclaim(done)
			if err != nil {
				return nil, now, err
			}
			if !reclaimed {
				break
			}
			done = d
		}
		// Proactive: restore headroom before the pool empties, so emergency
		// reclaim (which may need a destination RU for migration) never
		// starts from zero. Lifetime-separated victims reclaim in one
		// parallel erase round, so the host-visible stall stays short.
		for len(f.freeRUs) <= f.cfg.ReclaimFreeRUsLow {
			d, reclaimed, err := f.reclaim(done)
			if err != nil {
				return nil, now, err
			}
			if !reclaimed {
				break
			}
			done = d
		}
		// Reclaim migration may itself have opened an RU for this PID;
		// reuse it rather than orphaning it.
		if ru := f.active[pid]; ru != nil {
			return ru, done, nil
		}
	}
	if len(f.freeRUs) == 0 {
		return nil, now, fmt.Errorf("fdp: no free reclaim units (device full)")
	}
	// FIFO allocation rotates reclaim units through the pool, spreading
	// erases evenly across blocks (coarse wear leveling).
	id := f.freeRUs[0]
	f.freeRUs = f.freeRUs[1:]
	ru := f.rus[id]
	ru.state = ruOpen
	ru.pid = pid
	ru.writeCursor = 0
	f.active[pid] = ru
	return ru, done, nil
}

// reclaim frees the closed RU with the fewest valid pages. A wholly-invalid
// RU costs only erases; otherwise valid pages migrate to their PID's open RU
// first (inflating WAF, which Stats expose). It reports whether a victim was
// reclaimed.
func (f *FTL) reclaim(now sim.Time) (sim.Time, bool, error) {
	f.reclaimIn = true
	defer func() { f.reclaimIn = false }()

	var victim *reclaimUnit
	for _, ru := range f.rus {
		if ru.state != ruClosed {
			continue
		}
		if victim == nil || ru.valid < victim.valid ||
			(ru.valid == victim.valid && ru.closedSeq < victim.closedSeq) {
			victim = ru
		}
	}
	if victim == nil {
		return now, false, nil
	}

	start, end := now, now
	copied := 0
	if victim.valid > 0 {
		perBlock := f.arr.Geometry().PagesPerBlock
		for _, b := range victim.blocks {
			for p := 0; p < perBlock; p++ {
				src := f.arr.PPAOf(b.die, b.block, p)
				lpa := f.p2l[src]
				if lpa < 0 {
					continue
				}
				data, rdone, err := f.arr.Read(now, src)
				if err != nil {
					return now, false, fmt.Errorf("fdp: reclaim read: %w", err)
				}
				dst, _, err := f.placePage(rdone, victim.pid)
				if err != nil {
					return now, false, fmt.Errorf("fdp: reclaim place: %w", err)
				}
				wdone, err := f.arr.Program(rdone, dst, data)
				if err != nil {
					return now, false, fmt.Errorf("fdp: reclaim program: %w", err)
				}
				if wdone > end {
					end = wdone
				}
				f.p2l[src] = -1
				victim.valid--
				f.l2p[lpa] = dst
				f.p2l[dst] = lpa
				f.rus[f.ruOf[f.arr.BlockOf(dst)]].valid++
				copied++
				f.stats.NANDWritePages++
				f.stats.GCCopiedPages++
			}
		}
	}
	// The victim's blocks live on distinct dies, so their erases proceed in
	// parallel: book them all at the same base time.
	eraseStart := end
	for _, b := range victim.blocks {
		edone, err := f.arr.Erase(eraseStart, b.die, b.block)
		if err != nil {
			return now, false, fmt.Errorf("fdp: reclaim erase: %w", err)
		}
		if edone > end {
			end = edone
		}
		f.stats.GCErasedBlocks++
	}
	victim.state = ruFree
	victim.valid = 0
	victim.writeCursor = 0
	f.freeRUs = append(f.freeRUs, victim.id)

	f.stats.GCRuns++
	f.stats.RUsReclaimed++
	if copied == 0 {
		f.stats.RUsReclaimedEmpty++
	}
	f.stats.GCBusy += end.Sub(start)
	if len(f.log) < f.cfg.EventLogLimit {
		f.log = append(f.log, ReclaimEvent{At: start, RU: victim.id, PID: victim.pid, ValidCopied: copied, Done: end})
	}
	return end, true, nil
}

// placePage hands out the next physical page for pid's stream, rotating the
// open RU when it fills.
func (f *FTL) placePage(now sim.Time, pid uint32) (nand.PPA, sim.Time, error) {
	ru, done, err := f.openRU(now, pid)
	if err != nil {
		return nand.InvalidPPA, now, err
	}
	ppa := f.nextPPA(ru)
	if ru.writeCursor >= ru.pages(f.arr.Geometry().PagesPerBlock) {
		ru.state = ruClosed
		f.closeSeq++
		ru.closedSeq = f.closeSeq
		delete(f.active, pid)
	}
	return ppa, done, nil
}

// Write stores one page at lpa within the placement stream pid.
func (f *FTL) Write(now sim.Time, lpa int64, data []byte, pid uint32) (done sim.Time, err error) {
	if err := f.checkLPA(lpa); err != nil {
		return now, err
	}
	if int(pid) >= f.cfg.MaxPIDs {
		return now, fmt.Errorf("fdp: PID %d exceeds device limit %d", pid, f.cfg.MaxPIDs)
	}
	ppa, ready, err := f.placePage(now, pid)
	if err != nil {
		return now, err
	}
	f.invalidate(lpa)
	done, err = f.arr.Program(ready, ppa, data)
	if err != nil {
		return now, err
	}
	f.l2p[lpa] = ppa
	f.p2l[ppa] = lpa
	f.rus[f.ruOf[f.arr.BlockOf(ppa)]].valid++
	f.stats.HostWritePages++
	f.stats.NANDWritePages++
	f.stats.HostWritesByPID[pid]++
	return done, nil
}

// Read returns the page stored at lpa.
func (f *FTL) Read(now sim.Time, lpa int64) (data []byte, done sim.Time, err error) {
	if err := f.checkLPA(lpa); err != nil {
		return nil, now, err
	}
	ppa := f.l2p[lpa]
	if ppa == nand.InvalidPPA {
		return nil, now, fmt.Errorf("fdp: read of unmapped LPA %d", lpa)
	}
	f.stats.HostReadPages++
	return f.arr.Read(now, ppa)
}

// Deallocate (TRIM) invalidates count LPAs starting at lpa.
func (f *FTL) Deallocate(lpa, count int64) error {
	if count < 0 || lpa < 0 || lpa+count > f.usableLPAs {
		return fmt.Errorf("fdp: deallocate range [%d,%d) out of bounds", lpa, lpa+count)
	}
	for i := int64(0); i < count; i++ {
		f.invalidate(lpa + i)
	}
	return nil
}

// Mapped reports whether lpa currently holds data.
func (f *FTL) Mapped(lpa int64) bool {
	return lpa >= 0 && lpa < f.usableLPAs && f.l2p[lpa] != nand.InvalidPPA
}

// Conventional adapts the line-based FTL into a conventional (non-FDP) SSD:
// placement hints are ignored, so every write shares one stream and data
// with different lifetimes mixes within reclaim units (superblocks) — the
// FEMU-style baseline device of the paper's evaluation. Reclaiming such a
// mixed superblock copies its still-valid pages, which is where the
// baseline's write amplification (Table 3: 1.14–1.24) comes from.
type Conventional struct {
	*FTL
}

// NewConventional builds a single-stream line-based FTL over arr.
func NewConventional(arr *nand.Array, cfg Config) (*Conventional, error) {
	cfg.MaxPIDs = 1
	f, err := New(arr, cfg)
	if err != nil {
		return nil, err
	}
	return &Conventional{FTL: f}, nil
}

// Write stores one page at lpa, ignoring the placement hint.
func (c *Conventional) Write(now sim.Time, lpa int64, data []byte, pid uint32) (sim.Time, error) {
	return c.FTL.Write(now, lpa, data, 0)
}
