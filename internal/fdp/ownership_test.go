package fdp

import (
	"math/rand"
	"testing"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/sim"
)

// Fault-path ownership under GC migration: mixed-lifetime churn with pooled
// payloads forces reclaim to copy live pages, which the FTL does zero-copy —
// Program(StoredRef(src)) retains the segment for the destination page and
// the source erase releases its share. Any imbalance shows up here: a missed
// release leaks (InFlight stays positive after teardown), a double release
// panics in bufpool.
func TestGCMigrationPooledOwnership(t *testing.T) {
	f := newTestFTL(t, 8)
	pool := f.arr.Pool()
	rng := rand.New(rand.NewSource(9))
	now := sim.Time(0)
	hot := f.Capacity() / 2
	writes := int(f.Capacity()) * 5
	for i := 0; i < writes; i++ {
		s := pool.Get()
		copy(s.Bytes(), page("m", 128))
		done, err := f.Write(now, rng.Int63n(hot), bufpool.Ref{Seg: s, B: s.Bytes()}, 1)
		if err != nil {
			t.Fatal(err)
		}
		s.Release() // host hands off once the write is durable
		now = done
	}
	s := f.Stats()
	if s.GCCopiedPages == 0 {
		t.Fatal("churn forced no GC copies; the migration path was not exercised")
	}
	f.arr.ReleaseStored()
	if n := pool.InFlight(); n != 0 {
		t.Fatalf("%d segments in flight after GC-heavy run + teardown", n)
	}
}
