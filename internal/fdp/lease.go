package fdp

import (
	"fmt"
	"sort"
)

// PIDLease is an exclusive, contiguous range of placement identifiers
// carved out of a device's PID namespace for one tenant. A tenant addresses
// its streams with local PIDs [0, Count); PID translates them into the
// leased range. The lease is the isolation boundary: a tenant can never
// name a placement stream outside its range, so co-located engines sharing
// one FDP device cannot mix lifetimes into each other's reclaim units.
type PIDLease struct {
	// Tenant is the lease holder's name (unique per allocator).
	Tenant string
	// Base is the first device PID of the range.
	Base uint32
	// Count is the number of leased PIDs.
	Count int

	// limit is the device's MaxPIDs; out-of-lease locals map to it so the
	// device's own rejection path fires.
	limit    int
	released bool
}

// PID maps a tenant-local placement id into the leased range. A local at or
// beyond the lease maps to the device's PID limit, so the device's existing
// "PID exceeds device limit" rejection fires — a tenant cannot escape its
// lease by picking a large local stream number.
func (l *PIDLease) PID(local uint32) uint32 {
	if int(local) >= l.Count {
		return uint32(l.limit)
	}
	return l.Base + local
}

// Contains reports whether device PID pid falls inside the lease.
func (l *PIDLease) Contains(pid uint32) bool {
	return pid >= l.Base && int(pid) < int(l.Base)+l.Count
}

// pidRange is a free run of PIDs in the allocator's free list.
type pidRange struct {
	base  uint32
	count int
}

// PIDAllocator hands out exclusive per-tenant PID leases from a device's
// finite PID namespace [0, MaxPIDs). Allocation is deterministic: released
// ranges are kept sorted and reused first-fit (lowest base first), and fresh
// PIDs are carved sequentially, so the same acquire/release sequence always
// produces the same leases. Not safe for concurrent use, like the FTL it
// fronts.
type PIDAllocator struct {
	max    int
	next   uint32
	leases []*PIDLease
	free   []pidRange // sorted by base, adjacent runs merged
}

// NewPIDAllocator builds an allocator over a namespace of maxPIDs placement
// identifiers (the device's fdp.Config.MaxPIDs).
func NewPIDAllocator(maxPIDs int) (*PIDAllocator, error) {
	if maxPIDs <= 0 {
		return nil, fmt.Errorf("fdp: PID allocator needs a positive namespace, got %d", maxPIDs)
	}
	return &PIDAllocator{max: maxPIDs}, nil
}

// Free reports how many PIDs remain unleased.
func (a *PIDAllocator) Free() int {
	n := a.max - int(a.next)
	for _, r := range a.free {
		n += r.count
	}
	return n
}

// Leases returns the live leases sorted by base PID.
func (a *PIDAllocator) Leases() []*PIDLease {
	out := make([]*PIDLease, 0, len(a.leases))
	for _, l := range a.leases {
		if !l.released {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Acquire leases count contiguous PIDs for tenant. Over-subscription is
// rejected deterministically: when no contiguous run of count PIDs exists
// the error names the shortfall, and the allocator state is unchanged.
func (a *PIDAllocator) Acquire(tenant string, count int) (*PIDLease, error) {
	if count <= 0 {
		return nil, fmt.Errorf("fdp: tenant %q requested %d PIDs, want > 0", tenant, count)
	}
	for _, l := range a.leases {
		if !l.released && l.Tenant == tenant {
			return nil, fmt.Errorf("fdp: tenant %q already holds PIDs [%d,%d)", tenant, l.Base, int(l.Base)+l.Count)
		}
	}
	lease := &PIDLease{Tenant: tenant, Count: count, limit: a.max}
	// First-fit over released ranges (sorted by base), then the fresh tail.
	for i, r := range a.free {
		if r.count < count {
			continue
		}
		lease.Base = r.base
		if r.count == count {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = pidRange{base: r.base + uint32(count), count: r.count - count}
		}
		a.leases = append(a.leases, lease)
		return lease, nil
	}
	if int(a.next)+count > a.max {
		return nil, fmt.Errorf("fdp: PID namespace exhausted: tenant %q wants %d contiguous PIDs, %d of %d free",
			tenant, count, a.Free(), a.max)
	}
	lease.Base = a.next
	a.next += uint32(count)
	a.leases = append(a.leases, lease)
	return lease, nil
}

// Release returns a lease's PIDs to the pool. Releasing twice is a no-op.
// The freed range merges with adjacent free ranges so a later tenant can
// reuse the namespace without fragmentation.
func (a *PIDAllocator) Release(l *PIDLease) {
	if l == nil || l.released {
		return
	}
	l.released = true
	a.free = append(a.free, pidRange{base: l.Base, count: l.Count})
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].base < a.free[j].base })
	merged := a.free[:1]
	for _, r := range a.free[1:] {
		last := &merged[len(merged)-1]
		if last.base+uint32(last.count) == r.base {
			last.count += r.count
		} else {
			merged = append(merged, r)
		}
	}
	a.free = merged
	// Fold a trailing free range back into the fresh tail.
	if n := len(a.free); n > 0 && a.free[n-1].base+uint32(a.free[n-1].count) == a.next {
		a.next = a.free[n-1].base
		a.free = a.free[:n-1]
	}
}

// TenantUsage is one tenant's per-PID counters rolled up over its lease.
type TenantUsage struct {
	Tenant     string
	Base       uint32
	Count      int
	HostWrites int64
	GCCopies   int64
}

// Rollup bills the device's per-PID counters to the live leases, in base-PID
// order. PIDs outside every lease (the conventional stream 0, or streams
// written before leasing began) are not reported; per-PID detail for those
// is available via Stats.PIDWrites.
func (a *PIDAllocator) Rollup(s Stats) []TenantUsage {
	leases := a.Leases()
	out := make([]TenantUsage, len(leases))
	for i, l := range leases {
		u := TenantUsage{Tenant: l.Tenant, Base: l.Base, Count: l.Count}
		for off := 0; off < l.Count; off++ {
			pid := l.Base + uint32(off)
			u.HostWrites += s.HostWritesByPID[pid]
			u.GCCopies += s.GCCopiesByPID[pid]
		}
		out[i] = u
	}
	return out
}

// WAF is the tenant's own write-amplification factor: NAND pages written on
// its streams (host writes plus reclaim copies of its reclaim units) per
// host page. 1.00 when the tenant has not written yet.
func (u TenantUsage) WAF() float64 {
	if u.HostWrites == 0 {
		return 1
	}
	return float64(u.HostWrites+u.GCCopies) / float64(u.HostWrites)
}
