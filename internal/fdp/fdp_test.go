package fdp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/slimio/slimio/internal/bufpool"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
)

// newTestFTL builds a 2-die device with 2-block RUs (one block per die).
func newTestFTL(t *testing.T, blocksPerDie int) *FTL {
	t.Helper()
	geo := nand.Geometry{Channels: 1, DiesPerChannel: 2, BlocksPerDie: blocksPerDie, PagesPerBlock: 8, PageSize: 128}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(arr, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func page(s string, size int) []byte {
	b := make([]byte, 0, size)
	for len(b) < size {
		b = append(b, s...)
	}
	return b[:size]
}

func TestRUAssembly(t *testing.T) {
	f := newTestFTL(t, 8)
	if f.RUCount() != 8 {
		t.Fatalf("RU count = %d, want 8", f.RUCount())
	}
	// Every RU must stripe across both dies.
	for _, ru := range f.rus {
		dies := map[int]bool{}
		for _, b := range ru.blocks {
			dies[b.die] = true
		}
		if len(dies) != 2 {
			t.Fatalf("RU %d does not stripe across dies: %+v", ru.id, ru.blocks)
		}
	}
}

func TestIndivisibleRUSizeRejected(t *testing.T) {
	geo := nand.Geometry{Channels: 1, DiesPerChannel: 2, BlocksPerDie: 3, PagesPerBlock: 4, PageSize: 64}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(arr, Config{BlocksPerRU: 4}); err == nil {
		t.Fatal("6 blocks with RU=4 must be rejected")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newTestFTL(t, 8)
	want := page("fdp", 128)
	if _, err := f.Write(0, 5, bufpool.Borrowed(want), 1); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Read(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestPIDLimitEnforced(t *testing.T) {
	f := newTestFTL(t, 8)
	if _, err := f.Write(0, 0, bufpool.Borrowed(page("x", 128)), 8); err == nil {
		t.Fatal("PID 8 accepted on an 8-PID device")
	}
	if _, err := f.Write(0, 0, bufpool.Borrowed(page("x", 128)), 7); err != nil {
		t.Fatalf("PID 7 rejected: %v", err)
	}
}

func TestPIDSeparation(t *testing.T) {
	f := newTestFTL(t, 8)
	// Write one page with PID 1 and one with PID 2: they must land in
	// different reclaim units.
	if _, err := f.Write(0, 0, bufpool.Borrowed(page("a", 128)), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, 1, bufpool.Borrowed(page("b", 128)), 2); err != nil {
		t.Fatal(err)
	}
	ru0 := f.ruOf[f.arr.BlockOf(f.l2p[0])]
	ru1 := f.ruOf[f.arr.BlockOf(f.l2p[1])]
	if ru0 == ru1 {
		t.Fatal("different PIDs share a reclaim unit")
	}
	if f.rus[ru0].pid != 1 || f.rus[ru1].pid != 2 {
		t.Fatal("RU PID ownership wrong")
	}
}

func TestSamePIDSharesRU(t *testing.T) {
	f := newTestFTL(t, 8)
	for lpa := int64(0); lpa < 4; lpa++ {
		if _, err := f.Write(0, lpa, bufpool.Borrowed(page("x", 128)), 3); err != nil {
			t.Fatal(err)
		}
	}
	ru := f.ruOf[f.arr.BlockOf(f.l2p[0])]
	for lpa := int64(1); lpa < 4; lpa++ {
		if f.ruOf[f.arr.BlockOf(f.l2p[lpa])] != ru {
			t.Fatal("same-PID writes scattered across RUs")
		}
	}
}

// The headline FDP property: separated lifetimes + whole-region TRIM =>
// reclaim never copies, WAF stays exactly 1.00.
func TestLifetimeSeparationWAFOne(t *testing.T) {
	f := newTestFTL(t, 8)
	now := sim.Time(0)
	region := f.Capacity() / 4
	if region == 0 {
		t.Fatal("device too small for test")
	}
	// Stream 1: a circular log (short-lived). Stream 2: long-lived data
	// written once. Many log rounds force reclaim.
	for lpa := int64(0); lpa < region; lpa++ {
		done, err := f.Write(now, region*2+lpa, bufpool.Borrowed(page("cold", 128)), 2)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	for round := 0; round < 20; round++ {
		for lpa := int64(0); lpa < region; lpa++ {
			done, err := f.Write(now, lpa, bufpool.Borrowed(page("log", 128)), 1)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			now = done
		}
		if err := f.Deallocate(0, region); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.RUsReclaimed == 0 {
		t.Fatal("reclaim never ran; enlarge the workload")
	}
	if s.GCCopiedPages != 0 {
		t.Fatalf("reclaim copied %d pages; lifetime separation should avoid all copies", s.GCCopiedPages)
	}
	if s.WAF() != 1.0 {
		t.Fatalf("WAF = %.4f, want exactly 1.00", s.WAF())
	}
	if s.RUsReclaimedEmpty != s.RUsReclaimed {
		t.Fatalf("reclaims = %d but empty reclaims = %d", s.RUsReclaimed, s.RUsReclaimedEmpty)
	}
	// Cold data must have survived reclaim untouched.
	for lpa := region * 2; lpa < region*3; lpa++ {
		got, _, err := f.Read(now, lpa)
		if err != nil || !bytes.Equal(got, page("cold", 128)) {
			t.Fatalf("cold LPA %d corrupted: %v", lpa, err)
		}
	}
}

// Mixing lifetimes within one PID degrades FDP to conventional behaviour:
// reclaim must copy and WAF rises above 1.
func TestMixedLifetimesInOnePIDAmplify(t *testing.T) {
	f := newTestFTL(t, 8)
	rng := rand.New(rand.NewSource(9))
	now := sim.Time(0)
	hot := f.Capacity() / 2
	for i := 0; i < int(f.Capacity())*5; i++ {
		done, err := f.Write(now, rng.Int63n(hot), bufpool.Borrowed(page("m", 128)), 1)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	s := f.Stats()
	if s.GCCopiedPages == 0 {
		t.Fatal("mixed-lifetime churn should force copies")
	}
	if s.WAF() <= 1.0 {
		t.Fatalf("WAF = %.3f, want > 1", s.WAF())
	}
}

func TestReclaimPreservesData(t *testing.T) {
	f := newTestFTL(t, 8)
	rng := rand.New(rand.NewSource(4))
	latest := make(map[int64]string)
	now := sim.Time(0)
	hot := f.Capacity() / 2
	for i := 0; i < int(f.Capacity())*4; i++ {
		lpa := rng.Int63n(hot)
		v := fmt.Sprintf("%d:%d", lpa, i)
		done, err := f.Write(now, lpa, bufpool.Borrowed(page(v, 128)), uint32(lpa%3))
		if err != nil {
			t.Fatal(err)
		}
		latest[lpa] = v
		now = done
	}
	if f.Stats().RUsReclaimed == 0 {
		t.Fatal("no reclaim happened")
	}
	for lpa, v := range latest {
		got, _, err := f.Read(now, lpa)
		if err != nil {
			t.Fatalf("read %d: %v", lpa, err)
		}
		if !bytes.Equal(got, page(v, 128)) {
			t.Fatalf("LPA %d corrupted after reclaim", lpa)
		}
	}
}

func TestStatsByPID(t *testing.T) {
	f := newTestFTL(t, 8)
	for i := int64(0); i < 6; i++ {
		if _, err := f.Write(0, i, bufpool.Borrowed(page("x", 128)), uint32(i%2+1)); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.HostWritesByPID[1] != 3 || s.HostWritesByPID[2] != 3 {
		t.Fatalf("per-PID writes = %v", s.HostWritesByPID)
	}
	// Returned map is a copy.
	s.HostWritesByPID[1] = 99
	if f.Stats().HostWritesByPID[1] != 3 {
		t.Fatal("Stats leaked internal map")
	}
}

func TestUsageSnapshot(t *testing.T) {
	f := newTestFTL(t, 8)
	if _, err := f.Write(0, 0, bufpool.Borrowed(page("x", 128)), 1); err != nil {
		t.Fatal(err)
	}
	usage := f.Usage()
	var open, free int
	for _, u := range usage {
		switch u.State {
		case "open":
			open++
			if u.PID != 1 || u.Valid != 1 {
				t.Fatalf("open RU usage = %+v", u)
			}
		case "free":
			free++
		}
	}
	if open != 1 || free != f.RUCount()-1 {
		t.Fatalf("open=%d free=%d of %d", open, free, f.RUCount())
	}
}

func TestDeallocateBounds(t *testing.T) {
	f := newTestFTL(t, 8)
	if err := f.Deallocate(-1, 1); err == nil {
		t.Fatal("negative TRIM accepted")
	}
	if err := f.Deallocate(0, f.Capacity()+1); err == nil {
		t.Fatal("oversized TRIM accepted")
	}
	if err := f.Deallocate(0, 0); err != nil {
		t.Fatal("empty TRIM rejected")
	}
}

func TestReadUnmappedFails(t *testing.T) {
	f := newTestFTL(t, 8)
	if _, _, err := f.Read(0, 1); err == nil {
		t.Fatal("read of unmapped LPA succeeded")
	}
	if _, _, err := f.Read(0, f.Capacity()); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
}

// Property: integrity under random multi-PID traffic with TRIMs.
func TestFDPIntegrityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		geo := nand.Geometry{Channels: 1, DiesPerChannel: 2, BlocksPerDie: 12, PagesPerBlock: 4, PageSize: 32}
		arr, err := nand.New(geo, nand.DefaultLatencies())
		if err != nil {
			return false
		}
		f, err := New(arr, Config{})
		if err != nil {
			return false
		}
		latest := make(map[int64][]byte)
		now := sim.Time(0)
		for i := 0; i < 250; i++ {
			lpa := rng.Int63n(f.Capacity()/2 + 1)
			if rng.Intn(6) == 0 {
				n := rng.Int63n(3) + 1
				if lpa+n > f.Capacity() {
					n = f.Capacity() - lpa
				}
				if err := f.Deallocate(lpa, n); err != nil {
					return false
				}
				for j := int64(0); j < n; j++ {
					delete(latest, lpa+j)
				}
				continue
			}
			v := []byte(fmt.Sprintf("%d.%d", seed, i))
			done, err := f.Write(now, lpa, bufpool.Borrowed(v), uint32(rng.Intn(3)))
			if err != nil {
				return false
			}
			latest[lpa] = v
			now = done
		}
		for lpa, v := range latest {
			got, _, err := f.Read(now, lpa)
			if err != nil || !bytes.Equal(got[:len(v)], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Writes striped across an RU must exploit die parallelism: two consecutive
// same-PID page writes go to different dies.
func TestRUStripingParallelism(t *testing.T) {
	f := newTestFTL(t, 8)
	if _, err := f.Write(0, 0, bufpool.Borrowed(page("a", 128)), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, 1, bufpool.Borrowed(page("b", 128)), 1); err != nil {
		t.Fatal(err)
	}
	d0 := f.arr.DieOf(f.l2p[0])
	d1 := f.arr.DieOf(f.l2p[1])
	if d0 == d1 {
		t.Fatalf("consecutive RU pages on same die %d", d0)
	}
}

// FIFO reclaim-unit allocation must spread erases across blocks: after many
// log cycles, no block should have vastly more erases than another.
func TestWearLeveling(t *testing.T) {
	f := newTestFTL(t, 16)
	now := sim.Time(0)
	region := f.Capacity() / 4
	for round := 0; round < 40; round++ {
		for lpa := int64(0); lpa < region; lpa++ {
			done, err := f.Write(now, lpa, bufpool.Borrowed(page("w", 128)), 1)
			if err != nil {
				t.Fatal(err)
			}
			now = done
		}
		if err := f.Deallocate(0, region); err != nil {
			t.Fatal(err)
		}
	}
	w := f.arr.Wear()
	if w.TotalErases == 0 {
		t.Fatal("no erases happened")
	}
	if w.MaxErases-w.MinErases > w.MaxErases/2+2 {
		t.Fatalf("uneven wear: min=%d max=%d", w.MinErases, w.MaxErases)
	}
}

// PIDWrites must return a sorted snapshot no matter how Go orders the map —
// the maporder regression guard for every print/export site.
func TestPIDWritesSortedDeterministic(t *testing.T) {
	f := newTestFTL(t, 8)
	for i := int64(0); i < 12; i++ {
		if _, err := f.Write(0, i, bufpool.Borrowed(page("x", 128)), uint32(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	first := f.Stats().PIDWrites()
	if len(first) != 4 {
		t.Fatalf("PIDs reported = %d, want 4", len(first))
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].PID >= first[i].PID {
			t.Fatalf("PIDWrites not strictly ascending: %+v", first)
		}
	}
	for run := 0; run < 20; run++ {
		again := f.Stats().PIDWrites()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d: PIDWrites()[%d] = %+v, want %+v (map-order leak)", run, i, again[i], first[i])
			}
		}
	}
}

// GC-copy attribution: the per-PID reclaim-copy counters must decompose the
// global GCCopiedPages exactly, and bill only PIDs that owned victim RUs.
func TestGCCopyAttribution(t *testing.T) {
	f := newTestFTL(t, 8)
	rng := rand.New(rand.NewSource(21))
	now := sim.Time(0)
	hot := f.Capacity() / 2
	// PID 1 churns (mixed lifetimes within the stream => copies); PID 2
	// writes once and stays clean.
	coldBase := hot
	for i := int64(0); i < 4; i++ {
		done, err := f.Write(now, coldBase+i, bufpool.Borrowed(page("cold", 128)), 2)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	for i := 0; i < int(f.Capacity())*5; i++ {
		done, err := f.Write(now, rng.Int63n(hot), bufpool.Borrowed(page("m", 128)), 1)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	s := f.Stats()
	if s.GCCopiedPages == 0 {
		t.Fatal("churn never forced copies; enlarge the workload")
	}
	var sum int64
	for _, n := range s.GCCopiesByPID {
		sum += n
	}
	if sum != s.GCCopiedPages {
		t.Fatalf("per-PID GC copies sum to %d, global counter says %d", sum, s.GCCopiedPages)
	}
	if s.GCCopiesByPID[1] == 0 {
		t.Fatal("churning PID 1 was billed no copies")
	}
	// Returned map is a copy.
	s.GCCopiesByPID[1] = -5
	if f.Stats().GCCopiesByPID[1] < 0 {
		t.Fatal("Stats leaked internal GCCopiesByPID map")
	}
}

// A tenant cannot escape its lease: out-of-lease local streams map to the
// device PID limit, and the device's own rejection fires.
func TestLeaseEscapeRejectedByDevice(t *testing.T) {
	f := newTestFTL(t, 8) // MaxPIDs defaults to 8 on the test geometry
	a, err := NewPIDAllocator(8)
	if err != nil {
		t.Fatal(err)
	}
	a.Acquire("t0", 4) //nolint:errcheck // layout setup
	l1, err := a.Acquire("t1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(0, 0, bufpool.Borrowed(page("x", 128)), l1.PID(3)); err != nil {
		t.Fatalf("in-lease stream rejected: %v", err)
	}
	if _, err := f.Write(0, 1, bufpool.Borrowed(page("x", 128)), l1.PID(4)); err == nil {
		t.Fatal("out-of-lease local stream 4 accepted by the device")
	}
}
