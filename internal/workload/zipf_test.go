package workload

import (
	"math"
	"math/rand"
	"testing"
)

// drawCounts samples the generator and tallies per-item frequencies.
func drawCounts(seed int64, items uint64, theta float64, draws int) []int {
	rng := rand.New(rand.NewSource(seed))
	g := newZipfGen(rng, items, theta, zetaSum(items, theta))
	counts := make([]int, items+1) // +1: the u->1 boundary can return items
	for i := 0; i < draws; i++ {
		counts[g.next()]++
	}
	return counts
}

func TestZipfSeedDeterminism(t *testing.T) {
	for _, theta := range []float64{0.5, 0.99} {
		a := rand.New(rand.NewSource(42))
		b := rand.New(rand.NewSource(42))
		zetan := zetaSum(1000, theta)
		ga := newZipfGen(a, 1000, theta, zetan)
		gb := newZipfGen(b, 1000, theta, zetan)
		for i := 0; i < 10000; i++ {
			if x, y := ga.next(), gb.next(); x != y {
				t.Fatalf("theta %v draw %d: %d != %d (same seed)", theta, i, x, y)
			}
		}
	}
}

func TestZipfBounds(t *testing.T) {
	// The Gray et al. transform can return exactly `items` as u -> 1 (the
	// client clamps to KeyRange-1); it must never exceed it.
	for _, items := range []uint64{1, 2, 3, 1000} {
		rng := rand.New(rand.NewSource(7))
		g := newZipfGen(rng, items, zipfTheta, zetaSum(items, zipfTheta))
		for i := 0; i < 20000; i++ {
			if k := g.next(); k > items {
				t.Fatalf("items=%d: draw %d out of range", items, k)
			}
		}
	}
}

// Rank-frequency monotonicity: lower-ranked items must be drawn at least as
// often as higher-ranked ones (within sampling noise, so compare with slack
// across well-separated ranks).
func TestZipfRankFrequencyMonotone(t *testing.T) {
	const draws = 200000
	for _, theta := range []float64{0.5, 0.8, 0.99} {
		counts := drawCounts(3, 100, theta, draws)
		ranks := []int{0, 1, 2, 4, 8, 16, 32, 64}
		for i := 1; i < len(ranks); i++ {
			lo, hi := counts[ranks[i]], counts[ranks[i-1]]
			if float64(lo) > float64(hi)*1.15+50 {
				t.Fatalf("theta %v: item %d drawn %d times, item %d only %d — not monotone",
					theta, ranks[i], lo, ranks[i-1], hi)
			}
		}
	}
}

// The empirical head frequencies must match the exact reference model
// p(i) = (1/(i+1)^theta) / zeta(n, theta).
func TestZipfMatchesReferenceModel(t *testing.T) {
	const (
		items = 50
		draws = 400000
	)
	for _, theta := range []float64{0.6, 0.99} {
		zetan := zetaSum(items, theta)
		counts := drawCounts(17, items, theta, draws)
		for i := 0; i < 10; i++ {
			want := (1 / math.Pow(float64(i+1), theta)) / zetan
			got := float64(counts[i]) / draws
			if got < want*0.85 || got > want*1.15 {
				t.Fatalf("theta %v: P(%d) = %.4f, reference model says %.4f", theta, i, got, want)
			}
		}
	}
}

func TestZipfParameterEdgeCases(t *testing.T) {
	// items = 1: every draw is the only item (or its clamped boundary).
	counts := drawCounts(5, 1, zipfTheta, 5000)
	if counts[0] == 0 {
		t.Fatal("items=1 never drew item 0")
	}
	// theta <= 0 falls back to the YCSB default rather than exploding.
	rng := rand.New(rand.NewSource(9))
	g := newZipfGen(rng, 100, 0, zetaSum(100, zipfTheta))
	for i := 0; i < 1000; i++ {
		if k := g.next(); k > 100 {
			t.Fatalf("default-theta draw %d out of range", k)
		}
	}
	// Small theta approaches uniform: the head item's share must be far
	// below its share under heavy skew.
	light := drawCounts(13, 100, 0.1, 100000)
	heavy := drawCounts(13, 100, 0.99, 100000)
	if light[0] >= heavy[0] {
		t.Fatalf("theta 0.1 head count %d >= theta 0.99 head count %d", light[0], heavy[0])
	}
}

// Config.Theta must reach the generator: a heavier theta concentrates more
// mass on the hottest keys than the default.
func TestWorkloadThetaWiring(t *testing.T) {
	cfg := Config{Dist: Zipfian, KeyRange: 1000, Theta: 0.5, Seed: 3}
	theta := cfg.Theta
	zetan := zetaSum(uint64(cfg.KeyRange), theta)
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := newZipfGen(rng, uint64(cfg.KeyRange), theta, zetan)
	zeros := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if g.next() == 0 {
			zeros++
		}
	}
	want := 1 / zetan
	got := float64(zeros) / draws
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("theta 0.5: P(0) = %.4f, want ~%.4f", got, want)
	}
}

func TestTenantProfiles(t *testing.T) {
	n := NoisyNeighbor(1000, 256)
	if n.Dist != Zipfian || n.ReadRatio != 0 || n.Theta <= 0 {
		t.Fatalf("NoisyNeighbor profile = %+v", n)
	}
	s := SteadyTenant(1000, 4096)
	if s.Dist != Uniform || s.ReadRatio != 0 {
		t.Fatalf("SteadyTenant profile = %+v", s)
	}
	if n.Seed == s.Seed {
		t.Fatal("noisy and steady tenants share a seed")
	}
}
