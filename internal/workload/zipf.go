package workload

import (
	"math"
	"math/rand"
)

// zipfTheta is YCSB's default zipfian constant.
const zipfTheta = 0.99

// zipfGen draws zipfian-distributed items in [0, items) using the classic
// Gray et al. "Quickly generating billion-record synthetic databases"
// algorithm, as YCSB does (θ = 0.99). The O(n) zeta sum is computed once and
// shared across clients.
type zipfGen struct {
	rng   *rand.Rand
	items uint64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // pow(0.5, theta)
}

// zetaSum computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zetaSum(n uint64, theta float64) float64 {
	var z float64
	for i := uint64(1); i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	return z
}

// newZipfGen builds a generator with skew constant theta in (0, 1); zetan
// must be zetaSum(items, theta). theta <= 0 selects YCSB's default 0.99.
func newZipfGen(rng *rand.Rand, items uint64, theta, zetan float64) *zipfGen {
	if theta <= 0 {
		theta = zipfTheta
	}
	zeta2 := zetaSum(2, theta)
	return &zipfGen{
		rng:   rng,
		items: items,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(items), 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
	}
}

func (z *zipfGen) next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	return uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
