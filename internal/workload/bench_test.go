package workload

import (
	"math/rand"
	"testing"
)

func BenchmarkZipfNext(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	zetan := zetaSum(1_000_000, zipfTheta)
	g := newZipfGen(rng, 1_000_000, zipfTheta, zetan)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.next()
	}
}

func BenchmarkZetaSum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = zetaSum(100_000, zipfTheta)
	}
}
