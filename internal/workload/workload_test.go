package workload

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/wal"
)

// memBackend reuses a trivial in-memory backend for workload tests.
type memBackend struct{ walBytes int64 }

func (m *memBackend) Label() string { return "mem" }
func (m *memBackend) WALAppend(env *sim.Env, data wal.Chain) error {
	env.Sleep(10 * sim.Microsecond)
	m.walBytes += int64(data.Len())
	data.Release()
	return nil
}
func (m *memBackend) WALSync(env *sim.Env) error { env.Sleep(10 * sim.Microsecond); return nil }
func (m *memBackend) WALDurableSize() int64      { return m.walBytes }
func (m *memBackend) WALRotate(env *sim.Env) error {
	m.walBytes = 0
	return nil
}
func (m *memBackend) WALDiscardOld(env *sim.Env) error { return nil }

type nullSink struct{}

func (nullSink) Write(env *sim.Env, chunk []byte) error { env.Sleep(sim.Microsecond); return nil }
func (nullSink) Commit(env *sim.Env) error              { return nil }
func (nullSink) Abort(env *sim.Env) error               { return nil }

func (m *memBackend) BeginSnapshot(env *sim.Env, kind imdb.SnapshotKind) (imdb.SnapshotSink, error) {
	return nullSink{}, nil
}
func (m *memBackend) Recover(env *sim.Env) (*imdb.Recovered, error) { return &imdb.Recovered{}, nil }

func newDB(eng *sim.Engine) *imdb.Engine {
	db := imdb.New(eng, &memBackend{}, imdb.Config{Policy: imdb.PeriodicalLog}, nil)
	db.Start()
	return db
}

func TestRedisBenchRuns(t *testing.T) {
	eng := sim.NewEngine()
	db := newDB(eng)
	cfg := RedisBench(500, 100)
	cfg.ValueSize = 256
	r := Start(eng, db, cfg)
	var done bool
	eng.Spawn("waiter", func(env *sim.Env) {
		r.Done.Wait(env)
		done = true
		db.Shutdown(env)
	})
	eng.Run()
	if !done {
		t.Fatal("workload never completed")
	}
	res := r.Result()
	if res.Ops != 500 {
		t.Fatalf("ops = %d, want 500", res.Ops)
	}
	if res.SetLatency.Count() != 500 || res.GetLatency.Count() != 0 {
		t.Fatalf("set=%d get=%d", res.SetLatency.Count(), res.GetLatency.Count())
	}
	if res.RPS() <= 0 {
		t.Fatal("non-positive RPS")
	}
	if db.Stats().Sets != 500 {
		t.Fatalf("engine saw %d sets", db.Stats().Sets)
	}
}

func TestYCSBAMix(t *testing.T) {
	eng := sim.NewEngine()
	db := newDB(eng)
	cfg := YCSBA(2000, 200)
	cfg.ValueSize = 128
	eng.Spawn("setup", func(env *sim.Env) {
		if err := Preload(env, db, cfg); err != nil {
			t.Error(err)
			return
		}
		r := Start(env.Engine(), db, cfg)
		r.Done.Wait(env)
		res := r.Result()
		gets, sets := res.GetLatency.Count(), res.SetLatency.Count()
		if gets+sets != 2000 {
			t.Errorf("ops = %d", gets+sets)
		}
		ratio := float64(gets) / float64(gets+sets)
		if ratio < 0.4 || ratio > 0.6 {
			t.Errorf("GET ratio = %.2f, want ~0.5", ratio)
		}
		db.Shutdown(env)
	})
	eng.Run()
}

func TestZipfianSkew(t *testing.T) {
	// Zipfian traffic must be much more concentrated than uniform.
	concentration := func(dist Distribution) float64 {
		eng := sim.NewEngine()
		db := newDB(eng)
		cfg := Config{Clients: 4, Ops: 2000, KeyRange: 1000, KeySize: 8, ValueSize: 64, Dist: dist, Seed: 3}
		r := Start(eng, db, cfg)
		eng.Spawn("waiter", func(env *sim.Env) {
			r.Done.Wait(env)
			db.Shutdown(env)
		})
		eng.Run()
		// Concentration proxy: fraction of ops landing on the 10 hottest
		// store keys — approximate via store content? Instead count distinct
		// keys touched: zipf touches far fewer.
		return float64(db.Store().Len())
	}
	uni, zipf := concentration(Uniform), concentration(Zipfian)
	// YCSB θ=0.99 over 1000 items puts ~13% of mass on the hottest key, so
	// far fewer distinct keys get touched than under uniform draws.
	if zipf >= uni*0.7 {
		t.Fatalf("zipfian touched %v distinct keys vs uniform %v: not skewed", zipf, uni)
	}
}

func TestZipfHeadMass(t *testing.T) {
	// Item 0 must receive close to 1/zeta(n) of all draws.
	rng := rand.New(rand.NewSource(11))
	n := uint64(1000)
	zetan := zetaSum(n, zipfTheta)
	g := newZipfGen(rng, n, zipfTheta, zetan)
	const draws = 50000
	zeros := 0
	for i := 0; i < draws; i++ {
		if g.next() == 0 {
			zeros++
		}
	}
	want := 1 / zetan
	got := float64(zeros) / draws
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("P(0) = %.4f, want ~%.4f", got, want)
	}
}

func TestOpsSplitAcrossClients(t *testing.T) {
	eng := sim.NewEngine()
	db := newDB(eng)
	cfg := Config{Clients: 7, Ops: 100, KeyRange: 50, KeySize: 8, ValueSize: 32, Seed: 5}
	r := Start(eng, db, cfg)
	eng.Spawn("waiter", func(env *sim.Env) {
		r.Done.Wait(env)
		db.Shutdown(env)
	})
	eng.Run()
	if r.Result().Ops != 100 {
		t.Fatalf("ops = %d, want exactly 100 (uneven split)", r.Result().Ops)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, sim.Time) {
		eng := sim.NewEngine()
		db := newDB(eng)
		cfg := RedisBench(300, 64)
		cfg.ValueSize = 128
		r := Start(eng, db, cfg)
		var end sim.Time
		eng.Spawn("waiter", func(env *sim.Env) {
			r.Done.Wait(env)
			end = env.Now()
			db.Shutdown(env)
		})
		eng.Run()
		return int64(r.Result().SetLatency.Sum()), end
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", s1, e1, s2, e2)
	}
}

func TestPreloadInsertsAllKeys(t *testing.T) {
	eng := sim.NewEngine()
	db := newDB(eng)
	eng.Spawn("loader", func(env *sim.Env) {
		cfg := Config{KeyRange: 150, KeySize: 8, ValueSize: 64}
		if err := Preload(env, db, cfg); err != nil {
			t.Error(err)
			return
		}
		db.Shutdown(env)
	})
	eng.Run()
	if db.Store().Len() != 150 {
		t.Fatalf("preloaded %d keys, want 150", db.Store().Len())
	}
	for _, k := range []string{"00000000", "00000149"} {
		if db.Store().Get(k) == nil {
			t.Fatalf("key %q missing", k)
		}
	}
}

func TestValuePoolCompressibility(t *testing.T) {
	pool := valuePool(8, 1024, 1)
	if len(pool) != 8 {
		t.Fatalf("pool size %d", len(pool))
	}
	for i, v := range pool {
		if len(v) != 1024 {
			t.Fatalf("value %d size %d", i, len(v))
		}
		// Second half must be zeros (compressible).
		for _, b := range v[512:] {
			if b != 0 {
				t.Fatal("incompressible tail")
			}
		}
	}
	if fmt.Sprintf("%x", pool[0][:8]) == fmt.Sprintf("%x", pool[1][:8]) {
		t.Fatal("pool values identical")
	}
}

func TestYCSBVariants(t *testing.T) {
	b := YCSBB(100, 50)
	if b.ReadRatio != 0.95 || b.Dist != Zipfian {
		t.Fatalf("YCSB-B = %+v", b)
	}
	c := YCSBC(100, 50)
	if c.ReadRatio != 1.0 {
		t.Fatalf("YCSB-C = %+v", c)
	}
	// A read-only run must perform zero sets.
	eng := sim.NewEngine()
	db := newDB(eng)
	eng.Spawn("setup", func(env *sim.Env) {
		if err := Preload(env, db, c); err != nil {
			t.Error(err)
			return
		}
		cfg := c
		cfg.Ops = 200
		r := Start(env.Engine(), db, cfg)
		r.Done.Wait(env)
		if r.Result().SetLatency.Count() != 0 {
			t.Errorf("read-only run performed %d sets", r.Result().SetLatency.Count())
		}
		if r.Result().GetLatency.Count() != 200 {
			t.Errorf("gets = %d", r.Result().GetLatency.Count())
		}
		db.Shutdown(env)
	})
	eng.Run()
}
