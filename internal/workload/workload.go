// Package workload implements the paper's two benchmark drivers as
// closed-loop client processes: the redis-benchmark SET workload (50
// clients, uniform keys, 4 KiB values) and YCSB-A (8 threads, zipfian keys,
// 50/50 GET:SET, 2 KiB values). Both record per-operation latency
// histograms and can run for a fixed operation count or open-ended (for the
// runtime-RPS timelines of Figures 4–5).
package workload

import (
	"fmt"
	"math/rand"
	"strconv"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
)

// formatKey renders k as a zero-padded decimal of exactly width bytes
// (wider only when the digits don't fit), matching
// fmt.Sprintf("%0*d", width, k) for k >= 0 without fmt's per-call boxing —
// this runs once per simulated operation.
func formatKey(width int, k int64) string {
	var tmp [20]byte
	digits := strconv.AppendInt(tmp[:0], k, 10)
	if len(digits) >= width {
		return string(digits)
	}
	out := make([]byte, width)
	pad := width - len(digits)
	for i := 0; i < pad; i++ {
		out[i] = '0'
	}
	copy(out[pad:], digits)
	return string(out)
}

// Distribution selects the key popularity distribution.
type Distribution int

const (
	// Uniform keys (redis-benchmark's default random keyspace).
	Uniform Distribution = iota
	// Zipfian keys (YCSB's default request distribution).
	Zipfian
)

// Config describes a workload.
type Config struct {
	// Clients is the number of closed-loop client processes.
	Clients int
	// Ops is the total operation count across all clients; 0 means run
	// open-ended (stop the engine externally).
	Ops int64
	// KeyRange is the keyspace size.
	KeyRange int64
	// KeySize pads keys to this many bytes (paper: 8).
	KeySize int
	// ValueSize is the value payload size (paper: 4096 / 2048).
	ValueSize int
	// ReadRatio is the GET fraction (0 = SET-only, YCSB-A = 0.5).
	ReadRatio float64
	// Dist selects the key distribution.
	Dist Distribution
	// Theta is the zipfian skew constant, in (0, 1); 0 selects YCSB's
	// default 0.99. Ignored for Uniform.
	Theta float64
	// Seed makes the workload reproducible.
	Seed int64
	// ValuePoolSize is how many distinct pre-generated values rotate
	// through SETs (values are half-compressible). Default 64.
	ValuePoolSize int
}

// RedisBench returns the paper's redis-benchmark configuration scaled to
// the given op count and key range (paper: 50 clients, 5.3 M keys, 8 B keys,
// 4096 B values, 28 M SETs).
func RedisBench(ops, keyRange int64) Config {
	return Config{
		Clients:   50,
		Ops:       ops,
		KeyRange:  keyRange,
		KeySize:   8,
		ValueSize: 4096,
		ReadRatio: 0,
		Dist:      Uniform,
		Seed:      1,
	}
}

// YCSBA returns the paper's YCSB-A configuration scaled to the given op
// count and record count (paper: 8 threads, 9 M records, 115 M ops, 2048 B
// values, 0.5 GET).
func YCSBA(ops, records int64) Config {
	return Config{
		Clients:   8,
		Ops:       ops,
		KeyRange:  records,
		KeySize:   8,
		ValueSize: 2048,
		ReadRatio: 0.5,
		Dist:      Zipfian,
		Seed:      1,
	}
}

// NoisyNeighbor returns the multi-tenant overwriter profile: a Zipf-heavy,
// SET-only tenant hammering a hot key set, the workload that destroys a
// co-located quiet tenant's WAF when placement streams are shared ("How to
// Write to SSDs", Lee et al.). The distinct seed keeps it uncorrelated with
// the steady tenants running beside it.
func NoisyNeighbor(ops, keyRange int64) Config {
	return Config{
		Clients:   16,
		Ops:       ops,
		KeyRange:  keyRange,
		KeySize:   8,
		ValueSize: 4096,
		ReadRatio: 0,
		Dist:      Zipfian,
		Theta:     zipfTheta,
		Seed:      7,
	}
}

// SteadyTenant returns the quiet co-located tenant profile: a moderate
// uniform writer whose WAF stays at 1.00 whenever its lifetimes get their
// own placement streams.
func SteadyTenant(ops, keyRange int64) Config {
	return Config{
		Clients:   8,
		Ops:       ops,
		KeyRange:  keyRange,
		KeySize:   8,
		ValueSize: 4096,
		ReadRatio: 0,
		Dist:      Uniform,
		Seed:      11,
	}
}

// YCSBB returns a YCSB-B configuration (95% reads, zipfian) — not used by
// the paper but handy for read-heavy studies on the same stack.
func YCSBB(ops, records int64) Config {
	c := YCSBA(ops, records)
	c.ReadRatio = 0.95
	return c
}

// YCSBC returns a YCSB-C configuration (read-only, zipfian).
func YCSBC(ops, records int64) Config {
	c := YCSBA(ops, records)
	c.ReadRatio = 1.0
	return c
}

// Result aggregates a finished (or stopped) workload run.
type Result struct {
	SetLatency metrics.Histogram
	GetLatency metrics.Histogram
	Ops        int64
	Start, End sim.Time
}

// RPS reports overall completed operations per second of virtual time.
func (r *Result) RPS() float64 {
	d := r.End.Sub(r.Start).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(r.Ops) / d
}

// Runner drives one workload against one engine.
type Runner struct {
	cfg Config
	db  *imdb.Engine
	// Done fires when every client has issued its share of Ops.
	Done *sim.Signal

	res     Result
	pending int
}

// Start spawns the client processes on eng against db.
func Start(eng *sim.Engine, db *imdb.Engine, cfg Config) *Runner {
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.ValuePoolSize <= 0 {
		cfg.ValuePoolSize = 64
	}
	r := &Runner{cfg: cfg, db: db, Done: sim.NewSignal(eng)}
	r.res.Start = eng.Now()
	r.pending = cfg.Clients
	pool := valuePool(cfg.ValuePoolSize, cfg.ValueSize, cfg.Seed)
	theta := cfg.Theta
	if theta <= 0 {
		theta = zipfTheta
	}
	var zetan float64
	if cfg.Dist == Zipfian {
		zetan = zetaSum(uint64(cfg.KeyRange), theta)
	}
	for c := 0; c < cfg.Clients; c++ {
		share := int64(0)
		if cfg.Ops > 0 {
			share = cfg.Ops / int64(cfg.Clients)
			if int64(c) < cfg.Ops%int64(cfg.Clients) {
				share++
			}
		}
		client := &client{
			runner: r,
			id:     c,
			ops:    share,
			rng:    rand.New(rand.NewSource(cfg.Seed + int64(c)*7919)),
			pool:   pool,
		}
		if cfg.Dist == Zipfian {
			client.zipf = newZipfGen(client.rng, uint64(cfg.KeyRange), theta, zetan)
		}
		name := fmt.Sprintf("client-%d", c)
		if cfg.Ops == 0 {
			eng.SpawnDaemon(name, client.run) // open-ended: stopped externally
		} else {
			eng.Spawn(name, client.run)
		}
	}
	return r
}

// Result returns the aggregated metrics (valid once Done fires, or at any
// point for open-ended runs).
func (r *Runner) Result() *Result { return &r.res }

// valuePool pre-generates half-compressible values so SET payloads are
// cheap to produce but still realistic for the compressor.
func valuePool(n, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	pool := make([][]byte, n)
	for i := range pool {
		v := make([]byte, size)
		rng.Read(v[:size/2])
		pool[i] = v
	}
	return pool
}

type client struct {
	runner *Runner
	id     int
	ops    int64 // 0 = unbounded
	rng    *rand.Rand
	zipf   *zipfGen
	pool   [][]byte
}

func (c *client) key() string {
	cfg := &c.runner.cfg
	var k int64
	switch cfg.Dist {
	case Zipfian:
		k = int64(c.zipf.next())
		if k >= cfg.KeyRange {
			k = cfg.KeyRange - 1
		}
	default:
		k = c.rng.Int63n(cfg.KeyRange)
	}
	return formatKey(cfg.KeySize, k)
}

func (c *client) run(env *sim.Env) {
	cfg := &c.runner.cfg
	for i := int64(0); c.ops == 0 || i < c.ops; i++ {
		isGet := cfg.ReadRatio > 0 && c.rng.Float64() < cfg.ReadRatio
		req := &imdb.Request{Key: c.key(), Reply: sim.NewSignal(env.Engine())}
		if isGet {
			req.Op = imdb.OpGet
		} else {
			req.Op = imdb.OpSet
			req.Value = c.pool[c.rng.Intn(len(c.pool))]
		}
		start := env.Now()
		c.runner.db.Submit(req)
		resp := req.Reply.Wait(env).(*imdb.Response)
		if resp.Err != nil {
			panic(fmt.Sprintf("workload: client %d op failed: %v", c.id, resp.Err))
		}
		lat := env.Now().Sub(start)
		if isGet {
			c.runner.res.GetLatency.Record(lat)
		} else {
			c.runner.res.SetLatency.Record(lat)
		}
		c.runner.res.Ops++
		c.runner.res.End = env.Now()
	}
	c.runner.pending--
	if c.runner.pending == 0 {
		c.runner.Done.Fire(c.runner.res)
	}
}

// Preload sequentially inserts every key in [0, KeyRange) once — YCSB's
// load phase. It runs in the calling process and records no latency.
func Preload(env *sim.Env, db *imdb.Engine, cfg Config) error {
	pool := valuePool(max(cfg.ValuePoolSize, 16), cfg.ValueSize, cfg.Seed^0x10ad)
	for i := int64(0); i < cfg.KeyRange; i++ {
		key := formatKey(cfg.KeySize, i)
		if err := db.Set(env, key, pool[i%int64(len(pool))]); err != nil {
			return err
		}
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
