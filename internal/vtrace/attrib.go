package vtrace

import (
	"fmt"
	"sort"
	"strings"

	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
)

// Class buckets a stage into the three kinds of time the paper's §4 argues
// about: waiting in software queues, being serviced by CPU or device, or
// stalled behind garbage collection / reclaim.
type Class int

const (
	Service Class = iota
	Queue
	GC
)

func (c Class) String() string {
	switch c {
	case Queue:
		return "queue"
	case GC:
		return "gc"
	default:
		return "service"
	}
}

// classify maps a (layer, name) stage to its class by naming convention:
// stages that represent waiting carry "queue", "wait" or "throttle" in their
// name; GC/reclaim trees are named after the collector that runs them.
func classify(layer, name string) Class {
	switch {
	case strings.Contains(name, "queue"), strings.HasSuffix(name, ".wait"), strings.Contains(name, "throttle"):
		return Queue
	case layer == "ftl" && strings.Contains(name, "gc"),
		layer == "fdp" && strings.Contains(name, "reclaim"):
		return GC
	default:
		return Service
	}
}

// StageStat is the aggregated self-time of one (layer, name) stage. Self
// time is the span's duration minus the sum of its children's durations, so
// within any span tree the stage self-times telescope exactly to the root's
// duration: Σ self = Σ dur − Σ child-dur = root dur. A stage whose children
// overlap in time (a command fanned out across NAND dies) can therefore show
// negative self time — that is the parallelism credit, not an error.
type StageStat struct {
	Layer string
	Name  string
	Class Class
	Count int64
	Self  sim.Duration
}

// OpStat decomposes one op type's end-to-end latency. Total is the exact
// sum of root-span durations; Stages partition it (Σ Stages[i].Self ==
// Total, an int64 identity asserted by tests).
type OpStat struct {
	Name   string
	Count  int64
	Total  sim.Duration
	Hist   metrics.Histogram
	Stages []StageStat
}

// Mean is the exact mean end-to-end latency for this op type.
func (o *OpStat) Mean() sim.Duration {
	if o.Count == 0 {
		return 0
	}
	return o.Total / sim.Duration(o.Count)
}

// Attribution is the per-layer latency breakdown of one cell's trace.
type Attribution struct {
	// Ops holds per-request decomposition: one entry per root span in the
	// "op" layer ("set", "get", "del"), sorted by name.
	Ops []OpStat
	// Trees holds the same decomposition for every non-op root tree (WAL
	// group flushes, snapshot chunks, writeback, GC), sorted by root name.
	Trees []OpStat
	// Stages aggregates self-time per (layer, name) over the whole trace,
	// in stack order — the device-path view.
	Stages []StageStat
}

type stageKey struct {
	layer, name string
}

// Compute builds the attribution report for one tracer. It relies on the
// recording invariant that a parent span is always created before its
// children (Begin returns the ID the children reference), so a single
// forward pass resolves every span's root.
func Compute(t *Tracer) *Attribution {
	a := &Attribution{}
	if t == nil {
		return a
	}
	spans := t.Spans()
	n := len(spans)
	childSum := make([]sim.Duration, n)
	rootOf := make([]int32, n)
	for i := range spans {
		s := &spans[i]
		if s.Parent == 0 {
			rootOf[i] = int32(i)
		} else {
			p := int(s.Parent) - 1
			rootOf[i] = rootOf[p]
			childSum[p] += s.Dur()
		}
	}

	type group struct {
		ops    map[string]*OpStat
		stages map[string]map[stageKey]*StageStat
	}
	opG := group{ops: make(map[string]*OpStat), stages: make(map[string]map[stageKey]*StageStat)}
	treeG := group{ops: make(map[string]*OpStat), stages: make(map[string]map[stageKey]*StageStat)}
	total := make(map[stageKey]*StageStat)

	for i := range spans {
		s := &spans[i]
		root := &spans[rootOf[i]]
		g := &treeG
		if root.Layer == "op" {
			g = &opG
		}
		if s.Parent == 0 {
			op, ok := g.ops[s.Name]
			if !ok {
				op = &OpStat{Name: s.Name}
				g.ops[s.Name] = op
			}
			op.Count++
			op.Total += s.Dur()
			op.Hist.Record(s.Dur())
		}
		self := s.Dur() - childSum[i]
		key := stageKey{s.Layer, s.Name}
		st := g.stages[root.Name]
		if st == nil {
			st = make(map[stageKey]*StageStat)
			g.stages[root.Name] = st
		}
		addStage(st, key, self)
		addStage(total, key, self)
	}

	a.Ops = collectOps(opG.ops, opG.stages)
	a.Trees = collectOps(treeG.ops, treeG.stages)
	a.Stages = sortStages(total)
	return a
}

func addStage(m map[stageKey]*StageStat, key stageKey, self sim.Duration) {
	st, ok := m[key]
	if !ok {
		st = &StageStat{Layer: key.layer, Name: key.name, Class: classify(key.layer, key.name)}
		m[key] = st
	}
	st.Count++
	st.Self += self
}

func collectOps(ops map[string]*OpStat, stages map[string]map[stageKey]*StageStat) []OpStat {
	names := make([]string, 0, len(ops))
	for name := range ops {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]OpStat, 0, len(names))
	for _, name := range names {
		op := ops[name]
		op.Stages = sortStages(stages[name])
		out = append(out, *op)
	}
	return out
}

// layerRank orders stages by stack depth (the layerOrder table), then name.
func layerRank(layer string) int {
	for i, l := range layerOrder {
		if l == layer {
			return i
		}
	}
	return len(layerOrder)
}

func sortStages(m map[stageKey]*StageStat) []StageStat {
	keys := make([]stageKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ri, rj := layerRank(keys[i].layer), layerRank(keys[j].layer)
		if ri != rj {
			return ri < rj
		}
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		return keys[i].name < keys[j].name
	})
	out := make([]StageStat, 0, len(keys))
	for _, k := range keys {
		out = append(out, *m[k])
	}
	return out
}

// ClassTotals sums self-time per class over a stage list: the headline
// "queueing vs device-service vs GC-stall" split.
func ClassTotals(stages []StageStat) (service, queue, gc sim.Duration) {
	for i := range stages {
		switch stages[i].Class {
		case Queue:
			queue += stages[i].Self
		case GC:
			gc += stages[i].Self
		default:
			service += stages[i].Self
		}
	}
	return
}

// Format renders the attribution as the text report printed by the exp
// harness and the CLI tools. All ordering is deterministic.
func (a *Attribution) Format() string {
	var b strings.Builder
	if len(a.Ops) == 0 && len(a.Trees) == 0 {
		b.WriteString("  (no spans recorded)\n")
		return b.String()
	}
	if len(a.Ops) > 0 {
		b.WriteString("  per-op end-to-end latency (submit -> reply):\n")
		fmt.Fprintf(&b, "    %-10s %10s %12s %12s %12s %12s\n", "op", "count", "mean", "p50", "p99", "p99.9")
		for i := range a.Ops {
			op := &a.Ops[i]
			fmt.Fprintf(&b, "    %-10s %10d %12v %12v %12v %12v\n",
				op.Name, op.Count, op.Mean(), op.Hist.P50(), op.Hist.P99(), op.Hist.P999())
		}
		for i := range a.Ops {
			formatOpStages(&b, &a.Ops[i])
		}
	}
	if len(a.Trees) > 0 {
		b.WriteString("  background trees (group flushes, snapshots, GC):\n")
		fmt.Fprintf(&b, "    %-16s %10s %12s %12s %12s\n", "tree", "count", "mean", "p99", "total")
		for i := range a.Trees {
			op := &a.Trees[i]
			fmt.Fprintf(&b, "    %-16s %10d %12v %12v %12v\n",
				op.Name, op.Count, op.Mean(), op.Hist.P99(), op.Total)
		}
		for i := range a.Trees {
			formatOpStages(&b, &a.Trees[i])
		}
	}
	return b.String()
}

func formatOpStages(b *strings.Builder, op *OpStat) {
	if op.Count == 0 || len(op.Stages) == 0 {
		return
	}
	service, queue, gc := ClassTotals(op.Stages)
	fmt.Fprintf(b, "  %s decomposition (service %v, queue %v, gc %v per op mean):\n",
		op.Name, service/sim.Duration(op.Count), queue/sim.Duration(op.Count), gc/sim.Duration(op.Count))
	fmt.Fprintf(b, "    %-24s %-8s %10s %12s %8s\n", "stage", "class", "count", "mean/op", "share")
	for i := range op.Stages {
		st := &op.Stages[i]
		var share float64
		if op.Total != 0 {
			share = float64(st.Self) / float64(op.Total) * 100
		}
		fmt.Fprintf(b, "    %-24s %-8s %10d %12v %7.1f%%\n",
			st.Layer+"/"+st.Name, st.Class, st.Count, st.Self/sim.Duration(op.Count), share)
	}
}
