package vtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// layerOrder fixes the thread-lane ordering in exported traces: stack order
// top to bottom, so a Perfetto timeline reads like the architecture diagram.
// Layers not listed here get lanes after the known ones, sorted by name.
var layerOrder = []string{
	"op",       // per-request root spans (imdb submit → reply)
	"imdb",     // engine: queueing, apply, group-commit wait, snapshots
	"wal",      // WAL flush trees
	"snapshot", // snapshot chunk trees
	"core",     // SlimIO backend (io-passthru paths)
	"baseline", // kernel-path backend (POSIX file ops)
	"uring",    // ring submission/dispatch
	"kernelio", // syscall / filesystem / page-cache stage
	"sched",    // block-layer dispatch
	"ssd",      // NVMe command layer
	"ftl",      // conventional FTL (incl. GC)
	"fdp",      // FDP placement (incl. reclaim)
	"nand",     // page program/read, block erase
	"fault",    // injected-fault instants
}

// laneTable assigns a deterministic tid to every layer present in a tracer.
func laneTable(t *Tracer) (map[string]int, []string) {
	present := make(map[string]bool)
	for i := range t.spans {
		present[t.spans[i].Layer] = true
	}
	for i := range t.events {
		present[t.events[i].Layer] = true
	}
	lanes := make(map[string]int)
	var ordered []string
	for _, layer := range layerOrder {
		if present[layer] {
			lanes[layer] = len(ordered) + 1
			ordered = append(ordered, layer)
			delete(present, layer)
		}
	}
	var rest []string
	for layer := range present {
		rest = append(rest, layer)
	}
	sort.Strings(rest)
	for _, layer := range rest {
		lanes[layer] = len(ordered) + 1
		ordered = append(ordered, layer)
	}
	return lanes, ordered
}

// Export writes the registry's tracers as Chrome trace-event JSON
// ({"traceEvents":[...]}), loadable by Perfetto and chrome://tracing. Every
// byte is deterministic: cells are ordered by sorted label (pid = order),
// lanes by the fixed layerOrder table, events in recording order, and
// timestamps are formatted by integer arithmetic (microseconds with fixed
// 3-digit nanosecond remainder) — no floats, no map-order dependence.
func (r *Registry) Export(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	labels := r.Labels()
	for pidIdx, label := range labels {
		t := r.Get(label)
		exportTracer(bw, t, pidIdx+1, &first)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// ExportTracer writes a single tracer as a standalone trace (pid 1).
func ExportTracer(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("vtrace: nil tracer")
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	exportTracer(bw, t, 1, &first)
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

func exportTracer(bw *bufio.Writer, t *Tracer, pid int, first *bool) {
	if t == nil {
		return
	}
	lanes, ordered := laneTable(t)
	sep := func() {
		if *first {
			*first = false
			bw.WriteString("\n")
		} else {
			bw.WriteString(",\n")
		}
	}

	sep()
	bw.WriteString("{\"ph\":\"M\",\"pid\":")
	writeInt(bw, int64(pid))
	bw.WriteString(",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":")
	writeString(bw, t.Label)
	bw.WriteString("}}")
	for _, layer := range ordered {
		sep()
		bw.WriteString("{\"ph\":\"M\",\"pid\":")
		writeInt(bw, int64(pid))
		bw.WriteString(",\"tid\":")
		writeInt(bw, int64(lanes[layer]))
		bw.WriteString(",\"name\":\"thread_name\",\"args\":{\"name\":")
		writeString(bw, layer)
		bw.WriteString("}}")
	}

	for i := range t.spans {
		s := &t.spans[i]
		sep()
		bw.WriteString("{\"ph\":\"X\",\"pid\":")
		writeInt(bw, int64(pid))
		bw.WriteString(",\"tid\":")
		writeInt(bw, int64(lanes[s.Layer]))
		bw.WriteString(",\"ts\":")
		writeUsec(bw, int64(s.Start))
		bw.WriteString(",\"dur\":")
		writeUsec(bw, int64(s.Dur()))
		bw.WriteString(",\"name\":")
		writeString(bw, s.Name)
		bw.WriteString(",\"cat\":")
		writeString(bw, s.Layer)
		bw.WriteString(",\"args\":{\"id\":")
		writeInt(bw, int64(s.ID))
		bw.WriteString(",\"parent\":")
		writeInt(bw, int64(s.Parent))
		bw.WriteString(",\"v\":")
		writeInt(bw, s.Arg)
		bw.WriteString("}}")
	}

	for i := range t.events {
		ev := &t.events[i]
		sep()
		bw.WriteString("{\"ph\":\"i\",\"s\":\"t\",\"pid\":")
		writeInt(bw, int64(pid))
		bw.WriteString(",\"tid\":")
		writeInt(bw, int64(lanes[ev.Layer]))
		bw.WriteString(",\"ts\":")
		writeUsec(bw, int64(ev.At))
		bw.WriteString(",\"name\":")
		writeString(bw, ev.Name)
		bw.WriteString(",\"cat\":")
		writeString(bw, ev.Layer)
		bw.WriteString(",\"args\":{\"v\":")
		writeInt(bw, ev.Arg)
		bw.WriteString("}}")
	}
}

// writeUsec formats ns as microseconds with a fixed 3-digit fraction, using
// only integer arithmetic (trace-event ts/dur are in microseconds).
func writeUsec(bw *bufio.Writer, ns int64) {
	if ns < 0 {
		bw.WriteByte('-')
		ns = -ns
	}
	var buf [24]byte
	bw.Write(strconv.AppendInt(buf[:0], ns/1000, 10))
	bw.WriteByte('.')
	r := ns % 1000
	bw.WriteByte(byte('0' + r/100))
	bw.WriteByte(byte('0' + (r/10)%10))
	bw.WriteByte(byte('0' + r%10))
}

func writeInt(bw *bufio.Writer, v int64) {
	var buf [24]byte
	bw.Write(strconv.AppendInt(buf[:0], v, 10))
}

// writeString writes a JSON string literal. Labels and span names are
// plain ASCII identifiers, but escape defensively anyway.
func writeString(bw *bufio.Writer, s string) {
	bw.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			bw.WriteByte('\\')
			bw.WriteByte(c)
		case c < 0x20:
			const hex = "0123456789abcdef"
			bw.WriteString("\\u00")
			bw.WriteByte(hex[c>>4])
			bw.WriteByte(hex[c&0xf])
		default:
			bw.WriteByte(c)
		}
	}
	bw.WriteByte('"')
}

// traceEvent mirrors the fields ValidateTrace checks. Pointer fields
// distinguish "absent" from zero.
type traceEvent struct {
	Ph   string   `json:"ph"`
	Name string   `json:"name"`
	Cat  string   `json:"cat"`
	TS   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	Pid  *int64   `json:"pid"`
	Tid  *int64   `json:"tid"`
	S    string   `json:"s"`
}

// ValidateTrace parses data as trace-event JSON and checks the schema
// invariants our exporter promises: a non-empty traceEvents array; every
// event has a phase we emit (X, i, M) and a name; complete spans carry
// non-negative ts/dur and pid/tid; instants carry ts and a scope. Used by
// `make trace-smoke` and `slimio-inspect -checktrace`.
func ValidateTrace(data []byte) error {
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("vtrace: invalid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("vtrace: no traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return fmt.Errorf("vtrace: event %d: missing name", i)
		}
		switch ev.Ph {
		case "X":
			if ev.TS == nil || ev.Dur == nil {
				return fmt.Errorf("vtrace: event %d (%s): complete span missing ts/dur", i, ev.Name)
			}
			if *ev.TS < 0 || *ev.Dur < 0 {
				return fmt.Errorf("vtrace: event %d (%s): negative ts/dur", i, ev.Name)
			}
			if ev.Pid == nil || ev.Tid == nil {
				return fmt.Errorf("vtrace: event %d (%s): span missing pid/tid", i, ev.Name)
			}
		case "i":
			if ev.TS == nil {
				return fmt.Errorf("vtrace: event %d (%s): instant missing ts", i, ev.Name)
			}
			if ev.S == "" {
				return fmt.Errorf("vtrace: event %d (%s): instant missing scope", i, ev.Name)
			}
		case "M":
			// metadata: name checked above
		default:
			return fmt.Errorf("vtrace: event %d (%s): unexpected phase %q", i, ev.Name, ev.Ph)
		}
	}
	return nil
}
