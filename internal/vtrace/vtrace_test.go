package vtrace

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/slimio/slimio/internal/sim"
)

func newTestWriter(w io.Writer) *bufio.Writer { return bufio.NewWriter(w) }

// TestNilTracerIsNoOp: every method must be callable on a nil tracer — that
// is the whole "tracing off" contract.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	id := tr.Begin("ssd", "write", 0, 10)
	if id != 0 {
		t.Fatalf("nil Begin returned %d, want 0", id)
	}
	tr.End(id, 20)
	tr.SetArg(id, 7)
	tr.Emit("nand", "program", 0, 0, 5, 0)
	tr.Instant("fault", "read.err", 3, 1)
	tr.SetScope(4)
	if tr.Scope() != 0 {
		t.Fatal("nil Scope not zero")
	}
	if tr.Spans() != nil || tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil accessors not empty")
	}
	var reg *Registry
	if reg.Tracer("x") != nil || reg.Get("x") != nil || reg.Labels() != nil {
		t.Fatal("nil registry not inert")
	}
}

func TestNilTracerAllocFree(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		id := tr.Begin("ssd", "write", 0, 10)
		tr.End(id, 20)
		tr.Emit("nand", "program", id, 10, 20, 0)
		tr.Instant("fault", "err", 15, 1)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocates: %v allocs/op", allocs)
	}
}

func TestSpanLimit(t *testing.T) {
	tr := New("cell")
	tr.limit = 2
	a := tr.Begin("op", "set", 0, 0)
	b := tr.Begin("op", "set", 0, 1)
	c := tr.Begin("op", "set", 0, 2)
	if a == 0 || b == 0 {
		t.Fatal("spans under the cap were dropped")
	}
	if c != 0 {
		t.Fatalf("span over the cap got id %d", c)
	}
	tr.End(c, 5) // must not panic
	tr.Instant("op", "x", 0, 0)
	tr.Instant("op", "x", 0, 0)
	tr.Instant("op", "x", 0, 0)
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

// buildSample records a tiny two-op forest with a background tree.
func buildSample(tr *Tracer) {
	// op/set: 0..100 with queue 0..30, apply 30..50, commit.wait 50..100.
	root := tr.Begin("op", "set", 0, 0)
	tr.Emit("imdb", "queue", root, 0, 30, 0)
	tr.Emit("imdb", "apply", root, 30, 50, 0)
	tr.Emit("imdb", "commit.wait", root, 50, 100, 0)
	tr.End(root, 100)
	// op/get: 10..40, queue 10..20, apply 20..40.
	g := tr.Begin("op", "get", 0, 10)
	tr.Emit("imdb", "queue", g, 10, 20, 0)
	tr.Emit("imdb", "apply", g, 20, 40, 0)
	tr.End(g, 40)
	// Background WAL flush tree with a device chain.
	fl := tr.Begin("wal", "flush", 0, 50)
	cmd := tr.Emit("ssd", "write", fl, 55, 95, 0)
	tr.Emit("nand", "program", cmd, 60, 90, 5)
	tr.End(fl, 100)
	tr.Instant("fault", "read.err", 70, 1)
}

// TestAttributionIdentity: stage self-times must telescope exactly to the
// root totals — the int64 identity the 1%-of-mean acceptance test rests on.
func TestAttributionIdentity(t *testing.T) {
	tr := New("cell")
	buildSample(tr)
	a := Compute(tr)

	if len(a.Ops) != 2 {
		t.Fatalf("ops = %d, want 2 (get, set)", len(a.Ops))
	}
	if a.Ops[0].Name != "get" || a.Ops[1].Name != "set" {
		t.Fatalf("ops not sorted: %q, %q", a.Ops[0].Name, a.Ops[1].Name)
	}
	for i := range a.Ops {
		op := &a.Ops[i]
		var sum sim.Duration
		for _, st := range op.Stages {
			sum += st.Self
		}
		if sum != op.Total {
			t.Errorf("%s: Σ stage self = %d, root total = %d", op.Name, sum, op.Total)
		}
	}
	set := &a.Ops[1]
	if set.Total != 100 || set.Mean() != 100 {
		t.Errorf("set total/mean = %v/%v, want 100/100", set.Total, set.Mean())
	}
	// set stages: op/set self = 100-30-20-50 = 0; queue 30 (class queue).
	foundQueue := false
	for _, st := range set.Stages {
		if st.Layer == "imdb" && st.Name == "queue" {
			foundQueue = true
			if st.Class != Queue || st.Self != 30 {
				t.Errorf("imdb/queue = class %v self %v, want queue/30", st.Class, st.Self)
			}
		}
	}
	if !foundQueue {
		t.Error("imdb/queue stage missing")
	}

	if len(a.Trees) != 1 || a.Trees[0].Name != "flush" {
		t.Fatalf("trees = %+v, want one flush tree", a.Trees)
	}
	var sum sim.Duration
	for _, st := range a.Trees[0].Stages {
		sum += st.Self
	}
	if sum != a.Trees[0].Total {
		t.Errorf("flush tree: Σ self = %d, total = %d", sum, a.Trees[0].Total)
	}

	if s := a.Format(); !strings.Contains(s, "per-op end-to-end") || !strings.Contains(s, "imdb/queue") {
		t.Errorf("Format missing expected sections:\n%s", s)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		layer, name string
		want        Class
	}{
		{"imdb", "queue", Queue},
		{"imdb", "commit.wait", Queue},
		{"kernelio", "throttle", Queue},
		{"ftl", "gc", GC},
		{"fdp", "reclaim", GC},
		{"nand", "program", Service},
		{"ssd", "write", Service},
	}
	for _, c := range cases {
		if got := classify(c.layer, c.name); got != c.want {
			t.Errorf("classify(%s/%s) = %v, want %v", c.layer, c.name, got, c.want)
		}
	}
}

// TestExportDeterministicAndValid: export twice (with registration order
// reversed the second time) and require byte-identical, schema-valid JSON.
func TestExportDeterministicAndValid(t *testing.T) {
	build := func(labels []string) *Registry {
		reg := NewRegistry()
		for _, l := range labels {
			buildSample(reg.Tracer(l))
		}
		return reg
	}
	var b1, b2 bytes.Buffer
	if err := build([]string{"cell-a", "cell-b"}).Export(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build([]string{"cell-b", "cell-a"}).Export(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("export depends on registration order")
	}
	if err := ValidateTrace(b1.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	out := b1.String()
	for _, want := range []string{`"process_name"`, `"thread_name"`, `"ph":"X"`, `"ph":"i"`, `"cell-a"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
}

func TestValidateTraceRejects(t *testing.T) {
	bad := []string{
		`{}`,
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"ph":"X","name":"x"}]}`,
		`{"traceEvents":[{"ph":"Z","name":"x"}]}`,
		`{"traceEvents":[{"ph":"X","ts":1,"dur":-2,"pid":1,"tid":1,"name":"x"}]}`,
		`not json`,
	}
	for _, s := range bad {
		if err := ValidateTrace([]byte(s)); err == nil {
			t.Errorf("ValidateTrace accepted %s", s)
		}
	}
}

func TestWriteUsec(t *testing.T) {
	var b bytes.Buffer
	bw := newTestWriter(&b)
	for _, c := range []struct {
		ns   int64
		want string
	}{{0, "0.000"}, {1, "0.001"}, {999, "0.999"}, {1000, "1.000"}, {1234567, "1234.567"}} {
		b.Reset()
		writeUsec(bw, c.ns)
		bw.Flush()
		if b.String() != c.want {
			t.Errorf("writeUsec(%d) = %q, want %q", c.ns, b.String(), c.want)
		}
	}
}
