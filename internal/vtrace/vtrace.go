// Package vtrace is the deterministic, virtual-time tracing layer: spans and
// instant events stamped with sim.Time, recorded per experiment cell and
// exported as Chrome trace-event (Perfetto-compatible) JSON. Nothing here
// touches the wall clock or global randomness — a trace is a pure function of
// the cell's seed, which makes exported traces golden-testable artifacts
// (same seed ⇒ byte-identical JSON) rather than best-effort samples.
//
// A nil *Tracer is the off switch: every method nil-checks and returns
// immediately, so untraced runs pay one predictable branch per call site and
// allocate nothing. Each cell owns at most one Tracer; the simulation engine
// runs one process at a time (baton passing), so Tracer needs no locking.
package vtrace

import (
	"sort"
	"sync"

	"github.com/slimio/slimio/internal/sim"
)

// SpanID identifies a span within one Tracer. The zero SpanID means "no
// span": it is the parent of root spans and the return value of every
// recording method once the span limit is hit.
type SpanID int32

// Span is one timed interval in the virtual timeline. Layer names the stack
// stage that recorded it ("imdb", "uring", "ssd", "nand", ...), Name the
// operation within that stage. Arg carries one optional layer-defined
// integer (e.g. queue-wait nanoseconds, pages moved).
type Span struct {
	ID     SpanID
	Parent SpanID
	Layer  string
	Name   string
	Start  sim.Time
	End    sim.Time
	Arg    int64
}

// Dur reports the span's duration.
func (s *Span) Dur() sim.Duration { return s.End.Sub(s.Start) }

// Event is an instant marker (fault injection, retry, GC lifecycle edge).
type Event struct {
	Layer string
	Name  string
	At    sim.Time
	Arg   int64
}

// DefaultLimit caps spans and events per tracer so a long traced run cannot
// exhaust memory; drops beyond the cap are counted, never silent.
const DefaultLimit = 1 << 20

// Tracer records the span forest of one experiment cell. The zero value is
// usable; a nil *Tracer is a no-op recorder.
type Tracer struct {
	Label string

	limit   int
	spans   []Span
	events  []Event
	dropped int64
	scope   SpanID
}

// New returns a Tracer with the default span/event cap.
func New(label string) *Tracer { return &Tracer{Label: label, limit: DefaultLimit} }

// Enabled reports whether the tracer records anything (i.e. is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) cap() int {
	if t.limit <= 0 {
		return DefaultLimit
	}
	return t.limit
}

// Begin opens a span whose end is not yet known (the recorder will observe
// children before the parent completes). Pair with End.
func (t *Tracer) Begin(layer, name string, parent SpanID, start sim.Time) SpanID {
	if t == nil {
		return 0
	}
	if len(t.spans) >= t.cap() {
		t.dropped++
		return 0
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Layer: layer, Name: name, Start: start, End: start})
	return id
}

// End closes a span opened by Begin. End(0, ...) is a no-op, so a dropped
// Begin composes safely.
func (t *Tracer) End(id SpanID, end sim.Time) {
	if t == nil || id == 0 {
		return
	}
	t.spans[id-1].End = end
}

// SetArg attaches the layer-defined integer to an open or closed span.
func (t *Tracer) SetArg(id SpanID, arg int64) {
	if t == nil || id == 0 {
		return
	}
	t.spans[id-1].Arg = arg
}

// Emit records a complete span in one call (for synchronous stages that
// compute their end time before returning).
func (t *Tracer) Emit(layer, name string, parent SpanID, start, end sim.Time, arg int64) SpanID {
	id := t.Begin(layer, name, parent, start)
	t.End(id, end)
	t.SetArg(id, arg)
	return id
}

// Instant records a point event.
func (t *Tracer) Instant(layer, name string, at sim.Time, arg int64) {
	if t == nil {
		return
	}
	if len(t.events) >= t.cap() {
		t.dropped++
		return
	}
	t.events = append(t.events, Event{Layer: layer, Name: name, At: at, Arg: arg})
}

// SetScope publishes a parent SpanID for the next cross-layer call, and
// Scope consumes it. The contract that makes this safe without explicit
// parameters everywhere: the caller calls SetScope immediately before the
// call that should inherit the span, and the callee calls Scope as its first
// action, before any Sleep/Wait can hand the simulation baton to another
// process. A stale scope left behind after the call returns is harmless —
// nothing reads it without a fresh SetScope first.
func (t *Tracer) SetScope(id SpanID) {
	if t == nil {
		return
	}
	t.scope = id
}

// Scope returns the parent published by the most recent SetScope.
func (t *Tracer) Scope() SpanID {
	if t == nil {
		return 0
	}
	return t.scope
}

// Spans returns the recorded spans in recording order. The slice is the
// tracer's backing store; callers must not mutate it.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Events returns the recorded instants in recording order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Dropped reports how many spans/events were discarded at the cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Registry collects the tracers of a multi-cell experiment. Cells may run
// concurrently (each with its own Tracer), so the registry is the only
// locked structure in the package. A nil *Registry hands out nil Tracers,
// which keeps tracing a single `if` away from free everywhere.
type Registry struct {
	mu      sync.Mutex
	tracers map[string]*Tracer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Tracer returns the tracer for label, creating it on first use. A nil
// registry returns a nil tracer.
func (r *Registry) Tracer(label string) *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tracers == nil {
		r.tracers = make(map[string]*Tracer)
	}
	t, ok := r.tracers[label]
	if !ok {
		t = New(label)
		r.tracers[label] = t
	}
	return t
}

// Labels returns the registered cell labels in sorted order — the export
// order, independent of registration (and hence scheduling) order.
func (r *Registry) Labels() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	labels := make([]string, 0, len(r.tracers))
	for label := range r.tracers {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	return labels
}

// Get returns the tracer registered under label, or nil.
func (r *Registry) Get(label string) *Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracers[label]
}
