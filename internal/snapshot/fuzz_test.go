package snapshot

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// buildImage serializes n entries through the real Writer and returns the
// full framed image (header, compressed chunks, trailer).
func buildImage(tb testing.TB, n, chunkSize int) []byte {
	tb.Helper()
	var img []byte
	w, err := NewWriter(chunkSize, func(chunk []byte, rawBytes int) error {
		img = append(img, chunk...)
		return nil
	})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%04d", i))
		val := bytes.Repeat([]byte{byte(i)}, 16+i%32)
		if err := w.Add(key, val); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return img
}

// decodeAll drains a Reader, returning the decoded entries and the
// terminating error (io.EOF for a clean image).
func decodeAll(data []byte) ([]Entry, error) {
	r := NewReader(bytes.NewReader(data))
	var all []Entry
	for {
		ents, err := r.Next()
		all = append(all, ents...)
		if err != nil {
			return all, err
		}
	}
}

// FuzzDecode: whatever the bytes, the snapshot reader must never panic,
// must report clean EOF only when the trailer's declared entry count
// matches what was decoded, and must decode identically on every pass —
// recovery is replayed by the crash harnesses, so frame decoding has to be
// a pure function of the bytes. Seeds mirror internal/wal/fuzz_test.go:
// a valid image, a torn-page truncation, and targeted corruptions.
func FuzzDecode(f *testing.F) {
	valid := buildImage(f, 40, 256) // several chunks
	f.Add([]byte{})
	f.Add(valid)
	f.Add(buildImage(f, 0, 256))           // header + trailer only
	f.Add(valid[:len(valid)-7])            // torn inside the trailer
	f.Add(valid[:len(valid)/2])            // torn-page truncation mid-chunk
	f.Add(valid[:len(Magic)])              // bare magic
	f.Add([]byte("SLIMRDB1\x00\x00\x00"))  // truncated chunk header
	f.Add([]byte("NOTMAGIC_rest-of-data")) // wrong magic
	flip := append([]byte(nil), valid...)
	flip[len(Magic)+13] ^= 0xFF // corrupt first chunk's payload (CRC must catch)
	f.Add(flip)
	huge := append([]byte(nil), valid[:len(Magic)]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0x7F, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0) // absurd lengths
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			// Flate can expand small inputs enormously; bound the work per
			// input, not the decoder's behavior.
			t.Skip("oversized fuzz input")
		}
		ents, err := decodeAll(data)
		for _, e := range ents {
			// Entries must be self-contained copies, not aliases into a
			// scratch buffer the reader reuses.
			if e.Key == nil {
				t.Fatal("decoded entry with nil key")
			}
		}
		// Decoding is pure: a second pass over the same bytes must produce
		// byte-identical entries and the same terminating error.
		ents2, err2 := decodeAll(data)
		if fmt.Sprint(err) != fmt.Sprint(err2) || len(ents) != len(ents2) {
			t.Fatalf("decode not deterministic: %d entries/%v vs %d entries/%v",
				len(ents), err, len(ents2), err2)
		}
		for i := range ents {
			if !bytes.Equal(ents[i].Key, ents2[i].Key) || !bytes.Equal(ents[i].Value, ents2[i].Value) {
				t.Fatalf("decode not deterministic at entry %d", i)
			}
		}
		if err == io.EOF {
			// Clean EOF is a completeness claim: every added entry was
			// decoded and matched the trailer's declared count (the reader
			// errors otherwise); nothing may follow a clean decode of a
			// Writer image but trailing bytes are unreachable by Next, so
			// just re-assert the count bookkeeping is consistent.
			r := NewReader(bytes.NewReader(data))
			var n int64
			for {
				es, e := r.Next()
				n += int64(len(es))
				if e != nil {
					break
				}
			}
			if n != int64(len(ents)) || r.Entries() != n {
				t.Fatalf("entry accounting diverged: %d decoded, reader says %d", n, r.Entries())
			}
		}
	})
}

// TestFuzzSeedRoundTrip pins the fuzz seeds' strongest property outside the
// fuzzer: a Writer image decodes cleanly to exactly what was written, and
// the torn-page truncation of the same image fails with a truncation error
// rather than silently succeeding.
func TestFuzzSeedRoundTrip(t *testing.T) {
	img := buildImage(t, 40, 256)
	ents, err := decodeAll(img)
	if err != io.EOF {
		t.Fatalf("valid image: err = %v, want io.EOF", err)
	}
	if len(ents) != 40 {
		t.Fatalf("decoded %d entries, want 40", len(ents))
	}
	for i, e := range ents {
		if want := fmt.Sprintf("key-%04d", i); string(e.Key) != want {
			t.Fatalf("entry %d key = %q, want %q", i, e.Key, want)
		}
	}
	if _, err := decodeAll(img[:len(img)/2]); err == nil || err == io.EOF {
		t.Fatalf("torn image: err = %v, want decode failure", err)
	}
}
