package snapshot

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

func benchEntries(n int) []Entry {
	rng := rand.New(rand.NewSource(1))
	out := make([]Entry, n)
	for i := range out {
		v := make([]byte, 4096)
		rng.Read(v[:2048])
		out[i] = Entry{Key: []byte(fmt.Sprintf("key:%08d", i)), Value: v}
	}
	return out
}

func BenchmarkWriter(b *testing.B) {
	entries := benchEntries(256)
	var raw int64
	for _, e := range entries {
		raw += int64(EntrySize(e.Key, e.Value))
	}
	b.SetBytes(raw)
	for i := 0; i < b.N; i++ {
		w, err := NewWriter(0, func(chunk []byte, rawBytes int) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			if err := w.Add(e.Key, e.Value); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReader(b *testing.B) {
	entries := benchEntries(256)
	var stream bytes.Buffer
	w, _ := NewWriter(0, func(chunk []byte, rawBytes int) error {
		stream.Write(chunk)
		return nil
	})
	for _, e := range entries {
		_ = w.Add(e.Key, e.Value)
	}
	_ = w.Close()
	b.SetBytes(int64(stream.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(stream.Bytes()))
		for {
			if _, err := r.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
