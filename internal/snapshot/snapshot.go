// Package snapshot implements the RDB-like snapshot serialization format
// shared by the baseline and SlimIO backends: a header, a sequence of
// independently-compressed CRC-framed chunks of key/value entries, and a
// trailer. Chunked framing lets the writer stream the dump without holding
// the serialized image in memory, and lets the reader validate as it loads.
//
// Compression is real (stdlib flate), so compression ratios — and therefore
// snapshot sizes and device traffic — come from the actual data, while the
// CPU cost of compressing is billed to the snapshot process through the
// engine's cost model.
package snapshot

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic opens every snapshot image.
var Magic = []byte("SLIMRDB1")

// DefaultChunkSize is the uncompressed chunk target (64 KiB).
const DefaultChunkSize = 64 << 10

// Entry is one key/value pair in the dump.
type Entry struct {
	Key   []byte
	Value []byte
}

// appendEntry frames an entry into buf.
func appendEntry(buf []byte, key, value []byte) []byte {
	var l [8]byte
	binary.LittleEndian.PutUint32(l[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(l[4:8], uint32(len(value)))
	buf = append(buf, l[:]...)
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

// EntrySize returns the framed size of an entry.
func EntrySize(key, value []byte) int { return 8 + len(key) + len(value) }

// Writer streams a snapshot image as a series of compressed chunks to an
// emit callback. The callback receives ready-to-store bytes plus the number
// of uncompressed bytes they encode (for cost accounting).
type Writer struct {
	emit      func(chunk []byte, rawBytes int) error
	chunkSize int
	pending   []byte
	entries   int64
	rawTotal  int64
	compTotal int64
	closed    bool

	// Per-chunk scratch, reused across flushes. fw.Reset is documented to
	// make the writer equivalent to a fresh NewWriter, so reuse changes no
	// output byte. frame reuse is safe because every sink consumes the
	// chunk before Write returns (page cache and slot tail both copy).
	fw    *flate.Writer
	cbuf  bytes.Buffer
	frame []byte
}

// NewWriter builds a Writer emitting chunks through emit. chunkSize <= 0
// selects DefaultChunkSize.
func NewWriter(chunkSize int, emit func(chunk []byte, rawBytes int) error) (*Writer, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	w := &Writer{emit: emit, chunkSize: chunkSize}
	hdr := make([]byte, 0, 16)
	hdr = append(hdr, Magic...)
	if err := emit(hdr, len(hdr)); err != nil {
		return nil, err
	}
	return w, nil
}

// Add appends one entry, flushing a chunk when the target size is reached.
func (w *Writer) Add(key, value []byte) error {
	if w.closed {
		return fmt.Errorf("snapshot: Add after Close")
	}
	w.pending = appendEntry(w.pending, key, value)
	w.entries++
	if len(w.pending) >= w.chunkSize {
		return w.flushChunk()
	}
	return nil
}

func (w *Writer) flushChunk() error {
	if len(w.pending) == 0 {
		return nil
	}
	raw := w.pending

	w.cbuf.Reset()
	if w.fw == nil {
		fw, err := flate.NewWriter(&w.cbuf, flate.BestSpeed)
		if err != nil {
			return err
		}
		w.fw = fw
	} else {
		w.fw.Reset(&w.cbuf)
	}
	if _, err := w.fw.Write(raw); err != nil {
		return err
	}
	if err := w.fw.Close(); err != nil {
		return err
	}
	comp := w.cbuf.Bytes()

	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(raw)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(comp)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(comp))
	frame := append(w.frame[:0], hdr[:]...)
	frame = append(frame, comp...)
	w.frame = frame

	w.rawTotal += int64(len(raw))
	w.compTotal += int64(len(comp))
	w.pending = w.pending[:0]
	return w.emit(frame, len(raw))
}

// Close flushes the final chunk and the trailer (a zero-length chunk header
// carrying the entry count).
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if err := w.flushChunk(); err != nil {
		return err
	}
	w.closed = true
	var tr [12]byte
	// rawLen == 0 marks the trailer; the "crc" field carries the entry count.
	binary.LittleEndian.PutUint32(tr[8:12], uint32(w.entries))
	return w.emit(tr[:], len(tr))
}

// Entries reports entries added so far.
func (w *Writer) Entries() int64 { return w.entries }

// RawBytes reports uncompressed payload bytes emitted (excluding framing).
func (w *Writer) RawBytes() int64 { return w.rawTotal }

// CompressedBytes reports compressed payload bytes emitted.
func (w *Writer) CompressedBytes() int64 { return w.compTotal }

// Reader incrementally decodes a snapshot image from a sequential byte
// source (for example a recovery read-ahead buffer).
type Reader struct {
	src       io.Reader
	buf       []byte
	sawHeader bool
	done      bool
	entries   int64
	declared  int64
}

// NewReader wraps a sequential source of snapshot bytes.
func NewReader(src io.Reader) *Reader { return &Reader{src: src} }

func (r *Reader) fill(n int) error {
	for len(r.buf) < n {
		tmp := make([]byte, 64<<10)
		m, err := r.src.Read(tmp)
		if m > 0 {
			r.buf = append(r.buf, tmp[:m]...)
			continue
		}
		if err == io.EOF {
			// Running dry mid-frame is a truncated image, never a clean
			// end: clean EOF is only reported after the trailer.
			return fmt.Errorf("snapshot: truncated image: %w", io.ErrUnexpectedEOF)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Next returns the next batch of entries (one chunk's worth), or io.EOF
// after the trailer. It validates the per-chunk CRC and, at the end, the
// declared entry count.
func (r *Reader) Next() ([]Entry, error) {
	if r.done {
		return nil, io.EOF
	}
	if !r.sawHeader {
		if err := r.fill(len(Magic)); err != nil {
			return nil, err
		}
		if !bytes.Equal(r.buf[:len(Magic)], Magic) {
			return nil, fmt.Errorf("snapshot: bad magic")
		}
		r.buf = r.buf[len(Magic):]
		r.sawHeader = true
	}
	if err := r.fill(12); err != nil {
		return nil, err
	}
	rawLen := binary.LittleEndian.Uint32(r.buf[0:4])
	compLen := binary.LittleEndian.Uint32(r.buf[4:8])
	crcOrCount := binary.LittleEndian.Uint32(r.buf[8:12])
	r.buf = r.buf[12:]
	if rawLen == 0 {
		// Trailer.
		r.done = true
		r.declared = int64(crcOrCount)
		if r.declared != r.entries {
			return nil, fmt.Errorf("snapshot: trailer declares %d entries, read %d", r.declared, r.entries)
		}
		return nil, io.EOF
	}
	if err := r.fill(int(compLen)); err != nil {
		return nil, err
	}
	comp := r.buf[:compLen]
	if crc32.ChecksumIEEE(comp) != crcOrCount {
		return nil, fmt.Errorf("snapshot: chunk CRC mismatch")
	}
	raw, err := io.ReadAll(flate.NewReader(bytes.NewReader(comp)))
	if err != nil {
		return nil, fmt.Errorf("snapshot: decompress: %w", err)
	}
	r.buf = r.buf[compLen:]
	if len(raw) != int(rawLen) {
		return nil, fmt.Errorf("snapshot: chunk declares %d raw bytes, got %d", rawLen, len(raw))
	}

	var out []Entry
	for len(raw) > 0 {
		if len(raw) < 8 {
			return nil, fmt.Errorf("snapshot: truncated entry header")
		}
		kl := binary.LittleEndian.Uint32(raw[0:4])
		vl := binary.LittleEndian.Uint32(raw[4:8])
		total := 8 + int(kl) + int(vl)
		if len(raw) < total {
			return nil, fmt.Errorf("snapshot: truncated entry body")
		}
		out = append(out, Entry{
			Key:   append([]byte(nil), raw[8:8+kl]...),
			Value: append([]byte(nil), raw[8+kl:total]...),
		})
		raw = raw[total:]
	}
	r.entries += int64(len(out))
	return out, nil
}

// Entries reports entries decoded so far.
func (r *Reader) Entries() int64 { return r.entries }
