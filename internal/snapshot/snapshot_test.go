package snapshot

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// chunkCollector gathers emitted frames into one stream.
type chunkCollector struct {
	stream bytes.Buffer
	chunks int
}

func (c *chunkCollector) emit(chunk []byte, raw int) error {
	c.chunks++
	c.stream.Write(chunk)
	return nil
}

func writeSnapshot(t *testing.T, chunkSize int, entries []Entry) *chunkCollector {
	t.Helper()
	col := &chunkCollector{}
	w, err := NewWriter(chunkSize, col.emit)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.Add(e.Key, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return col
}

func readAll(t *testing.T, stream []byte) []Entry {
	t.Helper()
	r := NewReader(bytes.NewReader(stream))
	var out []Entry
	for {
		batch, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, batch...)
	}
}

func genEntries(n int, valueSize int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Entry, n)
	for i := range out {
		v := make([]byte, valueSize)
		// Half-compressible data: realistic ratios.
		rng.Read(v[:valueSize/2])
		out[i] = Entry{
			Key:   []byte(fmt.Sprintf("key:%08d", i)),
			Value: v,
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	entries := genEntries(500, 256, 1)
	col := writeSnapshot(t, 8<<10, entries)
	got := readAll(t, col.stream.Bytes())
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if !bytes.Equal(got[i].Key, entries[i].Key) || !bytes.Equal(got[i].Value, entries[i].Value) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestEmptySnapshot(t *testing.T) {
	col := writeSnapshot(t, 0, nil)
	got := readAll(t, col.stream.Bytes())
	if len(got) != 0 {
		t.Fatalf("empty snapshot decoded %d entries", len(got))
	}
}

func TestChunkingRespectsTarget(t *testing.T) {
	entries := genEntries(1000, 512, 2)
	col := writeSnapshot(t, 16<<10, entries)
	// ~1000*520B = 520KB raw over 16KB chunks => ~33 chunks (+hdr+trailer).
	if col.chunks < 20 || col.chunks > 60 {
		t.Fatalf("chunks = %d, want ~35", col.chunks)
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	entries := make([]Entry, 200)
	for i := range entries {
		entries[i] = Entry{
			Key:   []byte(fmt.Sprintf("k%04d", i)),
			Value: bytes.Repeat([]byte("ABCD"), 256), // highly compressible
		}
	}
	col := &chunkCollector{}
	w, _ := NewWriter(0, col.emit)
	for _, e := range entries {
		if err := w.Add(e.Key, e.Value); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.CompressedBytes() >= w.RawBytes()/4 {
		t.Fatalf("compression too weak: %d of %d raw", w.CompressedBytes(), w.RawBytes())
	}
	got := readAll(t, col.stream.Bytes())
	if len(got) != len(entries) {
		t.Fatal("round trip lost entries")
	}
}

func TestWriterCountsEntries(t *testing.T) {
	col := &chunkCollector{}
	w, _ := NewWriter(0, col.emit)
	for i := 0; i < 7; i++ {
		if err := w.Add([]byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if w.Entries() != 7 {
		t.Fatalf("entries = %d", w.Entries())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]byte("x"), []byte("y")); err == nil {
		t.Fatal("Add after Close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Fatal("double Close must be a no-op")
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOTMAGIC-and-more-bytes")))
	if _, err := r.Next(); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReaderDetectsChunkCorruption(t *testing.T) {
	entries := genEntries(100, 128, 3)
	col := writeSnapshot(t, 4<<10, entries)
	stream := col.stream.Bytes()
	// Corrupt a byte inside the first chunk's compressed payload.
	stream[len(Magic)+12+5] ^= 0xFF
	r := NewReader(bytes.NewReader(stream))
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("corruption not detected")
		}
		if err != nil {
			return // detected
		}
	}
}

func TestReaderDetectsWrongEntryCount(t *testing.T) {
	entries := genEntries(10, 64, 4)
	col := writeSnapshot(t, 0, entries)
	stream := col.stream.Bytes()
	// The trailer's last 4 bytes carry the count; corrupt them.
	stream[len(stream)-1] ^= 0x01
	r := NewReader(bytes.NewReader(stream))
	var err error
	for err == nil {
		_, err = r.Next()
	}
	if err == io.EOF {
		t.Fatal("wrong trailer count not detected")
	}
}

func TestTruncatedStream(t *testing.T) {
	entries := genEntries(100, 128, 5)
	col := writeSnapshot(t, 4<<10, entries)
	stream := col.stream.Bytes()[:col.stream.Len()/2]
	r := NewReader(bytes.NewReader(stream))
	var err error
	for err == nil {
		_, err = r.Next()
	}
	if err == io.EOF {
		t.Fatal("truncated stream read to 'clean' EOF")
	}
}

// Property: random entry sets round-trip across random chunk sizes.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64, chunkRaw uint16, nRaw uint8) bool {
		chunkSize := int(chunkRaw%8192) + 64
		n := int(nRaw % 64)
		rng := rand.New(rand.NewSource(seed))
		entries := make([]Entry, n)
		for i := range entries {
			k := make([]byte, rng.Intn(30)+1)
			v := make([]byte, rng.Intn(2000))
			rng.Read(k)
			rng.Read(v)
			entries[i] = Entry{k, v}
		}
		col := &chunkCollector{}
		w, err := NewWriter(chunkSize, col.emit)
		if err != nil {
			return false
		}
		for _, e := range entries {
			if err := w.Add(e.Key, e.Value); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r := NewReader(bytes.NewReader(col.stream.Bytes()))
		var got []Entry
		for {
			batch, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			got = append(got, batch...)
		}
		if len(got) != len(entries) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i].Key, entries[i].Key) || !bytes.Equal(got[i].Value, entries[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
