package baseline

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"

	"github.com/slimio/slimio/internal/fault"
	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/kernelio"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
	"github.com/slimio/slimio/internal/wal"
)

// testRNG is a local splitmix64 so the harness never touches math/rand
// global state (seed reproducibility is part of the contract under test).
func testRNG(seed int64) func() uint64 {
	state := uint64(seed)
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

type crashRunResult struct {
	appended  int
	acked     int
	recovered int
	digest    uint64
	faults    fault.Stats
}

// runBaselineCrashSeed mirrors the SlimIO crash harness for the kernel-path
// backend: a seed-derived workload of WAL appends (write(2) into the page
// cache), fsyncs, segment rotations, and snapshot writes; a power cut at a
// seed-derived virtual time (in-flight programs tear, dirty cache dies);
// then a crash remount — new filesystem over the same device, journaled
// metadata survives, cold cache — and Redis-style recovery with AOF tail
// truncation. The recovered record sequence must be a prefix of the issued
// one no shorter than the fsync-acked count.
func runBaselineCrashSeed(t *testing.T, seed int64) crashRunResult {
	t.Helper()
	next := testRNG(seed)
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 48, PagesPerBlock: 16, PageSize: 512}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	dev := ssd.New(ftl.New(arr, ftl.Config{}), ssd.Config{})
	fs := kernelio.NewFilesystem(eng, dev, kernelio.F2FS(), kernelio.SchedNone, kernelio.DefaultCosts())
	be, err := New(fs)
	if err != nil {
		t.Fatal(err)
	}

	plan := fault.NewPlan(fault.Config{Seed: seed})
	cut := sim.Time(sim.Duration(50+next()%40_000) * sim.Microsecond)
	plan.SchedulePowerCut(cut)
	arr.SetFaultHook(plan)

	var ops []wal.Record
	appended, acked := 0, 0
	eng.Spawn("client", func(env *sim.Env) {
		sync := func() bool {
			if err := be.WALSync(env); err != nil {
				return false
			}
			acked = appended
			return true
		}
		for i := 0; i < 160; i++ {
			key := []byte(fmt.Sprintf("k%05d", i))
			val := bytes.Repeat([]byte{byte('a' + i%26)}, 40+int(next()%2000))
			if err := be.WALAppend(env, wal.AppendRecord(nil, wal.OpSet, key, val)); err != nil {
				return
			}
			ops = append(ops, wal.Record{Op: wal.OpSet, Key: key, Value: val})
			appended++
			r := next() % 100
			if r < 35 && !sync() {
				return
			}
			if r < 6 {
				// Sync first so a sealed segment is always fully durable.
				if !sync() {
					return
				}
				if err := be.WALRotate(env); err != nil {
					return
				}
			}
			if r >= 94 {
				// A multi-page snapshot write for the cut to land inside.
				sink, err := be.BeginSnapshot(env, imdb.WALSnapshot)
				if err != nil {
					return
				}
				img := bytes.Repeat([]byte{byte(next())}, int(4+next()%12)*512)
				if err := sink.Write(env, img); err != nil {
					sink.Abort(env)
					return
				}
				if err := sink.Commit(env); err != nil {
					return
				}
			}
		}
		sync()
	})
	eng.RunUntil(cut)
	eng.Stop()

	// Power restored: recovery reads a healthy, frozen device.
	arr.SetFaultHook(nil)

	eng2 := sim.NewEngine()
	nfs := fs.Remount(eng2)
	be2, err := Remount(nfs)
	if err != nil {
		t.Fatalf("seed %d: remount: %v", seed, err)
	}
	var rec *imdb.Recovered
	eng2.Spawn("recover", func(env *sim.Env) {
		r, err := be2.Recover(env)
		if err != nil {
			t.Errorf("seed %d: recover: %v", seed, err)
			return
		}
		rec = r
	})
	eng2.Run()
	if rec == nil {
		t.Fatalf("seed %d: recovery produced nothing", seed)
	}

	var recs []wal.Record
	for _, seg := range rec.WALSegments {
		rs, _ := wal.DecodeAll(seg)
		recs = append(recs, rs...)
	}
	label := fmt.Sprintf("baseline seed %d (cut %v)", seed, cut)
	if len(recs) < acked {
		t.Fatalf("%s: recovered %d records, but %d were acked durable", label, len(recs), acked)
	}
	if len(recs) > len(ops) {
		t.Fatalf("%s: recovered %d records, only %d were ever appended", label, len(recs), len(ops))
	}
	for i, rc := range recs {
		if rc.Op != ops[i].Op || !bytes.Equal(rc.Key, ops[i].Key) || !bytes.Equal(rc.Value, ops[i].Value) {
			t.Fatalf("%s: record %d diverges from the issued sequence (key %q vs %q)",
				label, i, rc.Key, ops[i].Key)
		}
	}
	h := fnv.New64a()
	for _, rc := range recs {
		h.Write([]byte{byte(rc.Op)})
		h.Write(rc.Key)
		h.Write(rc.Value)
	}
	return crashRunResult{
		appended:  appended,
		acked:     acked,
		recovered: len(recs),
		digest:    h.Sum64(),
		faults:    plan.Stats(),
	}
}

// TestSeededCrashHarnessBaseline runs the crash harness over many distinct
// seeds; the aggregate must include torn pages (cut mid-flush) and actual
// unsynced-tail loss, or the harness is not exercising what it claims to.
func TestSeededCrashHarnessBaseline(t *testing.T) {
	var torn, lossy int64
	for seed := int64(1); seed <= 55; seed++ {
		res := runBaselineCrashSeed(t, seed)
		torn += res.faults.TornPrograms
		if res.recovered < res.appended {
			lossy++
		}
	}
	if torn == 0 {
		t.Error("no seed tore a page: every cut missed the write window")
	}
	if lossy == 0 {
		t.Error("no seed lost an unsynced tail: every cut landed after quiescence")
	}
}

// TestSeededCrashDeterminismBaseline: the same seed must reproduce the same
// fault schedule, the same loss, and byte-identical recovered records.
func TestSeededCrashDeterminismBaseline(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a := runBaselineCrashSeed(t, seed)
		b := runBaselineCrashSeed(t, seed)
		if a != b {
			t.Fatalf("seed %d not deterministic:\n first %+v\nsecond %+v", seed, a, b)
		}
	}
}
