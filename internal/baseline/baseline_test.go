package baseline

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/slimio/slimio/internal/ftl"
	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/kernelio"
	"github.com/slimio/slimio/internal/nand"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/ssd"
	"github.com/slimio/slimio/internal/wal"
)

type rig struct {
	eng *sim.Engine
	dev *ssd.Device
	fs  *kernelio.Filesystem
	be  *Backend
}

func newRig(t *testing.T, prof kernelio.Profile) *rig {
	t.Helper()
	geo := nand.Geometry{Channels: 2, DiesPerChannel: 2, BlocksPerDie: 48, PagesPerBlock: 16, PageSize: 512}
	arr, err := nand.New(geo, nand.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	dev := ssd.New(ftl.New(arr, ftl.Config{}), ssd.Config{})
	fs := kernelio.NewFilesystem(eng, dev, prof, kernelio.SchedNone, kernelio.DefaultCosts())
	be, err := New(fs)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, dev: dev, fs: fs, be: be}
}

func (r *rig) run(t *testing.T, fn func(env *sim.Env)) {
	t.Helper()
	r.eng.Spawn("test", fn)
	r.eng.Run()
}

func TestWALAppendSyncRecover(t *testing.T) {
	r := newRig(t, kernelio.F2FS())
	r.run(t, func(env *sim.Env) {
		var stream []byte
		for i := 0; i < 20; i++ {
			stream = wal.AppendRecord(stream[:0], wal.OpSet, []byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("v"), 100))
			if err := r.be.WALAppend(env, r.chain(stream)); err != nil {
				t.Error(err)
				return
			}
		}
		if err := r.be.WALSync(env); err != nil {
			t.Error(err)
			return
		}
		rec, err := r.be.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		var recs int
		for _, seg := range rec.WALSegments {
			rs, _ := wal.DecodeAll(seg)
			recs += len(rs)
		}
		if recs != 20 {
			t.Errorf("recovered %d records", recs)
		}
		if rec.HaveSnapshot {
			t.Error("phantom snapshot")
		}
	})
}

func TestSnapshotCommitRename(t *testing.T) {
	r := newRig(t, kernelio.EXT4())
	img := bytes.Repeat([]byte("IMG"), 2000)
	r.run(t, func(env *sim.Env) {
		sink, err := r.be.BeginSnapshot(env, imdb.WALSnapshot)
		if err != nil {
			t.Error(err)
			return
		}
		if err := sink.Write(env, img); err != nil {
			t.Error(err)
			return
		}
		if err := sink.Commit(env); err != nil {
			t.Error(err)
			return
		}
		if !r.fs.Exists("dump-wal.rdb") {
			t.Error("snapshot not renamed into place")
		}
		rec, err := r.be.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		if !rec.HaveSnapshot || !bytes.Equal(rec.Snapshot, img) {
			t.Error("snapshot image corrupted")
		}
	})
}

func TestSnapshotReplacesPrevious(t *testing.T) {
	r := newRig(t, kernelio.F2FS())
	r.run(t, func(env *sim.Env) {
		for round := 0; round < 3; round++ {
			sink, err := r.be.BeginSnapshot(env, imdb.WALSnapshot)
			if err != nil {
				t.Error(err)
				return
			}
			img := bytes.Repeat([]byte{byte('0' + round)}, 1500)
			if err := sink.Write(env, img); err != nil {
				t.Error(err)
				return
			}
			if err := sink.Commit(env); err != nil {
				t.Error(err)
				return
			}
		}
		rec, err := r.be.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		if rec.Snapshot[0] != '2' {
			t.Errorf("latest snapshot not recovered: %c", rec.Snapshot[0])
		}
	})
}

func TestAbortRemovesTemp(t *testing.T) {
	r := newRig(t, kernelio.F2FS())
	r.run(t, func(env *sim.Env) {
		sink, _ := r.be.BeginSnapshot(env, imdb.OnDemandSnapshot)
		if err := sink.Write(env, []byte("partial")); err != nil {
			t.Error(err)
			return
		}
		if err := sink.Abort(env); err != nil {
			t.Error(err)
			return
		}
		rec, _ := r.be.Recover(env)
		if rec.HaveSnapshot {
			t.Error("aborted snapshot recovered")
		}
	})
}

func TestWALRotateAndDiscard(t *testing.T) {
	r := newRig(t, kernelio.F2FS())
	r.run(t, func(env *sim.Env) {
		if err := r.be.WALAppend(env, r.chain(bytes.Repeat([]byte("x"), 5000))); err != nil {
			t.Error(err)
			return
		}
		if err := r.be.WALSync(env); err != nil {
			t.Error(err)
			return
		}
		if err := r.be.WALRotate(env); err != nil {
			t.Error(err)
			return
		}
		if r.be.WALDurableSize() != 0 {
			t.Error("new segment not empty")
		}
		if err := r.be.WALAppend(env, r.chain(bytes.Repeat([]byte("y"), 100))); err != nil {
			t.Error(err)
			return
		}
		// Both segments recoverable before the discard.
		rec, err := r.be.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		if len(rec.WALSegments) != 2 || len(rec.WALSegments[0]) != 5000 {
			t.Errorf("segments = %d", len(rec.WALSegments))
			return
		}
		if err := r.be.WALDiscardOld(env); err != nil {
			t.Error(err)
			return
		}
		rec, err = r.be.Recover(env)
		if err != nil {
			t.Error(err)
			return
		}
		if len(rec.WALSegments) != 1 || len(rec.WALSegments[0]) != 100 {
			t.Errorf("post-discard segments wrong: %d", len(rec.WALSegments))
		}
	})
}

func TestEndToEndEngineRecovery(t *testing.T) {
	r := newRig(t, kernelio.EXT4())
	db := imdb.New(r.eng, r.be, withPool(imdb.Config{Policy: imdb.PeriodicalLog, WALSnapshotTrigger: 32 << 10}, r.dev), nil)
	db.Start()
	final := map[string]string{}
	r.eng.Spawn("client", func(env *sim.Env) {
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("key%03d", i%60)
			v := fmt.Sprintf("val-%d-%s", i, bytes.Repeat([]byte("p"), 120))
			final[k] = v
			if err := db.Set(env, k, []byte(v)); err != nil {
				t.Error(err)
				return
			}
		}
		db.Shutdown(env)
	})
	r.eng.Run()
	if len(db.Stats().Snapshots) == 0 {
		t.Fatal("no WAL-snapshot triggered")
	}
	db2 := imdb.New(r.eng, r.be, withPool(imdb.Config{}, r.dev), nil)
	r.eng.Spawn("recover", func(env *sim.Env) {
		r.fs.DropCaches()
		if _, _, err := db2.Recover(env); err != nil {
			t.Error(err)
		}
	})
	r.eng.Run()
	if db2.Store().Len() != len(final) {
		t.Fatalf("recovered %d keys, want %d", db2.Store().Len(), len(final))
	}
	for k, v := range final {
		if got := db2.Store().Get(k); string(got) != v {
			t.Fatalf("key %s mismatch", k)
		}
	}
}

func TestLabelIncludesFilesystem(t *testing.T) {
	r := newRig(t, kernelio.EXT4())
	if r.be.Label() != "baseline/ext4" {
		t.Fatalf("label = %q", r.be.Label())
	}
}

// chain copies raw framed bytes into the stack's pool as a wal.Chain
// (WALAppend consumes the references on success).
func (r *rig) chain(data []byte) wal.Chain {
	return wal.NewChain(r.dev.FTL().Array().Pool(), data)
}

// withPool points the engine's WAL buffer at the device's page pool, the
// way production wiring does (exp.RunCell, slimio.New).
func withPool(cfg imdb.Config, dev *ssd.Device) imdb.Config {
	cfg.Pool = dev.FTL().Array().Pool()
	return cfg
}
