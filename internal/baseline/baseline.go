// Package baseline implements the paper's baseline persistence backend: the
// WAL is a file appended through the traditional kernel I/O path, and
// snapshots are written to a temp file, fsynced, and renamed into place —
// exactly Redis's flow on EXT4/F2FS over a conventional SSD.
//
// Both streams share the filesystem's journal lock, the page cache, the
// block-layer scheduler, and (below all that) a single mixed-lifetime write
// front in the conventional FTL — the four §3.1 bottlenecks.
package baseline

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/slimio/slimio/internal/imdb"
	"github.com/slimio/slimio/internal/kernelio"
	"github.com/slimio/slimio/internal/sim"
	"github.com/slimio/slimio/internal/wal"
)

// span opens a baseline-layer span parented on the tracer's current scope
// and shifts the scope into it, so the kernelio syscall spans underneath
// nest correctly. The returned func ends the span and restores the scope.
func (b *Backend) span(env *sim.Env, name string, arg int64) func() {
	tr := b.fs.Tracer()
	if !tr.Enabled() {
		return func() {}
	}
	parent := tr.Scope()
	id := tr.Begin("baseline", name, parent, env.Now())
	tr.SetArg(id, arg)
	tr.SetScope(id)
	return func() {
		tr.End(id, env.Now())
		tr.SetScope(parent)
	}
}

const (
	walName     = "appendonly.wal"
	walSnapName = "dump-wal.rdb"
	odSnapName  = "dump-ondemand.rdb"
)

// Backend persists through a simulated kernel filesystem. The WAL is a
// sequence of segment files (Redis 7 multipart-AOF style): appends go to
// the newest segment; a WAL-Snapshot rotates to a fresh segment at fork and
// deletes the sealed ones at commit.
type Backend struct {
	fs      *kernelio.Filesystem
	walFile *kernelio.File
	sealed  []*kernelio.File
	walGen  int
	tmpGen  int
	// ReadChunk is the read(2) size used during recovery (default 128 KiB,
	// glibc-buffered-reader class).
	ReadChunk int
	// scratch is the reused flatten buffer for WALAppend: write(2) takes one
	// contiguous user buffer, so the chain is flattened here once per append.
	// (That copy is the kernel path's own user→cache semantics — the zero-copy
	// plane ends where the baseline's syscall boundary begins.)
	scratch []byte
	// appending stages the chain a WALAppend call currently holds, so a
	// power cut frozen inside write(2) leaves its references reachable for
	// Close. Cleared in the same straight-line step that returns ownership
	// (error) or releases the references (success).
	appending wal.Chain
}

// Close releases every pooled reference the backend and its filesystem still
// hold (teardown for pool-quiescence accounting). The backend must not be
// used afterwards.
func (b *Backend) Close() {
	b.appending.Release()
	b.fs.Close()
}

var _ imdb.Backend = (*Backend)(nil)

// New mounts the backend on fs, creating the initial WAL segment.
func New(fs *kernelio.Filesystem) (*Backend, error) {
	walFile, err := fs.Create(walName + ".0")
	if err != nil {
		return nil, err
	}
	return &Backend{fs: fs, walFile: walFile, ReadChunk: 128 << 10}, nil
}

// Remount re-attaches a backend to a crash-remounted filesystem: WAL
// segment files are rediscovered by directory scan (lowest generation is the
// oldest sealed segment, the highest is the open one), the way Redis lists
// its multipart AOF at startup. A filesystem with no WAL files gets a fresh
// segment, like New.
func Remount(fs *kernelio.Filesystem) (*Backend, error) {
	type segFile struct {
		gen  int
		name string
	}
	var segs []segFile
	tmpGen := 0
	for _, name := range fs.Names() {
		var gen int
		if _, err := fmt.Sscanf(name, walName+".%d", &gen); err == nil {
			segs = append(segs, segFile{gen, name})
			continue
		}
		// Skip past orphaned snapshot temp files (a snapshot in flight at
		// the crash) so fresh temp names never collide; recovery ignores
		// their contents.
		if strings.HasPrefix(name, "dump-") && strings.HasSuffix(name, ".tmp") {
			base := strings.TrimSuffix(name, ".tmp")
			if i := strings.LastIndexByte(base, '-'); i >= 0 {
				if g, err := strconv.Atoi(base[i+1:]); err == nil && g > tmpGen {
					tmpGen = g
				}
			}
		}
	}
	if len(segs) == 0 {
		b, err := New(fs)
		if err != nil {
			return nil, err
		}
		b.tmpGen = tmpGen
		return b, nil
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].gen < segs[j].gen })
	b := &Backend{fs: fs, tmpGen: tmpGen, ReadChunk: 128 << 10}
	for i, s := range segs {
		f, err := fs.Open(s.name)
		if err != nil {
			return nil, err
		}
		if i == len(segs)-1 {
			b.walFile = f
			b.walGen = s.gen
		} else {
			b.sealed = append(b.sealed, f)
		}
	}
	return b, nil
}

// Filesystem exposes the underlying filesystem (for stats).
func (b *Backend) Filesystem() *kernelio.Filesystem { return b.fs }

// Label names the backend for reports.
func (b *Backend) Label() string { return "baseline/" + b.fs.Profile().Name }

// WALAppend appends log bytes via write(2). On success the chain's segment
// references are released here; on error they stay with the caller (park and
// retry), per the imdb.Backend contract.
func (b *Backend) WALAppend(env *sim.Env, data wal.Chain) error {
	end := b.span(env, "wal.append", int64(data.Len()))
	defer end()
	b.appending = data
	b.scratch = data.AppendTo(b.scratch[:0])
	if err := b.walFile.Append(env, b.scratch); err != nil {
		b.appending = wal.Chain{}
		return err
	}
	b.appending = wal.Chain{}
	data.Release()
	return nil
}

// WALSync makes the log durable via fsync(2).
func (b *Backend) WALSync(env *sim.Env) error {
	end := b.span(env, "wal.sync", 0)
	defer end()
	return b.walFile.Fsync(env)
}

// WALDurableSize reports the current segment's length.
func (b *Backend) WALDurableSize() int64 { return b.walFile.Size() }

// WALRotate seals the current segment and starts a new file.
func (b *Backend) WALRotate(env *sim.Env) error {
	b.walGen++
	f, err := b.fs.Create(fmt.Sprintf("%s.%d", walName, b.walGen))
	if err != nil {
		return err
	}
	b.sealed = append(b.sealed, b.walFile)
	b.walFile = f
	return nil
}

// WALDiscardOld unlinks every sealed segment (their TRIMs tell the device
// the data is dead).
func (b *Backend) WALDiscardOld(env *sim.Env) error {
	for _, f := range b.sealed {
		if err := b.fs.Delete(env, f.Name()); err != nil {
			return err
		}
	}
	b.sealed = nil
	return nil
}

type fileSink struct {
	be    *Backend
	tmp   *kernelio.File
	final string
	off   int64
}

func (s *fileSink) Write(env *sim.Env, chunk []byte) error {
	end := s.be.span(env, "dump.write", int64(len(chunk)))
	defer end()
	err := s.tmp.Write(env, s.off, chunk)
	s.off += int64(len(chunk))
	return err
}

func (s *fileSink) Commit(env *sim.Env) error {
	end := s.be.span(env, "dump.commit", 0)
	defer end()
	if err := s.tmp.Fsync(env); err != nil {
		return err
	}
	// rename(tmp, final) atomically replaces the previous snapshot; the
	// deletion TRIMs its extents, telling the device that data is dead.
	return s.be.fs.Rename(env, s.tmp.Name(), s.final)
}

func (s *fileSink) Abort(env *sim.Env) error {
	return s.be.fs.Delete(env, s.tmp.Name())
}

// BeginSnapshot opens a temp dump file for the given kind.
func (b *Backend) BeginSnapshot(env *sim.Env, kind imdb.SnapshotKind) (imdb.SnapshotSink, error) {
	b.tmpGen++
	name := fmt.Sprintf("dump-%s-%d.tmp", kind, b.tmpGen)
	tmp, err := b.fs.Create(name)
	if err != nil {
		return nil, err
	}
	final := walSnapName
	if kind == imdb.OnDemandSnapshot {
		final = odSnapName
	}
	return &fileSink{be: b, tmp: tmp, final: final}, nil
}

// readAll reads a whole file through the kernel path in ReadChunk slices. A
// device read failure mid-file (retries already exhausted below) stops the
// scan: the prefix read so far is returned with a degradation note, because
// a durable-prefix recovery beats refusing to start.
func (b *Backend) readAll(env *sim.Env, name string) (data []byte, note string, err error) {
	f, err := b.fs.Open(name)
	if err != nil {
		return nil, "", err
	}
	out := make([]byte, 0, f.Size())
	for off := int64(0); off < f.Size(); off += int64(b.ReadChunk) {
		chunk, err := f.Read(env, off, b.ReadChunk)
		if err != nil {
			return out, fmt.Sprintf("%s: unreadable at byte %d of %d: %v", name, off, f.Size(), err), nil
		}
		out = append(out, chunk...)
	}
	return out, "", nil
}

// Recover loads the preferred snapshot (WAL-Snapshot first, as Redis
// prefers the log-coupled pair) plus the durable WAL. The open segment is
// truncated to its durable prefix afterwards, as Redis truncates a partial
// AOF, so post-recovery appends continue exactly where replay stopped.
func (b *Backend) Recover(env *sim.Env) (*imdb.Recovered, error) {
	rec := &imdb.Recovered{WALTruncatedAt: -1}
	note := ""
	var err error
	switch {
	case b.fs.Exists(walSnapName):
		rec.Snapshot, note, err = b.readAll(env, walSnapName)
		rec.HaveSnapshot, rec.Kind = true, imdb.WALSnapshot
	case b.fs.Exists(odSnapName):
		rec.Snapshot, note, err = b.readAll(env, odSnapName)
		rec.HaveSnapshot, rec.Kind = true, imdb.OnDemandSnapshot
	}
	if err != nil {
		return nil, err
	}
	if note != "" {
		rec.Degraded = append(rec.Degraded, note)
	}
	for _, f := range append(append([]*kernelio.File(nil), b.sealed...), b.walFile) {
		seg, note, err := b.readAll(env, f.Name())
		if err != nil {
			return nil, err
		}
		if note != "" {
			rec.Degraded = append(rec.Degraded, note)
		}
		rec.WALSegments = append(rec.WALSegments, seg)
	}
	// After a crash the open segment can end in a torn tail (non-zero
	// garbage from a partial page) or lost zero pages; record where the
	// durable prefix ends and truncate the file to it so appends resume
	// there. A live (non-crash) Recover leaves the file alone — its cache
	// is the source of truth and need not hold framed records.
	if b.fs.CrashMounted() {
		open := rec.WALSegments[len(rec.WALSegments)-1]
		_, prefix, corrupt := wal.DecodeStream(open)
		if corrupt {
			rec.WALTruncatedAt = prefix
			rec.Degraded = append(rec.Degraded, fmt.Sprintf("%s: decode stopped on non-zero garbage at byte %d of %d", b.walFile.Name(), prefix, len(open)))
		}
		b.walFile.Truncate(prefix)
	}
	return rec, nil
}
