package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/slimio/slimio/internal/metrics"
	"github.com/slimio/slimio/internal/sim"
)

func TestRegistryCellsSortedAndCached(t *testing.T) {
	reg := NewRegistry(0)
	if reg.Interval() != DefaultInterval {
		t.Fatalf("interval = %v", reg.Interval())
	}
	b := reg.Cell("b")
	a := reg.Cell("a")
	if reg.Cell("b") != b {
		t.Fatal("cell not cached")
	}
	if got := reg.Labels(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("labels = %v", got)
	}
	if reg.Get("a") != a || reg.Get("zzz") != nil {
		t.Fatal("Get mismatch")
	}
}

// TestSamplingTickRidesTheSimClock runs a cell on an engine and checks the
// tick fires at t=0 and then every interval until Stop, reading probes in
// registration order.
func TestSamplingTickRidesTheSimClock(t *testing.T) {
	reg := NewRegistry(2 * sim.Millisecond)
	cell := reg.Cell("c")
	depth := int64(0)
	g := cell.Gauge("queue.depth")
	cell.AddProbe(func(now sim.Time) { g.Set(now, depth) })

	eng := sim.NewEngine()
	cell.Start(eng)
	eng.Spawn("driver", func(env *sim.Env) {
		for i := 0; i < 5; i++ {
			depth = int64(10 * (i + 1))
			env.Sleep(2 * sim.Millisecond)
		}
		cell.Stop()
	})
	eng.Run()

	// Ticks at 0,2,4,6,8,10 ms = 6 samples; the sample at tick k sees the
	// depth set by the driver's k-th step (driver and tick at the same
	// instant: tick was scheduled first at t=0, driver wakes after).
	if cell.Samples() != 6 {
		t.Fatalf("samples = %d, want 6", cell.Samples())
	}
	if g.Len() != 6 {
		t.Fatalf("gauge len = %d", g.Len())
	}
	if g.Bucket(0).Last != 0 || g.Last() != 50 {
		t.Fatalf("bucket0=%+v last=%d", g.Bucket(0), g.Last())
	}
	if err := cell.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCarriesEmptyBucketsForward(t *testing.T) {
	reg := NewRegistry(10)
	cell := reg.Cell("x")
	g := cell.Gauge("v")
	g.Set(5, 7)  // bucket 0
	g.Set(35, 9) // bucket 3; buckets 1-2 empty
	cd := cell.snapshot()
	if len(cd.Samples) != 4 {
		t.Fatalf("rows = %d", len(cd.Samples))
	}
	want := []int64{7, 7, 7, 9}
	for i, w := range want {
		if cd.Samples[i].V[0] != w {
			t.Fatalf("row %d = %d, want %d", i, cd.Samples[i].V[0], w)
		}
	}
}

func TestFlightRingWrapsOldestFirst(t *testing.T) {
	reg := NewRegistry(1)
	cell := reg.Cell("w")
	g := cell.Gauge("n")
	cell.AddProbe(func(now sim.Time) { g.Set(now, int64(now)) })
	for i := 0; i < DefaultFlightDepth+50; i++ {
		cell.Sample(sim.Time(i))
	}
	rows := cell.flightRows()
	if len(rows) != DefaultFlightDepth {
		t.Fatalf("ring size = %d", len(rows))
	}
	if rows[0].t != 50 || rows[len(rows)-1].t != sim.Time(DefaultFlightDepth+49) {
		t.Fatalf("ring span [%d,%d]", rows[0].t, rows[len(rows)-1].t)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].t != rows[i-1].t+1 {
			t.Fatalf("ring not oldest-first at %d", i)
		}
	}
}

func TestDumpFlightLatchesAndParses(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(1)
	reg.FlightDir = dir
	cell := reg.Cell("tbl/cell:1")
	g := cell.Gauge("n")
	cell.AddProbe(func(now sim.Time) { g.Set(now, 3) })
	cell.Sample(0)
	cell.Sample(1)

	path, err := cell.DumpFlight("injected fault")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "flight-tbl_cell_1.json" {
		t.Fatalf("path = %s", path)
	}
	if !cell.FlightDumped() {
		t.Fatal("dumped flag not set")
	}
	// First failure wins: a second trigger must not overwrite.
	if p2, err := cell.DumpFlight("cascade"); err != nil || p2 != "" {
		t.Fatalf("second dump = %q, %v", p2, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ParseFlight(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cell != "tbl/cell:1" || rec.Reason != "injected fault" || len(rec.Samples) != 2 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestDumpFlightNoDirIsNoOp(t *testing.T) {
	reg := NewRegistry(1)
	cell := reg.Cell("quiet")
	cell.Gauge("n").Set(0, 1)
	if path, err := cell.DumpFlight("whatever"); err != nil || path != "" {
		t.Fatalf("dump = %q, %v", path, err)
	}
	if cell.FlightDumped() {
		t.Fatal("dumped without a FlightDir")
	}
}

func TestExportJSONValidatesAndCSV(t *testing.T) {
	reg := NewRegistry(10)
	cell := reg.Cell("c1")
	ga := cell.Gauge("a")
	gb := cell.Gauge("b")
	cell.Histogram("h").Record(42)
	for i := 0; i < 3; i++ {
		ga.Set(sim.Time(i*10), int64(i))
		gb.Set(sim.Time(i*10), int64(100+i))
	}
	var buf bytes.Buffer
	if err := reg.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dump, err := ParseDump(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Cells) != 1 || len(dump.Cells[0].Samples) != 3 {
		t.Fatalf("dump shape: %+v", dump)
	}
	if dump.Cells[0].Hists[0].Count != 1 {
		t.Fatalf("hist: %+v", dump.Cells[0].Hists)
	}
	var csv bytes.Buffer
	if err := dump.Cells[0].CSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "t_ns,a,b" || lines[1] != "0,0,100" || lines[3] != "20,2,102" {
		t.Fatalf("csv:\n%s", csv.String())
	}
}

func TestValidateDumpRejectsBadShapes(t *testing.T) {
	bad := []string{
		`{"interval_ns":0,"cells":[]}`,
		`{"interval_ns":5,"cells":[]}`,
		`{"interval_ns":5,"cells":[{"label":"","names":[],"samples":[]}]}`,
		`{"interval_ns":5,"cells":[{"label":"x","names":["b","a"],"samples":[]}]}`,
		`{"interval_ns":5,"cells":[{"label":"x","names":["a","a"],"samples":[]}]}`,
		`{"interval_ns":5,"cells":[{"label":"x","names":["a"],"samples":[{"t":0,"v":[1,2]}]}]}`,
		`{"interval_ns":5,"cells":[{"label":"x","names":["a"],"samples":[{"t":5,"v":[1]},{"t":5,"v":[2]}]}]}`,
	}
	for i, s := range bad {
		if err := ValidateDump([]byte(s)); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

func TestExportOpenMetricsShape(t *testing.T) {
	reg := NewRegistry(10)
	ca := reg.Cell("cellA")
	ca.Gauge("q.depth").Set(0, 5)
	ca.Histogram("lat").Record(100)
	reg.Cell("cellB").Gauge("q.depth").Set(0, 9)
	var buf bytes.Buffer
	counters := []metrics.KV{{Key: "fault.program_err", Value: 3}}
	if err := reg.ExportOpenMetrics(&buf, counters); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE slimio_q_depth gauge\n",
		"slimio_q_depth{cell=\"cellA\"} 5\n",
		"slimio_q_depth{cell=\"cellB\"} 9\n",
		"# TYPE slimio_lat summary\n",
		"slimio_lat{cell=\"cellA\",quantile=\"0.5\"}",
		"slimio_lat_count{cell=\"cellA\"} 1\n",
		"# TYPE slimio_counter counter\n",
		"slimio_counter_total{name=\"fault.program_err\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Error("missing EOF terminator")
	}
}

// TestNilRegistryAllocFree is the off-switch contract: a nil registry hands
// out nil cells and nil gauges whose every operation is a no-op with zero
// allocations — the same deal as vtrace's nil *Tracer.
func TestNilRegistryAllocFree(t *testing.T) {
	var reg *Registry
	cell := reg.Cell("anything")
	if cell != nil {
		t.Fatal("nil registry returned a cell")
	}
	g := cell.Gauge("g")
	if g != nil {
		t.Fatal("nil cell returned a gauge")
	}
	allocs := testing.AllocsPerRun(200, func() {
		g.Set(7, 1)
		cell.Gauge("other").Set(8, 2)
		cell.Histogram("h").Record(3)
		cell.AddProbe(nil)
		cell.Sample(9)
		cell.Stop()
		_ = cell.Label()
		_ = cell.Samples()
		_ = reg.Interval()
		_ = reg.Labels()
		_, _ = cell.DumpFlight("x")
	})
	if allocs != 0 {
		t.Fatalf("nil telemetry allocated %.1f per op, want 0", allocs)
	}
}

func TestEncodeFlightIncludesDropNotes(t *testing.T) {
	reg := NewRegistry(10)
	cell := reg.Cell("drops")
	g := cell.Gauge("bad")
	g.Set(-5, 1) // dropped
	g.Set(0, 2)
	cell.Sample(0)
	data, err := cell.EncodeFlight("why")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ParseFlight(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Dropped) != 1 || rec.Dropped[0].Gauge != "bad" || rec.Dropped[0].Dropped != 1 {
		t.Fatalf("dropped notes: %+v", rec.Dropped)
	}
}
